// Reproduces Table 5: a six-stage cascade ranking simulation comparing
//   Cascade Model  — an ensemble of standalone models of increasing width,
//   Model Slicing  — the matching subnets sliced off one trained model.
// Reports per-stage precision, aggregate recall, parameters and FLOPs.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/core/cost_model.h"
#include "src/core/evaluator.h"
#include "src/serving/cascade_ranking.h"

namespace ms {
namespace {

int Main() {
  // Harder data keeps per-stage precision in the paper's band so the
  // consistency effect is measurable (see bench_util.h); the sliced model
  // gets extra epochs to offset per-subnet training dilution.
  const ImageDataSplit split = bench::HardImages();
  // Six stages at the paper's widths.
  const std::vector<double> stage_rates =
      bench::FastMode()
          ? std::vector<double>{0.5, 1.0}
          : std::vector<double>{0.375, 0.5, 0.625, 0.75, 0.875, 1.0};
  const SliceConfig lattice =
      SliceConfig::FromList(stage_rates).MoveValueOrDie();

  bench::PrintTitle(
      "Table 5: cascade ranking simulation (six stages of increasing "
      "width)");

  // --- Model slicing: one model, subnets as stages. -----------------------
  std::vector<CascadeStageInput> sliced_stages;
  {
    CnnConfig cfg = bench::StandardVgg();
    auto net = MakeVggSmall(cfg).MoveValueOrDie();
    RandomStaticScheduler sched(lattice, true, true);
    TrainImageClassifier(net.get(), split.train, &sched,
                         bench::StandardTrain(16));
    Tensor sample({1, split.test.channels, split.test.height,
                   split.test.width});
    const auto profiles = ProfileNet(net.get(), sample, stage_rates);
    for (size_t i = 0; i < stage_rates.size(); ++i) {
      CascadeStageInput stage;
      stage.rate = stage_rates[i];
      stage.wrong = WrongPredictionMask(net.get(), split.test,
                                        stage_rates[i]);
      stage.params = profiles[i].params;
      stage.flops = profiles[i].flops;
      sliced_stages.push_back(std::move(stage));
    }
    std::fprintf(stderr, "[sliced model] done\n");
  }

  // --- Cascade of fixed models: one standalone model per stage. -----------
  std::vector<CascadeStageInput> fixed_stages;
  for (double r : stage_rates) {
    CnnConfig cfg = bench::StandardVgg();
    cfg.width_mult = r;
    cfg.seed += static_cast<uint64_t>(r * 1000);
    auto net = MakeVggSmall(cfg).MoveValueOrDie();
    FixedRateScheduler sched(1.0);
    TrainImageClassifier(net.get(), split.train, &sched,
                         bench::StandardTrain(8));
    Tensor sample({1, split.test.channels, split.test.height,
                   split.test.width});
    const auto profile = ProfileNet(net.get(), sample, {1.0});
    CascadeStageInput stage;
    stage.rate = r;
    stage.wrong = WrongPredictionMask(net.get(), split.test, 1.0);
    stage.params = profile[0].params;
    stage.flops = profile[0].flops;
    fixed_stages.push_back(std::move(stage));
    std::fprintf(stderr, "[fixed %.3f] done\n", r);
  }

  const CascadeSummary sliced =
      SimulateCascade(sliced_stages, /*shares_parameters=*/true)
          .MoveValueOrDie();
  const CascadeSummary fixed =
      SimulateCascade(fixed_stages, /*shares_parameters=*/false)
          .MoveValueOrDie();

  auto print_block = [&](const char* name, const CascadeSummary& s) {
    std::printf("\n%s\n", name);
    std::printf("  %-18s", "stage width (r)");
    for (const auto& st : s.stages) std::printf(" %8.3f", st.rate);
    std::printf("\n  %-18s", "params (K)");
    for (const auto& st : s.stages) std::printf(" %8.1f", st.params / 1e3);
    std::printf("\n  %-18s", "FLOPs (M)");
    for (const auto& st : s.stages) std::printf(" %8.3f", st.flops / 1e6);
    std::printf("\n  %-18s", "precision (%)");
    for (const auto& st : s.stages) {
      std::printf(" %8.2f", st.precision * 100.0);
    }
    std::printf("\n  %-18s", "agg. recall (%)");
    for (const auto& st : s.stages) {
      std::printf(" %8.2f", st.aggregate_recall * 100.0);
    }
    std::printf("\n  total storage: %.1fK params, retrieval compute: %.3fM "
                "FLOPs/item\n",
                s.total_params / 1e3, s.total_flops / 1e6);
  };
  print_block("Cascade Model (ensemble of fixed models)", fixed);
  print_block("Model Slicing (subnets of one model)", sliced);

  std::printf(
      "\nExpected shape (paper): model slicing achieves higher aggregate "
      "recall thanks\nto consistent predictions across stages, and needs "
      "only the largest stage's\nparameters instead of the ensemble's "
      "sum.\n");
  return 0;
}

}  // namespace
}  // namespace ms

int main() { return ms::Main(); }
