// Reproduces Table 3 (configurations) and Table 4 / Figure 5: accuracy and
// remaining computation/parameters of CNNs w.r.t. the slice rate, for
//   <arch>-lb-1.0   — conventional training, sliced post hoc,
//   <arch>-fixed    — standalone models of each width (VGG only, to bound
//                     harness runtime on one core),
//   <arch>-lb-0.375 — model slicing training with lower bound 0.375.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/core/cost_model.h"
#include "src/core/evaluator.h"
#include "src/models/zoo.h"

namespace ms {
namespace {

void PrintConfig(const ZooEntry& entry) {
  const CnnConfig& c = entry.config;
  std::printf(
      "  %-11s %s  stages=%lld blocks=%lld base=%lld width_mult=%.1f "
      "groups=%lld dataset=%s\n",
      entry.name.c_str(), entry.is_resnet ? "resnet" : "vgg",
      static_cast<long long>(c.stages),
      static_cast<long long>(c.blocks_per_stage),
      static_cast<long long>(c.base_width), c.width_mult,
      static_cast<long long>(c.slice_groups), entry.dataset.c_str());
}

std::unique_ptr<Sequential> Build(const ZooEntry& entry, CnnConfig cfg) {
  return (entry.is_resnet ? MakeResNet(cfg) : MakeVggSmall(cfg))
      .MoveValueOrDie();
}

int Main() {
  const SliceConfig lattice = bench::EighthLattice();
  const std::vector<double>& rates = lattice.rates();
  const ImageDataSplit split = bench::StandardImages();

  bench::PrintTitle("Table 3: model configurations (laptop-scale analogues)");
  for (const auto& name : ListZooModels()) {
    PrintConfig(GetZooModel(name).MoveValueOrDie());
  }

  bench::PrintTitle(
      "Table 4 / Figure 5: accuracy (%) w.r.t. slice rate "
      "(synthetic CIFAR analogue)");

  std::printf("%-22s", "Slice rate r");
  for (size_t i = rates.size(); i-- > 0;) std::printf(" %8.3f", rates[i]);
  std::printf("\n%-22s", "Ct/Mt (%)");
  for (size_t i = rates.size(); i-- > 0;) {
    std::printf(" %8.2f", rates[i] * rates[i] * 100.0);
  }
  std::printf("\n");
  bench::PrintRule(22 + 9 * static_cast<int>(rates.size()));

  const std::vector<std::string> archs =
      bench::FastMode() ? std::vector<std::string>{"vgg13"}
                        : std::vector<std::string>{"vgg13", "resnet164",
                                                   "resnet56-2"};
  for (const auto& arch : archs) {
    const ZooEntry entry = GetZooModel(arch).MoveValueOrDie();

    // lb = 1.0: conventional training, sliced post hoc.
    {
      auto net = Build(entry, entry.config);
      FullOnlyScheduler sched;
      TrainImageClassifier(net.get(), split.train, &sched,
                           bench::StandardTrain());
      const auto acc = EvalAccuracySweep(net.get(), split.test, rates);
      std::printf("%-22s", (arch + "-lb-1.0").c_str());
      for (size_t i = rates.size(); i-- > 0;) {
        std::printf(" %8.2f", acc[i] * 100.0f);
      }
      std::printf("\n");
      std::fflush(stdout);
    }

    // Fixed-width standalone models (VGG only; see header comment).
    if (arch == "vgg13" && !bench::FastMode()) {
      std::printf("%-22s", (arch + "-fixed-models").c_str());
      for (size_t i = rates.size(); i-- > 0;) {
        CnnConfig cfg = entry.config;
        cfg.width_mult = rates[i];
        cfg.seed += static_cast<uint64_t>(rates[i] * 1000);
        auto net = Build(entry, cfg);
        FixedRateScheduler sched(1.0);
        TrainImageClassifier(net.get(), split.train, &sched,
                             bench::StandardTrain());
        std::printf(" %8.2f", EvalAccuracy(net.get(), split.test, 1.0) * 100);
        std::fflush(stdout);
      }
      std::printf("\n");
    }

    // lb = 0.375: model slicing training.
    {
      auto net = Build(entry, entry.config);
      RandomStaticScheduler sched(lattice, /*include_min=*/true,
                                  /*include_max=*/true);
      TrainImageClassifier(net.get(), split.train, &sched,
                           bench::StandardTrain());
      const auto acc = EvalAccuracySweep(net.get(), split.test, rates);
      std::printf("%-22s", (arch + "-lb-0.375").c_str());
      for (size_t i = rates.size(); i-- > 0;) {
        std::printf(" %8.2f", acc[i] * 100.0f);
      }
      std::printf("\n");
      std::fflush(stdout);

      // Measured cost profile of the sliced model (Figure 5's x-axis).
      Tensor sample({1, split.test.channels, split.test.height,
                     split.test.width});
      const auto profiles = ProfileNet(net.get(), sample, rates);
      std::printf("%-22s", (arch + " MFLOPs").c_str());
      for (size_t i = rates.size(); i-- > 0;) {
        std::printf(" %8.3f", profiles[i].flops / 1e6);
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nExpected shape (paper Table 4): lb-1.0 rows collapse sharply below "
      "r=1.0;\nlb-0.375 rows track the fixed-model ensemble closely; wider "
      "architectures\n(resnet56-2) slice more gracefully than narrow ones "
      "(resnet164).\n");
  return 0;
}

}  // namespace
}  // namespace ms

int main() { return ms::Main(); }
