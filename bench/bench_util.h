// Shared setup for the experiment benches: standard datasets, training
// presets and table printing. Every bench regenerates one table or figure
// of the paper; EXPERIMENTS.md records paper-vs-measured.
//
// Environment knobs:
//   MS_BENCH_FAST=1              — quarter-size runs for smoke-testing.
//   MS_BENCH_METRICS_OUT=<path>  — dump the global metrics registry as
//                                  JSONL when the bench exits.
//   MS_BENCH_TRACE_OUT=<path>    — enable tracing and dump a
//                                  chrome://tracing JSON on exit.
#ifndef MODELSLICING_BENCH_BENCH_UTIL_H_
#define MODELSLICING_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/core/scheduler.h"
#include "src/core/trainer.h"
#include "src/data/synthetic_images.h"
#include "src/data/synthetic_text.h"
#include "src/models/cnn.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace ms {
namespace bench {

inline bool FastMode() {
  const char* v = std::getenv("MS_BENCH_FAST");
  return v != nullptr && v[0] == '1';
}

/// Writes the global metrics registry / trace buffer to the paths named by
/// MS_BENCH_METRICS_OUT / MS_BENCH_TRACE_OUT (no-op when unset).
inline void DumpObservability() {
  if (const char* path = std::getenv("MS_BENCH_METRICS_OUT")) {
    const Status s = obs::MetricsRegistry::Global().WriteJsonl(path);
    if (!s.ok()) std::fprintf(stderr, "metrics dump: %s\n",
                              s.ToString().c_str());
  }
  if (const char* path = std::getenv("MS_BENCH_TRACE_OUT")) {
    const Status s = obs::TraceCollector::Global().WriteJson(path);
    if (!s.ok()) std::fprintf(stderr, "trace dump: %s\n",
                              s.ToString().c_str());
  }
}

namespace internal {

// Every bench links bench_util.h, so this inline variable's constructor
// arms the end-of-run observability dump (and tracing, when requested)
// without each bench opting in.
struct ObsDumpOnExit {
  ObsDumpOnExit() {
    if (std::getenv("MS_BENCH_TRACE_OUT") != nullptr) {
      obs::TraceCollector::Global().Enable();
    }
    if (std::getenv("MS_BENCH_METRICS_OUT") != nullptr ||
        std::getenv("MS_BENCH_TRACE_OUT") != nullptr) {
      std::atexit([] { DumpObservability(); });
    }
  }
};

inline ObsDumpOnExit obs_dump_on_exit;

}  // namespace internal

/// CIFAR-10 analogue used by the CNN benches (see DESIGN.md substitutions).
inline ImageDataSplit StandardImages() {
  SyntheticImageOptions opts;
  opts.num_classes = 10;
  opts.modes_per_class = 3;
  opts.channels = 3;
  opts.height = 12;
  opts.width = 12;
  opts.train_size = FastMode() ? 400 : 1500;
  opts.test_size = FastMode() ? 200 : 400;
  opts.noise = 0.5;
  opts.max_shift = 2;
  opts.seed = 7;
  return MakeSyntheticImages(opts).MoveValueOrDie();
}

/// A harder variant (more intra-class modes, more noise) for experiments
/// that need per-stage precision in the paper's ~85-95% band — with the
/// easy standard set, fixed models saturate and consistency effects vanish.
inline ImageDataSplit HardImages() {
  SyntheticImageOptions opts;
  opts.num_classes = 10;
  opts.modes_per_class = 4;
  opts.channels = 3;
  opts.height = 12;
  opts.width = 12;
  opts.train_size = FastMode() ? 400 : 1500;
  opts.test_size = FastMode() ? 200 : 500;
  opts.noise = 0.85;
  opts.max_shift = 2;
  opts.seed = 7;
  return MakeSyntheticImages(opts).MoveValueOrDie();
}

inline ImageTrainOptions StandardTrain(int epochs = 8) {
  ImageTrainOptions opts;
  opts.epochs = FastMode() ? 2 : epochs;
  opts.batch_size = 32;
  opts.sgd.lr = 0.05;
  opts.sgd.momentum = 0.9;
  opts.sgd.weight_decay = 1e-4;
  opts.lr_milestones = {FastMode() ? 1 : (epochs * 3) / 4};
  opts.augment = true;
  opts.max_shift = 2;
  opts.seed = 42;
  return opts;
}

/// The coarse lattice used for Table 1-style experiments.
inline SliceConfig QuarterLattice() {
  return SliceConfig::Make(0.25, 0.25).MoveValueOrDie();
}

/// The paper's reporting granularity: 0.375 to 1.0 in steps of 1/8.
inline SliceConfig EighthLattice() {
  return SliceConfig::Make(0.375, 0.125).MoveValueOrDie();
}

inline CnnConfig StandardVgg() {
  CnnConfig cfg;
  cfg.in_channels = 3;
  cfg.num_classes = 10;
  cfg.base_width = 16;
  cfg.stages = 3;
  cfg.blocks_per_stage = 2;
  cfg.slice_groups = 8;
  cfg.norm = NormKind::kGroup;
  cfg.seed = 5;
  return cfg;
}

inline void PrintRule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline void PrintTitle(const std::string& title) {
  PrintRule();
  std::printf("%s\n", title.c_str());
  PrintRule();
}

}  // namespace bench
}  // namespace ms

#endif  // MODELSLICING_BENCH_BENCH_UTIL_H_
