// Microbenchmarks for Eq. 3: measured wall-clock inference time of sliced
// subnets must scale roughly quadratically with the slice rate, matching
// the analytic FLOPs model. Uses google-benchmark.
#include <benchmark/benchmark.h>

#include <memory>

#include "bench/bench_util.h"
#include "src/core/cost_model.h"
#include "src/models/cnn.h"
#include "src/models/mlp.h"
#include "src/tensor/tensor_ops.h"

namespace ms {
namespace {

std::unique_ptr<Sequential> SharedVgg() {
  CnnConfig cfg = bench::StandardVgg();
  cfg.base_width = 32;  // wide enough that GEMM dominates overheads
  return MakeVggSmall(cfg).MoveValueOrDie();
}

void BM_VggForwardAtRate(benchmark::State& state) {
  static std::unique_ptr<Sequential> net = SharedVgg();
  const double rate = static_cast<double>(state.range(0)) / 100.0;
  net->SetSliceRate(rate);
  Rng rng(1);
  const int64_t active_in = 3;
  Tensor x = Tensor::Randn({8, active_in, 12, 12}, &rng);
  for (auto _ : state) {
    Tensor y = net->Forward(x, /*training=*/false);
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["analytic_MFLOPs"] =
      static_cast<double>(net->FlopsPerSample()) / 1e6;
  state.counters["rate"] = rate;
}
BENCHMARK(BM_VggForwardAtRate)->Arg(25)->Arg(50)->Arg(75)->Arg(100);

void BM_MlpForwardAtRate(benchmark::State& state) {
  MlpConfig cfg;
  cfg.in_features = 256;
  cfg.hidden = {512, 512};
  cfg.num_classes = 10;
  cfg.slice_groups = 8;
  static std::unique_ptr<Sequential> net = MakeMlp(cfg).MoveValueOrDie();
  const double rate = static_cast<double>(state.range(0)) / 100.0;
  net->SetSliceRate(rate);
  Rng rng(2);
  Tensor x = Tensor::Randn({16, 256}, &rng);
  for (auto _ : state) {
    Tensor y = net->Forward(x, /*training=*/false);
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["analytic_MFLOPs"] =
      static_cast<double>(net->FlopsPerSample()) / 1e6;
  state.counters["rate"] = rate;
}
BENCHMARK(BM_MlpForwardAtRate)->Arg(25)->Arg(50)->Arg(75)->Arg(100);

void BM_GemmKernel(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(3);
  Tensor a = Tensor::Randn({n, n}, &rng);
  Tensor b = Tensor::Randn({n, n}, &rng);
  Tensor c({n, n});
  for (auto _ : state) {
    ops::MatMul(a, false, b, false, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      static_cast<double>(2 * n * n * n) * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmKernel)->Arg(64)->Arg(128)->Arg(256);

}  // namespace
}  // namespace ms

BENCHMARK_MAIN();
