// Reproduces Figure 6: evolution of the group-norm scale factors (γ) during
// model slicing training. The per-group mean |γ| stratifies: the base
// groups (G1..) learn the largest scales — the fundamental representation —
// while later groups carry residual detail with smaller scales.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/evaluator.h"
#include "src/nn/norm.h"

namespace ms {
namespace {

// Mean |gamma| per slicing group of one GroupNorm layer.
std::vector<float> GroupGammaMeans(const GroupNorm& gn, int64_t groups) {
  const Tensor& gamma = gn.gamma();
  SliceSpec spec(gamma.size(), groups);
  std::vector<float> means;
  for (int64_t g = 0; g < groups; ++g) {
    const int64_t c0 = spec.GroupBoundary(g);
    const int64_t c1 = spec.GroupBoundary(g + 1);
    float acc = 0.0f;
    for (int64_t c = c0; c < c1; ++c) acc += std::abs(gamma[c]);
    means.push_back(acc / static_cast<float>(c1 - c0));
  }
  return means;
}

int Main() {
  const ImageDataSplit split = bench::StandardImages();
  CnnConfig cfg = bench::StandardVgg();
  auto net = MakeVggSmall(cfg).MoveValueOrDie();

  // Locate the first conv's norm in stage 1 ("conv3" analogue, low-level
  // features) and stage 2 ("conv5" analogue, high-level features).
  GroupNorm* low = nullptr;
  GroupNorm* high = nullptr;
  for (size_t i = 0; i < net->size(); ++i) {
    if (auto* gn = dynamic_cast<GroupNorm*>(net->child(i))) {
      if (gn->name() == "norm_s1b0") low = gn;
      if (gn->name() == "norm_s2b0") high = gn;
    }
  }
  MS_CHECK(low != nullptr && high != nullptr);

  const SliceConfig lattice = bench::QuarterLattice();
  RandomStaticScheduler sched(lattice, true, true);
  ImageTrainOptions train = bench::StandardTrain(12);

  bench::PrintTitle(
      "Figure 6: per-group mean |gamma| over training epochs "
      "(rows = groups G1..G8, cols = epochs)");

  std::vector<std::vector<float>> low_history, high_history;
  TrainImageClassifier(net.get(), split.train, &sched, train,
                       [&](const EpochStats&) {
                         low_history.push_back(
                             GroupGammaMeans(*low, cfg.slice_groups));
                         high_history.push_back(
                             GroupGammaMeans(*high, cfg.slice_groups));
                       });

  auto print_matrix = [&](const char* name,
                          const std::vector<std::vector<float>>& hist) {
    std::printf("\n%s\n", name);
    for (int64_t g = 0; g < cfg.slice_groups; ++g) {
      std::printf("  G%-3lld", static_cast<long long>(g + 1));
      for (const auto& epoch : hist) {
        std::printf(" %5.2f", epoch[static_cast<size_t>(g)]);
      }
      std::printf("\n");
    }
  };
  print_matrix("(a) norm_s1b0 — low-level features (conv3 analogue)",
               low_history);
  print_matrix("(b) norm_s2b0 — high-level features (conv5 analogue)",
               high_history);

  // Quantify the stratification: base-group scales should dominate.
  const auto& final_low = low_history.back();
  float base = 0.0f, tail = 0.0f;
  for (int g = 0; g < 2; ++g) base += final_low[static_cast<size_t>(g)];
  for (int g = 6; g < 8; ++g) tail += final_low[static_cast<size_t>(g)];
  std::printf(
      "\nStratification (final epoch, low layer): mean|gamma| of base "
      "groups G1-2 = %.3f\nvs tail groups G7-8 = %.3f — expected base > "
      "tail (paper Fig. 6's bright-to-dim\ngradient from G1 to G8).\n",
      base / 2.0f, tail / 2.0f);
  return 0;
}

}  // namespace
}  // namespace ms

int main() { return ms::Main(); }
