// Reproduces Table 2 and Figure 4: NNLM perplexity on the synthetic PTB
// analogue w.r.t. the slice rate, for
//   NNLM-1.0    — conventionally trained, sliced post hoc (collapses),
//   NNLM-0.375  — trained with model slicing, lower bound 0.375,
//   NNLM-fixed  — an ensemble of standalone models, one per width.
// The Ct row is the remaining fraction of computation (~r^2, Eq. 3).
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/core/evaluator.h"
#include "src/models/nnlm.h"

namespace ms {
namespace {

SyntheticTextOptions CorpusOptions() {
  SyntheticTextOptions opts;
  opts.vocab_size = 100;
  opts.train_tokens = bench::FastMode() ? 8000 : 40000;
  opts.valid_tokens = bench::FastMode() ? 1000 : 4000;
  opts.test_tokens = bench::FastMode() ? 1000 : 4000;
  opts.seed = 13;
  return opts;
}

NnlmConfig ModelConfig() {
  NnlmConfig cfg;
  cfg.vocab_size = 100;
  cfg.embed_dim = 48;
  cfg.hidden = 48;
  cfg.num_layers = 2;
  cfg.slice_groups = 8;
  cfg.dropout = 0.15;
  cfg.seed = 3;
  return cfg;
}

NnlmTrainOptions TrainOptions() {
  NnlmTrainOptions opts;
  opts.epochs = bench::FastMode() ? 2 : 10;
  opts.batch_size = 16;
  opts.bptt = 16;
  opts.sgd.lr = 4.0;
  opts.sgd.clip_grad_norm = 1.0;
  opts.plateau_factor = 0.25;
  return opts;
}

int Main() {
  const TextCorpus corpus = MakeSyntheticCorpus(CorpusOptions())
                                .MoveValueOrDie();
  const SliceConfig lattice = bench::EighthLattice();
  const std::vector<double>& rates = lattice.rates();

  bench::PrintTitle(
      "Table 2 / Figure 4: NNLM perplexity vs slice rate "
      "(synthetic PTB analogue)");

  // NNLM-1.0: conventional training, sliced post hoc.
  std::vector<double> ppl_conventional;
  {
    auto model = Nnlm::Make(ModelConfig()).MoveValueOrDie();
    FullOnlyScheduler sched;
    TrainNnlm(model.get(), corpus, &sched, TrainOptions());
    for (double r : rates) {
      ppl_conventional.push_back(
          EvalPerplexity(model.get(), corpus.test, r, 16, 16));
    }
    std::fprintf(stderr, "[nnlm-1.0] done\n");
  }

  // NNLM-0.375: model slicing training (R-min-max over the lattice).
  std::vector<double> ppl_sliced;
  {
    auto model = Nnlm::Make(ModelConfig()).MoveValueOrDie();
    RandomStaticScheduler sched(lattice, /*include_min=*/true,
                                /*include_max=*/true);
    TrainNnlm(model.get(), corpus, &sched, TrainOptions());
    for (double r : rates) {
      ppl_sliced.push_back(
          EvalPerplexity(model.get(), corpus.test, r, 16, 16));
    }
    std::fprintf(stderr, "[nnlm-0.375] done\n");
  }

  // NNLM-fixed: a standalone model per width.
  std::vector<double> ppl_fixed;
  for (double r : rates) {
    NnlmConfig cfg = ModelConfig();
    cfg.hidden = std::max<int64_t>(4, static_cast<int64_t>(cfg.hidden * r));
    cfg.seed = 3 + static_cast<uint64_t>(r * 100);
    auto model = Nnlm::Make(cfg).MoveValueOrDie();
    FullOnlyScheduler sched;
    TrainNnlm(model.get(), corpus, &sched, TrainOptions());
    ppl_fixed.push_back(EvalPerplexity(model.get(), corpus.test, 1.0, 16, 16));
    std::fprintf(stderr, "[fixed %.3f] ppl %.2f\n", r, ppl_fixed.back());
  }

  std::printf("%-14s", "Slice rate r");
  for (size_t i = rates.size(); i-- > 0;) std::printf(" %8.3f", rates[i]);
  std::printf("\n%-14s", "Ct (%)");
  for (size_t i = rates.size(); i-- > 0;) {
    std::printf(" %8.2f", rates[i] * rates[i] * 100.0);
  }
  std::printf("\n");
  bench::PrintRule(14 + 9 * static_cast<int>(rates.size()));
  auto print_row = [&](const char* name, const std::vector<double>& ppl) {
    std::printf("%-14s", name);
    for (size_t i = rates.size(); i-- > 0;) std::printf(" %8.2f", ppl[i]);
    std::printf("\n");
  };
  print_row("NNLM-1.0", ppl_conventional);
  print_row("NNLM-0.375", ppl_sliced);
  print_row("NNLM-fixed", ppl_fixed);
  std::printf(
      "\nExpected shape (paper): NNLM-1.0 degrades drastically as r "
      "shrinks; NNLM-0.375\nstays close to the per-width fixed models, and "
      "its full-rate perplexity matches\nor beats the full fixed model.\n");
  return 0;
}

}  // namespace
}  // namespace ms

int main() { return ms::Main(); }
