// Reproduces Figure 2: classification accuracy w.r.t. inference FLOPs for
// ResNet trained with model slicing against the baselines —
//   - ensemble of ResNets of varying width,
//   - ensemble of ResNets of varying depth,
//   - ResNet with multi-classifiers (single model, early exits),
//   - SkipNet-style dynamic routing (single model),
//   - model slicing on the narrow (resnet164) and wide (resnet56-2)
//     analogues (single models).
// Each series prints (MFLOPs, accuracy%) points.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/baselines/fixed_ensemble.h"
#include "src/baselines/multi_classifier.h"
#include "src/baselines/skipnet.h"
#include "src/core/cost_model.h"
#include "src/core/evaluator.h"
#include "src/models/zoo.h"

namespace ms {
namespace {

void PrintSeries(const char* name,
                 const std::vector<std::pair<double, double>>& points) {
  std::printf("%-34s", name);
  for (const auto& [flops, acc] : points) {
    std::printf("  (%7.3fM, %5.2f%%)", flops / 1e6, acc * 100.0);
  }
  std::printf("\n");
}

int Main() {
  // The harder dataset keeps baselines off the 100% ceiling so the
  // trade-off curves separate (see bench_util.h).
  const ImageDataSplit split = bench::HardImages();
  const SliceConfig lattice = bench::QuarterLattice();
  const std::vector<double>& rates = lattice.rates();
  const ImageTrainOptions train = bench::StandardTrain();
  Tensor sample({1, split.test.channels, split.test.height,
                 split.test.width});

  bench::PrintTitle(
      "Figure 2: accuracy vs inference FLOPs — model slicing vs baselines "
      "(ResNet analogues, synthetic CIFAR)");

  // Model slicing on the narrow and wide ResNet analogues.
  for (const char* arch : {"resnet164", "resnet56-2"}) {
    const ZooEntry entry = GetZooModel(arch).MoveValueOrDie();
    auto net = MakeResNet(entry.config).MoveValueOrDie();
    RandomStaticScheduler sched(lattice, true, true);
    // Extra epochs offset the per-subnet gradient dilution of Algorithm 1
    // (3 subnets share each batch), matching per-subnet convergence with
    // the standalone baselines rather than wall-clock epochs.
    TrainImageClassifier(net.get(), split.train, &sched,
                         bench::StandardTrain(16));
    const auto profiles = ProfileNet(net.get(), sample, rates);
    std::vector<std::pair<double, double>> points;
    for (size_t i = 0; i < rates.size(); ++i) {
      points.push_back({static_cast<double>(profiles[i].flops),
                        EvalAccuracy(net.get(), split.test, rates[i])});
    }
    PrintSeries((std::string("model slicing (") + arch + ")").c_str(),
                points);
    std::fflush(stdout);
  }

  // Ensemble of varying width.
  {
    EnsembleOptions opts;
    opts.base = GetZooModel("resnet56-2").MoveValueOrDie().config;
    opts.scales = bench::FastMode() ? std::vector<double>{0.5, 1.0} : rates;
    opts.axis = EnsembleAxis::kWidth;
    opts.use_resnet = true;
    opts.train = train;
    const auto members =
        TrainFixedEnsemble(opts, split.train, split.test).MoveValueOrDie();
    std::vector<std::pair<double, double>> points;
    for (const auto& m : members) {
      points.push_back({static_cast<double>(m.flops), m.test_accuracy});
    }
    PrintSeries("ensemble (varying width)", points);
    std::fflush(stdout);
  }

  // Ensemble of varying depth.
  {
    EnsembleOptions opts;
    opts.base = GetZooModel("resnet56-2").MoveValueOrDie().config;
    opts.base.blocks_per_stage = 4;
    opts.scales = bench::FastMode() ? std::vector<double>{0.5, 1.0}
                                    : std::vector<double>{0.25, 0.5, 0.75,
                                                          1.0};
    opts.axis = EnsembleAxis::kDepth;
    opts.use_resnet = true;
    opts.train = train;
    const auto members =
        TrainFixedEnsemble(opts, split.train, split.test).MoveValueOrDie();
    std::vector<std::pair<double, double>> points;
    for (const auto& m : members) {
      points.push_back({static_cast<double>(m.flops), m.test_accuracy});
    }
    PrintSeries("ensemble (varying depth)", points);
    std::fflush(stdout);
  }

  // Multi-classifier early-exit single model.
  {
    CnnConfig cfg = GetZooModel("resnet56-2").MoveValueOrDie().config;
    // Basic blocks (no bottleneck) in this baseline: width 8/16/32 keeps
    // its budget comparable to the sliced bottleneck models.
    cfg.base_width = 8;
    cfg.width_mult = 1.0;
    auto model = MultiExitCnn::Make(cfg).MoveValueOrDie();
    model->Train(split.train, train);
    std::vector<std::pair<double, double>> points;
    for (int e = 0; e < model->num_exits(); ++e) {
      const float acc = model->EvalExitAccuracy(split.test, e);
      points.push_back({static_cast<double>(model->FlopsUpToExit(e)), acc});
    }
    PrintSeries("multi-classifiers (single model)", points);
    std::fflush(stdout);
  }

  // SkipNet-style dynamic routing, two sparsity strengths.
  {
    std::vector<std::pair<double, double>> points;
    // Small alphas leave gates mid-range, where the soft-gate training /
    // hard-gate inference mismatch dominates; stronger penalties push the
    // gates decisively open or closed.
    for (double alpha : bench::FastMode() ? std::vector<double>{0.3}
                                          : std::vector<double>{0.2, 0.6}) {
      SkipNet::Options opts;
      opts.cnn = bench::StandardVgg();
      opts.cnn.base_width = 16;
      opts.cnn.stages = 2;
      opts.cnn.blocks_per_stage = 2;
      opts.sparsity_alpha = alpha;
      auto net = SkipNet::Make(opts).MoveValueOrDie();
      net->Train(split.train, train);
      const float acc = net->EvalAccuracy(split.test);
      points.push_back({net->MeasuredEvalFlops(), acc});
      std::fprintf(stderr, "[skipnet alpha=%.2f] done\n", alpha);
    }
    PrintSeries("dynamic routing (SkipNet-style)", points);
  }

  std::printf(
      "\nExpected shape (paper Fig. 2): width ensembles beat depth "
      "ensembles; model\nslicing on the wide analogue is comparable to the "
      "width ensemble with one\nmodel; the narrow analogue loses accuracy "
      "at small rates; early-exit and\ndynamic routing trade off less "
      "gracefully.\n");
  return 0;
}

}  // namespace
}  // namespace ms

int main() { return ms::Main(); }
