// The "Network Slimming" comparison of Figure 2 / Sec. 5.3.3: channel-level
// width compression (L1-on-γ train, global prune, fine-tune) produces one
// good small model per pipeline run, while model slicing gets a whole
// lattice of operating points from a single training run. Prints matched
// (FLOPs, accuracy) pairs for both, across prune fractions.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/baselines/network_slimming.h"
#include "src/core/cost_model.h"
#include "src/core/evaluator.h"

namespace ms {
namespace {

int Main() {
  const ImageDataSplit split = bench::StandardImages();
  const SliceConfig lattice = bench::QuarterLattice();

  bench::PrintTitle(
      "Fig. 2 companion: Network Slimming (width compression) vs model "
      "slicing (VGG)");

  // One sliced model provides the whole accuracy/FLOPs frontier.
  auto sliced = MakeVggSmall(bench::StandardVgg()).MoveValueOrDie();
  {
    RandomStaticScheduler sched(lattice, true, true);
    TrainImageClassifier(sliced.get(), split.train, &sched,
                         bench::StandardTrain());
  }
  Tensor sample({1, split.test.channels, split.test.height,
                 split.test.width});
  const auto profiles = ProfileNet(sliced.get(), sample, lattice.rates());
  std::printf("model slicing (single model):\n");
  for (size_t i = 0; i < lattice.rates().size(); ++i) {
    std::printf("  r=%.2f  %8.3f MFLOPs  %6.2f%%\n", lattice.rates()[i],
                profiles[i].flops / 1e6,
                EvalAccuracy(sliced.get(), split.test, lattice.rates()[i]) *
                    100.0);
  }
  std::fflush(stdout);

  // Network slimming: one full pipeline per target size.
  const std::vector<double> prune_fractions =
      bench::FastMode() ? std::vector<double>{0.5}
                        : std::vector<double>{0.3, 0.5, 0.7};
  std::printf("\nnetwork slimming (one pipeline per point):\n");
  for (double pf : prune_fractions) {
    SlimmingOptions opts;
    opts.base = bench::StandardVgg();
    opts.l1_lambda = 1e-4;
    opts.prune_fraction = pf;
    opts.pretrain = bench::StandardTrain();
    opts.finetune = bench::StandardTrain(4);
    opts.finetune.sgd.lr = 0.01;
    const auto result =
        RunNetworkSlimming(opts, split.train, split.test).MoveValueOrDie();
    std::printf(
        "  prune %.0f%%  %8.3f MFLOPs  %6.2f%% (pre-finetune %6.2f%%)  "
        "kept/layer:",
        pf * 100.0, result.flops / 1e6, result.accuracy * 100.0,
        result.accuracy_before_finetune * 100.0);
    for (int64_t k : result.kept_per_layer) {
      std::printf(" %lld", static_cast<long long>(k));
    }
    std::printf("\n");
    std::fflush(stdout);
  }

  std::printf(
      "\nExpected shape (paper): slimming points sit near the slicing "
      "frontier but each\ncosts a full train+prune+finetune pipeline and "
      "offers no inference-time control;\naccuracy before fine-tuning drops "
      "sharply at high prune fractions.\n");
  return 0;
}

}  // namespace
}  // namespace ms

int main() { return ms::Main(); }
