// Reproduces Figure 7: test error-rate and loss curves of the sliced
// subnets during model slicing training, against a conventionally trained
// full fixed model. Larger subnets learn faster; smaller subnets follow
// closely (the knowledge-distillation effect).
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/core/evaluator.h"
#include "src/nn/loss.h"

namespace ms {
namespace {

// Mean test loss of `net` at `rate`.
float TestLoss(Module* net, const ImageDataset& data, double rate) {
  net->SetSliceRate(rate);
  SoftmaxCrossEntropy loss;
  double total = 0.0;
  int64_t batches = 0;
  std::vector<int64_t> indices;
  std::vector<int> labels;
  for (int64_t start = 0; start < data.size(); start += 64) {
    const int64_t end = std::min(data.size(), start + 64);
    indices.clear();
    for (int64_t i = start; i < end; ++i) indices.push_back(i);
    Tensor x = GatherImages(data, indices);
    GatherLabels(data, indices, &labels);
    Tensor logits = net->Forward(x, false);
    total += loss.Forward(logits, labels);
    ++batches;
  }
  return static_cast<float>(total / batches);
}

int Main() {
  const ImageDataSplit split = bench::StandardImages();
  const std::vector<double> curve_rates = {0.25, 0.375, 0.5, 0.75, 1.0};
  const int epochs = bench::FastMode() ? 2 : 12;

  bench::PrintTitle(
      "Figure 7: per-epoch test error (%) and loss of sliced subnets vs a "
      "full fixed model");

  // Model slicing training with per-epoch evaluation.
  std::vector<std::vector<float>> err_curves(curve_rates.size());
  std::vector<std::vector<float>> loss_curves(curve_rates.size());
  {
    auto net = MakeVggSmall(bench::StandardVgg()).MoveValueOrDie();
    const SliceConfig lattice = bench::EighthLattice();
    RandomStaticScheduler sched(lattice, true, true);
    ImageTrainOptions train = bench::StandardTrain(epochs);
    TrainImageClassifier(net.get(), split.train, &sched, train,
                         [&](const EpochStats&) {
                           for (size_t i = 0; i < curve_rates.size(); ++i) {
                             err_curves[i].push_back(
                                 1.0f - EvalAccuracy(net.get(), split.test,
                                                     curve_rates[i]));
                             loss_curves[i].push_back(TestLoss(
                                 net.get(), split.test, curve_rates[i]));
                           }
                         });
  }

  // Conventionally trained full fixed model.
  std::vector<float> fixed_err, fixed_loss;
  {
    auto net = MakeVggSmall(bench::StandardVgg()).MoveValueOrDie();
    FullOnlyScheduler sched;
    ImageTrainOptions train = bench::StandardTrain(epochs);
    TrainImageClassifier(net.get(), split.train, &sched, train,
                         [&](const EpochStats&) {
                           fixed_err.push_back(
                               1.0f -
                               EvalAccuracy(net.get(), split.test, 1.0));
                           fixed_loss.push_back(
                               TestLoss(net.get(), split.test, 1.0));
                         });
  }

  auto print_curves = [&](const char* title,
                          const std::vector<std::vector<float>>& curves,
                          const std::vector<float>& fixed, float scale) {
    std::printf("\n%s (columns = epochs 1..%d)\n", title, epochs);
    std::printf("  %-16s", "full fixed");
    for (float v : fixed) std::printf(" %6.2f", v * scale);
    std::printf("\n");
    for (size_t i = curve_rates.size(); i-- > 0;) {
      std::printf("  Subnet-%-9.3f", curve_rates[i]);
      for (float v : curves[i]) std::printf(" %6.2f", v * scale);
      std::printf("\n");
    }
  };
  print_curves("(a) test error rate (%)", err_curves, fixed_err, 100.0f);
  print_curves("(b) test loss", loss_curves, fixed_loss, 1.0f);

  std::printf(
      "\nExpected shape (paper Fig. 7): error drops fastest for the largest "
      "subnet;\nsmaller subnets track it with a gap; the full sliced subnet "
      "approaches the\nconventionally trained fixed model.\n");
  return 0;
}

}  // namespace
}  // namespace ms

int main() { return ms::Main(); }
