// Closed-loop throughput bench for the concurrent serving engine: drives
// the real SliceServer (calibrated t, real forwards on worker threads)
// through a steady load with a 16x spike tick — the paper's extreme
// volatility case (Sec. 1 / 4.1) — and checks that the engine absorbs it:
//   - the queue depth returns to baseline within 3 ticks of the spike;
//   - shed + served accounts for 100% of submitted requests;
//   - steady-state serving never packs weights: prewarming at Start()
//     builds every (replica, rate) pack, so TotalPackCount() must stay
//     flat across the whole loaded run (at most one stray pack tolerated
//     per replica x trained rate would hide a regression — zero is
//     enforced).
// Exits non-zero if any property fails, so CI smoke runs enforce them.
// Also reports cold-start (first forward, pack included) vs warm per-sample
// time and the batch latency p50/p99, and exports the ms_gemm_pack_*
// gauges.
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/models/mlp.h"
#include "src/obs/request_trace.h"
#include "src/serving/server.h"
#include "src/tensor/activation_arena.h"
#include "src/tensor/prepack.h"
#include "src/util/fault.h"
#include "src/util/stopwatch.h"

namespace ms {
namespace {

std::vector<std::unique_ptr<Module>> MakeReplicas(int n) {
  MlpConfig cfg;
  cfg.in_features = 32;
  cfg.hidden = {64, 64};
  cfg.num_classes = 10;
  cfg.slice_groups = 8;
  cfg.seed = 9;
  std::vector<std::unique_ptr<Module>> replicas;
  for (int i = 0; i < n; ++i) {
    replicas.push_back(MakeMlp(cfg).MoveValueOrDie());
  }
  return replicas;
}

ServerOptions BaseOptions(double latency_budget_seconds, int64_t max_queue) {
  ServerOptions opts;
  opts.serving.latency_budget = latency_budget_seconds;
  opts.serving.full_sample_time = 1.0;  // replaced by calibration.
  opts.serving.lattice = SliceConfig::Make(0.25, 0.25).MoveValueOrDie();
  opts.max_queue = max_queue;
  opts.sample_shape = {32};
  return opts;
}

int Main() {
  bench::PrintTitle(
      "serving engine throughput: steady load + 16x spike tick "
      "(real forwards, calibrated t)");
  const double budget = bench::FastMode() ? 0.02 : 0.04;  // T; tick = T/2.

  // Phase 1: a throwaway server measures t so the workload and queue bound
  // can be sized relative to this machine's actual capacity.
  double t = 0.0;
  {
    auto probe = SliceServer::Create(MakeReplicas(1), BaseOptions(budget, 16))
                     .MoveValueOrDie();
    if (!probe->Start().ok()) return 1;
    t = probe->calibrated_sample_seconds();
    probe->Stop();
  }
  const double tick_seconds = budget / 2.0;
  // Samples one tick absorbs at the full rate, clamped to keep the bench
  // bounded on very fast or very slow machines.
  const int cap_full = std::max(
      4, std::min(2048, static_cast<int>(tick_seconds / t)));
  const int steady = std::max(1, cap_full / 2);   // ~50% full-rate load.
  const int spike = 16 * steady;                  // the 16x volatility tick.
  const int64_t max_queue = 4 * cap_full;         // shed beyond this.
  std::printf(
      "calibrated t = %.1f us/sample; tick = %.0f ms; capacity at full rate "
      "= %d/tick\nsteady = %d/tick, spike = %d, queue bound = %lld\n\n",
      t * 1e6, tick_seconds * 1e3, cap_full, steady, spike,
      static_cast<long long>(max_queue));

  auto server =
      SliceServer::Create(MakeReplicas(2), BaseOptions(budget, max_queue))
          .MoveValueOrDie();
  if (!server->Start().ok()) return 1;
  std::printf("cold start %.1f us/sample (packs + first-touch), warm %.1f "
              "us/sample\n",
              server->cold_start_sample_seconds() * 1e6,
              server->calibrated_sample_seconds() * 1e6);

  // Start() calibrated and prewarmed every (replica, rate); from here on
  // the serving path must never pack a weight again.
  const uint64_t packs_at_steady = ops::TotalPackCount();
  // Start() also lifetime-planned and reserved every replica's activation
  // arena, so the loaded run must not grow a single slab either.
  const uint64_t slabs_at_steady = ArenaCore::TotalSlabAllocs();

  const int num_ticks = bench::FastMode() ? 14 : 24;
  const int spike_tick = bench::FastMode() ? 5 : 8;
  std::vector<int> arrivals(num_ticks, steady);
  arrivals[spike_tick] = spike;
  const auto trace = RunClosedLoop(server.get(), arrivals);
  server->Stop();
  const ServerStats s = server->stats();

  std::printf("%-6s %-10s %-12s\n", "tick", "arrivals", "queue depth");
  bench::PrintRule(30);
  for (size_t i = 0; i < trace.size(); ++i) {
    std::printf("%-6zu %-10d %-12lld%s\n", i, trace[i].submitted,
                static_cast<long long>(trace[i].queue_depth),
                static_cast<int>(i) == spike_tick ? "  <- 16x spike" : "");
  }

  int64_t baseline = 0;
  for (int i = 2; i < spike_tick; ++i) {
    baseline = std::max(baseline, trace[i].queue_depth);
  }
  int recovered_after = -1;
  for (size_t i = spike_tick + 1; i < trace.size(); ++i) {
    if (trace[i].queue_depth <= baseline + steady) {
      recovered_after = static_cast<int>(i) - spike_tick;
      break;
    }
  }
  const double wall = static_cast<double>(num_ticks) * tick_seconds;
  std::printf(
      "\nserved %lld (%.0f samples/s), shed %lld, expired %lld, min rate "
      "%.2f, slowest batch %.1f ms\n",
      static_cast<long long>(s.served), s.served / wall,
      static_cast<long long>(s.shed), static_cast<long long>(s.expired),
      s.min_rate, s.max_batch_seconds * 1e3);
  auto& registry = obs::MetricsRegistry::Global();
  const auto* lat = registry.GetHistogram("ms_server_batch_latency_ms",
                                          obs::LatencyBucketsMs());
  std::printf("batch latency p50 %.2f ms, p99 %.2f ms (%lld batches)\n",
              lat->Percentile(50), lat->Percentile(99),
              static_cast<long long>(lat->count()));
  ops::PublishPackMetrics();
  const ops::PackStats packs = ops::GetPackStats();
  std::printf("weight packs: %llu total (%llu floats), %llu cache hits, "
              "%llu prepacked GEMM calls\n",
              static_cast<unsigned long long>(packs.packs),
              static_cast<unsigned long long>(packs.packed_floats),
              static_cast<unsigned long long>(packs.hits),
              static_cast<unsigned long long>(packs.prepacked_calls));

  int rc = 0;
  const uint64_t packs_after = ops::TotalPackCount();
  if (packs_after != packs_at_steady) {
    std::printf("FAIL: steady-state serving packed weights %llu time(s) "
                "after prewarm — the pack cache went stale or was missed\n",
                static_cast<unsigned long long>(packs_after -
                                                packs_at_steady));
    rc = 1;
  } else {
    std::printf("steady state packed zero weights (prewarm covered all "
                "replica x rate packs)\n");
  }
  const uint64_t slabs_after = ArenaCore::TotalSlabAllocs();
  if (slabs_after != slabs_at_steady) {
    std::printf("FAIL: steady-state serving grew activation slabs %llu "
                "time(s) after planning — the lifetime plan under-reserved\n",
                static_cast<unsigned long long>(slabs_after -
                                                slabs_at_steady));
    rc = 1;
  } else {
    std::printf("steady state allocated zero activation slabs (plans "
                "covered every replica x rate)\n");
  }
  // The planned per-(rate) activation footprint and the realized
  // per-replica peaks — the honest activation component of the paper's
  // ~r^2 per-replica memory curve (weights ~r^2, activations ~r).
  for (const auto& [rate, bytes] : server->planned_activation_bytes()) {
    std::printf("planned activation bytes at r=%.2f: %lld\n", rate,
                static_cast<long long>(bytes));
  }
  for (int i = 0; i < 2; ++i) {
    std::printf("replica %d peak_activation_bytes %lld (arena slab %lld)\n",
                i, static_cast<long long>(
                       server->replica_peak_activation_bytes(i)),
                static_cast<long long>(server->replica_arena_slab_bytes(i)));
    registry.GetGauge("bench_server.replica" + std::to_string(i) +
                      ".peak_activation_bytes")
        ->Set(static_cast<double>(server->replica_peak_activation_bytes(i)));
  }
  if (recovered_after < 0 || recovered_after > 3) {
    std::printf("FAIL: queue depth did not return to baseline (%lld) within "
                "3 ticks of the spike (recovered after %d)\n",
                static_cast<long long>(baseline), recovered_after);
    rc = 1;
  } else {
    std::printf("queue depth back to baseline %d tick(s) after the spike\n",
                recovered_after);
  }
  const int64_t accounted =
      s.served + s.shed + s.expired + s.rejected + s.failed;
  if (accounted != s.submitted) {
    std::printf("FAIL: accounting: served+shed+expired+rejected+failed = "
                "%lld != submitted = %lld\n",
                static_cast<long long>(accounted),
                static_cast<long long>(s.submitted));
    rc = 1;
  } else {
    std::printf("accounting: %lld/%lld requests accounted for (100%%)\n",
                static_cast<long long>(accounted),
                static_cast<long long>(s.submitted));
  }
  // Zero-overhead-when-disarmed gate: this bench runs with no MS_FAULTS, so
  // no injection point may have fired (and nothing may have failed, been
  // retried, or been quarantined) — the fault machinery must be invisible
  // on the fault-free path.
  auto& faults = fault::Registry::Global();
  const int64_t fired = faults.fires(fault::kWorkerStall) +
                        faults.fires(fault::kForwardNan) +
                        faults.fires(fault::kForwardThrow) +
                        faults.fires(fault::kQueueReject);
  if (faults.armed_count() != 0 || fired != 0 || s.failed != 0 ||
      s.retried_batches != 0 || s.quarantined != 0) {
    std::printf("FAIL: fault machinery active in a fault-free bench: "
                "armed=%d fires=%lld failed=%lld retried=%lld "
                "quarantined=%lld\n",
                faults.armed_count(), static_cast<long long>(fired),
                static_cast<long long>(s.failed),
                static_cast<long long>(s.retried_batches),
                static_cast<long long>(s.quarantined));
    rc = 1;
  } else {
    std::printf("fault points disarmed: zero fires, zero failed/retried/"
                "quarantined\n");
  }

  // Phase 3: request-stage observability. Two more servers run the SAME
  // steady, arrival-limited workload — stage stamps disabled, then enabled.
  // Both phases serve at the arrival rate when healthy, so a drop in served
  // count under stamping means the stamps backed up the pipeline: that is
  // the ISSUE's "<2% throughput" contract, measured as served requests
  // (QPS x wall) with a 2% floor rather than raw wall-clock QPS, which
  // would be CI-noise-bound. (This runs after the pack gate on purpose:
  // these servers prewarm and pack at Start.)
  const int overhead_ticks = bench::FastMode() ? 10 : 16;
  auto run_steady = [&](const char* label) -> int64_t {
    auto srv =
        SliceServer::Create(MakeReplicas(2), BaseOptions(budget, max_queue))
            .MoveValueOrDie();
    if (!srv->Start().ok()) {
      std::printf("FAIL: %s overhead phase failed to start\n", label);
      return -1;
    }
    std::vector<int> load(overhead_ticks, steady);
    RunClosedLoop(srv.get(), load);
    srv->Stop();
    return srv->stats().served;
  };
  obs::EnableStageStats(false);
  const int64_t served_off = run_steady("stamps-off");
  obs::EnableStageStats(true);
  const int64_t served_on = run_steady("stamps-on");
  obs::EnableStageStats(false);
  if (served_off < 0 || served_on < 0) return 1;

  // Informational: the raw cost of one stamp site in each state.
  constexpr int kStampReps = 1000000;
  int64_t sink = 0;
  Stopwatch off_sw;
  for (int i = 0; i < kStampReps; ++i) sink += obs::StageNowNanos();
  const double ns_off = off_sw.ElapsedSeconds() * 1e9 / kStampReps;
  obs::EnableStageStats(true);
  Stopwatch on_sw;
  for (int i = 0; i < kStampReps; ++i) sink += obs::StageNowNanos();
  const double ns_on = on_sw.ElapsedSeconds() * 1e9 / kStampReps;
  obs::EnableStageStats(false);
  std::printf(
      "\nstage stamps: %.1f ns/site disabled, %.1f ns/site enabled "
      "(sink %lld)\n",
      ns_off, ns_on, static_cast<long long>(sink != 0));

  // Per-stage latency breakdown of the stamps-on phase.
  const char* kStages[] = {"queue_wait", "batch_form", "schedule",
                           "dispatch",   "forward",    "total"};
  std::printf("%-12s %9s %10s %10s %10s %10s\n", "stage", "count", "p50 ms",
              "p99 ms", "p99.9 ms", "mean ms");
  double stage_mean_sum = 0.0;
  double total_mean = 0.0;
  int64_t total_count = 0;
  for (const char* stage : kStages) {
    const auto* h = registry.GetHistogram(
        std::string("ms_server_stage_") + stage + "_ms");
    const std::vector<double> ps = h->Percentiles({50.0, 99.0, 99.9});
    std::printf("%-12s %9lld %10.3f %10.3f %10.3f %10.3f\n", stage,
                static_cast<long long>(h->count()), ps[0], ps[1], ps[2],
                h->mean());
    if (std::string(stage) == "total") {
      total_mean = h->mean();
      total_count = h->count();
    } else {
      stage_mean_sum += h->mean();
    }
  }

  // Gate: stage breakdown must reconcile with end-to-end latency — the sum
  // of the mean stage times within 5% of the mean total (they are the same
  // stamps, so anything beyond rounding means a stage went missing).
  if (total_count > 0) {
    const double rel =
        std::abs(stage_mean_sum - total_mean) / std::max(total_mean, 1e-12);
    if (rel > 0.05) {
      std::printf("FAIL: stage means sum to %.3f ms but total mean is %.3f "
                  "ms (%.1f%% apart; must reconcile within 5%%)\n",
                  stage_mean_sum, total_mean, rel * 100.0);
      rc = 1;
    } else {
      std::printf("stage sums reconcile with end-to-end latency (%.2f%% "
                  "apart)\n", rel * 100.0);
    }
  } else {
    std::printf("FAIL: stamps-on phase recorded no stage samples\n");
    rc = 1;
  }

  // Gate: enabling stage stamps may not cost measurable throughput. Both
  // phases are arrival-limited, so served-on must match served-off within
  // 2% (floored at 2 requests for tiny fast-mode runs).
  const int64_t slack = std::max<int64_t>(2, served_off / 50);
  if (served_on + slack < served_off) {
    std::printf("FAIL: stage stamps cost throughput: served %lld with "
                "stamps vs %lld without (allowed slack %lld)\n",
                static_cast<long long>(served_on),
                static_cast<long long>(served_off),
                static_cast<long long>(slack));
    rc = 1;
  } else {
    std::printf("stage-stamp overhead gate: served %lld with stamps vs "
                "%lld without (within 2%%)\n",
                static_cast<long long>(served_on),
                static_cast<long long>(served_off));
  }
  return rc;
}

}  // namespace
}  // namespace ms

int main() { return ms::Main(); }
