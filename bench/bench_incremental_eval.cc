// Microbenchmark for the Sec. 3.5 group-residual feature reuse: upgrading a
// cached subnet to a larger rate (computing only the new groups) vs a full
// re-evaluation at the larger rate. Uses google-benchmark.
#include <benchmark/benchmark.h>

#include <memory>

#include "src/core/incremental_eval.h"
#include "src/models/mlp.h"
#include "src/util/rng.h"

namespace ms {
namespace {

std::unique_ptr<Sequential> BigMlp() {
  MlpConfig cfg;
  cfg.in_features = 256;
  cfg.hidden = {512, 512, 512};
  cfg.num_classes = 10;
  cfg.slice_groups = 8;
  cfg.rescale = false;
  return MakeMlp(cfg).MoveValueOrDie();
}

void BM_FullEvalAtRate(benchmark::State& state) {
  static std::unique_ptr<Sequential> net = BigMlp();
  auto eval = IncrementalMlpEvaluator::Make(net.get()).MoveValueOrDie();
  const double rate = static_cast<double>(state.range(0)) / 100.0;
  Rng rng(1);
  Tensor x = Tensor::Randn({16, 256}, &rng);
  for (auto _ : state) {
    Tensor y = eval.EvalAtRate(x, rate);
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["MFLOPs"] = static_cast<double>(eval.last_flops()) / 1e6;
}
BENCHMARK(BM_FullEvalAtRate)->Arg(75)->Arg(100);

void BM_IncrementalUpgrade(benchmark::State& state) {
  static std::unique_ptr<Sequential> net = BigMlp();
  auto eval = IncrementalMlpEvaluator::Make(net.get()).MoveValueOrDie();
  const double from = static_cast<double>(state.range(0)) / 100.0;
  const double to = static_cast<double>(state.range(1)) / 100.0;
  Rng rng(2);
  Tensor x = Tensor::Randn({16, 256}, &rng);
  for (auto _ : state) {
    state.PauseTiming();
    eval.EvalAtRate(x, from);  // populate the cache at the lower rate
    state.ResumeTiming();
    auto upgraded = eval.UpgradeTo(to);
    benchmark::DoNotOptimize(upgraded.ok());
  }
  state.counters["upgrade_MFLOPs"] =
      static_cast<double>(eval.last_flops()) / 1e6;
}
BENCHMARK(BM_IncrementalUpgrade)
    ->Args({50, 75})
    ->Args({50, 100})
    ->Args({75, 100});

}  // namespace
}  // namespace ms

BENCHMARK_MAIN();
