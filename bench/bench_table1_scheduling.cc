// Reproduces Table 1: accuracy of VGG trained with the slice-rate
// scheduling schemes of Sec. 3.4, evaluated at r in {1.0, 0.75, 0.5, 0.25}.
// Columns: Fixed (ensemble of standalone models), R-uniform-2,
// R-weighted-2, R-weighted-3, Static, R-min, R-max, R-min-max, Slimmable
// (static scheduling + one BatchNorm per rate, as in SlimmableNet [52]).
#include <cstdio>
#include <map>
#include <memory>

#include "bench/bench_util.h"
#include "src/core/evaluator.h"

namespace ms {
namespace {

using bench::PrintRule;
using bench::PrintTitle;

std::vector<float> TrainAndSweep(const CnnConfig& cfg,
                                 SliceRateScheduler* sched,
                                 const ImageDataSplit& split,
                                 const std::vector<double>& eval_rates) {
  auto net = MakeVggSmall(cfg).MoveValueOrDie();
  TrainImageClassifier(net.get(), split.train, sched, bench::StandardTrain());
  return EvalAccuracySweep(net.get(), split.test, eval_rates);
}

int Main() {
  const ImageDataSplit split = bench::StandardImages();
  const SliceConfig lattice = bench::QuarterLattice();
  const std::vector<double> rates = lattice.rates();  // ascending

  PrintTitle(
      "Table 1: VGG accuracy (%) by slice-rate scheduling scheme "
      "(synthetic CIFAR analogue)");

  std::vector<std::string> scheme_names = {
      "r-uniform-2", "r-weighted-2", "r-weighted-3", "static",
      "r-min",       "r-max",        "r-min-max"};
  std::map<std::string, std::vector<float>> results;

  // Fixed-model column: one standalone network per rate (width multiplier).
  {
    std::vector<float> accs;
    for (double r : rates) {
      CnnConfig cfg = bench::StandardVgg();
      cfg.width_mult = r;
      cfg.seed += static_cast<uint64_t>(r * 100);
      FixedRateScheduler sched(1.0);
      auto net = MakeVggSmall(cfg).MoveValueOrDie();
      TrainImageClassifier(net.get(), split.train, &sched,
                           bench::StandardTrain());
      accs.push_back(EvalAccuracy(net.get(), split.test, 1.0));
      std::fprintf(stderr, "[fixed %.2f] acc %.4f\n", r, accs.back());
    }
    results["fixed"] = accs;
  }

  for (const auto& name : scheme_names) {
    auto sched = MakeScheduler(name, lattice).MoveValueOrDie();
    results[name] =
        TrainAndSweep(bench::StandardVgg(), sched.get(), split, rates);
    std::fprintf(stderr, "[%s] done\n", name.c_str());
  }

  // Slimmable column: static scheduling + multi-BN.
  {
    CnnConfig cfg = bench::StandardVgg();
    cfg.norm = NormKind::kMultiBatch;
    cfg.multi_bn_rates = rates;
    StaticScheduler sched(lattice);
    results["slimmable"] = TrainAndSweep(cfg, &sched, split, rates);
    std::fprintf(stderr, "[slimmable] done\n");
  }

  // Print: rows = slice rates descending, columns = schemes.
  std::vector<std::string> columns = {"fixed"};
  columns.insert(columns.end(), scheme_names.begin(), scheme_names.end());
  columns.push_back("slimmable");
  std::printf("%-6s", "r");
  for (const auto& c : columns) std::printf(" %12s", c.c_str());
  std::printf("\n");
  PrintRule(6 + 13 * static_cast<int>(columns.size()));
  for (size_t i = rates.size(); i-- > 0;) {
    std::printf("%-6.2f", rates[i]);
    for (const auto& c : columns) {
      std::printf(" %12.2f", results[c][i] * 100.0f);
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpected shape (paper): weighted random > uniform ~ static for "
      "small subnets;\nslimmable strongest at r=1.0 but weaker at r=0.25; "
      "fixed models are the per-rate\nupper baseline trained in isolation.\n");
  return 0;
}

}  // namespace
}  // namespace ms

int main() { return ms::Main(); }
