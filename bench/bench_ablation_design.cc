// Ablations for the design choices DESIGN.md calls out:
//   (a) group count G — the paper treats G as a free hyper-parameter
//       (Sec. 3.1: from 1 to the layer width);
//   (b) subnets sampled per pass k for the weighted random scheduler
//       (Table 1 compares k = 2 vs 3);
//   (c) normalization under slicing — GroupNorm (the paper's choice) vs
//       multi-BatchNorm (SlimmableNet's) vs plain BatchNorm (broken);
//   (d) output rescaling for the NNLM dense/recurrent layers (Sec. 5.2.2).
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/core/evaluator.h"
#include "src/models/nnlm.h"

namespace ms {
namespace {

void SweepRow(const char* label, Module* net, const ImageDataset& test,
              const std::vector<double>& rates) {
  const auto acc = EvalAccuracySweep(net, test, rates);
  std::printf("  %-24s", label);
  for (size_t i = rates.size(); i-- > 0;) {
    std::printf(" %8.2f", acc[i] * 100.0f);
  }
  std::printf("\n");
  std::fflush(stdout);
}

int Main() {
  const ImageDataSplit split = bench::StandardImages();
  const SliceConfig lattice = bench::QuarterLattice();
  const std::vector<double>& rates = lattice.rates();

  bench::PrintTitle("Ablation (a): slicing group count G (VGG, R-min-max)");
  std::printf("  %-24s", "G \\ r");
  for (size_t i = rates.size(); i-- > 0;) std::printf(" %8.2f", rates[i]);
  std::printf("\n");
  for (int64_t groups : bench::FastMode() ? std::vector<int64_t>{4}
                                          : std::vector<int64_t>{2, 8, 16}) {
    CnnConfig cfg = bench::StandardVgg();
    cfg.slice_groups = groups;
    auto net = MakeVggSmall(cfg).MoveValueOrDie();
    RandomStaticScheduler sched(lattice, true, true);
    TrainImageClassifier(net.get(), split.train, &sched,
                         bench::StandardTrain());
    SweepRow(("G=" + std::to_string(groups)).c_str(), net.get(), split.test,
             rates);
  }

  bench::PrintTitle(
      "Ablation (b): subnets sampled per pass k (weighted random)");
  for (int k : bench::FastMode() ? std::vector<int>{2}
                                 : std::vector<int>{1, 3}) {
    auto net = MakeVggSmall(bench::StandardVgg()).MoveValueOrDie();
    RandomScheduler sched(lattice, k, DefaultRateWeights(rates.size()));
    TrainImageClassifier(net.get(), split.train, &sched,
                         bench::StandardTrain());
    SweepRow(("k=" + std::to_string(k)).c_str(), net.get(), split.test,
             rates);
  }

  bench::PrintTitle(
      "Ablation (c): normalization under slicing (R-min-max training)");
  for (int kind = 0; kind < 3; ++kind) {
    CnnConfig cfg = bench::StandardVgg();
    const char* label;
    if (kind == 0) {
      cfg.norm = NormKind::kGroup;
      label = "group-norm (paper)";
    } else if (kind == 1) {
      cfg.norm = NormKind::kMultiBatch;
      cfg.multi_bn_rates = rates;
      label = "multi-BN (slimmable)";
    } else {
      cfg.norm = NormKind::kBatch;
      label = "single BN (broken)";
    }
    auto net = MakeVggSmall(cfg).MoveValueOrDie();
    RandomStaticScheduler sched(lattice, true, true);
    TrainImageClassifier(net.get(), split.train, &sched,
                         bench::StandardTrain());
    SweepRow(label, net.get(), split.test, rates);
  }

  bench::PrintTitle(
      "Ablation (d): output rescaling in the sliced NNLM (Sec. 5.2.2)");
  {
    SyntheticTextOptions topts;
    topts.vocab_size = 80;
    topts.train_tokens = bench::FastMode() ? 6000 : 20000;
    topts.valid_tokens = 2000;
    topts.test_tokens = 2000;
    auto corpus = MakeSyntheticCorpus(topts).MoveValueOrDie();
    const SliceConfig lm_lattice = bench::EighthLattice();
    for (bool rescale : {true, false}) {
      NnlmConfig cfg;
      cfg.vocab_size = 80;
      cfg.embed_dim = 40;
      cfg.hidden = 40;
      cfg.slice_groups = 8;
      cfg.dropout = 0.1;
      cfg.rescale = rescale;
      auto model = Nnlm::Make(cfg).MoveValueOrDie();
      RandomStaticScheduler sched(lm_lattice, true, true);
      NnlmTrainOptions nopts;
      nopts.epochs = bench::FastMode() ? 2 : 8;
      nopts.sgd.lr = 4.0;
      nopts.sgd.clip_grad_norm = 1.0;
      TrainNnlm(model.get(), corpus, &sched, nopts);
      std::printf("  rescale=%-5s test perplexity:", rescale ? "on" : "off");
      for (double r : lm_lattice.rates()) {
        std::printf("  r=%.3f: %.2f", r,
                    EvalPerplexity(model.get(), corpus.test, r));
      }
      std::printf("\n");
      std::fflush(stdout);
    }
  }
  return 0;
}

}  // namespace
}  // namespace ms

int main() { return ms::Main(); }
