// Reproduces the Sec. 4.1 dynamic-workload experiment: a latency-SLO'd
// service under a peaky workload (up to 16x volatility), comparing
//   - elastic serving (model slicing; per-batch slice rate from Eq. 3),
//   - a fixed full-width model (accurate but misses deadlines at peak),
//   - a fixed base-width model (safe but inaccurate all day).
// The accuracy table comes from a model actually trained with slicing.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/core/evaluator.h"
#include "src/serving/latency_scheduler.h"
#include "src/serving/workload.h"

namespace ms {
namespace {

int Main() {
  bench::PrintTitle(
      "Sec. 4.1: dynamic workload serving under a latency SLO "
      "(elastic vs fixed)");

  // Train the sliced model to obtain a real accuracy-per-rate table.
  const ImageDataSplit split = bench::StandardImages();
  const SliceConfig lattice = bench::QuarterLattice();
  auto net = MakeVggSmall(bench::StandardVgg()).MoveValueOrDie();
  RandomStaticScheduler sched_train(lattice, true, true);
  TrainImageClassifier(net.get(), split.train, &sched_train,
                       bench::StandardTrain());
  std::vector<double> accuracy;
  for (double r : lattice.rates()) {
    accuracy.push_back(EvalAccuracy(net.get(), split.test, r));
  }
  std::printf("accuracy per rate:");
  for (size_t i = 0; i < accuracy.size(); ++i) {
    std::printf("  r=%.2f: %.2f%%", lattice.rates()[i],
                accuracy[i] * 100.0);
  }
  std::printf("\n\n");

  ServingConfig cfg;
  cfg.full_sample_time = 1.0;
  cfg.latency_budget = 32.0;  // per tick: up to 16 full-model samples
  cfg.lattice = lattice;
  cfg.accuracy_per_rate = accuracy;
  auto scheduler = LatencyScheduler::Make(cfg).MoveValueOrDie();

  WorkloadOptions wopts;
  wopts.num_ticks = 500;
  wopts.base_arrivals = 6.0;
  wopts.peak_multiplier = 10.0;
  wopts.spike_probability = 0.02;
  wopts.spike_multiplier = 16.0;
  const auto workload = GenerateWorkload(wopts).MoveValueOrDie();

  const ServingSummary elastic = SimulateServing(scheduler, workload);
  const ServingSummary fixed_full =
      SimulateFixedServing(scheduler, workload, 1.0);
  const ServingSummary fixed_base =
      SimulateFixedServing(scheduler, workload, 0.25);

  std::printf("%-24s %12s %12s %12s %12s\n", "policy", "SLO misses",
              "mean rate", "mean acc %", "utilization");
  bench::PrintRule(76);
  auto row = [&](const char* name, const ServingSummary& s) {
    std::printf("%-24s %12lld %12.3f %12.2f %12.3f\n", name,
                static_cast<long long>(s.slo_violations), s.mean_rate,
                s.mean_accuracy * 100.0, s.utilization);
  };
  row("elastic (model slicing)", elastic);
  row("fixed full model", fixed_full);
  row("fixed base model", fixed_base);

  std::printf(
      "\nExpected shape (paper Sec. 4.1): the elastic policy meets the SLO "
      "at every\ntick while delivering near-full accuracy off-peak; the "
      "full model violates\nduring peaks; the base model wastes accuracy "
      "all day.\n");
  return 0;
}

}  // namespace
}  // namespace ms

int main() { return ms::Main(); }
