// Cluster throughput gauntlet for the networked serving tier (DESIGN.md
// §10): a rate-aware router over elastic (sliced) shards versus the
// paper's fixed full-rate baseline, on real sockets, under overload.
//
// Topology (all localhost):
//
//   baseline:  1 shard, lattice {1.0}    — the non-elastic strawman.
//   cluster:   router + 3 shards, lattice {0.25..1.0} — model slicing on.
//
// Both tiers face the SAME offered load (~6x the baseline's calibrated
// full-rate capacity) with the SAME per-request deadline. The baseline can
// only shed what it cannot serve at rate 1.0; the sliced shards degrade
// rate instead of dropping requests (Sec. 4.1), so the cluster must
// sustain >= 4x the baseline's served QPS — that factor is the bench's
// exit-code gate, along with exact client-side accounting (every request
// gets exactly one terminal reply) and a served-reply p99 within the
// budget. Mid-phase one shard is SIGKILLed and later relaunched; the gate
// then also requires the router to have drained AND readmitted it.
//
// Modes:
//   spawn (default, Linux): forks the shard/router processes itself from
//     the sibling example binaries and runs the kill/relaunch chaos.
//   connect: MS_CLUSTER_ROUTER / MS_CLUSTER_BASELINE name already-running
//     endpoints (the CI cluster job launches the processes, does the kill,
//     and asserts readmit/ledgers from the --stats_out artifacts); chaos
//     and the readmit gate are the harness's job in this mode.
//
// After the throughput phases, a CHAOS section (DESIGN.md §13) drives the
// reliability layer end to end: network faults (drop / trickled-slow /
// truncate / recv-blackhole / heartbeat-skip) are armed over the wire via
// kControl frames with a fixed seed, and a ReliableClient-driven load
// checks the reliability gates by exit code:
//   - exact client-side accounting under armed faults (synthesis included),
//   - zero double-serves (router first-reply-wins + client dedup),
//   - chaos goodput >= 70% of the fault-free reference phase,
//   - with only net.send.slow armed, a hedging router's served p99 is
//     measurably below the non-hedging router's under the same arming.
//
// MS_BENCH_FAST=1 shortens the phases. MS_CLUSTER_PORT_BASE moves the
// port range (default 18171). In connect mode the chaos section runs only
// when MS_CLUSTER_ROUTER_HEDGED and MS_CLUSTER_CHAOS_TARGETS (csv of
// shard control endpoints) are set; MS_CLUSTER_FAULTS overrides the
// default fault spec (MS_FAULTS syntax).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/net/client.h"
#include "src/net/reliable_client.h"
#include "src/net/wire.h"
#include "src/obs/metrics.h"

#ifdef __linux__
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace ms {
namespace {

using Clock = std::chrono::steady_clock;

double Now() {
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

struct PhaseResult {
  int64_t submitted = 0;
  int64_t served = 0;
  int64_t shed = 0;
  int64_t expired = 0;
  int64_t rejected = 0;
  int64_t failed = 0;
  int64_t lost = 0;  ///< no reply by drain timeout — must be 0.
  double seconds = 0.0;
  double served_p99_ms = 0.0;

  int64_t accounted() const {
    return served + shed + expired + rejected + failed + lost;
  }
  double served_qps() const {
    return seconds > 0 ? static_cast<double>(served) / seconds : 0.0;
  }
};

/// Open-loop driver: offers `qps` for `seconds`, each request carrying
/// `deadline_seconds`, and classifies every terminal reply.
class LoadDriver {
 public:
  Status Run(const std::string& host, uint16_t port, double qps,
             double seconds, double deadline_seconds, PhaseResult* out) {
    net::WireClient client;
    std::mutex mu;
    std::map<uint64_t, double> outstanding;  // id -> send time
    obs::Histogram* rtt = obs::MetricsRegistry::Global().GetHistogram(
        "ms_cluster_client_rtt_ms");
    std::vector<double> served_rtts_ms;
    PhaseResult result;
    std::atomic<bool> disconnected{false};
    client.set_on_disconnect([&disconnected] { disconnected.store(true); });
    client.set_on_reply([&](const net::ReplyMsg& reply) {
      std::lock_guard<std::mutex> lock(mu);
      auto it = outstanding.find(reply.id);
      if (it == outstanding.end()) return;
      const double rtt_ms = (Now() - it->second) * 1e3;
      outstanding.erase(it);
      rtt->Observe(rtt_ms);
      if (reply.admit != AdmitResult::kAccepted) {
        switch (reply.admit) {
          case AdmitResult::kShedQueueFull: ++result.shed; break;
          default: ++result.rejected; break;
        }
        return;
      }
      switch (reply.outcome) {
        case RequestOutcome::kServed:
          ++result.served;
          served_rtts_ms.push_back(rtt_ms);
          break;
        case RequestOutcome::kExpired: ++result.expired; break;
        case RequestOutcome::kShedStop: ++result.shed; break;
        case RequestOutcome::kFailed: ++result.failed; break;
      }
    });
    MS_RETURN_NOT_OK(client.Connect(host, port));

    const double start = Now();
    const double interval = 1.0 / qps;
    uint64_t next_id = 1;
    double next_send = start;
    while (Now() - start < seconds) {
      if (disconnected.load()) break;
      const double now = Now();
      if (now < next_send) {
        std::this_thread::sleep_for(std::chrono::duration<double>(
            std::min(next_send - now, 0.002)));
        continue;
      }
      net::RequestMsg msg;
      msg.id = next_id++;
      msg.deadline_seconds = deadline_seconds;
      {
        std::lock_guard<std::mutex> lock(mu);
        outstanding[msg.id] = now;
      }
      ++result.submitted;
      if (!client.SendRequest(msg).ok()) {
        std::lock_guard<std::mutex> lock(mu);
        outstanding.erase(msg.id);
        ++result.lost;
      }
      next_send += interval;
      // Don't try to catch up after a stall burst-style; re-anchor.
      if (next_send < Now() - 10 * interval) next_send = Now();
    }
    result.seconds = Now() - start;

    // Drain: every in-flight request must reach a terminal reply. The
    // deadline bounds how long that can take server-side; allow generous
    // network/teardown slack on top.
    const double drain_deadline =
        Now() + std::max(10.0, 4.0 * deadline_seconds);
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(mu);
        if (outstanding.empty()) break;
      }
      if (Now() > drain_deadline || disconnected.load()) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      result.lost += static_cast<int64_t>(outstanding.size());
      outstanding.clear();
    }
    client.Close();

    if (!served_rtts_ms.empty()) {
      std::sort(served_rtts_ms.begin(), served_rtts_ms.end());
      const size_t idx = static_cast<size_t>(
          0.99 * static_cast<double>(served_rtts_ms.size() - 1));
      result.served_p99_ms = served_rtts_ms[idx];
    }
    *out = result;
    return Status::OK();
  }
};

/// Polls until the endpoint answers a stats request (process startup can
/// include model build + calibration + prewarm, so the timeout is long).
Result<net::StatsMsg> AwaitEndpoint(const std::string& host, uint16_t port,
                                    double timeout_seconds) {
  const double deadline = Now() + timeout_seconds;
  while (Now() < deadline) {
    net::WireClient client;
    if (client.Connect(host, port).ok()) {
      auto stats = client.RequestStats(2.0);
      client.Close();
      if (stats.ok()) return stats.MoveValueOrDie();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
  }
  return Status::Internal("endpoint " + host + " did not come up");
}

void PrintPhase(const char* name, const PhaseResult& r) {
  std::printf(
      "%-9s %8.1fs offered %6lld served %6lld (%.1f qps) shed %6lld "
      "expired %6lld rejected %5lld failed %5lld lost %3lld p99 %.0f ms\n",
      name, r.seconds, static_cast<long long>(r.submitted),
      static_cast<long long>(r.served), r.served_qps(),
      static_cast<long long>(r.shed), static_cast<long long>(r.expired),
      static_cast<long long>(r.rejected), static_cast<long long>(r.failed),
      static_cast<long long>(r.lost), r.served_p99_ms);
}

// ---- Chaos section (DESIGN.md §13) ------------------------------------

/// Faults armed on SHARD processes during the mixed-chaos phase. Trickle
/// delay stays small here: a shard's reply connection is shared, so
/// p * per-shard-qps * delay must stay well under 1 or the trickles
/// head-of-line-block every reply behind them.
constexpr char kDefaultChaosSpec[] =
    "net.send.drop=0.02,net.send.slow=0.05@0.3,net.frame.truncate=0.01,"
    "net.recv.blackhole=0.02,net.heartbeat.skip=0.1";
/// Slow-only arming for the hedging A/B phases: a fat 1s trickle tail that
/// hedged attempts can beat.
constexpr char kTailSpec[] = "net.send.slow=0.04@1.0";

struct ChaosConfig {
  bool enabled = false;
  std::vector<std::string> shard_targets;  ///< shard control endpoints
  std::string router_plain;                ///< failover-only router
  std::string router_hedged;               ///< --hedge router
  std::string fault_spec = kDefaultChaosSpec;
  uint64_t seed = 7;
};

/// Drops `point=...` entries from an MS_FAULTS spec. Routers get the chaos
/// spec minus net.send.slow: their reply connection to THE single load
/// client would otherwise head-of-line-block on every trickle.
std::string StripPoint(const std::string& spec, const std::string& point) {
  std::string out;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(pos, comma - pos);
    if (entry.rfind(point + "=", 0) != 0) {
      if (!out.empty()) out += ',';
      out += entry;
    }
    pos = comma + 1;
  }
  return out;
}

/// One-shot chaos-control RPC with retries: the ack rides the target's
/// (possibly already-faulted) send path, and arming is idempotent.
bool ControlEndpoint(const std::string& addr, net::ControlOp op,
                     uint64_t seed, const std::string& spec) {
  static std::atomic<uint64_t> next_id{1000};
  auto hp = net::ParseHostPort(addr);
  if (!hp.ok()) return false;
  const auto [host, port] = hp.ValueOrDie();
  for (int attempt = 0; attempt < 10; ++attempt) {
    net::ControlMsg msg;
    msg.id = next_id.fetch_add(1);
    msg.op = op;
    msg.seed = seed;
    msg.spec = spec;
    if (net::SendControl(host, port, msg, 2.0).ok()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  std::fprintf(stderr, "chaos control to %s failed\n", addr.c_str());
  return false;
}

/// Phase result + the ReliableClient's own ledger (dup detection etc.).
struct ChaosPhase {
  PhaseResult base;
  net::ReliableClient::Stats stats;
};

/// Open-loop driver over ReliableClient: reconnects, resends within
/// budget, synthesizes kFailed at budget + grace — so every submitted
/// request reaches exactly one terminal classification even when frames
/// or whole connections vanish.
Status RunReliablePhase(const std::string& host, uint16_t port, double qps,
                        double seconds, double deadline_seconds,
                        ChaosPhase* out) {
  net::ReliableClient::Options copts;
  copts.host = host;
  copts.port = port;
  copts.seed = 11;
  net::ReliableClient client(copts);
  MS_RETURN_NOT_OK(client.Start());

  std::mutex mu;
  PhaseResult result;
  std::vector<double> served_rtts_ms;
  obs::Histogram* rtt = obs::MetricsRegistry::Global().GetHistogram(
      "ms_cluster_client_rtt_ms");

  const double start = Now();
  const double interval = 1.0 / qps;
  double next_send = start;
  while (Now() - start < seconds) {
    const double now = Now();
    if (now < next_send) {
      std::this_thread::sleep_for(std::chrono::duration<double>(
          std::min(next_send - now, 0.002)));
      continue;
    }
    const double sent_at = now;
    ++result.submitted;
    client.Submit(deadline_seconds,
                  [&, sent_at](const net::ReplyMsg& reply) {
      const double rtt_ms = (Now() - sent_at) * 1e3;
      std::lock_guard<std::mutex> lock(mu);
      rtt->Observe(rtt_ms);
      if (reply.admit != AdmitResult::kAccepted) {
        if (reply.admit == AdmitResult::kShedQueueFull) {
          ++result.shed;
        } else {
          ++result.rejected;
        }
        return;
      }
      switch (reply.outcome) {
        case RequestOutcome::kServed:
          ++result.served;
          served_rtts_ms.push_back(rtt_ms);
          break;
        case RequestOutcome::kExpired: ++result.expired; break;
        case RequestOutcome::kShedStop: ++result.shed; break;
        case RequestOutcome::kFailed: ++result.failed; break;
      }
    });
    next_send += interval;
    if (next_send < Now() - 10 * interval) next_send = Now();
  }
  result.seconds = Now() - start;

  // Drain: timeout synthesis bounds every pending request at budget +
  // grace; anything still pending past that (+ slack) counts as lost.
  const double drain_deadline =
      Now() + deadline_seconds + copts.reply_grace_seconds + 5.0;
  while (client.pending() > 0 && Now() < drain_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  result.lost = static_cast<int64_t>(client.pending());
  client.Stop();

  {
    std::lock_guard<std::mutex> lock(mu);
    if (!served_rtts_ms.empty()) {
      std::sort(served_rtts_ms.begin(), served_rtts_ms.end());
      const size_t idx = static_cast<size_t>(
          0.99 * static_cast<double>(served_rtts_ms.size() - 1));
      result.served_p99_ms = served_rtts_ms[idx];
    }
    out->base = result;
  }
  out->stats = client.stats();
  return Status::OK();
}

void PrintChaosPhase(const char* name, const ChaosPhase& p) {
  PrintPhase(name, p.base);
  std::printf(
      "%-9s   dups %lld, synthesized %lld, late replies %lld, reconnects "
      "%lld, resends %lld\n",
      "", static_cast<long long>(p.stats.duplicates),
      static_cast<long long>(p.stats.synthesized),
      static_cast<long long>(p.stats.late_replies),
      static_cast<long long>(p.stats.reconnects),
      static_cast<long long>(p.stats.resends));
}

/// Disarms every fault registry the bench can reach (shards + routers).
bool DisarmAll(const ChaosConfig& cfg) {
  bool ok = true;
  for (const std::string& t : cfg.shard_targets) {
    ok = ControlEndpoint(t, net::ControlOp::kDisarmFaults, 0, "") && ok;
  }
  ok = ControlEndpoint(cfg.router_plain, net::ControlOp::kDisarmFaults, 0,
                       "") && ok;
  ok = ControlEndpoint(cfg.router_hedged, net::ControlOp::kDisarmFaults, 0,
                       "") && ok;
  return ok;
}

/// The reliability gauntlet: ref -> mixed chaos -> slow-only hedging A/B.
/// Returns 0 on success; prints a FAIL line per violated gate.
int RunChaosSection(const ChaosConfig& cfg, double capacity_qps) {
  // Modest fixed load: the chaos gates probe RELIABILITY, not capacity —
  // goodput loss must come from armed faults, not from overload shedding.
  const double chaos_qps = std::min(60.0, std::max(10.0, 0.6 * capacity_qps));
  const double tail_qps = std::min(30.0, chaos_qps);
  // A fat budget so the failover/hedge timers fire well before settle and
  // rescued attempts still have budget to serve in.
  const double deadline = 2.0;
  const double seconds = bench::FastMode() ? 5.0 : 10.0;

  auto plain_hp = net::ParseHostPort(cfg.router_plain);
  auto hedged_hp = net::ParseHostPort(cfg.router_hedged);
  if (!plain_hp.ok() || !hedged_hp.ok()) {
    std::fprintf(stderr, "chaos: bad router address\n");
    return 1;
  }
  const auto [phost, pport] = plain_hp.ValueOrDie();
  const auto [hhost, hport] = hedged_hp.ValueOrDie();

  std::printf(
      "\nchaos section: %.0f qps mixed-fault phase, %.0f qps hedging A/B, "
      "deadline %.1fs, %.0fs per phase, seed %llu\n  spec: %s\n",
      chaos_qps, tail_qps, deadline, seconds,
      static_cast<unsigned long long>(cfg.seed), cfg.fault_spec.c_str());
  std::fflush(stdout);

  // Fault-free reference under the same load and deadline.
  if (!DisarmAll(cfg)) return 1;
  ChaosPhase ref;
  Status st = RunReliablePhase(phost, pport, chaos_qps, seconds, deadline,
                               &ref);
  if (!st.ok()) {
    std::fprintf(stderr, "chaos ref phase: %s\n", st.ToString().c_str());
    return 1;
  }
  PrintChaosPhase("ref", ref);

  // Mixed chaos: full spec on the shards, the same spec minus the send
  // trickle on the router the client talks to.
  bool armed = true;
  for (const std::string& t : cfg.shard_targets) {
    armed = ControlEndpoint(t, net::ControlOp::kArmFaults, cfg.seed,
                            cfg.fault_spec) && armed;
  }
  armed = ControlEndpoint(cfg.router_plain, net::ControlOp::kArmFaults,
                          cfg.seed + 1,
                          StripPoint(cfg.fault_spec, "net.send.slow")) &&
          armed;
  if (!armed) return 1;
  ChaosPhase chaos;
  st = RunReliablePhase(phost, pport, chaos_qps, seconds, deadline, &chaos);
  if (!st.ok()) {
    std::fprintf(stderr, "chaos phase: %s\n", st.ToString().c_str());
    return 1;
  }
  PrintChaosPhase("chaos", chaos);

  // Hedging A/B: ONLY the slow trickle armed, identical seed and load, one
  // run through the failover-only router and one through the hedged one.
  if (!DisarmAll(cfg)) return 1;
  for (const std::string& t : cfg.shard_targets) {
    if (!ControlEndpoint(t, net::ControlOp::kArmFaults, cfg.seed,
                         kTailSpec)) {
      return 1;
    }
  }
  ChaosPhase tail_off;
  st = RunReliablePhase(phost, pport, tail_qps, seconds, deadline,
                        &tail_off);
  if (!st.ok()) {
    std::fprintf(stderr, "tail-off phase: %s\n", st.ToString().c_str());
    return 1;
  }
  PrintChaosPhase("tail-off", tail_off);
  ChaosPhase tail_on;
  st = RunReliablePhase(hhost, hport, tail_qps, seconds, deadline, &tail_on);
  if (!st.ok()) {
    std::fprintf(stderr, "tail-on phase: %s\n", st.ToString().c_str());
    return 1;
  }
  PrintChaosPhase("tail-on", tail_on);
  DisarmAll(cfg);  // leave the cluster clean for whoever runs next

  // The hedged router must actually have hedged.
  int64_t hedges = -1;
  auto hstats = AwaitEndpoint(hhost, hport, 30.0);
  if (hstats.ok()) hedges = hstats.ValueOrDie().hedges;

  // ---- Reliability gates ----
  bool ok = true;
  struct Named { const char* name; const ChaosPhase* p; };
  for (const Named& n : std::initializer_list<Named>{
           {"ref", &ref}, {"chaos", &chaos}, {"tail-off", &tail_off},
           {"tail-on", &tail_on}}) {
    const PhaseResult& r = n.p->base;
    if (r.submitted != r.accounted() || r.lost != 0) {
      std::printf(
          "FAIL chaos accounting (%s): %lld submitted vs %lld accounted, "
          "%lld lost\n",
          n.name, static_cast<long long>(r.submitted),
          static_cast<long long>(r.accounted()),
          static_cast<long long>(r.lost));
      ok = false;
    }
    if (n.p->stats.duplicates != 0) {
      std::printf("FAIL double-serve (%s): %lld duplicate replies\n", n.name,
                  static_cast<long long>(n.p->stats.duplicates));
      ok = false;
    }
  }
  const double goodput = ref.base.served_qps() > 0
                             ? chaos.base.served_qps() / ref.base.served_qps()
                             : 0.0;
  std::printf("chaos goodput: %.0f%% of fault-free (gate: >= 70%%)\n",
              goodput * 100.0);
  if (goodput < 0.70) {
    std::printf("FAIL goodput: armed faults cost more than 30%%\n");
    ok = false;
  }
  std::printf(
      "hedging p99 under net.send.slow: off %.0f ms, on %.0f ms "
      "(gate: on < off - 100 ms), hedges %lld\n",
      tail_off.base.served_p99_ms, tail_on.base.served_p99_ms,
      static_cast<long long>(hedges));
  if (tail_on.base.served_p99_ms >= tail_off.base.served_p99_ms - 100.0) {
    std::printf("FAIL hedging: no measurable p99 win\n");
    ok = false;
  }
  if (hedges < 1) {
    std::printf("FAIL hedging: the hedged router never hedged\n");
    ok = false;
  }
  if (ok) std::printf("chaos section PASS\n");
  std::fflush(stdout);
  return ok ? 0 : 1;
}

#ifdef __linux__

std::string SelfDir() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return ".";
  buf[n] = '\0';
  std::string path(buf);
  const size_t slash = path.rfind('/');
  return slash == std::string::npos ? "." : path.substr(0, slash);
}

pid_t SpawnProcess(const std::vector<std::string>& argv) {
  std::vector<char*> cargv;
  for (const auto& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
  cargv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    // Children each run single-threaded GEMM so 5 processes on one CI
    // machine don't oversubscribe each other into timing chaos.
    ::setenv("MS_NUM_THREADS", "1", 1);
    ::execv(cargv[0], cargv.data());
    std::perror("execv");
    ::_exit(127);
  }
  return pid;
}

void StopProcess(pid_t pid, int sig) {
  if (pid <= 0) return;
  ::kill(pid, sig);
  int status = 0;
  ::waitpid(pid, &status, 0);
}

#endif  // __linux__

int RunGauntlet(const std::string& baseline_addr,
                const std::string& router_addr, bool spawned,
                const std::function<void()>& kill_shard,
                const std::function<void()>& relaunch_shard,
                const ChaosConfig& chaos_cfg) {
  auto baseline_hp = net::ParseHostPort(baseline_addr);
  auto router_hp = net::ParseHostPort(router_addr);
  if (!baseline_hp.ok() || !router_hp.ok()) {
    std::fprintf(stderr, "bad endpoint address\n");
    return 1;
  }
  const auto [bhost, bport] = baseline_hp.ValueOrDie();
  const auto [rhost, rport] = router_hp.ValueOrDie();

  auto baseline_stats = AwaitEndpoint(bhost, bport, 180.0);
  if (!baseline_stats.ok()) {
    std::fprintf(stderr, "%s\n",
                 baseline_stats.status().ToString().c_str());
    return 1;
  }
  auto router_stats = AwaitEndpoint(rhost, rport, 180.0);
  if (!router_stats.ok()) {
    std::fprintf(stderr, "%s\n", router_stats.status().ToString().c_str());
    return 1;
  }
  if (chaos_cfg.enabled) {
    // The harness may have LAUNCHED the shards with MS_FAULTS armed (the
    // CI net-chaos stage does): the throughput phases must run clean, so
    // disarm everything up front; the chaos section re-arms on its own
    // schedule.
    auto hedged_hp = net::ParseHostPort(chaos_cfg.router_hedged);
    if (!hedged_hp.ok()) {
      std::fprintf(stderr, "bad hedged router address\n");
      return 1;
    }
    const auto [hhost, hport] = hedged_hp.ValueOrDie();
    auto hedged_stats = AwaitEndpoint(hhost, hport, 180.0);
    if (!hedged_stats.ok()) {
      std::fprintf(stderr, "%s\n",
                   hedged_stats.status().ToString().c_str());
      return 1;
    }
    // The shard control endpoints must be LISTENING before the disarm
    // RPCs go out — shard startup (model build + calibration) can lag the
    // routers by tens of seconds.
    for (const std::string& t : chaos_cfg.shard_targets) {
      auto shp = net::ParseHostPort(t);
      if (!shp.ok()) {
        std::fprintf(stderr, "bad chaos target %s\n", t.c_str());
        return 1;
      }
      const auto [shost, sport] = shp.ValueOrDie();
      auto up = AwaitEndpoint(shost, sport, 180.0);
      if (!up.ok()) {
        std::fprintf(stderr, "%s\n", up.status().ToString().c_str());
        return 1;
      }
    }
    if (!DisarmAll(chaos_cfg)) return 1;
  }

  // Size the load off the baseline's own advertisement: full-rate capacity
  // is 1/t qps (one tick serves tick/t samples). Offer ~6x that to both
  // tiers; the deadline is the full latency budget (2 ticks).
  const double t = baseline_stats.ValueOrDie().calibrated_t;
  const double tick = baseline_stats.ValueOrDie().tick_seconds;
  if (t <= 0.0 || tick <= 0.0) {
    std::fprintf(stderr, "baseline advertised no calibration\n");
    return 1;
  }
  const double capacity_qps = 1.0 / t;
  const double offered_qps = std::min(2000.0, 6.0 * capacity_qps);
  const double deadline = 2.0 * tick;
  const double phase_seconds = bench::FastMode() ? 6.0 : 12.0;
  std::printf(
      "baseline t = %.2f ms/sample, tick %.0f ms -> capacity %.1f qps; "
      "offering %.1f qps, deadline %.0f ms, %.0fs per phase\n",
      t * 1e3, tick * 1e3, capacity_qps, offered_qps, deadline * 1e3,
      phase_seconds);
  std::fflush(stdout);

  LoadDriver driver;
  PhaseResult baseline;
  Status st = driver.Run(bhost, bport, offered_qps, phase_seconds, deadline,
                         &baseline);
  if (!st.ok()) {
    std::fprintf(stderr, "baseline phase: %s\n", st.ToString().c_str());
    return 1;
  }
  PrintPhase("baseline", baseline);
  std::fflush(stdout);

  // Cluster phase, with the kill/relaunch chaos riding along (spawn mode).
  std::thread chaos;
  if (kill_shard) {
    chaos = std::thread([&] {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(phase_seconds / 3.0));
      std::printf("chaos: SIGKILL shard 3\n");
      std::fflush(stdout);
      kill_shard();
      std::this_thread::sleep_for(
          std::chrono::duration<double>(phase_seconds / 3.0));
      std::printf("chaos: relaunching shard 3\n");
      std::fflush(stdout);
      relaunch_shard();
    });
  }
  PhaseResult cluster;
  st = driver.Run(rhost, rport, offered_qps, phase_seconds, deadline,
                  &cluster);
  if (chaos.joinable()) chaos.join();
  if (!st.ok()) {
    std::fprintf(stderr, "cluster phase: %s\n", st.ToString().c_str());
    return 1;
  }
  PrintPhase("cluster", cluster);
  std::fflush(stdout);

  // In spawn mode, wait for the relaunched shard to finish starting and
  // the router's gossip to readmit it, then read the router's ledger.
  int64_t readmits = -1;
  if (spawned) {
    const double wait_deadline = Now() + 180.0;
    while (Now() < wait_deadline) {
      auto rs = AwaitEndpoint(rhost, rport, 10.0);
      if (rs.ok()) {
        const auto& shards = rs.ValueOrDie().shards;
        int64_t total = 0;
        for (const auto& v : shards) total += v.readmits;
        readmits = total;
        if (total >= 1) break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(500));
    }
  }

  // ---- Gates (exit code) ------------------------------------------------
  bool ok = true;
  const bool baseline_accounted = baseline.submitted == baseline.accounted();
  const bool cluster_accounted = cluster.submitted == cluster.accounted();
  if (!baseline_accounted || !cluster_accounted ||
      baseline.lost + cluster.lost != 0) {
    std::printf(
        "FAIL accounting: every request must get exactly one terminal "
        "reply (baseline %lld/%lld, cluster %lld/%lld, lost %lld)\n",
        static_cast<long long>(baseline.accounted()),
        static_cast<long long>(baseline.submitted),
        static_cast<long long>(cluster.accounted()),
        static_cast<long long>(cluster.submitted),
        static_cast<long long>(baseline.lost + cluster.lost));
    ok = false;
  }
  const double ratio = baseline.served > 0
                           ? cluster.served_qps() / baseline.served_qps()
                           : 0.0;
  std::printf("cluster/baseline served QPS ratio: %.2fx (gate: >= 4x)\n",
              ratio);
  if (ratio < 4.0) {
    std::printf(
        "FAIL throughput: elastic cluster must out-serve the fixed "
        "full-rate baseline >= 4x under equal load and deadline\n");
    ok = false;
  }
  // Served replies met their deadline server-side by construction; the
  // client-observed p99 additionally bounds network + reply flush slack.
  const double p99_budget_ms = (deadline + tick) * 1e3;
  if (cluster.served > 0 && cluster.served_p99_ms > p99_budget_ms) {
    std::printf("FAIL latency: served p99 %.0f ms > %.0f ms budget\n",
                cluster.served_p99_ms, p99_budget_ms);
    ok = false;
  }
  if (spawned && readmits < 1) {
    std::printf(
        "FAIL readmit: router never readmitted the relaunched shard\n");
    ok = false;
  }
  if (ok) {
    std::printf("cluster gauntlet PASS%s\n",
                spawned ? " (kill + readmit survived)" : "");
  }
  if (chaos_cfg.enabled) {
    const int chaos_rc = RunChaosSection(chaos_cfg, capacity_qps);
    if (chaos_rc != 0) ok = false;
  }
  return ok ? 0 : 1;
}

int Main() {
  bench::PrintTitle(
      "cluster serving: rate-aware router + elastic shards vs fixed "
      "full-rate single server (real processes, real sockets)");

  // Connect mode: the harness (CI cluster job) owns the processes. The
  // chaos section runs only when the harness also names a hedged router
  // and the shard control endpoints.
  const char* router_env = std::getenv("MS_CLUSTER_ROUTER");
  const char* baseline_env = std::getenv("MS_CLUSTER_BASELINE");
  if (router_env != nullptr && baseline_env != nullptr) {
    ChaosConfig cfg;
    const char* hedged_env = std::getenv("MS_CLUSTER_ROUTER_HEDGED");
    const char* targets_env = std::getenv("MS_CLUSTER_CHAOS_TARGETS");
    if (hedged_env != nullptr && targets_env != nullptr) {
      cfg.enabled = true;
      cfg.router_plain = router_env;
      cfg.router_hedged = hedged_env;
      std::stringstream ss(targets_env);
      std::string item;
      while (std::getline(ss, item, ',')) {
        if (!item.empty()) cfg.shard_targets.push_back(item);
      }
      if (const char* spec = std::getenv("MS_CLUSTER_FAULTS")) {
        cfg.fault_spec = spec;
      }
    }
    return RunGauntlet(baseline_env, router_env, /*spawned=*/false, nullptr,
                       nullptr, cfg);
  }

#ifndef __linux__
  std::printf("spawn mode requires Linux; set MS_CLUSTER_ROUTER / "
              "MS_CLUSTER_BASELINE to drive existing endpoints\n");
  return 0;
#else
  const int port_base = [] {
    const char* v = std::getenv("MS_CLUSTER_PORT_BASE");
    return v != nullptr ? std::atoi(v) : 18171;
  }();
  const std::string dir = SelfDir();
  const std::string mscli = dir + "/../examples/example_mscli";
  const std::string msrouter = dir + "/../examples/example_msrouter";
  if (::access(mscli.c_str(), X_OK) != 0 ||
      ::access(msrouter.c_str(), X_OK) != 0) {
    std::fprintf(stderr, "example binaries not found next to bench (%s)\n",
                 mscli.c_str());
    return 1;
  }

  // The serving budget is fixed (shard flag); the offered load adapts to
  // the measured t via the stats advertisement instead.
  const std::string budget_ms = "400";
  auto shard_args = [&](int port, const char* lb) {
    return std::vector<std::string>{
        mscli,       "serve",
        "--model=vgg13",
        // Widened so full-rate per-sample cost is milliseconds, not
        // microseconds: the offered load (6x the baseline's capacity) then
        // stays at a rate one open-loop client can actually generate.
        "--width_mult=4",
        std::string("--lb=") + lb,
        "--granularity=0.25",
        "--workers=1",
        std::string("--budget_ms=") + budget_ms,
        "--queue=4096",
        "--chaos_control",
        std::string("--listen=") + std::to_string(port)};
  };
  const int bport = port_base;
  const int sport1 = port_base + 1, sport2 = port_base + 2,
            sport3 = port_base + 3;
  const int rport = port_base + 4;
  const int rhport = port_base + 5;  // hedged router (chaos A/B)
  const std::string shard_csv = std::string(":") + std::to_string(sport1) +
                                ",:" + std::to_string(sport2) + ",:" +
                                std::to_string(sport3);

  std::vector<pid_t> pids;
  pid_t baseline_pid = SpawnProcess(shard_args(bport, "1.0"));
  pid_t shard1 = SpawnProcess(shard_args(sport1, "0.25"));
  pid_t shard2 = SpawnProcess(shard_args(sport2, "0.25"));
  pid_t shard3 = SpawnProcess(shard_args(sport3, "0.25"));
  pid_t router = SpawnProcess(
      {msrouter, std::string("--listen=") + std::to_string(rport),
       std::string("--shards=") + shard_csv, "--chaos_control"});
  pid_t hedged = SpawnProcess(
      {msrouter, std::string("--listen=") + std::to_string(rhport),
       std::string("--shards=") + shard_csv, "--hedge", "--chaos_control"});
  // shard3 handled below
  pids = {baseline_pid, shard1, shard2, router, hedged};

  std::atomic<pid_t> shard3_pid{shard3};
  auto kill_shard3 = [&shard3_pid] {
    const pid_t pid = shard3_pid.exchange(-1);
    if (pid > 0) StopProcess(pid, SIGKILL);
  };
  auto relaunch_shard3 = [&] {
    shard3_pid.store(SpawnProcess(shard_args(sport3, "0.25")));
  };

  ChaosConfig cfg;
  cfg.enabled = true;
  cfg.shard_targets = {":" + std::to_string(sport1),
                       ":" + std::to_string(sport2),
                       ":" + std::to_string(sport3)};
  cfg.router_plain = ":" + std::to_string(rport);
  cfg.router_hedged = ":" + std::to_string(rhport);
  if (const char* spec = std::getenv("MS_CLUSTER_FAULTS")) {
    cfg.fault_spec = spec;
  }

  const int rc = RunGauntlet(
      ":" + std::to_string(bport), ":" + std::to_string(rport),
      /*spawned=*/true, kill_shard3, relaunch_shard3, cfg);

  for (pid_t pid : pids) StopProcess(pid, SIGTERM);
  kill_shard3();  // SIGKILL is fine for teardown of the chaos shard
  return rc;
#endif
}

}  // namespace
}  // namespace ms

int main() { return ms::Main(); }
