// Cluster throughput gauntlet for the networked serving tier (DESIGN.md
// §10): a rate-aware router over elastic (sliced) shards versus the
// paper's fixed full-rate baseline, on real sockets, under overload.
//
// Topology (all localhost):
//
//   baseline:  1 shard, lattice {1.0}    — the non-elastic strawman.
//   cluster:   router + 3 shards, lattice {0.25..1.0} — model slicing on.
//
// Both tiers face the SAME offered load (~6x the baseline's calibrated
// full-rate capacity) with the SAME per-request deadline. The baseline can
// only shed what it cannot serve at rate 1.0; the sliced shards degrade
// rate instead of dropping requests (Sec. 4.1), so the cluster must
// sustain >= 4x the baseline's served QPS — that factor is the bench's
// exit-code gate, along with exact client-side accounting (every request
// gets exactly one terminal reply) and a served-reply p99 within the
// budget. Mid-phase one shard is SIGKILLed and later relaunched; the gate
// then also requires the router to have drained AND readmitted it.
//
// Modes:
//   spawn (default, Linux): forks the shard/router processes itself from
//     the sibling example binaries and runs the kill/relaunch chaos.
//   connect: MS_CLUSTER_ROUTER / MS_CLUSTER_BASELINE name already-running
//     endpoints (the CI cluster job launches the processes, does the kill,
//     and asserts readmit/ledgers from the --stats_out artifacts); chaos
//     and the readmit gate are the harness's job in this mode.
//
// MS_BENCH_FAST=1 shortens the phases. MS_CLUSTER_PORT_BASE moves the
// port range (default 18171).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/net/client.h"
#include "src/net/wire.h"
#include "src/obs/metrics.h"

#ifdef __linux__
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace ms {
namespace {

using Clock = std::chrono::steady_clock;

double Now() {
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

struct PhaseResult {
  int64_t submitted = 0;
  int64_t served = 0;
  int64_t shed = 0;
  int64_t expired = 0;
  int64_t rejected = 0;
  int64_t failed = 0;
  int64_t lost = 0;  ///< no reply by drain timeout — must be 0.
  double seconds = 0.0;
  double served_p99_ms = 0.0;

  int64_t accounted() const {
    return served + shed + expired + rejected + failed + lost;
  }
  double served_qps() const {
    return seconds > 0 ? static_cast<double>(served) / seconds : 0.0;
  }
};

/// Open-loop driver: offers `qps` for `seconds`, each request carrying
/// `deadline_seconds`, and classifies every terminal reply.
class LoadDriver {
 public:
  Status Run(const std::string& host, uint16_t port, double qps,
             double seconds, double deadline_seconds, PhaseResult* out) {
    net::WireClient client;
    std::mutex mu;
    std::map<uint64_t, double> outstanding;  // id -> send time
    obs::Histogram* rtt = obs::MetricsRegistry::Global().GetHistogram(
        "ms_cluster_client_rtt_ms");
    std::vector<double> served_rtts_ms;
    PhaseResult result;
    std::atomic<bool> disconnected{false};
    client.set_on_disconnect([&disconnected] { disconnected.store(true); });
    client.set_on_reply([&](const net::ReplyMsg& reply) {
      std::lock_guard<std::mutex> lock(mu);
      auto it = outstanding.find(reply.id);
      if (it == outstanding.end()) return;
      const double rtt_ms = (Now() - it->second) * 1e3;
      outstanding.erase(it);
      rtt->Observe(rtt_ms);
      if (reply.admit != AdmitResult::kAccepted) {
        switch (reply.admit) {
          case AdmitResult::kShedQueueFull: ++result.shed; break;
          default: ++result.rejected; break;
        }
        return;
      }
      switch (reply.outcome) {
        case RequestOutcome::kServed:
          ++result.served;
          served_rtts_ms.push_back(rtt_ms);
          break;
        case RequestOutcome::kExpired: ++result.expired; break;
        case RequestOutcome::kShedStop: ++result.shed; break;
        case RequestOutcome::kFailed: ++result.failed; break;
      }
    });
    MS_RETURN_NOT_OK(client.Connect(host, port));

    const double start = Now();
    const double interval = 1.0 / qps;
    uint64_t next_id = 1;
    double next_send = start;
    while (Now() - start < seconds) {
      if (disconnected.load()) break;
      const double now = Now();
      if (now < next_send) {
        std::this_thread::sleep_for(std::chrono::duration<double>(
            std::min(next_send - now, 0.002)));
        continue;
      }
      net::RequestMsg msg;
      msg.id = next_id++;
      msg.deadline_seconds = deadline_seconds;
      {
        std::lock_guard<std::mutex> lock(mu);
        outstanding[msg.id] = now;
      }
      ++result.submitted;
      if (!client.SendRequest(msg).ok()) {
        std::lock_guard<std::mutex> lock(mu);
        outstanding.erase(msg.id);
        ++result.lost;
      }
      next_send += interval;
      // Don't try to catch up after a stall burst-style; re-anchor.
      if (next_send < Now() - 10 * interval) next_send = Now();
    }
    result.seconds = Now() - start;

    // Drain: every in-flight request must reach a terminal reply. The
    // deadline bounds how long that can take server-side; allow generous
    // network/teardown slack on top.
    const double drain_deadline =
        Now() + std::max(10.0, 4.0 * deadline_seconds);
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(mu);
        if (outstanding.empty()) break;
      }
      if (Now() > drain_deadline || disconnected.load()) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      result.lost += static_cast<int64_t>(outstanding.size());
      outstanding.clear();
    }
    client.Close();

    if (!served_rtts_ms.empty()) {
      std::sort(served_rtts_ms.begin(), served_rtts_ms.end());
      const size_t idx = static_cast<size_t>(
          0.99 * static_cast<double>(served_rtts_ms.size() - 1));
      result.served_p99_ms = served_rtts_ms[idx];
    }
    *out = result;
    return Status::OK();
  }
};

/// Polls until the endpoint answers a stats request (process startup can
/// include model build + calibration + prewarm, so the timeout is long).
Result<net::StatsMsg> AwaitEndpoint(const std::string& host, uint16_t port,
                                    double timeout_seconds) {
  const double deadline = Now() + timeout_seconds;
  while (Now() < deadline) {
    net::WireClient client;
    if (client.Connect(host, port).ok()) {
      auto stats = client.RequestStats(2.0);
      client.Close();
      if (stats.ok()) return stats.MoveValueOrDie();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
  }
  return Status::Internal("endpoint " + host + " did not come up");
}

void PrintPhase(const char* name, const PhaseResult& r) {
  std::printf(
      "%-9s %8.1fs offered %6lld served %6lld (%.1f qps) shed %6lld "
      "expired %6lld rejected %5lld failed %5lld lost %3lld p99 %.0f ms\n",
      name, r.seconds, static_cast<long long>(r.submitted),
      static_cast<long long>(r.served), r.served_qps(),
      static_cast<long long>(r.shed), static_cast<long long>(r.expired),
      static_cast<long long>(r.rejected), static_cast<long long>(r.failed),
      static_cast<long long>(r.lost), r.served_p99_ms);
}

#ifdef __linux__

std::string SelfDir() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return ".";
  buf[n] = '\0';
  std::string path(buf);
  const size_t slash = path.rfind('/');
  return slash == std::string::npos ? "." : path.substr(0, slash);
}

pid_t SpawnProcess(const std::vector<std::string>& argv) {
  std::vector<char*> cargv;
  for (const auto& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
  cargv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    // Children each run single-threaded GEMM so 5 processes on one CI
    // machine don't oversubscribe each other into timing chaos.
    ::setenv("MS_NUM_THREADS", "1", 1);
    ::execv(cargv[0], cargv.data());
    std::perror("execv");
    ::_exit(127);
  }
  return pid;
}

void StopProcess(pid_t pid, int sig) {
  if (pid <= 0) return;
  ::kill(pid, sig);
  int status = 0;
  ::waitpid(pid, &status, 0);
}

#endif  // __linux__

int RunGauntlet(const std::string& baseline_addr,
                const std::string& router_addr, bool spawned,
                const std::function<void()>& kill_shard,
                const std::function<void()>& relaunch_shard) {
  auto baseline_hp = net::ParseHostPort(baseline_addr);
  auto router_hp = net::ParseHostPort(router_addr);
  if (!baseline_hp.ok() || !router_hp.ok()) {
    std::fprintf(stderr, "bad endpoint address\n");
    return 1;
  }
  const auto [bhost, bport] = baseline_hp.ValueOrDie();
  const auto [rhost, rport] = router_hp.ValueOrDie();

  auto baseline_stats = AwaitEndpoint(bhost, bport, 180.0);
  if (!baseline_stats.ok()) {
    std::fprintf(stderr, "%s\n",
                 baseline_stats.status().ToString().c_str());
    return 1;
  }
  auto router_stats = AwaitEndpoint(rhost, rport, 180.0);
  if (!router_stats.ok()) {
    std::fprintf(stderr, "%s\n", router_stats.status().ToString().c_str());
    return 1;
  }

  // Size the load off the baseline's own advertisement: full-rate capacity
  // is 1/t qps (one tick serves tick/t samples). Offer ~6x that to both
  // tiers; the deadline is the full latency budget (2 ticks).
  const double t = baseline_stats.ValueOrDie().calibrated_t;
  const double tick = baseline_stats.ValueOrDie().tick_seconds;
  if (t <= 0.0 || tick <= 0.0) {
    std::fprintf(stderr, "baseline advertised no calibration\n");
    return 1;
  }
  const double capacity_qps = 1.0 / t;
  const double offered_qps = std::min(2000.0, 6.0 * capacity_qps);
  const double deadline = 2.0 * tick;
  const double phase_seconds = bench::FastMode() ? 6.0 : 12.0;
  std::printf(
      "baseline t = %.2f ms/sample, tick %.0f ms -> capacity %.1f qps; "
      "offering %.1f qps, deadline %.0f ms, %.0fs per phase\n",
      t * 1e3, tick * 1e3, capacity_qps, offered_qps, deadline * 1e3,
      phase_seconds);
  std::fflush(stdout);

  LoadDriver driver;
  PhaseResult baseline;
  Status st = driver.Run(bhost, bport, offered_qps, phase_seconds, deadline,
                         &baseline);
  if (!st.ok()) {
    std::fprintf(stderr, "baseline phase: %s\n", st.ToString().c_str());
    return 1;
  }
  PrintPhase("baseline", baseline);
  std::fflush(stdout);

  // Cluster phase, with the kill/relaunch chaos riding along (spawn mode).
  std::thread chaos;
  if (kill_shard) {
    chaos = std::thread([&] {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(phase_seconds / 3.0));
      std::printf("chaos: SIGKILL shard 3\n");
      std::fflush(stdout);
      kill_shard();
      std::this_thread::sleep_for(
          std::chrono::duration<double>(phase_seconds / 3.0));
      std::printf("chaos: relaunching shard 3\n");
      std::fflush(stdout);
      relaunch_shard();
    });
  }
  PhaseResult cluster;
  st = driver.Run(rhost, rport, offered_qps, phase_seconds, deadline,
                  &cluster);
  if (chaos.joinable()) chaos.join();
  if (!st.ok()) {
    std::fprintf(stderr, "cluster phase: %s\n", st.ToString().c_str());
    return 1;
  }
  PrintPhase("cluster", cluster);
  std::fflush(stdout);

  // In spawn mode, wait for the relaunched shard to finish starting and
  // the router's gossip to readmit it, then read the router's ledger.
  int64_t readmits = -1;
  if (spawned) {
    const double wait_deadline = Now() + 180.0;
    while (Now() < wait_deadline) {
      auto rs = AwaitEndpoint(rhost, rport, 10.0);
      if (rs.ok()) {
        const auto& shards = rs.ValueOrDie().shards;
        int64_t total = 0;
        for (const auto& v : shards) total += v.readmits;
        readmits = total;
        if (total >= 1) break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(500));
    }
  }

  // ---- Gates (exit code) ------------------------------------------------
  bool ok = true;
  const bool baseline_accounted = baseline.submitted == baseline.accounted();
  const bool cluster_accounted = cluster.submitted == cluster.accounted();
  if (!baseline_accounted || !cluster_accounted ||
      baseline.lost + cluster.lost != 0) {
    std::printf(
        "FAIL accounting: every request must get exactly one terminal "
        "reply (baseline %lld/%lld, cluster %lld/%lld, lost %lld)\n",
        static_cast<long long>(baseline.accounted()),
        static_cast<long long>(baseline.submitted),
        static_cast<long long>(cluster.accounted()),
        static_cast<long long>(cluster.submitted),
        static_cast<long long>(baseline.lost + cluster.lost));
    ok = false;
  }
  const double ratio = baseline.served > 0
                           ? cluster.served_qps() / baseline.served_qps()
                           : 0.0;
  std::printf("cluster/baseline served QPS ratio: %.2fx (gate: >= 4x)\n",
              ratio);
  if (ratio < 4.0) {
    std::printf(
        "FAIL throughput: elastic cluster must out-serve the fixed "
        "full-rate baseline >= 4x under equal load and deadline\n");
    ok = false;
  }
  // Served replies met their deadline server-side by construction; the
  // client-observed p99 additionally bounds network + reply flush slack.
  const double p99_budget_ms = (deadline + tick) * 1e3;
  if (cluster.served > 0 && cluster.served_p99_ms > p99_budget_ms) {
    std::printf("FAIL latency: served p99 %.0f ms > %.0f ms budget\n",
                cluster.served_p99_ms, p99_budget_ms);
    ok = false;
  }
  if (spawned && readmits < 1) {
    std::printf(
        "FAIL readmit: router never readmitted the relaunched shard\n");
    ok = false;
  }
  if (ok) {
    std::printf("cluster gauntlet PASS%s\n",
                spawned ? " (kill + readmit survived)" : "");
  }
  return ok ? 0 : 1;
}

int Main() {
  bench::PrintTitle(
      "cluster serving: rate-aware router + elastic shards vs fixed "
      "full-rate single server (real processes, real sockets)");

  // Connect mode: the harness (CI cluster job) owns the processes.
  const char* router_env = std::getenv("MS_CLUSTER_ROUTER");
  const char* baseline_env = std::getenv("MS_CLUSTER_BASELINE");
  if (router_env != nullptr && baseline_env != nullptr) {
    return RunGauntlet(baseline_env, router_env, /*spawned=*/false, nullptr,
                       nullptr);
  }

#ifndef __linux__
  std::printf("spawn mode requires Linux; set MS_CLUSTER_ROUTER / "
              "MS_CLUSTER_BASELINE to drive existing endpoints\n");
  return 0;
#else
  const int port_base = [] {
    const char* v = std::getenv("MS_CLUSTER_PORT_BASE");
    return v != nullptr ? std::atoi(v) : 18171;
  }();
  const std::string dir = SelfDir();
  const std::string mscli = dir + "/../examples/example_mscli";
  const std::string msrouter = dir + "/../examples/example_msrouter";
  if (::access(mscli.c_str(), X_OK) != 0 ||
      ::access(msrouter.c_str(), X_OK) != 0) {
    std::fprintf(stderr, "example binaries not found next to bench (%s)\n",
                 mscli.c_str());
    return 1;
  }

  // The serving budget is fixed (shard flag); the offered load adapts to
  // the measured t via the stats advertisement instead.
  const std::string budget_ms = "400";
  auto shard_args = [&](int port, const char* lb) {
    return std::vector<std::string>{
        mscli,       "serve",
        "--model=vgg13",
        // Widened so full-rate per-sample cost is milliseconds, not
        // microseconds: the offered load (6x the baseline's capacity) then
        // stays at a rate one open-loop client can actually generate.
        "--width_mult=4",
        std::string("--lb=") + lb,
        "--granularity=0.25",
        "--workers=1",
        std::string("--budget_ms=") + budget_ms,
        "--queue=4096",
        std::string("--listen=") + std::to_string(port)};
  };
  const int bport = port_base;
  const int sport1 = port_base + 1, sport2 = port_base + 2,
            sport3 = port_base + 3;
  const int rport = port_base + 4;

  std::vector<pid_t> pids;
  pid_t baseline_pid = SpawnProcess(shard_args(bport, "1.0"));
  pid_t shard1 = SpawnProcess(shard_args(sport1, "0.25"));
  pid_t shard2 = SpawnProcess(shard_args(sport2, "0.25"));
  pid_t shard3 = SpawnProcess(shard_args(sport3, "0.25"));
  pid_t router = SpawnProcess(
      {msrouter, std::string("--listen=") + std::to_string(rport),
       std::string("--shards=:") + std::to_string(sport1) + ",:" +
           std::to_string(sport2) + ",:" + std::to_string(sport3)});
  pids = {baseline_pid, shard1, shard2, router};  // shard3 handled below

  std::atomic<pid_t> shard3_pid{shard3};
  auto kill_shard3 = [&shard3_pid] {
    const pid_t pid = shard3_pid.exchange(-1);
    if (pid > 0) StopProcess(pid, SIGKILL);
  };
  auto relaunch_shard3 = [&] {
    shard3_pid.store(SpawnProcess(shard_args(sport3, "0.25")));
  };

  const int rc = RunGauntlet(
      ":" + std::to_string(bport), ":" + std::to_string(rport),
      /*spawned=*/true, kill_shard3, relaunch_shard3);

  for (pid_t pid : pids) StopProcess(pid, SIGTERM);
  kill_shard3();  // SIGKILL is fine for teardown of the chaos shard
  return rc;
#endif
}

}  // namespace
}  // namespace ms

int main() { return ms::Main(); }
