// Reproduces Figure 8: the inclusion coefficient of wrongly-predicted
// samples between (a) independently trained fixed models of varying width
// and (b) sliced subnets of one model trained with model slicing. Sliced
// subnets err far more consistently — the property cascade ranking exploits.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/core/evaluator.h"

namespace ms {
namespace {

void PrintMatrix(const char* title, const std::vector<double>& rates,
                 const std::vector<std::vector<uint8_t>>& masks) {
  std::printf("\n%s\n        ", title);
  for (double r : rates) std::printf(" %7.3f", r);
  std::printf("\n");
  for (size_t i = 0; i < masks.size(); ++i) {
    std::printf("  %-6.3f", rates[i]);
    for (size_t j = 0; j < masks.size(); ++j) {
      std::printf(" %7.3f", InclusionCoefficient(masks[i], masks[j]));
    }
    std::printf("\n");
  }
}

double MeanOffDiagonal(const std::vector<std::vector<uint8_t>>& masks) {
  double total = 0.0;
  int count = 0;
  for (size_t i = 0; i < masks.size(); ++i) {
    for (size_t j = 0; j < masks.size(); ++j) {
      if (i == j) continue;
      total += InclusionCoefficient(masks[i], masks[j]);
      ++count;
    }
  }
  return total / count;
}

int Main() {
  // Harder data: comparable error counts across systems (bench_util.h).
  const ImageDataSplit split = bench::HardImages();
  const std::vector<double> rates =
      bench::FastMode() ? std::vector<double>{0.5, 1.0}
                        : std::vector<double>{0.375, 0.5, 0.625, 0.75,
                                              0.875, 1.0};
  const SliceConfig lattice = SliceConfig::FromList(rates).MoveValueOrDie();

  bench::PrintTitle(
      "Figure 8: inclusion coefficient of wrong predictions between model "
      "pairs");

  // (a) independently trained fixed models.
  std::vector<std::vector<uint8_t>> fixed_masks;
  for (double r : rates) {
    CnnConfig cfg = bench::StandardVgg();
    cfg.width_mult = r;
    cfg.seed += static_cast<uint64_t>(r * 1000);
    auto net = MakeVggSmall(cfg).MoveValueOrDie();
    FixedRateScheduler sched(1.0);
    TrainImageClassifier(net.get(), split.train, &sched,
                         bench::StandardTrain());
    fixed_masks.push_back(WrongPredictionMask(net.get(), split.test, 1.0));
    std::fprintf(stderr, "[fixed %.3f] done\n", r);
  }

  // (b) sliced subnets of one model.
  std::vector<std::vector<uint8_t>> sliced_masks;
  {
    auto net = MakeVggSmall(bench::StandardVgg()).MoveValueOrDie();
    RandomStaticScheduler sched(lattice, true, true);
    TrainImageClassifier(net.get(), split.train, &sched,
                         bench::StandardTrain(16));
    for (double r : rates) {
      sliced_masks.push_back(WrongPredictionMask(net.get(), split.test, r));
    }
    std::fprintf(stderr, "[sliced] done\n");
  }

  PrintMatrix("(a) independently trained fixed models", rates, fixed_masks);
  PrintMatrix("(b) sliced subnets of one model", rates, sliced_masks);

  std::printf(
      "\nMean off-diagonal inclusion: fixed models %.3f vs sliced subnets "
      "%.3f\nExpected shape (paper Fig. 8): sliced subnets' errors overlap "
      "far more\n(~0.75-0.97) than independent models' (~0.55-0.62).\n",
      MeanOffDiagonal(fixed_masks), MeanOffDiagonal(sliced_masks));
  return 0;
}

}  // namespace
}  // namespace ms

int main() { return ms::Main(); }
