// GEMM kernel microbenchmark: packed/threaded Gemm vs the scalar GemmRef
// oracle across the shapes the layers actually produce — square, skinny
// (im2col panels), and sliced-prefix problems at r in {0.25, 0.5, 1.0}
// where the leading dimensions stay at full width. A second section times
// the prepacked-weight path (prepack.h): serving-shaped skinny batches
// (M <= 8, packed W reused per call, no A packing) and the LSTM recurrent
// reuse case where one packed U serves all T timesteps. A third section
// times the int8 quantized path (quant.h) against the fp32 prepacked
// baseline at matched slice rates, writes bench_results/BENCH_INT8.json
// via MS_BENCH_INT8_OUT, and exits nonzero when the minimum serving-shape
// speedup falls below MS_BENCH_INT8_GATE (the CI acceptance gate). Prints
// GFLOP/s and speedups, and records each configuration as a gauge so the
// MS_BENCH_METRICS_OUT JSONL artifact captures the numbers in CI.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/models/cnn.h"
#include "src/models/mlp.h"
#include "src/nn/activations.h"
#include "src/nn/dense.h"
#include "src/nn/fusion.h"
#include "src/nn/lstm.h"
#include "src/nn/norm.h"
#include "src/tensor/activation_arena.h"
#include "src/tensor/activation_planner.h"
#include "src/tensor/epilogue.h"
#include "src/tensor/gemm.h"
#include "src/tensor/prepack.h"
#include "src/tensor/quant.h"
#include "src/tensor/tensor.h"
#include "src/util/rng.h"

namespace ms {
namespace {

using Clock = std::chrono::steady_clock;

using GemmFn = void (*)(bool, bool, int64_t, int64_t, int64_t, float,
                        const float*, int64_t, const float*, int64_t, float,
                        float*, int64_t);

struct Shape {
  const char* label;
  int64_t m, n, k;
  int64_t lda, ldb;  // 0 = tight
};

double TimeGemm(GemmFn fn, const Shape& s, const Tensor& a, const Tensor& b,
                Tensor* c, double min_seconds) {
  const int64_t lda = s.lda ? s.lda : s.k;
  const int64_t ldb = s.ldb ? s.ldb : s.n;
  // One untimed call to warm caches and the compute pool.
  fn(false, false, s.m, s.n, s.k, 1.0f, a.data(), lda, b.data(), ldb, 0.0f,
     c->data(), s.n);
  int iters = 0;
  const auto start = Clock::now();
  double elapsed = 0.0;
  while (elapsed < min_seconds || iters < 3) {
    fn(false, false, s.m, s.n, s.k, 1.0f, a.data(), lda, b.data(), ldb, 0.0f,
       c->data(), s.n);
    ++iters;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  }
  return elapsed / iters;
}

/// Best-of-3 timing epochs (each a mean over >= 1 calls): the int8 gate
/// compares two of these per row, so a scheduler stall inside one epoch
/// must not masquerade as a speedup change.
template <typename Call>
double TimeCall(double min_seconds, Call&& call) {
  call();  // warmup
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    int iters = 0;
    const auto start = Clock::now();
    double elapsed = 0.0;
    while (elapsed < min_seconds / 3 || iters < 1) {
      call();
      ++iters;
      elapsed = std::chrono::duration<double>(Clock::now() - start).count();
    }
    const double mean = elapsed / iters;
    if (rep == 0 || mean < best) best = mean;
  }
  return best;
}

/// One row of the int8 section: fp32-prepacked vs int8-quantized at a
/// (shape, slice rate) operating point. `serving` rows feed the
/// MS_BENCH_INT8_GATE minimum.
struct Int8Row {
  std::string label;
  double fp32_us = 0.0;
  double int8_us = 0.0;
  bool serving = false;
  double speedup() const { return fp32_us / int8_us; }
};

int Main() {
  const double min_s = bench::FastMode() ? 0.02 : 0.15;
  std::vector<Shape> shapes = {
      {"square-64", 64, 64, 64, 0, 0},
      {"square-128", 128, 128, 128, 0, 0},
      {"square-256", 256, 256, 256, 0, 0},
      {"square-512", 512, 512, 512, 0, 0},
      // Skinny shapes: conv im2col panels (few filter rows, wide output)
      // and batched dense layers (short m).
      {"conv-im2col", 64, 1024, 288, 0, 0},
      {"dense-batch", 32, 512, 512, 0, 0},
      // Sliced-prefix problems: logical extent r * 512, leading dims kept
      // at the full 512 — exactly what SetSliceRate produces.
      {"sliced-r0.25", 128, 128, 128, 512, 512},
      {"sliced-r0.50", 256, 256, 256, 512, 512},
      {"sliced-r1.00", 512, 512, 512, 512, 512},
  };
  const std::vector<int> thread_counts = {1, 2, 4};

  bench::PrintTitle("GEMM kernel: packed/threaded Gemm vs scalar GemmRef");
  std::printf("avx2 microkernel: %s\n\n",
              ops::GemmHasAvx2() ? "active" : "inactive (portable 4x8)");
  std::printf("%-14s %10s %12s", "shape", "ref GF/s", "1T GF/s");
  for (size_t i = 1; i < thread_counts.size(); ++i) {
    std::printf(" %9dT", thread_counts[i]);
  }
  std::printf(" %9s\n", "1T-speedup");
  bench::PrintRule();

  Rng rng(42);
  auto& registry = obs::MetricsRegistry::Global();
  for (const Shape& s : shapes) {
    const int64_t lda = s.lda ? s.lda : s.k;
    const int64_t ldb = s.ldb ? s.ldb : s.n;
    Tensor a = Tensor::Randn({s.m, lda}, &rng);
    Tensor b = Tensor::Randn({s.k, ldb}, &rng);
    Tensor c({s.m, s.n});
    const double flops = 2.0 * static_cast<double>(s.m) * s.n * s.k;

    ops::SetComputeThreads(1);
    const double t_ref = TimeGemm(&ops::GemmRef, s, a, b, &c, min_s);
    const double ref_gfs = flops / t_ref * 1e-9;
    std::printf("%-14s %10.2f", s.label, ref_gfs);
    registry.GetGauge(std::string("bench_gemm.") + s.label + ".ref_gflops")
        ->Set(ref_gfs);

    double one_thread_gfs = 0.0;
    for (const int threads : thread_counts) {
      ops::SetComputeThreads(threads);
      const double t = TimeGemm(&ops::Gemm, s, a, b, &c, min_s);
      const double gfs = flops / t * 1e-9;
      if (threads == 1) one_thread_gfs = gfs;
      std::printf(" %10.2f", gfs);
      registry
          .GetGauge(std::string("bench_gemm.") + s.label + ".gflops_t" +
                    std::to_string(threads))
          ->Set(gfs);
    }
    std::printf(" %8.1fx\n", one_thread_gfs / ref_gfs);
  }

  // -------------------------------------------------------------------------
  // Prepacked weights: y = x * W^T with W packed once (the Dense/LSTM/GRU
  // serving path). Gemm re-packs W every call; GemmPrepackedB reuses the
  // panels, and at M <= 8 also skips packing x. Single-threaded — the
  // serving engine parallelizes across batches, not within them.
  bench::PrintTitle("prepacked W^T (512x512): per-call Gemm vs GemmPrepackedB");
  std::printf("%-14s %10s %12s %9s\n", "shape", "gemm us", "prepacked us",
              "speedup");
  bench::PrintRule();
  ops::SetComputeThreads(1);
  {
    const int64_t n = 512, k = 512;
    Tensor w = Tensor::Randn({n, k}, &rng);  // Dense layout: (out, in)
    ops::PackedMatrix pack;
    ops::PackB(/*trans_b=*/true, k, n, w.data(), k, &pack);
    for (const int64_t m : {1, 2, 4, 8, 32}) {
      Tensor x = Tensor::Randn({m, k}, &rng);
      Tensor y({m, n});
      auto time_loop = [&](auto&& call) {
        call();  // warmup
        int iters = 0;
        const auto start = Clock::now();
        double elapsed = 0.0;
        while (elapsed < min_s || iters < 3) {
          call();
          ++iters;
          elapsed =
              std::chrono::duration<double>(Clock::now() - start).count();
        }
        return elapsed / iters;
      };
      const double t_gemm = time_loop([&] {
        ops::Gemm(false, true, m, n, k, 1.0f, x.data(), k, w.data(), k, 0.0f,
                  y.data(), n);
      });
      const double t_pre = time_loop([&] {
        ops::GemmPrepackedB(false, m, n, k, 1.0f, x.data(), k, pack, 0.0f,
                            y.data(), n);
      });
      const std::string label = "prepack-b" + std::to_string(m);
      std::printf("%-14s %10.1f %12.1f %8.2fx%s\n", label.c_str(),
                  t_gemm * 1e6, t_pre * 1e6, t_gemm / t_pre,
                  m <= 8 ? "  (serving batch)" : "");
      registry.GetGauge("bench_gemm." + label + ".gemm_us")
          ->Set(t_gemm * 1e6);
      registry.GetGauge("bench_gemm." + label + ".prepacked_us")
          ->Set(t_pre * 1e6);
      registry.GetGauge("bench_gemm." + label + ".speedup")
          ->Set(t_gemm / t_pre);
    }
  }

  // LSTM recurrent reuse: per timestep each gate runs z += h * U_g^T with
  // the same U_g — T timesteps amortize one pack per gate. H=512, batch 4.
  {
    const int64_t batch = 4, hidden = 512;
    const int num_gates = 4;
    const int T = bench::FastMode() ? 8 : 32;
    std::vector<Tensor> u;
    std::vector<ops::PackedMatrix> upack(num_gates);
    for (int g = 0; g < num_gates; ++g) {
      u.push_back(Tensor::Randn({hidden, hidden}, &rng));
      ops::PackB(true, hidden, hidden, u[g].data(), hidden, &upack[g]);
    }
    Tensor h = Tensor::Randn({batch, hidden}, &rng);
    Tensor z({batch, hidden});
    auto time_seq = [&](bool prepacked) {
      int iters = 0;
      const auto start = Clock::now();
      double elapsed = 0.0;
      while (elapsed < min_s || iters < 3) {
        for (int t = 0; t < T; ++t) {
          for (int g = 0; g < num_gates; ++g) {
            if (prepacked) {
              ops::GemmPrepackedB(false, batch, hidden, hidden, 1.0f,
                                  h.data(), hidden, upack[g], 0.0f, z.data(),
                                  hidden);
            } else {
              ops::Gemm(false, true, batch, hidden, hidden, 1.0f, h.data(),
                        hidden, u[g].data(), hidden, 0.0f, z.data(), hidden);
            }
          }
        }
        ++iters;
        elapsed = std::chrono::duration<double>(Clock::now() - start).count();
      }
      return elapsed / iters;
    };
    const double t_gemm = time_seq(false);
    const double t_pre = time_seq(true);
    std::printf("%-14s %10.1f %12.1f %8.2fx  (T=%d, 4 gates)\n",
                "lstm-gates", t_gemm * 1e6, t_pre * 1e6, t_gemm / t_pre, T);
    registry.GetGauge("bench_gemm.lstm-gates.gemm_us")->Set(t_gemm * 1e6);
    registry.GetGauge("bench_gemm.lstm-gates.prepacked_us")->Set(t_pre * 1e6);
    registry.GetGauge("bench_gemm.lstm-gates.speedup")->Set(t_gemm / t_pre);
  }
  // -------------------------------------------------------------------------
  // Int8 quantized weights (quant.h): fp32 prepacked vs GemmQuantized* at
  // matched slice rates — the second elastic axis. One quantized pack per
  // weight serves every rate (k is a whole-segment prefix, n/m a column
  // prefix). Rows tagged "serving" are the shapes the scheduler actually
  // dispatches (dense m <= 8; conv C_out >= 128) and feed the
  // MS_BENCH_INT8_GATE geomean + per-row-floor check below;
  // MS_BENCH_INT8_OUT writes the rows as JSONL (the checked-in
  // bench_results/BENCH_INT8.json).
  bench::PrintTitle("int8 quantized W: fp32 prepacked vs GemmQuantized*");
  const char* int8_kernel = ops::GemmHasInt8Vnni()   ? "avx512-vnni"
                            : ops::GemmHasInt8Avx2() ? "avx2-maddubs"
                                                     : "portable";
  std::printf("int8 kernel: %s\n\n", int8_kernel);
  std::printf("%-16s %10s %12s %9s\n", "shape", "fp32 us", "int8 us",
              "speedup");
  bench::PrintRule();
  std::vector<Int8Row> int8_rows;
  const std::vector<double> rates = {0.25, 0.5, 1.0};

  // Dense serving: y = x * W^T, W 512x512 in 8 slice groups, x rows kept at
  // full width (lda = k) exactly as SetSliceRate leaves them.
  {
    const int64_t n = 512, k = 512, groups = 8;
    Tensor w = Tensor::Randn({n, k}, &rng);
    ops::PackedMatrix pack;
    ops::PackB(/*trans_b=*/true, k, n, w.data(), k, &pack);
    std::vector<int64_t> ends;
    for (int64_t g = 1; g <= groups; ++g) ends.push_back(g * k / groups);
    ops::QuantizedPack qpack;
    ops::EnsureQuantizedB(true, k, n, w.data(), k, ends, &qpack);
    for (const double r : rates) {
      const int64_t nr = static_cast<int64_t>(n * r);
      const int64_t kr = static_cast<int64_t>(k * r);
      for (const int64_t m : {1, 2, 4, 8, 32}) {
        Tensor x = Tensor::Randn({m, k}, &rng);
        Tensor y({m, n});
        Int8Row row;
        char label[48];
        std::snprintf(label, sizeof(label), "dense-m%d-r%.2f",
                      static_cast<int>(m), r);
        row.label = label;
        row.serving = m <= 8;
        row.fp32_us = 1e6 * TimeCall(min_s, [&] {
          ops::GemmPrepackedB(false, m, nr, kr, 1.0f, x.data(), k, pack,
                              0.0f, y.data(), n);
        });
        row.int8_us = 1e6 * TimeCall(min_s, [&] {
          ops::GemmQuantizedB(false, m, nr, kr, 1.0f, x.data(), k, qpack,
                              0.0f, y.data(), n);
        });
        int8_rows.push_back(row);
      }
    }
  }

  // Conv serving: C = W * im2col, a mid-network 3x3 layer (C_out=256,
  // C_in=64 => K=576) at 14x14 and 28x28 output maps. The quantized pack
  // is the transposed one the dense path uses (wpack_t packs W^T).
  {
    const int64_t cout = 256, cin = 64, k = cin * 9, groups = 8;
    Tensor w = Tensor::Randn({cout, k}, &rng);
    ops::PackedMatrix wpa;
    ops::PackA(/*trans_a=*/false, cout, k, w.data(), k, &wpa);
    std::vector<int64_t> ends;
    for (int64_t g = 1; g <= groups; ++g) ends.push_back(g * k / groups);
    ops::QuantizedPack qpack;
    ops::EnsureQuantizedB(true, k, cout, w.data(), k, ends, &qpack);
    for (const int64_t npix : {196, 784}) {
      Tensor b = Tensor::Randn({k, npix}, &rng);
      Tensor c({cout, npix});
      for (const double r : rates) {
        const int64_t mr = static_cast<int64_t>(cout * r);
        const int64_t kr = static_cast<int64_t>(k * r);
        Int8Row row;
        char label[48];
        std::snprintf(label, sizeof(label), "conv%d-r%.2f",
                      static_cast<int>(npix), r);
        row.label = label;
        row.serving = mr >= 128;
        row.fp32_us = 1e6 * TimeCall(min_s, [&] {
          ops::GemmPrepackedA(mr, npix, kr, wpa, false, b.data(), npix,
                              0.0f, c.data(), npix);
        });
        row.int8_us = 1e6 * TimeCall(min_s, [&] {
          ops::GemmQuantizedWeightA(mr, npix, kr, qpack, b.data(), npix,
                                    0.0f, c.data(), npix);
        });
        int8_rows.push_back(row);
      }
    }
  }

  double min_serving = 0.0;
  double log_sum = 0.0;
  int serving_rows = 0;
  for (const Int8Row& row : int8_rows) {
    std::printf("%-16s %10.1f %12.1f %8.2fx%s\n", row.label.c_str(),
                row.fp32_us, row.int8_us, row.speedup(),
                row.serving ? "  (serving)" : "");
    const std::string base = "bench_gemm.int8-" + row.label;
    registry.GetGauge(base + ".fp32_us")->Set(row.fp32_us);
    registry.GetGauge(base + ".int8_us")->Set(row.int8_us);
    registry.GetGauge(base + ".speedup")->Set(row.speedup());
    if (row.serving) {
      min_serving = serving_rows == 0 ? row.speedup()
                                      : std::min(min_serving, row.speedup());
      log_sum += std::log(row.speedup());
      ++serving_rows;
    }
  }
  const double geomean_serving =
      serving_rows > 0 ? std::exp(log_sum / serving_rows) : 0.0;
  std::printf(
      "\nserving-shape int8 speedup: geomean %.2fx, min %.2fx (kernel: %s)\n",
      geomean_serving, min_serving, int8_kernel);
  registry.GetGauge("bench_gemm.int8.geomean_serving_speedup")
      ->Set(geomean_serving);
  registry.GetGauge("bench_gemm.int8.min_serving_speedup")->Set(min_serving);

  if (const char* path = std::getenv("MS_BENCH_INT8_OUT")) {
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "int8 dump: cannot open %s\n", path);
    } else {
      std::fprintf(f, "{\"type\":\"info\",\"name\":\"bench_gemm.int8.kernel\","
                      "\"value\":\"%s\"}\n", int8_kernel);
      for (const Int8Row& row : int8_rows) {
        std::fprintf(f,
                     "{\"type\":\"gauge\",\"name\":\"bench_gemm.int8-%s"
                     ".fp32_us\",\"value\":%.9g}\n",
                     row.label.c_str(), row.fp32_us);
        std::fprintf(f,
                     "{\"type\":\"gauge\",\"name\":\"bench_gemm.int8-%s"
                     ".int8_us\",\"value\":%.9g}\n",
                     row.label.c_str(), row.int8_us);
        std::fprintf(f,
                     "{\"type\":\"gauge\",\"name\":\"bench_gemm.int8-%s"
                     ".speedup\",\"value\":%.9g,\"serving\":%s}\n",
                     row.label.c_str(), row.speedup(),
                     row.serving ? "true" : "false");
      }
      std::fprintf(f,
                   "{\"type\":\"gauge\",\"name\":\"bench_gemm.int8."
                   "geomean_serving_speedup\",\"value\":%.9g}\n",
                   geomean_serving);
      std::fprintf(f,
                   "{\"type\":\"gauge\",\"name\":\"bench_gemm.int8."
                   "min_serving_speedup\",\"value\":%.9g}\n",
                   min_serving);
      std::fclose(f);
    }
  }

  // The acceptance gate: the serving-shape GEOMEAN must clear the ratio
  // (the ">= 2.5x at matched slice rate" claim), and no single serving
  // row may fall below 0.75x of it (a per-row regression backstop loose
  // enough that shared-runner timing noise cannot trip it on its own).
  int rc = 0;
  if (const char* gate = std::getenv("MS_BENCH_INT8_GATE")) {
    const double want = std::atof(gate);
    const double floor = 0.75 * want;
    if (geomean_serving < want || min_serving < floor) {
      std::fprintf(stderr,
                   "FAIL: serving-shape int8 speedup geomean %.2fx / min "
                   "%.2fx vs gate %.2fx (floor %.2fx)\n",
                   geomean_serving, min_serving, want, floor);
      rc = 1;
    } else {
      std::printf("gate: geomean %.2fx >= %.2fx, min %.2fx >= %.2fx -- pass\n",
                  geomean_serving, want, min_serving, floor);
    }
  }

  // -------------------------------------------------------------------------
  // Fused epilogues + planned activation arena (epilogue.h, fusion.h,
  // activation_planner.h). Each row times one serving-shaped model forward
  // with the epilogue toggle on vs off: "unfused" runs the pre-fusion
  // pipeline (separate bias loops, standalone ReLU/Tanh passes with their
  // tensor copy and mask), "fused" applies the same math at C-writeback
  // (bitwise identical — tests/fusion_test.cc). The geomean feeds
  // MS_BENCH_FUSION_GATE; MS_BENCH_FUSION_OUT writes the rows plus the
  // planned arena footprint at each slice rate as JSONL (the checked-in
  // bench_results/BENCH_FUSION.json).
  bench::PrintTitle("fused epilogues: serving-shape layer fwd, toggle on vs off");
  std::printf("%-16s %12s %14s %9s\n", "layer", "fused ms/s", "unfused ms/s",
              "speedup");
  bench::PrintRule();
  ops::SetComputeThreads(1);

  // Keeps the timed forwards observable so the optimizer cannot drop them.
  static volatile float fusion_sink;

  struct FusionRow {
    std::string label;
    double fused_ms = 0.0;    // per sample
    double unfused_ms = 0.0;  // per sample
    double speedup() const { return unfused_ms / fused_ms; }
  };
  // Layer rows enter the gated geomean; full-model rows are reported (and
  // exported) but stay out of the gate: vgg13's conv GEMMs carry an EMPTY
  // epilogue (bias=false, a norm follows every conv) and are ~90% of its
  // runtime, so the whole-model ratio measures GEMM throughput, not the
  // killed post-GEMM passes the gate is about.
  std::vector<FusionRow> fusion_rows;
  std::vector<FusionRow> model_rows;
  auto time_toggle = [&](const std::string& label, Module* net,
                         const Tensor& x, int64_t samples, bool gated) {
    FusionRow row;
    row.label = label;
    auto call = [&] {
      Tensor y = net->Forward(x, /*training=*/false);
      fusion_sink += y.data()[0];
    };
    ops::SetFuseEpilogues(true);
    row.fused_ms = 1e3 * TimeCall(min_s, call) / samples;
    ops::SetFuseEpilogues(false);
    row.unfused_ms = 1e3 * TimeCall(min_s, call) / samples;
    ops::SetFuseEpilogues(true);
    (gated ? fusion_rows : model_rows).push_back(row);
  };

  // Dense + ReLU at serving batches: bias and activation fold into the
  // prepacked GEMM's C-writeback; unfused runs the separate bias pass and
  // the standalone ReLU module (tensor copy + mask + pass).
  auto dense_relu = std::make_unique<Sequential>("dense_relu");
  {
    DenseOptions o;
    o.in_features = 512;
    o.out_features = 512;
    o.bias = true;
    dense_relu->Emplace<Dense>(o, &rng, "dense");
    dense_relu->Emplace<ReLU>();
    FuseActivations(dense_relu.get());
  }
  Tensor dense_x1 = Tensor::Randn({1, 512}, &rng);
  Tensor dense_x8 = Tensor::Randn({8, 512}, &rng);
  time_toggle("dense512-b1", dense_relu.get(), dense_x1, 1, /*gated=*/true);
  time_toggle("dense512-b8", dense_relu.get(), dense_x8, 8, /*gated=*/true);

  // GroupNorm + ReLU block tails at vgg13's stage map shapes: fused
  // applies the activation at the norm's own write site (one extra
  // in-cache sweep) instead of the module's copy + mask + pass.
  std::vector<std::unique_ptr<Sequential>> gn_blocks;
  auto gn_relu_row = [&](int64_t ch, int64_t hw, const char* label) {
    auto block = std::make_unique<Sequential>(label);
    NormOptions n;
    n.channels = ch;
    n.groups = 8;
    block->Emplace<GroupNorm>(n, label);
    block->Emplace<ReLU>();
    FuseActivations(block.get());
    Tensor x = Tensor::Randn({1, ch, hw, hw}, &rng);
    time_toggle(label, block.get(), x, 1, /*gated=*/true);
    gn_blocks.push_back(std::move(block));
  };
  gn_relu_row(64, 32, "gn64x32x32-b1");
  gn_relu_row(128, 16, "gn128x16x16-b1");

  LstmOptions lcfg;
  lcfg.input_size = 512;
  lcfg.hidden_size = 512;
  lcfg.groups = 8;
  lcfg.slice_in = false;
  Lstm lstm_layer(lcfg, &rng);
  // One serving step: the four gate activations (sigmoid x3, tanh) fuse
  // into the gate GEMMs' writeback; the libm calls themselves are paid by
  // both paths, so this row prices only the killed pre-activation sweeps.
  Tensor lstm_cell_x = Tensor::Randn({1, 1, 512}, &rng);
  time_toggle("lstm-cell-b1", &lstm_layer, lstm_cell_x, 1, /*gated=*/true);

  MlpConfig mcfg;
  mcfg.in_features = 512;
  mcfg.hidden = {512, 512};
  mcfg.num_classes = 10;
  mcfg.group_norm = true;
  auto mlp = MakeMlp(mcfg).MoveValueOrDie();
  Tensor mlp_x1 = Tensor::Randn({1, 512}, &rng);
  Tensor mlp_x8 = Tensor::Randn({8, 512}, &rng);
  time_toggle("mlp-b8", mlp.get(), mlp_x8, 8, /*gated=*/true);

  // Full-model rows (reported, ungated).
  CnnConfig vcfg;
  vcfg.in_channels = 3;
  vcfg.num_classes = 10;
  vcfg.base_width = 64;
  vcfg.stages = 3;
  vcfg.blocks_per_stage = 2;
  auto vgg = MakeVggSmall(vcfg).MoveValueOrDie();
  Tensor vgg_x = Tensor::Randn({1, 3, 32, 32}, &rng);
  time_toggle("vgg13-b1", vgg.get(), vgg_x, 1, /*gated=*/false);
  time_toggle("mlp-b1", mlp.get(), mlp_x1, 1, /*gated=*/false);
  const int64_t lstm_t = bench::FastMode() ? 4 : 16;
  Tensor lstm_x = Tensor::Randn({lstm_t, 1, 512}, &rng);
  time_toggle("lstm-b1", &lstm_layer, lstm_x, 1, /*gated=*/false);

  double fusion_log_sum = 0.0;
  auto print_row = [&](const FusionRow& row) {
    std::printf("%-16s %12.3f %14.3f %8.2fx\n", row.label.c_str(),
                row.fused_ms, row.unfused_ms, row.speedup());
    const std::string base = "bench_fusion." + row.label;
    registry.GetGauge(base + ".fused_ms_per_sample")->Set(row.fused_ms);
    registry.GetGauge(base + ".unfused_ms_per_sample")->Set(row.unfused_ms);
    registry.GetGauge(base + ".speedup")->Set(row.speedup());
  };
  for (const FusionRow& row : fusion_rows) {
    print_row(row);
    fusion_log_sum += std::log(row.speedup());
  }
  const double fusion_geomean =
      fusion_rows.empty() ? 0.0
                          : std::exp(fusion_log_sum / fusion_rows.size());
  std::printf("\nfull-model rows (reported, not gated -- conv GEMMs carry "
              "an empty epilogue):\n");
  for (const FusionRow& row : model_rows) print_row(row);
  std::printf("\nfused-epilogue speedup geomean (layer rows): %.2fx\n",
              fusion_geomean);
  registry.GetGauge("bench_fusion.geomean_speedup")->Set(fusion_geomean);

  // Planned activation footprint vs slice rate: one PlanForward per
  // (model, r) on a fresh arena. packed_bytes is the per-replica
  // activation peak a planned server reserves; total_alloc_bytes is what
  // a reuse-free allocator would touch. Weights scale ~r^2, activations
  // ~r — these rows record the honest activation component of the
  // paper's footprint curve.
  bench::PrintTitle("planned activation arena footprint vs slice rate");
  std::printf("%-14s %6s %14s %14s %14s\n", "model", "r", "packed KiB",
              "peak-live KiB", "no-reuse KiB");
  bench::PrintRule();
  struct ArenaRow {
    std::string label;
    double rate;
    ActivationPlan plan;
  };
  std::vector<ArenaRow> arena_rows;
  struct PlanTarget {
    const char* label;
    Module* net;
    const Tensor* x;
  };
  const PlanTarget plan_targets[] = {
      {"vgg13-b1", vgg.get(), &vgg_x},
      {"mlp-b8", mlp.get(), &mlp_x8},
      {"lstm-b1", &lstm_layer, &lstm_x},
  };
  for (const PlanTarget& target : plan_targets) {
    for (const double r : {0.25, 0.5, 0.75, 1.0}) {
      target.net->SetSliceRate(r);
      // Warm lazy caches outside the arena so the recording sees only
      // per-request activations (what steady-state serving allocates).
      Tensor warm = target.net->Forward(*target.x, /*training=*/false);
      fusion_sink += warm.data()[0];
      ActivationArena arena;
      ActivationPlan plan = PlanForward(&arena, [&] {
        Tensor y = target.net->Forward(*target.x, /*training=*/false);
        fusion_sink += y.data()[0];
      });
      std::printf("%-14s %6.2f %14.1f %14.1f %14.1f\n", target.label, r,
                  plan.packed_bytes / 1024.0, plan.peak_live_bytes / 1024.0,
                  plan.total_alloc_bytes / 1024.0);
      char gbase[80];
      std::snprintf(gbase, sizeof(gbase), "bench_fusion.arena.%s-r%.2f",
                    target.label, r);
      registry.GetGauge(std::string(gbase) + ".packed_bytes")
          ->Set(static_cast<double>(plan.packed_bytes));
      registry.GetGauge(std::string(gbase) + ".peak_live_bytes")
          ->Set(static_cast<double>(plan.peak_live_bytes));
      registry.GetGauge(std::string(gbase) + ".total_alloc_bytes")
          ->Set(static_cast<double>(plan.total_alloc_bytes));
      arena_rows.push_back({target.label, r, plan});
    }
    target.net->SetSliceRate(1.0);
  }

  if (const char* path = std::getenv("MS_BENCH_FUSION_OUT")) {
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "fusion dump: cannot open %s\n", path);
    } else {
      for (const FusionRow& row : fusion_rows) {
        std::fprintf(f,
                     "{\"type\":\"gauge\",\"name\":\"bench_fusion.%s"
                     ".fused_ms_per_sample\",\"value\":%.9g}\n",
                     row.label.c_str(), row.fused_ms);
        std::fprintf(f,
                     "{\"type\":\"gauge\",\"name\":\"bench_fusion.%s"
                     ".unfused_ms_per_sample\",\"value\":%.9g}\n",
                     row.label.c_str(), row.unfused_ms);
        std::fprintf(f,
                     "{\"type\":\"gauge\",\"name\":\"bench_fusion.%s"
                     ".speedup\",\"value\":%.9g}\n",
                     row.label.c_str(), row.speedup());
      }
      std::fprintf(f,
                   "{\"type\":\"gauge\",\"name\":\"bench_fusion."
                   "geomean_speedup\",\"value\":%.9g}\n",
                   fusion_geomean);
      for (const ArenaRow& row : arena_rows) {
        std::fprintf(
            f,
            "{\"type\":\"gauge\",\"name\":\"bench_fusion.arena.%s-r%.2f"
            ".peak_activation_bytes\",\"value\":%lld,"
            "\"peak_live_bytes\":%lld,\"total_alloc_bytes\":%lld}\n",
            row.label.c_str(), row.rate,
            static_cast<long long>(row.plan.packed_bytes),
            static_cast<long long>(row.plan.peak_live_bytes),
            static_cast<long long>(row.plan.total_alloc_bytes));
      }
      std::fclose(f);
    }
  }

  // The fusion acceptance gate: killing the post-GEMM passes must buy at
  // least the given geomean across the serving rows (CI uses 1.15).
  if (const char* gate = std::getenv("MS_BENCH_FUSION_GATE")) {
    const double want = std::atof(gate);
    if (fusion_geomean < want) {
      std::fprintf(stderr,
                   "FAIL: fused-epilogue speedup geomean %.2fx < gate "
                   "%.2fx\n",
                   fusion_geomean, want);
      rc = 1;
    } else {
      std::printf("gate: fusion geomean %.2fx >= %.2fx -- pass\n",
                  fusion_geomean, want);
    }
  }

  ops::PublishPackMetrics();
  ops::PublishQuantMetrics();
  return rc;
}

}  // namespace
}  // namespace ms

int main() { return ms::Main(); }
