// GEMM kernel microbenchmark: packed/threaded Gemm vs the scalar GemmRef
// oracle across the shapes the layers actually produce — square, skinny
// (im2col panels), and sliced-prefix problems at r in {0.25, 0.5, 1.0}
// where the leading dimensions stay at full width. A second section times
// the prepacked-weight path (prepack.h): serving-shaped skinny batches
// (M <= 8, packed W reused per call, no A packing) and the LSTM recurrent
// reuse case where one packed U serves all T timesteps. Prints GFLOP/s and
// speedups, and records each configuration as a gauge so the
// MS_BENCH_METRICS_OUT JSONL artifact captures the numbers in CI.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/tensor/gemm.h"
#include "src/tensor/prepack.h"
#include "src/tensor/tensor.h"
#include "src/util/rng.h"

namespace ms {
namespace {

using Clock = std::chrono::steady_clock;

using GemmFn = void (*)(bool, bool, int64_t, int64_t, int64_t, float,
                        const float*, int64_t, const float*, int64_t, float,
                        float*, int64_t);

struct Shape {
  const char* label;
  int64_t m, n, k;
  int64_t lda, ldb;  // 0 = tight
};

double TimeGemm(GemmFn fn, const Shape& s, const Tensor& a, const Tensor& b,
                Tensor* c, double min_seconds) {
  const int64_t lda = s.lda ? s.lda : s.k;
  const int64_t ldb = s.ldb ? s.ldb : s.n;
  // One untimed call to warm caches and the compute pool.
  fn(false, false, s.m, s.n, s.k, 1.0f, a.data(), lda, b.data(), ldb, 0.0f,
     c->data(), s.n);
  int iters = 0;
  const auto start = Clock::now();
  double elapsed = 0.0;
  while (elapsed < min_seconds || iters < 3) {
    fn(false, false, s.m, s.n, s.k, 1.0f, a.data(), lda, b.data(), ldb, 0.0f,
       c->data(), s.n);
    ++iters;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  }
  return elapsed / iters;
}

int Main() {
  const double min_s = bench::FastMode() ? 0.02 : 0.15;
  std::vector<Shape> shapes = {
      {"square-64", 64, 64, 64, 0, 0},
      {"square-128", 128, 128, 128, 0, 0},
      {"square-256", 256, 256, 256, 0, 0},
      {"square-512", 512, 512, 512, 0, 0},
      // Skinny shapes: conv im2col panels (few filter rows, wide output)
      // and batched dense layers (short m).
      {"conv-im2col", 64, 1024, 288, 0, 0},
      {"dense-batch", 32, 512, 512, 0, 0},
      // Sliced-prefix problems: logical extent r * 512, leading dims kept
      // at the full 512 — exactly what SetSliceRate produces.
      {"sliced-r0.25", 128, 128, 128, 512, 512},
      {"sliced-r0.50", 256, 256, 256, 512, 512},
      {"sliced-r1.00", 512, 512, 512, 512, 512},
  };
  const std::vector<int> thread_counts = {1, 2, 4};

  bench::PrintTitle("GEMM kernel: packed/threaded Gemm vs scalar GemmRef");
  std::printf("avx2 microkernel: %s\n\n",
              ops::GemmHasAvx2() ? "active" : "inactive (portable 4x8)");
  std::printf("%-14s %10s %12s", "shape", "ref GF/s", "1T GF/s");
  for (size_t i = 1; i < thread_counts.size(); ++i) {
    std::printf(" %9dT", thread_counts[i]);
  }
  std::printf(" %9s\n", "1T-speedup");
  bench::PrintRule();

  Rng rng(42);
  auto& registry = obs::MetricsRegistry::Global();
  for (const Shape& s : shapes) {
    const int64_t lda = s.lda ? s.lda : s.k;
    const int64_t ldb = s.ldb ? s.ldb : s.n;
    Tensor a = Tensor::Randn({s.m, lda}, &rng);
    Tensor b = Tensor::Randn({s.k, ldb}, &rng);
    Tensor c({s.m, s.n});
    const double flops = 2.0 * static_cast<double>(s.m) * s.n * s.k;

    ops::SetComputeThreads(1);
    const double t_ref = TimeGemm(&ops::GemmRef, s, a, b, &c, min_s);
    const double ref_gfs = flops / t_ref * 1e-9;
    std::printf("%-14s %10.2f", s.label, ref_gfs);
    registry.GetGauge(std::string("bench_gemm.") + s.label + ".ref_gflops")
        ->Set(ref_gfs);

    double one_thread_gfs = 0.0;
    for (const int threads : thread_counts) {
      ops::SetComputeThreads(threads);
      const double t = TimeGemm(&ops::Gemm, s, a, b, &c, min_s);
      const double gfs = flops / t * 1e-9;
      if (threads == 1) one_thread_gfs = gfs;
      std::printf(" %10.2f", gfs);
      registry
          .GetGauge(std::string("bench_gemm.") + s.label + ".gflops_t" +
                    std::to_string(threads))
          ->Set(gfs);
    }
    std::printf(" %8.1fx\n", one_thread_gfs / ref_gfs);
  }

  // -------------------------------------------------------------------------
  // Prepacked weights: y = x * W^T with W packed once (the Dense/LSTM/GRU
  // serving path). Gemm re-packs W every call; GemmPrepackedB reuses the
  // panels, and at M <= 8 also skips packing x. Single-threaded — the
  // serving engine parallelizes across batches, not within them.
  bench::PrintTitle("prepacked W^T (512x512): per-call Gemm vs GemmPrepackedB");
  std::printf("%-14s %10s %12s %9s\n", "shape", "gemm us", "prepacked us",
              "speedup");
  bench::PrintRule();
  ops::SetComputeThreads(1);
  {
    const int64_t n = 512, k = 512;
    Tensor w = Tensor::Randn({n, k}, &rng);  // Dense layout: (out, in)
    ops::PackedMatrix pack;
    ops::PackB(/*trans_b=*/true, k, n, w.data(), k, &pack);
    for (const int64_t m : {1, 2, 4, 8, 32}) {
      Tensor x = Tensor::Randn({m, k}, &rng);
      Tensor y({m, n});
      auto time_loop = [&](auto&& call) {
        call();  // warmup
        int iters = 0;
        const auto start = Clock::now();
        double elapsed = 0.0;
        while (elapsed < min_s || iters < 3) {
          call();
          ++iters;
          elapsed =
              std::chrono::duration<double>(Clock::now() - start).count();
        }
        return elapsed / iters;
      };
      const double t_gemm = time_loop([&] {
        ops::Gemm(false, true, m, n, k, 1.0f, x.data(), k, w.data(), k, 0.0f,
                  y.data(), n);
      });
      const double t_pre = time_loop([&] {
        ops::GemmPrepackedB(false, m, n, k, 1.0f, x.data(), k, pack, 0.0f,
                            y.data(), n);
      });
      const std::string label = "prepack-b" + std::to_string(m);
      std::printf("%-14s %10.1f %12.1f %8.2fx%s\n", label.c_str(),
                  t_gemm * 1e6, t_pre * 1e6, t_gemm / t_pre,
                  m <= 8 ? "  (serving batch)" : "");
      registry.GetGauge("bench_gemm." + label + ".gemm_us")
          ->Set(t_gemm * 1e6);
      registry.GetGauge("bench_gemm." + label + ".prepacked_us")
          ->Set(t_pre * 1e6);
      registry.GetGauge("bench_gemm." + label + ".speedup")
          ->Set(t_gemm / t_pre);
    }
  }

  // LSTM recurrent reuse: per timestep each gate runs z += h * U_g^T with
  // the same U_g — T timesteps amortize one pack per gate. H=512, batch 4.
  {
    const int64_t batch = 4, hidden = 512;
    const int num_gates = 4;
    const int T = bench::FastMode() ? 8 : 32;
    std::vector<Tensor> u;
    std::vector<ops::PackedMatrix> upack(num_gates);
    for (int g = 0; g < num_gates; ++g) {
      u.push_back(Tensor::Randn({hidden, hidden}, &rng));
      ops::PackB(true, hidden, hidden, u[g].data(), hidden, &upack[g]);
    }
    Tensor h = Tensor::Randn({batch, hidden}, &rng);
    Tensor z({batch, hidden});
    auto time_seq = [&](bool prepacked) {
      int iters = 0;
      const auto start = Clock::now();
      double elapsed = 0.0;
      while (elapsed < min_s || iters < 3) {
        for (int t = 0; t < T; ++t) {
          for (int g = 0; g < num_gates; ++g) {
            if (prepacked) {
              ops::GemmPrepackedB(false, batch, hidden, hidden, 1.0f,
                                  h.data(), hidden, upack[g], 0.0f, z.data(),
                                  hidden);
            } else {
              ops::Gemm(false, true, batch, hidden, hidden, 1.0f, h.data(),
                        hidden, u[g].data(), hidden, 0.0f, z.data(), hidden);
            }
          }
        }
        ++iters;
        elapsed = std::chrono::duration<double>(Clock::now() - start).count();
      }
      return elapsed / iters;
    };
    const double t_gemm = time_seq(false);
    const double t_pre = time_seq(true);
    std::printf("%-14s %10.1f %12.1f %8.2fx  (T=%d, 4 gates)\n",
                "lstm-gates", t_gemm * 1e6, t_pre * 1e6, t_gemm / t_pre, T);
    registry.GetGauge("bench_gemm.lstm-gates.gemm_us")->Set(t_gemm * 1e6);
    registry.GetGauge("bench_gemm.lstm-gates.prepacked_us")->Set(t_pre * 1e6);
    registry.GetGauge("bench_gemm.lstm-gates.speedup")->Set(t_gemm / t_pre);
  }
  ops::PublishPackMetrics();
  return 0;
}

}  // namespace
}  // namespace ms

int main() { return ms::Main(); }
