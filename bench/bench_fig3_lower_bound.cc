// Reproduces Figure 3: the impact of the lower bound lb on VGG trained with
// model slicing. Models trained with different lbs perform close to each
// other above their lb; slicing below the trained lower bound destroys the
// base representation and the error rate explodes.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/core/evaluator.h"

namespace ms {
namespace {

int Main() {
  const ImageDataSplit split = bench::StandardImages();
  const std::vector<double> lower_bounds =
      bench::FastMode() ? std::vector<double>{0.5, 1.0}
                        : std::vector<double>{0.25, 0.5, 0.75, 1.0};
  // Evaluate on the fine lattice, including rates below each trained lb.
  const std::vector<double> eval_rates = {0.25,  0.375, 0.5, 0.625,
                                          0.75,  0.875, 1.0};

  bench::PrintTitle(
      "Figure 3: test error rate (%) vs slice rate for models trained with "
      "different lower bounds (VGG, synthetic CIFAR)");

  std::printf("%-10s", "lb \\ r");
  for (size_t i = eval_rates.size(); i-- > 0;) {
    std::printf(" %8.3f", eval_rates[i]);
  }
  std::printf("\n");
  bench::PrintRule(10 + 9 * static_cast<int>(eval_rates.size()));

  for (double lb : lower_bounds) {
    auto lattice = SliceConfig::Make(lb, 0.125).MoveValueOrDie();
    auto net = MakeVggSmall(bench::StandardVgg()).MoveValueOrDie();
    std::unique_ptr<SliceRateScheduler> sched;
    if (lattice.num_rates() == 1) {
      sched = std::make_unique<FullOnlyScheduler>();
    } else {
      sched = std::make_unique<RandomStaticScheduler>(
          lattice, /*include_min=*/true, /*include_max=*/true);
    }
    TrainImageClassifier(net.get(), split.train, sched.get(),
                         bench::StandardTrain());
    std::printf("%-10.3f", lb);
    for (size_t i = eval_rates.size(); i-- > 0;) {
      const float err =
          1.0f - EvalAccuracy(net.get(), split.test, eval_rates[i]);
      std::printf(" %8.2f", err * 100.0f);
    }
    std::printf("\n");
    std::fflush(stdout);
  }

  std::printf(
      "\nExpected shape (paper Fig. 3): error is flat-ish and low for "
      "r >= lb, slightly\nbest at r = lb (the base net is optimized most "
      "often), and explodes for r < lb.\n");
  return 0;
}

}  // namespace
}  // namespace ms

int main() { return ms::Main(); }
