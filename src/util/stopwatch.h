// Wall-clock stopwatch for timing training epochs and inference batches.
#ifndef MODELSLICING_UTIL_STOPWATCH_H_
#define MODELSLICING_UTIL_STOPWATCH_H_

#include <chrono>

namespace ms {

/// \brief Monotonic wall-clock timer started at construction.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ms

#endif  // MODELSLICING_UTIL_STOPWATCH_H_
