// Wall-clock stopwatch for timing training epochs, inference batches and
// observability spans.
#ifndef MODELSLICING_UTIL_STOPWATCH_H_
#define MODELSLICING_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>
#include <type_traits>

namespace ms {

/// \brief Monotonic wall-clock timer started at construction. Trivially
/// copyable so tracing spans and profiler records can embed it by value.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

static_assert(std::is_trivially_copyable_v<Stopwatch>,
              "Stopwatch must stay trivially copyable (embedded in spans)");

}  // namespace ms

#endif  // MODELSLICING_UTIL_STOPWATCH_H_
