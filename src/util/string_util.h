// Small string helpers shared by models, benches and table printers.
#ifndef MODELSLICING_UTIL_STRING_UTIL_H_
#define MODELSLICING_UTIL_STRING_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

namespace ms {

/// printf-style formatting into std::string.
template <typename... Args>
std::string StrFormat(const char* fmt, Args... args) {
  const int n = std::snprintf(nullptr, 0, fmt, args...);
  std::string out(static_cast<size_t>(n), '\0');
  std::snprintf(out.data(), out.size() + 1, fmt, args...);
  return out;
}

inline std::vector<std::string> StrSplit(const std::string& s, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      parts.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

inline std::string StrJoin(const std::vector<std::string>& parts,
                           const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace ms

#endif  // MODELSLICING_UTIL_STRING_UTIL_H_
