// Tiny CSV writer used by benches to dump table/figure series for plotting.
#ifndef MODELSLICING_UTIL_CSV_H_
#define MODELSLICING_UTIL_CSV_H_

#include <fstream>
#include <initializer_list>
#include <sstream>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace ms {

class CsvWriter {
 public:
  /// Open `path` for writing; returns IoError if the file cannot be created.
  static Result<CsvWriter> Open(const std::string& path) {
    CsvWriter writer;
    writer.out_.open(path);
    if (!writer.out_.is_open()) {
      return Status::IoError("cannot open " + path);
    }
    return writer;
  }

  void WriteRow(const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) out_ << ",";
      out_ << Escape(cells[i]);
    }
    out_ << "\n";
  }

  template <typename... Args>
  void Row(const Args&... args) {
    std::vector<std::string> cells;
    (cells.push_back(ToCell(args)), ...);
    WriteRow(cells);
  }

 private:
  CsvWriter() = default;

  template <typename T>
  static std::string ToCell(const T& v) {
    std::ostringstream os;
    os << v;
    return os.str();
  }

  static std::string Escape(const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char c : cell) {
      if (c == '"') out += "\"\"";
      else out += c;
    }
    out += "\"";
    return out;
  }

  std::ofstream out_;
};

}  // namespace ms

#endif  // MODELSLICING_UTIL_CSV_H_
