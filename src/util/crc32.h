// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), table-driven. Used by the
// checkpoint format (src/nn/serialize.cc) to detect torn or bit-flipped
// payloads before any parameter is overwritten. The table is built at
// compile time, so including this header has no runtime init cost.
#ifndef MODELSLICING_UTIL_CRC32_H_
#define MODELSLICING_UTIL_CRC32_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace ms {

namespace internal {

constexpr std::array<uint32_t, 256> MakeCrc32Table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<uint32_t, 256> kCrc32Table = MakeCrc32Table();

}  // namespace internal

/// Incremental CRC-32: pass the previous return value as `crc` to continue
/// a running checksum (start from 0).
inline uint32_t Crc32(const void* data, size_t n, uint32_t crc = 0) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    c = internal::kCrc32Table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace ms

#endif  // MODELSLICING_UTIL_CRC32_H_
