// Minimal --key=value command-line flag parsing for the CLI tool and
// examples. No registration: parse argv into a map, read typed values with
// defaults, and report unknown/malformed flags.
#ifndef MODELSLICING_UTIL_FLAGS_H_
#define MODELSLICING_UTIL_FLAGS_H_

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace ms {

class Flags {
 public:
  /// Parses `--key=value` and bare `--key` (-> "true") tokens; positional
  /// arguments (no leading --) are collected in order.
  static Result<Flags> Parse(int argc, const char* const* argv) {
    Flags flags;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        flags.positional_.push_back(arg);
        continue;
      }
      const std::string body = arg.substr(2);
      if (body.empty()) {
        return Status::InvalidArgument("bare '--' is not a flag");
      }
      const size_t eq = body.find('=');
      if (eq == std::string::npos) {
        flags.values_[body] = "true";
      } else {
        if (eq == 0) {
          return Status::InvalidArgument("flag with empty name: " + arg);
        }
        flags.values_[body.substr(0, eq)] = body.substr(eq + 1);
      }
    }
    return flags;
  }

  bool Has(const std::string& key) const {
    return values_.count(key) > 0;
  }

  std::string GetString(const std::string& key,
                        const std::string& def = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
  }

  int64_t GetInt(const std::string& key, int64_t def) const {
    auto it = values_.find(key);
    if (it == values_.end()) return def;
    return std::strtoll(it->second.c_str(), nullptr, 10);
  }

  double GetDouble(const std::string& key, double def) const {
    auto it = values_.find(key);
    if (it == values_.end()) return def;
    return std::strtod(it->second.c_str(), nullptr);
  }

  bool GetBool(const std::string& key, bool def) const {
    auto it = values_.find(key);
    if (it == values_.end()) return def;
    return it->second == "true" || it->second == "1" || it->second == "yes";
  }

  const std::vector<std::string>& positional() const { return positional_; }

  /// Keys not in `known`, for catching typos.
  std::vector<std::string> UnknownKeys(
      const std::vector<std::string>& known) const {
    std::vector<std::string> unknown;
    for (const auto& [key, value] : values_) {
      bool found = false;
      for (const auto& k : known) {
        if (k == key) {
          found = true;
          break;
        }
      }
      if (!found) unknown.push_back(key);
    }
    return unknown;
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace ms

#endif  // MODELSLICING_UTIL_FLAGS_H_
