// Deterministic random number generation. All stochastic behaviour in the
// library (weight init, slice-rate sampling, data synthesis, augmentation)
// flows through Rng so experiments are reproducible from a single seed.
#ifndef MODELSLICING_UTIL_RNG_H_
#define MODELSLICING_UTIL_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "src/util/status.h"

namespace ms {

/// \brief xoshiro256** PRNG seeded via SplitMix64.
///
/// Fast, high-quality and fully deterministic across platforms (unlike
/// std::mt19937 + std::normal_distribution whose outputs are not pinned by
/// the standard).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the 4-word state.
    uint64_t x = seed;
    for (auto& si : s_) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      si = z ^ (z >> 31);
    }
    have_gauss_ = false;
  }

  uint64_t NextU64() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double Uniform() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n) {
    MS_CHECK(n > 0);
    // Lemire's unbiased bounded generation.
    uint64_t x = NextU64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < n) {
      uint64_t t = -n % n;
      while (l < t) {
        x = NextU64();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Standard normal via Marsaglia polar method (cached pair).
  double Gaussian() {
    if (have_gauss_) {
      have_gauss_ = false;
      return cached_gauss_;
    }
    double u, v, s;
    do {
      u = Uniform(-1.0, 1.0);
      v = Uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double f = std::sqrt(-2.0 * std::log(s) / s);
    cached_gauss_ = v * f;
    have_gauss_ = true;
    return u * f;
  }

  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  bool Bernoulli(double p) { return Uniform() < p; }

  /// Poisson-distributed count (Knuth for small lambda, normal approx else).
  int Poisson(double lambda) {
    MS_CHECK(lambda >= 0.0);
    if (lambda > 64.0) {
      const double x = Gaussian(lambda, std::sqrt(lambda));
      return x < 0.0 ? 0 : static_cast<int>(std::lround(x));
    }
    const double limit = std::exp(-lambda);
    double prod = Uniform();
    int n = 0;
    while (prod > limit) {
      prod *= Uniform();
      ++n;
    }
    return n;
  }

  /// Sample an index from unnormalized non-negative weights.
  size_t Categorical(const std::vector<double>& weights) {
    MS_CHECK(!weights.empty());
    double total = 0.0;
    for (double w : weights) {
      MS_CHECK(w >= 0.0);
      total += w;
    }
    MS_CHECK(total > 0.0);
    double u = Uniform() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
      u -= weights[i];
      if (u < 0.0) return i;
    }
    return weights.size() - 1;
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Derive an independent child stream (for per-worker determinism).
  Rng Fork() { return Rng(NextU64() ^ 0xA0761D6478BD642FULL); }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
  bool have_gauss_ = false;
  double cached_gauss_ = 0.0;
};

}  // namespace ms

#endif  // MODELSLICING_UTIL_RNG_H_
