// Bounded multi-producer/multi-consumer queue used as the admission buffer
// of the serving engine. Producers TryPush from any thread and observe
// explicit backpressure (kFull) instead of blocking; the batch-cutting
// consumer drains with PopAll and may return untaken items to the head with
// PushFront, preserving FIFO order even while producers keep appending.
// Close() rejects further pushes so shutdown can distinguish "shed because
// full" from "rejected because stopping".
#ifndef MODELSLICING_UTIL_BOUNDED_QUEUE_H_
#define MODELSLICING_UTIL_BOUNDED_QUEUE_H_

#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace ms {

enum class PushStatus {
  kOk = 0,
  kFull,    ///< at capacity; caller decides whether that means "shed".
  kClosed,  ///< Close() was called; no further admissions.
};

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  PushStatus TryPush(T item) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return PushStatus::kClosed;
    if (items_.size() >= capacity_) return PushStatus::kFull;
    items_.push_back(std::move(item));
    return PushStatus::kOk;
  }

  /// Pops the front item if any.
  bool TryPop(T* out) {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Moves every queued item into `out` (appended), oldest first.
  size_t PopAll(std::vector<T>* out) {
    std::lock_guard<std::mutex> lock(mu_);
    const size_t n = items_.size();
    out->reserve(out->size() + n);
    for (auto& item : items_) out->push_back(std::move(item));
    items_.clear();
    return n;
  }

  /// Returns items to the head in their given order (items[0] becomes the
  /// new front). Capacity-exempt: intended for requeueing items obtained
  /// from PopAll, so the bound cannot be exceeded by honest callers.
  void PushFront(std::vector<T> items) {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = items.rbegin(); it != items.rend(); ++it) {
      items_.push_front(std::move(*it));
    }
  }

  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  mutable std::mutex mu_;
  std::deque<T> items_;
  size_t capacity_;
  bool closed_ = false;
};

}  // namespace ms

#endif  // MODELSLICING_UTIL_BOUNDED_QUEUE_H_
