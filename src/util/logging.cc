#include "src/util/logging.h"

namespace ms {

LogLevel& GlobalLogLevel() {
  static LogLevel level = LogLevel::kInfo;
  return level;
}

}  // namespace ms
