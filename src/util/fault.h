// Fault-injection registry: named injection points that production code
// guards with `fault::Registry::Global().ShouldFire(point)`. Disarmed (the
// default, and the only state reachable without MS_FAULTS or an explicit
// Arm call) the check is a single relaxed atomic load, so injection points
// may sit on serving hot paths with zero measurable overhead.
//
// Arming:
//   - environment: MS_FAULTS="server.worker.stall=0.05@0.02,queue.submit.reject=0.1"
//     (point=probability, optional @param — e.g. stall seconds), parsed the
//     first time Global() is touched; MS_FAULTS_SEED pins the decision seed.
//   - programmatic: Registry::Global().Arm("server.forward.nan", 0.05).
//
// Firing is deterministic per seed: each point owns an independent
// SplitMix64 decision stream keyed by (seed, point name), so the k-th
// evaluation of a point always makes the same decision for a given seed.
// (Which *thread* observes the k-th evaluation still depends on
// scheduling.) Every fire increments the global metrics counter
// `ms_fault_<point with . -> _>_total`, so chaos tests and the disarmed
// no-overhead gate can both observe exactly what fired.
#ifndef MODELSLICING_UTIL_FAULT_H_
#define MODELSLICING_UTIL_FAULT_H_

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/util/status.h"

namespace ms {
namespace fault {

/// Well-known injection points. Any other dotted name works too; these
/// constants just keep call sites and tests in sync.
inline constexpr const char kWorkerStall[] = "server.worker.stall";
inline constexpr const char kForwardThrow[] = "server.forward.throw";
inline constexpr const char kForwardNan[] = "server.forward.nan";
inline constexpr const char kCheckpointTruncate[] = "checkpoint.write.truncate";
inline constexpr const char kQueueReject[] = "queue.submit.reject";
inline constexpr const char kTrainNanLoss[] = "train.loss.nan";
// Network faults (DESIGN.md §13). All fire per FRAME, inside the wire
// send/dispatch paths (src/net/socket.cc, net_server.cc, client.cc):
/// Outgoing frame silently vanishes (send reports success, writes nothing).
inline constexpr const char kNetSendDrop[] = "net.send.drop";
/// Outgoing frame is trickled in small chunks; @param is the total added
/// delay in seconds (default 0.05). Models a congested or slow peer link —
/// and, because sends on one connection serialize, head-of-line blocking.
inline constexpr const char kNetSendSlow[] = "net.send.slow";
/// A fully received, CRC-clean kRequest/kReply frame is dropped before
/// dispatch: the bytes arrived but the message is never processed.
inline constexpr const char kNetRecvBlackhole[] = "net.recv.blackhole";
/// Only a prefix of the frame's bytes is sent: the peer's stream desyncs
/// at the next frame and the connection dies (decoder kFatal).
inline constexpr const char kNetFrameTruncate[] = "net.frame.truncate";
/// The router skips one shard's heartbeat round (lost-gossip staleness).
inline constexpr const char kNetHeartbeatSkip[] = "net.heartbeat.skip";

class Registry {
 public:
  /// Process-wide registry; parses MS_FAULTS / MS_FAULTS_SEED on first use.
  static Registry& Global() {
    static Registry* r = new Registry(/*from_env=*/true);
    return *r;
  }

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Arm `point` to fire with `probability` in [0, 1]. `param` is a
  /// point-specific knob (e.g. stall seconds) read back via Param().
  void Arm(const std::string& point, double probability, double param = 0.0) {
    std::lock_guard<std::mutex> lock(mu_);
    PointState& p = points_[point];
    if (!p.armed) armed_count_.fetch_add(1, std::memory_order_relaxed);
    p.armed = true;
    p.probability = probability < 0.0 ? 0.0 : (probability > 1.0 ? 1.0
                                                                 : probability);
    p.param = param;
    p.stream = StreamSeed(point);
    // Re-fetched on every Arm (not cached once): tests that Reset() the
    // metrics registry between cases would otherwise leave this dangling.
    p.fires_metric =
        obs::MetricsRegistry::Global().GetCounter(MetricName(point));
  }

  void Disarm(const std::string& point) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = points_.find(point);
    if (it == points_.end() || !it->second.armed) return;
    it->second.armed = false;
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }

  void DisarmAll() {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, p] : points_) {
      if (p.armed) armed_count_.fetch_sub(1, std::memory_order_relaxed);
      p.armed = false;
    }
  }

  /// Re-seeds every decision stream (armed points restart their sequence).
  void SetSeed(uint64_t seed) {
    std::lock_guard<std::mutex> lock(mu_);
    seed_ = seed;
    for (auto& [name, p] : points_) p.stream = StreamSeedLocked(name);
  }

  /// Hot path: false immediately unless at least one point is armed.
  bool ShouldFire(const char* point) {
    if (armed_count_.load(std::memory_order_relaxed) == 0) return false;
    std::lock_guard<std::mutex> lock(mu_);
    auto it = points_.find(point);
    if (it == points_.end() || !it->second.armed) return false;
    PointState& p = it->second;
    ++p.evaluations;
    const double u = NextUniform(&p.stream);
    if (u >= p.probability) return false;
    ++p.fires;
    p.fires_metric->Inc();
    // Leave a breadcrumb in the serving black box: a fault firing is
    // exactly the kind of event a post-trip dump needs to explain.
    obs::FlightRecorder::Global().Record(obs::FlightEventKind::kFaultFire,
                                         point, p.fires);
    return true;
  }

  /// The @param armed with `point`, or `fallback` when absent/zero.
  double Param(const char* point, double fallback) const {
    if (armed_count_.load(std::memory_order_relaxed) == 0) return fallback;
    std::lock_guard<std::mutex> lock(mu_);
    auto it = points_.find(point);
    if (it == points_.end() || !it->second.armed || it->second.param == 0.0) {
      return fallback;
    }
    return it->second.param;
  }

  bool armed(const std::string& point) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = points_.find(point);
    return it != points_.end() && it->second.armed;
  }

  int armed_count() const {
    return armed_count_.load(std::memory_order_relaxed);
  }

  int64_t fires(const std::string& point) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = points_.find(point);
    return it == points_.end() ? 0 : it->second.fires;
  }

  int64_t evaluations(const std::string& point) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = points_.find(point);
    return it == points_.end() ? 0 : it->second.evaluations;
  }

  /// Parses "point=prob[@param][,point=prob...]" (the MS_FAULTS syntax) and
  /// arms every entry. Whitespace around tokens is not tolerated — the spec
  /// is machine-written (env vars, CI yaml).
  Status ArmFromSpec(const std::string& spec) {
    size_t pos = 0;
    while (pos < spec.size()) {
      size_t comma = spec.find(',', pos);
      if (comma == std::string::npos) comma = spec.size();
      const std::string entry = spec.substr(pos, comma - pos);
      pos = comma + 1;
      if (entry.empty()) continue;
      const size_t eq = entry.find('=');
      if (eq == std::string::npos || eq == 0) {
        return Status::InvalidArgument("fault spec entry '" + entry +
                                       "' is not point=probability");
      }
      const std::string point = entry.substr(0, eq);
      std::string prob_str = entry.substr(eq + 1);
      double param = 0.0;
      const size_t at = prob_str.find('@');
      if (at != std::string::npos) {
        char* end = nullptr;
        param = std::strtod(prob_str.c_str() + at + 1, &end);
        if (end == nullptr || *end != '\0') {
          return Status::InvalidArgument("bad fault param in '" + entry + "'");
        }
        prob_str.resize(at);
      }
      char* end = nullptr;
      const double prob = std::strtod(prob_str.c_str(), &end);
      if (prob_str.empty() || end == nullptr || *end != '\0' || prob < 0.0 ||
          prob > 1.0) {
        return Status::InvalidArgument("bad fault probability in '" + entry +
                                       "' (want [0, 1])");
      }
      Arm(point, prob, param);
    }
    return Status::OK();
  }

  /// Metrics counter name for a point: ms_fault_<dots -> underscores>_total.
  static std::string MetricName(const std::string& point) {
    std::string name = "ms_fault_";
    for (char c : point) name += (c == '.' ? '_' : c);
    name += "_total";
    return name;
  }

 private:
  struct PointState {
    bool armed = false;
    double probability = 0.0;
    double param = 0.0;
    uint64_t stream = 0;  ///< SplitMix64 state for the decision sequence.
    int64_t evaluations = 0;
    int64_t fires = 0;
    obs::Counter* fires_metric = nullptr;
  };

  explicit Registry(bool from_env) {
    if (const char* seed_env = std::getenv("MS_FAULTS_SEED")) {
      seed_ = std::strtoull(seed_env, nullptr, 10);
    }
    if (from_env) {
      if (const char* spec = std::getenv("MS_FAULTS")) {
        const Status s = ArmFromSpec(spec);
        if (!s.ok()) {
          std::cerr << "MS_FAULTS ignored: " << s << std::endl;
          DisarmAll();
        }
      }
    }
  }

  static uint64_t SplitMix64(uint64_t* state) {
    uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  static double NextUniform(uint64_t* state) {
    return static_cast<double>(SplitMix64(state) >> 11) * 0x1.0p-53;
  }

  uint64_t StreamSeed(const std::string& point) const {
    return StreamSeedLocked(point);
  }

  uint64_t StreamSeedLocked(const std::string& point) const {
    // FNV-1a over the name, mixed with the registry seed: independent
    // deterministic streams per (seed, point).
    uint64_t h = 0xCBF29CE484222325ULL;
    for (char c : point) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001B3ULL;
    }
    return h ^ (seed_ * 0x9E3779B97F4A7C15ULL);
  }

  mutable std::mutex mu_;
  std::atomic<int> armed_count_{0};
  uint64_t seed_ = 0x5EEDF417ULL;
  std::unordered_map<std::string, PointState> points_;
};

}  // namespace fault
}  // namespace ms

#endif  // MODELSLICING_UTIL_FAULT_H_
