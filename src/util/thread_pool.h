// Fixed-size thread pool with a ParallelFor helper. The GEMM kernel layer
// (src/tensor/gemm.h) owns a process-wide instance of this pool for
// compute parallelism; the serving engine owns separate per-server worker
// pools. Work is partitioned statically so results are deterministic
// regardless of scheduling, and ParallelFor degrades to an inline call when
// invoked from inside any pool worker, so nested parallel sections (a conv
// batch shard running a GEMM, a serving worker running a forward) serialize
// instead of deadlocking or oversubscribing the machine.
#ifndef MODELSLICING_UTIL_THREAD_POOL_H_
#define MODELSLICING_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ms {

class ThreadPool {
 public:
  explicit ThreadPool(int num_threads) {
    if (num_threads < 1) num_threads = 1;
    workers_.reserve(static_cast<size_t>(num_threads));
    for (int i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueue a task for any worker. Fire-and-forget: callers that need
  /// completion (ParallelFor, the serving engine's drain) track it
  /// themselves. The destructor runs every queued task before joining.
  void Submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      tasks_.push(std::move(task));
    }
    cv_.notify_one();
  }

  /// True on any ThreadPool worker thread (of any pool instance). Used to
  /// serialize nested parallel sections: a task that itself calls
  /// ParallelFor must not block a worker waiting on shards that only other
  /// workers could run.
  static bool InWorkerThread() { return tls_in_worker_; }

  /// Run fn(begin, end) over disjoint static partitions of [0, n) and wait.
  /// Runs fn(0, n) inline when called from a pool worker (see
  /// InWorkerThread) or when the pool has a single thread.
  void ParallelFor(int64_t n, const std::function<void(int64_t, int64_t)>& fn) {
    if (n <= 0) return;
    if (tls_in_worker_) {
      fn(0, n);
      return;
    }
    const int64_t shards =
        std::min<int64_t>(n, static_cast<int64_t>(workers_.size()));
    if (shards <= 1) {
      fn(0, n);
      return;
    }
    std::mutex done_mu;
    std::condition_variable done_cv;
    int64_t remaining = shards;
    const int64_t chunk = (n + shards - 1) / shards;
    for (int64_t s = 0; s < shards; ++s) {
      const int64_t begin = s * chunk;
      const int64_t end = std::min(n, begin + chunk);
      Submit([&, begin, end] {
        if (begin < end) fn(begin, end);
        std::lock_guard<std::mutex> lock(done_mu);
        if (--remaining == 0) done_cv.notify_one();
      });
    }
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&] { return remaining == 0; });
  }

 private:
  void WorkerLoop() {
    tls_in_worker_ = true;
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
        if (shutdown_ && tasks_.empty()) return;
        task = std::move(tasks_.front());
        tasks_.pop();
      }
      task();
    }
  }

  static inline thread_local bool tls_in_worker_ = false;

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool shutdown_ = false;
};

}  // namespace ms

#endif  // MODELSLICING_UTIL_THREAD_POOL_H_
