// Hashed timer wheel for per-request deadlines (DESIGN.md §13).
//
// The router (and the reliable client) schedule three kinds of timers per
// in-flight request — failover, hedge, settle — at rates of thousands per
// second. A heap would pay O(log n) per operation and churn allocations; a
// wheel pays O(1) amortized: each entry lands in the bucket of its expiry
// tick, and Advance() walks only the buckets between the last call and
// `now`. Entries further out than one revolution simply stay in their
// bucket until a walk passes their actual expiry time (classic "hashed
// wheel" — no hierarchical cascade needed at our horizon of a few
// seconds).
//
// Not thread-safe: callers (the router's timer thread, tests) guard the
// wheel with their own mutex. Time is caller-supplied seconds on a
// monotonic clock, so the wheel is trivially testable with fake time.
#ifndef MODELSLICING_UTIL_TIMER_WHEEL_H_
#define MODELSLICING_UTIL_TIMER_WHEEL_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ms {

template <typename T>
class TimerWheel {
 public:
  /// `now` anchors the wheel's cursor; `tick_seconds` is the firing
  /// granularity; `slots` is the bucket count (one revolution spans
  /// slots * tick_seconds).
  explicit TimerWheel(double now, double tick_seconds = 0.005,
                      size_t slots = 1024)
      : tick_(tick_seconds > 0.0 ? tick_seconds : 0.005),
        slots_(slots < 2 ? 2 : slots),
        cursor_(TickOf(now)) {}

  /// Schedules `item` to pop at absolute time `when` (seconds, same clock
  /// as `now`). Items scheduled at or before the cursor pop on the next
  /// Advance. Firing granularity is one tick LATE, never early.
  void Add(double when, T item) {
    // Bucket by the first tick boundary AFTER `when`: a bucket is visited
    // exactly when the cursor crosses its tick, so bucketing by the floor
    // tick would let the walk arrive a sub-tick phase BEFORE the expiry,
    // keep the not-yet-due entry, and strand it for a whole revolution.
    const uint64_t tick = TickOf(when) + 1;
    const size_t slot = static_cast<size_t>(
        (tick <= cursor_ ? cursor_ + 1 : tick) % slots_.size());
    slots_[slot].push_back(Entry{when, std::move(item)});
    ++count_;
  }

  /// Pops every item whose `when` <= `now`, walking the wheel forward.
  /// Items in walked buckets that are not yet due (later revolutions) are
  /// kept in place.
  std::vector<T> Advance(double now) {
    std::vector<T> due;
    const uint64_t target = TickOf(now);
    if (target <= cursor_) return due;
    // A jump past a full revolution visits every bucket exactly once.
    const uint64_t steps =
        target - cursor_ >= slots_.size()
            ? static_cast<uint64_t>(slots_.size())
            : target - cursor_;
    for (uint64_t i = 1; i <= steps; ++i) {
      auto& bucket = slots_[static_cast<size_t>((cursor_ + i) % slots_.size())];
      size_t kept = 0;
      for (size_t j = 0; j < bucket.size(); ++j) {
        if (bucket[j].when <= now) {
          due.push_back(std::move(bucket[j].item));
        } else {
          bucket[kept++] = std::move(bucket[j]);
        }
      }
      bucket.resize(kept);
    }
    cursor_ = target;
    count_ -= due.size();
    return due;
  }

  size_t size() const { return count_; }

 private:
  struct Entry {
    double when;
    T item;
  };

  uint64_t TickOf(double seconds) const {
    return seconds <= 0.0 ? 0 : static_cast<uint64_t>(seconds / tick_);
  }

  double tick_;
  std::vector<std::vector<Entry>> slots_;
  uint64_t cursor_;
  size_t count_ = 0;
};

}  // namespace ms

#endif  // MODELSLICING_UTIL_TIMER_WHEEL_H_
