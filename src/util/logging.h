// Minimal leveled logging to stderr, controllable at runtime.
#ifndef MODELSLICING_UTIL_LOGGING_H_
#define MODELSLICING_UTIL_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace ms {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// \brief Process-wide minimum level; messages below it are dropped.
LogLevel& GlobalLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line) : level_(level) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << Name(level) << " " << base << ":" << line << "] ";
  }
  ~LogMessage() {
    if (level_ >= GlobalLogLevel()) {
      stream_ << "\n";
      std::cerr << stream_.str();
    }
  }
  std::ostream& stream() { return stream_; }

 private:
  static const char* Name(LogLevel level) {
    switch (level) {
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO";
      case LogLevel::kWarn: return "WARN";
      case LogLevel::kError: return "ERROR";
    }
    return "?";
  }
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace ms

#define MS_LOG(level)                                                     \
  ::ms::internal::LogMessage(::ms::LogLevel::k##level, __FILE__, __LINE__) \
      .stream()

#endif  // MODELSLICING_UTIL_LOGGING_H_
