// Status and Result types for fallible operations, in the style of
// Apache Arrow / RocksDB. Public APIs that can fail on user input return
// Status (or Result<T>); internal invariant violations use MS_CHECK.
#ifndef MODELSLICING_UTIL_STATUS_H_
#define MODELSLICING_UTIL_STATUS_H_

#include <cstdlib>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>

namespace ms {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kFailedPrecondition = 5,
  kInternal = 6,
  kNotImplemented = 7,
  kIoError = 8,
};

/// \brief Outcome of an operation: OK, or an error code plus message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return CodeName(code_) + ": " + msg_;
  }

  static std::string CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kOutOfRange: return "OutOfRange";
      case StatusCode::kNotFound: return "NotFound";
      case StatusCode::kAlreadyExists: return "AlreadyExists";
      case StatusCode::kFailedPrecondition: return "FailedPrecondition";
      case StatusCode::kInternal: return "Internal";
      case StatusCode::kNotImplemented: return "NotImplemented";
      case StatusCode::kIoError: return "IoError";
    }
    return "Unknown";
  }

 private:
  StatusCode code_;
  std::string msg_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// \brief Either a value of type T or an error Status.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}            // NOLINT
  Result(Status status) : status_(std::move(status)) {}    // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& ValueOrDie() const {
    if (!ok()) {
      std::cerr << "Result::ValueOrDie on error: " << status_ << std::endl;
      std::abort();
    }
    return *value_;
  }
  T& ValueOrDie() {
    if (!ok()) {
      std::cerr << "Result::ValueOrDie on error: " << status_ << std::endl;
      std::abort();
    }
    return *value_;
  }
  T MoveValueOrDie() {
    if (!ok()) {
      std::cerr << "Result::MoveValueOrDie on error: " << status_ << std::endl;
      std::abort();
    }
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace ms

// Propagate a non-OK status to the caller.
#define MS_RETURN_NOT_OK(expr)              \
  do {                                      \
    ::ms::Status _st = (expr);              \
    if (!_st.ok()) return _st;              \
  } while (0)

// Abort on internal invariant violation with file/line context.
#define MS_CHECK(cond)                                                   \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::cerr << "MS_CHECK failed: " #cond " at " << __FILE__ << ":"   \
                << __LINE__ << std::endl;                                \
      std::abort();                                                      \
    }                                                                    \
  } while (0)

#define MS_CHECK_MSG(cond, msg)                                          \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::cerr << "MS_CHECK failed: " #cond " at " << __FILE__ << ":"   \
                << __LINE__ << " — " << (msg) << std::endl;              \
      std::abort();                                                      \
    }                                                                    \
  } while (0)

#endif  // MODELSLICING_UTIL_STATUS_H_
