#include "src/serving/health.h"

#include <cmath>

#include "src/util/status.h"

namespace ms {

bool TensorIsFinite(const Tensor& t) {
  const float* p = t.data();
  const int64_t n = t.size();
  for (int64_t i = 0; i < n; ++i) {
    if (!std::isfinite(p[i])) return false;
  }
  return true;
}

bool ReplicaHealth::Quarantine(int idx) {
  std::lock_guard<std::mutex> lock(mu_);
  MS_CHECK(idx >= 0 && idx < static_cast<int>(states_.size()));
  if (states_[static_cast<size_t>(idx)] == ReplicaState::kQuarantined) {
    return false;
  }
  states_[static_cast<size_t>(idx)] = ReplicaState::kQuarantined;
  --healthy_;
  return true;
}

void ReplicaHealth::Readmit(int idx) {
  std::lock_guard<std::mutex> lock(mu_);
  MS_CHECK(idx >= 0 && idx < static_cast<int>(states_.size()));
  if (states_[static_cast<size_t>(idx)] == ReplicaState::kHealthy) return;
  states_[static_cast<size_t>(idx)] = ReplicaState::kHealthy;
  ++healthy_;
}

ReplicaState ReplicaHealth::state(int idx) const {
  std::lock_guard<std::mutex> lock(mu_);
  MS_CHECK(idx >= 0 && idx < static_cast<int>(states_.size()));
  return states_[static_cast<size_t>(idx)];
}

int ReplicaHealth::healthy_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return healthy_;
}

int ReplicaHealth::quarantined_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(states_.size()) - healthy_;
}

bool CircuitBreaker::Allow() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!open_) return true;
  // Half-open: after the cooloff one batch may probe; the breaker stays
  // formally open until OnSuccess closes it, so a failing probe re-arms the
  // cooloff instead of letting a burst through.
  return Clock::now() >= open_until_;
}

void CircuitBreaker::OnSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  failures_ = 0;
  open_ = false;
}

void CircuitBreaker::OnFailure() {
  std::lock_guard<std::mutex> lock(mu_);
  ++failures_;
  if (failures_ >= threshold_) {
    open_ = true;
    open_until_ =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(cooloff_));
  }
}

bool CircuitBreaker::open() {
  std::lock_guard<std::mutex> lock(mu_);
  return open_;
}

int CircuitBreaker::consecutive_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failures_;
}

}  // namespace ms
