// Backlog-aware degradation manager: the production-shaped version of the
// Sec. 4.1 scheduler. Unlike the idealized per-tick simulation (every tick's
// batch fits or fails independently), this manager keeps a bounded queue —
// work that would overrun the tick budget at the base rate stays queued,
// and requests that exceed the queue bound or their per-request deadline are
// shed. This models the paper's motivating scenario: graceful, fine-grained
// degradation instead of coarse model swapping or crashes.
#ifndef MODELSLICING_SERVING_DEGRADATION_MANAGER_H_
#define MODELSLICING_SERVING_DEGRADATION_MANAGER_H_

#include <deque>
#include <vector>

#include "src/serving/latency_scheduler.h"

namespace ms {

struct DegradationOptions {
  ServingConfig serving;
  int64_t max_queue = 256;   ///< requests beyond this are shed immediately.
  int max_wait_ticks = 2;    ///< deadline: ticks a request may wait queued.
};

struct DegradationTick {
  int arrivals = 0;
  int processed = 0;
  int shed = 0;              ///< dropped (queue overflow or deadline).
  int backlog = 0;           ///< queue length after the tick.
  double rate = 1.0;
  Precision precision = Precision::kFp32;  ///< precision for the batch.
  double accuracy = 0.0;
};

struct DegradationSummary {
  int64_t total_arrivals = 0;
  int64_t total_processed = 0;
  int64_t total_shed = 0;
  double mean_rate = 0.0;      ///< processed-weighted.
  double mean_accuracy = 0.0;  ///< processed-weighted.
  int max_backlog = 0;
};

/// \brief Runs the queue + slice-rate policy over an arrival trace.
class DegradationManager {
 public:
  static Result<DegradationManager> Make(const DegradationOptions& opts);

  /// Process one tick with `arrivals` new requests.
  DegradationTick Step(int arrivals);

  /// Reset the queue state.
  void Reset();

  /// Convenience: run a whole trace from a clean state.
  DegradationSummary Run(const std::vector<int>& arrivals,
                         std::vector<DegradationTick>* ticks = nullptr);

  /// Largest batch the T/2 budget can absorb at the base (lowest) rate
  /// and the cheapest calibrated precision — the last rung of the
  /// shedding ladder before work must stay queued. With an int8 cost
  /// column calibrated, "drop to int8 at the base rate" is that rung, so
  /// the queue drains up to t_fp32/t_int8 times faster before shedding.
  /// Shared with the real-time SliceServer so simulation and serving
  /// apply the identical policy.
  static int64_t MaxBatchWithinBudget(const ServingConfig& config);

 private:
  DegradationManager(DegradationOptions opts, LatencyScheduler scheduler)
      : opts_(std::move(opts)), scheduler_(std::move(scheduler)) {}

  DegradationOptions opts_;
  LatencyScheduler scheduler_;
  std::deque<int> queue_;  ///< per-request age in ticks.
};

}  // namespace ms

#endif  // MODELSLICING_SERVING_DEGRADATION_MANAGER_H_
