// Concurrent batched serving engine (paper Sec. 4.1, made real).
//
// The simulators in latency_scheduler.h / degradation_manager.h exercise the
// Eq. 3 rule (pick the largest trained rate r with n * r^2 * t <= T/2) with
// arithmetic only. SliceServer runs it against the wall clock:
//
//   producers ──Submit()──► RequestQueue (bounded MPMC, per-request deadline)
//                                │  batch cut every T/2 tick
//                                ▼
//                         batcher thread ── LatencyScheduler::Schedule(n)
//                                │  rate r, batch ≤ MaxBatchWithinBudget
//                                ▼
//                       ThreadPool workers ── replica->SetSliceRate(r)
//                                             replica->Forward(batch)
//
// Degradation ladder (shared with DegradationManager, in order):
//   1. shed:   Submit on a full queue returns kShedQueueFull;
//   2. lower rates: the scheduler slices the model down to the base rate;
//   3. reject: once Stop() begins, Submit returns kRejectedClosed.
// Requests whose deadline passes while queued are dropped at the next batch
// cut and counted as expired.
//
// `t` (full-model per-sample seconds) is *measured* at Start() by timing
// real forwards, instead of trusting ServingConfig::full_sample_time — on
// the serving path the config constant is a guess, and Eq. 3 is only as good
// as t. All ServingConfig times are seconds here (latency_budget = T).
//
// Every ServerStats counter also lands in the global metrics registry under
// ms_server_* (queue depth, shed/expired counts, batch latency histogram,
// chosen vs achieved rate).
#ifndef MODELSLICING_SERVING_SERVER_H_
#define MODELSLICING_SERVING_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/nn/module.h"
#include "src/serving/latency_scheduler.h"
#include "src/serving/request_queue.h"
#include "src/util/status.h"
#include "src/util/thread_pool.h"

namespace ms {

struct ServerOptions {
  /// Sec. 4.1 parameters. Times are seconds; `full_sample_time` is replaced
  /// by the calibration measurement unless `calibrate` is false.
  ServingConfig serving;
  int64_t max_queue = 1024;       ///< admission bound; beyond it, shed.
  /// Per-sample input shape (no batch dimension), e.g. {3, 12, 12}.
  std::vector<int64_t> sample_shape;
  bool calibrate = true;
  int calibration_batch = 8;      ///< samples per calibration forward.
  int calibration_repeats = 3;    ///< timed repeats; the minimum is taken.
  /// Run one forward per (replica, trained rate) at Start() so every weight
  /// pack exists before traffic arrives; steady-state serving then never
  /// packs. Disable only to measure the cold path on purpose.
  bool prewarm = true;
};

/// Post-Stop invariant: submitted == served + shed + expired + rejected —
/// every request is accounted for exactly once.
struct ServerStats {
  int64_t submitted = 0;   ///< Submit() calls.
  int64_t accepted = 0;    ///< admitted to the queue.
  int64_t served = 0;      ///< went through a real Forward.
  int64_t shed = 0;        ///< queue-full at admission, or queued at Stop.
  int64_t expired = 0;     ///< deadline passed before execution.
  int64_t rejected = 0;    ///< submitted before Start or during/after Stop.
  int64_t batches = 0;     ///< forwards dispatched.
  int64_t ticks = 0;       ///< batch-cut intervals elapsed.
  double min_rate = 1.0;   ///< lowest slice rate any batch ran at.
  double max_batch_seconds = 0.0;  ///< slowest batch forward.
};

/// \brief Multi-threaded model-slicing server over per-worker replicas.
///
/// Each worker owns one model replica (Module is stateful across
/// Forward/SetSliceRate, so replicas are never shared between concurrent
/// batches). Lifecycle: Create -> Start -> Submit... -> Stop. Stop is
/// graceful: admission closes, in-flight batches finish, still-queued
/// requests are shed/expired with exact accounting. Restart is not
/// supported; create a new server instead.
class SliceServer {
 public:
  static Result<std::unique_ptr<SliceServer>> Create(
      std::vector<std::unique_ptr<Module>> replicas, ServerOptions opts);

  ~SliceServer();

  SliceServer(const SliceServer&) = delete;
  SliceServer& operator=(const SliceServer&) = delete;

  /// Calibrates `t` (unless disabled) and starts the batcher thread.
  Status Start();

  /// Admission control; safe from any thread. `deadline_seconds` is
  /// relative to now; <= 0 means no deadline.
  AdmitResult Submit(double deadline_seconds = 0.0);

  /// Graceful shutdown: close admission, let in-flight batches drain, shed
  /// the remaining queue. Idempotent; safe to race from multiple threads.
  void Stop();

  ServerStats stats() const;
  int64_t queue_depth() const { return queue_->depth(); }
  double tick_seconds() const { return tick_seconds_; }
  /// Measured full-model per-sample seconds (0 before calibration). This is
  /// the *warm* time: the cold first forward is excluded.
  double calibrated_sample_seconds() const { return calibrated_t_; }
  /// Per-sample seconds of the very first forward (weight packing and
  /// first-touch allocation included); 0 before calibration or when
  /// calibration is disabled. The gap to calibrated_sample_seconds() is the
  /// one-time cost prewarming moves out of the serving path.
  double cold_start_sample_seconds() const { return cold_start_t_; }
  /// Serving config as used (full_sample_time reflects calibration).
  const ServingConfig& serving_config() const { return opts_.serving; }
  int num_workers() const { return static_cast<int>(replicas_.size()); }

 private:
  SliceServer(std::vector<std::unique_ptr<Module>> replicas,
              ServerOptions opts);

  Status Calibrate();
  void Prewarm();
  void BatcherLoop();
  void TickOnce();
  void ExecuteBatch(int64_t n, double rate);
  Module* AcquireReplica();
  void ReleaseReplica(Module* m);

  ServerOptions opts_;
  std::vector<std::unique_ptr<Module>> replicas_;
  std::unique_ptr<RequestQueue> queue_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<LatencyScheduler> scheduler_;

  double tick_seconds_ = 0.0;     ///< T/2, the batching interval.
  double calibrated_t_ = 0.0;
  double cold_start_t_ = 0.0;     ///< first-forward (pack-included) time.

  std::atomic<bool> started_{false};
  std::atomic<bool> stop_requested_{false};
  std::thread batcher_;
  std::mutex lifecycle_mu_;       ///< serializes Start/Stop.
  bool stopped_ = false;          ///< guarded by lifecycle_mu_.

  std::mutex batcher_mu_;
  std::condition_variable batcher_cv_;

  // Free-list of replicas available to worker tasks.
  std::mutex replica_mu_;
  std::condition_variable replica_cv_;
  std::vector<Module*> free_replicas_;

  // In-flight batch tracking for the shutdown drain.
  std::mutex inflight_mu_;
  std::condition_variable inflight_cv_;
  int64_t in_flight_ = 0;

  // Admission / execution counters. served/min_rate/max_batch_seconds are
  // written by worker threads; everything is atomic or stats_mu_-guarded.
  std::atomic<int64_t> submitted_{0};
  std::atomic<int64_t> accepted_{0};
  std::atomic<int64_t> served_{0};
  std::atomic<int64_t> shed_{0};
  std::atomic<int64_t> expired_{0};
  std::atomic<int64_t> rejected_{0};
  std::atomic<int64_t> batches_{0};
  std::atomic<int64_t> ticks_{0};
  mutable std::mutex stats_mu_;
  double min_rate_ = 1.0;
  double max_batch_seconds_ = 0.0;
  std::atomic<float> output_guard_{0.0f};  ///< keeps forwards observable.
};

/// One tick of the closed-loop driver below.
struct ClosedLoopTick {
  int submitted = 0;
  int64_t queue_depth = 0;  ///< sampled at the end of the tick.
};

/// Drives a started server in real time: each tick submits `arrivals[i]`
/// requests (deadline `deadline_seconds`, <= 0 for none), sleeps one batch
/// interval, and samples the queue depth. Returns the per-tick trace.
std::vector<ClosedLoopTick> RunClosedLoop(SliceServer* server,
                                          const std::vector<int>& arrivals,
                                          double deadline_seconds = 0.0);

}  // namespace ms

#endif  // MODELSLICING_SERVING_SERVER_H_
