// Concurrent batched serving engine (paper Sec. 4.1, made real).
//
// The simulators in latency_scheduler.h / degradation_manager.h exercise the
// Eq. 3 rule (pick the largest trained rate r with n * r^2 * t <= T/2) with
// arithmetic only. SliceServer runs it against the wall clock:
//
//   producers ──Submit()──► RequestQueue (bounded MPMC, per-request deadline)
//                                │  batch cut every T/2 tick
//                                ▼
//                         batcher thread ── LatencyScheduler::Schedule(n)
//                                │  rate r, batch ≤ MaxBatchWithinBudget
//                                ▼
//                       ThreadPool workers ── replica->SetSliceRate(r)
//                                             replica->Forward(batch)
//
// Degradation ladder (shared with DegradationManager, in order):
//   1. shed:   Submit on a full queue returns kShedQueueFull;
//   2. drop precision, then rate: with the int8 axis enabled the scheduler
//      tries int8 at the current rate before it sheds a rate step, then
//      slices the model down toward the base rate;
//   3. reject: once Stop() begins — or while the failure circuit breaker is
//      open — Submit returns kRejectedClosed.
// Requests whose deadline passes while queued are dropped at the next batch
// cut and counted as expired.
//
// Self-healing layer (src/serving/health.h, tunable via
// ServerOptions::health):
//   - Watchdog: the batcher tracks every in-flight batch; one that exceeds
//     k x its expected n*r^2*t (a stalled or dead worker) is rescheduled
//     ONCE on a healthy worker after a deadline re-check. The superseded
//     attempt's eventual result is discarded under the ticket lock, so a
//     request can never be served twice.
//   - Output health: every batch's logits are scanned for NaN/Inf. A
//     poisoned replica is quarantined, repaired from the golden weight
//     snapshot taken at Start(), probed with a small forward, and
//     readmitted only if the probe is clean. Unrepairable replicas stay out
//     of the free list for good.
//   - Circuit breaker: consecutive final batch failures open the breaker;
//     admission rejects (the ladder's last rung) until a cooloff passes and
//     a probe batch succeeds.
//   - Worker exceptions are caught, counted as `failed`, and always release
//     the in-flight slot — a worker that dies mid-batch cannot park Stop().
//
// Fault-injection points on this path (src/util/fault.h, armed via
// MS_FAULTS): server.worker.stall, server.forward.throw, server.forward.nan
// (weight-poisons the replica so the health check must catch it), and
// queue.submit.reject inside RequestQueue. All are single relaxed atomic
// loads when disarmed.
//
// `t` (full-model per-sample seconds) is *measured* at Start() by timing
// real forwards, instead of trusting ServingConfig::full_sample_time — on
// the serving path the config constant is a guess, and Eq. 3 is only as good
// as t. All ServingConfig times are seconds here (latency_budget = T).
//
// Every ServerStats counter also lands in the global metrics registry under
// ms_server_* (queue depth, shed/expired/failed counts, batch latency
// histogram, chosen vs achieved rate, quarantine/repair/retry counts).
#ifndef MODELSLICING_SERVING_SERVER_H_
#define MODELSLICING_SERVING_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/nn/module.h"
#include "src/obs/metrics.h"
#include "src/serving/decision_log.h"
#include "src/tensor/activation_arena.h"
#include "src/serving/health.h"
#include "src/serving/latency_scheduler.h"
#include "src/serving/request_queue.h"
#include "src/util/status.h"
#include "src/util/thread_pool.h"

namespace ms {

struct ServerOptions {
  /// Sec. 4.1 parameters. Times are seconds; `full_sample_time` is replaced
  /// by the calibration measurement unless `calibrate` is false.
  ServingConfig serving;
  int64_t max_queue = 1024;       ///< admission bound; beyond it, shed.
  /// Per-sample input shape (no batch dimension), e.g. {3, 12, 12}.
  std::vector<int64_t> sample_shape;
  bool calibrate = true;
  int calibration_batch = 8;      ///< samples per calibration forward.
  int calibration_repeats = 3;    ///< timed repeats; the minimum is taken.
  /// Run one forward per (replica, trained rate) at Start() so every weight
  /// pack exists before traffic arrives; steady-state serving then never
  /// packs. With int8 enabled this also covers the quantized packs, so
  /// steady-state serving never re-quantizes either. Disable only to
  /// measure the cold path on purpose.
  bool prewarm = true;
  /// Turn on the second elastic axis: batches may run int8 at the current
  /// rate before the scheduler sheds a rate step. With `calibrate` true the
  /// int8 per-sample time is measured at Start(); with `calibrate` false,
  /// `serving.full_sample_time_int8` must be set (> 0) and is trusted
  /// verbatim — the fixed-calibration injection tests use exactly that.
  bool enable_int8 = false;
  /// Watchdog / quarantine / circuit-breaker knobs (src/serving/health.h).
  HealthOptions health;
  /// Ring size of the always-on scheduler decision log (DESIGN.md §8).
  int64_t decision_log_capacity = 4096;
};

/// Post-Stop invariant:
///   submitted == served + shed + expired + rejected + failed —
/// every request is accounted for exactly once.
struct ServerStats {
  int64_t submitted = 0;   ///< Submit() calls.
  int64_t accepted = 0;    ///< admitted to the queue.
  int64_t served = 0;      ///< went through a real Forward with clean output.
  int64_t shed = 0;        ///< queue-full at admission, or queued at Stop.
  int64_t expired = 0;     ///< deadline passed before execution.
  int64_t rejected = 0;    ///< before Start, during/after Stop, breaker open,
                           ///< or malformed (non-finite deadline).
  int64_t failed = 0;      ///< batch threw or stayed poisoned after the
                           ///< single retry — requests definitively lost.
  int64_t batches = 0;     ///< forwards dispatched.
  int64_t batches_int8 = 0;  ///< forwards dispatched on the int8 path.
  int64_t ticks = 0;       ///< batch-cut intervals elapsed.
  int64_t retried_batches = 0;    ///< watchdog or failure reschedules.
  int64_t quarantined = 0;        ///< replica quarantine events.
  int64_t repaired = 0;           ///< quarantined replicas readmitted.
  double min_rate = 1.0;   ///< lowest slice rate any batch ran at.
  double max_batch_seconds = 0.0;  ///< slowest batch forward.
};

/// \brief Multi-threaded model-slicing server over per-worker replicas.
///
/// Each worker owns one model replica (Module is stateful across
/// Forward/SetSliceRate, so replicas are never shared between concurrent
/// batches). Replicas must be weight-identical (CopyParams): replica 0's
/// weights become the golden master used to repair poisoned replicas.
/// Lifecycle: Create -> Start -> Submit... -> Stop. Stop is graceful:
/// admission closes, in-flight batches finish, still-queued requests are
/// shed/expired with exact accounting. Restart is not supported; create a
/// new server instead.
class SliceServer {
 public:
  static Result<std::unique_ptr<SliceServer>> Create(
      std::vector<std::unique_ptr<Module>> replicas, ServerOptions opts);

  ~SliceServer();

  SliceServer(const SliceServer&) = delete;
  SliceServer& operator=(const SliceServer&) = delete;

  /// Calibrates `t` (unless disabled) and starts the batcher thread.
  Status Start();

  /// Admission control; safe from any thread. `deadline_seconds` is
  /// relative to now; <= 0 means no deadline; NaN/Inf is rejected.
  /// `done` (optional) fires exactly once with the request's terminal
  /// outcome — served/expired/shed-at-stop/failed — but only when this
  /// call returns kAccepted; for any other AdmitResult the synchronous
  /// return value is the request's whole story. The networked frontend
  /// (src/net/frontend.h) rides its per-request replies on this hook.
  AdmitResult Submit(double deadline_seconds = 0.0,
                     RequestDoneFn done = nullptr);

  /// Graceful shutdown: close admission, let in-flight batches drain, shed
  /// the remaining queue. Idempotent; safe to race from multiple threads.
  void Stop();

  ServerStats stats() const;
  int64_t queue_depth() const { return queue_->depth(); }
  int64_t queue_capacity() const { return queue_->capacity(); }
  double tick_seconds() const { return tick_seconds_; }
  /// Measured full-model per-sample seconds (0 before calibration). This is
  /// the *warm* time: the cold first forward is excluded.
  double calibrated_sample_seconds() const { return calibrated_t_; }
  /// Measured (or injected) int8 per-sample seconds; 0 when the int8 axis
  /// is off.
  double calibrated_sample_seconds_int8() const { return calibrated_t8_; }
  /// Per-sample seconds of the very first forward (weight packing and
  /// first-touch allocation included); 0 before calibration or when
  /// calibration is disabled. The gap to calibrated_sample_seconds() is the
  /// one-time cost prewarming moves out of the serving path.
  double cold_start_sample_seconds() const { return cold_start_t_; }
  /// Serving config as used (full_sample_time reflects calibration).
  const ServingConfig& serving_config() const { return opts_.serving; }
  int num_workers() const { return static_cast<int>(replicas_.size()); }
  /// Per-batch scheduler decisions + cost-model drift EWMA (always on).
  const DecisionLog& decision_log() const { return decision_log_; }
  /// Replicas currently serving-eligible (total minus quarantined).
  int healthy_workers() const;
  /// True while the failure circuit breaker is rejecting admissions.
  bool breaker_open() const;

  /// Activation memory accounting (src/tensor/activation_arena.h). Every
  /// forward a replica runs — calibration, prewarm, serving, repair probe —
  /// executes inside that replica's activation arena, so these numbers are
  /// the replica's true activation footprint.
  /// High-water mark of live activation bytes on replica `i`.
  int64_t replica_peak_activation_bytes(int i) const {
    return arenas_[static_cast<size_t>(i)].peak_live_bytes();
  }
  /// Slab bytes reserved by replica `i`'s arena (monotone).
  int64_t replica_arena_slab_bytes(int i) const {
    return arenas_[static_cast<size_t>(i)].slab_bytes();
  }
  /// Planned (packed) activation bytes per trained rate, from the lifetime
  /// plans Start() runs after prewarm — the measured ~r^2-curve component.
  /// Empty when prewarm was disabled.
  const std::map<double, int64_t>& planned_activation_bytes() const {
    return planned_activation_bytes_;
  }

 private:
  using SteadyClock = std::chrono::steady_clock;

  /// One dispatched batch. The ticket outlives worker attempts: the
  /// watchdog may supersede attempt 0 with a retry, and only the attempt
  /// whose number still matches the ticket's may account the outcome —
  /// that handshake (under tickets_mu_) is what makes double-serving
  /// impossible.
  struct BatchTicket {
    std::vector<Request> requests;
    double rate = 1.0;
    Precision precision = Precision::kFp32;
    int attempt = 0;                  ///< 0 original, 1 the single retry.
    SteadyClock::time_point start;    ///< current attempt's dispatch time.
    double watchdog_seconds = 0.0;    ///< stall threshold for this attempt.
    // Lifecycle stamps shared by every request in the batch (trace clock,
    // 0 when stage stats are off). fwd_start_ns is re-stamped by each
    // attempt, so a settled request's stamps are the serving attempt's.
    int64_t cut_ns = 0;               ///< batch cut began.
    int64_t formed_ns = 0;            ///< cut done, batch formed.
    int64_t sched_ns = 0;             ///< rate decision made.
    int64_t fwd_start_ns = 0;         ///< worker began the forward.
  };

  SliceServer(std::vector<std::unique_ptr<Module>> replicas,
              ServerOptions opts);

  Status Calibrate();
  void Prewarm();
  /// Records one forward per (replica, trained rate) inside the replica's
  /// arena, packs the lifetimes (activation_planner.h) and Reserve()s the
  /// packed footprint, so steady-state serving never grows a slab.
  void PlanActivationArenas();
  void BatcherLoop();
  void TickOnce();
  void RunWatchdog();
  /// Worker body for one attempt at one ticket. Never throws; always
  /// releases the replica and settles the ticket's accounting.
  void RunAttempt(int64_t ticket_id, int my_attempt);
  /// Settles an attempt: serve, schedule the one retry, or fail. No-op if
  /// the attempt was superseded. `fwd_done_ns` is the attempt's
  /// forward-done stamp (0 when stage stats are off or no forward ran).
  void FinalizeAttempt(int64_t ticket_id, int my_attempt, bool success,
                       double batch_seconds, int64_t fwd_done_ns);
  /// Quarantines a poisoned replica, restores golden weights, probes, and
  /// readmits on a clean probe.
  void QuarantineAndRepair(int replica);
  bool RepairReplica(int replica);
  double WatchdogThreshold(int64_t n, double rate, Precision precision) const;
  void FinishTicket();  ///< in-flight bookkeeping after a ticket settles.

  /// Folds one batch's stamps into the per-stage histograms and, when the
  /// global RequestTraceLog is enabled, appends one RequestTimeline per
  /// request. `outcome` is a static string ("served"/"expired"/...);
  /// non-terminal stamps may be 0 for non-served outcomes.
  void RecordFinished(const std::vector<Request>& requests,
                      const char* outcome, int64_t batch, int attempt,
                      double rate, int64_t cut_ns, int64_t formed_ns,
                      int64_t sched_ns, int64_t fwd_start_ns,
                      int64_t fwd_done_ns);
  /// Flight-records circuit-breaker open/close transitions (and trips the
  /// recorder on open). Call after any breaker OnSuccess/OnFailure.
  void NoteBreakerState();

  /// Blocks until a healthy replica is free; returns -1 when every replica
  /// is quarantined (the batch then fails instead of waiting forever).
  int AcquireReplica();
  void ReleaseReplica(int replica);

  ServerOptions opts_;
  std::vector<std::unique_ptr<Module>> replicas_;
  /// One activation arena per replica; every forward on replica i runs
  /// under ActivationScope(arenas_[i]).
  std::vector<ActivationArena> arenas_;
  /// rate -> packed activation bytes from PlanActivationArenas (replica 0).
  std::map<double, int64_t> planned_activation_bytes_;
  std::vector<std::vector<ParamRef>> replica_params_;
  std::vector<Tensor> golden_;    ///< golden-master weights (from Start()).
  std::unique_ptr<RequestQueue> queue_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<LatencyScheduler> scheduler_;
  std::unique_ptr<ReplicaHealth> health_;
  std::unique_ptr<CircuitBreaker> breaker_;
  DecisionLog decision_log_;

  double tick_seconds_ = 0.0;     ///< T/2, the batching interval.
  double calibrated_t_ = 0.0;
  double calibrated_t8_ = 0.0;    ///< int8 per-sample seconds (0 = off).
  double cold_start_t_ = 0.0;     ///< first-forward (pack-included) time.

  std::atomic<bool> started_{false};
  std::atomic<bool> stop_requested_{false};
  std::thread batcher_;
  std::mutex lifecycle_mu_;       ///< serializes Start/Stop.
  bool stopped_ = false;          ///< guarded by lifecycle_mu_.

  std::mutex batcher_mu_;
  std::condition_variable batcher_cv_;

  // Free-list of healthy, idle replica indices.
  std::mutex replica_mu_;
  std::condition_variable replica_cv_;
  std::vector<int> free_replicas_;

  // In-flight batch tracking: count for the shutdown drain, tickets for the
  // watchdog/retry machinery.
  std::mutex inflight_mu_;
  std::condition_variable inflight_cv_;
  int64_t in_flight_ = 0;
  std::mutex tickets_mu_;
  std::map<int64_t, BatchTicket> tickets_;
  int64_t next_ticket_ = 0;

  // Admission / execution counters. served/min_rate/max_batch_seconds are
  // written by worker threads; everything is atomic or stats_mu_-guarded.
  std::atomic<int64_t> submitted_{0};
  std::atomic<int64_t> accepted_{0};
  std::atomic<int64_t> served_{0};
  std::atomic<int64_t> shed_{0};
  std::atomic<int64_t> expired_{0};
  std::atomic<int64_t> rejected_{0};
  std::atomic<int64_t> failed_{0};
  std::atomic<int64_t> batches_{0};
  std::atomic<int64_t> batches_int8_{0};
  std::atomic<int64_t> ticks_{0};
  std::atomic<int64_t> retried_{0};
  std::atomic<int64_t> quarantined_total_{0};
  std::atomic<int64_t> repaired_total_{0};
  mutable std::mutex stats_mu_;
  double min_rate_ = 1.0;
  double max_batch_seconds_ = 0.0;
  std::atomic<float> output_guard_{0.0f};  ///< keeps forwards observable.

  /// Last breaker state flight-recorded, for open/close edge detection.
  std::atomic<bool> breaker_open_seen_{false};
  // Per-stage latency histograms (global registry), cached at construction
  // so the serve path never takes the registry lock. Order matches the
  // stage pipeline; "dispatch" is schedule-decision -> forward-start, which
  // makes the six stages sum exactly to "total".
  obs::Histogram* stage_queue_wait_ = nullptr;
  obs::Histogram* stage_batch_form_ = nullptr;
  obs::Histogram* stage_schedule_ = nullptr;
  obs::Histogram* stage_dispatch_ = nullptr;
  obs::Histogram* stage_forward_ = nullptr;
  obs::Histogram* stage_total_ = nullptr;
};

/// One tick of the closed-loop driver below.
struct ClosedLoopTick {
  int submitted = 0;
  int64_t queue_depth = 0;  ///< sampled at the end of the tick.
};

/// Drives a started server in real time: each tick submits `arrivals[i]`
/// requests (deadline `deadline_seconds`, <= 0 for none), sleeps one batch
/// interval, and samples the queue depth. Returns the per-tick trace.
std::vector<ClosedLoopTick> RunClosedLoop(SliceServer* server,
                                          const std::vector<int>& arrivals,
                                          double deadline_seconds = 0.0);

}  // namespace ms

#endif  // MODELSLICING_SERVING_SERVER_H_
