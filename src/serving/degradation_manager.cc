#include "src/serving/degradation_manager.h"

#include <algorithm>
#include <cmath>

#include "src/obs/metrics.h"

namespace ms {

Result<DegradationManager> DegradationManager::Make(
    const DegradationOptions& opts) {
  if (opts.max_queue < 1) {
    return Status::InvalidArgument("max_queue must be >= 1");
  }
  if (opts.max_wait_ticks < 0) {
    return Status::InvalidArgument("max_wait_ticks must be >= 0");
  }
  auto scheduler = LatencyScheduler::Make(opts.serving);
  MS_RETURN_NOT_OK(scheduler.status());
  return DegradationManager(opts, scheduler.MoveValueOrDie());
}

void DegradationManager::Reset() { queue_.clear(); }

int64_t DegradationManager::MaxBatchWithinBudget(const ServingConfig& config) {
  const double budget = config.latency_budget / 2.0;
  const double base = config.lattice.lower_bound();
  // The cheapest calibrated operating point bounds the ladder's last rung:
  // int8-at-base-rate when that cost column exists, else fp32-at-base.
  double t_min = config.full_sample_time;
  if (config.full_sample_time_int8 > 0.0) {
    t_min = std::min(t_min, config.full_sample_time_int8);
  }
  const double per_sample = base * base * t_min;
  if (per_sample <= 0.0) return 0;
  return static_cast<int64_t>(std::floor(budget / per_sample));
}

DegradationTick DegradationManager::Step(int arrivals) {
  DegradationTick tick;
  tick.arrivals = arrivals;

  // Age the queue; shed requests past their deadline.
  for (auto& age : queue_) ++age;
  while (!queue_.empty() && queue_.front() > opts_.max_wait_ticks) {
    queue_.pop_front();
    ++tick.shed;
  }

  // Enqueue new arrivals, shedding on overflow.
  for (int i = 0; i < arrivals; ++i) {
    if (static_cast<int64_t>(queue_.size()) >= opts_.max_queue) {
      ++tick.shed;
    } else {
      queue_.push_back(0);
    }
  }

  // Pick the largest batch that fits the tick budget at SOME trained rate:
  // prefer serving everything at a lower rate; if even the base rate can't
  // clear the queue, serve the base-rate-sized prefix and keep the rest.
  const int queue_len = static_cast<int>(queue_.size());
  const int max_at_base =
      static_cast<int>(MaxBatchWithinBudget(opts_.serving));
  const int batch = std::min(queue_len, std::max(0, max_at_base));

  if (batch > 0) {
    const TickDecision d = scheduler_.Schedule(batch);
    tick.processed = batch;
    tick.rate = d.rate;
    tick.precision = d.precision;
    tick.accuracy = d.accuracy;
    for (int i = 0; i < batch; ++i) queue_.pop_front();
  } else {
    tick.rate = opts_.serving.lattice.full_rate();
  }
  tick.backlog = static_cast<int>(queue_.size());

  // Per-tick degradation observability: shed/processed counters, the
  // chosen-rate distribution and queue depth after the tick.
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("ms_degradation_ticks_total")->Inc();
  registry.GetCounter("ms_degradation_arrivals_total")->Inc(tick.arrivals);
  registry.GetCounter("ms_degradation_processed_total")->Inc(tick.processed);
  registry.GetCounter("ms_degradation_shed_total")->Inc(tick.shed);
  registry.GetGauge("ms_degradation_backlog")->Set(tick.backlog);
  registry.GetHistogram("ms_degradation_queue_depth", obs::DepthBuckets())
      ->Observe(tick.backlog);
  if (tick.processed > 0) {
    registry.GetHistogram("ms_degradation_chosen_rate", obs::RateBuckets())
        ->Observe(tick.rate);
    if (tick.precision == Precision::kInt8) {
      registry.GetCounter("ms_degradation_int8_batches_total")->Inc();
    }
  }
  return tick;
}

DegradationSummary DegradationManager::Run(
    const std::vector<int>& arrivals, std::vector<DegradationTick>* ticks) {
  Reset();
  DegradationSummary summary;
  double rate_weighted = 0.0, acc_weighted = 0.0;
  std::vector<DegradationTick> local;
  local.reserve(arrivals.size());
  for (int n : arrivals) {
    const DegradationTick tick = Step(n);
    summary.total_arrivals += tick.arrivals;
    summary.total_processed += tick.processed;
    summary.total_shed += tick.shed;
    summary.max_backlog = std::max(summary.max_backlog, tick.backlog);
    rate_weighted += tick.rate * tick.processed;
    acc_weighted += tick.accuracy * tick.processed;
    local.push_back(tick);
  }
  // Drain the remaining backlog (count as shed for accounting symmetry).
  summary.total_shed += static_cast<int64_t>(queue_.size());
  if (summary.total_processed > 0) {
    summary.mean_rate =
        rate_weighted / static_cast<double>(summary.total_processed);
    summary.mean_accuracy =
        acc_weighted / static_cast<double>(summary.total_processed);
  }
  if (ticks != nullptr) *ticks = std::move(local);
  return summary;
}

}  // namespace ms
