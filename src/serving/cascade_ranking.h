// Cascade ranking (paper Sec. 4.2, simulated in Sec. 5.4 / Table 5): a
// pipeline of classifiers of increasing cost filters a candidate set; an
// item survives stage k only if every classifier up to k judged it
// consistently with its type. The key metric is aggregate recall — the
// fraction of items correctly kept through all stages — which rewards
// consistent predictions across stages, exactly what sliced subnets of one
// model provide and an ensemble of independent models does not.
#ifndef MODELSLICING_SERVING_CASCADE_RANKING_H_
#define MODELSLICING_SERVING_CASCADE_RANKING_H_

#include <cstdint>
#include <vector>

#include "src/util/status.h"

namespace ms {

struct CascadeStageInput {
  double rate = 1.0;                ///< model width used at this stage.
  std::vector<uint8_t> wrong;       ///< per-item wrong-prediction mask.
  int64_t params = 0;
  int64_t flops = 0;
};

struct CascadeStageResult {
  double rate = 1.0;
  double precision = 0.0;        ///< stage classifier accuracy.
  double aggregate_recall = 0.0; ///< items correct through stages [0, k].
  int64_t params = 0;
  int64_t flops = 0;
};

struct CascadeSummary {
  std::vector<CascadeStageResult> stages;
  double final_recall = 0.0;
  int64_t total_params = 0;     ///< storage: sum for an ensemble; max for
                                ///< sliced subnets of one model.
  int64_t total_flops = 0;
};

/// \param shares_parameters true when all stages are subnets of one sliced
/// model (storage = the largest stage; paper Sec. 5.4's "only 9.42M in one
/// model").
Result<CascadeSummary> SimulateCascade(
    const std::vector<CascadeStageInput>& stages, bool shares_parameters);

}  // namespace ms

#endif  // MODELSLICING_SERVING_CASCADE_RANKING_H_
