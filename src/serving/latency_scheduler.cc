#include "src/serving/latency_scheduler.h"

#include <cmath>

#include "src/obs/metrics.h"

namespace ms {

Result<LatencyScheduler> LatencyScheduler::Make(const ServingConfig& config) {
  // Reject NaN/inf explicitly: NaN compares false against every bound, so a
  // plain `<= 0` check would admit it and poison every downstream
  // processing-time computation.
  if (!std::isfinite(config.full_sample_time) ||
      config.full_sample_time <= 0.0) {
    return Status::InvalidArgument(
        "full_sample_time must be finite and positive");
  }
  if (!std::isfinite(config.full_sample_time_int8) ||
      config.full_sample_time_int8 < 0.0) {
    return Status::InvalidArgument(
        "full_sample_time_int8 must be finite and >= 0 (0 disables int8)");
  }
  if (!std::isfinite(config.latency_budget) || config.latency_budget <= 0.0) {
    return Status::InvalidArgument(
        "latency_budget must be finite and positive");
  }
  if (config.lattice.num_rates() == 0) {
    return Status::InvalidArgument("empty rate lattice");
  }
  if (!config.accuracy_per_rate.empty() &&
      config.accuracy_per_rate.size() != config.lattice.num_rates()) {
    return Status::InvalidArgument(
        "accuracy table must align with the rate lattice");
  }
  return LatencyScheduler(config);
}

double LatencyScheduler::AccuracyAt(double rate) const {
  if (config_.accuracy_per_rate.empty()) return 0.0;
  const auto& rates = config_.lattice.rates();
  for (size_t i = 0; i < rates.size(); ++i) {
    if (std::abs(rates[i] - rate) < 1e-9) {
      return config_.accuracy_per_rate[i];
    }
  }
  return 0.0;
}

double LatencyScheduler::SampleTime(Precision precision) const {
  return precision == Precision::kInt8 ? config_.full_sample_time_int8
                                       : config_.full_sample_time;
}

TickDecision LatencyScheduler::Schedule(int n) const {
  TickDecision d;
  d.num_samples = n;
  if (n == 0) {
    d.processing_time = 0.0;
    d.rate = config_.lattice.full_rate();
    d.accuracy = AccuracyAt(d.rate);
    return d;
  }
  const double budget = config_.latency_budget / 2.0;
  // Joint (rate, precision) rule: walk the trained rates descending; at
  // each rate try fp32 first, then int8 — so overload drops to int8 at
  // the current rate before it sheds a rate step. With int8 disabled this
  // reduces to picking the largest r with n * r^2 * t <= T/2 (Eq. 3).
  const auto& rates = config_.lattice.rates();
  for (size_t i = rates.size(); i-- > 0;) {
    const double r = rates[i];
    for (const Precision p : {Precision::kFp32, Precision::kInt8}) {
      if (p == Precision::kInt8 && !int8_enabled()) continue;
      const double cost =
          static_cast<double>(n) * r * r * SampleTime(p);
      if (cost <= budget + 1e-12) {
        d.rate = r;
        d.precision = p;
        d.processing_time = cost;
        d.slo_met = true;
        d.accuracy = AccuracyAt(r);
        return d;
      }
    }
  }
  // The base network is the floor: an extreme batch can still overrun.
  // Serve it at the cheapest operating point we have.
  d.rate = rates.front();
  d.precision = int8_enabled() ? Precision::kInt8 : Precision::kFp32;
  d.processing_time = static_cast<double>(n) * d.rate * d.rate *
                      SampleTime(d.precision);
  d.slo_met = false;
  d.accuracy = AccuracyAt(d.rate);
  return d;
}

TickDecision LatencyScheduler::ScheduleFixed(int n, double rate,
                                             Precision precision) const {
  TickDecision d;
  d.num_samples = n;
  d.rate = rate;
  d.precision = precision;
  d.processing_time =
      static_cast<double>(n) * rate * rate * SampleTime(precision);
  d.slo_met = n == 0 || d.processing_time <= config_.latency_budget / 2.0;
  d.accuracy = AccuracyAt(config_.lattice.NearestRate(rate));
  return d;
}

namespace {

ServingSummary Summarize(const std::vector<TickDecision>& decisions,
                         double tick_budget) {
  ServingSummary s;
  double rate_weighted = 0.0, acc_weighted = 0.0, busy = 0.0;
  for (const auto& d : decisions) {
    s.total_samples += d.num_samples;
    if (!d.slo_met) ++s.slo_violations;
    rate_weighted += d.rate * d.num_samples;
    acc_weighted += d.accuracy * d.num_samples;
    busy += std::min(d.processing_time, tick_budget);
  }
  if (s.total_samples > 0) {
    s.mean_rate = rate_weighted / static_cast<double>(s.total_samples);
    s.mean_accuracy = acc_weighted / static_cast<double>(s.total_samples);
  }
  if (!decisions.empty()) {
    s.utilization = busy / (tick_budget * decisions.size());
  }
  return s;
}

// Per-tick serving metrics (Sec. 4.1): tick/SLO counters, the chosen-rate
// distribution, and a running SLO-met ratio gauge.
void RecordServingMetrics(const std::vector<TickDecision>& decisions,
                          const ServingSummary& summary) {
  auto& registry = obs::MetricsRegistry::Global();
  auto* chosen_rate =
      registry.GetHistogram("ms_serving_chosen_rate", obs::RateBuckets());
  auto* proc_ms = registry.GetHistogram("ms_serving_processing_time",
                                        obs::LatencyBucketsMs());
  int64_t int8_batches = 0;
  for (const auto& d : decisions) {
    if (d.num_samples > 0) chosen_rate->Observe(d.rate);
    if (d.num_samples > 0 && d.precision == Precision::kInt8) ++int8_batches;
    proc_ms->Observe(d.processing_time);
  }
  registry.GetCounter("ms_serving_int8_batches_total")->Inc(int8_batches);
  registry.GetCounter("ms_serving_ticks_total")
      ->Inc(static_cast<int64_t>(decisions.size()));
  registry.GetCounter("ms_serving_slo_met_total")
      ->Inc(static_cast<int64_t>(decisions.size()) - summary.slo_violations);
  registry.GetCounter("ms_serving_slo_violations_total")
      ->Inc(summary.slo_violations);
  registry.GetCounter("ms_serving_samples_total")->Inc(summary.total_samples);
  if (!decisions.empty()) {
    registry.GetGauge("ms_serving_slo_met_ratio")
        ->Set(1.0 - static_cast<double>(summary.slo_violations) /
                        static_cast<double>(decisions.size()));
  }
  registry.GetGauge("ms_serving_utilization")->Set(summary.utilization);
}

}  // namespace

ServingSummary SimulateServing(const LatencyScheduler& scheduler,
                               const std::vector<int>& arrivals,
                               std::vector<TickDecision>* decisions) {
  std::vector<TickDecision> local;
  local.reserve(arrivals.size());
  for (int n : arrivals) local.push_back(scheduler.Schedule(n));
  ServingSummary summary =
      Summarize(local, scheduler.config().latency_budget / 2.0);
  RecordServingMetrics(local, summary);
  if (decisions != nullptr) *decisions = std::move(local);
  return summary;
}

ServingSummary SimulateFixedServing(const LatencyScheduler& scheduler,
                                    const std::vector<int>& arrivals,
                                    double rate,
                                    std::vector<TickDecision>* decisions) {
  std::vector<TickDecision> local;
  local.reserve(arrivals.size());
  for (int n : arrivals) local.push_back(scheduler.ScheduleFixed(n, rate));
  ServingSummary summary =
      Summarize(local, scheduler.config().latency_budget / 2.0);
  RecordServingMetrics(local, summary);
  if (decisions != nullptr) *decisions = std::move(local);
  return summary;
}

}  // namespace ms
