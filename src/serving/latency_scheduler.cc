#include "src/serving/latency_scheduler.h"

#include <cmath>

namespace ms {

Result<LatencyScheduler> LatencyScheduler::Make(const ServingConfig& config) {
  if (config.full_sample_time <= 0.0) {
    return Status::InvalidArgument("full_sample_time must be positive");
  }
  if (config.latency_budget <= 0.0) {
    return Status::InvalidArgument("latency_budget must be positive");
  }
  if (config.lattice.num_rates() == 0) {
    return Status::InvalidArgument("empty rate lattice");
  }
  if (!config.accuracy_per_rate.empty() &&
      config.accuracy_per_rate.size() != config.lattice.num_rates()) {
    return Status::InvalidArgument(
        "accuracy table must align with the rate lattice");
  }
  return LatencyScheduler(config);
}

double LatencyScheduler::AccuracyAt(double rate) const {
  if (config_.accuracy_per_rate.empty()) return 0.0;
  const auto& rates = config_.lattice.rates();
  for (size_t i = 0; i < rates.size(); ++i) {
    if (std::abs(rates[i] - rate) < 1e-9) {
      return config_.accuracy_per_rate[i];
    }
  }
  return 0.0;
}

TickDecision LatencyScheduler::Schedule(int n) const {
  TickDecision d;
  d.num_samples = n;
  if (n == 0) {
    d.processing_time = 0.0;
    d.rate = config_.lattice.full_rate();
    d.accuracy = AccuracyAt(d.rate);
    return d;
  }
  const double budget = config_.latency_budget / 2.0;
  // n * r^2 * t <= T/2  =>  r <= sqrt(T / (2 n t))  (Eq. 3 with Ct = T/2n).
  const double r_max = std::sqrt(
      budget / (static_cast<double>(n) * config_.full_sample_time));
  d.rate = config_.lattice.FloorRate(std::min(r_max, 1.0));
  d.processing_time = static_cast<double>(n) * d.rate * d.rate *
                      config_.full_sample_time;
  // The base network is the floor: an extreme batch can still overrun.
  d.slo_met = d.processing_time <= budget + 1e-12;
  d.accuracy = AccuracyAt(d.rate);
  return d;
}

TickDecision LatencyScheduler::ScheduleFixed(int n, double rate) const {
  TickDecision d;
  d.num_samples = n;
  d.rate = rate;
  d.processing_time = static_cast<double>(n) * rate * rate *
                      config_.full_sample_time;
  d.slo_met = n == 0 || d.processing_time <= config_.latency_budget / 2.0;
  d.accuracy = AccuracyAt(config_.lattice.NearestRate(rate));
  return d;
}

namespace {

ServingSummary Summarize(const std::vector<TickDecision>& decisions,
                         double tick_budget) {
  ServingSummary s;
  double rate_weighted = 0.0, acc_weighted = 0.0, busy = 0.0;
  for (const auto& d : decisions) {
    s.total_samples += d.num_samples;
    if (!d.slo_met) ++s.slo_violations;
    rate_weighted += d.rate * d.num_samples;
    acc_weighted += d.accuracy * d.num_samples;
    busy += std::min(d.processing_time, tick_budget);
  }
  if (s.total_samples > 0) {
    s.mean_rate = rate_weighted / static_cast<double>(s.total_samples);
    s.mean_accuracy = acc_weighted / static_cast<double>(s.total_samples);
  }
  if (!decisions.empty()) {
    s.utilization = busy / (tick_budget * decisions.size());
  }
  return s;
}

}  // namespace

ServingSummary SimulateServing(const LatencyScheduler& scheduler,
                               const std::vector<int>& arrivals,
                               std::vector<TickDecision>* decisions) {
  std::vector<TickDecision> local;
  local.reserve(arrivals.size());
  for (int n : arrivals) local.push_back(scheduler.Schedule(n));
  ServingSummary summary =
      Summarize(local, scheduler.config().latency_budget / 2.0);
  if (decisions != nullptr) *decisions = std::move(local);
  return summary;
}

ServingSummary SimulateFixedServing(const LatencyScheduler& scheduler,
                                    const std::vector<int>& arrivals,
                                    double rate,
                                    std::vector<TickDecision>* decisions) {
  std::vector<TickDecision> local;
  local.reserve(arrivals.size());
  for (int n : arrivals) local.push_back(scheduler.ScheduleFixed(n, rate));
  ServingSummary summary =
      Summarize(local, scheduler.config().latency_budget / 2.0);
  if (decisions != nullptr) *decisions = std::move(local);
  return summary;
}

}  // namespace ms
