#include "src/serving/latency_scheduler.h"

#include <cmath>

#include "src/obs/metrics.h"

namespace ms {

Result<LatencyScheduler> LatencyScheduler::Make(const ServingConfig& config) {
  // Reject NaN/inf explicitly: NaN compares false against every bound, so a
  // plain `<= 0` check would admit it and poison every downstream
  // processing-time computation.
  if (!std::isfinite(config.full_sample_time) ||
      config.full_sample_time <= 0.0) {
    return Status::InvalidArgument(
        "full_sample_time must be finite and positive");
  }
  if (!std::isfinite(config.latency_budget) || config.latency_budget <= 0.0) {
    return Status::InvalidArgument(
        "latency_budget must be finite and positive");
  }
  if (config.lattice.num_rates() == 0) {
    return Status::InvalidArgument("empty rate lattice");
  }
  if (!config.accuracy_per_rate.empty() &&
      config.accuracy_per_rate.size() != config.lattice.num_rates()) {
    return Status::InvalidArgument(
        "accuracy table must align with the rate lattice");
  }
  return LatencyScheduler(config);
}

double LatencyScheduler::AccuracyAt(double rate) const {
  if (config_.accuracy_per_rate.empty()) return 0.0;
  const auto& rates = config_.lattice.rates();
  for (size_t i = 0; i < rates.size(); ++i) {
    if (std::abs(rates[i] - rate) < 1e-9) {
      return config_.accuracy_per_rate[i];
    }
  }
  return 0.0;
}

TickDecision LatencyScheduler::Schedule(int n) const {
  TickDecision d;
  d.num_samples = n;
  if (n == 0) {
    d.processing_time = 0.0;
    d.rate = config_.lattice.full_rate();
    d.accuracy = AccuracyAt(d.rate);
    return d;
  }
  const double budget = config_.latency_budget / 2.0;
  // n * r^2 * t <= T/2  =>  r <= sqrt(T / (2 n t))  (Eq. 3 with Ct = T/2n).
  const double r_max = std::sqrt(
      budget / (static_cast<double>(n) * config_.full_sample_time));
  d.rate = config_.lattice.FloorRate(std::min(r_max, 1.0));
  d.processing_time = static_cast<double>(n) * d.rate * d.rate *
                      config_.full_sample_time;
  // The base network is the floor: an extreme batch can still overrun.
  d.slo_met = d.processing_time <= budget + 1e-12;
  d.accuracy = AccuracyAt(d.rate);
  return d;
}

TickDecision LatencyScheduler::ScheduleFixed(int n, double rate) const {
  TickDecision d;
  d.num_samples = n;
  d.rate = rate;
  d.processing_time = static_cast<double>(n) * rate * rate *
                      config_.full_sample_time;
  d.slo_met = n == 0 || d.processing_time <= config_.latency_budget / 2.0;
  d.accuracy = AccuracyAt(config_.lattice.NearestRate(rate));
  return d;
}

namespace {

ServingSummary Summarize(const std::vector<TickDecision>& decisions,
                         double tick_budget) {
  ServingSummary s;
  double rate_weighted = 0.0, acc_weighted = 0.0, busy = 0.0;
  for (const auto& d : decisions) {
    s.total_samples += d.num_samples;
    if (!d.slo_met) ++s.slo_violations;
    rate_weighted += d.rate * d.num_samples;
    acc_weighted += d.accuracy * d.num_samples;
    busy += std::min(d.processing_time, tick_budget);
  }
  if (s.total_samples > 0) {
    s.mean_rate = rate_weighted / static_cast<double>(s.total_samples);
    s.mean_accuracy = acc_weighted / static_cast<double>(s.total_samples);
  }
  if (!decisions.empty()) {
    s.utilization = busy / (tick_budget * decisions.size());
  }
  return s;
}

// Per-tick serving metrics (Sec. 4.1): tick/SLO counters, the chosen-rate
// distribution, and a running SLO-met ratio gauge.
void RecordServingMetrics(const std::vector<TickDecision>& decisions,
                          const ServingSummary& summary) {
  auto& registry = obs::MetricsRegistry::Global();
  auto* chosen_rate =
      registry.GetHistogram("ms_serving_chosen_rate", obs::RateBuckets());
  auto* proc_ms = registry.GetHistogram("ms_serving_processing_time",
                                        obs::LatencyBucketsMs());
  for (const auto& d : decisions) {
    if (d.num_samples > 0) chosen_rate->Observe(d.rate);
    proc_ms->Observe(d.processing_time);
  }
  registry.GetCounter("ms_serving_ticks_total")
      ->Inc(static_cast<int64_t>(decisions.size()));
  registry.GetCounter("ms_serving_slo_met_total")
      ->Inc(static_cast<int64_t>(decisions.size()) - summary.slo_violations);
  registry.GetCounter("ms_serving_slo_violations_total")
      ->Inc(summary.slo_violations);
  registry.GetCounter("ms_serving_samples_total")->Inc(summary.total_samples);
  if (!decisions.empty()) {
    registry.GetGauge("ms_serving_slo_met_ratio")
        ->Set(1.0 - static_cast<double>(summary.slo_violations) /
                        static_cast<double>(decisions.size()));
  }
  registry.GetGauge("ms_serving_utilization")->Set(summary.utilization);
}

}  // namespace

ServingSummary SimulateServing(const LatencyScheduler& scheduler,
                               const std::vector<int>& arrivals,
                               std::vector<TickDecision>* decisions) {
  std::vector<TickDecision> local;
  local.reserve(arrivals.size());
  for (int n : arrivals) local.push_back(scheduler.Schedule(n));
  ServingSummary summary =
      Summarize(local, scheduler.config().latency_budget / 2.0);
  RecordServingMetrics(local, summary);
  if (decisions != nullptr) *decisions = std::move(local);
  return summary;
}

ServingSummary SimulateFixedServing(const LatencyScheduler& scheduler,
                                    const std::vector<int>& arrivals,
                                    double rate,
                                    std::vector<TickDecision>* decisions) {
  std::vector<TickDecision> local;
  local.reserve(arrivals.size());
  for (int n : arrivals) local.push_back(scheduler.ScheduleFixed(n, rate));
  ServingSummary summary =
      Summarize(local, scheduler.config().latency_budget / 2.0);
  RecordServingMetrics(local, summary);
  if (decisions != nullptr) *decisions = std::move(local);
  return summary;
}

}  // namespace ms
