#include "src/serving/server.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <exception>
#include <limits>
#include <stdexcept>
#include <utility>

#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/request_trace.h"
#include "src/obs/trace.h"
#include "src/serving/degradation_manager.h"
#include "src/tensor/activation_planner.h"
#include "src/tensor/prepack.h"
#include "src/tensor/quant.h"
#include "src/tensor/tensor.h"
#include "src/util/fault.h"
#include "src/util/logging.h"
#include "src/util/stopwatch.h"

namespace ms {

namespace {

using SteadyClock = std::chrono::steady_clock;

std::chrono::nanoseconds SecondsToDuration(double seconds) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::duration<double>(seconds));
}

double DurationToSeconds(std::chrono::steady_clock::duration d) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(d).count();
}

// Milliseconds between two stage stamps; 0 when either stamp is missing
// (stage stats were off when the request passed that point).
double StageMsFromStamps(int64_t from_ns, int64_t to_ns) {
  if (from_ns <= 0 || to_ns <= 0 || to_ns < from_ns) return 0.0;
  return static_cast<double>(to_ns - from_ns) / 1e6;
}

}  // namespace

Result<std::unique_ptr<SliceServer>> SliceServer::Create(
    std::vector<std::unique_ptr<Module>> replicas, ServerOptions opts) {
  if (replicas.empty()) {
    return Status::InvalidArgument("at least one model replica is required");
  }
  for (const auto& r : replicas) {
    if (r == nullptr) {
      return Status::InvalidArgument("null model replica");
    }
  }
  if (opts.max_queue < 1) {
    return Status::InvalidArgument("max_queue must be >= 1");
  }
  if (opts.sample_shape.empty()) {
    return Status::InvalidArgument("sample_shape must be non-empty");
  }
  for (int64_t d : opts.sample_shape) {
    if (d < 1) return Status::InvalidArgument("sample_shape dims must be >= 1");
  }
  if (opts.calibrate &&
      (opts.calibration_batch < 1 || opts.calibration_repeats < 1)) {
    return Status::InvalidArgument("calibration batch/repeats must be >= 1");
  }
  if (opts.enable_int8 && !opts.calibrate &&
      !(opts.serving.full_sample_time_int8 > 0.0)) {
    return Status::InvalidArgument(
        "enable_int8 without calibration requires an injected "
        "full_sample_time_int8 > 0");
  }
  if (!(opts.health.watchdog_factor > 0.0) ||
      !std::isfinite(opts.health.watchdog_factor)) {
    return Status::InvalidArgument("watchdog_factor must be finite and > 0");
  }
  if (!(opts.health.watchdog_min_seconds >= 0.0) ||
      !std::isfinite(opts.health.watchdog_min_seconds)) {
    return Status::InvalidArgument("watchdog_min_seconds must be >= 0");
  }
  if (opts.health.breaker_failures < 1) {
    return Status::InvalidArgument("breaker_failures must be >= 1");
  }
  if (!(opts.health.breaker_cooloff_seconds >= 0.0) ||
      !std::isfinite(opts.health.breaker_cooloff_seconds)) {
    return Status::InvalidArgument("breaker_cooloff_seconds must be >= 0");
  }
  if (opts.health.probe_batch < 1) {
    return Status::InvalidArgument("probe_batch must be >= 1");
  }
  // Validate everything the scheduler will check, up front — except
  // full_sample_time, which calibration is allowed to supply later.
  ServingConfig probe = opts.serving;
  if (opts.calibrate) probe.full_sample_time = 1.0;
  auto probe_result = LatencyScheduler::Make(probe);
  MS_RETURN_NOT_OK(probe_result.status());
  return std::unique_ptr<SliceServer>(
      new SliceServer(std::move(replicas), std::move(opts)));
}

SliceServer::SliceServer(std::vector<std::unique_ptr<Module>> replicas,
                         ServerOptions opts)
    : opts_(std::move(opts)),
      replicas_(std::move(replicas)),
      decision_log_(static_cast<size_t>(
          opts_.decision_log_capacity > 0 ? opts_.decision_log_capacity : 1)) {
  queue_ = std::make_unique<RequestQueue>(opts_.max_queue);
  arenas_.resize(replicas_.size());
  for (int i = 0; i < static_cast<int>(replicas_.size()); ++i) {
    free_replicas_.push_back(i);
  }
  tick_seconds_ = opts_.serving.latency_budget / 2.0;
  // Cache the per-stage histograms once: the registry guarantees the
  // pointers stay valid and lock-free for its lifetime, so the serve path
  // never takes the registry map lock.
  auto& registry = obs::MetricsRegistry::Global();
  stage_queue_wait_ = registry.GetHistogram("ms_server_stage_queue_wait_ms",
                                            obs::LatencyBucketsMs());
  stage_batch_form_ = registry.GetHistogram("ms_server_stage_batch_form_ms",
                                            obs::LatencyBucketsMs());
  stage_schedule_ = registry.GetHistogram("ms_server_stage_schedule_ms",
                                          obs::LatencyBucketsMs());
  stage_dispatch_ = registry.GetHistogram("ms_server_stage_dispatch_ms",
                                          obs::LatencyBucketsMs());
  stage_forward_ = registry.GetHistogram("ms_server_stage_forward_ms",
                                         obs::LatencyBucketsMs());
  stage_total_ = registry.GetHistogram("ms_server_stage_total_ms",
                                       obs::LatencyBucketsMs());
}

SliceServer::~SliceServer() { Stop(); }

Status SliceServer::Calibrate() {
  MS_TRACE_SCOPE("server_calibrate");
  // Calibration runs on replica 0 inside its arena, so the timed forwards
  // exercise the same allocation path serving will.
  ActivationScope arena_scope(arenas_.front());
  Module* m = replicas_.front().get();
  m->SetSliceRate(opts_.serving.lattice.full_rate());
  std::vector<int64_t> shape = opts_.sample_shape;
  shape.insert(shape.begin(), opts_.calibration_batch);
  Tensor x(shape);
  // The warmup forward doubles as the cold-start measurement: it pays for
  // weight packing and first-touch allocations, everything the steady path
  // never sees again. Reported separately so capacity planning (Eq. 3 uses
  // the warm t) is not polluted by one-time costs.
  {
    Stopwatch cold;
    Tensor y = m->Forward(x, /*training=*/false);
    cold_start_t_ =
        cold.ElapsedSeconds() / static_cast<double>(opts_.calibration_batch);
    output_guard_.store(y.data()[0], std::memory_order_relaxed);
  }
  double best = 0.0;
  for (int i = 0; i < opts_.calibration_repeats; ++i) {
    Stopwatch sw;
    Tensor y = m->Forward(x, /*training=*/false);
    const double per_sample =
        sw.ElapsedSeconds() / static_cast<double>(opts_.calibration_batch);
    output_guard_.store(y.data()[0], std::memory_order_relaxed);
    // Minimum across repeats: a one-off scheduling stall would inflate t
    // and cripple capacity for the server's whole lifetime, so take the
    // best observed run as the machine's true speed.
    if (i == 0 || per_sample < best) best = per_sample;
  }
  if (!(best > 0.0)) {
    return Status::Internal("calibration measured a non-positive sample time");
  }
  calibrated_t_ = best;
  opts_.serving.full_sample_time = best;
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetGauge("ms_server_calibrated_sample_ms")->Set(best * 1e3);
  registry.GetGauge("ms_server_cold_start_ms")->Set(cold_start_t_ * 1e3);
  if (opts_.enable_int8) {
    // Second cost column: same protocol on the quantized path. The first
    // int8 forward pays for quantized packing; it is excluded just like
    // the fp32 cold forward.
    m->SetPrecision(Precision::kInt8);
    {
      Tensor y = m->Forward(x, /*training=*/false);
      output_guard_.store(y.data()[0], std::memory_order_relaxed);
    }
    double best8 = 0.0;
    for (int i = 0; i < opts_.calibration_repeats; ++i) {
      Stopwatch sw;
      Tensor y = m->Forward(x, /*training=*/false);
      const double per_sample =
          sw.ElapsedSeconds() / static_cast<double>(opts_.calibration_batch);
      output_guard_.store(y.data()[0], std::memory_order_relaxed);
      if (i == 0 || per_sample < best8) best8 = per_sample;
    }
    m->SetPrecision(Precision::kFp32);
    if (!(best8 > 0.0)) {
      return Status::Internal(
          "int8 calibration measured a non-positive sample time");
    }
    calibrated_t8_ = best8;
    opts_.serving.full_sample_time_int8 = best8;
    registry.GetGauge("ms_server_calibrated_sample_int8_ms")
        ->Set(best8 * 1e3);
  }
  return Status::OK();
}

void SliceServer::Prewarm() {
  MS_TRACE_SCOPE("server_prewarm");
  // One forward per (replica, trained rate). Each replica owns its layer
  // objects and therefore its packs, and a pack for the full weight serves
  // every rate prefix — but backward-transpose/per-gate packs only form on
  // first use at that replica, so touch every replica rather than just the
  // calibration one.
  std::vector<int64_t> shape = opts_.sample_shape;
  shape.insert(shape.begin(), 1);
  Tensor x(shape);
  for (size_t ri = 0; ri < replicas_.size(); ++ri) {
    Module* replica = replicas_[ri].get();
    ActivationScope arena_scope(arenas_[ri]);
    for (double rate : opts_.serving.lattice.rates()) {
      replica->SetSliceRate(rate);
      Tensor y = replica->Forward(x, /*training=*/false);
      output_guard_.store(y.data()[0], std::memory_order_relaxed);
      if (opts_.enable_int8) {
        // Quantized packs cover every rate prefix, but per-layer pack
        // objects only materialize on first int8 use at this replica —
        // touch them now so steady-state serving never quantizes.
        replica->SetPrecision(Precision::kInt8);
        Tensor y8 = replica->Forward(x, /*training=*/false);
        output_guard_.store(y8.data()[0], std::memory_order_relaxed);
        replica->SetPrecision(Precision::kFp32);
      }
    }
    replica->SetSliceRate(opts_.serving.lattice.full_rate());
  }
  ops::PublishPackMetrics();
  if (opts_.enable_int8) ops::PublishQuantMetrics();
}

void SliceServer::PlanActivationArenas() {
  MS_TRACE_SCOPE("server_plan_activations");
  // Record one forward per (replica, trained rate), pack the lifetimes and
  // Reserve() the packed footprint. Prewarm already materialized every
  // weight pack and lazy layer cache, so the recording sees only true
  // per-forward activation traffic.
  //
  // The plan batch must dominate every batch a tick can execute, or
  // steady-state serving grows slabs the moment a bigger batch lands.
  // TickOnce cuts at most MaxBatchWithinBudget requests, and the queue
  // never holds more than max_queue, so min(bound, max_queue) is the exact
  // worst case (floored at calibration_batch for unbudgeted configs where
  // the bound degenerates to 0).
  int64_t plan_batch =
      DegradationManager::MaxBatchWithinBudget(opts_.serving);
  if (opts_.max_queue > 0) {
    plan_batch = std::min(plan_batch, opts_.max_queue);
  }
  plan_batch =
      std::max<int64_t>(std::max<int64_t>(1, opts_.calibration_batch),
                        plan_batch);
  std::vector<int64_t> shape = opts_.sample_shape;
  shape.insert(shape.begin(), plan_batch);
  auto& registry = obs::MetricsRegistry::Global();
  for (size_t ri = 0; ri < replicas_.size(); ++ri) {
    Module* replica = replicas_[ri].get();
    for (double rate : opts_.serving.lattice.rates()) {
      replica->SetSliceRate(rate);
      ActivationPlan plan = PlanForward(&arenas_[ri], [&] {
        Tensor x(shape);
        Tensor y = replica->Forward(x, /*training=*/false);
        output_guard_.store(y.data()[0], std::memory_order_relaxed);
      });
      if (ri == 0) {
        planned_activation_bytes_[rate] = plan.packed_bytes;
        registry
            .GetGauge("ms_server_activation_plan_bytes_r" +
                      std::to_string(static_cast<int>(rate * 100.0 + 0.5)))
            ->Set(static_cast<double>(plan.packed_bytes));
      }
    }
    replica->SetSliceRate(opts_.serving.lattice.full_rate());
  }
  registry.GetGauge("ms_server_activation_peak_bytes")
      ->Set(static_cast<double>(arenas_.front().peak_live_bytes()));
}

Status SliceServer::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (started_.load()) {
    return Status::FailedPrecondition("server already started");
  }
  if (stopped_) {
    return Status::FailedPrecondition("server cannot be restarted");
  }
  if (!opts_.enable_int8) {
    // The precision axis is opt-in; a stray config value must not turn it
    // on behind the caller's back.
    opts_.serving.full_sample_time_int8 = 0.0;
  }
  if (opts_.calibrate) {
    MS_RETURN_NOT_OK(Calibrate());
  } else {
    calibrated_t_ = opts_.serving.full_sample_time;
    calibrated_t8_ = opts_.serving.full_sample_time_int8;
  }
  if (opts_.prewarm) {
    Prewarm();
    // Lifetime-plan each (replica, rate) and pre-size the arenas, so the
    // very first serving batch at any trained rate runs slab-alloc-free.
    PlanActivationArenas();
  }
  auto scheduler = LatencyScheduler::Make(opts_.serving);
  MS_RETURN_NOT_OK(scheduler.status());
  scheduler_ =
      std::make_unique<LatencyScheduler>(scheduler.MoveValueOrDie());
  if (DegradationManager::MaxBatchWithinBudget(opts_.serving) < 1) {
    return Status::FailedPrecondition(
        "latency budget below one base-rate sample: T/2 = " +
        std::to_string(tick_seconds_) + "s, measured t = " +
        std::to_string(opts_.serving.full_sample_time) + "s");
  }
  // Self-healing state. Replica 0's weights (already calibrated/prewarmed,
  // i.e. proven forward-able) become the golden master that repairs
  // poisoned replicas; Create() requires weight-identical replicas, so any
  // replica's snapshot would do.
  replica_params_.clear();
  replica_params_.reserve(replicas_.size());
  for (auto& r : replicas_) {
    std::vector<ParamRef> ps;
    r->CollectParams(&ps);
    replica_params_.push_back(std::move(ps));
  }
  golden_.clear();
  for (const ParamRef& p : replica_params_.front()) {
    golden_.push_back(*p.param);  // deep copy
  }
  health_ = std::make_unique<ReplicaHealth>(static_cast<int>(replicas_.size()));
  breaker_ = std::make_unique<CircuitBreaker>(
      opts_.health.breaker_failures, opts_.health.breaker_cooloff_seconds);
  obs::MetricsRegistry::Global().GetGauge("ms_server_quarantine_active")
      ->Set(0.0);
  pool_ = std::make_unique<ThreadPool>(static_cast<int>(replicas_.size()));
  started_.store(true);
  batcher_ = std::thread([this] { BatcherLoop(); });
  return Status::OK();
}

AdmitResult SliceServer::Submit(double deadline_seconds,
                                RequestDoneFn done) {
  auto& registry = obs::MetricsRegistry::Global();
  submitted_.fetch_add(1, std::memory_order_relaxed);
  registry.GetCounter("ms_server_submitted_total")->Inc();
  if (!started_.load(std::memory_order_acquire) ||
      stop_requested_.load(std::memory_order_acquire)) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    registry.GetCounter("ms_server_rejected_total")->Inc();
    return AdmitResult::kRejectedClosed;
  }
  // Last rung of the degradation ladder: while the failure breaker is open
  // (and its cooloff has not elapsed), don't even queue — the backlog would
  // only expire. Allow() returning true half-open lets probe traffic in.
  if (!breaker_->Allow()) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    registry.GetCounter("ms_server_rejected_total")->Inc();
    registry.GetCounter("ms_server_breaker_rejected_total")->Inc();
    return AdmitResult::kRejectedClosed;
  }
  const AdmitResult result = queue_->Submit(deadline_seconds,
                                            std::move(done));
  auto& flight = obs::FlightRecorder::Global();
  switch (result) {
    case AdmitResult::kAccepted:
      accepted_.fetch_add(1, std::memory_order_relaxed);
      registry.GetCounter("ms_server_accepted_total")->Inc();
      flight.Record(obs::FlightEventKind::kAdmission, "accepted");
      break;
    case AdmitResult::kShedQueueFull:
      shed_.fetch_add(1, std::memory_order_relaxed);
      registry.GetCounter("ms_server_shed_total")->Inc();
      flight.Record(obs::FlightEventKind::kAdmission, "shed_queue_full");
      break;
    case AdmitResult::kRejectedClosed:
      rejected_.fetch_add(1, std::memory_order_relaxed);
      registry.GetCounter("ms_server_rejected_total")->Inc();
      flight.Record(obs::FlightEventKind::kAdmission, "rejected_closed");
      break;
    case AdmitResult::kRejectedInvalid:
      rejected_.fetch_add(1, std::memory_order_relaxed);
      registry.GetCounter("ms_server_rejected_total")->Inc();
      registry.GetCounter("ms_server_rejected_invalid_total")->Inc();
      flight.Record(obs::FlightEventKind::kAdmission, "rejected_invalid");
      break;
  }
  return result;
}

int SliceServer::AcquireReplica() {
  std::unique_lock<std::mutex> lock(replica_mu_);
  // Wake on a freed replica OR on "no healthy replica exists" — with every
  // replica quarantined, waiting would deadlock the pool; the batch fails
  // instead and the circuit breaker takes over admission.
  replica_cv_.wait(lock, [this] {
    return !free_replicas_.empty() || health_->healthy_count() == 0;
  });
  if (free_replicas_.empty()) return -1;
  const int idx = free_replicas_.back();
  free_replicas_.pop_back();
  return idx;
}

void SliceServer::ReleaseReplica(int replica) {
  {
    std::lock_guard<std::mutex> lock(replica_mu_);
    free_replicas_.push_back(replica);
  }
  replica_cv_.notify_one();
}

int SliceServer::healthy_workers() const {
  return health_ ? health_->healthy_count()
                 : static_cast<int>(replicas_.size());
}

bool SliceServer::breaker_open() const {
  return breaker_ != nullptr && breaker_->open();
}

double SliceServer::WatchdogThreshold(int64_t n, double rate,
                                      Precision precision) const {
  // Expected wall time under the Eq. 3 cost model with the batch's own
  // cost column — an int8 batch judged against the fp32 t would get ~3x
  // the grace it deserves. Scaled by the grace factor; floored so
  // scheduling jitter on tiny batches can't trip the watchdog.
  const double t = precision == Precision::kInt8 &&
                           opts_.serving.full_sample_time_int8 > 0.0
                       ? opts_.serving.full_sample_time_int8
                       : opts_.serving.full_sample_time;
  const double expected = static_cast<double>(n) * rate * rate * t;
  return std::max(opts_.health.watchdog_min_seconds,
                  opts_.health.watchdog_factor * expected);
}

void SliceServer::FinishTicket() {
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    --in_flight_;
  }
  inflight_cv_.notify_all();
}

bool SliceServer::RepairReplica(int replica) {
  MS_TRACE_SCOPE("server_repair");
  auto& params = replica_params_[static_cast<size_t>(replica)];
  MS_CHECK(params.size() == golden_.size());
  for (size_t i = 0; i < params.size(); ++i) {
    *params[i].param = golden_[i];
  }
  // Restored weights invalidate any prepacked panels derived from them.
  ops::BumpWeightGeneration();
  // Probe: a small real forward at the full rate. Injection points live in
  // RunAttempt, not here, so the probe sees the replica's true health even
  // while faults stay armed.
  Module* m = replicas_[static_cast<size_t>(replica)].get();
  try {
    m->SetSliceRate(opts_.serving.lattice.full_rate());
    m->SetPrecision(Precision::kFp32);  // probe the canonical path
    ActivationScope arena_scope(arenas_[static_cast<size_t>(replica)]);
    std::vector<int64_t> shape = opts_.sample_shape;
    shape.insert(shape.begin(), opts_.health.probe_batch);
    Tensor x(shape);
    Tensor y = m->Forward(x, /*training=*/false);
    output_guard_.store(y.data()[0], std::memory_order_relaxed);
    return TensorIsFinite(y);
  } catch (const std::exception& e) {
    MS_LOG(Error) << "replica " << replica << " probe threw: " << e.what();
    return false;
  } catch (...) {
    MS_LOG(Error) << "replica " << replica << " probe threw";
    return false;
  }
}

void SliceServer::QuarantineAndRepair(int replica) {
  auto& registry = obs::MetricsRegistry::Global();
  if (!health_->Quarantine(replica)) return;  // already out
  quarantined_total_.fetch_add(1, std::memory_order_relaxed);
  registry.GetCounter("ms_server_quarantine_total")->Inc();
  registry.GetGauge("ms_server_quarantine_active")
      ->Set(health_->quarantined_count());
  // Waiters in AcquireReplica must re-evaluate "any healthy replica left?".
  replica_cv_.notify_all();
  MS_LOG(Warn) << "replica " << replica
               << " produced non-finite output; quarantined ("
               << health_->healthy_count() << " healthy left)";
  // A quarantine IS the black-box moment: record it, then dump the ring so
  // the events leading up to the poisoned output are preserved.
  auto& flight = obs::FlightRecorder::Global();
  flight.Record(obs::FlightEventKind::kQuarantine, "non-finite output",
                replica, health_->healthy_count());
  flight.Trip("quarantine");
  if (RepairReplica(replica)) {
    health_->Readmit(replica);
    repaired_total_.fetch_add(1, std::memory_order_relaxed);
    registry.GetCounter("ms_server_quarantine_repaired_total")->Inc();
    registry.GetGauge("ms_server_quarantine_active")
        ->Set(health_->quarantined_count());
    flight.Record(obs::FlightEventKind::kRepair, "golden restore ok",
                  replica);
    ReleaseReplica(replica);
    MS_LOG(Info) << "replica " << replica
                 << " repaired from golden snapshot and readmitted";
  } else {
    // Unrepairable: the replica never rejoins the free list. Serving
    // continues on whatever healthy replicas remain.
    MS_LOG(Error) << "replica " << replica
                  << " failed its post-repair probe; permanently out";
  }
}

void SliceServer::RunAttempt(int64_t ticket_id, int my_attempt) {
  MS_TRACE_SCOPE("server_batch");
  int64_t n = 0;
  double rate = 1.0;
  Precision precision = Precision::kFp32;
  {
    std::lock_guard<std::mutex> lock(tickets_mu_);
    auto it = tickets_.find(ticket_id);
    if (it == tickets_.end() || it->second.attempt != my_attempt) {
      return;  // settled or superseded before this attempt even started
    }
    n = static_cast<int64_t>(it->second.requests.size());
    rate = it->second.rate;
    precision = it->second.precision;
    // Stamped under the ticket lock so a superseding retry re-stamps it:
    // whichever attempt settles the batch owns the forward stamps.
    it->second.fwd_start_ns = obs::StageNowNanos();
  }
  const int replica = AcquireReplica();
  if (replica < 0) {
    // Every replica is quarantined; nothing can run this batch.
    FinalizeAttempt(ticket_id, my_attempt, /*success=*/false, 0.0,
                    /*fwd_done_ns=*/0);
    return;
  }
  bool success = false;
  bool poisoned = false;
  double secs = 0.0;
  int64_t fwd_done_ns = 0;
  try {
    auto& faults = fault::Registry::Global();
    if (faults.ShouldFire(fault::kWorkerStall)) {
      // A wedged worker: hold the replica past the watchdog threshold.
      std::this_thread::sleep_for(
          SecondsToDuration(faults.Param(fault::kWorkerStall, 0.25)));
    }
    if (faults.ShouldFire(fault::kForwardNan)) {
      // Weight-poison the replica (not just this output): corrupt the LAST
      // parameter so no downstream ReLU can mask the NaN, then invalidate
      // packs in case that parameter participates in a prepacked panel.
      auto& params = replica_params_[static_cast<size_t>(replica)];
      if (!params.empty() && params.back().param->size() > 0) {
        params.back().param->data()[0] =
            std::numeric_limits<float>::quiet_NaN();
        ops::BumpWeightGeneration();
      }
    }
    if (faults.ShouldFire(fault::kForwardThrow)) {
      throw std::runtime_error("injected fault: server.forward.throw");
    }
    Module* m = replicas_[static_cast<size_t>(replica)].get();
    m->SetSliceRate(rate);
    m->SetPrecision(precision);
    // The batch input, forward, and output all live on this replica's
    // arena: in steady state (planned at Start) the whole attempt performs
    // zero heap allocations for activations.
    ActivationScope arena_scope(arenas_[static_cast<size_t>(replica)]);
    std::vector<int64_t> shape = opts_.sample_shape;
    shape.insert(shape.begin(), n);
    Tensor x(shape);
    Stopwatch sw;
    Tensor y = m->Forward(x, /*training=*/false);
    secs = sw.ElapsedSeconds();
    fwd_done_ns = obs::StageNowNanos();
    output_guard_.store(y.data()[0], std::memory_order_relaxed);
    // Always-on output health check: one linear scan of the logits, cheap
    // next to the forward that produced them.
    if (TensorIsFinite(y)) {
      success = true;
    } else {
      poisoned = true;
    }
  } catch (const std::exception& e) {
    // A worker dying mid-batch must not leak the replica or the in-flight
    // slot — otherwise Stop() would wait forever (and the pool thread
    // would die taking the process with it).
    MS_LOG(Warn) << "batch attempt threw: " << e.what();
  } catch (...) {
    MS_LOG(Warn) << "batch attempt threw a non-std exception";
  }
  if (poisoned) {
    // Held, not freed: quarantine/repair owns the replica until it either
    // readmits (and releases) it or retires it for good.
    QuarantineAndRepair(replica);
  } else {
    ReleaseReplica(replica);
  }
  FinalizeAttempt(ticket_id, my_attempt, success, secs, fwd_done_ns);
}

void SliceServer::FinalizeAttempt(int64_t ticket_id, int my_attempt,
                                  bool success, double batch_seconds,
                                  int64_t fwd_done_ns) {
  auto& registry = obs::MetricsRegistry::Global();
  auto& flight = obs::FlightRecorder::Global();
  enum class Outcome { kDiscard, kServe, kRetry, kFail };
  Outcome outcome = Outcome::kDiscard;
  int64_t n = 0;
  int64_t newly_expired = 0;
  double rate = 1.0;
  Precision precision = Precision::kFp32;
  // Settled requests and their batch-shared stamps, moved out under the
  // lock so histograms/timelines are folded in without holding tickets_mu_.
  std::vector<Request> settled;
  std::vector<Request> expired_now;
  int64_t cut_ns = 0, formed_ns = 0, sched_ns = 0, fwd_start_ns = 0;
  {
    std::lock_guard<std::mutex> lock(tickets_mu_);
    auto it = tickets_.find(ticket_id);
    if (it == tickets_.end() || it->second.attempt != my_attempt) {
      // Superseded: the watchdog re-issued this batch and the other attempt
      // owns the accounting. Dropping the result here is what guarantees no
      // request is ever served (counted) twice.
      return;
    }
    BatchTicket& t = it->second;
    rate = t.rate;
    precision = t.precision;
    cut_ns = t.cut_ns;
    formed_ns = t.formed_ns;
    sched_ns = t.sched_ns;
    fwd_start_ns = t.fwd_start_ns;
    if (success) {
      outcome = Outcome::kServe;
      n = static_cast<int64_t>(t.requests.size());
      settled = std::move(t.requests);
      tickets_.erase(it);
    } else if (my_attempt == 0) {
      // The single retry. Requests whose deadline passed while attempt 0
      // was wedged are expired now, not served late.
      const auto now = Request::Clock::now();
      std::vector<Request> live;
      live.reserve(t.requests.size());
      for (const Request& r : t.requests) {
        if (r.ExpiredAt(now)) {
          ++newly_expired;
          expired_now.push_back(r);
        } else {
          live.push_back(r);
        }
      }
      if (live.empty()) {
        outcome = Outcome::kDiscard;  // nothing left worth re-running
        tickets_.erase(it);
        // Fall through: newly_expired / FinishTicket handled below.
      } else {
        outcome = Outcome::kRetry;
        t.requests = std::move(live);
        t.attempt = 1;
        t.start = SteadyClock::now();
        t.watchdog_seconds = WatchdogThreshold(
            static_cast<int64_t>(t.requests.size()), t.rate, t.precision);
      }
    } else {
      // Retry also failed: these requests are definitively lost.
      outcome = Outcome::kFail;
      n = static_cast<int64_t>(t.requests.size());
      settled = std::move(t.requests);
      tickets_.erase(it);
    }
  }
  if (newly_expired > 0) {
    expired_.fetch_add(newly_expired, std::memory_order_relaxed);
    registry.GetCounter("ms_server_expired_total")->Inc(newly_expired);
    RecordFinished(expired_now, "expired", ticket_id, my_attempt, rate,
                   cut_ns, formed_ns, sched_ns, fwd_start_ns,
                   /*fwd_done_ns=*/0);
  }
  switch (outcome) {
    case Outcome::kServe: {
      served_.fetch_add(n, std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        min_rate_ = std::min(min_rate_, rate);
        max_batch_seconds_ = std::max(max_batch_seconds_, batch_seconds);
      }
      registry.GetCounter("ms_server_served_total")->Inc(n);
      registry
          .GetHistogram("ms_server_batch_latency_ms", obs::LatencyBucketsMs())
          ->Observe(batch_seconds * 1e3);
      registry.GetHistogram("ms_server_chosen_rate", obs::RateBuckets())
          ->Observe(rate);
      // The slice rate the wall clock actually corresponds to under the r^2
      // model (n * r_achieved^2 * t == measured seconds) — with the batch's
      // own cost column, so an int8 batch isn't read as "faster than r=1":
      // compared with the chosen rate, this exposes calibration drift and
      // contention.
      const double t = precision == Precision::kInt8 &&
                               opts_.serving.full_sample_time_int8 > 0.0
                           ? opts_.serving.full_sample_time_int8
                           : opts_.serving.full_sample_time;
      if (t > 0.0 && n > 0) {
        registry.GetHistogram("ms_server_achieved_rate", obs::RateBuckets())
            ->Observe(
                std::sqrt(batch_seconds / (static_cast<double>(n) * t)));
      }
      registry.GetGauge("ms_server_budget_utilization")
          ->Set(tick_seconds_ > 0.0 ? batch_seconds / tick_seconds_ : 0.0);
      RecordFinished(settled, "served", ticket_id, my_attempt, rate, cut_ns,
                     formed_ns, sched_ns, fwd_start_ns, fwd_done_ns);
      decision_log_.Settle(ticket_id, /*success=*/true, batch_seconds);
      flight.Record(obs::FlightEventKind::kServe, "batch served", ticket_id,
                    n, rate, batch_seconds);
      breaker_->OnSuccess();
      registry.GetGauge("ms_server_breaker_open")->Set(0.0);
      NoteBreakerState();
      FinishTicket();
      break;
    }
    case Outcome::kRetry: {
      retried_.fetch_add(1, std::memory_order_relaxed);
      registry.GetCounter("ms_server_retries_total")->Inc();
      decision_log_.OnRetry(ticket_id);
      flight.Record(obs::FlightEventKind::kRetry, "attempt failed, retrying",
                    ticket_id, my_attempt);
      breaker_->OnFailure();
      registry.GetGauge("ms_server_breaker_open")
          ->Set(breaker_->open() ? 1.0 : 0.0);
      NoteBreakerState();
      // Same ticket, attempt 1; the in-flight slot carries over.
      pool_->Submit([this, ticket_id] { RunAttempt(ticket_id, 1); });
      break;
    }
    case Outcome::kFail: {
      failed_.fetch_add(n, std::memory_order_relaxed);
      registry.GetCounter("ms_server_failed_total")->Inc(n);
      RecordFinished(settled, "failed", ticket_id, my_attempt, rate, cut_ns,
                     formed_ns, sched_ns, fwd_start_ns, /*fwd_done_ns=*/0);
      decision_log_.Settle(ticket_id, /*success=*/false, -1.0);
      flight.Record(obs::FlightEventKind::kFail, "batch failed terminally",
                    ticket_id, n, rate);
      breaker_->OnFailure();
      registry.GetGauge("ms_server_breaker_open")
          ->Set(breaker_->open() ? 1.0 : 0.0);
      NoteBreakerState();
      FinishTicket();
      break;
    }
    case Outcome::kDiscard: {
      // Attempt-0 failure whose requests all expired: the ticket settled
      // as pure expiry above.
      decision_log_.Settle(ticket_id, /*success=*/false, -1.0);
      FinishTicket();
      break;
    }
  }
}

void SliceServer::RecordFinished(const std::vector<Request>& requests,
                                 const char* outcome, int64_t batch,
                                 int attempt, double rate, int64_t cut_ns,
                                 int64_t formed_ns, int64_t sched_ns,
                                 int64_t fwd_start_ns, int64_t fwd_done_ns) {
  if (requests.empty()) return;
  const bool served = fwd_done_ns > 0;
  // Completion hooks: every accepted request reaches exactly one terminal
  // RecordFinished (serve/fail from FinalizeAttempt, expiry at retry split,
  // cut or drain, shed at drain), so firing here is the exactly-once
  // completion contract Submit's `done` promises. Called outside every
  // server lock; retried batches pass only their settled requests.
  {
    RequestOutcome oc = RequestOutcome::kServed;
    if (std::strcmp(outcome, "expired") == 0) {
      oc = RequestOutcome::kExpired;
    } else if (std::strcmp(outcome, "shed") == 0) {
      oc = RequestOutcome::kShedStop;
    } else if (std::strcmp(outcome, "failed") == 0) {
      oc = RequestOutcome::kFailed;
    }
    const double done_rate = oc == RequestOutcome::kServed ? rate : 0.0;
    for (const Request& r : requests) {
      if (r.done && *r.done) (*r.done)(oc, done_rate);
    }
  }
  if (served && obs::StageStatsEnabled()) {
    // Batch-shared stages are observed once per request on purpose: every
    // histogram then counts requests, and the mean of stage sums equals the
    // mean total (the 5%-reconciliation contract in DESIGN.md §8).
    const double batch_form_ms = StageMsFromStamps(cut_ns, formed_ns);
    const double schedule_ms = StageMsFromStamps(formed_ns, sched_ns);
    const double dispatch_ms = StageMsFromStamps(sched_ns, fwd_start_ns);
    const double forward_ms = StageMsFromStamps(fwd_start_ns, fwd_done_ns);
    for (const Request& r : requests) {
      if (r.admit_ns <= 0) continue;  // submitted while stamping was off
      stage_queue_wait_->Observe(StageMsFromStamps(r.admit_ns, cut_ns));
      stage_batch_form_->Observe(batch_form_ms);
      stage_schedule_->Observe(schedule_ms);
      stage_dispatch_->Observe(dispatch_ms);
      stage_forward_->Observe(forward_ms);
      stage_total_->Observe(StageMsFromStamps(r.submit_ns, fwd_done_ns));
    }
  }
  auto& trace_log = obs::RequestTraceLog::Global();
  if (!trace_log.enabled()) return;
  const int64_t done_ns = obs::StageNowNanos();
  for (const Request& r : requests) {
    obs::RequestTimeline t;
    t.id = r.id;
    t.batch = batch;
    t.attempt = attempt;
    t.rate = rate;
    t.outcome = outcome;
    t.submit_ns = r.submit_ns;
    t.admit_ns = r.admit_ns;
    t.cut_ns = cut_ns;
    t.formed_ns = formed_ns;
    t.sched_ns = sched_ns;
    t.fwd_start_ns = fwd_start_ns;
    t.fwd_done_ns = fwd_done_ns;
    t.done_ns = done_ns;
    trace_log.Append(t);
  }
}

void SliceServer::NoteBreakerState() {
  const bool open = breaker_->open();
  const bool was =
      breaker_open_seen_.exchange(open, std::memory_order_relaxed);
  if (open == was) return;
  auto& flight = obs::FlightRecorder::Global();
  if (open) {
    flight.Record(obs::FlightEventKind::kBreakerOpen,
                  "circuit breaker opened");
    // Breaker opening means consecutive terminal failures — exactly the
    // situation the black box exists for.
    flight.Trip("breaker_open");
  } else {
    flight.Record(obs::FlightEventKind::kBreakerClose,
                  "circuit breaker closed");
  }
}

void SliceServer::RunWatchdog() {
  if (!opts_.health.watchdog) return;
  const auto now = SteadyClock::now();
  std::vector<int64_t> stalled;
  {
    std::lock_guard<std::mutex> lock(tickets_mu_);
    for (const auto& [id, t] : tickets_) {
      // Only attempt 0 is ever rescheduled; a stalled retry must be waited
      // out (a watchdog cannot kill a thread, only stop trusting it).
      if (t.attempt != 0) continue;
      if (DurationToSeconds(now - t.start) > t.watchdog_seconds) {
        stalled.push_back(id);
      }
    }
  }
  if (stalled.empty()) return;
  auto& registry = obs::MetricsRegistry::Global();
  auto& flight = obs::FlightRecorder::Global();
  for (int64_t id : stalled) {
    registry.GetCounter("ms_server_watchdog_stalls_total")->Inc();
    MS_LOG(Warn) << "watchdog: batch ticket " << id
                 << " exceeded its stall threshold; rescheduling once";
    flight.Record(obs::FlightEventKind::kWatchdog,
                  "stalled batch rescheduled", id);
    flight.Trip("watchdog");
    // Finalizing attempt 0 as a failure IS the reschedule: the ticket's
    // attempt number advances, so the wedged worker's eventual result is
    // discarded under the ticket lock. (If the batch finished between the
    // scan above and here, the ticket is gone and this is a no-op.)
    FinalizeAttempt(id, /*my_attempt=*/0, /*success=*/false,
                    /*batch_seconds=*/0.0, /*fwd_done_ns=*/0);
  }
}

void SliceServer::TickOnce() {
  ticks_.fetch_add(1, std::memory_order_relaxed);
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("ms_server_ticks_total")->Inc();

  RunWatchdog();

  // While the breaker is open (cooloff running), cut with max_n = 0: an
  // expiry-only sweep that keeps deadline accounting moving without
  // dispatching doomed forwards. Half-open lets one batch probe.
  const bool admit = breaker_->Allow();
  const int64_t max_n =
      admit ? DegradationManager::MaxBatchWithinBudget(opts_.serving) : 0;
  const int64_t cut_ns = obs::StageNowNanos();
  RequestBatch batch = queue_->CutBatch(max_n);
  const int64_t formed_ns = obs::StageNowNanos();
  if (batch.expired > 0) {
    expired_.fetch_add(batch.expired, std::memory_order_relaxed);
    registry.GetCounter("ms_server_expired_total")->Inc(batch.expired);
    RecordFinished(batch.expired_requests, "expired", /*batch=*/-1,
                   /*attempt=*/0, /*rate=*/0.0, cut_ns, /*formed_ns=*/0,
                   /*sched_ns=*/0, /*fwd_start_ns=*/0, /*fwd_done_ns=*/0);
  }
  const int64_t depth_after = queue_->depth();
  registry.GetGauge("ms_server_backlog")->Set(depth_after);
  registry.GetHistogram("ms_server_queue_depth", obs::DepthBuckets())
      ->Observe(depth_after);

  const int64_t n = static_cast<int64_t>(batch.requests.size());
  if (n == 0) return;
  const TickDecision decision =
      scheduler_->Schedule(static_cast<int>(n));
  const int64_t sched_ns = obs::StageNowNanos();
  batches_.fetch_add(1, std::memory_order_relaxed);
  registry.GetCounter("ms_server_batches_total")->Inc();
  if (decision.precision == Precision::kInt8) {
    batches_int8_.fetch_add(1, std::memory_order_relaxed);
    registry.GetCounter("ms_server_int8_batches_total")->Inc();
  }
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    ++in_flight_;
  }
  const double full_t = opts_.serving.full_sample_time;
  const double t8 = opts_.serving.full_sample_time_int8;
  const double predicted_seconds = decision.processing_time;
  int64_t id = 0;
  double headroom = std::numeric_limits<double>::quiet_NaN();
  {
    std::lock_guard<std::mutex> lock(tickets_mu_);
    id = next_ticket_++;
    BatchTicket t;
    t.requests = std::move(batch.requests);
    t.rate = decision.rate;
    t.precision = decision.precision;
    t.attempt = 0;
    t.start = SteadyClock::now();
    t.watchdog_seconds = WatchdogThreshold(n, decision.rate,
                                           decision.precision);
    t.cut_ns = cut_ns;
    t.formed_ns = formed_ns;
    t.sched_ns = sched_ns;
    // Tightest deadline headroom at decision time, for the decision log.
    for (const Request& r : t.requests) {
      if (r.deadline == Request::Clock::time_point::max()) continue;
      const double h = DurationToSeconds(r.deadline - t.start);
      if (!(h >= headroom)) headroom = h;  // NaN-safe min
    }
    tickets_.emplace(id, std::move(t));
  }
  {
    // Everything the joint rule weighed: every (lattice rate, precision)
    // operating point with its predicted cost, the chosen point, and how
    // much deadline slack existed when the choice was made.
    DecisionRecord rec;
    rec.batch = id;
    rec.ts_ns = sched_ns;
    rec.n = n;
    rec.chosen_rate = decision.rate;
    rec.chosen_precision = decision.precision;
    rec.predicted_seconds = predicted_seconds;
    rec.deadline_headroom_seconds = headroom;
    const std::vector<double>& rates = opts_.serving.lattice.rates();
    rec.candidates.reserve(rates.size() * (t8 > 0.0 ? 2 : 1));
    for (double r : rates) {
      rec.candidates.push_back(
          {r, Precision::kFp32, static_cast<double>(n) * r * r * full_t});
      if (t8 > 0.0) {
        rec.candidates.push_back(
            {r, Precision::kInt8, static_cast<double>(n) * r * r * t8});
      }
    }
    decision_log_.Begin(std::move(rec));
  }
  obs::FlightRecorder::Global().Record(
      obs::FlightEventKind::kDecision,
      decision.precision == Precision::kInt8 ? "batch scheduled int8"
                                             : "batch scheduled",
      id, n, decision.rate, predicted_seconds);
  pool_->Submit([this, id] { RunAttempt(id, 0); });
}

void SliceServer::BatcherLoop() {
  const auto tick = SecondsToDuration(tick_seconds_);
  auto next = SteadyClock::now() + tick;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(batcher_mu_);
      batcher_cv_.wait_until(lock, next, [this] {
        return stop_requested_.load(std::memory_order_acquire);
      });
    }
    if (stop_requested_.load(std::memory_order_acquire)) break;
    TickOnce();
    next += tick;
    // If a tick overran (slow machine, sanitizer), skip the missed
    // intervals instead of firing a burst of catch-up cuts.
    const auto now = SteadyClock::now();
    while (next <= now) next += tick;
  }

  // Graceful shutdown: admission is already rejecting (stop_requested_);
  // close the queue, account for everything still in it, and wait for
  // in-flight batches to settle. The watchdog keeps running during the
  // drain so a worker that wedged on the last batch still gets its retry
  // and cannot park Stop() forever.
  queue_->Close();
  RequestBatch rest = queue_->DrainAll();
  auto& registry = obs::MetricsRegistry::Global();
  if (rest.expired > 0) {
    expired_.fetch_add(rest.expired, std::memory_order_relaxed);
    registry.GetCounter("ms_server_expired_total")->Inc(rest.expired);
    RecordFinished(rest.expired_requests, "expired", /*batch=*/-1,
                   /*attempt=*/0, /*rate=*/0.0, /*cut_ns=*/0, /*formed_ns=*/0,
                   /*sched_ns=*/0, /*fwd_start_ns=*/0, /*fwd_done_ns=*/0);
  }
  const int64_t shed_on_stop = static_cast<int64_t>(rest.requests.size());
  if (shed_on_stop > 0) {
    shed_.fetch_add(shed_on_stop, std::memory_order_relaxed);
    registry.GetCounter("ms_server_shed_total")->Inc(shed_on_stop);
    RecordFinished(rest.requests, "shed", /*batch=*/-1, /*attempt=*/0,
                   /*rate=*/0.0, /*cut_ns=*/0, /*formed_ns=*/0,
                   /*sched_ns=*/0, /*fwd_start_ns=*/0, /*fwd_done_ns=*/0);
  }
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(inflight_mu_);
      if (inflight_cv_.wait_for(lock, std::chrono::milliseconds(10),
                                [this] { return in_flight_ == 0; })) {
        break;
      }
    }
    RunWatchdog();
  }
}

void SliceServer::Stop() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (stopped_) return;
  stopped_ = true;
  stop_requested_.store(true, std::memory_order_release);
  batcher_cv_.notify_all();
  if (batcher_.joinable()) batcher_.join();
  // Destroying the pool joins the workers after any queued tasks ran; the
  // batcher already waited for in-flight batches, so this is immediate.
  pool_.reset();
}

ServerStats SliceServer::stats() const {
  ServerStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.served = served_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.expired = expired_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.batches_int8 = batches_int8_.load(std::memory_order_relaxed);
  s.ticks = ticks_.load(std::memory_order_relaxed);
  s.retried_batches = retried_.load(std::memory_order_relaxed);
  s.quarantined = quarantined_total_.load(std::memory_order_relaxed);
  s.repaired = repaired_total_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(stats_mu_);
  s.min_rate = min_rate_;
  s.max_batch_seconds = max_batch_seconds_;
  return s;
}

std::vector<ClosedLoopTick> RunClosedLoop(SliceServer* server,
                                          const std::vector<int>& arrivals,
                                          double deadline_seconds) {
  std::vector<ClosedLoopTick> trace;
  trace.reserve(arrivals.size());
  const auto tick = SecondsToDuration(server->tick_seconds());
  auto next = SteadyClock::now() + tick;
  for (int n : arrivals) {
    ClosedLoopTick t;
    t.submitted = n;
    for (int i = 0; i < n; ++i) server->Submit(deadline_seconds);
    std::this_thread::sleep_until(next);
    next += tick;
    t.queue_depth = server->queue_depth();
    trace.push_back(t);
  }
  return trace;
}

}  // namespace ms
