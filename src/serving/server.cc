#include "src/serving/server.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/serving/degradation_manager.h"
#include "src/tensor/prepack.h"
#include "src/tensor/tensor.h"
#include "src/util/stopwatch.h"

namespace ms {

namespace {

using SteadyClock = std::chrono::steady_clock;

std::chrono::nanoseconds SecondsToDuration(double seconds) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::duration<double>(seconds));
}

}  // namespace

Result<std::unique_ptr<SliceServer>> SliceServer::Create(
    std::vector<std::unique_ptr<Module>> replicas, ServerOptions opts) {
  if (replicas.empty()) {
    return Status::InvalidArgument("at least one model replica is required");
  }
  for (const auto& r : replicas) {
    if (r == nullptr) {
      return Status::InvalidArgument("null model replica");
    }
  }
  if (opts.max_queue < 1) {
    return Status::InvalidArgument("max_queue must be >= 1");
  }
  if (opts.sample_shape.empty()) {
    return Status::InvalidArgument("sample_shape must be non-empty");
  }
  for (int64_t d : opts.sample_shape) {
    if (d < 1) return Status::InvalidArgument("sample_shape dims must be >= 1");
  }
  if (opts.calibrate &&
      (opts.calibration_batch < 1 || opts.calibration_repeats < 1)) {
    return Status::InvalidArgument("calibration batch/repeats must be >= 1");
  }
  // Validate everything the scheduler will check, up front — except
  // full_sample_time, which calibration is allowed to supply later.
  ServingConfig probe = opts.serving;
  if (opts.calibrate) probe.full_sample_time = 1.0;
  auto probe_result = LatencyScheduler::Make(probe);
  MS_RETURN_NOT_OK(probe_result.status());
  return std::unique_ptr<SliceServer>(
      new SliceServer(std::move(replicas), std::move(opts)));
}

SliceServer::SliceServer(std::vector<std::unique_ptr<Module>> replicas,
                         ServerOptions opts)
    : opts_(std::move(opts)), replicas_(std::move(replicas)) {
  queue_ = std::make_unique<RequestQueue>(opts_.max_queue);
  for (auto& r : replicas_) free_replicas_.push_back(r.get());
  tick_seconds_ = opts_.serving.latency_budget / 2.0;
}

SliceServer::~SliceServer() { Stop(); }

Status SliceServer::Calibrate() {
  MS_TRACE_SCOPE("server_calibrate");
  Module* m = replicas_.front().get();
  m->SetSliceRate(opts_.serving.lattice.full_rate());
  std::vector<int64_t> shape = opts_.sample_shape;
  shape.insert(shape.begin(), opts_.calibration_batch);
  Tensor x(shape);
  // The warmup forward doubles as the cold-start measurement: it pays for
  // weight packing and first-touch allocations, everything the steady path
  // never sees again. Reported separately so capacity planning (Eq. 3 uses
  // the warm t) is not polluted by one-time costs.
  {
    Stopwatch cold;
    Tensor y = m->Forward(x, /*training=*/false);
    cold_start_t_ =
        cold.ElapsedSeconds() / static_cast<double>(opts_.calibration_batch);
    output_guard_.store(y.data()[0], std::memory_order_relaxed);
  }
  double best = 0.0;
  for (int i = 0; i < opts_.calibration_repeats; ++i) {
    Stopwatch sw;
    Tensor y = m->Forward(x, /*training=*/false);
    const double per_sample =
        sw.ElapsedSeconds() / static_cast<double>(opts_.calibration_batch);
    output_guard_.store(y.data()[0], std::memory_order_relaxed);
    // Minimum across repeats: a one-off scheduling stall would inflate t
    // and cripple capacity for the server's whole lifetime, so take the
    // best observed run as the machine's true speed.
    if (i == 0 || per_sample < best) best = per_sample;
  }
  if (!(best > 0.0)) {
    return Status::Internal("calibration measured a non-positive sample time");
  }
  calibrated_t_ = best;
  opts_.serving.full_sample_time = best;
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetGauge("ms_server_calibrated_sample_ms")->Set(best * 1e3);
  registry.GetGauge("ms_server_cold_start_ms")->Set(cold_start_t_ * 1e3);
  return Status::OK();
}

void SliceServer::Prewarm() {
  MS_TRACE_SCOPE("server_prewarm");
  // One forward per (replica, trained rate). Each replica owns its layer
  // objects and therefore its packs, and a pack for the full weight serves
  // every rate prefix — but backward-transpose/per-gate packs only form on
  // first use at that replica, so touch every replica rather than just the
  // calibration one.
  std::vector<int64_t> shape = opts_.sample_shape;
  shape.insert(shape.begin(), 1);
  Tensor x(shape);
  for (auto& replica : replicas_) {
    for (double rate : opts_.serving.lattice.rates()) {
      replica->SetSliceRate(rate);
      Tensor y = replica->Forward(x, /*training=*/false);
      output_guard_.store(y.data()[0], std::memory_order_relaxed);
    }
    replica->SetSliceRate(opts_.serving.lattice.full_rate());
  }
  ops::PublishPackMetrics();
}

Status SliceServer::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (started_.load()) {
    return Status::FailedPrecondition("server already started");
  }
  if (stopped_) {
    return Status::FailedPrecondition("server cannot be restarted");
  }
  if (opts_.calibrate) {
    MS_RETURN_NOT_OK(Calibrate());
  } else {
    calibrated_t_ = opts_.serving.full_sample_time;
  }
  if (opts_.prewarm) Prewarm();
  auto scheduler = LatencyScheduler::Make(opts_.serving);
  MS_RETURN_NOT_OK(scheduler.status());
  scheduler_ =
      std::make_unique<LatencyScheduler>(scheduler.MoveValueOrDie());
  if (DegradationManager::MaxBatchWithinBudget(opts_.serving) < 1) {
    return Status::FailedPrecondition(
        "latency budget below one base-rate sample: T/2 = " +
        std::to_string(tick_seconds_) + "s, measured t = " +
        std::to_string(opts_.serving.full_sample_time) + "s");
  }
  pool_ = std::make_unique<ThreadPool>(static_cast<int>(replicas_.size()));
  started_.store(true);
  batcher_ = std::thread([this] { BatcherLoop(); });
  return Status::OK();
}

AdmitResult SliceServer::Submit(double deadline_seconds) {
  auto& registry = obs::MetricsRegistry::Global();
  submitted_.fetch_add(1, std::memory_order_relaxed);
  registry.GetCounter("ms_server_submitted_total")->Inc();
  if (!started_.load(std::memory_order_acquire) ||
      stop_requested_.load(std::memory_order_acquire)) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    registry.GetCounter("ms_server_rejected_total")->Inc();
    return AdmitResult::kRejectedClosed;
  }
  const AdmitResult result = queue_->Submit(deadline_seconds);
  switch (result) {
    case AdmitResult::kAccepted:
      accepted_.fetch_add(1, std::memory_order_relaxed);
      registry.GetCounter("ms_server_accepted_total")->Inc();
      break;
    case AdmitResult::kShedQueueFull:
      shed_.fetch_add(1, std::memory_order_relaxed);
      registry.GetCounter("ms_server_shed_total")->Inc();
      break;
    case AdmitResult::kRejectedClosed:
      rejected_.fetch_add(1, std::memory_order_relaxed);
      registry.GetCounter("ms_server_rejected_total")->Inc();
      break;
  }
  return result;
}

Module* SliceServer::AcquireReplica() {
  std::unique_lock<std::mutex> lock(replica_mu_);
  replica_cv_.wait(lock, [this] { return !free_replicas_.empty(); });
  Module* m = free_replicas_.back();
  free_replicas_.pop_back();
  return m;
}

void SliceServer::ReleaseReplica(Module* m) {
  {
    std::lock_guard<std::mutex> lock(replica_mu_);
    free_replicas_.push_back(m);
  }
  replica_cv_.notify_one();
}

void SliceServer::ExecuteBatch(int64_t n, double rate) {
  MS_TRACE_SCOPE("server_batch");
  Module* m = AcquireReplica();
  m->SetSliceRate(rate);
  std::vector<int64_t> shape = opts_.sample_shape;
  shape.insert(shape.begin(), n);
  Tensor x(shape);
  Stopwatch sw;
  Tensor y = m->Forward(x, /*training=*/false);
  const double secs = sw.ElapsedSeconds();
  ReleaseReplica(m);
  output_guard_.store(y.data()[0], std::memory_order_relaxed);

  served_.fetch_add(n, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    min_rate_ = std::min(min_rate_, rate);
    max_batch_seconds_ = std::max(max_batch_seconds_, secs);
  }
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("ms_server_served_total")->Inc(n);
  registry.GetHistogram("ms_server_batch_latency_ms", obs::LatencyBucketsMs())
      ->Observe(secs * 1e3);
  registry.GetHistogram("ms_server_chosen_rate", obs::RateBuckets())
      ->Observe(rate);
  // The slice rate the wall clock actually corresponds to under the r^2
  // model (n * r_achieved^2 * t == measured seconds): compared with the
  // chosen rate, this exposes calibration drift and contention.
  const double t = opts_.serving.full_sample_time;
  if (t > 0.0 && n > 0) {
    registry.GetHistogram("ms_server_achieved_rate", obs::RateBuckets())
        ->Observe(std::sqrt(secs / (static_cast<double>(n) * t)));
  }
  registry.GetGauge("ms_server_budget_utilization")
      ->Set(tick_seconds_ > 0.0 ? secs / tick_seconds_ : 0.0);

  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    --in_flight_;
  }
  inflight_cv_.notify_all();
}

void SliceServer::TickOnce() {
  ticks_.fetch_add(1, std::memory_order_relaxed);
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("ms_server_ticks_total")->Inc();

  const int64_t max_n =
      DegradationManager::MaxBatchWithinBudget(opts_.serving);
  RequestBatch batch = queue_->CutBatch(max_n);
  if (batch.expired > 0) {
    expired_.fetch_add(batch.expired, std::memory_order_relaxed);
    registry.GetCounter("ms_server_expired_total")->Inc(batch.expired);
  }
  const int64_t depth_after = queue_->depth();
  registry.GetGauge("ms_server_backlog")->Set(depth_after);
  registry.GetHistogram("ms_server_queue_depth", obs::DepthBuckets())
      ->Observe(depth_after);

  const int64_t n = static_cast<int64_t>(batch.requests.size());
  if (n == 0) return;
  const TickDecision decision =
      scheduler_->Schedule(static_cast<int>(n));
  batches_.fetch_add(1, std::memory_order_relaxed);
  registry.GetCounter("ms_server_batches_total")->Inc();
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    ++in_flight_;
  }
  pool_->Submit(
      [this, n, rate = decision.rate] { ExecuteBatch(n, rate); });
}

void SliceServer::BatcherLoop() {
  const auto tick = SecondsToDuration(tick_seconds_);
  auto next = SteadyClock::now() + tick;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(batcher_mu_);
      batcher_cv_.wait_until(lock, next, [this] {
        return stop_requested_.load(std::memory_order_acquire);
      });
    }
    if (stop_requested_.load(std::memory_order_acquire)) break;
    TickOnce();
    next += tick;
    // If a tick overran (slow machine, sanitizer), skip the missed
    // intervals instead of firing a burst of catch-up cuts.
    const auto now = SteadyClock::now();
    while (next <= now) next += tick;
  }

  // Graceful shutdown: admission is already rejecting (stop_requested_);
  // close the queue, account for everything still in it, and wait for
  // in-flight batches to finish their forwards.
  queue_->Close();
  RequestBatch rest = queue_->DrainAll();
  auto& registry = obs::MetricsRegistry::Global();
  if (rest.expired > 0) {
    expired_.fetch_add(rest.expired, std::memory_order_relaxed);
    registry.GetCounter("ms_server_expired_total")->Inc(rest.expired);
  }
  const int64_t shed_on_stop = static_cast<int64_t>(rest.requests.size());
  if (shed_on_stop > 0) {
    shed_.fetch_add(shed_on_stop, std::memory_order_relaxed);
    registry.GetCounter("ms_server_shed_total")->Inc(shed_on_stop);
  }
  std::unique_lock<std::mutex> lock(inflight_mu_);
  inflight_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void SliceServer::Stop() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (stopped_) return;
  stopped_ = true;
  stop_requested_.store(true, std::memory_order_release);
  batcher_cv_.notify_all();
  if (batcher_.joinable()) batcher_.join();
  // Destroying the pool joins the workers after any queued tasks ran; the
  // batcher already waited for in-flight batches, so this is immediate.
  pool_.reset();
}

ServerStats SliceServer::stats() const {
  ServerStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.served = served_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.expired = expired_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.ticks = ticks_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(stats_mu_);
  s.min_rate = min_rate_;
  s.max_batch_seconds = max_batch_seconds_;
  return s;
}

std::vector<ClosedLoopTick> RunClosedLoop(SliceServer* server,
                                          const std::vector<int>& arrivals,
                                          double deadline_seconds) {
  std::vector<ClosedLoopTick> trace;
  trace.reserve(arrivals.size());
  const auto tick = SecondsToDuration(server->tick_seconds());
  auto next = SteadyClock::now() + tick;
  for (int n : arrivals) {
    ClosedLoopTick t;
    t.submitted = n;
    for (int i = 0; i < n; ++i) server->Submit(deadline_seconds);
    std::this_thread::sleep_until(next);
    next += tick;
    t.queue_depth = server->queue_depth();
    trace.push_back(t);
  }
  return trace;
}

}  // namespace ms
