#include "src/serving/decision_log.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "src/obs/metrics.h"
#include "src/util/string_util.h"

namespace ms {


namespace {

// JSON number or null for values that may legitimately be absent.
std::string JsonMsOrNull(double seconds) {
  if (!std::isfinite(seconds)) return "null";
  return StrFormat("%.6f", seconds * 1e3);
}

}  // namespace

DecisionLog::DecisionLog(size_t capacity, double drift_alpha)
    : capacity_(capacity > 0 ? capacity : 1), drift_alpha_(drift_alpha) {}

void DecisionLog::Begin(DecisionRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  ++begun_;
  if (records_.size() >= capacity_) records_.pop_front();
  records_.push_back(std::move(record));
}

void DecisionLog::OnRetry(int64_t batch) {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t idx = IndexOf(batch);
  if (idx >= 0) ++records_[static_cast<size_t>(idx)].attempts;
}

void DecisionLog::Settle(int64_t batch, bool success,
                         double achieved_seconds) {
  double drift = std::numeric_limits<double>::quiet_NaN();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++settled_;
    const int64_t idx = IndexOf(batch);
    double predicted = -1.0;
    if (idx >= 0) {
      DecisionRecord& r = records_[static_cast<size_t>(idx)];
      r.achieved_seconds = achieved_seconds;
      r.outcome = success ? "served" : "failed";
      predicted = r.predicted_seconds;
      if (success && achieved_seconds > 0.0) {
        r.drift = std::abs(predicted - achieved_seconds) / achieved_seconds;
        drift = r.drift;
      }
    }
    if (std::isfinite(drift)) {
      drift_ewma_ = drift_seeded_
                        ? (1.0 - drift_alpha_) * drift_ewma_ +
                              drift_alpha_ * drift
                        : drift;
      drift_seeded_ = true;
    }
  }
  if (std::isfinite(drift)) {
    obs::MetricsRegistry::Global()
        .GetGauge("ms_sched_cost_model_drift")
        ->Set(drift_ewma());
  }
}

double DecisionLog::drift_ewma() const {
  std::lock_guard<std::mutex> lock(mu_);
  return drift_seeded_ ? drift_ewma_
                       : std::numeric_limits<double>::quiet_NaN();
}

int64_t DecisionLog::begun() const {
  std::lock_guard<std::mutex> lock(mu_);
  return begun_;
}

int64_t DecisionLog::settled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return settled_;
}

size_t DecisionLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

std::vector<DecisionRecord> DecisionLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<DecisionRecord>(records_.begin(), records_.end());
}

std::string DecisionLog::ToJsonl() const {
  const std::vector<DecisionRecord> records = Snapshot();
  std::ostringstream os;
  for (const DecisionRecord& r : records) {
    os << "{\"batch\":" << r.batch << ",\"ts_ns\":" << r.ts_ns
       << ",\"n\":" << r.n
       << ",\"chosen_rate\":" << StrFormat("%g", r.chosen_rate)
       << ",\"precision\":\"" << PrecisionName(r.chosen_precision) << "\""
       << ",\"predicted_ms\":" << StrFormat("%.6f", r.predicted_seconds * 1e3)
       << ",\"achieved_ms\":"
       << (r.achieved_seconds >= 0.0
               ? StrFormat("%.6f", r.achieved_seconds * 1e3)
               : std::string("null"))
       << ",\"drift\":"
       << (std::isfinite(r.drift) ? StrFormat("%.6f", r.drift)
                                  : std::string("null"))
       << ",\"deadline_headroom_ms\":"
       << JsonMsOrNull(r.deadline_headroom_seconds) << ",\"outcome\":\""
       << r.outcome << "\",\"attempts\":" << r.attempts << ",\"candidates\":[";
    for (size_t i = 0; i < r.candidates.size(); ++i) {
      if (i > 0) os << ",";
      os << "{\"rate\":" << StrFormat("%g", r.candidates[i].rate)
         << ",\"precision\":\"" << PrecisionName(r.candidates[i].precision)
         << "\",\"predicted_ms\":"
         << StrFormat("%.6f", r.candidates[i].predicted_seconds * 1e3) << "}";
    }
    os << "]}\n";
  }
  return os.str();
}

Status DecisionLog::WriteJsonl(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open for writing: " + path);
  }
  const std::string jsonl = ToJsonl();
  const size_t written = std::fwrite(jsonl.data(), 1, jsonl.size(), f);
  const int close_err = std::fclose(f);
  if (written != jsonl.size() || close_err != 0) {
    return Status::IoError("short write: " + path);
  }
  return Status::OK();
}

int64_t DecisionLog::IndexOf(int64_t batch) const {
  if (records_.empty()) return -1;
  const int64_t front = records_.front().batch;
  const int64_t idx = batch - front;
  if (idx < 0 || idx >= static_cast<int64_t>(records_.size())) return -1;
  // Batch ids are monotone but the ring may have gaps if tickets were cut
  // while the log was full; verify.
  if (records_[static_cast<size_t>(idx)].batch == batch) return idx;
  for (size_t i = 0; i < records_.size(); ++i) {
    if (records_[i].batch == batch) return static_cast<int64_t>(i);
  }
  return -1;
}


}  // namespace ms
