// Structured log of scheduler decisions (DESIGN.md §8).
//
// For every batch the LatencyScheduler cuts, SliceServer records what the
// cost model (Eq. 3: time(n, r) ≈ n · r² · t_cal) predicted for each
// candidate slice rate, which rate it chose and why, and — once the batch
// settles — what the forward actually cost. The per-batch records live in a
// bounded ring for JSONL export, and the predicted-vs-achieved error feeds
// an EWMA drift gauge (`ms_sched_cost_model_drift`) so dashboards can see
// the calibration constant go stale before deadlines start missing.
#ifndef MODELSLICING_SERVING_DECISION_LOG_H_
#define MODELSLICING_SERVING_DECISION_LOG_H_

#include <cstdint>
#include <deque>
#include <limits>
#include <mutex>
#include <string>
#include <vector>

#include "src/tensor/quant.h"
#include "src/util/status.h"

namespace ms {


/// One candidate (slice rate, precision) operating point the scheduler
/// weighed for a batch.
struct DecisionCandidate {
  double rate = 0.0;
  Precision precision = Precision::kFp32;
  double predicted_seconds = 0.0;  ///< Eq. 3 cost at this point.
};

/// One batch's scheduling decision, settled in place when the batch
/// finishes.
struct DecisionRecord {
  int64_t batch = -1;   ///< ticket id; monotonically increasing.
  int64_t ts_ns = 0;    ///< decision time on the trace clock.
  int64_t n = 0;        ///< batch size.
  double chosen_rate = 0.0;
  Precision chosen_precision = Precision::kFp32;
  double predicted_seconds = 0.0;  ///< Eq. 3 cost at the chosen rate.
  /// Forward wall time once settled; -1 while the batch is in flight or if
  /// it failed before completing a forward.
  double achieved_seconds = -1.0;
  /// Tightest request deadline minus decision time; NaN when no request in
  /// the batch carries a deadline.
  double deadline_headroom_seconds =
      std::numeric_limits<double>::quiet_NaN();
  /// |predicted - achieved| / achieved for this batch; NaN until settled.
  double drift = std::numeric_limits<double>::quiet_NaN();
  /// "pending" -> "served" | "failed".
  const char* outcome = "pending";
  int attempts = 1;
  std::vector<DecisionCandidate> candidates;
};

/// \brief Bounded ring of DecisionRecords keyed by monotonically increasing
/// batch ids, with an EWMA of the cost-model's relative error.
///
/// Thread-safe; decisions happen at batch frequency (not request
/// frequency), so a mutex is fine here.
class DecisionLog {
 public:
  explicit DecisionLog(size_t capacity = 4096, double drift_alpha = 0.1);
  DecisionLog(const DecisionLog&) = delete;
  DecisionLog& operator=(const DecisionLog&) = delete;

  /// Admits a new record (fields other than achieved/drift/outcome filled
  /// in by the caller). Evicts the oldest record when full.
  void Begin(DecisionRecord record);

  /// Bumps the attempt count for `batch` (watchdog or fault retry).
  void OnRetry(int64_t batch);

  /// Settles `batch`: stores achieved_seconds, computes this batch's drift,
  /// folds it into the EWMA and publishes `ms_sched_cost_model_drift`.
  /// `success` false marks the record "failed" (drift only updates on
  /// success with a positive achieved time). A batch already evicted from
  /// the ring still updates the EWMA on success.
  void Settle(int64_t batch, bool success, double achieved_seconds);

  /// EWMA of |predicted - achieved| / achieved across settled batches.
  double drift_ewma() const;
  int64_t begun() const;
  int64_t settled() const;
  size_t size() const;

  std::vector<DecisionRecord> Snapshot() const;

  /// One JSON object per line per decision, milliseconds for human eyes:
  ///   {"batch":..,"ts_ns":..,"n":..,"chosen_rate":..,"precision":"fp32",
  ///    "predicted_ms":..,"achieved_ms":..,"drift":..,
  ///    "deadline_headroom_ms":..|null,"outcome":"served","attempts":1,
  ///    "candidates":[{"rate":..,"precision":"int8","predicted_ms":..},..]}
  std::string ToJsonl() const;
  Status WriteJsonl(const std::string& path) const;

 private:
  /// Index of `batch` in records_, or -1. Caller holds mu_.
  int64_t IndexOf(int64_t batch) const;

  const size_t capacity_;
  const double drift_alpha_;
  mutable std::mutex mu_;
  std::deque<DecisionRecord> records_;
  int64_t begun_ = 0;
  int64_t settled_ = 0;
  double drift_ewma_ = 0.0;
  bool drift_seeded_ = false;
};


}  // namespace ms

#endif  // MODELSLICING_SERVING_DECISION_LOG_H_
