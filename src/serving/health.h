// Self-healing primitives for the serving engine (used by SliceServer):
//
//   - TensorIsFinite: the per-batch output health check. A replica whose
//     logits contain NaN/Inf is weight-poisoned (bit flip, torn update,
//     injected fault) and must not keep serving.
//   - ReplicaHealth: per-replica healthy/quarantined state machine.
//     quarantine -> repair (CopyParams / golden snapshot restore) ->
//     probe batch -> readmit; a replica whose probe still fails stays
//     quarantined and never rejoins the free list.
//   - CircuitBreaker: consecutive batch failures walk the degradation
//     ladder down to its last rung — admission rejects while the breaker
//     is open, instead of hot-looping doomed forwards. After a cooloff the
//     breaker half-opens: one batch is let through, and its outcome closes
//     or re-opens the breaker.
//
// All three are internally synchronized; worker threads, the batcher and
// Submit() callers may use them concurrently.
#ifndef MODELSLICING_SERVING_HEALTH_H_
#define MODELSLICING_SERVING_HEALTH_H_

#include <chrono>
#include <mutex>
#include <vector>

#include "src/tensor/tensor.h"

namespace ms {

/// Scans every element; false if any is NaN or +/-Inf.
bool TensorIsFinite(const Tensor& t);

/// Knobs for SliceServer's self-healing layer (see ServerOptions::health).
struct HealthOptions {
  /// Batcher-side watchdog: a batch older than
  /// max(watchdog_min_seconds, watchdog_factor * expected_batch_seconds)
  /// is assumed stalled and rescheduled once on a healthy worker.
  bool watchdog = true;
  double watchdog_factor = 8.0;
  double watchdog_min_seconds = 0.05;
  /// Consecutive failed batches before admission starts rejecting.
  int breaker_failures = 4;
  /// Seconds the breaker stays open before letting a probe batch through.
  double breaker_cooloff_seconds = 0.5;
  /// Samples in the post-repair probe forward.
  int64_t probe_batch = 2;
};

enum class ReplicaState { kHealthy = 0, kQuarantined = 1 };

/// \brief Tracks which replicas are serving-eligible.
class ReplicaHealth {
 public:
  explicit ReplicaHealth(int num_replicas)
      : states_(static_cast<size_t>(num_replicas), ReplicaState::kHealthy),
        healthy_(num_replicas) {}

  /// Marks `idx` quarantined. Returns false if it already was.
  bool Quarantine(int idx);

  /// Returns a repaired replica to service.
  void Readmit(int idx);

  ReplicaState state(int idx) const;
  int healthy_count() const;
  int quarantined_count() const;
  int num_replicas() const {
    return static_cast<int>(states_.size());
  }

 private:
  mutable std::mutex mu_;
  std::vector<ReplicaState> states_;
  int healthy_;
};

/// \brief Consecutive-failure circuit breaker with timed half-open probes.
class CircuitBreaker {
 public:
  CircuitBreaker(int failure_threshold, double cooloff_seconds)
      : threshold_(failure_threshold < 1 ? 1 : failure_threshold),
        cooloff_(cooloff_seconds < 0.0 ? 0.0 : cooloff_seconds) {}

  /// True when traffic may proceed (closed, or half-open after cooloff).
  bool Allow();

  void OnSuccess();
  void OnFailure();

  bool open();
  int consecutive_failures() const;

 private:
  using Clock = std::chrono::steady_clock;

  mutable std::mutex mu_;
  int threshold_;
  double cooloff_;
  int failures_ = 0;
  bool open_ = false;
  Clock::time_point open_until_{};
};

}  // namespace ms

#endif  // MODELSLICING_SERVING_HEALTH_H_
