#include "src/serving/cascade_ranking.h"

#include <algorithm>

namespace ms {

Result<CascadeSummary> SimulateCascade(
    const std::vector<CascadeStageInput>& stages, bool shares_parameters) {
  if (stages.empty()) {
    return Status::InvalidArgument("cascade needs at least one stage");
  }
  const size_t num_items = stages.front().wrong.size();
  if (num_items == 0) {
    return Status::InvalidArgument("empty item set");
  }
  for (const auto& s : stages) {
    if (s.wrong.size() != num_items) {
      return Status::InvalidArgument("stage masks disagree on item count");
    }
  }

  CascadeSummary summary;
  std::vector<uint8_t> surviving(num_items, 1);  // correct through stage k.
  for (const auto& stage : stages) {
    int64_t correct = 0;
    int64_t still_surviving = 0;
    for (size_t i = 0; i < num_items; ++i) {
      if (!stage.wrong[i]) ++correct;
      if (surviving[i] && !stage.wrong[i]) {
        ++still_surviving;
      } else {
        surviving[i] = 0;
      }
    }
    CascadeStageResult r;
    r.rate = stage.rate;
    r.precision = static_cast<double>(correct) /
                  static_cast<double>(num_items);
    r.aggregate_recall = static_cast<double>(still_surviving) /
                         static_cast<double>(num_items);
    r.params = stage.params;
    r.flops = stage.flops;
    summary.stages.push_back(r);
    summary.total_flops += stage.flops;
    if (shares_parameters) {
      summary.total_params = std::max(summary.total_params, stage.params);
    } else {
      summary.total_params += stage.params;
    }
  }
  summary.final_recall = summary.stages.back().aggregate_recall;
  return summary;
}

}  // namespace ms
