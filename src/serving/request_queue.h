// Request admission queue for the serving engine: a bounded MPMC buffer of
// deadline-carrying requests plus the batch-cut operation the T/2 batcher
// performs each tick. Expiry is evaluated lazily at cut time (a request that
// outlives its deadline while queued is dropped the next time the batcher
// looks at it), which keeps Submit wait-free apart from one mutex.
#ifndef MODELSLICING_SERVING_REQUEST_QUEUE_H_
#define MODELSLICING_SERVING_REQUEST_QUEUE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "src/util/bounded_queue.h"

namespace ms {

/// Terminal fate of an ACCEPTED request (admission-time sheds/rejects are
/// reported synchronously as the AdmitResult below and never reach a
/// terminal outcome). The numeric values are part of the wire protocol
/// (src/net/wire.h) — append, never renumber.
enum class RequestOutcome : uint8_t {
  kServed = 0,    ///< ran through a clean Forward at `rate`.
  kExpired = 1,   ///< deadline passed before execution.
  kShedStop = 2,  ///< still queued when the server drained at Stop().
  kFailed = 3,    ///< batch failed terminally (throw/poison after retry).
};

/// Per-request completion hook, invoked exactly once when an accepted
/// request settles. Runs on a batcher or worker thread — keep it quick and
/// never call back into the server from it. `rate` is the slice rate a
/// served request ran at (0 for the other outcomes).
using RequestDoneFn = std::function<void(RequestOutcome outcome, double rate)>;

/// \brief One queued inference request. Requests carry no payload: the
/// server materializes the batch input tensor itself (every sample has the
/// configured shape, and cost depends only on shape and slice rate).
struct Request {
  using Clock = std::chrono::steady_clock;

  int64_t id = 0;
  Clock::time_point enqueued;
  /// Absolute expiry; Clock::time_point::max() means "no deadline".
  Clock::time_point deadline = Clock::time_point::max();
  /// Lifecycle stamps on the trace clock (obs::StageNowNanos); 0 when stage
  /// stats are disabled. One clock read covers both: admission happens
  /// inside Submit, so submit == admit by construction and the per-stage
  /// sums reconcile exactly with the end-to-end latency.
  int64_t submit_ns = 0;
  int64_t admit_ns = 0;
  /// Completion hook (null for fire-and-forget submits). shared_ptr so the
  /// Request stays cheaply copyable through batch cut / retry splitting.
  std::shared_ptr<RequestDoneFn> done;

  bool ExpiredAt(Clock::time_point now) const { return deadline < now; }
};

/// Outcome of admission control, in shedding-ladder order: accept if there
/// is room, shed (kShedQueueFull) under overload, reject once stopping or
/// while the failure circuit breaker is open. kRejectedInvalid is the
/// malformed-request case: a non-finite deadline is rejected outright
/// (mirroring LatencyScheduler::Make's rule for config times) rather than
/// silently treated as "no deadline".
enum class AdmitResult {
  kAccepted = 0,
  kShedQueueFull,
  kRejectedClosed,
  kRejectedInvalid,
};

/// What one batch cut produced: up to `max_n` live requests (oldest first)
/// plus the deadline-expired requests dropped along the way (`expired` ==
/// `expired_requests.size()`; the requests themselves are kept so their
/// timelines can be traced).
struct RequestBatch {
  std::vector<Request> requests;
  std::vector<Request> expired_requests;
  int64_t expired = 0;
};

class RequestQueue {
 public:
  explicit RequestQueue(int64_t capacity)
      : queue_(static_cast<size_t>(capacity)) {}

  /// Thread-safe admission. `deadline_seconds` <= 0 means no deadline;
  /// NaN/Inf deadlines return kRejectedInvalid. The `queue.submit.reject`
  /// fault point, when armed, makes this return kRejectedClosed. `done`,
  /// when set, is attached to the request and fires exactly once at its
  /// terminal outcome — but only for kAccepted admissions; for every other
  /// AdmitResult the synchronous return value is the whole story.
  AdmitResult Submit(double deadline_seconds, RequestDoneFn done = nullptr);

  /// Pops up to `max_n` live requests; expired requests encountered are
  /// dropped and counted. Requests beyond `max_n` stay queued (FIFO).
  /// Single-consumer: only the batcher thread may call this.
  RequestBatch CutBatch(int64_t max_n);

  /// Empties the queue, classifying every remaining request as live (to be
  /// shed by the caller) or expired. Used by shutdown.
  RequestBatch DrainAll();

  /// Stops admission; subsequent Submit returns kRejectedClosed.
  void Close() { queue_.Close(); }

  int64_t depth() const { return static_cast<int64_t>(queue_.size()); }
  int64_t capacity() const { return static_cast<int64_t>(queue_.capacity()); }

 private:
  BoundedQueue<Request> queue_;
  std::atomic<int64_t> next_id_{0};
};

}  // namespace ms

#endif  // MODELSLICING_SERVING_REQUEST_QUEUE_H_
