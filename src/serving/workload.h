// Query-workload generation for the dynamic-serving experiments (paper
// Sec. 1 and 4.1): Poisson arrivals whose rate follows a daily off-peak /
// peak profile plus unpredictable spikes — the paper cites peak workloads
// 10x the average with extreme cases beyond that.
#ifndef MODELSLICING_SERVING_WORKLOAD_H_
#define MODELSLICING_SERVING_WORKLOAD_H_

#include <vector>

#include "src/util/rng.h"
#include "src/util/status.h"

namespace ms {

struct WorkloadOptions {
  int64_t num_ticks = 200;        ///< scheduling intervals (each T/2 long).
  double base_arrivals = 4.0;     ///< mean arrivals per tick, off-peak.
  double peak_multiplier = 10.0;  ///< sustained peak vs off-peak.
  double peak_begin = 0.4;        ///< peak window as a fraction of horizon.
  double peak_end = 0.7;
  double spike_probability = 0.02;  ///< chance of an extreme tick.
  double spike_multiplier = 16.0;   ///< the paper's 16x volatility case.
  uint64_t seed = 21;
};

/// Arrivals per tick.
Result<std::vector<int>> GenerateWorkload(const WorkloadOptions& opts);

}  // namespace ms

#endif  // MODELSLICING_SERVING_WORKLOAD_H_
