#include "src/serving/workload.h"

namespace ms {

Result<std::vector<int>> GenerateWorkload(const WorkloadOptions& opts) {
  if (opts.num_ticks < 1) {
    return Status::InvalidArgument("need at least one tick");
  }
  if (opts.base_arrivals <= 0.0 || opts.peak_multiplier < 1.0 ||
      opts.spike_multiplier < 1.0) {
    return Status::InvalidArgument("bad workload intensities");
  }
  if (opts.peak_begin < 0.0 || opts.peak_end > 1.0 ||
      opts.peak_begin > opts.peak_end) {
    return Status::InvalidArgument("bad peak window");
  }
  if (opts.spike_probability < 0.0 || opts.spike_probability > 1.0) {
    return Status::InvalidArgument("bad spike probability");
  }
  Rng rng(opts.seed);
  std::vector<int> arrivals(static_cast<size_t>(opts.num_ticks));
  for (int64_t t = 0; t < opts.num_ticks; ++t) {
    const double phase =
        static_cast<double>(t) / static_cast<double>(opts.num_ticks);
    double lambda = opts.base_arrivals;
    if (phase >= opts.peak_begin && phase < opts.peak_end) {
      lambda *= opts.peak_multiplier;
    }
    if (rng.Bernoulli(opts.spike_probability)) {
      lambda = opts.base_arrivals * opts.spike_multiplier;
    }
    arrivals[static_cast<size_t>(t)] = rng.Poisson(lambda);
  }
  return arrivals;
}

}  // namespace ms
