// Fine-grained system degradation via model slicing (paper Sec. 4.1).
//
// Queries are batched every T/2; the remaining T/2 is the processing budget.
// For a batch of n samples and a full-model per-sample time t, the scheduler
// picks the largest trained slice rate r with n * r^2 * t <= T/2 (Eq. 3), so
// every sample meets the latency SLO and no capacity is wasted.
#ifndef MODELSLICING_SERVING_LATENCY_SCHEDULER_H_
#define MODELSLICING_SERVING_LATENCY_SCHEDULER_H_

#include <vector>

#include "src/core/slice_config.h"
#include "src/util/status.h"

namespace ms {

struct ServingConfig {
  double full_sample_time = 1.0;  ///< t: per-sample time of the full model.
  double latency_budget = 16.0;   ///< T: end-to-end latency SLO.
  SliceConfig lattice;            ///< trained slice rates.
  /// Expected accuracy per lattice rate (ascending, aligned with
  /// lattice.rates()); lets the simulator report accuracy delivered.
  std::vector<double> accuracy_per_rate;
};

struct TickDecision {
  int num_samples = 0;
  double rate = 1.0;             ///< slice rate chosen for the batch.
  double processing_time = 0.0;  ///< n * r^2 * t.
  bool slo_met = true;           ///< processing fits within T/2.
  double accuracy = 0.0;         ///< expected accuracy at `rate`.
};

class LatencyScheduler {
 public:
  static Result<LatencyScheduler> Make(const ServingConfig& config);

  /// Decide the slice rate for a batch of `n` samples (Sec. 4.1 rule).
  TickDecision Schedule(int n) const;

  /// Fixed-rate strawman used by the comparison benches: always run `rate`
  /// and report whether the batch met the budget.
  TickDecision ScheduleFixed(int n, double rate) const;

  const ServingConfig& config() const { return config_; }

 private:
  explicit LatencyScheduler(ServingConfig config)
      : config_(std::move(config)) {}

  double AccuracyAt(double rate) const;

  ServingConfig config_;
};

struct ServingSummary {
  int64_t total_samples = 0;
  int64_t slo_violations = 0;     ///< ticks whose batch overran T/2.
  double mean_rate = 0.0;         ///< sample-weighted mean slice rate.
  double mean_accuracy = 0.0;     ///< sample-weighted expected accuracy.
  double utilization = 0.0;       ///< busy time / total budget.
};

/// Runs the scheduler over a workload trace (arrivals per tick).
ServingSummary SimulateServing(const LatencyScheduler& scheduler,
                               const std::vector<int>& arrivals,
                               std::vector<TickDecision>* decisions = nullptr);

/// Same trace, fixed rate for every batch.
ServingSummary SimulateFixedServing(
    const LatencyScheduler& scheduler, const std::vector<int>& arrivals,
    double rate, std::vector<TickDecision>* decisions = nullptr);

}  // namespace ms

#endif  // MODELSLICING_SERVING_LATENCY_SCHEDULER_H_
