// Fine-grained system degradation via model slicing (paper Sec. 4.1).
//
// Queries are batched every T/2; the remaining T/2 is the processing budget.
// For a batch of n samples and a full-model per-sample time t, the scheduler
// picks the largest trained slice rate r with n * r^2 * t <= T/2 (Eq. 3), so
// every sample meets the latency SLO and no capacity is wasted.
#ifndef MODELSLICING_SERVING_LATENCY_SCHEDULER_H_
#define MODELSLICING_SERVING_LATENCY_SCHEDULER_H_

#include <vector>

#include "src/core/slice_config.h"
#include "src/tensor/quant.h"
#include "src/util/status.h"

namespace ms {

struct ServingConfig {
  double full_sample_time = 1.0;  ///< t: per-sample time of the full model.
  /// t for the int8 path (second cost column). 0 disables the precision
  /// axis: scheduling degenerates to the fp32-only Eq. 3 rule.
  double full_sample_time_int8 = 0.0;
  double latency_budget = 16.0;   ///< T: end-to-end latency SLO.
  SliceConfig lattice;            ///< trained slice rates.
  /// Expected accuracy per lattice rate (ascending, aligned with
  /// lattice.rates()); lets the simulator report accuracy delivered.
  std::vector<double> accuracy_per_rate;
};

struct TickDecision {
  int num_samples = 0;
  double rate = 1.0;             ///< slice rate chosen for the batch.
  Precision precision = Precision::kFp32;  ///< precision chosen.
  double processing_time = 0.0;  ///< n * r^2 * t(precision).
  bool slo_met = true;           ///< processing fits within T/2.
  double accuracy = 0.0;         ///< expected accuracy at `rate`.
};

class LatencyScheduler {
 public:
  static Result<LatencyScheduler> Make(const ServingConfig& config);

  /// Decide the (slice rate, precision) for a batch of `n` samples. The
  /// Sec. 4.1 rule extended with the precision axis: rates are walked
  /// descending and at each rate fp32 is preferred over int8, so the
  /// ladder degrades "drop to int8 at the current rate" BEFORE "drop
  /// rate" — accuracy loss from quantization is far smaller than from
  /// slicing down a step. With full_sample_time_int8 == 0 this is exactly
  /// the historical fp32-only Eq. 3 rule.
  TickDecision Schedule(int n) const;

  /// Fixed-operating-point strawman used by the comparison benches:
  /// always run (rate, precision) and report whether the batch fit.
  TickDecision ScheduleFixed(int n, double rate,
                             Precision precision = Precision::kFp32) const;

  /// The calibrated per-sample cost of `precision` (the cost column).
  double SampleTime(Precision precision) const;

  /// True when an int8 cost column is calibrated (the axis is usable).
  bool int8_enabled() const { return config_.full_sample_time_int8 > 0.0; }

  const ServingConfig& config() const { return config_; }

 private:
  explicit LatencyScheduler(ServingConfig config)
      : config_(std::move(config)) {}

  double AccuracyAt(double rate) const;

  ServingConfig config_;
};

struct ServingSummary {
  int64_t total_samples = 0;
  int64_t slo_violations = 0;     ///< ticks whose batch overran T/2.
  double mean_rate = 0.0;         ///< sample-weighted mean slice rate.
  double mean_accuracy = 0.0;     ///< sample-weighted expected accuracy.
  double utilization = 0.0;       ///< busy time / total budget.
};

/// Runs the scheduler over a workload trace (arrivals per tick).
ServingSummary SimulateServing(const LatencyScheduler& scheduler,
                               const std::vector<int>& arrivals,
                               std::vector<TickDecision>* decisions = nullptr);

/// Same trace, fixed rate for every batch.
ServingSummary SimulateFixedServing(
    const LatencyScheduler& scheduler, const std::vector<int>& arrivals,
    double rate, std::vector<TickDecision>* decisions = nullptr);

}  // namespace ms

#endif  // MODELSLICING_SERVING_LATENCY_SCHEDULER_H_
