#include "src/serving/request_queue.h"

#include <cmath>

#include "src/obs/request_trace.h"
#include "src/util/fault.h"

namespace ms {

AdmitResult RequestQueue::Submit(double deadline_seconds,
                                 RequestDoneFn done) {
  // A NaN deadline would slip past the `> 0.0` check below and masquerade
  // as "no deadline"; reject non-finite deadlines outright instead (+Inf is
  // equally malformed — callers meaning "no deadline" pass 0).
  if (!std::isfinite(deadline_seconds)) return AdmitResult::kRejectedInvalid;
  if (fault::Registry::Global().ShouldFire(fault::kQueueReject)) {
    return AdmitResult::kRejectedClosed;
  }
  Request r;
  r.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  r.enqueued = Request::Clock::now();
  // One trace-clock read serves both stamps (0 when stage stats are off):
  // admission control is synchronous inside this call, so the submit and
  // queue-admit stages coincide by construction.
  r.submit_ns = obs::StageNowNanos();
  r.admit_ns = r.submit_ns;
  if (done) {
    r.done = std::make_shared<RequestDoneFn>(std::move(done));
  }
  if (deadline_seconds > 0.0) {
    r.deadline = r.enqueued + std::chrono::duration_cast<
                                  Request::Clock::duration>(
                                  std::chrono::duration<double>(
                                      deadline_seconds));
  }
  switch (queue_.TryPush(r)) {
    case PushStatus::kOk:
      return AdmitResult::kAccepted;
    case PushStatus::kFull:
      return AdmitResult::kShedQueueFull;
    case PushStatus::kClosed:
      break;
  }
  return AdmitResult::kRejectedClosed;
}

RequestBatch RequestQueue::CutBatch(int64_t max_n) {
  std::vector<Request> all;
  queue_.PopAll(&all);
  RequestBatch out;
  std::vector<Request> leftover;
  const auto now = Request::Clock::now();
  for (auto& r : all) {
    if (r.ExpiredAt(now)) {
      ++out.expired;
      out.expired_requests.push_back(r);
    } else if (static_cast<int64_t>(out.requests.size()) < max_n) {
      out.requests.push_back(r);
    } else {
      leftover.push_back(r);
    }
  }
  // Untaken live requests keep their queue position (and deadlines) for the
  // next tick; concurrent Submits landed behind them, preserving FIFO.
  if (!leftover.empty()) queue_.PushFront(std::move(leftover));
  return out;
}

RequestBatch RequestQueue::DrainAll() {
  std::vector<Request> all;
  queue_.PopAll(&all);
  RequestBatch out;
  const auto now = Request::Clock::now();
  for (auto& r : all) {
    if (r.ExpiredAt(now)) {
      ++out.expired;
      out.expired_requests.push_back(r);
    } else {
      out.requests.push_back(r);
    }
  }
  return out;
}

}  // namespace ms
