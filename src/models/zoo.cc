#include "src/models/zoo.h"

namespace ms {

Result<ZooEntry> GetZooModel(const std::string& name) {
  ZooEntry entry;
  entry.name = name;
  CnnConfig& c = entry.config;
  c.in_channels = 3;
  c.num_classes = 10;
  c.slice_groups = 8;
  c.norm = NormKind::kGroup;
  c.seed = 17;

  if (name == "vgg13") {
    // Plain conv3x3 stack of medium width (Table 3 left, VGG-13).
    c.base_width = 16;
    c.stages = 3;
    c.blocks_per_stage = 2;
    entry.is_resnet = false;
    entry.dataset = "cifar";
    return entry;
  }
  if (name == "resnet164") {
    // Deep and narrow bottleneck ResNet: 16-channel first stage in the
    // paper; narrow enough that small slice rates starve the base subnet.
    c.base_width = 4;  // bottleneck expansion 4 -> stage widths 16/32/64.
    c.stages = 3;
    c.blocks_per_stage = 3;
    entry.is_resnet = true;
    entry.dataset = "cifar";
    return entry;
  }
  if (name == "resnet56-2") {
    // The widened variant (widening factor 2) that slices gracefully.
    c.base_width = 4;
    c.width_mult = 2.0;
    c.stages = 3;
    c.blocks_per_stage = 2;
    entry.is_resnet = true;
    entry.dataset = "cifar";
    return entry;
  }
  if (name == "vgg16") {
    c.base_width = 24;
    c.stages = 3;
    c.blocks_per_stage = 3;
    entry.is_resnet = false;
    entry.dataset = "imagenet";
    return entry;
  }
  if (name == "resnet50") {
    c.base_width = 8;
    c.stages = 3;
    c.blocks_per_stage = 3;
    entry.is_resnet = true;
    entry.dataset = "imagenet";
    return entry;
  }
  return Status::NotFound("unknown zoo model: " + name);
}

std::vector<std::string> ListZooModels() {
  return {"vgg13", "resnet164", "resnet56-2", "vgg16", "resnet50"};
}

SyntheticImageOptions ZooDatasetOptions(const std::string& dataset) {
  SyntheticImageOptions opts;
  if (dataset == "imagenet") {
    opts.num_classes = 10;
    opts.modes_per_class = 4;
    opts.height = 16;
    opts.width = 16;
    opts.train_size = 3000;
    opts.test_size = 600;
    opts.noise = 0.7;
    opts.seed = 23;
  } else {
    // "cifar" analogue.
    opts.num_classes = 10;
    opts.modes_per_class = 3;
    opts.height = 12;
    opts.width = 12;
    opts.train_size = 2000;
    opts.test_size = 500;
    opts.noise = 0.6;
    opts.seed = 7;
  }
  return opts;
}

}  // namespace ms
