#include "src/models/nnlm.h"

namespace ms {

Result<std::unique_ptr<Nnlm>> Nnlm::Make(const NnlmConfig& config) {
  if (config.vocab_size < 2) {
    return Status::InvalidArgument("vocab too small");
  }
  if (config.embed_dim < 1 || config.hidden < 1 || config.num_layers < 1) {
    return Status::InvalidArgument("bad NNLM dimensions");
  }
  if (config.dropout < 0.0 || config.dropout >= 1.0) {
    return Status::InvalidArgument("dropout must be in [0, 1)");
  }
  return std::unique_ptr<Nnlm>(new Nnlm(config));
}

Nnlm::Nnlm(const NnlmConfig& config) : config_(config), rng_(config.seed) {
  EmbeddingOptions eopts;
  eopts.vocab_size = config_.vocab_size;
  eopts.dim = config_.embed_dim;
  eopts.slice_out = false;  // Input layer stays full (Sec. 5.1.1).
  embed_ = std::make_unique<Embedding>(eopts, &rng_);

  int64_t in = config_.embed_dim;
  for (int64_t l = 0; l < config_.num_layers; ++l) {
    LstmOptions lopts;
    lopts.input_size = in;
    lopts.hidden_size = config_.hidden;
    lopts.groups = config_.slice_groups;
    lopts.slice_in = l > 0;  // First LSTM reads the unsliced embedding.
    lopts.slice_out = true;
    lopts.rescale = config_.rescale;
    lstms_.push_back(std::make_unique<Lstm>(lopts, &rng_,
                                            "lstm" + std::to_string(l)));
    in = config_.hidden;
  }
  // Dropout after the embedding and after each LSTM layer (Sec. 5.2.2).
  for (int64_t l = 0; l <= config_.num_layers; ++l) {
    dropouts_.push_back(std::make_unique<Dropout>(config_.dropout, &rng_));
  }

  DenseOptions dopts;
  dopts.in_features = config_.hidden;
  dopts.out_features = config_.vocab_size;
  dopts.groups = config_.slice_groups;
  dopts.slice_in = true;
  dopts.slice_out = false;  // Softmax over the full vocabulary.
  dopts.bias = true;
  dopts.rescale = config_.rescale;  // "with output rescaling" (Sec. 5.2.2).
  output_ = std::make_unique<Dense>(dopts, &rng_, "decoder");
}

void Nnlm::SetSliceRate(double r) {
  embed_->SetSliceRate(r);
  for (auto& l : lstms_) l->SetSliceRate(r);
  output_->SetSliceRate(r);
}

Tensor Nnlm::Forward(const std::vector<int>& tokens, int64_t t_steps,
                     int64_t batch, bool training) {
  MS_CHECK(static_cast<int64_t>(tokens.size()) == t_steps * batch);
  cached_t_ = t_steps;
  cached_b_ = batch;

  Tensor h = embed_->Forward(tokens);  // (T*B, E)
  h = dropouts_[0]->Forward(h, training);
  h.Reshape({t_steps, batch, h.dim(1)});
  for (size_t l = 0; l < lstms_.size(); ++l) {
    h = lstms_[l]->Forward(h, training);
    const auto shape = h.shape();
    h.Reshape({t_steps * batch, shape[2]});
    h = dropouts_[l + 1]->Forward(h, training);
    if (l + 1 < lstms_.size()) h.Reshape({t_steps, batch, shape[2]});
  }
  return output_->Forward(h, training);  // (T*B, vocab)
}

void Nnlm::Backward(const Tensor& grad_logits) {
  Tensor g = output_->Backward(grad_logits);  // (T*B, H)
  for (size_t l = lstms_.size(); l-- > 0;) {
    g = dropouts_[l + 1]->Backward(g);
    g.Reshape({cached_t_, cached_b_, g.size() / (cached_t_ * cached_b_)});
    g = lstms_[l]->Backward(g);
    g.Reshape({cached_t_ * cached_b_, g.dim(2)});
  }
  g = dropouts_[0]->Backward(g);
  embed_->Backward(g);
}

std::vector<ParamRef> Nnlm::Params() {
  std::vector<ParamRef> params;
  embed_->CollectParams(&params);
  for (auto& l : lstms_) l->CollectParams(&params);
  output_->CollectParams(&params);
  return params;
}

int64_t Nnlm::FlopsPerToken() const {
  int64_t flops = 0;
  for (const auto& l : lstms_) flops += l->FlopsPerSample();
  flops += output_->FlopsPerSample();
  return flops;
}

int64_t Nnlm::ActiveParams() const {
  int64_t p = 0;
  for (const auto& l : lstms_) p += l->ActiveParams();
  p += output_->ActiveParams();
  return p;
}

}  // namespace ms
