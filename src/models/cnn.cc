#include "src/models/cnn.h"

#include <cmath>

#include "src/nn/activations.h"
#include "src/nn/fusion.h"
#include "src/nn/conv2d.h"
#include "src/nn/dense.h"
#include "src/nn/depthwise_conv.h"
#include "src/nn/grouped_conv.h"
#include "src/nn/norm.h"
#include "src/nn/pooling.h"
#include "src/nn/residual.h"

namespace ms {

int64_t ScaledWidth(int64_t width, double mult) {
  const int64_t w = static_cast<int64_t>(std::llround(width * mult));
  return std::max<int64_t>(1, w);
}

std::unique_ptr<Module> MakeNorm(NormKind kind, int64_t channels,
                                 int64_t groups,
                                 const std::vector<double>& multi_bn_rates,
                                 const std::string& name) {
  NormOptions nopts;
  nopts.channels = channels;
  nopts.groups = groups;
  nopts.slice = true;
  switch (kind) {
    case NormKind::kGroup:
      return std::make_unique<GroupNorm>(nopts, name);
    case NormKind::kBatch:
      return std::make_unique<BatchNorm>(nopts, name);
    case NormKind::kMultiBatch: {
      MS_CHECK_MSG(!multi_bn_rates.empty(),
                   "MultiBatchNorm requires candidate rates");
      return std::make_unique<MultiBatchNorm>(nopts, multi_bn_rates, name);
    }
  }
  MS_CHECK(false);
  return nullptr;
}

namespace {

Status ValidateConfig(const CnnConfig& c) {
  if (c.in_channels < 1 || c.num_classes < 2) {
    return Status::InvalidArgument("bad channel/class counts");
  }
  if (c.base_width < 1 || c.width_mult <= 0.0) {
    return Status::InvalidArgument("bad width");
  }
  if (c.stages < 1 || c.blocks_per_stage < 1) {
    return Status::InvalidArgument("bad depth");
  }
  if (c.slice_groups < 1) {
    return Status::InvalidArgument("bad slice group count");
  }
  if (c.norm == NormKind::kMultiBatch && c.multi_bn_rates.empty()) {
    return Status::InvalidArgument("multi-BN needs candidate rates");
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<Sequential>> MakeVggSmall(const CnnConfig& config) {
  MS_RETURN_NOT_OK(ValidateConfig(config));
  Rng rng(config.seed);
  auto net = std::make_unique<Sequential>("vgg_small");

  int64_t in_ch = config.in_channels;
  for (int64_t s = 0; s < config.stages; ++s) {
    const int64_t width =
        ScaledWidth(config.base_width << s, config.width_mult);
    for (int64_t b = 0; b < config.blocks_per_stage; ++b) {
      Conv2dOptions copts;
      copts.in_channels = in_ch;
      copts.out_channels = width;
      copts.kernel = 3;
      copts.stride = 1;
      copts.pad = 1;
      copts.groups = config.slice_groups;
      // The network input (image channels) is never sliced.
      copts.slice_in = !(s == 0 && b == 0);
      copts.slice_out = true;
      const std::string tag =
          "s" + std::to_string(s) + "b" + std::to_string(b);
      net->Emplace<Conv2d>(copts, &rng, "conv_" + tag);
      net->Add(MakeNorm(config.norm, width, config.slice_groups,
                        config.multi_bn_rates, "norm_" + tag));
      net->Emplace<ReLU>();
      in_ch = width;
    }
    if (s + 1 < config.stages) net->Emplace<MaxPool2d>(2, 2);
  }
  net->Emplace<GlobalAvgPool>();
  DenseOptions dopts;
  dopts.in_features = in_ch;
  dopts.out_features = config.num_classes;
  dopts.groups = config.slice_groups;
  dopts.slice_in = true;
  dopts.slice_out = false;  // Output layer stays full (Sec. 5.1.1).
  dopts.bias = true;
  // No rescaling: the GAP input comes from normalized features, so its
  // scale is already stable across slice rates (the paper applies output
  // rescaling to NNLM dense layers only, Sec. 5.2.2).
  dopts.rescale = false;
  net->Emplace<Dense>(dopts, &rng, "classifier");
  FuseActivations(net.get());
  return net;
}

namespace {

// Pre-activation ResNeXt block: norm-ReLU-1x1 reduce, norm-ReLU-grouped
// 3x3 (branches == slicing groups), norm-ReLU-1x1 expand.
std::unique_ptr<Module> MakeResNeXtBlock(const CnnConfig& config,
                                         int64_t in_ch, int64_t out_ch,
                                         const std::string& tag, Rng* rng) {
  // Branch width must divide evenly: round mid up to a multiple of groups.
  int64_t mid = std::max<int64_t>(config.slice_groups, out_ch / 2);
  mid += (config.slice_groups - mid % config.slice_groups) %
         config.slice_groups;
  auto body = std::make_unique<Sequential>("next_body_" + tag);
  body->Add(MakeNorm(config.norm, in_ch, config.slice_groups,
                     config.multi_bn_rates, "n1_" + tag));
  body->Emplace<ReLU>();
  {
    Conv2dOptions c;
    c.in_channels = in_ch;
    c.out_channels = mid;
    c.kernel = 1;
    c.pad = 0;
    c.groups = config.slice_groups;
    body->Emplace<Conv2d>(c, rng, "c1_" + tag);
  }
  body->Add(MakeNorm(config.norm, mid, config.slice_groups,
                     config.multi_bn_rates, "n2_" + tag));
  body->Emplace<ReLU>();
  {
    GroupedConv2dOptions g;
    g.in_channels = mid;
    g.out_channels = mid;
    g.kernel = 3;
    g.pad = 1;
    g.groups = config.slice_groups;
    body->Emplace<GroupedConv2d>(g, rng, "gc_" + tag);
  }
  body->Add(MakeNorm(config.norm, mid, config.slice_groups,
                     config.multi_bn_rates, "n3_" + tag));
  body->Emplace<ReLU>();
  {
    Conv2dOptions c;
    c.in_channels = mid;
    c.out_channels = out_ch;
    c.kernel = 1;
    c.pad = 0;
    c.groups = config.slice_groups;
    body->Emplace<Conv2d>(c, rng, "c3_" + tag);
  }
  std::unique_ptr<Module> shortcut;
  if (in_ch != out_ch) {
    Conv2dOptions c;
    c.in_channels = in_ch;
    c.out_channels = out_ch;
    c.kernel = 1;
    c.pad = 0;
    c.groups = config.slice_groups;
    auto proj = std::make_unique<Sequential>("next_proj_" + tag);
    proj->Emplace<Conv2d>(c, rng, "sc_" + tag);
    shortcut = std::move(proj);
  }
  return std::make_unique<ResidualBlock>(std::move(body),
                                         std::move(shortcut),
                                         "next_" + tag);
}

}  // namespace

Result<std::unique_ptr<Sequential>> MakeResNeXtSmall(
    const CnnConfig& config) {
  MS_RETURN_NOT_OK(ValidateConfig(config));
  Rng rng(config.seed);
  auto net = std::make_unique<Sequential>("resnext_small");

  int64_t in_ch = ScaledWidth(config.base_width, config.width_mult);
  // Keep widths divisible by the branch count.
  in_ch += (config.slice_groups - in_ch % config.slice_groups) %
           config.slice_groups;
  {
    Conv2dOptions c;
    c.in_channels = config.in_channels;
    c.out_channels = in_ch;
    c.kernel = 3;
    c.pad = 1;
    c.groups = config.slice_groups;
    c.slice_in = false;
    net->Emplace<Conv2d>(c, &rng, "stem");
  }
  for (int64_t s = 0; s < config.stages; ++s) {
    int64_t out_ch = ScaledWidth(config.base_width << s, config.width_mult);
    out_ch += (config.slice_groups - out_ch % config.slice_groups) %
              config.slice_groups;
    for (int64_t b = 0; b < config.blocks_per_stage; ++b) {
      const std::string tag =
          "s" + std::to_string(s) + "b" + std::to_string(b);
      net->Add(MakeResNeXtBlock(config, in_ch, out_ch, tag, &rng));
      in_ch = out_ch;
    }
    if (s + 1 < config.stages) net->Emplace<MaxPool2d>(2, 2);
  }
  net->Add(MakeNorm(config.norm, in_ch, config.slice_groups,
                    config.multi_bn_rates, "final_norm"));
  net->Emplace<ReLU>();
  net->Emplace<GlobalAvgPool>();
  DenseOptions dopts;
  dopts.in_features = in_ch;
  dopts.out_features = config.num_classes;
  dopts.groups = config.slice_groups;
  dopts.slice_in = true;
  dopts.slice_out = false;
  dopts.bias = true;
  dopts.rescale = false;
  net->Emplace<Dense>(dopts, &rng, "classifier");
  FuseActivations(net.get());
  return net;
}

Result<std::unique_ptr<Sequential>> MakeMobileNetSmall(
    const CnnConfig& config) {
  MS_RETURN_NOT_OK(ValidateConfig(config));
  Rng rng(config.seed);
  auto net = std::make_unique<Sequential>("mobilenet_small");

  // Stem: full 3x3 conv from image channels.
  int64_t in_ch = ScaledWidth(config.base_width, config.width_mult);
  {
    Conv2dOptions c;
    c.in_channels = config.in_channels;
    c.out_channels = in_ch;
    c.kernel = 3;
    c.stride = 1;
    c.pad = 1;
    c.groups = config.slice_groups;
    c.slice_in = false;
    net->Emplace<Conv2d>(c, &rng, "stem");
    net->Add(MakeNorm(config.norm, in_ch, config.slice_groups,
                      config.multi_bn_rates, "stem_norm"));
    net->Emplace<ReLU>();
  }

  for (int64_t s = 0; s < config.stages; ++s) {
    const int64_t width =
        ScaledWidth(config.base_width << s, config.width_mult);
    for (int64_t b = 0; b < config.blocks_per_stage; ++b) {
      const std::string tag =
          "s" + std::to_string(s) + "b" + std::to_string(b);
      // Depthwise 3x3 over the current channels.
      DepthwiseConv2dOptions dw;
      dw.channels = in_ch;
      dw.kernel = 3;
      dw.pad = 1;
      dw.groups = config.slice_groups;
      net->Emplace<DepthwiseConv2d>(dw, &rng, "dw_" + tag);
      net->Add(MakeNorm(config.norm, in_ch, config.slice_groups,
                        config.multi_bn_rates, "dwn_" + tag));
      net->Emplace<ReLU>();
      // Pointwise 1x1 expansion to the stage width.
      Conv2dOptions pw;
      pw.in_channels = in_ch;
      pw.out_channels = width;
      pw.kernel = 1;
      pw.stride = 1;
      pw.pad = 0;
      pw.groups = config.slice_groups;
      net->Emplace<Conv2d>(pw, &rng, "pw_" + tag);
      net->Add(MakeNorm(config.norm, width, config.slice_groups,
                        config.multi_bn_rates, "pwn_" + tag));
      net->Emplace<ReLU>();
      in_ch = width;
    }
    if (s + 1 < config.stages) net->Emplace<MaxPool2d>(2, 2);
  }

  net->Emplace<GlobalAvgPool>();
  DenseOptions dopts;
  dopts.in_features = in_ch;
  dopts.out_features = config.num_classes;
  dopts.groups = config.slice_groups;
  dopts.slice_in = true;
  dopts.slice_out = false;
  dopts.bias = true;
  dopts.rescale = false;
  net->Emplace<Dense>(dopts, &rng, "classifier");
  FuseActivations(net.get());
  return net;
}

namespace {

// Pre-activation bottleneck: norm-ReLU-1x1 reduce, norm-ReLU-3x3 (stride),
// norm-ReLU-1x1 expand. `in_ch -> out_ch` with mid = out_ch / 4.
std::unique_ptr<Module> MakeBottleneck(const CnnConfig& config, int64_t in_ch,
                                       int64_t out_ch, int64_t stride,
                                       bool first_in_net,
                                       const std::string& tag, Rng* rng) {
  const int64_t mid = std::max<int64_t>(1, out_ch / 4);
  auto body = std::make_unique<Sequential>("bottleneck_" + tag);
  body->Add(MakeNorm(config.norm, in_ch, config.slice_groups,
                     config.multi_bn_rates, "n1_" + tag));
  body->Emplace<ReLU>();
  {
    Conv2dOptions c;
    c.in_channels = in_ch;
    c.out_channels = mid;
    c.kernel = 1;
    c.stride = 1;
    c.pad = 0;
    c.groups = config.slice_groups;
    c.slice_in = !first_in_net;
    body->Emplace<Conv2d>(c, rng, "c1_" + tag);
  }
  body->Add(MakeNorm(config.norm, mid, config.slice_groups,
                     config.multi_bn_rates, "n2_" + tag));
  body->Emplace<ReLU>();
  {
    Conv2dOptions c;
    c.in_channels = mid;
    c.out_channels = mid;
    c.kernel = 3;
    c.stride = stride;
    c.pad = 1;
    c.groups = config.slice_groups;
    body->Emplace<Conv2d>(c, rng, "c2_" + tag);
  }
  body->Add(MakeNorm(config.norm, mid, config.slice_groups,
                     config.multi_bn_rates, "n3_" + tag));
  body->Emplace<ReLU>();
  {
    Conv2dOptions c;
    c.in_channels = mid;
    c.out_channels = out_ch;
    c.kernel = 1;
    c.stride = 1;
    c.pad = 0;
    c.groups = config.slice_groups;
    body->Emplace<Conv2d>(c, rng, "c3_" + tag);
  }

  std::unique_ptr<Module> shortcut;
  if (in_ch != out_ch || stride != 1 || first_in_net) {
    Conv2dOptions c;
    c.in_channels = in_ch;
    c.out_channels = out_ch;
    c.kernel = 1;
    c.stride = stride;
    c.pad = 0;
    c.groups = config.slice_groups;
    c.slice_in = !first_in_net;
    auto proj = std::make_unique<Sequential>("proj_" + tag);
    proj->Emplace<Conv2d>(c, rng, "sc_" + tag);
    shortcut = std::move(proj);
  }
  return std::make_unique<ResidualBlock>(std::move(body), std::move(shortcut),
                                         "res_" + tag);
}

}  // namespace

Result<std::unique_ptr<Sequential>> MakeResNet(const CnnConfig& config) {
  MS_RETURN_NOT_OK(ValidateConfig(config));
  Rng rng(config.seed);
  auto net = std::make_unique<Sequential>("resnet");

  // Stem: 3x3 conv from image channels (unsliced input).
  const int64_t stem_width = ScaledWidth(config.base_width, config.width_mult);
  {
    Conv2dOptions c;
    c.in_channels = config.in_channels;
    c.out_channels = stem_width;
    c.kernel = 3;
    c.stride = 1;
    c.pad = 1;
    c.groups = config.slice_groups;
    c.slice_in = false;
    net->Emplace<Conv2d>(c, &rng, "stem");
  }

  int64_t in_ch = stem_width;
  for (int64_t s = 0; s < config.stages; ++s) {
    const int64_t out_ch =
        ScaledWidth((config.base_width << s) * 4, config.width_mult);
    for (int64_t b = 0; b < config.blocks_per_stage; ++b) {
      const int64_t stride = (s > 0 && b == 0) ? 2 : 1;
      const std::string tag =
          "s" + std::to_string(s) + "b" + std::to_string(b);
      net->Add(MakeBottleneck(config, in_ch, out_ch, stride,
                              /*first_in_net=*/false, tag, &rng));
      in_ch = out_ch;
    }
  }

  net->Add(MakeNorm(config.norm, in_ch, config.slice_groups,
                    config.multi_bn_rates, "final_norm"));
  net->Emplace<ReLU>();
  net->Emplace<GlobalAvgPool>();
  DenseOptions dopts;
  dopts.in_features = in_ch;
  dopts.out_features = config.num_classes;
  dopts.groups = config.slice_groups;
  dopts.slice_in = true;
  dopts.slice_out = false;
  dopts.bias = true;
  dopts.rescale = false;
  net->Emplace<Dense>(dopts, &rng, "classifier");
  FuseActivations(net.get());
  return net;
}

}  // namespace ms
