// Small fully-connected classifier; the quickstart model and the testbed
// for dense-layer slicing semantics.
#ifndef MODELSLICING_MODELS_MLP_H_
#define MODELSLICING_MODELS_MLP_H_

#include <memory>
#include <vector>

#include "src/nn/module.h"
#include "src/util/status.h"

namespace ms {

struct MlpConfig {
  int64_t in_features = 0;
  std::vector<int64_t> hidden = {64, 64};
  int64_t num_classes = 0;
  int64_t slice_groups = 8;
  bool rescale = true;   ///< output rescaling on sliced dense layers.
  bool group_norm = false;  ///< insert GroupNorm after each hidden layer.
  uint64_t seed = 1;
};

/// Input and output layers stay full-width; hidden layers are sliced
/// (paper Sec. 5.1.1).
Result<std::unique_ptr<Sequential>> MakeMlp(const MlpConfig& config);

}  // namespace ms

#endif  // MODELSLICING_MODELS_MLP_H_
