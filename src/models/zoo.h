// Named model configurations mirroring the paper's Table 3 at laptop scale
// (see DESIGN.md for the scaling substitution). The names keep the paper's
// identities so benches print recognizable rows.
#ifndef MODELSLICING_MODELS_ZOO_H_
#define MODELSLICING_MODELS_ZOO_H_

#include <string>
#include <vector>

#include "src/data/synthetic_images.h"
#include "src/models/cnn.h"

namespace ms {

struct ZooEntry {
  std::string name;
  CnnConfig config;
  bool is_resnet = false;
  /// The dataset this configuration is evaluated on ("cifar" analogue:
  /// 12x12, 10-class; "imagenet" analogue: 16x16, 10-class, more modes).
  std::string dataset;
};

/// Known names: "vgg13", "resnet164", "resnet56-2" (CIFAR analogues);
/// "vgg16", "resnet50" (ImageNet analogues).
Result<ZooEntry> GetZooModel(const std::string& name);

std::vector<std::string> ListZooModels();

/// Dataset options matching a zoo entry's `dataset` field.
SyntheticImageOptions ZooDatasetOptions(const std::string& dataset);

}  // namespace ms

#endif  // MODELSLICING_MODELS_ZOO_H_
