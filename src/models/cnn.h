// Convolutional model builders mirroring the paper's Table 3 families at
// laptop scale: a plain VGG-style stack ("VGG-13"), and pre-activation
// ResNets with bottleneck blocks and a widening factor (ResNet-164 /
// ResNet-56-2 / ResNet-50 analogues).
#ifndef MODELSLICING_MODELS_CNN_H_
#define MODELSLICING_MODELS_CNN_H_

#include <memory>
#include <string>
#include <vector>

#include "src/nn/module.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace ms {

enum class NormKind {
  kGroup,       ///< the paper's choice for model slicing.
  kBatch,       ///< conventional training / fixed models.
  kMultiBatch,  ///< SlimmableNet: one BN per candidate rate.
};

struct CnnConfig {
  int64_t in_channels = 3;
  int64_t num_classes = 10;
  int64_t base_width = 16;      ///< channels of the first stage.
  double width_mult = 1.0;      ///< ensemble-of-width baselines scale this.
  int64_t stages = 3;
  int64_t blocks_per_stage = 2; ///< conv pairs (VGG) or residual blocks.
  int64_t slice_groups = 8;     ///< G ordered groups per layer.
  NormKind norm = NormKind::kGroup;
  /// Candidate rates for MultiBatchNorm (ignored otherwise).
  std::vector<double> multi_bn_rates;
  uint64_t seed = 1;
};

/// Plain VGG-style CNN: per stage `blocks_per_stage` conv3x3+norm+ReLU with
/// width base*2^stage, then 2x2 max-pool; global average pool + classifier.
Result<std::unique_ptr<Sequential>> MakeVggSmall(const CnnConfig& config);

/// Pre-activation bottleneck ResNet: stem conv, `stages` stages of
/// `blocks_per_stage` bottleneck blocks (expansion 4), stride-2 projections
/// between stages; final norm+ReLU+GAP+classifier.
Result<std::unique_ptr<Sequential>> MakeResNet(const CnnConfig& config);

/// ResNeXt-style CNN: pre-activation residual blocks whose 3x3 stage is a
/// grouped convolution with conv groups == slicing groups (the homogeneous
/// multi-branch transformation the paper calls ideally suited to group
/// residual learning, Sec. 3.5). Slicing keeps a prefix of whole branches.
Result<std::unique_ptr<Sequential>> MakeResNeXtSmall(const CnnConfig& config);

/// MobileNet-style CNN of depthwise-separable blocks (depthwise 3x3 +
/// pointwise 1x1), the efficient-architecture family the paper highlights
/// as ideally suited to group residual learning (Sec. 3.5). Depthwise
/// layers cost O(r); pointwise layers O(r^2).
Result<std::unique_ptr<Sequential>> MakeMobileNetSmall(
    const CnnConfig& config);

/// Scaled channel count helper (width multiplier, min 1 channel).
int64_t ScaledWidth(int64_t width, double mult);

/// Norm-layer factory shared by the model builders and baselines.
std::unique_ptr<Module> MakeNorm(NormKind kind, int64_t channels,
                                 int64_t groups,
                                 const std::vector<double>& multi_bn_rates,
                                 const std::string& name);

}  // namespace ms

#endif  // MODELSLICING_MODELS_CNN_H_
