#include "src/models/mlp.h"

#include "src/nn/activations.h"
#include "src/nn/dense.h"
#include "src/nn/fusion.h"
#include "src/nn/norm.h"
#include "src/util/rng.h"

namespace ms {

Result<std::unique_ptr<Sequential>> MakeMlp(const MlpConfig& config) {
  if (config.in_features < 1 || config.num_classes < 2) {
    return Status::InvalidArgument("bad MLP dimensions");
  }
  if (config.hidden.empty()) {
    return Status::InvalidArgument("MLP needs at least one hidden layer");
  }
  for (int64_t h : config.hidden) {
    if (h < 1) return Status::InvalidArgument("bad hidden width");
  }
  Rng rng(config.seed);
  auto net = std::make_unique<Sequential>("mlp");
  int64_t in = config.in_features;
  for (size_t i = 0; i < config.hidden.size(); ++i) {
    DenseOptions d;
    d.in_features = in;
    d.out_features = config.hidden[i];
    d.groups = config.slice_groups;
    d.slice_in = i > 0;  // Network input stays full.
    d.slice_out = true;
    d.bias = !config.group_norm;
    d.rescale = config.rescale && i > 0 && !config.group_norm;
    net->Emplace<Dense>(d, &rng, "fc" + std::to_string(i));
    if (config.group_norm) {
      NormOptions n;
      n.channels = config.hidden[i];
      n.groups = config.slice_groups;
      net->Emplace<GroupNorm>(n, "gn" + std::to_string(i));
    }
    net->Emplace<ReLU>();
    in = config.hidden[i];
  }
  DenseOptions d;
  d.in_features = in;
  d.out_features = config.num_classes;
  d.groups = config.slice_groups;
  d.slice_in = true;
  d.slice_out = false;
  d.bias = true;
  d.rescale = config.rescale;
  net->Emplace<Dense>(d, &rng, "classifier");
  FuseActivations(net.get());
  return net;
}

}  // namespace ms
