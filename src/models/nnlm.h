// Neural network language model (paper Sec. 5.2): embedding, two LSTM
// layers and an output projection, with dropout between layers. Model
// slicing applies to the recurrent layers and the output dense layer (with
// output rescaling); the embedding and softmax vocabulary stay full.
#ifndef MODELSLICING_MODELS_NNLM_H_
#define MODELSLICING_MODELS_NNLM_H_

#include <memory>
#include <vector>

#include "src/nn/dense.h"
#include "src/nn/dropout.h"
#include "src/nn/embedding.h"
#include "src/nn/lstm.h"
#include "src/util/status.h"

namespace ms {

struct NnlmConfig {
  int64_t vocab_size = 0;
  int64_t embed_dim = 64;
  int64_t hidden = 64;
  int64_t num_layers = 2;
  int64_t slice_groups = 8;
  double dropout = 0.2;
  /// Output rescaling on the sliced recurrent and decoder layers
  /// (Sec. 5.2.2). Disable to ablate its effect on subnet stability.
  bool rescale = true;
  uint64_t seed = 1;
};

class Nnlm {
 public:
  static Result<std::unique_ptr<Nnlm>> Make(const NnlmConfig& config);

  void SetSliceRate(double r);

  /// tokens: length T*B time-major ((t, b) -> t*B + b). Returns logits
  /// (T*B, vocab).
  Tensor Forward(const std::vector<int>& tokens, int64_t t_steps,
                 int64_t batch, bool training);

  /// grad_logits: (T*B, vocab) from the sequence loss.
  void Backward(const Tensor& grad_logits);

  std::vector<ParamRef> Params();

  /// Multiply-accumulates per token at the current slice rate.
  int64_t FlopsPerToken() const;
  int64_t ActiveParams() const;

  const NnlmConfig& config() const { return config_; }

 private:
  explicit Nnlm(const NnlmConfig& config);

  NnlmConfig config_;
  Rng rng_;
  std::unique_ptr<Embedding> embed_;
  std::vector<std::unique_ptr<Lstm>> lstms_;
  std::vector<std::unique_ptr<Dropout>> dropouts_;  ///< one per LSTM + embed.
  std::unique_ptr<Dense> output_;

  int64_t cached_t_ = 0;
  int64_t cached_b_ = 0;
};

}  // namespace ms

#endif  // MODELSLICING_MODELS_NNLM_H_
