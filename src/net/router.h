// Rate-aware request router over N backend SliceServer shards (the
// cluster tier of DESIGN.md §10).
//
// Routing policy. Each shard's kStatsReply advertises its measured
// full-model per-sample time t, its T/2 tick, and its trained slice-rate
// lattice. For a request with deadline d the router estimates the latency
// of running it on shard s at rate r as
//
//   est(r) = tick_s + r^2 * t_s        (queue wait bound + Eq. 3 with n=1)
//
// and scores the shard by the LARGEST advertised rate r with est(r) <= d —
// the same "highest rate that still meets the budget" rule the shard's own
// scheduler applies (Eq. 3), lifted one level up. Low-budget traffic thus
// lands on shards prewarmed at low rates (which can still meet the
// deadline) instead of being queued behind a full-rate shard that cannot.
// Ties — and no-deadline traffic — break to the fewest outstanding
// requests (join-shortest-queue).
//
// Health gossip. A heartbeat thread polls every shard's stats. A shard is
// DRAINED from rotation when its connection dies, its heartbeat times out
// repeatedly (per-shard CircuitBreaker, reusing src/serving/health.h), or
// its own breaker reports open / zero healthy workers. Drained shards are
// probed every heartbeat (reconnect + stats) and READMITTED on a clean
// probe. Requests outstanding on a dead connection are failed ("lost") to
// their clients — exactly once, like every other outcome.
//
// Reliability (DESIGN.md §13). Each forwarded request is one ATTEMPT of a
// shared Request. A hashed timer wheel drives three per-request timers:
//   - failover: if the primary attempt is unreplied at failover_fraction of
//     the budget, launch ONE second attempt on another live, rate-feasible
//     shard (first-reply-wins; the loser's reply is dropped and counted in
//     dup_replies).
//   - hedge (opt-in): same one-shot second attempt, but speculative — it
//     fires at the observed attempt-latency quantile (capped at a fraction
//     of the budget so the hedge is still deadline-feasible), trading
//     duplicate work for tail latency.
//   - settle: at budget + grace an unreplied request is settled kFailed to
//     its client, so a blackholed frame costs bounded latency, not an
//     orphan. Every attempt forwards the REMAINING budget, so a retried or
//     hedged request can never overspend its original deadline — the
//     second shard's scheduler sees the truncated budget and picks a lower
//     slice rate.
// A shard death re-routes its orphaned attempts through the same one-shot
// failover instead of failing them, when budget remains.
//
// Cluster accounting. The router's client-facing ledger keeps the same
// invariant as a single shard:
//   submitted == served + shed + expired + rejected + failed
// where `failed` folds in the lost-on-death and timed-out requests.
// Exactly one terminal reply per client request is guaranteed by a settled
// flag (compare-exchange) on the shared Request. Per-shard ShardViews are
// ATTEMPT-level (a failover counts as forwarded on both shards), so
// sum(view.served) >= router served; the client-facing ledger stays
// dedup-exact.
#ifndef MODELSLICING_NET_ROUTER_H_
#define MODELSLICING_NET_ROUTER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/net/client.h"
#include "src/net/net_server.h"
#include "src/net/wire.h"
#include "src/serving/health.h"
#include "src/util/status.h"
#include "src/util/timer_wheel.h"

namespace ms {
namespace net {

struct RouterOptions {
  double heartbeat_seconds = 0.25;   ///< gossip/probe period.
  /// Consecutive heartbeat failures before a connected shard is drained
  /// (sudden disconnects drain immediately).
  int heartbeat_failures = 2;
  double heartbeat_timeout_seconds = 1.0;
  double connect_timeout_seconds = 1.0;
  /// Per-shard admission cap: outstanding requests beyond this shed.
  int64_t max_outstanding = 512;
  /// Require at least one successful heartbeat before Start() returns
  /// (false lets the router start ahead of its shards).
  bool require_shard_at_start = false;

  // Reliability layer. Per-request timers only arm when the request has a
  // budget: its own deadline, or no_deadline_timeout_seconds as a stand-in.
  /// One-shot failover of unreplied attempts onto another shard.
  bool failover = true;
  /// Failover fires at this fraction of the budget — early enough that the
  /// second attempt's remaining budget is still schedulable (> one tick).
  double failover_fraction = 0.45;
  /// Settle timer slack past the budget: the shard's own terminal reply
  /// (served/expired) gets this long to arrive before the router
  /// synthesizes kFailed.
  double reply_grace_seconds = 0.5;
  /// Budget stand-in for requests without a deadline (0 = no timers, the
  /// pre-reliability behavior: such a request can wait forever).
  double no_deadline_timeout_seconds = 0.0;
  /// Speculative tail hedging (off by default: it spends duplicate work).
  bool hedge = false;
  /// Hedge once elapsed exceeds this quantile of observed attempt latency.
  double hedge_quantile = 0.95;
  /// Observed-latency samples required before the quantile is trusted;
  /// until then the budget-cap fallback below is the hedge delay.
  int hedge_min_samples = 32;
  /// Hedge delay never exceeds this fraction of the budget, so the hedge
  /// attempt keeps a schedulable remaining budget.
  double hedge_budget_cap_fraction = 0.35;
  /// Timer-wheel granularity (also the timer thread's poll period).
  double timer_tick_seconds = 0.005;
};

class ShardRouter : public WireService {
 public:
  /// `shard_addrs` are "host:port" (or ":port") backend endpoints.
  ShardRouter(std::vector<std::string> shard_addrs, RouterOptions opts);
  ~ShardRouter() override;

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Connects to the shards (best effort) and starts the heartbeat.
  Status Start();
  /// Stops the heartbeat and fails every outstanding request (lost).
  void Stop();

  // WireService: the router speaks the same protocol as a shard, so
  // clients cannot tell (and need not care) which tier they talk to.
  void OnRequest(const RequestMsg& msg,
                 std::function<void(const ReplyMsg&)> reply) override;
  std::string OnStats() override;

  /// Router stats + per-shard ledger as a struct (shared with OnStats).
  StatsMsg Snapshot() const;

  /// Runs one heartbeat round synchronously (tests; also what the
  /// heartbeat thread does every period).
  void HeartbeatOnce();

  int num_up() const;
  int64_t total_readmits() const;
  int64_t total_drains() const;
  int64_t total_timeouts() const;
  int64_t total_failovers() const;
  int64_t total_failover_wins() const;
  int64_t total_hedges() const;
  int64_t total_hedge_wins() const;
  int64_t total_dup_replies() const;

 private:
  /// Which attempt of a Request a pending entry is.
  enum class AttemptKind : uint8_t { kPrimary = 0, kFailover, kHedge };

  /// State shared by every attempt of one client request. Settled exactly
  /// once (the `settled` CAS); `attempts` caps the second attempt at one
  /// (failover OR hedge, whichever fires first); `live` counts pending
  /// entries so the last attempt to die can settle the request.
  struct Request {
    std::function<void(const ReplyMsg&)> reply;
    uint64_t client_id = 0;
    double deadline_seconds = 0.0;   ///< original relative budget (<=0 none).
    double effective_budget = 0.0;   ///< >0 when reliability timers armed.
    double start = 0.0;              ///< monotonic submit time.
    std::vector<float> payload;      ///< kept for resend on failover/hedge.
    std::atomic<int> attempts{1};
    std::atomic<int> live{0};
    std::atomic<bool> settled{false};
  };

  struct Pending {
    std::shared_ptr<Request> req;
    AttemptKind kind = AttemptKind::kPrimary;
    double sent_at = 0.0;  ///< monotonic; feeds the hedge latency ring.
  };

  enum class TimerKind : uint8_t { kSettle = 0, kFailover, kHedge };
  struct TimerItem {
    TimerKind kind = TimerKind::kSettle;
    uint32_t shard = 0;
    uint64_t rid = 0;
  };

  struct Shard {
    std::string host;
    uint16_t port = 0;

    /// Heartbeat-side state: connection + advertised calibration.
    std::mutex mu;
    std::shared_ptr<WireClient> client;           // guarded by mu
    double calibrated_t = 0.0;                    // guarded by mu
    double calibrated_t_int8 = 0.0;               // guarded by mu (0 = off)
    double tick_seconds = 0.0;                    // guarded by mu
    std::vector<double> rates;                    // guarded by mu
    bool remote_breaker_open = false;             // guarded by mu
    int remote_healthy_workers = -1;              // guarded by mu (-1 unknown)

    std::atomic<bool> up{false};
    CircuitBreaker heartbeat_breaker;

    /// Request-side ledger. NEVER held while connecting/destroying the
    /// client (the client's reader thread takes it in on_disconnect).
    std::mutex pending_mu;
    std::unordered_map<uint64_t, Pending> pending;  // attempt rid -> entry
    ShardView view;

    Shard(int failures, double cooloff)
        : heartbeat_breaker(failures, cooloff) {}
  };

  void HeartbeatLoop();
  /// Probes/polls one shard; drains or readmits as the evidence demands.
  void HeartbeatShard(size_t idx);
  void DrainShard(size_t idx, const char* reason);
  /// Orphans all pending attempts on shard `idx`: each is re-routed through
  /// one-shot failover when budget remains, else its request is settled
  /// lost. Returns how many entries were orphaned.
  int64_t FailPending(size_t idx);
  void HandleShardReply(size_t idx, const ReplyMsg& msg);
  void HandleShardDisconnect(size_t idx);
  /// Routing decision; -1 when no shard can take the request, -2 when
  /// every candidate is at its outstanding cap. `exclude` skips the shard
  /// a failover/hedge is escaping from.
  int PickShard(double deadline_seconds, int exclude = -1);

  /// Sends one attempt of `req` to shard `shard_idx`, registers the
  /// pending entry, and schedules its timers. `wire_deadline` is the
  /// REMAINING budget forwarded on the wire. Returns false when the send
  /// could not happen (no client / send error); a failed PRIMARY attempt
  /// settles the request kRejectedClosed, a failed second attempt settles
  /// it kFailed only when it was the last live attempt.
  bool ForwardAttempt(const std::shared_ptr<Request>& req, int shard_idx,
                      double wire_deadline, AttemptKind kind, double now);
  void TimerLoop();
  void ProcessTimer(const TimerItem& item, double now);
  void ScheduleTimer(double when, TimerItem item);
  /// One-shot second attempt (failover or hedge): CASes attempts 1 -> 2,
  /// picks another shard, forwards the remaining budget. Shared by the
  /// timer paths and FailPending's orphan re-route.
  bool LaunchSecondAttempt(const std::shared_ptr<Request>& req,
                           int exclude_shard, AttemptKind kind, double now);
  /// Settles `req` with a synthesized terminal failure (caller holds the
  /// settled CAS win).
  void SettleFailed(const std::shared_ptr<Request>& req);
  /// Clamped decrement of view.outstanding (caller holds pending_mu): a
  /// late reply racing FailPending's orphan swap must never push the
  /// ledger negative — the miss is counted instead.
  static void DecOutstandingLocked(Shard* shard);
  void RecordAttemptLatency(double seconds);
  /// Hedge delay for a budget: observed-latency quantile, capped at
  /// hedge_budget_cap_fraction * budget.
  double HedgeDelay(double budget);

  RouterOptions opts_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<bool> running_{false};
  std::thread heartbeat_;
  std::mutex hb_mu_;
  std::condition_variable hb_cv_;

  std::atomic<uint64_t> next_rid_{1};  ///< router-wide attempt id.

  std::thread timer_;
  std::mutex timer_mu_;
  std::condition_variable timer_cv_;
  TimerWheel<TimerItem> wheel_;  // guarded by timer_mu_

  // Attempt-latency ring feeding the hedge quantile (served replies only).
  std::mutex lat_mu_;
  std::vector<double> lat_ring_;  // guarded by lat_mu_
  size_t lat_pos_ = 0;            // guarded by lat_mu_
  size_t lat_count_ = 0;          // guarded by lat_mu_

  // Client-facing ledger (the cluster invariant's left/right sides).
  std::atomic<int64_t> submitted_{0};
  std::atomic<int64_t> served_{0};
  std::atomic<int64_t> shed_{0};
  std::atomic<int64_t> expired_{0};
  std::atomic<int64_t> rejected_{0};
  std::atomic<int64_t> failed_{0};
  std::atomic<int64_t> drains_{0};
  std::atomic<int64_t> readmits_{0};
  std::atomic<int64_t> timeouts_{0};
  std::atomic<int64_t> failovers_{0};
  std::atomic<int64_t> failover_wins_{0};
  std::atomic<int64_t> hedges_{0};
  std::atomic<int64_t> hedge_wins_{0};
  std::atomic<int64_t> dup_replies_{0};
};

}  // namespace net
}  // namespace ms

#endif  // MODELSLICING_NET_ROUTER_H_
