// Rate-aware request router over N backend SliceServer shards (the
// cluster tier of DESIGN.md §10).
//
// Routing policy. Each shard's kStatsReply advertises its measured
// full-model per-sample time t, its T/2 tick, and its trained slice-rate
// lattice. For a request with deadline d the router estimates the latency
// of running it on shard s at rate r as
//
//   est(r) = tick_s + r^2 * t_s        (queue wait bound + Eq. 3 with n=1)
//
// and scores the shard by the LARGEST advertised rate r with est(r) <= d —
// the same "highest rate that still meets the budget" rule the shard's own
// scheduler applies (Eq. 3), lifted one level up. Low-budget traffic thus
// lands on shards prewarmed at low rates (which can still meet the
// deadline) instead of being queued behind a full-rate shard that cannot.
// Ties — and no-deadline traffic — break to the fewest outstanding
// requests (join-shortest-queue).
//
// Health gossip. A heartbeat thread polls every shard's stats. A shard is
// DRAINED from rotation when its connection dies, its heartbeat times out
// repeatedly (per-shard CircuitBreaker, reusing src/serving/health.h), or
// its own breaker reports open / zero healthy workers. Drained shards are
// probed every heartbeat (reconnect + stats) and READMITTED on a clean
// probe. Requests outstanding on a dead connection are failed ("lost") to
// their clients — exactly once, like every other outcome.
//
// Cluster accounting. The router's client-facing ledger keeps the same
// invariant as a single shard:
//   submitted == served + shed + expired + rejected + failed
// where `failed` folds in the lost-on-death requests. Per-shard ShardViews
// (forwarded/outstanding/per-outcome/lost/drains/readmits) reconcile the
// router ledger against the shards' own ServerStats.
#ifndef MODELSLICING_NET_ROUTER_H_
#define MODELSLICING_NET_ROUTER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/net/client.h"
#include "src/net/net_server.h"
#include "src/net/wire.h"
#include "src/serving/health.h"
#include "src/util/status.h"

namespace ms {
namespace net {

struct RouterOptions {
  double heartbeat_seconds = 0.25;   ///< gossip/probe period.
  /// Consecutive heartbeat failures before a connected shard is drained
  /// (sudden disconnects drain immediately).
  int heartbeat_failures = 2;
  double heartbeat_timeout_seconds = 1.0;
  double connect_timeout_seconds = 1.0;
  /// Per-shard admission cap: outstanding requests beyond this shed.
  int64_t max_outstanding = 512;
  /// Require at least one successful heartbeat before Start() returns
  /// (false lets the router start ahead of its shards).
  bool require_shard_at_start = false;
};

class ShardRouter : public WireService {
 public:
  /// `shard_addrs` are "host:port" (or ":port") backend endpoints.
  ShardRouter(std::vector<std::string> shard_addrs, RouterOptions opts);
  ~ShardRouter() override;

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Connects to the shards (best effort) and starts the heartbeat.
  Status Start();
  /// Stops the heartbeat and fails every outstanding request (lost).
  void Stop();

  // WireService: the router speaks the same protocol as a shard, so
  // clients cannot tell (and need not care) which tier they talk to.
  void OnRequest(const RequestMsg& msg,
                 std::function<void(const ReplyMsg&)> reply) override;
  std::string OnStats() override;

  /// Router stats + per-shard ledger as a struct (shared with OnStats).
  StatsMsg Snapshot() const;

  /// Runs one heartbeat round synchronously (tests; also what the
  /// heartbeat thread does every period).
  void HeartbeatOnce();

  int num_up() const;
  int64_t total_readmits() const;
  int64_t total_drains() const;

 private:
  struct Pending {
    std::function<void(const ReplyMsg&)> reply;
    uint64_t client_id = 0;
  };

  struct Shard {
    std::string host;
    uint16_t port = 0;

    /// Heartbeat-side state: connection + advertised calibration.
    std::mutex mu;
    std::shared_ptr<WireClient> client;           // guarded by mu
    double calibrated_t = 0.0;                    // guarded by mu
    double calibrated_t_int8 = 0.0;               // guarded by mu (0 = off)
    double tick_seconds = 0.0;                    // guarded by mu
    std::vector<double> rates;                    // guarded by mu
    bool remote_breaker_open = false;             // guarded by mu
    int remote_healthy_workers = -1;              // guarded by mu (-1 unknown)

    std::atomic<bool> up{false};
    CircuitBreaker heartbeat_breaker;

    /// Request-side ledger. NEVER held while connecting/destroying the
    /// client (the client's reader thread takes it in on_disconnect).
    std::mutex pending_mu;
    std::unordered_map<uint64_t, Pending> pending;  // router id -> caller
    uint64_t next_id = 1;
    ShardView view;

    Shard(int failures, double cooloff)
        : heartbeat_breaker(failures, cooloff) {}
  };

  void HeartbeatLoop();
  /// Probes/polls one shard; drains or readmits as the evidence demands.
  void HeartbeatShard(size_t idx);
  void DrainShard(size_t idx, const char* reason);
  /// Fails all pending requests on `shard` as lost; returns how many.
  int64_t FailPending(Shard* shard);
  void HandleShardReply(size_t idx, const ReplyMsg& msg);
  void HandleShardDisconnect(size_t idx);
  /// Routing decision; -1 when no shard can take the request.
  int PickShard(double deadline_seconds);

  RouterOptions opts_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<bool> running_{false};
  std::thread heartbeat_;
  std::mutex hb_mu_;
  std::condition_variable hb_cv_;

  // Client-facing ledger (the cluster invariant's left/right sides).
  std::atomic<int64_t> submitted_{0};
  std::atomic<int64_t> served_{0};
  std::atomic<int64_t> shed_{0};
  std::atomic<int64_t> expired_{0};
  std::atomic<int64_t> rejected_{0};
  std::atomic<int64_t> failed_{0};
  std::atomic<int64_t> drains_{0};
  std::atomic<int64_t> readmits_{0};
};

}  // namespace net
}  // namespace ms

#endif  // MODELSLICING_NET_ROUTER_H_
