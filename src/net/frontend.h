// Shard frontend: binds a started SliceServer to the TCP frame server so a
// shard process can serve remote traffic. Wire requests ride the serving
// engine's own admission path — `deadline_seconds` goes to
// SliceServer::Submit verbatim (so wire callers get the same
// AdmitResult::kRejectedInvalid for a NaN deadline as in-process callers),
// and the terminal reply is fired by the request's completion hook, never
// synthesized here. kStats replies advertise the shard's calibration
// (measured t, tick, trained rate lattice) so the router's rate-aware
// balancer can predict this shard's feasible latency without a probe.
#ifndef MODELSLICING_NET_FRONTEND_H_
#define MODELSLICING_NET_FRONTEND_H_

#include <cstdint>
#include <functional>
#include <string>

#include "src/net/net_server.h"
#include "src/net/wire.h"
#include "src/serving/server.h"

namespace ms {
namespace net {

class ShardFrontend : public WireService {
 public:
  /// `server` must outlive the frontend and already be Start()ed.
  /// `expected_payload` is the per-sample element count clients must send
  /// when they ship a tensor (0 accepts any size; empty payloads are always
  /// fine — the server materializes batch inputs itself).
  explicit ShardFrontend(SliceServer* server, int64_t expected_payload = 0);

  void OnRequest(const RequestMsg& msg,
                 std::function<void(const ReplyMsg&)> reply) override;
  std::string OnStats() override;

  /// The shard's kStatsReply, as a struct (shared with OnStats and tests).
  StatsMsg Snapshot() const;

 private:
  SliceServer* server_;
  int64_t expected_payload_;  ///< sample-shape element count (0 = any).
};

}  // namespace net
}  // namespace ms

#endif  // MODELSLICING_NET_FRONTEND_H_
