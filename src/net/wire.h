// Wire protocol for the networked serving tier (DESIGN.md §10).
//
// Compact length-prefixed binary frames, little-endian:
//
//   offset  size  field
//   0       2     magic   0x4D53 ("MS")
//   2       1     version (kWireVersion)
//   3       1     type    (FrameType)
//   4       4     length  payload bytes (<= kMaxPayload)
//   8       4     crc32   CRC-32 of the payload (src/util/crc32.h)
//   12      ...   payload
//
// Frame types and payloads:
//   kRequest    id:u64 | deadline_s:f64 | payload_count:u32 | f32[count]
//               deadline_s is RELATIVE seconds (<= 0 meaning "no deadline");
//               it is handed to SliceServer::Submit verbatim, so a NaN/Inf
//               deadline earns the same AdmitResult::kRejectedInvalid as an
//               in-process caller — one validation rule, no parallel enum.
//   kReply      id:u64 | admit:u8 | outcome:u8 | rate:f32
//               `admit` IS the serving tier's AdmitResult (same numeric
//               values). A request gets exactly one reply: an immediate one
//               when admission sheds/rejects, or a terminal one
//               (admit == kAccepted, `outcome` = RequestOutcome) once the
//               request settles inside the shard.
//   kStats      empty payload; asks the peer for a kStatsReply.
//   kStatsReply role-tagged stats blob (StatsMsg below). Doubles as the
//               health-gossip heartbeat: the router polls each shard and
//               reads quarantine/breaker state out of the reply.
//   kControl    id:u64 | op:u8 | seed:u64 | len:u32 | spec chars
//               Chaos-control RPC (ControlOp below): arm/disarm the fault
//               registry of the receiving process. Honored only when the
//               server was started with allow_fault_control (bench/CI
//               harnesses); otherwise answered kRejectedInvalid. Acked
//               with a kReply echoing the id, so a controller can retry
//               through the very faults it just armed.
//
// Anything that fails to parse — bad magic, oversized length, CRC
// mismatch, version mismatch, short payload, unknown type — is answered
// with a kReply whose admit code is AdmitResult::kRejectedInvalid (id 0
// when the frame was too mangled to trust its id), making the accounting
// invariant visible on the wire even for garbage input.
#ifndef MODELSLICING_NET_WIRE_H_
#define MODELSLICING_NET_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "src/serving/request_queue.h"
#include "src/util/status.h"

namespace ms {
namespace net {

inline constexpr uint16_t kWireMagic = 0x4D53;  // "MS"
/// v2 added `calibrated_t_int8` to StatsMsg; v3 added the reliability
/// counters (ShardView timeouts/failovers/hedges, StatsMsg router totals)
/// and the kControl frame. The protocol has no version negotiation, but
/// the header layout is version-invariant by fiat, so a frame from an old
/// or future peer still has a trustworthy boundary: the decoder consumes
/// it whole and classifies it kBadFrame with a salvaged id (one
/// kRejectedInvalid reply naming the id, stream continues) — it is never
/// parsed under the wrong layout, and one old frame no longer poisons the
/// connection.
inline constexpr uint8_t kWireVersion = 3;
inline constexpr size_t kHeaderBytes = 12;
/// Largest accepted payload: a sample tensor of ~256K floats plus slack.
/// Anything bigger is a malformed (or hostile) frame.
inline constexpr uint32_t kMaxPayload = 1u << 20;

enum class FrameType : uint8_t {
  kRequest = 1,
  kReply = 2,
  kStats = 3,
  kStatsReply = 4,
  kControl = 5,
};

/// Chaos-control operations (kControl frames).
enum class ControlOp : uint8_t {
  kArmFaults = 1,    ///< SetSeed(seed) then ArmFromSpec(spec).
  kDisarmFaults = 2, ///< disarm every fault point (spec ignored).
};

struct ControlMsg {
  uint64_t id = 0;
  ControlOp op = ControlOp::kArmFaults;
  uint64_t seed = 0;  ///< fault-registry seed (kArmFaults; replayability).
  std::string spec;   ///< MS_FAULTS syntax: "point=prob[@param],...".
};

struct RequestMsg {
  uint64_t id = 0;
  double deadline_seconds = 0.0;  ///< relative; <= 0 means no deadline.
  std::vector<float> payload;     ///< optional sample tensor (may be empty).
};

struct ReplyMsg {
  uint64_t id = 0;
  AdmitResult admit = AdmitResult::kAccepted;
  /// Terminal outcome; meaningful only when admit == kAccepted.
  RequestOutcome outcome = RequestOutcome::kServed;
  float rate = 0.0f;  ///< slice rate the request was served at (0 otherwise).
};

/// Role tag for kStatsReply payloads.
enum class StatsRole : uint8_t { kShard = 1, kRouter = 2 };

/// Router's view of one backend shard (serialized inside a router
/// kStatsReply; also the router's in-process accounting record).
struct ShardView {
  uint8_t up = 0;           ///< 1 = in rotation, 0 = drained.
  int64_t forwarded = 0;    ///< requests sent to this shard.
  int64_t outstanding = 0;  ///< forwarded, no terminal reply yet.
  int64_t served = 0;       ///< terminal replies by outcome, as seen
  int64_t shed = 0;         ///< by the router (admission sheds and
  int64_t expired = 0;      ///< terminal sheds both land in `shed`).
  int64_t failed = 0;
  int64_t rejected = 0;
  int64_t lost = 0;      ///< outstanding when the connection died.
  int64_t drains = 0;    ///< times this shard left rotation.
  int64_t readmits = 0;  ///< times it was probed back in.
  // Reliability layer (v3):
  int64_t timeouts = 0;   ///< attempts settled by the router's timer wheel.
  int64_t failovers = 0;  ///< failover attempts re-routed ONTO this shard.
  int64_t hedges = 0;     ///< hedge attempts duplicated ONTO this shard.
};

/// One kStatsReply payload. For a shard, the counter fields mirror
/// ServerStats plus the calibration/lattice advertisement the router's
/// rate-aware balancer needs. For the router they hold the router's own
/// client-facing accounting, and `shards` carries the per-shard ledger that
/// reconciles the cluster-wide invariant:
///   submitted == served + shed + expired + rejected + failed
/// with sum(shards[i].lost) folded into `failed`.
struct StatsMsg {
  StatsRole role = StatsRole::kShard;
  uint8_t breaker_open = 0;
  uint16_t healthy_workers = 0;
  uint16_t total_workers = 0;
  int64_t queue_depth = 0;
  int64_t queue_capacity = 0;
  int64_t submitted = 0;
  int64_t accepted = 0;
  int64_t served = 0;
  int64_t shed = 0;
  int64_t expired = 0;
  int64_t rejected = 0;
  int64_t failed = 0;
  int64_t quarantined = 0;
  int64_t repaired = 0;
  double calibrated_t = 0.0;   ///< full-model per-sample seconds (fp32).
  /// Int8 per-sample seconds; 0 when the shard's precision axis is off.
  /// Routers use min(calibrated_t, calibrated_t_int8 > 0 ? it : inf) for
  /// deadline feasibility — a shard that can go int8 can accept tighter
  /// deadlines than its fp32 column admits.
  double calibrated_t_int8 = 0.0;
  double tick_seconds = 0.0;   ///< T/2 batching interval.
  std::vector<double> rates;   ///< trained (prewarmed) slice-rate lattice.
  std::vector<ShardView> shards;  ///< router only.
  // Router reliability totals (v3; zero for shards):
  int64_t timeouts = 0;     ///< requests settled by the timer wheel.
  int64_t failovers = 0;    ///< second attempts launched after a timeout.
  int64_t hedges = 0;       ///< speculative second attempts (tail hedging).
  int64_t hedge_wins = 0;   ///< hedges whose reply settled the request.
  int64_t dup_replies = 0;  ///< late/duplicate replies dropped by dedup.
};

/// Appends a complete frame (header + payload) to `out`.
void EncodeFrame(FrameType type, const std::string& payload,
                 std::string* out);

std::string EncodeRequest(const RequestMsg& msg);
std::string EncodeReply(const ReplyMsg& msg);
std::string EncodeStats(const StatsMsg& msg);
std::string EncodeControl(const ControlMsg& msg);

/// Payload parsers. They validate every length before reading and reject
/// trailing bytes, so a corrupt-but-CRC-valid frame cannot smuggle garbage.
Status DecodeRequest(const std::string& payload, RequestMsg* out);
Status DecodeReply(const std::string& payload, ReplyMsg* out);
Status DecodeStats(const std::string& payload, StatsMsg* out);
Status DecodeControl(const std::string& payload, ControlMsg* out);

/// One parsed frame from the decoder.
struct Frame {
  FrameType type = FrameType::kRequest;
  std::string payload;
};

/// What FrameDecoder::Next produced.
enum class DecodeResult {
  kFrame = 0,     ///< a complete, CRC-clean frame was extracted.
  kNeedMore,      ///< buffer holds a partial frame; feed more bytes.
  kBadFrame,      ///< recoverable corruption (CRC/type/payload/version):
                  ///< the frame boundary was intact, so decoding may
                  ///< continue on the next frame.
  kFatal,         ///< unrecoverable (bad magic/oversized length): the byte
                  ///< stream cannot be trusted; close the connection after
                  ///< replying.
};

/// \brief Incremental frame reassembler for a TCP byte stream. Feed
/// arbitrary chunks (partial reads are the norm); pull complete frames out.
/// Used by both the epoll frontend and the blocking client reader.
class FrameDecoder {
 public:
  void Feed(const char* data, size_t n) { buf_.append(data, n); }

  /// Extracts the next complete frame. On kBadFrame the corrupt frame is
  /// consumed (and `bad_request_id` holds the frame's request id when the
  /// payload was long enough to carry one, else 0); on kFatal the buffer
  /// is poisoned and every later call returns kFatal.
  DecodeResult Next(Frame* out);

  uint64_t bad_request_id() const { return bad_request_id_; }
  size_t buffered() const { return buf_.size(); }

 private:
  std::string buf_;
  size_t pos_ = 0;  ///< consumed prefix; compacted lazily.
  bool fatal_ = false;
  uint64_t bad_request_id_ = 0;
};

}  // namespace net
}  // namespace ms

#endif  // MODELSLICING_NET_WIRE_H_
