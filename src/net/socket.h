// Thin RAII + helper layer over BSD sockets for the serving tier's TCP
// frontend/router. IPv4 localhost-or-LAN oriented: the cluster CI gauntlet
// and the router both speak to explicit host:port endpoints.
#ifndef MODELSLICING_NET_SOCKET_H_
#define MODELSLICING_NET_SOCKET_H_

#include <cstdint>
#include <string>
#include <utility>

#include "src/util/status.h"

namespace ms {
namespace net {

/// \brief Owns a socket fd; closes on destruction. Movable, not copyable.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  /// Relinquishes ownership without closing.
  int Release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void Close();

 private:
  int fd_ = -1;
};

/// Listening socket on `port` (0 = ephemeral), SO_REUSEADDR so a killed
/// shard can be relaunched on the same port immediately. `bound_port`
/// receives the actual port.
Result<Socket> TcpListen(uint16_t port, uint16_t* bound_port,
                         int backlog = 128);

/// Blocking connect to host:port with a total timeout. `host` is an IPv4
/// dotted quad or "localhost".
Result<Socket> TcpConnect(const std::string& host, uint16_t port,
                          double timeout_seconds);

/// Accept one connection; returns an invalid Socket on transient errors.
Socket TcpAccept(int listen_fd);

Status SetNonBlocking(int fd, bool nonblocking);
/// TCP_NODELAY: the protocol is many small frames; Nagle would serialize
/// the request/reply ping-pong at 40ms a hop.
void SetNoDelay(int fd);
/// SO_SNDTIMEO/SO_RCVTIMEO for blocking sockets, so a wedged peer turns
/// into a clean error instead of a parked thread.
void SetSendTimeout(int fd, double seconds);
void SetRecvTimeout(int fd, double seconds);

/// Writes all of `data`, retrying on EINTR/partial writes. Works on both
/// blocking and nonblocking fds: EAGAIN waits for writability with poll()
/// up to `timeout_seconds` total. Fails on timeout or a dead peer. SIGPIPE
/// is suppressed (MSG_NOSIGNAL).
Status SendAll(int fd, const char* data, size_t n,
               double timeout_seconds = 10.0);

/// SendAll for a complete wire FRAME, with the net.* fault-injection
/// points threaded through (src/util/fault.h): `net.send.drop` reports
/// success while writing nothing, `net.frame.truncate` sends only a prefix
/// (desyncing the peer's stream), `net.send.slow` trickles the bytes in
/// small chunks with sleeps totaling the point's @param seconds. With the
/// registry disarmed this is exactly SendAll plus one relaxed atomic load,
/// so every frame send routes through here.
Status SendFrameBytes(int fd, const char* data, size_t n,
                      double timeout_seconds = 10.0);

/// Splits "host:port"; defaults host to 127.0.0.1 when `addr` is ":port"
/// or a bare port number.
Result<std::pair<std::string, uint16_t>> ParseHostPort(
    const std::string& addr);

}  // namespace net
}  // namespace ms

#endif  // MODELSLICING_NET_SOCKET_H_
