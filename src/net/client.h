// Blocking-socket wire client with a background reader thread. Used by the
// router to talk to shards and by benches/tests to talk to either tier.
// Sends are synchronous (serialized by a write lock); replies arrive on the
// reader thread via `on_reply`. Stats polls are synchronous request/reply
// with a timeout — they double as the health-gossip heartbeat.
#ifndef MODELSLICING_NET_CLIENT_H_
#define MODELSLICING_NET_CLIENT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "src/net/socket.h"
#include "src/net/wire.h"
#include "src/util/status.h"

namespace ms {
namespace net {

class WireClient {
 public:
  struct Options {
    double connect_timeout_seconds = 2.0;
    double send_timeout_seconds = 5.0;
  };

  WireClient() = default;
  explicit WireClient(Options opts) : opts_(opts) {}
  ~WireClient();

  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  /// Reply dispatch; set BEFORE Connect. Runs on the reader thread — do not
  /// call back into this client from it (sends are fine, Close is not).
  void set_on_reply(std::function<void(const ReplyMsg&)> fn) {
    on_reply_ = std::move(fn);
  }
  /// Fired exactly once when the connection dies (peer close, read error,
  /// fatal stream corruption) — NOT on a local Close().
  void set_on_disconnect(std::function<void()> fn) {
    on_disconnect_ = std::move(fn);
  }

  Status Connect(const std::string& host, uint16_t port);
  void Close();
  bool connected() const { return connected_.load(std::memory_order_acquire); }

  /// Fire-and-forget request; the reply lands on `on_reply`.
  Status SendRequest(const RequestMsg& msg);

  /// Synchronous stats poll (one outstanding at a time; calls serialize).
  Result<StatsMsg> RequestStats(double timeout_seconds);

 private:
  void ReaderLoop();
  Status SendFrameLocked(const std::string& frame);
  void NoteDisconnect();

  Options opts_;
  Socket sock_;
  std::atomic<bool> connected_{false};
  std::atomic<bool> closing_{false};
  std::thread reader_;

  std::mutex write_mu_;

  std::function<void(const ReplyMsg&)> on_reply_;
  std::function<void()> on_disconnect_;
  std::atomic<bool> disconnect_fired_{false};

  // Stats rendezvous: RequestStats parks here until the reader thread
  // delivers a kStatsReply (or the connection dies / timeout passes).
  std::mutex stats_mu_;
  std::condition_variable stats_cv_;
  bool stats_pending_ = false;
  bool stats_ready_ = false;
  StatsMsg stats_value_;
};

/// One-shot chaos-control RPC: connect, send a kControl frame, await the
/// ack (a kReply echoing msg.id with kAccepted). The outgoing send bypasses
/// the local fault registry (plain SendAll) so a controller can arm faults
/// in its own process without sabotaging the arming itself; the SERVER's
/// ack still rides its faulted send path, so callers should retry on error.
Status SendControl(const std::string& host, uint16_t port,
                   const ControlMsg& msg, double timeout_seconds);

}  // namespace net
}  // namespace ms

#endif  // MODELSLICING_NET_CLIENT_H_
