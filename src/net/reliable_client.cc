#include "src/net/reliable_client.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace ms {
namespace net {

namespace {

/// Settled ids are remembered this long for late-reply classification.
constexpr double kForgetWindowSeconds = 5.0;

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

ReliableClient::ReliableClient(Options opts)
    : opts_(opts),
      wheel_(MonotonicSeconds(),
             opts.timer_tick_seconds > 0.0 ? opts.timer_tick_seconds : 0.005),
      jitter_state_(opts.seed ^ 0x9E3779B97F4A7C15ULL) {}

ReliableClient::~ReliableClient() { Stop(); }

Status ReliableClient::Start() {
  if (running_.exchange(true)) {
    return Status::FailedPrecondition("already started");
  }
  TryReconnect(MonotonicSeconds());  // best effort; maintenance retries
  maintenance_ = std::thread(&ReliableClient::MaintenanceLoop, this);
  return Status::OK();
}

void ReliableClient::Stop() {
  if (!running_.exchange(false)) return;
  maint_cv_.notify_all();
  if (maintenance_.joinable()) maintenance_.join();
  std::shared_ptr<WireClient> old;
  std::vector<uint64_t> unsettled;
  {
    std::lock_guard<std::mutex> lock(mu_);
    old = std::move(client_);
    for (const auto& kv : pending_) unsettled.push_back(kv.first);
  }
  old.reset();  // joins the reader thread; never under mu_
  // Settle whatever is left so the caller's ledger closes.
  for (uint64_t id : unsettled) SynthesizeFailure(id);
}

double ReliableClient::NextJitter() {
  return static_cast<double>(SplitMix64(&jitter_state_) >> 11) * 0x1.0p-53;
}

uint64_t ReliableClient::Submit(double deadline_seconds, DoneFn done,
                                std::vector<float> payload) {
  const double now = MonotonicSeconds();
  uint64_t id;
  std::shared_ptr<WireClient> client;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = next_id_++;
    PendingReq& p = pending_[id];
    p.done = std::move(done);
    p.deadline_seconds = deadline_seconds;
    p.budget = deadline_seconds > 0.0 ? deadline_seconds
                                      : opts_.no_deadline_timeout_seconds;
    p.start = now;
    p.payload = std::move(payload);
    wheel_.Add(now + p.budget + opts_.reply_grace_seconds,
               TimerItem{TimerKind::kSettle, id});
    client = client_;
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (client && conn_ok_.load(std::memory_order_acquire)) {
    SendPending(client, id, now);
  }
  return id;
}

void ReliableClient::SendPending(const std::shared_ptr<WireClient>& client,
                                 uint64_t id, double now) {
  RequestMsg msg;
  bool resend = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pending_.find(id);
    if (it == pending_.end()) return;
    PendingReq& p = it->second;
    if (p.sends >= opts_.max_send_attempts) return;  // retry budget spent
    const double remaining = p.start + p.budget - now;
    if (remaining <= 0.0) return;  // the settle timer owns it now
    resend = p.sends > 0;
    ++p.sends;
    msg.id = id;
    // Forward the REMAINING budget: a resent request can never overspend
    // its original deadline.
    msg.deadline_seconds = p.deadline_seconds > 0.0 ? remaining : 0.0;
    msg.payload = p.payload;
  }
  if (resend) resends_.fetch_add(1, std::memory_order_relaxed);
  // Failure is fine: the reconnect path or timeout synthesis recovers.
  (void)client->SendRequest(msg);
}

void ReliableClient::HandleReply(const ReplyMsg& msg) {
  PendingReq entry;
  bool found = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pending_.find(msg.id);
    if (it != pending_.end()) {
      entry = std::move(it->second);
      pending_.erase(it);
      found = true;
      settled_[msg.id] = true;  // settled by wire
      wheel_.Add(MonotonicSeconds() + kForgetWindowSeconds,
                 TimerItem{TimerKind::kForget, msg.id});
    } else {
      auto sit = settled_.find(msg.id);
      if (sit != settled_.end() && sit->second) {
        // A wire reply already settled this id: a true double-serve
        // escaping the server's dedup. The chaos bench gates this at zero.
        duplicates_.fetch_add(1, std::memory_order_relaxed);
      } else {
        // After local timeout synthesis (or beyond the forget window):
        // expected under armed faults, harmless.
        late_replies_.fetch_add(1, std::memory_order_relaxed);
      }
      return;
    }
  }
  (void)found;
  if (msg.admit != AdmitResult::kAccepted) {
    if (msg.admit == AdmitResult::kShedQueueFull) {
      shed_.fetch_add(1, std::memory_order_relaxed);
    } else {
      rejected_.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    switch (msg.outcome) {
      case RequestOutcome::kServed:
        served_.fetch_add(1, std::memory_order_relaxed);
        break;
      case RequestOutcome::kExpired:
        expired_.fetch_add(1, std::memory_order_relaxed);
        break;
      case RequestOutcome::kShedStop:
        shed_.fetch_add(1, std::memory_order_relaxed);
        break;
      case RequestOutcome::kFailed:
        failed_.fetch_add(1, std::memory_order_relaxed);
        break;
    }
  }
  if (entry.done) entry.done(msg);
}

void ReliableClient::SynthesizeFailure(uint64_t id) {
  PendingReq entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pending_.find(id);
    if (it == pending_.end()) return;  // a wire reply won the race
    entry = std::move(it->second);
    pending_.erase(it);
    settled_[id] = false;  // settled locally, not by wire
    wheel_.Add(MonotonicSeconds() + kForgetWindowSeconds,
               TimerItem{TimerKind::kForget, id});
  }
  failed_.fetch_add(1, std::memory_order_relaxed);
  synthesized_.fetch_add(1, std::memory_order_relaxed);
  ReplyMsg out;
  out.id = id;
  out.admit = AdmitResult::kAccepted;
  out.outcome = RequestOutcome::kFailed;
  if (entry.done) entry.done(out);
}

void ReliableClient::TryReconnect(double now) {
  std::shared_ptr<WireClient> old;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (now < next_reconnect_at_) return;
    old = std::move(client_);
  }
  old.reset();  // retire the dead client (joins its reader) outside mu_
  WireClient::Options copts;
  copts.connect_timeout_seconds = opts_.connect_timeout_seconds;
  copts.send_timeout_seconds = opts_.send_timeout_seconds;
  auto fresh = std::make_shared<WireClient>(copts);
  fresh->set_on_reply([this](const ReplyMsg& msg) { HandleReply(msg); });
  fresh->set_on_disconnect(
      [this] { conn_ok_.store(false, std::memory_order_release); });
  if (!fresh->Connect(opts_.host, opts_.port).ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    backoff_ = backoff_ <= 0.0
                   ? opts_.backoff_min_seconds
                   : std::min(backoff_ * 2.0, opts_.backoff_max_seconds);
    // Jittered backoff: a fleet of clients must not reconnect in lockstep.
    next_reconnect_at_ = now + backoff_ * (0.5 + NextJitter());
    return;
  }
  bool was_connected_before;
  std::vector<uint64_t> ids;
  {
    std::lock_guard<std::mutex> lock(mu_);
    was_connected_before = reconnects_.load() > 0 || backoff_ > 0.0;
    client_ = fresh;
    backoff_ = 0.0;
    next_reconnect_at_ = 0.0;
    for (const auto& kv : pending_) ids.push_back(kv.first);
  }
  conn_ok_.store(true, std::memory_order_release);
  if (was_connected_before || !ids.empty()) {
    reconnects_.fetch_add(1, std::memory_order_relaxed);
  }
  // Resend whatever is still unsettled, within each request's budget.
  for (uint64_t id : ids) SendPending(fresh, id, now);
}

void ReliableClient::MaintenanceLoop() {
  while (running_.load(std::memory_order_relaxed)) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      maint_cv_.wait_for(
          lock, std::chrono::duration<double>(opts_.timer_tick_seconds),
          [this] { return !running_.load(); });
    }
    if (!running_.load()) break;
    const double now = MonotonicSeconds();
    std::vector<TimerItem> due;
    {
      std::lock_guard<std::mutex> lock(mu_);
      due = wheel_.Advance(now);
    }
    for (const TimerItem& item : due) {
      if (item.kind == TimerKind::kSettle) {
        SynthesizeFailure(item.id);
      } else {
        std::lock_guard<std::mutex> lock(mu_);
        settled_.erase(item.id);
      }
    }
    if (!conn_ok_.load(std::memory_order_acquire)) TryReconnect(now);
  }
}

bool ReliableClient::connected() const {
  return conn_ok_.load(std::memory_order_acquire);
}

size_t ReliableClient::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

ReliableClient::Stats ReliableClient::stats() const {
  Stats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.served = served_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.expired = expired_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.synthesized = synthesized_.load(std::memory_order_relaxed);
  s.duplicates = duplicates_.load(std::memory_order_relaxed);
  s.late_replies = late_replies_.load(std::memory_order_relaxed);
  s.reconnects = reconnects_.load(std::memory_order_relaxed);
  s.resends = resends_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace net
}  // namespace ms
