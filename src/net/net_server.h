// TCP frame server for the serving tier. Accepts connections, reassembles
// wire frames (src/net/wire.h) off the byte stream, and dispatches them to
// a WireService. On Linux the server runs a single epoll event loop over
// nonblocking sockets; elsewhere it falls back to one blocking reader
// thread per connection. Either way replies may be sent from ANY thread
// (the shard's batcher settles requests long after the read that admitted
// them), so each connection carries its own write lock.
//
// Corrupt input is answered, not ignored: recoverable corruption (CRC
// mismatch, unknown type, short payload, version mismatch) earns a
// kRejectedInvalid reply and the stream continues; unrecoverable corruption
// (bad magic, oversized length) earns the same reply followed by
// connection close.
#ifndef MODELSLICING_NET_NET_SERVER_H_
#define MODELSLICING_NET_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/net/socket.h"
#include "src/net/wire.h"
#include "src/util/status.h"

namespace ms {
namespace net {

/// \brief What a NetServer serves. Implemented by the shard frontend and
/// the router.
class WireService {
 public:
  virtual ~WireService() = default;

  /// Handles one kRequest frame. `reply` is thread-safe, may be invoked
  /// from any thread (immediately or once the request settles), and must
  /// be invoked exactly once; it is a no-op if the connection died first.
  virtual void OnRequest(const RequestMsg& msg,
                         std::function<void(const ReplyMsg&)> reply) = 0;

  /// Handles one kStats frame: returns the kStatsReply payload
  /// (EncodeStats of the current stats snapshot).
  virtual std::string OnStats() = 0;
};

class NetServer {
 public:
  struct Options {
    /// Honor kControl chaos-control frames (arm/disarm the process-local
    /// fault registry over the wire). Off by default: only bench/CI
    /// harnesses opt in (--chaos_control); a production server answers
    /// kControl with kRejectedInvalid like any other bad frame.
    bool allow_fault_control = false;
  };

  explicit NetServer(WireService* service);
  NetServer(WireService* service, Options options);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds `port` (0 = ephemeral) and starts the event loop.
  Status Start(uint16_t port);

  /// Stops accepting, closes every connection, joins the loop. Stop the
  /// backing SliceServer FIRST so in-flight requests settle and flush
  /// their terminal replies before the sockets go away.
  void Stop();

  uint16_t port() const { return port_; }
  int64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }
  /// Live connection count (slow-loris tests assert no leaks).
  size_t open_connections() const {
    std::lock_guard<std::mutex> lock(conns_mu_);
    return conns_.size();
  }

 private:
  struct Conn {
    explicit Conn(Socket s) : sock(std::move(s)) {}
    Socket sock;
    FrameDecoder decoder;
    std::mutex write_mu;
    /// Set under write_mu when the peer is gone; late replies become
    /// no-ops. The fd itself is closed by whichever side owns teardown
    /// (epoll loop / reader thread), never by a reply writer.
    bool closed = false;
  };

  /// Thread-safe framed write; marks the conn closed on send failure.
  void SendFrame(const std::shared_ptr<Conn>& conn, const std::string& frame);
  /// Dispatches one reassembled frame; returns false when the connection
  /// must be torn down (fatal stream corruption).
  bool HandleFrame(const std::shared_ptr<Conn>& conn, const Frame& frame);
  /// Runs the decoder over freshly read bytes; returns false on fatal.
  bool HandleBytes(const std::shared_ptr<Conn>& conn, const char* data,
                   size_t n);
  /// Marks closed + shuts down the socket so the read side unblocks.
  void MarkClosed(const std::shared_ptr<Conn>& conn);

#ifdef __linux__
  void EpollLoop();
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  ///< eventfd poked by Stop().
#else
  void AcceptLoop();
  void ReaderLoop(std::shared_ptr<Conn> conn);
  std::mutex readers_mu_;
  std::vector<std::thread> readers_;  ///< joined in Stop().
#endif

  WireService* service_;
  Options options_;
  Socket listener_;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread loop_;

  mutable std::mutex conns_mu_;
  std::unordered_map<int, std::shared_ptr<Conn>> conns_;

  std::atomic<int64_t> connections_accepted_{0};
};

}  // namespace net
}  // namespace ms

#endif  // MODELSLICING_NET_NET_SERVER_H_
