#include "src/net/client.h"

#include <cerrno>
#include <sys/socket.h>
#include <vector>

#include "src/util/fault.h"

namespace ms {
namespace net {

namespace {
constexpr size_t kReadChunk = 64 * 1024;
}

WireClient::~WireClient() { Close(); }

Status WireClient::Connect(const std::string& host, uint16_t port) {
  if (connected_.load()) return Status::FailedPrecondition("already connected");
  auto sock = TcpConnect(host, port, opts_.connect_timeout_seconds);
  if (!sock.ok()) return sock.status();
  sock_ = sock.MoveValueOrDie();
  // Periodic recv timeouts let the reader observe closing_.
  SetRecvTimeout(sock_.fd(), 0.2);
  closing_.store(false);
  disconnect_fired_.store(false);
  connected_.store(true, std::memory_order_release);
  reader_ = std::thread(&WireClient::ReaderLoop, this);
  return Status::OK();
}

void WireClient::Close() {
  closing_.store(true);
  if (sock_.valid()) ::shutdown(sock_.fd(), SHUT_RDWR);
  if (reader_.joinable()) reader_.join();
  connected_.store(false, std::memory_order_release);
  sock_.Close();
  // Unpark a stats waiter stranded by the teardown.
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_pending_ = false;
  }
  stats_cv_.notify_all();
}

void WireClient::NoteDisconnect() {
  connected_.store(false, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_pending_ = false;
  }
  stats_cv_.notify_all();
  if (!closing_.load() && !disconnect_fired_.exchange(true)) {
    if (on_disconnect_) on_disconnect_();
  }
}

Status WireClient::SendFrameLocked(const std::string& frame) {
  std::lock_guard<std::mutex> lock(write_mu_);
  if (!connected_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("not connected");
  }
  Status st = SendFrameBytes(sock_.fd(), frame.data(), frame.size(),
                             opts_.send_timeout_seconds);
  if (!st.ok()) {
    // Reader will notice the shutdown and fire on_disconnect.
    ::shutdown(sock_.fd(), SHUT_RDWR);
  }
  return st;
}

Status WireClient::SendRequest(const RequestMsg& msg) {
  return SendFrameLocked(EncodeRequest(msg));
}

Result<StatsMsg> WireClient::RequestStats(double timeout_seconds) {
  {
    std::unique_lock<std::mutex> lock(stats_mu_);
    // One outstanding poll at a time: a second caller waits for the slot.
    if (!stats_cv_.wait_for(
            lock, std::chrono::duration<double>(timeout_seconds),
            [this] { return !stats_pending_; })) {
      return Status::Internal("stats poll slot busy");
    }
    stats_pending_ = true;
    stats_ready_ = false;
  }
  std::string frame;
  EncodeFrame(FrameType::kStats, "", &frame);
  Status st = SendFrameLocked(frame);
  if (!st.ok()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_pending_ = false;
    return st;
  }
  std::unique_lock<std::mutex> lock(stats_mu_);
  const bool got = stats_cv_.wait_for(
      lock, std::chrono::duration<double>(timeout_seconds),
      [this] { return stats_ready_ || !connected_.load(); });
  const bool ready = stats_ready_;
  stats_pending_ = false;
  stats_ready_ = false;
  lock.unlock();
  stats_cv_.notify_all();
  if (!got || !ready) {
    return Status::Internal(got ? "disconnected during stats poll"
                                : "stats poll timeout");
  }
  return stats_value_;
}

Status SendControl(const std::string& host, uint16_t port,
                   const ControlMsg& msg, double timeout_seconds) {
  auto sock = TcpConnect(host, port, timeout_seconds);
  if (!sock.ok()) return sock.status();
  Socket s = sock.MoveValueOrDie();
  const std::string frame = EncodeControl(msg);
  MS_RETURN_NOT_OK(SendAll(s.fd(), frame.data(), frame.size(),
                           timeout_seconds));
  SetRecvTimeout(s.fd(), timeout_seconds);
  FrameDecoder decoder;
  char buf[512];
  for (;;) {
    Frame got;
    switch (decoder.Next(&got)) {
      case DecodeResult::kFrame: {
        if (got.type != FrameType::kReply) continue;
        ReplyMsg reply;
        MS_RETURN_NOT_OK(DecodeReply(got.payload, &reply));
        if (reply.id != msg.id) continue;  // stray frame; keep waiting.
        if (reply.admit != AdmitResult::kAccepted) {
          return Status::InvalidArgument(
              "control frame refused (bad spec, or server lacks "
              "--chaos_control)");
        }
        return Status::OK();
      }
      case DecodeResult::kNeedMore: {
        ssize_t r = ::recv(s.fd(), buf, sizeof(buf), 0);
        if (r > 0) {
          decoder.Feed(buf, static_cast<size_t>(r));
          continue;
        }
        if (r < 0 && errno == EINTR) continue;
        return Status::Internal("control ack timeout or peer closed");
      }
      case DecodeResult::kBadFrame:
        continue;
      case DecodeResult::kFatal:
        return Status::Internal("control ack stream corrupt");
    }
  }
}

void WireClient::ReaderLoop() {
  std::vector<char> buf(kReadChunk);
  FrameDecoder decoder;
  const int fd = sock_.fd();
  bool dead = false;
  while (!dead && !closing_.load(std::memory_order_relaxed)) {
    ssize_t r = ::recv(fd, buf.data(), buf.size(), 0);
    if (r == 0) {
      dead = true;
      break;
    }
    if (r < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      dead = true;
      break;
    }
    decoder.Feed(buf.data(), static_cast<size_t>(r));
    Frame frame;
    bool more = true;
    while (more) {
      switch (decoder.Next(&frame)) {
        case DecodeResult::kFrame:
          if (frame.type == FrameType::kReply) {
            // net.recv.blackhole on the reply direction: the reply frame
            // arrived but is never delivered; the sender's timeout layer
            // must settle the request.
            if (fault::Registry::Global().ShouldFire(
                    fault::kNetRecvBlackhole)) {
              break;
            }
            ReplyMsg reply;
            if (DecodeReply(frame.payload, &reply).ok() && on_reply_) {
              on_reply_(reply);
            }
          } else if (frame.type == FrameType::kStatsReply) {
            StatsMsg stats;
            if (DecodeStats(frame.payload, &stats).ok()) {
              std::lock_guard<std::mutex> lock(stats_mu_);
              if (stats_pending_) {
                stats_value_ = std::move(stats);
                stats_ready_ = true;
                stats_cv_.notify_all();
              }
            }
          }
          // Requests/stats polls arriving at a client are peer bugs; drop.
          break;
        case DecodeResult::kNeedMore:
          more = false;
          break;
        case DecodeResult::kBadFrame:
          break;  // tolerate isolated corruption on the reply stream.
        case DecodeResult::kFatal:
          dead = true;
          more = false;
          break;
      }
    }
  }
  NoteDisconnect();
}

}  // namespace net
}  // namespace ms
