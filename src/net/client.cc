#include "src/net/client.h"

#include <cerrno>
#include <sys/socket.h>
#include <vector>

namespace ms {
namespace net {

namespace {
constexpr size_t kReadChunk = 64 * 1024;
}

WireClient::~WireClient() { Close(); }

Status WireClient::Connect(const std::string& host, uint16_t port) {
  if (connected_.load()) return Status::FailedPrecondition("already connected");
  auto sock = TcpConnect(host, port, opts_.connect_timeout_seconds);
  if (!sock.ok()) return sock.status();
  sock_ = sock.MoveValueOrDie();
  // Periodic recv timeouts let the reader observe closing_.
  SetRecvTimeout(sock_.fd(), 0.2);
  closing_.store(false);
  disconnect_fired_.store(false);
  connected_.store(true, std::memory_order_release);
  reader_ = std::thread(&WireClient::ReaderLoop, this);
  return Status::OK();
}

void WireClient::Close() {
  closing_.store(true);
  if (sock_.valid()) ::shutdown(sock_.fd(), SHUT_RDWR);
  if (reader_.joinable()) reader_.join();
  connected_.store(false, std::memory_order_release);
  sock_.Close();
  // Unpark a stats waiter stranded by the teardown.
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_pending_ = false;
  }
  stats_cv_.notify_all();
}

void WireClient::NoteDisconnect() {
  connected_.store(false, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_pending_ = false;
  }
  stats_cv_.notify_all();
  if (!closing_.load() && !disconnect_fired_.exchange(true)) {
    if (on_disconnect_) on_disconnect_();
  }
}

Status WireClient::SendFrameLocked(const std::string& frame) {
  std::lock_guard<std::mutex> lock(write_mu_);
  if (!connected_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("not connected");
  }
  Status st = SendAll(sock_.fd(), frame.data(), frame.size(),
                      opts_.send_timeout_seconds);
  if (!st.ok()) {
    // Reader will notice the shutdown and fire on_disconnect.
    ::shutdown(sock_.fd(), SHUT_RDWR);
  }
  return st;
}

Status WireClient::SendRequest(const RequestMsg& msg) {
  return SendFrameLocked(EncodeRequest(msg));
}

Result<StatsMsg> WireClient::RequestStats(double timeout_seconds) {
  {
    std::unique_lock<std::mutex> lock(stats_mu_);
    // One outstanding poll at a time: a second caller waits for the slot.
    if (!stats_cv_.wait_for(
            lock, std::chrono::duration<double>(timeout_seconds),
            [this] { return !stats_pending_; })) {
      return Status::Internal("stats poll slot busy");
    }
    stats_pending_ = true;
    stats_ready_ = false;
  }
  std::string frame;
  EncodeFrame(FrameType::kStats, "", &frame);
  Status st = SendFrameLocked(frame);
  if (!st.ok()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_pending_ = false;
    return st;
  }
  std::unique_lock<std::mutex> lock(stats_mu_);
  const bool got = stats_cv_.wait_for(
      lock, std::chrono::duration<double>(timeout_seconds),
      [this] { return stats_ready_ || !connected_.load(); });
  const bool ready = stats_ready_;
  stats_pending_ = false;
  stats_ready_ = false;
  lock.unlock();
  stats_cv_.notify_all();
  if (!got || !ready) {
    return Status::Internal(got ? "disconnected during stats poll"
                                : "stats poll timeout");
  }
  return stats_value_;
}

void WireClient::ReaderLoop() {
  std::vector<char> buf(kReadChunk);
  FrameDecoder decoder;
  const int fd = sock_.fd();
  bool dead = false;
  while (!dead && !closing_.load(std::memory_order_relaxed)) {
    ssize_t r = ::recv(fd, buf.data(), buf.size(), 0);
    if (r == 0) {
      dead = true;
      break;
    }
    if (r < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      dead = true;
      break;
    }
    decoder.Feed(buf.data(), static_cast<size_t>(r));
    Frame frame;
    bool more = true;
    while (more) {
      switch (decoder.Next(&frame)) {
        case DecodeResult::kFrame:
          if (frame.type == FrameType::kReply) {
            ReplyMsg reply;
            if (DecodeReply(frame.payload, &reply).ok() && on_reply_) {
              on_reply_(reply);
            }
          } else if (frame.type == FrameType::kStatsReply) {
            StatsMsg stats;
            if (DecodeStats(frame.payload, &stats).ok()) {
              std::lock_guard<std::mutex> lock(stats_mu_);
              if (stats_pending_) {
                stats_value_ = std::move(stats);
                stats_ready_ = true;
                stats_cv_.notify_all();
              }
            }
          }
          // Requests/stats polls arriving at a client are peer bugs; drop.
          break;
        case DecodeResult::kNeedMore:
          more = false;
          break;
        case DecodeResult::kBadFrame:
          break;  // tolerate isolated corruption on the reply stream.
        case DecodeResult::kFatal:
          dead = true;
          more = false;
          break;
      }
    }
  }
  NoteDisconnect();
}

}  // namespace net
}  // namespace ms
