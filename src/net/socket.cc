#include "src/net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cstdlib>
#include <string>
#include <thread>

#include "src/util/fault.h"

namespace ms {
namespace net {

namespace {

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

bool ResolveHost(const std::string& host, in_addr* out) {
  std::string h = host;
  if (h.empty() || h == "localhost") h = "127.0.0.1";
  return inet_pton(AF_INET, h.c_str(), out) == 1;
}

timeval ToTimeval(double seconds) {
  if (seconds < 0) seconds = 0;
  timeval tv;
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec =
      static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) *
                               1e6);
  if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1;  // 0 == "no timeout"
  return tv;
}

}  // namespace

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Socket> TcpListen(uint16_t port, uint16_t* bound_port, int backlog) {
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) return Status::Internal(Errno("socket"));
  int one = 1;
  ::setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(s.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Status::Internal(Errno("bind"));
  }
  if (::listen(s.fd(), backlog) != 0) {
    return Status::Internal(Errno("listen"));
  }
  if (bound_port != nullptr) {
    sockaddr_in got;
    socklen_t len = sizeof(got);
    if (::getsockname(s.fd(), reinterpret_cast<sockaddr*>(&got), &len) != 0) {
      return Status::Internal(Errno("getsockname"));
    }
    *bound_port = ntohs(got.sin_port);
  }
  return s;
}

Result<Socket> TcpConnect(const std::string& host, uint16_t port,
                          double timeout_seconds) {
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (!ResolveHost(host, &addr.sin_addr)) {
    return Status::InvalidArgument("unresolvable host: " + host);
  }
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) return Status::Internal(Errno("socket"));
  // Nonblocking connect + poll gives us a real timeout; the default kernel
  // connect timeout is minutes, far beyond any serving deadline.
  Status st = SetNonBlocking(s.fd(), true);
  if (!st.ok()) return st;
  int rc = ::connect(s.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    return Status::Internal(Errno("connect"));
  }
  if (rc != 0) {
    pollfd pfd;
    pfd.fd = s.fd();
    pfd.events = POLLOUT;
    pfd.revents = 0;
    int timeout_ms = static_cast<int>(timeout_seconds * 1000.0);
    if (timeout_ms < 1) timeout_ms = 1;
    int pr = ::poll(&pfd, 1, timeout_ms);
    if (pr == 0) return Status::Internal("connect timeout");
    if (pr < 0) return Status::Internal(Errno("poll"));
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(s.fd(), SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
        err != 0) {
      errno = err != 0 ? err : errno;
      return Status::Internal(Errno("connect"));
    }
  }
  st = SetNonBlocking(s.fd(), false);
  if (!st.ok()) return st;
  SetNoDelay(s.fd());
  return s;
}

Socket TcpAccept(int listen_fd) {
  int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd >= 0) SetNoDelay(fd);
  return Socket(fd);
}

Status SetNonBlocking(int fd, bool nonblocking) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Status::Internal(Errno("fcntl(F_GETFL)"));
  if (nonblocking) {
    flags |= O_NONBLOCK;
  } else {
    flags &= ~O_NONBLOCK;
  }
  if (::fcntl(fd, F_SETFL, flags) < 0) {
    return Status::Internal(Errno("fcntl(F_SETFL)"));
  }
  return Status::OK();
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void SetSendTimeout(int fd, double seconds) {
  timeval tv = ToTimeval(seconds);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

void SetRecvTimeout(int fd, double seconds) {
  timeval tv = ToTimeval(seconds);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

Status SendAll(int fd, const char* data, size_t n, double timeout_seconds) {
  using Clock = std::chrono::steady_clock;
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(timeout_seconds));
  size_t off = 0;
  while (off < n) {
    ssize_t w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (w > 0) {
      off += static_cast<size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Socket buffer full (or SO_SNDTIMEO fired on a blocking fd): wait
      // for writability within the remaining budget instead of spinning.
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - Clock::now());
      if (left.count() <= 0) return Status::Internal("send timeout");
      pollfd pfd;
      pfd.fd = fd;
      pfd.events = POLLOUT;
      pfd.revents = 0;
      int pr = ::poll(&pfd, 1, static_cast<int>(left.count()));
      if (pr < 0 && errno != EINTR) return Status::Internal(Errno("poll"));
      if (pr == 0) return Status::Internal("send timeout");
      continue;
    }
    return Status::Internal(Errno("send"));
  }
  return Status::OK();
}

Status SendFrameBytes(int fd, const char* data, size_t n,
                      double timeout_seconds) {
  fault::Registry& faults = fault::Registry::Global();
  if (faults.armed_count() != 0) {
    if (faults.ShouldFire(fault::kNetSendDrop)) {
      // The frame silently vanishes; the caller believes it was sent.
      return Status::OK();
    }
    if (faults.ShouldFire(fault::kNetFrameTruncate)) {
      // Half a frame, then nothing: the peer's decoder desyncs at the next
      // frame boundary and goes kFatal.
      return SendAll(fd, data, n / 2, timeout_seconds);
    }
    if (faults.ShouldFire(fault::kNetSendSlow)) {
      const double total_delay = faults.Param(fault::kNetSendSlow, 0.05);
      constexpr size_t kChunk = 16;
      const size_t chunks = (n + kChunk - 1) / kChunk;
      const auto nap = std::chrono::duration<double>(
          chunks > 0 ? total_delay / static_cast<double>(chunks) : 0.0);
      for (size_t off = 0; off < n; off += kChunk) {
        std::this_thread::sleep_for(nap);
        const size_t len = n - off < kChunk ? n - off : kChunk;
        Status s = SendAll(fd, data + off, len, timeout_seconds);
        if (!s.ok()) return s;
      }
      return Status::OK();
    }
  }
  return SendAll(fd, data, n, timeout_seconds);
}

Result<std::pair<std::string, uint16_t>> ParseHostPort(
    const std::string& addr) {
  std::string host = "127.0.0.1";
  std::string port_str = addr;
  const size_t colon = addr.rfind(':');
  if (colon != std::string::npos) {
    if (colon > 0) host = addr.substr(0, colon);
    port_str = addr.substr(colon + 1);
  }
  if (port_str.empty()) {
    return Status::InvalidArgument("missing port in address: " + addr);
  }
  char* end = nullptr;
  const long port = std::strtol(port_str.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || port < 1 || port > 65535) {
    return Status::InvalidArgument("bad port in address: " + addr);
  }
  return std::make_pair(host, static_cast<uint16_t>(port));
}

}  // namespace net
}  // namespace ms
