#include "src/net/frontend.h"

#include <utility>

#include "src/obs/metrics.h"

namespace ms {
namespace net {

ShardFrontend::ShardFrontend(SliceServer* server, int64_t expected_payload)
    : server_(server), expected_payload_(expected_payload) {}

void ShardFrontend::OnRequest(const RequestMsg& msg,
                              std::function<void(const ReplyMsg&)> reply) {
  obs::MetricsRegistry::Global()
      .GetCounter("ms_net_shard_requests_total")
      ->Inc();
  if (expected_payload_ > 0 && !msg.payload.empty() &&
      static_cast<int64_t>(msg.payload.size()) != expected_payload_) {
    ReplyMsg out;
    out.id = msg.id;
    out.admit = AdmitResult::kRejectedInvalid;
    reply(out);
    return;
  }
  const uint64_t id = msg.id;
  auto reply_shared =
      std::make_shared<std::function<void(const ReplyMsg&)>>(std::move(reply));
  AdmitResult admit = server_->Submit(
      msg.deadline_seconds,
      [id, reply_shared](RequestOutcome outcome, double rate) {
        ReplyMsg out;
        out.id = id;
        out.admit = AdmitResult::kAccepted;
        out.outcome = outcome;
        out.rate = static_cast<float>(rate);
        (*reply_shared)(out);
      });
  if (admit != AdmitResult::kAccepted) {
    // Non-accepted admissions never fire the completion hook: the
    // synchronous AdmitResult is the request's whole story, so the
    // immediate reply below is the one and only reply.
    ReplyMsg out;
    out.id = id;
    out.admit = admit;
    (*reply_shared)(out);
  }
}

StatsMsg ShardFrontend::Snapshot() const {
  const ServerStats st = server_->stats();
  const ServingConfig& cfg = server_->serving_config();
  StatsMsg s;
  s.role = StatsRole::kShard;
  s.breaker_open = server_->breaker_open() ? 1 : 0;
  s.healthy_workers = static_cast<uint16_t>(server_->healthy_workers());
  s.total_workers = static_cast<uint16_t>(server_->num_workers());
  s.queue_depth = server_->queue_depth();
  s.queue_capacity = server_->queue_capacity();
  s.submitted = st.submitted;
  s.accepted = st.accepted;
  s.served = st.served;
  s.shed = st.shed;
  s.expired = st.expired;
  s.rejected = st.rejected;
  s.failed = st.failed;
  s.quarantined = st.quarantined;
  s.repaired = st.repaired;
  // Advertise the measured per-sample time when calibration ran, else the
  // configured guess — either way the router's latency model has a t.
  const double t = server_->calibrated_sample_seconds();
  s.calibrated_t = t > 0.0 ? t : cfg.full_sample_time;
  s.calibrated_t_int8 = server_->calibrated_sample_seconds_int8();
  s.tick_seconds = server_->tick_seconds();
  s.rates = cfg.lattice.rates();
  return s;
}

std::string ShardFrontend::OnStats() { return EncodeStats(Snapshot()); }

}  // namespace net
}  // namespace ms
