#include "src/net/router.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <utility>

#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"

namespace ms {
namespace net {

namespace {

obs::Counter* RouterCounter(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name);
}

}  // namespace

ShardRouter::ShardRouter(std::vector<std::string> shard_addrs,
                         RouterOptions opts)
    : opts_(opts) {
  for (const std::string& addr : shard_addrs) {
    auto shard = std::make_unique<Shard>(
        opts_.heartbeat_failures < 1 ? 1 : opts_.heartbeat_failures,
        opts_.heartbeat_seconds);
    auto parsed = ParseHostPort(addr);
    if (parsed.ok()) {
      shard->host = parsed.ValueOrDie().first;
      shard->port = parsed.ValueOrDie().second;
    } else {
      // Unresolvable address: the shard exists but can never connect, so
      // it simply never enters rotation.
      shard->host = addr;
      shard->port = 0;
    }
    shards_.push_back(std::move(shard));
  }
}

ShardRouter::~ShardRouter() { Stop(); }

Status ShardRouter::Start() {
  if (running_.exchange(true)) {
    return Status::FailedPrecondition("router already started");
  }
  HeartbeatOnce();  // best-effort initial connect + admit
  if (opts_.require_shard_at_start && num_up() == 0) {
    running_.store(false);
    return Status::Internal("no shard reachable at start");
  }
  heartbeat_ = std::thread(&ShardRouter::HeartbeatLoop, this);
  return Status::OK();
}

void ShardRouter::Stop() {
  if (!running_.exchange(false)) return;
  hb_cv_.notify_all();
  if (heartbeat_.joinable()) heartbeat_.join();
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard* shard = shards_[i].get();
    shard->up.store(false);
    std::shared_ptr<WireClient> old;
    {
      std::lock_guard<std::mutex> lock(shard->mu);
      old = std::move(shard->client);
    }
    old.reset();  // Close() joins the reader; no on_disconnect on local close
    FailPending(shard);
  }
}

void ShardRouter::HeartbeatLoop() {
  while (running_.load(std::memory_order_relaxed)) {
    {
      std::unique_lock<std::mutex> lock(hb_mu_);
      hb_cv_.wait_for(lock,
                      std::chrono::duration<double>(opts_.heartbeat_seconds),
                      [this] { return !running_.load(); });
    }
    if (!running_.load()) break;
    HeartbeatOnce();
  }
}

void ShardRouter::HeartbeatOnce() {
  for (size_t i = 0; i < shards_.size(); ++i) HeartbeatShard(i);
}

void ShardRouter::HeartbeatShard(size_t idx) {
  Shard* shard = shards_[idx].get();
  if (shard->port == 0) return;  // unresolvable address
  std::shared_ptr<WireClient> client;
  {
    std::lock_guard<std::mutex> lock(shard->mu);
    client = shard->client;
  }
  if (client && !client->connected()) {
    // The connection died since the last round; retire it (its reader has
    // already exited) and reconnect below. Never under shard->mu or
    // pending_mu: destruction joins the reader thread.
    {
      std::lock_guard<std::mutex> lock(shard->mu);
      if (shard->client == client) shard->client = nullptr;
    }
    client.reset();
  }
  if (!client) {
    WireClient::Options copts;
    copts.connect_timeout_seconds = opts_.connect_timeout_seconds;
    auto fresh = std::make_shared<WireClient>(copts);
    ShardRouter* self = this;
    fresh->set_on_reply([self, idx](const ReplyMsg& msg) {
      self->HandleShardReply(idx, msg);
    });
    fresh->set_on_disconnect([self, idx] { self->HandleShardDisconnect(idx); });
    if (!fresh->Connect(shard->host, shard->port).ok()) {
      shard->heartbeat_breaker.OnFailure();
      if (shard->up.load() && shard->heartbeat_breaker.open()) {
        DrainShard(idx, "connect_failed");
      }
      return;
    }
    {
      std::lock_guard<std::mutex> lock(shard->mu);
      shard->client = fresh;
    }
    client = std::move(fresh);
  }

  auto stats = client->RequestStats(opts_.heartbeat_timeout_seconds);
  if (!stats.ok()) {
    shard->heartbeat_breaker.OnFailure();
    if (shard->up.load() && shard->heartbeat_breaker.open()) {
      // Repeated heartbeat timeouts: treat the connection as wedged. Drop
      // it so outstanding requests fail fast instead of lingering.
      DrainShard(idx, "heartbeat_timeout");
      std::shared_ptr<WireClient> old;
      {
        std::lock_guard<std::mutex> lock(shard->mu);
        old = std::move(shard->client);
      }
      old.reset();
      FailPending(shard);
    }
    return;
  }

  const StatsMsg& s = stats.ValueOrDie();
  const bool remote_sick = s.breaker_open != 0 || s.healthy_workers == 0;
  {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->calibrated_t = s.calibrated_t;
    shard->calibrated_t_int8 = s.calibrated_t_int8;
    shard->tick_seconds = s.tick_seconds;
    shard->rates = s.rates;
    shard->remote_breaker_open = s.breaker_open != 0;
    shard->remote_healthy_workers = s.healthy_workers;
  }
  if (remote_sick) {
    // The shard answers but its own ladder is at the reject rung (breaker
    // open) or it has no healthy replica left: gossip folds that state
    // into OUR rotation. Keep the connection — in-flight requests may
    // still settle — but stop sending new ones.
    if (shard->up.load()) DrainShard(idx, "remote_breaker_open");
    return;
  }
  shard->heartbeat_breaker.OnSuccess();
  if (!shard->up.exchange(true)) {
    bool was_drained;
    {
      std::lock_guard<std::mutex> lock(shard->pending_mu);
      was_drained = shard->view.drains > 0;
      if (was_drained) ++shard->view.readmits;
    }
    if (was_drained) {
      readmits_.fetch_add(1, std::memory_order_relaxed);
      RouterCounter("ms_router_readmits_total")->Inc();
      obs::FlightRecorder::Global().Record(obs::FlightEventKind::kShardReadmit,
                                           "probe_ok",
                                           static_cast<int64_t>(idx));
    }
  }
}

void ShardRouter::DrainShard(size_t idx, const char* reason) {
  Shard* shard = shards_[idx].get();
  if (!shard->up.exchange(false)) return;
  {
    std::lock_guard<std::mutex> lock(shard->pending_mu);
    ++shard->view.drains;
  }
  drains_.fetch_add(1, std::memory_order_relaxed);
  RouterCounter("ms_router_drains_total")->Inc();
  obs::FlightRecorder::Global().Record(obs::FlightEventKind::kShardDown,
                                       reason, static_cast<int64_t>(idx));
  obs::FlightRecorder::Global().Trip("shard_down");
}

int64_t ShardRouter::FailPending(Shard* shard) {
  std::unordered_map<uint64_t, Pending> orphans;
  {
    std::lock_guard<std::mutex> lock(shard->pending_mu);
    orphans.swap(shard->pending);
    const int64_t n = static_cast<int64_t>(orphans.size());
    shard->view.outstanding -= n;
    shard->view.lost += n;
    shard->view.failed += n;
  }
  const int64_t n = static_cast<int64_t>(orphans.size());
  if (n > 0) {
    failed_.fetch_add(n, std::memory_order_relaxed);
    RouterCounter("ms_router_lost_total")->Inc(n);
  }
  for (auto& kv : orphans) {
    ReplyMsg out;
    out.id = kv.second.client_id;
    out.admit = AdmitResult::kAccepted;
    out.outcome = RequestOutcome::kFailed;
    kv.second.reply(out);
  }
  return n;
}

void ShardRouter::HandleShardDisconnect(size_t idx) {
  // Runs on the dying client's reader thread: flip the shard out of
  // rotation and fail its in-flight requests. The client object itself is
  // retired by the heartbeat thread (destroying it here would join the
  // thread we are running on).
  DrainShard(idx, "disconnect");
  FailPending(shards_[idx].get());
}

void ShardRouter::HandleShardReply(size_t idx, const ReplyMsg& msg) {
  Shard* shard = shards_[idx].get();
  Pending pending;
  {
    std::lock_guard<std::mutex> lock(shard->pending_mu);
    auto it = shard->pending.find(msg.id);
    if (it == shard->pending.end()) return;  // settled as lost already
    pending = std::move(it->second);
    shard->pending.erase(it);
    --shard->view.outstanding;
    if (msg.admit != AdmitResult::kAccepted) {
      if (msg.admit == AdmitResult::kShedQueueFull) {
        ++shard->view.shed;
      } else {
        ++shard->view.rejected;
      }
    } else {
      switch (msg.outcome) {
        case RequestOutcome::kServed: ++shard->view.served; break;
        case RequestOutcome::kExpired: ++shard->view.expired; break;
        case RequestOutcome::kShedStop: ++shard->view.shed; break;
        case RequestOutcome::kFailed: ++shard->view.failed; break;
      }
    }
  }
  if (msg.admit != AdmitResult::kAccepted) {
    if (msg.admit == AdmitResult::kShedQueueFull) {
      shed_.fetch_add(1, std::memory_order_relaxed);
    } else {
      rejected_.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    switch (msg.outcome) {
      case RequestOutcome::kServed:
        served_.fetch_add(1, std::memory_order_relaxed);
        break;
      case RequestOutcome::kExpired:
        expired_.fetch_add(1, std::memory_order_relaxed);
        break;
      case RequestOutcome::kShedStop:
        shed_.fetch_add(1, std::memory_order_relaxed);
        break;
      case RequestOutcome::kFailed:
        failed_.fetch_add(1, std::memory_order_relaxed);
        break;
    }
  }
  ReplyMsg out = msg;
  out.id = pending.client_id;
  pending.reply(out);
}

int ShardRouter::PickShard(double deadline_seconds) {
  int best = -1;
  double best_rate = -1.0;
  int64_t best_outstanding = std::numeric_limits<int64_t>::max();
  bool any_up = false;
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard* shard = shards_[i].get();
    if (!shard->up.load(std::memory_order_relaxed)) continue;
    any_up = true;
    int64_t outstanding;
    {
      std::lock_guard<std::mutex> lock(shard->pending_mu);
      outstanding = shard->view.outstanding;
    }
    if (outstanding >= opts_.max_outstanding) continue;
    // Score: largest advertised rate whose estimated latency meets the
    // deadline (0 when none does, or when there is no deadline — then the
    // tie-break below degenerates to join-shortest-queue).
    double rate = 0.0;
    if (deadline_seconds > 0.0) {
      std::lock_guard<std::mutex> lock(shard->mu);
      // Cheapest cost column the shard advertises: one that can drop to
      // int8 is deadline-feasible at rates its fp32 t alone would rule out.
      const double t_min =
          shard->calibrated_t_int8 > 0.0
              ? std::min(shard->calibrated_t, shard->calibrated_t_int8)
              : shard->calibrated_t;
      for (auto it = shard->rates.rbegin(); it != shard->rates.rend(); ++it) {
        const double est = shard->tick_seconds + (*it) * (*it) * t_min;
        if (est <= deadline_seconds) {
          rate = *it;
          break;
        }
      }
    }
    if (rate > best_rate + 1e-9 ||
        (rate > best_rate - 1e-9 && outstanding < best_outstanding)) {
      best = static_cast<int>(i);
      best_rate = rate;
      best_outstanding = outstanding;
    }
  }
  if (best < 0) return any_up ? -2 : -1;  // -2: all candidates at cap
  return best;
}

void ShardRouter::OnRequest(const RequestMsg& msg,
                            std::function<void(const ReplyMsg&)> reply) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  RouterCounter("ms_router_requests_total")->Inc();
  const int pick = PickShard(msg.deadline_seconds);
  if (pick < 0) {
    ReplyMsg out;
    out.id = msg.id;
    if (pick == -2) {
      // Every in-rotation shard is at its outstanding cap: router-side
      // shed, the cluster analogue of a full RequestQueue.
      out.admit = AdmitResult::kShedQueueFull;
      shed_.fetch_add(1, std::memory_order_relaxed);
    } else {
      out.admit = AdmitResult::kRejectedClosed;
      rejected_.fetch_add(1, std::memory_order_relaxed);
    }
    reply(out);
    return;
  }
  Shard* shard = shards_[static_cast<size_t>(pick)].get();
  std::shared_ptr<WireClient> client;
  {
    std::lock_guard<std::mutex> lock(shard->mu);
    client = shard->client;
  }
  if (!client) {
    ReplyMsg out;
    out.id = msg.id;
    out.admit = AdmitResult::kRejectedClosed;
    rejected_.fetch_add(1, std::memory_order_relaxed);
    reply(out);
    return;
  }
  uint64_t rid;
  {
    std::lock_guard<std::mutex> lock(shard->pending_mu);
    rid = shard->next_id++;
    Pending& p = shard->pending[rid];
    p.reply = std::move(reply);
    p.client_id = msg.id;
    ++shard->view.forwarded;
    ++shard->view.outstanding;
  }
  RequestMsg fwd = msg;
  fwd.id = rid;
  Status st = client->SendRequest(fwd);
  if (!st.ok()) {
    // The send never reached the shard; retract the pending entry (unless
    // a racing disconnect already failed it) and reject to the client.
    Pending orphan;
    bool retracted = false;
    {
      std::lock_guard<std::mutex> lock(shard->pending_mu);
      auto it = shard->pending.find(rid);
      if (it != shard->pending.end()) {
        orphan = std::move(it->second);
        shard->pending.erase(it);
        --shard->view.outstanding;
        ++shard->view.rejected;
        retracted = true;
      }
    }
    if (retracted) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      ReplyMsg out;
      out.id = orphan.client_id;
      out.admit = AdmitResult::kRejectedClosed;
      orphan.reply(out);
    }
  }
}

StatsMsg ShardRouter::Snapshot() const {
  StatsMsg s;
  s.role = StatsRole::kRouter;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.accepted = s.submitted;
  s.served = served_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.expired = expired_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.healthy_workers = static_cast<uint16_t>(num_up());
  s.total_workers = static_cast<uint16_t>(shards_.size());
  for (const auto& shard_ptr : shards_) {
    Shard* shard = shard_ptr.get();
    ShardView view;
    {
      std::lock_guard<std::mutex> lock(shard->pending_mu);
      view = shard->view;
    }
    view.up = shard->up.load(std::memory_order_relaxed) ? 1 : 0;
    s.shards.push_back(view);
  }
  return s;
}

std::string ShardRouter::OnStats() { return EncodeStats(Snapshot()); }

int ShardRouter::num_up() const {
  int n = 0;
  for (const auto& shard : shards_) {
    if (shard->up.load(std::memory_order_relaxed)) ++n;
  }
  return n;
}

int64_t ShardRouter::total_readmits() const {
  return readmits_.load(std::memory_order_relaxed);
}

int64_t ShardRouter::total_drains() const {
  return drains_.load(std::memory_order_relaxed);
}

}  // namespace net
}  // namespace ms
