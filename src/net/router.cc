#include "src/net/router.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <utility>

#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/util/fault.h"

namespace ms {
namespace net {

namespace {

constexpr size_t kLatencyRingSize = 512;
/// A second attempt is pointless below this remaining budget.
constexpr double kMinRerouteBudget = 0.005;

obs::Counter* RouterCounter(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name);
}

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ShardRouter::ShardRouter(std::vector<std::string> shard_addrs,
                         RouterOptions opts)
    : opts_(opts),
      wheel_(MonotonicSeconds(),
             opts.timer_tick_seconds > 0.0 ? opts.timer_tick_seconds : 0.005),
      lat_ring_(kLatencyRingSize, 0.0) {
  for (const std::string& addr : shard_addrs) {
    auto shard = std::make_unique<Shard>(
        opts_.heartbeat_failures < 1 ? 1 : opts_.heartbeat_failures,
        opts_.heartbeat_seconds);
    auto parsed = ParseHostPort(addr);
    if (parsed.ok()) {
      shard->host = parsed.ValueOrDie().first;
      shard->port = parsed.ValueOrDie().second;
    } else {
      // Unresolvable address: the shard exists but can never connect, so
      // it simply never enters rotation.
      shard->host = addr;
      shard->port = 0;
    }
    shards_.push_back(std::move(shard));
  }
}

ShardRouter::~ShardRouter() { Stop(); }

Status ShardRouter::Start() {
  if (running_.exchange(true)) {
    return Status::FailedPrecondition("router already started");
  }
  HeartbeatOnce();  // best-effort initial connect + admit
  if (opts_.require_shard_at_start && num_up() == 0) {
    running_.store(false);
    return Status::Internal("no shard reachable at start");
  }
  heartbeat_ = std::thread(&ShardRouter::HeartbeatLoop, this);
  timer_ = std::thread(&ShardRouter::TimerLoop, this);
  return Status::OK();
}

void ShardRouter::Stop() {
  if (!running_.exchange(false)) return;
  hb_cv_.notify_all();
  timer_cv_.notify_all();
  if (heartbeat_.joinable()) heartbeat_.join();
  if (timer_.joinable()) timer_.join();
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard* shard = shards_[i].get();
    shard->up.store(false);
    std::shared_ptr<WireClient> old;
    {
      std::lock_guard<std::mutex> lock(shard->mu);
      old = std::move(shard->client);
    }
    old.reset();  // Close() joins the reader; no on_disconnect on local close
    FailPending(i);
  }
}

void ShardRouter::HeartbeatLoop() {
  while (running_.load(std::memory_order_relaxed)) {
    {
      std::unique_lock<std::mutex> lock(hb_mu_);
      hb_cv_.wait_for(lock,
                      std::chrono::duration<double>(opts_.heartbeat_seconds),
                      [this] { return !running_.load(); });
    }
    if (!running_.load()) break;
    HeartbeatOnce();
  }
}

void ShardRouter::HeartbeatOnce() {
  for (size_t i = 0; i < shards_.size(); ++i) HeartbeatShard(i);
}

void ShardRouter::HeartbeatShard(size_t idx) {
  Shard* shard = shards_[idx].get();
  if (shard->port == 0) return;  // unresolvable address
  // net.heartbeat.skip: this gossip round is "lost" for this shard — its
  // advertised calibration and health go stale by one period, exactly like
  // a dropped UDP gossip packet would.
  if (fault::Registry::Global().ShouldFire(fault::kNetHeartbeatSkip)) return;
  std::shared_ptr<WireClient> client;
  {
    std::lock_guard<std::mutex> lock(shard->mu);
    client = shard->client;
  }
  if (client && !client->connected()) {
    // The connection died since the last round; retire it (its reader has
    // already exited) and reconnect below. Never under shard->mu or
    // pending_mu: destruction joins the reader thread.
    {
      std::lock_guard<std::mutex> lock(shard->mu);
      if (shard->client == client) shard->client = nullptr;
    }
    client.reset();
  }
  if (!client) {
    WireClient::Options copts;
    copts.connect_timeout_seconds = opts_.connect_timeout_seconds;
    auto fresh = std::make_shared<WireClient>(copts);
    ShardRouter* self = this;
    fresh->set_on_reply([self, idx](const ReplyMsg& msg) {
      self->HandleShardReply(idx, msg);
    });
    fresh->set_on_disconnect([self, idx] { self->HandleShardDisconnect(idx); });
    if (!fresh->Connect(shard->host, shard->port).ok()) {
      shard->heartbeat_breaker.OnFailure();
      if (shard->up.load() && shard->heartbeat_breaker.open()) {
        DrainShard(idx, "connect_failed");
      }
      return;
    }
    {
      std::lock_guard<std::mutex> lock(shard->mu);
      shard->client = fresh;
    }
    client = std::move(fresh);
  }

  auto stats = client->RequestStats(opts_.heartbeat_timeout_seconds);
  if (!stats.ok()) {
    shard->heartbeat_breaker.OnFailure();
    if (shard->up.load() && shard->heartbeat_breaker.open()) {
      // Repeated heartbeat timeouts: treat the connection as wedged. Drop
      // it so outstanding requests fail fast instead of lingering.
      DrainShard(idx, "heartbeat_timeout");
      std::shared_ptr<WireClient> old;
      {
        std::lock_guard<std::mutex> lock(shard->mu);
        old = std::move(shard->client);
      }
      old.reset();
      FailPending(idx);
    }
    return;
  }

  const StatsMsg& s = stats.ValueOrDie();
  const bool remote_sick = s.breaker_open != 0 || s.healthy_workers == 0;
  {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->calibrated_t = s.calibrated_t;
    shard->calibrated_t_int8 = s.calibrated_t_int8;
    shard->tick_seconds = s.tick_seconds;
    shard->rates = s.rates;
    shard->remote_breaker_open = s.breaker_open != 0;
    shard->remote_healthy_workers = s.healthy_workers;
  }
  if (remote_sick) {
    // The shard answers but its own ladder is at the reject rung (breaker
    // open) or it has no healthy replica left: gossip folds that state
    // into OUR rotation. Keep the connection — in-flight requests may
    // still settle — but stop sending new ones.
    if (shard->up.load()) DrainShard(idx, "remote_breaker_open");
    return;
  }
  shard->heartbeat_breaker.OnSuccess();
  if (!shard->up.exchange(true)) {
    bool was_drained;
    {
      std::lock_guard<std::mutex> lock(shard->pending_mu);
      was_drained = shard->view.drains > 0;
      if (was_drained) ++shard->view.readmits;
    }
    if (was_drained) {
      readmits_.fetch_add(1, std::memory_order_relaxed);
      RouterCounter("ms_router_readmits_total")->Inc();
      obs::FlightRecorder::Global().Record(obs::FlightEventKind::kShardReadmit,
                                           "probe_ok",
                                           static_cast<int64_t>(idx));
    }
  }
}

void ShardRouter::DrainShard(size_t idx, const char* reason) {
  Shard* shard = shards_[idx].get();
  if (!shard->up.exchange(false)) return;
  {
    std::lock_guard<std::mutex> lock(shard->pending_mu);
    ++shard->view.drains;
  }
  drains_.fetch_add(1, std::memory_order_relaxed);
  RouterCounter("ms_router_drains_total")->Inc();
  obs::FlightRecorder::Global().Record(obs::FlightEventKind::kShardDown,
                                       reason, static_cast<int64_t>(idx));
  obs::FlightRecorder::Global().Trip("shard_down");
}

void ShardRouter::DecOutstandingLocked(Shard* shard) {
  if (shard->view.outstanding > 0) {
    --shard->view.outstanding;
  } else {
    // A late reply raced FailPending's orphan swap (or a timer GC): the
    // entry was accounted gone already. Count the miss, never go negative.
    RouterCounter("ms_router_outstanding_underflow_total")->Inc();
  }
}

void ShardRouter::SettleFailed(const std::shared_ptr<Request>& req) {
  failed_.fetch_add(1, std::memory_order_relaxed);
  ReplyMsg out;
  out.id = req->client_id;
  out.admit = AdmitResult::kAccepted;
  out.outcome = RequestOutcome::kFailed;
  req->reply(out);
}

int64_t ShardRouter::FailPending(size_t idx) {
  Shard* shard = shards_[idx].get();
  std::unordered_map<uint64_t, Pending> orphans;
  {
    std::lock_guard<std::mutex> lock(shard->pending_mu);
    orphans.swap(shard->pending);
    const int64_t n = static_cast<int64_t>(orphans.size());
    for (int64_t i = 0; i < n; ++i) DecOutstandingLocked(shard);
    shard->view.lost += n;
  }
  const int64_t n = static_cast<int64_t>(orphans.size());
  if (n > 0) RouterCounter("ms_router_lost_total")->Inc(n);
  const double now = MonotonicSeconds();
  for (auto& kv : orphans) {
    const std::shared_ptr<Request>& req = kv.second.req;
    const int prev_live = req->live.fetch_sub(1, std::memory_order_acq_rel);
    if (prev_live > 1) continue;  // a sibling attempt is still in flight
    if (req->settled.load(std::memory_order_acquire)) continue;
    // Last attempt died with the shard: spend the one-shot second attempt
    // re-routing instead of failing, when budget remains.
    if (LaunchSecondAttempt(req, static_cast<int>(idx),
                            AttemptKind::kFailover, now)) {
      continue;
    }
    if (!req->settled.exchange(true)) {
      std::lock_guard<std::mutex> lock(shard->pending_mu);
      ++shard->view.failed;
    } else {
      continue;
    }
    SettleFailed(req);
  }
  return n;
}

bool ShardRouter::LaunchSecondAttempt(const std::shared_ptr<Request>& req,
                                      int exclude_shard, AttemptKind kind,
                                      double now) {
  if (!running_.load(std::memory_order_relaxed)) return false;
  if (kind == AttemptKind::kFailover && !opts_.failover) return false;
  if (req->effective_budget <= 0.0) return false;
  const double remaining = req->start + req->effective_budget - now;
  if (remaining <= kMinRerouteBudget) return false;
  int expected = 1;
  if (!req->attempts.compare_exchange_strong(expected, 2)) return false;
  // Forward the REMAINING budget (0 stays "no deadline"): the second
  // shard's scheduler sees the truncated budget and picks a lower rate.
  const double wire_deadline = req->deadline_seconds > 0.0 ? remaining : 0.0;
  const int pick = PickShard(wire_deadline, exclude_shard);
  if (pick < 0) return false;
  if (!ForwardAttempt(req, pick, wire_deadline, kind, now)) return false;
  if (kind == AttemptKind::kHedge) {
    hedges_.fetch_add(1, std::memory_order_relaxed);
    RouterCounter("ms_router_hedge_attempts_total")->Inc();
    obs::FlightRecorder::Global().Record(
        obs::FlightEventKind::kHedge, "hedge",
        static_cast<int64_t>(req->client_id), static_cast<int64_t>(pick));
  } else {
    failovers_.fetch_add(1, std::memory_order_relaxed);
    RouterCounter("ms_router_failovers_total")->Inc();
    obs::FlightRecorder::Global().Record(
        obs::FlightEventKind::kFailover, "failover",
        static_cast<int64_t>(req->client_id), static_cast<int64_t>(pick));
  }
  return true;
}

void ShardRouter::HandleShardDisconnect(size_t idx) {
  // Runs on the dying client's reader thread: flip the shard out of
  // rotation and fail/re-route its in-flight requests. The client object
  // itself is retired by the heartbeat thread (destroying it here would
  // join the thread we are running on).
  DrainShard(idx, "disconnect");
  FailPending(idx);
}

void ShardRouter::HandleShardReply(size_t idx, const ReplyMsg& msg) {
  Shard* shard = shards_[idx].get();
  Pending entry;
  {
    std::lock_guard<std::mutex> lock(shard->pending_mu);
    auto it = shard->pending.find(msg.id);
    if (it == shard->pending.end()) return;  // settled/GCed already
    entry = std::move(it->second);
    shard->pending.erase(it);
    DecOutstandingLocked(shard);
    // Attempt-level view: every reply counts here, dedup or not, so the
    // per-shard ledger reconciles against the shard's own ServerStats.
    if (msg.admit != AdmitResult::kAccepted) {
      if (msg.admit == AdmitResult::kShedQueueFull) {
        ++shard->view.shed;
      } else {
        ++shard->view.rejected;
      }
    } else {
      switch (msg.outcome) {
        case RequestOutcome::kServed: ++shard->view.served; break;
        case RequestOutcome::kExpired: ++shard->view.expired; break;
        case RequestOutcome::kShedStop: ++shard->view.shed; break;
        case RequestOutcome::kFailed: ++shard->view.failed; break;
      }
    }
  }
  const std::shared_ptr<Request> req = entry.req;
  const int prev_live = req->live.fetch_sub(1, std::memory_order_acq_rel);
  const bool positive = msg.admit == AdmitResult::kAccepted &&
                        msg.outcome == RequestOutcome::kServed;
  if (!positive && prev_live > 1 &&
      !req->settled.load(std::memory_order_acquire)) {
    // Negative-verdict suppression: a sibling attempt is still in flight,
    // so drop this shed/reject/expired/failed verdict and let the sibling
    // (or the settle timer) decide. A rescue attempt must never make the
    // outcome worse — e.g. its instant queue-full shed settling a request
    // the primary shard is about to serve.
    RouterCounter("ms_router_suppressed_negative_total")->Inc();
    return;
  }
  if (req->settled.exchange(true)) {
    // First-reply-wins dedup: the sibling attempt already settled the
    // client. This reply is dropped — never double-counted, never
    // forwarded.
    dup_replies_.fetch_add(1, std::memory_order_relaxed);
    RouterCounter("ms_router_dup_replies_total")->Inc();
    return;
  }
  if (msg.admit != AdmitResult::kAccepted) {
    if (msg.admit == AdmitResult::kShedQueueFull) {
      shed_.fetch_add(1, std::memory_order_relaxed);
    } else {
      rejected_.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    switch (msg.outcome) {
      case RequestOutcome::kServed:
        served_.fetch_add(1, std::memory_order_relaxed);
        RecordAttemptLatency(MonotonicSeconds() - entry.sent_at);
        break;
      case RequestOutcome::kExpired:
        expired_.fetch_add(1, std::memory_order_relaxed);
        break;
      case RequestOutcome::kShedStop:
        shed_.fetch_add(1, std::memory_order_relaxed);
        break;
      case RequestOutcome::kFailed:
        failed_.fetch_add(1, std::memory_order_relaxed);
        break;
    }
  }
  if (entry.kind == AttemptKind::kHedge) {
    hedge_wins_.fetch_add(1, std::memory_order_relaxed);
    RouterCounter("ms_router_hedge_wins_total")->Inc();
  } else if (entry.kind == AttemptKind::kFailover) {
    failover_wins_.fetch_add(1, std::memory_order_relaxed);
  }
  ReplyMsg out = msg;
  out.id = req->client_id;
  req->reply(out);
}

int ShardRouter::PickShard(double deadline_seconds, int exclude) {
  int best = -1;
  double best_rate = -1.0;
  int64_t best_outstanding = std::numeric_limits<int64_t>::max();
  bool any_up = false;
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (exclude >= 0 && i == static_cast<size_t>(exclude)) continue;
    Shard* shard = shards_[i].get();
    if (!shard->up.load(std::memory_order_relaxed)) continue;
    any_up = true;
    int64_t outstanding;
    {
      std::lock_guard<std::mutex> lock(shard->pending_mu);
      outstanding = shard->view.outstanding;
    }
    if (outstanding >= opts_.max_outstanding) continue;
    // Score: largest advertised rate whose estimated latency meets the
    // deadline (0 when none does, or when there is no deadline — then the
    // tie-break below degenerates to join-shortest-queue).
    double rate = 0.0;
    if (deadline_seconds > 0.0) {
      std::lock_guard<std::mutex> lock(shard->mu);
      // Cheapest cost column the shard advertises: one that can drop to
      // int8 is deadline-feasible at rates its fp32 t alone would rule out.
      const double t_min =
          shard->calibrated_t_int8 > 0.0
              ? std::min(shard->calibrated_t, shard->calibrated_t_int8)
              : shard->calibrated_t;
      for (auto it = shard->rates.rbegin(); it != shard->rates.rend(); ++it) {
        const double est = shard->tick_seconds + (*it) * (*it) * t_min;
        if (est <= deadline_seconds) {
          rate = *it;
          break;
        }
      }
    }
    if (rate > best_rate + 1e-9 ||
        (rate > best_rate - 1e-9 && outstanding < best_outstanding)) {
      best = static_cast<int>(i);
      best_rate = rate;
      best_outstanding = outstanding;
    }
  }
  if (best < 0) return any_up ? -2 : -1;  // -2: all candidates at cap
  return best;
}

bool ShardRouter::ForwardAttempt(const std::shared_ptr<Request>& req,
                                 int shard_idx, double wire_deadline,
                                 AttemptKind kind, double now) {
  Shard* shard = shards_[static_cast<size_t>(shard_idx)].get();
  std::shared_ptr<WireClient> client;
  {
    std::lock_guard<std::mutex> lock(shard->mu);
    client = shard->client;
  }
  if (!client) {
    if (kind == AttemptKind::kPrimary &&
        !req->settled.exchange(true)) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      ReplyMsg out;
      out.id = req->client_id;
      out.admit = AdmitResult::kRejectedClosed;
      req->reply(out);
    }
    return false;
  }
  const uint64_t rid = next_rid_.fetch_add(1, std::memory_order_relaxed);
  req->live.fetch_add(1, std::memory_order_acq_rel);
  {
    std::lock_guard<std::mutex> lock(shard->pending_mu);
    Pending& p = shard->pending[rid];
    p.req = req;
    p.kind = kind;
    p.sent_at = now;
    ++shard->view.forwarded;
    ++shard->view.outstanding;
    if (kind == AttemptKind::kFailover) ++shard->view.failovers;
    if (kind == AttemptKind::kHedge) ++shard->view.hedges;
  }
  RequestMsg fwd;
  fwd.id = rid;
  fwd.deadline_seconds = wire_deadline;
  fwd.payload = req->payload;
  Status st = client->SendRequest(fwd);
  if (!st.ok()) {
    // The send never reached the shard; retract the pending entry (unless
    // a racing disconnect already orphaned it, in which case FailPending
    // owns the settling).
    bool retracted = false;
    {
      std::lock_guard<std::mutex> lock(shard->pending_mu);
      auto it = shard->pending.find(rid);
      if (it != shard->pending.end()) {
        shard->pending.erase(it);
        DecOutstandingLocked(shard);
        ++shard->view.rejected;
        retracted = true;
      }
    }
    if (retracted) {
      const int prev_live = req->live.fetch_sub(1, std::memory_order_acq_rel);
      if (kind == AttemptKind::kPrimary) {
        if (!req->settled.exchange(true)) {
          rejected_.fetch_add(1, std::memory_order_relaxed);
          ReplyMsg out;
          out.id = req->client_id;
          out.admit = AdmitResult::kRejectedClosed;
          req->reply(out);
        }
      } else if (prev_live <= 1 && !req->settled.exchange(true)) {
        SettleFailed(req);
      }
    }
    return false;
  }
  if (req->effective_budget > 0.0) {
    // Settle timer: bounded worst-case client latency even when every
    // attempt is blackholed.
    ScheduleTimer(
        req->start + req->effective_budget + opts_.reply_grace_seconds,
        TimerItem{TimerKind::kSettle, static_cast<uint32_t>(shard_idx), rid});
    if (kind == AttemptKind::kPrimary && shards_.size() > 1) {
      if (opts_.hedge) {
        ScheduleTimer(
            req->start + HedgeDelay(req->effective_budget),
            TimerItem{TimerKind::kHedge, static_cast<uint32_t>(shard_idx),
                      rid});
      }
      if (opts_.failover) {
        ScheduleTimer(
            req->start + opts_.failover_fraction * req->effective_budget,
            TimerItem{TimerKind::kFailover, static_cast<uint32_t>(shard_idx),
                      rid});
      }
    }
  }
  return true;
}

void ShardRouter::OnRequest(const RequestMsg& msg,
                            std::function<void(const ReplyMsg&)> reply) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  RouterCounter("ms_router_requests_total")->Inc();
  const int pick = PickShard(msg.deadline_seconds);
  if (pick < 0) {
    ReplyMsg out;
    out.id = msg.id;
    if (pick == -2) {
      // Every in-rotation shard is at its outstanding cap: router-side
      // shed, the cluster analogue of a full RequestQueue.
      out.admit = AdmitResult::kShedQueueFull;
      shed_.fetch_add(1, std::memory_order_relaxed);
    } else {
      out.admit = AdmitResult::kRejectedClosed;
      rejected_.fetch_add(1, std::memory_order_relaxed);
    }
    reply(out);
    return;
  }
  auto req = std::make_shared<Request>();
  req->reply = std::move(reply);
  req->client_id = msg.id;
  req->deadline_seconds = msg.deadline_seconds;
  req->effective_budget = msg.deadline_seconds > 0.0
                              ? msg.deadline_seconds
                              : opts_.no_deadline_timeout_seconds;
  req->start = MonotonicSeconds();
  req->payload = msg.payload;
  ForwardAttempt(req, pick, msg.deadline_seconds, AttemptKind::kPrimary,
                 req->start);
}

void ShardRouter::ScheduleTimer(double when, TimerItem item) {
  std::lock_guard<std::mutex> lock(timer_mu_);
  wheel_.Add(when, item);
}

void ShardRouter::TimerLoop() {
  while (running_.load(std::memory_order_relaxed)) {
    {
      std::unique_lock<std::mutex> lock(timer_mu_);
      timer_cv_.wait_for(
          lock, std::chrono::duration<double>(opts_.timer_tick_seconds),
          [this] { return !running_.load(); });
    }
    if (!running_.load()) break;
    const double now = MonotonicSeconds();
    std::vector<TimerItem> due;
    {
      std::lock_guard<std::mutex> lock(timer_mu_);
      due = wheel_.Advance(now);
    }
    for (const TimerItem& item : due) ProcessTimer(item, now);
  }
}

void ShardRouter::ProcessTimer(const TimerItem& item, double now) {
  Shard* shard = shards_[item.shard].get();
  switch (item.kind) {
    case TimerKind::kSettle: {
      Pending entry;
      {
        std::lock_guard<std::mutex> lock(shard->pending_mu);
        auto it = shard->pending.find(item.rid);
        if (it == shard->pending.end()) return;  // replied/orphaned already
        entry = std::move(it->second);
        shard->pending.erase(it);
        DecOutstandingLocked(shard);
        ++shard->view.timeouts;
      }
      const std::shared_ptr<Request>& req = entry.req;
      const int prev_live = req->live.fetch_sub(1, std::memory_order_acq_rel);
      if (prev_live > 1) return;  // the sibling attempt settles or GCs
      if (req->settled.exchange(true)) return;
      // Every attempt is past budget + grace with no reply: the request is
      // settled here so the client's wait is bounded.
      timeouts_.fetch_add(1, std::memory_order_relaxed);
      RouterCounter("ms_router_timeouts_total")->Inc();
      {
        std::lock_guard<std::mutex> lock(shard->pending_mu);
        ++shard->view.failed;
      }
      obs::FlightRecorder::Global().Record(
          obs::FlightEventKind::kRequestTimeout, "settle",
          static_cast<int64_t>(req->client_id),
          static_cast<int64_t>(item.shard));
      SettleFailed(req);
      return;
    }
    case TimerKind::kFailover:
    case TimerKind::kHedge: {
      std::shared_ptr<Request> req;
      {
        std::lock_guard<std::mutex> lock(shard->pending_mu);
        auto it = shard->pending.find(item.rid);
        if (it == shard->pending.end()) return;  // already replied
        req = it->second.req;
      }
      if (req->settled.load(std::memory_order_acquire)) return;
      LaunchSecondAttempt(req, static_cast<int>(item.shard),
                          item.kind == TimerKind::kHedge
                              ? AttemptKind::kHedge
                              : AttemptKind::kFailover,
                          now);
      return;
    }
  }
}

void ShardRouter::RecordAttemptLatency(double seconds) {
  if (!opts_.hedge || seconds < 0.0) return;
  std::lock_guard<std::mutex> lock(lat_mu_);
  lat_ring_[lat_pos_] = seconds;
  lat_pos_ = (lat_pos_ + 1) % lat_ring_.size();
  if (lat_count_ < lat_ring_.size()) ++lat_count_;
}

double ShardRouter::HedgeDelay(double budget) {
  const double cap = opts_.hedge_budget_cap_fraction * budget;
  std::vector<double> samples;
  {
    std::lock_guard<std::mutex> lock(lat_mu_);
    if (static_cast<int>(lat_count_) < opts_.hedge_min_samples) return cap;
    samples.assign(lat_ring_.begin(),
                   lat_ring_.begin() + static_cast<long>(lat_count_));
  }
  double q = opts_.hedge_quantile;
  if (q < 0.5) q = 0.5;
  if (q > 0.999) q = 0.999;
  size_t k = static_cast<size_t>(q * static_cast<double>(samples.size() - 1));
  std::nth_element(samples.begin(),
                   samples.begin() + static_cast<long>(k), samples.end());
  return std::min(samples[k], cap);
}

StatsMsg ShardRouter::Snapshot() const {
  StatsMsg s;
  s.role = StatsRole::kRouter;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.accepted = s.submitted;
  s.served = served_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.expired = expired_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.timeouts = timeouts_.load(std::memory_order_relaxed);
  s.failovers = failovers_.load(std::memory_order_relaxed);
  s.hedges = hedges_.load(std::memory_order_relaxed);
  s.hedge_wins = hedge_wins_.load(std::memory_order_relaxed);
  s.dup_replies = dup_replies_.load(std::memory_order_relaxed);
  s.healthy_workers = static_cast<uint16_t>(num_up());
  s.total_workers = static_cast<uint16_t>(shards_.size());
  for (const auto& shard_ptr : shards_) {
    Shard* shard = shard_ptr.get();
    ShardView view;
    {
      std::lock_guard<std::mutex> lock(shard->pending_mu);
      view = shard->view;
    }
    view.up = shard->up.load(std::memory_order_relaxed) ? 1 : 0;
    s.shards.push_back(view);
  }
  return s;
}

std::string ShardRouter::OnStats() { return EncodeStats(Snapshot()); }

int ShardRouter::num_up() const {
  int n = 0;
  for (const auto& shard : shards_) {
    if (shard->up.load(std::memory_order_relaxed)) ++n;
  }
  return n;
}

int64_t ShardRouter::total_readmits() const {
  return readmits_.load(std::memory_order_relaxed);
}

int64_t ShardRouter::total_drains() const {
  return drains_.load(std::memory_order_relaxed);
}

int64_t ShardRouter::total_timeouts() const {
  return timeouts_.load(std::memory_order_relaxed);
}

int64_t ShardRouter::total_failovers() const {
  return failovers_.load(std::memory_order_relaxed);
}

int64_t ShardRouter::total_failover_wins() const {
  return failover_wins_.load(std::memory_order_relaxed);
}

int64_t ShardRouter::total_hedges() const {
  return hedges_.load(std::memory_order_relaxed);
}

int64_t ShardRouter::total_hedge_wins() const {
  return hedge_wins_.load(std::memory_order_relaxed);
}

int64_t ShardRouter::total_dup_replies() const {
  return dup_replies_.load(std::memory_order_relaxed);
}

}  // namespace net
}  // namespace ms
