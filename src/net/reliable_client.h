// Reliable wire client: WireClient plus the client half of the
// reliability layer (DESIGN.md §13).
//
//   - Reconnect with exponential backoff + jitter when the connection
//     dies, on a background maintenance thread.
//   - Per-request retry budget: requests still pending when a fresh
//     connection comes up are resent with their REMAINING deadline budget,
//     at most max_send_attempts sends total. Resends are duplicate-safe:
//     they only happen after the old connection died, and the server's
//     reply to the old attempt dies with that connection.
//   - Timeout synthesis: a request unreplied at budget + grace is settled
//     kFailed locally, so the caller's accounting invariant
//       submitted == served + shed + expired + rejected + failed
//     holds exactly even when frames (or whole connections) vanish.
//   - Double-serve detection: a second wire reply for a request that a
//     wire reply already settled increments `duplicates` — the cluster
//     bench gates this at zero to prove the router's first-reply-wins
//     dedup. Replies that arrive after local timeout synthesis are counted
//     separately (`late_replies`); they are expected under armed faults.
//
// Settled-request ids are remembered for a bounded forget window (so late
// replies can be classified), then pruned — memory stays proportional to
// the in-flight window, not the run length.
#ifndef MODELSLICING_NET_RELIABLE_CLIENT_H_
#define MODELSLICING_NET_RELIABLE_CLIENT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/net/client.h"
#include "src/net/wire.h"
#include "src/util/status.h"
#include "src/util/timer_wheel.h"

namespace ms {
namespace net {

class ReliableClient {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    double connect_timeout_seconds = 1.0;
    double send_timeout_seconds = 5.0;
    /// Reconnect backoff doubles from min to max, with jitter.
    double backoff_min_seconds = 0.05;
    double backoff_max_seconds = 1.0;
    /// Total sends (first try + resends-on-reconnect) per request.
    int max_send_attempts = 2;
    /// Synthesize kFailed at budget + this grace. Keep it LARGER than the
    /// server/router's own settle grace so the authoritative terminal
    /// reply wins the race when the wire is merely slow.
    double reply_grace_seconds = 1.0;
    /// Budget stand-in for requests submitted without a deadline.
    double no_deadline_timeout_seconds = 5.0;
    /// Maintenance thread period (also the timer-wheel granularity).
    double timer_tick_seconds = 0.005;
    uint64_t seed = 1;  ///< backoff jitter stream.
  };

  /// Client-side ledger. submitted == served + shed + expired + rejected
  /// + failed once every submitted request has settled; `synthesized` is
  /// the subset of `failed` settled by local timeout.
  struct Stats {
    int64_t submitted = 0;
    int64_t served = 0;
    int64_t shed = 0;
    int64_t expired = 0;
    int64_t rejected = 0;
    int64_t failed = 0;
    int64_t synthesized = 0;
    int64_t duplicates = 0;    ///< double-serves: 2nd wire reply post-settle.
    int64_t late_replies = 0;  ///< wire reply after local timeout synthesis.
    int64_t reconnects = 0;
    int64_t resends = 0;
  };

  /// Invoked exactly once per submitted request, with the terminal reply
  /// (wire or synthesized). Runs on the reader or maintenance thread — do
  /// not call back into this client from it.
  using DoneFn = std::function<void(const ReplyMsg&)>;

  explicit ReliableClient(Options opts);
  ~ReliableClient();

  ReliableClient(const ReliableClient&) = delete;
  ReliableClient& operator=(const ReliableClient&) = delete;

  /// Connects (best effort — a down server is retried by the maintenance
  /// thread) and starts maintenance. Always returns OK unless restarted.
  Status Start();
  void Stop();

  /// Submits one request; returns its id. Safe while disconnected: the
  /// request is queued and sent when the connection comes up (within its
  /// budget). `deadline_seconds` is the relative budget (<= 0: none on the
  /// wire, no_deadline_timeout_seconds locally).
  uint64_t Submit(double deadline_seconds, DoneFn done,
                  std::vector<float> payload = {});

  bool connected() const;
  Stats stats() const;
  /// Requests still awaiting a terminal reply.
  size_t pending() const;

 private:
  struct PendingReq {
    DoneFn done;
    double deadline_seconds = 0.0;  ///< original relative (<= 0 none).
    double budget = 0.0;            ///< effective local budget, > 0.
    double start = 0.0;             ///< monotonic submit time.
    std::vector<float> payload;
    int sends = 0;  ///< wire sends so far (0: never made it out yet).
  };

  enum class TimerKind : uint8_t { kSettle = 0, kForget };
  struct TimerItem {
    TimerKind kind = TimerKind::kSettle;
    uint64_t id = 0;
  };

  void MaintenanceLoop();
  void HandleReply(const ReplyMsg& msg);
  /// Settles `id` locally as kFailed (timeout); no-op if already settled.
  void SynthesizeFailure(uint64_t id);
  /// (Re)connects and resends pending requests with remaining budget.
  void TryReconnect(double now);
  /// Sends one pending request over `client`; counts a resend when it is
  /// not the first send. Caller must NOT hold mu_.
  void SendPending(const std::shared_ptr<WireClient>& client, uint64_t id,
                   double now);
  double NextJitter();

  Options opts_;
  std::atomic<bool> running_{false};
  std::thread maintenance_;
  std::condition_variable maint_cv_;

  mutable std::mutex mu_;
  std::shared_ptr<WireClient> client_;          // guarded by mu_
  std::unordered_map<uint64_t, PendingReq> pending_;  // guarded by mu_
  /// Settled ids within the forget window; value = settled-by-wire.
  std::unordered_map<uint64_t, bool> settled_;  // guarded by mu_
  TimerWheel<TimerItem> wheel_;                 // guarded by mu_
  uint64_t next_id_ = 1;                        // guarded by mu_
  double backoff_ = 0.0;                        // guarded by mu_
  double next_reconnect_at_ = 0.0;              // guarded by mu_
  uint64_t jitter_state_ = 0;                   // guarded by mu_
  std::atomic<bool> conn_ok_{false};

  std::atomic<int64_t> submitted_{0};
  std::atomic<int64_t> served_{0};
  std::atomic<int64_t> shed_{0};
  std::atomic<int64_t> expired_{0};
  std::atomic<int64_t> rejected_{0};
  std::atomic<int64_t> failed_{0};
  std::atomic<int64_t> synthesized_{0};
  std::atomic<int64_t> duplicates_{0};
  std::atomic<int64_t> late_replies_{0};
  std::atomic<int64_t> reconnects_{0};
  std::atomic<int64_t> resends_{0};
};

}  // namespace net
}  // namespace ms

#endif  // MODELSLICING_NET_RELIABLE_CLIENT_H_
