#include "src/net/wire.h"

#include "src/util/crc32.h"

namespace ms {
namespace net {

namespace {

// All integers little-endian via memcpy; the CI fleet is little-endian and
// the format says so explicitly, so a big-endian port would byte-swap here.
template <typename T>
void Append(std::string* out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out->append(buf, sizeof(T));
}

/// Bounds-checked payload reader: every Read validates remaining bytes.
class Reader {
 public:
  explicit Reader(const std::string& s) : data_(s.data()), size_(s.size()) {}

  template <typename T>
  bool Read(T* out) {
    if (size_ - pos_ < sizeof(T)) return false;
    std::memcpy(out, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool ReadFloats(std::vector<float>* out, size_t n) {
    if ((size_ - pos_) / sizeof(float) < n) return false;
    out->resize(n);
    std::memcpy(out->data(), data_ + pos_, n * sizeof(float));
    pos_ += n * sizeof(float);
    return true;
  }

  bool ReadDoubles(std::vector<double>* out, size_t n) {
    if ((size_ - pos_) / sizeof(double) < n) return false;
    out->resize(n);
    std::memcpy(out->data(), data_ + pos_, n * sizeof(double));
    pos_ += n * sizeof(double);
    return true;
  }

  bool AtEnd() const { return pos_ == size_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

Status ShortPayload(const char* what) {
  return Status::InvalidArgument(std::string("short or trailing bytes in ") +
                                 what + " payload");
}

}  // namespace

void EncodeFrame(FrameType type, const std::string& payload,
                 std::string* out) {
  MS_CHECK(payload.size() <= kMaxPayload);
  Append<uint16_t>(out, kWireMagic);
  Append<uint8_t>(out, kWireVersion);
  Append<uint8_t>(out, static_cast<uint8_t>(type));
  Append<uint32_t>(out, static_cast<uint32_t>(payload.size()));
  Append<uint32_t>(out, Crc32(payload.data(), payload.size()));
  out->append(payload);
}

std::string EncodeRequest(const RequestMsg& msg) {
  std::string payload;
  Append<uint64_t>(&payload, msg.id);
  Append<double>(&payload, msg.deadline_seconds);
  Append<uint32_t>(&payload, static_cast<uint32_t>(msg.payload.size()));
  payload.append(reinterpret_cast<const char*>(msg.payload.data()),
                 msg.payload.size() * sizeof(float));
  std::string out;
  EncodeFrame(FrameType::kRequest, payload, &out);
  return out;
}

std::string EncodeReply(const ReplyMsg& msg) {
  std::string payload;
  Append<uint64_t>(&payload, msg.id);
  Append<uint8_t>(&payload, static_cast<uint8_t>(msg.admit));
  Append<uint8_t>(&payload, static_cast<uint8_t>(msg.outcome));
  Append<float>(&payload, msg.rate);
  std::string out;
  EncodeFrame(FrameType::kReply, payload, &out);
  return out;
}

std::string EncodeStats(const StatsMsg& msg) {
  std::string payload;
  Append<uint8_t>(&payload, static_cast<uint8_t>(msg.role));
  Append<uint8_t>(&payload, msg.breaker_open);
  Append<uint16_t>(&payload, msg.healthy_workers);
  Append<uint16_t>(&payload, msg.total_workers);
  Append<int64_t>(&payload, msg.queue_depth);
  Append<int64_t>(&payload, msg.queue_capacity);
  Append<int64_t>(&payload, msg.submitted);
  Append<int64_t>(&payload, msg.accepted);
  Append<int64_t>(&payload, msg.served);
  Append<int64_t>(&payload, msg.shed);
  Append<int64_t>(&payload, msg.expired);
  Append<int64_t>(&payload, msg.rejected);
  Append<int64_t>(&payload, msg.failed);
  Append<int64_t>(&payload, msg.quarantined);
  Append<int64_t>(&payload, msg.repaired);
  Append<double>(&payload, msg.calibrated_t);
  Append<double>(&payload, msg.calibrated_t_int8);
  Append<double>(&payload, msg.tick_seconds);
  Append<uint32_t>(&payload, static_cast<uint32_t>(msg.rates.size()));
  payload.append(reinterpret_cast<const char*>(msg.rates.data()),
                 msg.rates.size() * sizeof(double));
  Append<uint32_t>(&payload, static_cast<uint32_t>(msg.shards.size()));
  for (const ShardView& s : msg.shards) {
    Append<uint8_t>(&payload, s.up);
    Append<int64_t>(&payload, s.forwarded);
    Append<int64_t>(&payload, s.outstanding);
    Append<int64_t>(&payload, s.served);
    Append<int64_t>(&payload, s.shed);
    Append<int64_t>(&payload, s.expired);
    Append<int64_t>(&payload, s.failed);
    Append<int64_t>(&payload, s.rejected);
    Append<int64_t>(&payload, s.lost);
    Append<int64_t>(&payload, s.drains);
    Append<int64_t>(&payload, s.readmits);
    Append<int64_t>(&payload, s.timeouts);
    Append<int64_t>(&payload, s.failovers);
    Append<int64_t>(&payload, s.hedges);
  }
  Append<int64_t>(&payload, msg.timeouts);
  Append<int64_t>(&payload, msg.failovers);
  Append<int64_t>(&payload, msg.hedges);
  Append<int64_t>(&payload, msg.hedge_wins);
  Append<int64_t>(&payload, msg.dup_replies);
  std::string out;
  EncodeFrame(FrameType::kStatsReply, payload, &out);
  return out;
}

std::string EncodeControl(const ControlMsg& msg) {
  std::string payload;
  Append<uint64_t>(&payload, msg.id);
  Append<uint8_t>(&payload, static_cast<uint8_t>(msg.op));
  Append<uint64_t>(&payload, msg.seed);
  Append<uint32_t>(&payload, static_cast<uint32_t>(msg.spec.size()));
  payload.append(msg.spec);
  std::string out;
  EncodeFrame(FrameType::kControl, payload, &out);
  return out;
}

Status DecodeRequest(const std::string& payload, RequestMsg* out) {
  Reader r(payload);
  uint32_t count = 0;
  if (!r.Read(&out->id) || !r.Read(&out->deadline_seconds) ||
      !r.Read(&count) || !r.ReadFloats(&out->payload, count) || !r.AtEnd()) {
    return ShortPayload("request");
  }
  return Status::OK();
}

Status DecodeReply(const std::string& payload, ReplyMsg* out) {
  Reader r(payload);
  uint8_t admit = 0, outcome = 0;
  if (!r.Read(&out->id) || !r.Read(&admit) || !r.Read(&outcome) ||
      !r.Read(&out->rate) || !r.AtEnd()) {
    return ShortPayload("reply");
  }
  if (admit > static_cast<uint8_t>(AdmitResult::kRejectedInvalid) ||
      outcome > static_cast<uint8_t>(RequestOutcome::kFailed)) {
    return Status::InvalidArgument("reply carries an unknown code");
  }
  out->admit = static_cast<AdmitResult>(admit);
  out->outcome = static_cast<RequestOutcome>(outcome);
  return Status::OK();
}

Status DecodeStats(const std::string& payload, StatsMsg* out) {
  Reader r(payload);
  uint8_t role = 0;
  uint32_t num_rates = 0, num_shards = 0;
  if (!r.Read(&role) || !r.Read(&out->breaker_open) ||
      !r.Read(&out->healthy_workers) || !r.Read(&out->total_workers) ||
      !r.Read(&out->queue_depth) || !r.Read(&out->queue_capacity) ||
      !r.Read(&out->submitted) || !r.Read(&out->accepted) ||
      !r.Read(&out->served) || !r.Read(&out->shed) ||
      !r.Read(&out->expired) || !r.Read(&out->rejected) ||
      !r.Read(&out->failed) || !r.Read(&out->quarantined) ||
      !r.Read(&out->repaired) || !r.Read(&out->calibrated_t) ||
      !r.Read(&out->calibrated_t_int8) || !r.Read(&out->tick_seconds) ||
      !r.Read(&num_rates) ||
      !r.ReadDoubles(&out->rates, num_rates) || !r.Read(&num_shards)) {
    return ShortPayload("stats");
  }
  if (role != static_cast<uint8_t>(StatsRole::kShard) &&
      role != static_cast<uint8_t>(StatsRole::kRouter)) {
    return Status::InvalidArgument("stats carries an unknown role");
  }
  out->role = static_cast<StatsRole>(role);
  out->shards.clear();
  out->shards.reserve(num_shards);
  for (uint32_t i = 0; i < num_shards; ++i) {
    ShardView s;
    if (!r.Read(&s.up) || !r.Read(&s.forwarded) || !r.Read(&s.outstanding) ||
        !r.Read(&s.served) || !r.Read(&s.shed) || !r.Read(&s.expired) ||
        !r.Read(&s.failed) || !r.Read(&s.rejected) || !r.Read(&s.lost) ||
        !r.Read(&s.drains) || !r.Read(&s.readmits) || !r.Read(&s.timeouts) ||
        !r.Read(&s.failovers) || !r.Read(&s.hedges)) {
      return ShortPayload("stats shard view");
    }
    out->shards.push_back(s);
  }
  if (!r.Read(&out->timeouts) || !r.Read(&out->failovers) ||
      !r.Read(&out->hedges) || !r.Read(&out->hedge_wins) ||
      !r.Read(&out->dup_replies) || !r.AtEnd()) {
    return ShortPayload("stats");
  }
  return Status::OK();
}

Status DecodeControl(const std::string& payload, ControlMsg* out) {
  Reader r(payload);
  uint8_t op = 0;
  uint32_t len = 0;
  if (!r.Read(&out->id) || !r.Read(&op) || !r.Read(&out->seed) ||
      !r.Read(&len)) {
    return ShortPayload("control");
  }
  if (op != static_cast<uint8_t>(ControlOp::kArmFaults) &&
      op != static_cast<uint8_t>(ControlOp::kDisarmFaults)) {
    return Status::InvalidArgument("control carries an unknown op");
  }
  out->op = static_cast<ControlOp>(op);
  if (payload.size() < 21 || payload.size() - 21 != len) {
    return ShortPayload("control");
  }
  out->spec = payload.substr(21, len);
  return Status::OK();
}

DecodeResult FrameDecoder::Next(Frame* out) {
  if (fatal_) return DecodeResult::kFatal;
  // Compact once the consumed prefix dominates, so a long-lived connection
  // does not grow its buffer forever.
  if (pos_ > 0 && (pos_ >= buf_.size() || pos_ > 64 * 1024)) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  const size_t avail = buf_.size() - pos_;
  if (avail < kHeaderBytes) return DecodeResult::kNeedMore;
  const char* h = buf_.data() + pos_;
  uint16_t magic;
  uint8_t version, type;
  uint32_t length, crc;
  std::memcpy(&magic, h, 2);
  std::memcpy(&version, h + 2, 1);
  std::memcpy(&type, h + 3, 1);
  std::memcpy(&length, h + 4, 4);
  std::memcpy(&crc, h + 8, 4);
  if (magic != kWireMagic || length > kMaxPayload) {
    // The stream is garbage: there is no frame boundary to resynchronize
    // on.
    fatal_ = true;
    bad_request_id_ = 0;
    return DecodeResult::kFatal;
  }
  if (avail < kHeaderBytes + length) return DecodeResult::kNeedMore;
  const char* payload = h + kHeaderBytes;
  // The header layout is version-invariant by fiat (wire.h), so a
  // mismatched version still gives a trustworthy frame boundary: consume
  // the whole frame and classify it recoverable rather than poisoning the
  // connection.
  const bool version_ok = version == kWireVersion;
  const bool crc_ok = Crc32(payload, length) == crc;
  const bool type_ok =
      type >= static_cast<uint8_t>(FrameType::kRequest) &&
      type <= static_cast<uint8_t>(FrameType::kControl);
  pos_ += kHeaderBytes + length;
  if (!version_ok || !crc_ok || !type_ok) {
    // Boundary was intact, so salvage the request id when the payload is
    // long enough to carry one — the reject reply can then name it.
    bad_request_id_ = 0;
    if (length >= sizeof(uint64_t)) {
      std::memcpy(&bad_request_id_, payload, sizeof(uint64_t));
    }
    return DecodeResult::kBadFrame;
  }
  out->type = static_cast<FrameType>(type);
  out->payload.assign(payload, length);
  return DecodeResult::kFrame;
}

}  // namespace net
}  // namespace ms
