#include "src/net/net_server.h"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#include <sys/eventfd.h>
#endif

#include "src/obs/metrics.h"
#include "src/util/fault.h"

namespace ms {
namespace net {

namespace {

constexpr size_t kReadChunk = 64 * 1024;
/// Reply writers (batcher threads) give a stuck peer this long before
/// declaring the connection dead; tiny frames make real backpressure rare.
constexpr double kSendTimeoutSeconds = 10.0;

obs::Counter* NetCounter(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name);
}

uint64_t SalvageId(const std::string& payload) {
  if (payload.size() < sizeof(uint64_t)) return 0;
  uint64_t id = 0;
  std::memcpy(&id, payload.data(), sizeof(id));
  return id;
}

std::string InvalidReplyFrame(uint64_t id) {
  ReplyMsg reply;
  reply.id = id;
  reply.admit = AdmitResult::kRejectedInvalid;
  return EncodeReply(reply);
}

}  // namespace

NetServer::NetServer(WireService* service) : service_(service) {}

NetServer::NetServer(WireService* service, Options options)
    : service_(service), options_(options) {}

NetServer::~NetServer() { Stop(); }

void NetServer::SendFrame(const std::shared_ptr<Conn>& conn,
                          const std::string& frame) {
  std::lock_guard<std::mutex> lock(conn->write_mu);
  if (conn->closed) return;
  Status st = SendFrameBytes(conn->sock.fd(), frame.data(), frame.size(),
                             kSendTimeoutSeconds);
  if (!st.ok()) {
    // Peer gone (or wedged past the timeout). Shut down the read side so
    // the event loop / reader thread notices and owns the actual close.
    conn->closed = true;
    ::shutdown(conn->sock.fd(), SHUT_RDWR);
    NetCounter("ms_net_send_errors_total")->Inc();
    return;
  }
  NetCounter("ms_net_frames_out_total")->Inc();
}

bool NetServer::HandleFrame(const std::shared_ptr<Conn>& conn,
                            const Frame& frame) {
  NetCounter("ms_net_frames_in_total")->Inc();
  switch (frame.type) {
    case FrameType::kRequest: {
      RequestMsg msg;
      Status st = DecodeRequest(frame.payload, &msg);
      if (!st.ok()) {
        NetCounter("ms_net_bad_frames_total")->Inc();
        SendFrame(conn, InvalidReplyFrame(SalvageId(frame.payload)));
        return true;
      }
      // net.recv.blackhole: the frame arrived intact but is never
      // dispatched — the caller sees silence, exactly as if the network
      // ate the bytes. The sender's timeout/retry layer must recover.
      if (fault::Registry::Global().ShouldFire(fault::kNetRecvBlackhole)) {
        return true;
      }
      std::shared_ptr<Conn> conn_ref = conn;
      NetServer* self = this;
      service_->OnRequest(msg, [self, conn_ref](const ReplyMsg& reply) {
        self->SendFrame(conn_ref, EncodeReply(reply));
      });
      return true;
    }
    case FrameType::kStats: {
      // OnStats returns a complete kStatsReply frame (EncodeStats frames
      // its own payload); forward it verbatim.
      SendFrame(conn, service_->OnStats());
      return true;
    }
    case FrameType::kControl: {
      ControlMsg msg;
      Status st = DecodeControl(frame.payload, &msg);
      if (!st.ok() || !options_.allow_fault_control) {
        NetCounter("ms_net_bad_frames_total")->Inc();
        SendFrame(conn, InvalidReplyFrame(SalvageId(frame.payload)));
        return true;
      }
      fault::Registry& faults = fault::Registry::Global();
      if (msg.op == ControlOp::kDisarmFaults) {
        faults.DisarmAll();
      } else {
        faults.SetSeed(msg.seed);
        st = faults.ArmFromSpec(msg.spec);
      }
      ReplyMsg ack;
      ack.id = msg.id;
      ack.admit =
          st.ok() ? AdmitResult::kAccepted : AdmitResult::kRejectedInvalid;
      SendFrame(conn, EncodeReply(ack));
      return true;
    }
    case FrameType::kReply:
    case FrameType::kStatsReply:
      // Valid frame types, wrong direction: a server never receives
      // replies. Same treatment as any other malformed request.
      NetCounter("ms_net_bad_frames_total")->Inc();
      SendFrame(conn, InvalidReplyFrame(SalvageId(frame.payload)));
      return true;
  }
  NetCounter("ms_net_bad_frames_total")->Inc();
  SendFrame(conn, InvalidReplyFrame(0));
  return true;
}

bool NetServer::HandleBytes(const std::shared_ptr<Conn>& conn,
                            const char* data, size_t n) {
  conn->decoder.Feed(data, n);
  Frame frame;
  for (;;) {
    switch (conn->decoder.Next(&frame)) {
      case DecodeResult::kFrame:
        if (!HandleFrame(conn, frame)) return false;
        break;
      case DecodeResult::kNeedMore:
        return true;
      case DecodeResult::kBadFrame:
        NetCounter("ms_net_bad_frames_total")->Inc();
        SendFrame(conn, InvalidReplyFrame(conn->decoder.bad_request_id()));
        break;
      case DecodeResult::kFatal:
        NetCounter("ms_net_fatal_frames_total")->Inc();
        SendFrame(conn, InvalidReplyFrame(0));
        return false;
    }
  }
}

void NetServer::MarkClosed(const std::shared_ptr<Conn>& conn) {
  std::lock_guard<std::mutex> lock(conn->write_mu);
  if (conn->closed) return;
  conn->closed = true;
  ::shutdown(conn->sock.fd(), SHUT_RDWR);
}

#ifdef __linux__

Status NetServer::Start(uint16_t port) {
  if (running_.load()) return Status::FailedPrecondition("already started");
  auto listener = TcpListen(port, &port_);
  if (!listener.ok()) return listener.status();
  listener_ = listener.MoveValueOrDie();
  MS_RETURN_NOT_OK(SetNonBlocking(listener_.fd(), true));

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return Status::Internal("epoll_create1 failed");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    return Status::Internal("eventfd failed");
  }
  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  ev.data.fd = listener_.fd();
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listener_.fd(), &ev);
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  running_.store(true);
  loop_ = std::thread(&NetServer::EpollLoop, this);
  return Status::OK();
}

void NetServer::EpollLoop() {
  std::vector<char> buf(kReadChunk);
  epoll_event events[64];
  auto close_conn = [this](int fd) {
    std::shared_ptr<Conn> conn;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      auto it = conns_.find(fd);
      if (it == conns_.end()) return;
      conn = it->second;
      conns_.erase(it);
    }
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    // Lock out in-flight reply writers before the fd number can be reused.
    std::lock_guard<std::mutex> lock(conn->write_mu);
    conn->closed = true;
    conn->sock.Close();
  };

  while (running_.load(std::memory_order_relaxed)) {
    int n = ::epoll_wait(epoll_fd_, events, 64, 200);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      if (fd == listener_.fd()) {
        for (;;) {
          Socket s = TcpAccept(listener_.fd());
          if (!s.valid()) break;
          if (!SetNonBlocking(s.fd(), true).ok()) continue;
          const int cfd = s.fd();
          auto conn = std::make_shared<Conn>(std::move(s));
          {
            std::lock_guard<std::mutex> lock(conns_mu_);
            conns_[cfd] = conn;
          }
          epoll_event cev;
          std::memset(&cev, 0, sizeof(cev));
          cev.events = EPOLLIN | EPOLLRDHUP;
          cev.data.fd = cfd;
          ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, cfd, &cev);
          connections_accepted_.fetch_add(1, std::memory_order_relaxed);
          NetCounter("ms_net_connections_total")->Inc();
        }
        continue;
      }
      std::shared_ptr<Conn> conn;
      {
        std::lock_guard<std::mutex> lock(conns_mu_);
        auto it = conns_.find(fd);
        if (it != conns_.end()) conn = it->second;
      }
      if (!conn) continue;
      bool dead = (events[i].events & (EPOLLHUP | EPOLLERR)) != 0;
      while (!dead) {
        ssize_t r = ::recv(fd, buf.data(), buf.size(), 0);
        if (r > 0) {
          if (!HandleBytes(conn, buf.data(), static_cast<size_t>(r))) {
            dead = true;
          }
          continue;
        }
        if (r == 0) {
          dead = true;
        } else if (errno == EINTR) {
          continue;
        } else if (errno != EAGAIN && errno != EWOULDBLOCK) {
          dead = true;
        }
        break;
      }
      if (dead || (events[i].events & EPOLLRDHUP) != 0) close_conn(fd);
    }
  }

  // Teardown: close every remaining connection.
  std::vector<int> fds;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const auto& kv : conns_) fds.push_back(kv.first);
  }
  for (int fd : fds) close_conn(fd);
}

void NetServer::Stop() {
  if (!running_.exchange(false)) return;
  if (wake_fd_ >= 0) {
    uint64_t one = 1;
    ssize_t ignored = ::write(wake_fd_, &one, sizeof(one));
    (void)ignored;
  }
  if (loop_.joinable()) loop_.join();
  listener_.Close();
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
  if (wake_fd_ >= 0) {
    ::close(wake_fd_);
    wake_fd_ = -1;
  }
}

#else  // !__linux__: one blocking reader thread per connection.

Status NetServer::Start(uint16_t port) {
  if (running_.load()) return Status::FailedPrecondition("already started");
  auto listener = TcpListen(port, &port_);
  if (!listener.ok()) return listener.status();
  listener_ = listener.MoveValueOrDie();
  SetRecvTimeout(listener_.fd(), 0.2);  // unused for accept; see poll below
  running_.store(true);
  loop_ = std::thread(&NetServer::AcceptLoop, this);
  return Status::OK();
}

void NetServer::AcceptLoop() {
  while (running_.load(std::memory_order_relaxed)) {
    pollfd pfd;
    pfd.fd = listener_.fd();
    pfd.events = POLLIN;
    pfd.revents = 0;
    int pr = ::poll(&pfd, 1, 200);
    if (pr <= 0) continue;
    Socket s = TcpAccept(listener_.fd());
    if (!s.valid()) continue;
    SetRecvTimeout(s.fd(), 0.2);
    const int cfd = s.fd();
    auto conn = std::make_shared<Conn>(std::move(s));
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_[cfd] = conn;
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    NetCounter("ms_net_connections_total")->Inc();
    std::lock_guard<std::mutex> rlock(readers_mu_);
    readers_.emplace_back(&NetServer::ReaderLoop, this, conn);
  }
}

void NetServer::ReaderLoop(std::shared_ptr<Conn> conn) {
  std::vector<char> buf(kReadChunk);
  const int fd = conn->sock.fd();
  while (running_.load(std::memory_order_relaxed)) {
    {
      std::lock_guard<std::mutex> lock(conn->write_mu);
      if (conn->closed) break;
    }
    ssize_t r = ::recv(fd, buf.data(), buf.size(), 0);
    if (r > 0) {
      if (!HandleBytes(conn, buf.data(), static_cast<size_t>(r))) break;
      continue;
    }
    if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK ||
                  errno == EINTR)) {
      continue;  // recv timeout: re-check running_.
    }
    break;  // peer closed or hard error.
  }
  MarkClosed(conn);
  std::lock_guard<std::mutex> lock(conns_mu_);
  conns_.erase(fd);
}

void NetServer::Stop() {
  if (!running_.exchange(false)) return;
  if (loop_.joinable()) loop_.join();
  std::vector<std::shared_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& kv : conns_) conns.push_back(kv.second);
  }
  for (auto& conn : conns) MarkClosed(conn);
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> rlock(readers_mu_);
    readers.swap(readers_);
  }
  for (auto& t : readers) {
    if (t.joinable()) t.join();
  }
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.clear();
  }
  listener_.Close();
}

#endif  // __linux__

}  // namespace net
}  // namespace ms
