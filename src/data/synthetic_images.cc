#include "src/data/synthetic_images.h"

#include <cmath>

namespace ms {
namespace {

// Smooth a (C, H, W) pattern with a 3x3 box filter, `passes` times, to give
// prototypes spatial structure (convolutional nets can exploit locality).
void BoxSmooth(std::vector<float>* img, int64_t c, int64_t h, int64_t w,
               int passes) {
  std::vector<float> tmp(img->size());
  for (int pass = 0; pass < passes; ++pass) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const float* src = img->data() + ch * h * w;
      float* dst = tmp.data() + ch * h * w;
      for (int64_t i = 0; i < h; ++i) {
        for (int64_t j = 0; j < w; ++j) {
          float acc = 0.0f;
          int cnt = 0;
          for (int64_t di = -1; di <= 1; ++di) {
            for (int64_t dj = -1; dj <= 1; ++dj) {
              const int64_t ii = i + di, jj = j + dj;
              if (ii < 0 || ii >= h || jj < 0 || jj >= w) continue;
              acc += src[ii * w + jj];
              ++cnt;
            }
          }
          dst[i * w + j] = acc / static_cast<float>(cnt);
        }
      }
    }
    img->swap(tmp);
  }
}

// Render one sample of class `label`: shifted mode + clutter + noise.
void RenderSample(const std::vector<std::vector<float>>& modes,
                  const SyntheticImageOptions& opts, int label, Rng* rng,
                  float* out) {
  const int64_t c = opts.channels, h = opts.height, w = opts.width;
  const int64_t mode_idx =
      static_cast<int64_t>(rng->UniformInt(
          static_cast<uint64_t>(opts.modes_per_class)));
  const auto& proto =
      modes[static_cast<size_t>(label * opts.modes_per_class + mode_idx)];
  const int shift_i = static_cast<int>(rng->UniformInt(
                          static_cast<uint64_t>(2 * opts.max_shift + 1))) -
                      opts.max_shift;
  const int shift_j = static_cast<int>(rng->UniformInt(
                          static_cast<uint64_t>(2 * opts.max_shift + 1))) -
                      opts.max_shift;
  const float gain = static_cast<float>(rng->Uniform(0.8, 1.2));
  // Class-agnostic clutter: a smooth random field shared across channels.
  std::vector<float> clutter(static_cast<size_t>(h * w));
  for (auto& v : clutter) v = static_cast<float>(rng->Gaussian());
  // Cheap smoothing of the clutter field.
  std::vector<float> clutter3(static_cast<size_t>(h * w));
  for (int64_t i = 0; i < h; ++i) {
    for (int64_t j = 0; j < w; ++j) {
      float acc = 0.0f;
      int cnt = 0;
      for (int di = -1; di <= 1; ++di) {
        for (int dj = -1; dj <= 1; ++dj) {
          const int64_t ii = i + di, jj = j + dj;
          if (ii < 0 || ii >= h || jj < 0 || jj >= w) continue;
          acc += clutter[static_cast<size_t>(ii * w + jj)];
          ++cnt;
        }
      }
      clutter3[static_cast<size_t>(i * w + j)] =
          acc / static_cast<float>(cnt);
    }
  }
  for (int64_t ch = 0; ch < c; ++ch) {
    for (int64_t i = 0; i < h; ++i) {
      for (int64_t j = 0; j < w; ++j) {
        // Toroidal shift keeps energy constant across samples.
        const int64_t si = ((i + shift_i) % h + h) % h;
        const int64_t sj = ((j + shift_j) % w + w) % w;
        float v = gain * proto[static_cast<size_t>((ch * h + si) * w + sj)];
        v += static_cast<float>(opts.distractor) *
             clutter3[static_cast<size_t>(i * w + j)];
        v += static_cast<float>(opts.noise * rng->Gaussian());
        out[(ch * h + i) * w + j] = v;
      }
    }
  }
}

void FillDataset(const std::vector<std::vector<float>>& modes,
                 const SyntheticImageOptions& opts, int64_t n, Rng* rng,
                 ImageDataset* ds) {
  ds->num_classes = opts.num_classes;
  ds->channels = opts.channels;
  ds->height = opts.height;
  ds->width = opts.width;
  ds->images = Tensor({n, opts.channels, opts.height, opts.width});
  ds->labels.resize(static_cast<size_t>(n));
  const int64_t sample_size = opts.channels * opts.height * opts.width;
  for (int64_t i = 0; i < n; ++i) {
    const int label =
        static_cast<int>(rng->UniformInt(
            static_cast<uint64_t>(opts.num_classes)));
    ds->labels[static_cast<size_t>(i)] = label;
    RenderSample(modes, opts, label, rng, ds->images.data() + i * sample_size);
  }
}

}  // namespace

Result<ImageDataSplit> MakeSyntheticImages(const SyntheticImageOptions& opts) {
  if (opts.num_classes < 2) {
    return Status::InvalidArgument("need at least 2 classes");
  }
  if (opts.channels < 1 || opts.height < 4 || opts.width < 4) {
    return Status::InvalidArgument("image dims too small");
  }
  if (opts.train_size < 1 || opts.test_size < 1) {
    return Status::InvalidArgument("dataset sizes must be positive");
  }
  if (opts.modes_per_class < 1) {
    return Status::InvalidArgument("modes_per_class must be >= 1");
  }
  if (opts.max_shift < 0 || opts.max_shift >= opts.height ||
      opts.max_shift >= opts.width) {
    return Status::InvalidArgument("max_shift out of range");
  }

  Rng rng(opts.seed);
  // Class prototypes: smooth unit-scale random fields.
  const size_t num_modes =
      static_cast<size_t>(opts.num_classes * opts.modes_per_class);
  std::vector<std::vector<float>> modes(num_modes);
  const size_t proto_size =
      static_cast<size_t>(opts.channels * opts.height * opts.width);
  for (auto& m : modes) {
    m.resize(proto_size);
    for (auto& v : m) v = static_cast<float>(rng.Gaussian());
    BoxSmooth(&m, opts.channels, opts.height, opts.width, /*passes=*/2);
    // Renormalize to unit RMS so smoothing doesn't shrink signal power.
    double ss = 0.0;
    for (float v : m) ss += static_cast<double>(v) * v;
    const float scale =
        static_cast<float>(1.0 / std::sqrt(ss / static_cast<double>(
                                               m.size()) + 1e-12));
    for (auto& v : m) v *= scale;
  }

  ImageDataSplit split;
  Rng train_rng = rng.Fork();
  Rng test_rng = rng.Fork();
  FillDataset(modes, opts, opts.train_size, &train_rng, &split.train);
  FillDataset(modes, opts, opts.test_size, &test_rng, &split.test);
  return split;
}

Tensor GatherImages(const ImageDataset& data,
                    const std::vector<int64_t>& indices) {
  const int64_t sample_size = data.channels * data.height * data.width;
  Tensor batch({static_cast<int64_t>(indices.size()), data.channels,
                data.height, data.width});
  for (size_t i = 0; i < indices.size(); ++i) {
    const int64_t idx = indices[i];
    MS_CHECK(idx >= 0 && idx < data.size());
    const float* src = data.images.data() + idx * sample_size;
    std::copy(src, src + sample_size,
              batch.data() + static_cast<int64_t>(i) * sample_size);
  }
  return batch;
}

void GatherLabels(const ImageDataset& data,
                  const std::vector<int64_t>& indices,
                  std::vector<int>* labels) {
  labels->resize(indices.size());
  for (size_t i = 0; i < indices.size(); ++i) {
    (*labels)[i] = data.labels[static_cast<size_t>(indices[i])];
  }
}

void AugmentBatch(Tensor* batch, int max_shift, Rng* rng, bool allow_flip) {
  MS_CHECK(batch->ndim() == 4);
  const int64_t n = batch->dim(0);
  const int64_t c = batch->dim(1);
  const int64_t h = batch->dim(2);
  const int64_t w = batch->dim(3);
  std::vector<float> tmp(static_cast<size_t>(c * h * w));
  for (int64_t img = 0; img < n; ++img) {
    float* px = batch->data() + img * c * h * w;
    const int si = static_cast<int>(rng->UniformInt(
                       static_cast<uint64_t>(2 * max_shift + 1))) -
                   max_shift;
    const int sj = static_cast<int>(rng->UniformInt(
                       static_cast<uint64_t>(2 * max_shift + 1))) -
                   max_shift;
    const bool flip = allow_flip && rng->Bernoulli(0.5);
    for (int64_t ch = 0; ch < c; ++ch) {
      for (int64_t i = 0; i < h; ++i) {
        for (int64_t j = 0; j < w; ++j) {
          const int64_t ii = ((i + si) % h + h) % h;
          int64_t jj = ((j + sj) % w + w) % w;
          if (flip) jj = w - 1 - jj;
          tmp[static_cast<size_t>((ch * h + i) * w + j)] =
              px[(ch * h + ii) * w + jj];
        }
      }
    }
    std::copy(tmp.begin(), tmp.end(), px);
  }
}

}  // namespace ms
