// Procedural image-classification dataset standing in for CIFAR-10/ImageNet
// (offline substitution; see DESIGN.md). Each class owns several smooth
// prototype "modes"; a sample is a randomly shifted, scaled and noised mode.
// More modes and higher noise demand more model capacity, so accuracy
// degrades smoothly with network width — the property the paper's
// accuracy-vs-FLOPs figures rely on.
#ifndef MODELSLICING_DATA_SYNTHETIC_IMAGES_H_
#define MODELSLICING_DATA_SYNTHETIC_IMAGES_H_

#include <vector>

#include "src/tensor/tensor.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace ms {

struct ImageDataset {
  Tensor images;            ///< (N, C, H, W), roughly zero-mean unit-scale.
  std::vector<int> labels;  ///< length N, in [0, num_classes).
  int64_t num_classes = 0;
  int64_t channels = 0;
  int64_t height = 0;
  int64_t width = 0;

  int64_t size() const { return static_cast<int64_t>(labels.size()); }
};

struct SyntheticImageOptions {
  int64_t num_classes = 10;
  int64_t modes_per_class = 3;   ///< intra-class diversity.
  int64_t channels = 3;
  int64_t height = 12;
  int64_t width = 12;
  int64_t train_size = 2000;
  int64_t test_size = 500;
  double noise = 0.6;            ///< additive Gaussian noise stddev.
  double distractor = 0.4;       ///< strength of class-agnostic clutter.
  int max_shift = 2;             ///< random translation in pixels.
  uint64_t seed = 7;
};

struct ImageDataSplit {
  ImageDataset train;
  ImageDataset test;
};

/// Build the train/test split. Fails on non-positive dimensions.
Result<ImageDataSplit> MakeSyntheticImages(const SyntheticImageOptions& opts);

/// Assemble a batch (with optional shift/flip augmentation) from dataset
/// rows `indices`.
Tensor GatherImages(const ImageDataset& data,
                    const std::vector<int64_t>& indices);
void GatherLabels(const ImageDataset& data,
                  const std::vector<int64_t>& indices,
                  std::vector<int>* labels);

/// Random toroidal shift (and optionally horizontal flip), the analogue of
/// the paper's pad-crop-flip augmentation. Applied in place to a
/// (B, C, H, W) batch. Flips are off by default: the synthetic class
/// prototypes are not mirror-symmetric, so flipping acts as label noise.
void AugmentBatch(Tensor* batch, int max_shift, Rng* rng,
                  bool flip = false);

}  // namespace ms

#endif  // MODELSLICING_DATA_SYNTHETIC_IMAGES_H_
