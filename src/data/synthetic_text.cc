#include "src/data/synthetic_text.h"

#include <cmath>

namespace ms {
namespace {

struct BigramSource {
  // Per (topic, token): branch_factor candidate successors + cumulative
  // probabilities.
  std::vector<int> candidates;    ///< (topics * vocab, branch)
  std::vector<double> cum_probs;  ///< (topics * vocab, branch), cumulative.
  std::vector<double> zipf_cdf;   ///< unigram fallback CDF.
  int vocab = 0;
  int branch = 0;
  int topics = 0;
  double smoothing = 0.1;
  double switch_prob = 0.01;

  int SampleZipf(Rng* rng) const {
    const double u = rng->Uniform();
    size_t lo = 0, hi = zipf_cdf.size();
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (zipf_cdf[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return static_cast<int>(std::min(lo, zipf_cdf.size() - 1));
  }

  int SampleNext(int topic, int prev, Rng* rng) const {
    if (rng->Bernoulli(smoothing)) return SampleZipf(rng);
    const size_t row =
        (static_cast<size_t>(topic) * static_cast<size_t>(vocab) +
         static_cast<size_t>(prev)) *
        static_cast<size_t>(branch);
    const double u = rng->Uniform();
    for (int i = 0; i < branch; ++i) {
      if (u <= cum_probs[row + static_cast<size_t>(i)]) {
        return candidates[row + static_cast<size_t>(i)];
      }
    }
    return candidates[row + static_cast<size_t>(branch) - 1];
  }
};

BigramSource BuildSource(const SyntheticTextOptions& opts, Rng* rng) {
  BigramSource src;
  src.vocab = opts.vocab_size;
  src.branch = opts.branch_factor;
  src.topics = opts.num_topics;
  src.smoothing = opts.smoothing;
  src.switch_prob = opts.topic_switch_prob;

  // Zipfian unigram prior.
  src.zipf_cdf.resize(static_cast<size_t>(opts.vocab_size));
  double total = 0.0;
  for (int i = 0; i < opts.vocab_size; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), opts.zipf_exponent);
  }
  double acc = 0.0;
  for (int i = 0; i < opts.vocab_size; ++i) {
    acc += 1.0 /
           std::pow(static_cast<double>(i + 1), opts.zipf_exponent) / total;
    src.zipf_cdf[static_cast<size_t>(i)] = acc;
  }

  const size_t rows =
      static_cast<size_t>(opts.num_topics) *
      static_cast<size_t>(opts.vocab_size);
  const size_t bf = static_cast<size_t>(opts.branch_factor);
  src.candidates.resize(rows * bf);
  src.cum_probs.resize(rows * bf);
  for (size_t r = 0; r < rows; ++r) {
    double sum = 0.0;
    std::vector<double> w(bf);
    for (size_t i = 0; i < bf; ++i) {
      // Successors biased toward frequent tokens via the Zipf prior.
      src.candidates[r * bf + i] = src.SampleZipf(rng);
      w[i] = rng->Uniform(0.2, 1.0);
      sum += w[i];
    }
    double run = 0.0;
    for (size_t i = 0; i < bf; ++i) {
      run += w[i] / sum;
      src.cum_probs[r * bf + i] = run;
    }
    src.cum_probs[r * bf + bf - 1] = 1.0;
  }
  return src;
}

std::vector<int> Emit(const BigramSource& src, int64_t n, Rng* rng) {
  std::vector<int> out(static_cast<size_t>(n));
  int topic = 0;
  int prev = src.SampleZipf(rng);
  for (int64_t t = 0; t < n; ++t) {
    if (rng->Bernoulli(src.switch_prob)) {
      topic = static_cast<int>(
          rng->UniformInt(static_cast<uint64_t>(src.topics)));
    }
    const int tok = src.SampleNext(topic, prev, rng);
    out[static_cast<size_t>(t)] = tok;
    prev = tok;
  }
  return out;
}

}  // namespace

Result<TextCorpus> MakeSyntheticCorpus(const SyntheticTextOptions& opts) {
  if (opts.vocab_size < 4) {
    return Status::InvalidArgument("vocab too small");
  }
  if (opts.branch_factor < 1 || opts.branch_factor > opts.vocab_size) {
    return Status::InvalidArgument("branch factor out of range");
  }
  if (opts.train_tokens < 4 || opts.valid_tokens < 4 ||
      opts.test_tokens < 4) {
    return Status::InvalidArgument("token counts too small");
  }
  if (opts.num_topics < 1) {
    return Status::InvalidArgument("need at least one topic");
  }
  if (opts.topic_switch_prob < 0.0 || opts.topic_switch_prob > 1.0 ||
      opts.smoothing < 0.0 || opts.smoothing >= 1.0) {
    return Status::InvalidArgument("bad mixture probabilities");
  }
  Rng rng(opts.seed);
  const BigramSource src = BuildSource(opts, &rng);
  TextCorpus corpus;
  corpus.vocab_size = opts.vocab_size;
  Rng r1 = rng.Fork(), r2 = rng.Fork(), r3 = rng.Fork();
  corpus.train = Emit(src, opts.train_tokens, &r1);
  corpus.valid = Emit(src, opts.valid_tokens, &r2);
  corpus.test = Emit(src, opts.test_tokens, &r3);
  return corpus;
}

TextBatcher::TextBatcher(const std::vector<int>& stream, int64_t batch_size,
                         int64_t bptt)
    : batch_size_(batch_size), bptt_(bptt) {
  MS_CHECK(batch_size >= 1 && bptt >= 1);
  track_len_ = static_cast<int64_t>(stream.size()) / batch_size;
  MS_CHECK_MSG(track_len_ >= 2, "stream too short for this batch size");
  tracks_.resize(static_cast<size_t>(batch_size * track_len_));
  for (int64_t b = 0; b < batch_size; ++b) {
    for (int64_t t = 0; t < track_len_; ++t) {
      tracks_[static_cast<size_t>(b * track_len_ + t)] =
          stream[static_cast<size_t>(b * track_len_ + t)];
    }
  }
  num_chunks_ = (track_len_ - 1) / bptt_;
  MS_CHECK_MSG(num_chunks_ >= 1, "stream too short for this bptt");
}

void TextBatcher::Chunk(int64_t k, std::vector<int>* inputs,
                        std::vector<int>* targets) const {
  MS_CHECK(k >= 0 && k < num_chunks_);
  const int64_t start = k * bptt_;
  inputs->resize(static_cast<size_t>(bptt_ * batch_size_));
  targets->resize(static_cast<size_t>(bptt_ * batch_size_));
  for (int64_t t = 0; t < bptt_; ++t) {
    for (int64_t b = 0; b < batch_size_; ++b) {
      (*inputs)[static_cast<size_t>(t * batch_size_ + b)] =
          tracks_[static_cast<size_t>(b * track_len_ + start + t)];
      (*targets)[static_cast<size_t>(t * batch_size_ + b)] =
          tracks_[static_cast<size_t>(b * track_len_ + start + t + 1)];
    }
  }
}

}  // namespace ms
