// Synthetic language-modeling corpus standing in for Penn Tree Bank
// (offline substitution; see DESIGN.md). Tokens come from a topic-switching
// sparse bigram source with a Zipfian unigram prior: each topic owns a
// per-token transition table concentrated on `branch_factor` successors,
// and the active topic switches rarely. A unigram model reaches only the
// Zipf entropy; tracking the previous token (and, through the topic, longer
// history) cuts perplexity several-fold — wider recurrent models capture
// more of the tables, reproducing the paper's perplexity-vs-width shape.
#ifndef MODELSLICING_DATA_SYNTHETIC_TEXT_H_
#define MODELSLICING_DATA_SYNTHETIC_TEXT_H_

#include <vector>

#include "src/tensor/tensor.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace ms {

struct SyntheticTextOptions {
  int vocab_size = 200;
  int64_t train_tokens = 60000;
  int64_t valid_tokens = 6000;
  int64_t test_tokens = 6000;
  int branch_factor = 6;       ///< candidate next-tokens per (topic, token).
  double zipf_exponent = 1.0;
  int num_topics = 2;
  double topic_switch_prob = 0.01;
  double smoothing = 0.1;      ///< unigram fallback mass.
  uint64_t seed = 13;
};

struct TextCorpus {
  std::vector<int> train;
  std::vector<int> valid;
  std::vector<int> test;
  int vocab_size = 0;
};

Result<TextCorpus> MakeSyntheticCorpus(const SyntheticTextOptions& opts);

/// \brief PTB-style batching: the stream is cut into `batch_size` parallel
/// tracks; NextChunk yields (tokens, targets) windows of `bptt` steps laid
/// out (T, B) flattened time-major.
class TextBatcher {
 public:
  TextBatcher(const std::vector<int>& stream, int64_t batch_size,
              int64_t bptt);

  /// Number of (input, target) chunks per epoch.
  int64_t num_chunks() const { return num_chunks_; }
  int64_t batch_size() const { return batch_size_; }
  int64_t bptt() const { return bptt_; }

  /// Fill chunk `k`'s inputs/targets, each length bptt*batch_size, laid out
  /// time-major: index t*B + b.
  void Chunk(int64_t k, std::vector<int>* inputs,
             std::vector<int>* targets) const;

 private:
  std::vector<int> tracks_;  ///< (batch_size, track_len) row-major.
  int64_t batch_size_;
  int64_t bptt_;
  int64_t track_len_;
  int64_t num_chunks_;
};

}  // namespace ms

#endif  // MODELSLICING_DATA_SYNTHETIC_TEXT_H_
