// Inverted dropout: scales kept units by 1/(1-p) at training time so
// inference is a no-op.
#ifndef MODELSLICING_NN_DROPOUT_H_
#define MODELSLICING_NN_DROPOUT_H_

#include "src/nn/module.h"
#include "src/util/rng.h"

namespace ms {

/// \brief Inverted dropout with keep-probability 1 - p.
class Dropout : public Module {
 public:
  Dropout(double p, Rng* rng) : p_(p), rng_(rng) {
    MS_CHECK(p >= 0.0 && p < 1.0);
  }

  Tensor DoForward(const Tensor& x, bool training) override {
    if (!training || p_ == 0.0) {
      mask_.clear();
      return x;
    }
    const float scale = static_cast<float>(1.0 / (1.0 - p_));
    mask_.assign(static_cast<size_t>(x.size()), 0.0f);
    Tensor y = x;
    for (int64_t i = 0; i < y.size(); ++i) {
      if (rng_->Bernoulli(1.0 - p_)) {
        mask_[static_cast<size_t>(i)] = scale;
        y[i] *= scale;
      } else {
        y[i] = 0.0f;
      }
    }
    return y;
  }

  Tensor DoBackward(const Tensor& grad_out) override {
    if (mask_.empty()) return grad_out;
    MS_CHECK(grad_out.size() == static_cast<int64_t>(mask_.size()));
    Tensor g = grad_out;
    for (int64_t i = 0; i < g.size(); ++i) {
      g[i] *= mask_[static_cast<size_t>(i)];
    }
    return g;
  }

  std::string name() const override { return "dropout"; }

 private:
  double p_;
  Rng* rng_;
  std::vector<float> mask_;
};

}  // namespace ms

#endif  // MODELSLICING_NN_DROPOUT_H_
