// Token embedding lookup table. Input and output layers are excluded from
// slicing in the paper (Sec. 5.1.1); the embedding output dimension is
// nevertheless sliceable so stacked LSTMs above it can shrink their fan-in.
#ifndef MODELSLICING_NN_EMBEDDING_H_
#define MODELSLICING_NN_EMBEDDING_H_

#include <string>
#include <vector>

#include "src/nn/module.h"
#include "src/nn/slice_spec.h"
#include "src/util/rng.h"

namespace ms {

struct EmbeddingOptions {
  int64_t vocab_size = 0;
  int64_t dim = 0;
  int64_t groups = 1;
  bool slice_out = false;  ///< Slice the embedding dimension.
};

class Embedding {
 public:
  Embedding(EmbeddingOptions opts, Rng* rng, std::string name = "embed");

  /// tokens laid out (T, B) flattened; returns (T*B, active_dim).
  Tensor Forward(const std::vector<int>& tokens);

  /// Accumulates gradient rows for the tokens of the last Forward.
  void Backward(const Tensor& grad_out);

  void CollectParams(std::vector<ParamRef>* out);
  void SetSliceRate(double r);

  int64_t active_dim() const { return active_dim_; }
  int64_t vocab_size() const { return opts_.vocab_size; }

 private:
  EmbeddingOptions opts_;
  std::string name_;
  SliceSpec dim_spec_;
  int64_t active_dim_ = 0;

  Tensor table_;  ///< (vocab, dim)
  Tensor grad_;
  std::vector<int> cached_tokens_;
};

}  // namespace ms

#endif  // MODELSLICING_NN_EMBEDDING_H_
