// Losses. Not Modules: they take labels and terminate the backward chain.
#ifndef MODELSLICING_NN_LOSS_H_
#define MODELSLICING_NN_LOSS_H_

#include <vector>

#include "src/tensor/tensor.h"

namespace ms {

/// \brief Numerically-stable softmax cross-entropy over class logits.
class SoftmaxCrossEntropy {
 public:
  /// logits: (B, num_classes); labels: length-B class indices.
  /// Returns mean loss over the batch and caches softmax for Backward.
  float Forward(const Tensor& logits, const std::vector<int>& labels);

  /// Returns dL/dlogits (mean-reduced).
  Tensor Backward() const;

  /// Softmax probabilities from the last Forward, (B, num_classes).
  const Tensor& probs() const { return probs_; }

 private:
  Tensor probs_;
  std::vector<int> labels_;
};

/// \brief Per-token negative log-likelihood for language modeling.
/// logits: (T*B, vocab); targets: length T*B. Mean NLL; perplexity is
/// exp(mean NLL).
class SequenceNll {
 public:
  float Forward(const Tensor& logits, const std::vector<int>& targets);
  Tensor Backward() const;

 private:
  Tensor probs_;
  std::vector<int> targets_;
};

/// \brief Fraction of rows whose argmax equals the label.
float Accuracy(const Tensor& logits, const std::vector<int>& labels);

}  // namespace ms

#endif  // MODELSLICING_NN_LOSS_H_
