// GRU layer with model slicing (paper Sec. 3.3: "Model slicing for
// recurrent layers of RNN variants such as GRU and LSTM works similarly").
// All gate blocks [r, z, n] are sliced to the same active prefix of hidden
// units, regulated by the network-wide slice rate.
#ifndef MODELSLICING_NN_GRU_H_
#define MODELSLICING_NN_GRU_H_

#include <string>
#include <vector>

#include "src/nn/module.h"
#include "src/nn/slice_spec.h"
#include "src/tensor/prepack.h"
#include "src/util/rng.h"

namespace ms {

struct GruOptions {
  int64_t input_size = 0;
  int64_t hidden_size = 0;
  int64_t groups = 1;
  bool slice_in = true;
  bool slice_out = true;
  bool rescale = true;  ///< full/active fan-in rescaling, as in Lstm.
};

/// \brief Single-layer GRU over a (T, B, input) sequence; returns the
/// (T, B, hidden) hidden-state sequence.
///
/// Gate equations (PyTorch convention, separate input/hidden biases):
///   r = sigmoid(Wr x + br_x + Ur h + br_h)
///   z = sigmoid(Wz x + bz_x + Uz h + bz_h)
///   n = tanh  (Wn x + bn_x + r * (Un h + bn_h))
///   h' = (1 - z) * n + z * h
class Gru : public Module {
 public:
  Gru(GruOptions opts, Rng* rng, std::string name = "gru");

  Tensor DoForward(const Tensor& x, bool training) override;
  Tensor DoBackward(const Tensor& grad_out) override;
  void CollectParams(std::vector<ParamRef>* out) override;
  void DoSetSliceRate(double r) override;
  int64_t FlopsPerSample() const override;
  int64_t ActiveParams() const override;
  std::string name() const override { return name_; }

  int64_t active_in() const { return active_in_; }
  int64_t active_hidden() const { return active_hidden_; }

 private:
  // z_out(B, n) = rescale_x * x * Wx[gate]^T + bx[gate]; input contribution.
  // `int8` routes through the quantized packs (ensured by DoForward).
  // `fuse` folds the bias add into the GEMM epilogue (bias-only: GRU gate
  // nonlinearities act on xr + hr *sums*, so they cannot fuse per-GEMM).
  void InputGemm(int gate, const float* x, int64_t batch, bool int8,
                 bool fuse, float* z) const;
  // z_out(B, n) = rescale_h * h * Wh[gate]^T + bh[gate]; hidden contribution.
  void HiddenGemm(int gate, const float* h, int64_t batch, bool int8,
                  bool fuse, float* z) const;

  GruOptions opts_;
  std::string name_;
  SliceSpec in_spec_;
  SliceSpec hidden_spec_;
  int64_t active_in_ = 0;
  int64_t active_hidden_ = 0;
  float rescale_x_ = 1.0f;
  float rescale_h_ = 1.0f;

  Tensor wx_;  ///< (3 * hidden, input): gate blocks [r, z, n].
  Tensor wh_;  ///< (3 * hidden, hidden)
  Tensor bx_;  ///< (3 * hidden)
  Tensor bh_;  ///< (3 * hidden)
  Tensor wx_grad_, wh_grad_, bx_grad_, bh_grad_;

  // Prepacked gate blocks (see Lstm): _t = W^T for forward, _nt = W for
  // the backward dx/dh path; the recurrent packs amortize over all T.
  ops::PackedMatrix wx_pack_t_[3], wh_pack_t_[3];
  ops::PackedMatrix wx_pack_nt_[3], wh_pack_nt_[3];

  // Int8 forward path: quantized gate blocks, K segments on the input /
  // hidden slice-group boundaries so any rate reads a pack prefix.
  ops::QuantizedPack qwx_t_[3], qwh_t_[3];
  std::vector<int64_t> in_k_ends_, hidden_k_ends_;

  struct StepCache {
    Tensor r, z, n;   ///< gate activations, (B, active_hidden) each
    Tensor hn;        ///< Un h + bn_h (pre r-multiplication)
    Tensor h;         ///< output hidden state
  };
  std::vector<StepCache> steps_;
  Tensor cached_x_;
  int64_t cached_t_ = 0;
  int64_t cached_b_ = 0;
};

}  // namespace ms

#endif  // MODELSLICING_NN_GRU_H_
