#include "src/nn/norm.h"

#include <cmath>

#include "src/tensor/gemm_internal.h"

namespace ms {
namespace {

// Area = product of spatial dims after the channel dim; 1 for (B, C) input.
int64_t SpatialArea(const Tensor& x) {
  int64_t area = 1;
  for (int i = 2; i < x.ndim(); ++i) area *= x.dim(i);
  return area;
}

// Portable twin of detail::SumSqF32Avx2: the identical 4-lane decomposition
// (lane j accumulates elements p ≡ j mod 4, pairwise fold, scalar tail), so
// the AVX2 and portable flavors produce the same doubles bit for bit.
void SumSqF32Portable(const float* v, int64_t n, double* sum, double* sumsq) {
  double s[4] = {0.0, 0.0, 0.0, 0.0};
  double q[4] = {0.0, 0.0, 0.0, 0.0};
  int64_t p = 0;
  for (; p + 4 <= n; p += 4) {
    for (int j = 0; j < 4; ++j) {
      const double x = static_cast<double>(v[p + j]);
      s[j] += x;
      q[j] += x * x;
    }
  }
  double ts = (s[0] + s[1]) + (s[2] + s[3]);
  double tq = (q[0] + q[1]) + (q[2] + q[3]);
  for (; p < n; ++p) {
    const double x = static_cast<double>(v[p]);
    ts += x;
    tq += x * x;
  }
  *sum = ts;
  *sumsq = tq;
}

ops::detail::SumSqF32Fn ActiveSumSq() {
  static const ops::detail::SumSqF32Fn fn = [] {
    const ops::detail::SumSqF32Fn avx2 = ops::detail::Avx2SumSqF32();
    return avx2 != nullptr ? avx2 : &SumSqF32Portable;
  }();
  return fn;
}

template <ops::EpiAct Act>
void ApplyActInPlace(float* __restrict__ v, int64_t n) {
  for (int64_t p = 0; p < n; ++p) v[p] = ops::detail::EpiActApplyCT<Act>(v[p]);
}

// Fused activation as one vectorized sweep AFTER the normalization write,
// instead of a per-element runtime switch inside it: the act dispatch
// happens once per forward, the write loop stays branch-free for both the
// fused and unfused paths (identical pre-activation values by
// construction), and the activation itself is applied to the exact floats
// the unfused activation module would have read.
void ApplyFusedAct(ops::EpiAct act, float* v, int64_t n) {
  switch (act) {
    case ops::EpiAct::kRelu:
      ApplyActInPlace<ops::EpiAct::kRelu>(v, n);
      break;
    case ops::EpiAct::kSigmoid:
      ApplyActInPlace<ops::EpiAct::kSigmoid>(v, n);
      break;
    case ops::EpiAct::kTanh:
      ApplyActInPlace<ops::EpiAct::kTanh>(v, n);
      break;
    case ops::EpiAct::kNone:
      break;
  }
}

}  // namespace

// ---------------------------------------------------------------- GroupNorm

GroupNorm::GroupNorm(NormOptions opts, std::string name)
    : opts_(opts), name_(std::move(name)) {
  MS_CHECK(opts_.channels >= 1);
  spec_ = SliceSpec(opts_.channels,
                    std::min<int64_t>(opts_.groups, opts_.channels));
  active_channels_ = opts_.channels;
  active_groups_ = spec_.num_groups();
  gamma_ = Tensor::Full({opts_.channels}, 1.0f);
  beta_ = Tensor::Zeros({opts_.channels});
  gamma_grad_ = Tensor::Zeros({opts_.channels});
  beta_grad_ = Tensor::Zeros({opts_.channels});
}

void GroupNorm::DoSetSliceRate(double r) {
  if (!opts_.slice) return;
  active_groups_ = spec_.ActiveGroups(r);
  active_channels_ = spec_.GroupBoundary(active_groups_);
}

Tensor GroupNorm::DoForward(const Tensor& x, bool training) {
  (void)training;  // GN behaves identically at train and test time.
  MS_CHECK(x.ndim() >= 2);
  MS_CHECK_MSG(x.dim(1) == active_channels_,
               "GroupNorm input channels != active prefix");
  const int64_t batch = x.dim(0);
  const int64_t area = SpatialArea(x);
  cached_batch_ = batch;
  cached_area_ = area;
  cached_inv_std_.assign(static_cast<size_t>(batch * active_groups_), 0.0f);

  // Both outputs are fully overwritten below, so neither gets a zero-fill:
  // y is fresh-uninitialized, the xhat cache reuses its warmed buffer.
  Tensor y = Tensor::Uninit(x.shape());
  cached_xhat_.EnsureShape(x.shape());
  const ops::detail::SumSqF32Fn sumsq_fn = ActiveSumSq();
  const ops::EpiAct act = (!training && ops::FuseEpiloguesEnabled())
                              ? fused_act_
                              : ops::EpiAct::kNone;
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t g = 0; g < active_groups_; ++g) {
      const int64_t c0 = spec_.GroupBoundary(g);
      const int64_t c1 = spec_.GroupBoundary(g + 1);
      const int64_t count = (c1 - c0) * area;
      const float* xg = x.data() + (b * active_channels_ + c0) * area;
      double sum = 0.0, sumsq = 0.0;
      sumsq_fn(xg, count, &sum, &sumsq);
      const double mean = sum / static_cast<double>(count);
      double var = sumsq / static_cast<double>(count) - mean * mean;
      if (var < 0.0) var = 0.0;  // guard the one-pass identity's rounding
      const float inv_std =
          1.0f / std::sqrt(static_cast<float>(var) + opts_.eps);
      cached_inv_std_[static_cast<size_t>(b * active_groups_ + g)] = inv_std;

      float* xh = cached_xhat_.data() + (b * active_channels_ + c0) * area;
      float* yo = y.data() + (b * active_channels_ + c0) * area;
      for (int64_t c = c0; c < c1; ++c) {
        const float gam = gamma_[c];
        const float bet = beta_[c];
        const int64_t off = (c - c0) * area;
        for (int64_t p = 0; p < area; ++p) {
          const float xv = xg[off + p];
          const float h = (xv - static_cast<float>(mean)) * inv_std;
          xh[off + p] = h;
          yo[off + p] = gam * h + bet;
        }
      }
    }
  }
  ApplyFusedAct(act, y.data(), y.size());
  return y;
}

Tensor GroupNorm::DoBackward(const Tensor& grad_out) {
  const int64_t batch = cached_batch_;
  const int64_t area = cached_area_;
  MS_CHECK(grad_out.size() == cached_xhat_.size());

  Tensor grad_in(grad_out.shape());
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t g = 0; g < active_groups_; ++g) {
      const int64_t c0 = spec_.GroupBoundary(g);
      const int64_t c1 = spec_.GroupBoundary(g + 1);
      const int64_t count = (c1 - c0) * area;
      const float inv_std =
          cached_inv_std_[static_cast<size_t>(b * active_groups_ + g)];
      const float* go = grad_out.data() + (b * active_channels_ + c0) * area;
      const float* xh = cached_xhat_.data() + (b * active_channels_ + c0) * area;
      float* gi = grad_in.data() + (b * active_channels_ + c0) * area;

      // Accumulate dγ, dβ, and the two reduction terms of the GN backward.
      double sum_dxhat = 0.0;
      double sum_dxhat_xhat = 0.0;
      for (int64_t c = c0; c < c1; ++c) {
        const float gam = gamma_[c];
        const int64_t off = (c - c0) * area;
        double dgam = 0.0, dbet = 0.0;
        for (int64_t p = 0; p < area; ++p) {
          const float gv = go[off + p];
          const float hv = xh[off + p];
          dgam += static_cast<double>(gv) * hv;
          dbet += gv;
          const double dxh = static_cast<double>(gv) * gam;
          sum_dxhat += dxh;
          sum_dxhat_xhat += dxh * hv;
        }
        gamma_grad_[c] += static_cast<float>(dgam);
        beta_grad_[c] += static_cast<float>(dbet);
      }
      const float mean_dxhat =
          static_cast<float>(sum_dxhat / static_cast<double>(count));
      const float mean_dxhat_xhat =
          static_cast<float>(sum_dxhat_xhat / static_cast<double>(count));
      for (int64_t c = c0; c < c1; ++c) {
        const float gam = gamma_[c];
        const int64_t off = (c - c0) * area;
        for (int64_t p = 0; p < area; ++p) {
          const float dxh = go[off + p] * gam;
          gi[off + p] =
              inv_std * (dxh - mean_dxhat - xh[off + p] * mean_dxhat_xhat);
        }
      }
    }
  }
  return grad_in;
}

void GroupNorm::CollectParams(std::vector<ParamRef>* out) {
  out->push_back({name_ + ".gamma", &gamma_, &gamma_grad_, /*no_decay=*/true});
  out->push_back({name_ + ".beta", &beta_, &beta_grad_, /*no_decay=*/true});
}

// ---------------------------------------------------------------- BatchNorm

BatchNorm::BatchNorm(NormOptions opts, std::string name)
    : opts_(opts), name_(std::move(name)) {
  MS_CHECK(opts_.channels >= 1);
  spec_ = SliceSpec(opts_.channels,
                    std::min<int64_t>(opts_.groups, opts_.channels));
  active_channels_ = opts_.channels;
  gamma_ = Tensor::Full({opts_.channels}, 1.0f);
  beta_ = Tensor::Zeros({opts_.channels});
  gamma_grad_ = Tensor::Zeros({opts_.channels});
  beta_grad_ = Tensor::Zeros({opts_.channels});
  running_mean_ = Tensor::Zeros({opts_.channels});
  running_var_ = Tensor::Full({opts_.channels}, 1.0f);
}

void BatchNorm::DoSetSliceRate(double r) {
  if (!opts_.slice) return;
  active_channels_ = spec_.ActiveWidth(r);
}

Tensor BatchNorm::DoForward(const Tensor& x, bool training) {
  MS_CHECK(x.ndim() >= 2);
  MS_CHECK_MSG(x.dim(1) == active_channels_,
               "BatchNorm input channels != active prefix");
  const int64_t batch = x.dim(0);
  const int64_t area = SpatialArea(x);
  const int64_t count = batch * area;
  cached_batch_ = batch;
  cached_area_ = area;

  // Fully overwritten over the active prefix (== the whole tensor).
  Tensor y = Tensor::Uninit(x.shape());
  if (training) {
    cached_xhat_.EnsureShape(x.shape());
    cached_inv_std_.assign(static_cast<size_t>(active_channels_), 0.0f);
  }
  const ops::EpiAct act = (!training && ops::FuseEpiloguesEnabled())
                              ? fused_act_
                              : ops::EpiAct::kNone;
  for (int64_t c = 0; c < active_channels_; ++c) {
    float mean, inv_std;
    if (training) {
      double m = 0.0;
      for (int64_t b = 0; b < batch; ++b) {
        const float* xc = x.data() + (b * active_channels_ + c) * area;
        for (int64_t p = 0; p < area; ++p) m += xc[p];
      }
      m /= static_cast<double>(count);
      double v = 0.0;
      for (int64_t b = 0; b < batch; ++b) {
        const float* xc = x.data() + (b * active_channels_ + c) * area;
        for (int64_t p = 0; p < area; ++p) {
          const double d = xc[p] - m;
          v += d * d;
        }
      }
      v /= static_cast<double>(count);
      mean = static_cast<float>(m);
      inv_std = 1.0f / std::sqrt(static_cast<float>(v) + opts_.eps);
      running_mean_[c] = (1.0f - opts_.momentum) * running_mean_[c] +
                         opts_.momentum * mean;
      running_var_[c] = (1.0f - opts_.momentum) * running_var_[c] +
                        opts_.momentum * static_cast<float>(v);
      cached_inv_std_[static_cast<size_t>(c)] = inv_std;
    } else {
      mean = running_mean_[c];
      inv_std = 1.0f / std::sqrt(running_var_[c] + opts_.eps);
    }
    const float gam = gamma_[c];
    const float bet = beta_[c];
    for (int64_t b = 0; b < batch; ++b) {
      const float* xc = x.data() + (b * active_channels_ + c) * area;
      float* yc = y.data() + (b * active_channels_ + c) * area;
      float* hc = training
                      ? cached_xhat_.data() + (b * active_channels_ + c) * area
                      : nullptr;
      for (int64_t p = 0; p < area; ++p) {
        const float h = (xc[p] - mean) * inv_std;
        if (hc) hc[p] = h;
        yc[p] = gam * h + bet;
      }
    }
  }
  ApplyFusedAct(act, y.data(), y.size());
  return y;
}

Tensor BatchNorm::DoBackward(const Tensor& grad_out) {
  MS_CHECK_MSG(!cached_xhat_.empty(),
               "BatchNorm::Backward requires a training-mode Forward");
  const int64_t batch = cached_batch_;
  const int64_t area = cached_area_;
  const int64_t count = batch * area;

  Tensor grad_in(grad_out.shape());
  for (int64_t c = 0; c < active_channels_; ++c) {
    const float gam = gamma_[c];
    const float inv_std = cached_inv_std_[static_cast<size_t>(c)];
    double sum_g = 0.0, sum_gh = 0.0;
    for (int64_t b = 0; b < batch; ++b) {
      const float* gc = grad_out.data() + (b * active_channels_ + c) * area;
      const float* hc = cached_xhat_.data() + (b * active_channels_ + c) * area;
      for (int64_t p = 0; p < area; ++p) {
        sum_g += gc[p];
        sum_gh += static_cast<double>(gc[p]) * hc[p];
      }
    }
    gamma_grad_[c] += static_cast<float>(sum_gh);
    beta_grad_[c] += static_cast<float>(sum_g);
    const float mean_g = static_cast<float>(sum_g / count);
    const float mean_gh = static_cast<float>(sum_gh / count);
    for (int64_t b = 0; b < batch; ++b) {
      const float* gc = grad_out.data() + (b * active_channels_ + c) * area;
      const float* hc = cached_xhat_.data() + (b * active_channels_ + c) * area;
      float* ic = grad_in.data() + (b * active_channels_ + c) * area;
      for (int64_t p = 0; p < area; ++p) {
        ic[p] = gam * inv_std * (gc[p] - mean_g - hc[p] * mean_gh);
      }
    }
  }
  return grad_in;
}

void BatchNorm::CollectParams(std::vector<ParamRef>* out) {
  out->push_back({name_ + ".gamma", &gamma_, &gamma_grad_, /*no_decay=*/true});
  out->push_back({name_ + ".beta", &beta_, &beta_grad_, /*no_decay=*/true});
}

// ----------------------------------------------------------- MultiBatchNorm

MultiBatchNorm::MultiBatchNorm(NormOptions opts,
                               const std::vector<double>& rates,
                               std::string name)
    : name_(std::move(name)), rates_(rates) {
  MS_CHECK(!rates_.empty());
  for (size_t i = 0; i < rates_.size(); ++i) {
    norms_.push_back(std::make_unique<BatchNorm>(
        opts, name_ + ".bn" + std::to_string(i)));
    norms_.back()->SetSliceRate(rates_[i]);
  }
  active_ = rates_.size() - 1;  // Largest rate by convention (list sorted).
}

void MultiBatchNorm::DoSetSliceRate(double r) {
  // Select the BN whose rate is closest to r.
  size_t best = 0;
  double best_d = 1e9;
  for (size_t i = 0; i < rates_.size(); ++i) {
    const double d = std::abs(rates_[i] - r);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  active_ = best;
  norms_[active_]->SetSliceRate(r);
}

Tensor MultiBatchNorm::DoForward(const Tensor& x, bool training) {
  return norms_[active_]->Forward(x, training);
}

Tensor MultiBatchNorm::DoBackward(const Tensor& grad_out) {
  return norms_[active_]->Backward(grad_out);
}

void MultiBatchNorm::CollectParams(std::vector<ParamRef>* out) {
  for (auto& n : norms_) n->CollectParams(out);
}

int64_t MultiBatchNorm::ActiveParams() const {
  return norms_[active_]->ActiveParams();
}

}  // namespace ms
