#include "src/nn/serialize.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <fstream>

#include "src/tensor/prepack.h"
#include "src/util/crc32.h"
#include "src/util/fault.h"

namespace ms {
namespace {

constexpr uint32_t kMagic = 0x4D534C43;  // "MSLC"
constexpr uint32_t kVersion = 2;

void AppendPod(std::string* buf, const void* data, size_t n) {
  buf->append(reinterpret_cast<const char*>(data), n);
}

template <typename T>
void AppendPod(std::string* buf, const T& value) {
  AppendPod(buf, &value, sizeof(T));
}

/// Bounds-checked forward reader over an in-memory checkpoint image.
class Cursor {
 public:
  Cursor(const char* data, size_t size) : data_(data), size_(size) {}

  template <typename T>
  bool Read(T* out) {
    if (size_ - pos_ < sizeof(T)) return false;
    std::memcpy(out, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  /// Returns a pointer into the buffer and advances, or nullptr if short.
  const char* Take(size_t n) {
    if (size_ - pos_ < n) return nullptr;
    const char* p = data_ + pos_;
    pos_ += n;
    return p;
  }

  size_t remaining() const { return size_ - pos_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

Status WriteFileDurably(const std::string& buf, const std::string& path,
                        bool truncate_fault) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("cannot open for writing: " + tmp);
  }
  // Injected crash surface: persist only half the image and never rename,
  // exactly what a mid-write power cut leaves behind.
  const size_t limit = truncate_fault ? buf.size() / 2 : buf.size();
  size_t written = 0;
  while (written < limit) {
    const ssize_t w = ::write(fd, buf.data() + written, limit - written);
    if (w < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::IoError("write failed: " + tmp);
    }
    written += static_cast<size_t>(w);
  }
  if (truncate_fault) {
    ::close(fd);
    return Status::IoError("injected fault: checkpoint.write.truncate (" +
                           tmp + " left truncated, " + path + " untouched)");
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return Status::IoError("fsync failed: " + tmp);
  }
  if (::close(fd) != 0) {
    return Status::IoError("close failed: " + tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("rename failed: " + tmp + " -> " + path);
  }
  // Persist the rename itself (best-effort: some filesystems refuse
  // directory fsync; the data above is already durable).
  std::string dir = ".";
  const size_t slash = path.find_last_of('/');
  if (slash != std::string::npos) dir = path.substr(0, slash + 1);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return Status::OK();
}

}  // namespace

Status SaveParams(const std::vector<ParamRef>& params,
                  const std::string& path) {
  // Build the full image in memory first: the CRC needs every byte anyway,
  // and a single durable write is the whole crash-safety story.
  std::string buf;
  size_t total = sizeof(kMagic) + sizeof(kVersion) + sizeof(uint64_t);
  for (const auto& p : params) {
    total += sizeof(uint32_t) + p.name.size() + sizeof(uint32_t) +
             static_cast<size_t>(p.param->ndim()) * sizeof(int64_t) +
             static_cast<size_t>(p.param->size()) * sizeof(float);
  }
  buf.reserve(total + sizeof(uint32_t));
  AppendPod(&buf, kMagic);
  AppendPod(&buf, kVersion);
  AppendPod(&buf, static_cast<uint64_t>(params.size()));
  for (const auto& p : params) {
    AppendPod(&buf, static_cast<uint32_t>(p.name.size()));
    buf.append(p.name);
    AppendPod(&buf, static_cast<uint32_t>(p.param->ndim()));
    for (int i = 0; i < p.param->ndim(); ++i) {
      AppendPod(&buf, static_cast<int64_t>(p.param->dim(i)));
    }
    AppendPod(&buf, p.param->data(),
              static_cast<size_t>(p.param->size()) * sizeof(float));
  }
  const uint32_t crc = Crc32(buf.data(), buf.size());
  AppendPod(&buf, crc);
  const bool truncate_fault =
      fault::Registry::Global().ShouldFire(fault::kCheckpointTruncate);
  return WriteFileDurably(buf, path, truncate_fault);
}

Status LoadParams(const std::vector<ParamRef>& params,
                  const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::string buf((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  if (!in && !in.eof()) {
    return Status::IoError("read failed: " + path);
  }
  constexpr size_t kHeader =
      sizeof(uint32_t) + sizeof(uint32_t) + sizeof(uint64_t);
  if (buf.size() < kHeader + sizeof(uint32_t)) {
    return Status::InvalidArgument("checkpoint too short (" +
                                   std::to_string(buf.size()) + " bytes): " +
                                   path);
  }
  // Whole-file integrity before any structural trust: the CRC footer covers
  // every byte that precedes it.
  const size_t body = buf.size() - sizeof(uint32_t);
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, buf.data() + body, sizeof(stored_crc));
  if (Crc32(buf.data(), body) != stored_crc) {
    return Status::InvalidArgument("checkpoint CRC mismatch (corrupt): " +
                                   path);
  }
  Cursor cur(buf.data(), body);
  uint32_t magic = 0, version = 0;
  uint64_t count = 0;
  if (!cur.Read(&magic) || magic != kMagic) {
    return Status::InvalidArgument("bad checkpoint magic: " + path);
  }
  if (!cur.Read(&version) || version != kVersion) {
    return Status::InvalidArgument("unsupported checkpoint version " +
                                   std::to_string(version) + ": " + path);
  }
  if (!cur.Read(&count) || count != params.size()) {
    return Status::InvalidArgument(
        "checkpoint parameter count mismatch: expected " +
        std::to_string(params.size()) + ", got " + std::to_string(count));
  }
  // Validate every record first, remembering where each payload lives;
  // only a fully consistent file is applied (never a partial load).
  std::vector<const char*> payloads;
  payloads.reserve(params.size());
  for (const auto& p : params) {
    uint32_t name_len = 0;
    if (!cur.Read(&name_len) || name_len > 4096) {
      return Status::InvalidArgument("corrupt name record in " + path);
    }
    const char* name_bytes = cur.Take(name_len);
    if (name_bytes == nullptr ||
        std::string(name_bytes, name_len) != p.name) {
      return Status::InvalidArgument(
          "parameter name mismatch: expected '" + p.name + "' in " + path);
    }
    uint32_t rank = 0;
    if (!cur.Read(&rank) || rank != static_cast<uint32_t>(p.param->ndim())) {
      return Status::InvalidArgument("rank mismatch for " + p.name);
    }
    for (int i = 0; i < p.param->ndim(); ++i) {
      int64_t dim = 0;
      if (!cur.Read(&dim) || dim != p.param->dim(i)) {
        return Status::InvalidArgument("shape mismatch for " + p.name);
      }
    }
    const char* payload =
        cur.Take(static_cast<size_t>(p.param->size()) * sizeof(float));
    if (payload == nullptr) {
      return Status::InvalidArgument("truncated payload for " + p.name);
    }
    payloads.push_back(payload);
  }
  if (cur.remaining() != 0) {
    return Status::InvalidArgument("trailing bytes after last record in " +
                                   path);
  }
  for (size_t i = 0; i < params.size(); ++i) {
    std::memcpy(params[i].param->data(), payloads[i],
                static_cast<size_t>(params[i].param->size()) * sizeof(float));
  }
  // Weights were overwritten in place: any prepacked panels are now stale.
  ops::BumpWeightGeneration();
  return Status::OK();
}

Status CopyParams(Module* from, Module* to) {
  if (from == nullptr || to == nullptr) {
    return Status::InvalidArgument("CopyParams requires non-null modules");
  }
  std::vector<ParamRef> src, dst;
  from->CollectParams(&src);
  to->CollectParams(&dst);
  if (src.size() != dst.size()) {
    return Status::InvalidArgument(
        "parameter count mismatch: " + std::to_string(src.size()) + " vs " +
        std::to_string(dst.size()));
  }
  for (size_t i = 0; i < src.size(); ++i) {
    if (src[i].name != dst[i].name) {
      return Status::InvalidArgument("parameter name mismatch: '" +
                                     src[i].name + "' vs '" + dst[i].name +
                                     "'");
    }
    if (src[i].param->shape() != dst[i].param->shape()) {
      return Status::InvalidArgument("shape mismatch for " + src[i].name);
    }
    *dst[i].param = *src[i].param;
  }
  // The destination module's weights changed under its prepacked panels.
  ops::BumpWeightGeneration();
  return Status::OK();
}

void SnapshotParams(const std::vector<ParamRef>& params,
                    std::vector<Tensor>* out) {
  out->clear();
  out->reserve(params.size());
  for (const auto& p : params) out->push_back(*p.param);
}

Status RestoreParams(const std::vector<ParamRef>& params,
                     const std::vector<Tensor>& snapshot) {
  if (snapshot.size() != params.size()) {
    return Status::InvalidArgument(
        "snapshot size mismatch: " + std::to_string(snapshot.size()) +
        " vs " + std::to_string(params.size()));
  }
  for (size_t i = 0; i < params.size(); ++i) {
    if (snapshot[i].shape() != params[i].param->shape()) {
      return Status::InvalidArgument("snapshot shape mismatch for " +
                                     params[i].name);
    }
  }
  for (size_t i = 0; i < params.size(); ++i) {
    *params[i].param = snapshot[i];
  }
  ops::BumpWeightGeneration();
  return Status::OK();
}

}  // namespace ms
