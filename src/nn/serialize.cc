#include "src/nn/serialize.h"

#include <cstdint>
#include <fstream>

#include "src/tensor/prepack.h"

namespace ms {
namespace {

constexpr uint32_t kMagic = 0x4D534C43;  // "MSLC"
constexpr uint32_t kVersion = 1;

template <typename T>
void WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

}  // namespace

Status SaveParams(const std::vector<ParamRef>& params,
                  const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) {
    return Status::IoError("cannot open for writing: " + path);
  }
  WritePod(out, kMagic);
  WritePod(out, kVersion);
  WritePod(out, static_cast<uint64_t>(params.size()));
  for (const auto& p : params) {
    WritePod(out, static_cast<uint32_t>(p.name.size()));
    out.write(p.name.data(), static_cast<std::streamsize>(p.name.size()));
    WritePod(out, static_cast<uint32_t>(p.param->ndim()));
    for (int i = 0; i < p.param->ndim(); ++i) {
      WritePod(out, static_cast<int64_t>(p.param->dim(i)));
    }
    out.write(reinterpret_cast<const char*>(p.param->data()),
              static_cast<std::streamsize>(p.param->size() * sizeof(float)));
  }
  if (!out) {
    return Status::IoError("write failed: " + path);
  }
  return Status::OK();
}

Status LoadParams(const std::vector<ParamRef>& params,
                  const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IoError("cannot open for reading: " + path);
  }
  uint32_t magic = 0, version = 0;
  uint64_t count = 0;
  if (!ReadPod(in, &magic) || magic != kMagic) {
    return Status::InvalidArgument("bad checkpoint magic: " + path);
  }
  if (!ReadPod(in, &version) || version != kVersion) {
    return Status::InvalidArgument("unsupported checkpoint version");
  }
  if (!ReadPod(in, &count) || count != params.size()) {
    return Status::InvalidArgument(
        "checkpoint parameter count mismatch: expected " +
        std::to_string(params.size()) + ", got " + std::to_string(count));
  }
  for (const auto& p : params) {
    uint32_t name_len = 0;
    if (!ReadPod(in, &name_len) || name_len > 4096) {
      return Status::InvalidArgument("corrupt name record");
    }
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    if (!in || name != p.name) {
      return Status::InvalidArgument("parameter name mismatch: expected '" +
                                     p.name + "', got '" + name + "'");
    }
    uint32_t rank = 0;
    if (!ReadPod(in, &rank) || rank != static_cast<uint32_t>(p.param->ndim())) {
      return Status::InvalidArgument("rank mismatch for " + p.name);
    }
    for (int i = 0; i < p.param->ndim(); ++i) {
      int64_t dim = 0;
      if (!ReadPod(in, &dim) || dim != p.param->dim(i)) {
        return Status::InvalidArgument("shape mismatch for " + p.name);
      }
    }
    in.read(reinterpret_cast<char*>(p.param->data()),
            static_cast<std::streamsize>(p.param->size() * sizeof(float)));
    if (!in) {
      return Status::IoError("truncated payload for " + p.name);
    }
  }
  // Weights were overwritten in place: any prepacked panels are now stale.
  ops::BumpWeightGeneration();
  return Status::OK();
}

Status CopyParams(Module* from, Module* to) {
  if (from == nullptr || to == nullptr) {
    return Status::InvalidArgument("CopyParams requires non-null modules");
  }
  std::vector<ParamRef> src, dst;
  from->CollectParams(&src);
  to->CollectParams(&dst);
  if (src.size() != dst.size()) {
    return Status::InvalidArgument(
        "parameter count mismatch: " + std::to_string(src.size()) + " vs " +
        std::to_string(dst.size()));
  }
  for (size_t i = 0; i < src.size(); ++i) {
    if (src[i].name != dst[i].name) {
      return Status::InvalidArgument("parameter name mismatch: '" +
                                     src[i].name + "' vs '" + dst[i].name +
                                     "'");
    }
    if (src[i].param->shape() != dst[i].param->shape()) {
      return Status::InvalidArgument("shape mismatch for " + src[i].name);
    }
    *dst[i].param = *src[i].param;
  }
  // The destination module's weights changed under its prepacked panels.
  ops::BumpWeightGeneration();
  return Status::OK();
}

}  // namespace ms
