// Base class for neural-network layers with manual backprop and dynamic
// width slicing. Activations flowing between layers are *compact*: a layer
// sliced to m of M input channels receives a tensor whose channel dimension
// is m, exactly mirroring the paper's claim that only active components
// reside in memory / participate in computation.
#ifndef MODELSLICING_NN_MODULE_H_
#define MODELSLICING_NN_MODULE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/tensor/quant.h"
#include "src/tensor/tensor.h"

namespace ms {

/// \brief A named (parameter, gradient) pair exposed to optimizers.
///
/// Parameters and gradients are always full-size; a sliced forward/backward
/// touches only the active prefix, leaving the rest of the gradient zero —
/// which is exactly Algorithm 1's accumulation semantics.
struct ParamRef {
  std::string name;
  Tensor* param = nullptr;
  Tensor* grad = nullptr;
  /// Parameters flagged no_decay (biases, norm scales) skip weight decay.
  bool no_decay = false;
};

/// \brief Abstract layer: forward, backward, parameters, slicing.
///
/// The public entry points are non-virtual (NVI): they hook into the
/// observability subsystem (per-layer/per-rate profiling via
/// obs::SliceProfiler, spans via obs::TraceCollector) before dispatching to
/// the Do* virtuals that layers override. With no profiler active and
/// tracing disabled the hooks cost two relaxed atomic loads.
class Module {
 public:
  virtual ~Module() = default;

  /// Compute the layer output. `training` toggles dropout / batch-stat
  /// collection. Input/output are compact w.r.t. the current slice rate.
  Tensor Forward(const Tensor& x, bool training);

  /// Given dL/d(output), accumulate parameter gradients (into the active
  /// prefix) and return dL/d(input). Must be called after Forward with the
  /// same slice rate; layers cache what they need.
  Tensor Backward(const Tensor& grad_out);

  /// Set the current slice rate r in (0, 1]. Non-sliceable layers ignore it.
  void SetSliceRate(double r);

  /// Set the inference precision: the second elastic axis, orthogonal to
  /// the slice rate. Int8 affects DoForward only (inference-time weight +
  /// dynamic activation quantization; Backward always runs fp32); layers
  /// without a quantized path ignore it. Containers propagate to children.
  void SetPrecision(Precision p);
  Precision precision() const { return precision_; }

  /// Append this layer's parameters (if any).
  virtual void CollectParams(std::vector<ParamRef>* out) { (void)out; }

  /// Multiply-accumulate count for one sample at the current slice rate.
  virtual int64_t FlopsPerSample() const { return 0; }

  /// Number of parameters touched at the current slice rate.
  virtual int64_t ActiveParams() const { return 0; }

  /// True when an inference forward may skip this layer entirely because a
  /// preceding layer absorbed its work (an activation fused into the
  /// producing GEMM's epilogue — see nn/fusion.h). Containers consult it
  /// per child; training forwards never skip.
  virtual bool BypassedAtInference() const { return false; }

  virtual std::string name() const = 0;

 protected:
  /// Layer implementations; see the public Forward/Backward/SetSliceRate.
  virtual Tensor DoForward(const Tensor& x, bool training) = 0;
  virtual Tensor DoBackward(const Tensor& grad_out) = 0;
  virtual void DoSetSliceRate(double r) { (void)r; }
  virtual void DoSetPrecision(Precision p) { (void)p; }

  /// Current precision for DoForward implementations.
  Precision precision_ = Precision::kFp32;
};

/// \brief Runs child modules in order; the workhorse container for CNN/MLP
/// models.
class Sequential : public Module {
 public:
  Sequential() = default;
  explicit Sequential(std::string name) : name_(std::move(name)) {}

  Sequential* Add(std::unique_ptr<Module> m) {
    children_.push_back(std::move(m));
    return this;
  }

  template <typename T, typename... Args>
  T* Emplace(Args&&... args) {
    auto m = std::make_unique<T>(std::forward<Args>(args)...);
    T* ptr = m.get();
    children_.push_back(std::move(m));
    return ptr;
  }

  void CollectParams(std::vector<ParamRef>* out) override {
    for (auto& child : children_) child->CollectParams(out);
  }

  int64_t FlopsPerSample() const override {
    int64_t total = 0;
    for (const auto& child : children_) total += child->FlopsPerSample();
    return total;
  }

  int64_t ActiveParams() const override {
    int64_t total = 0;
    for (const auto& child : children_) total += child->ActiveParams();
    return total;
  }

  size_t size() const { return children_.size(); }
  Module* child(size_t i) { return children_[i].get(); }

  std::string name() const override { return name_; }

 protected:
  Tensor DoForward(const Tensor& x, bool training) override {
    Tensor h = x;
    bypassed_last_.assign(children_.size(), 0);
    for (size_t i = 0; i < children_.size(); ++i) {
      if (!training && children_[i]->BypassedAtInference()) {
        bypassed_last_[i] = 1;
        continue;
      }
      h = children_[i]->Forward(h, training);
    }
    return h;
  }

  Tensor DoBackward(const Tensor& grad_out) override {
    // Children bypassed by the last forward did not run and hold no cached
    // state — skip them on the way back too (only reachable after an
    // inference forward, where gradients are shape-propagation only).
    Tensor g = grad_out;
    for (size_t i = children_.size(); i-- > 0;) {
      if (i < bypassed_last_.size() && bypassed_last_[i]) continue;
      g = children_[i]->Backward(g);
    }
    return g;
  }

  void DoSetSliceRate(double r) override {
    for (auto& child : children_) child->SetSliceRate(r);
  }

  void DoSetPrecision(Precision p) override {
    for (auto& child : children_) child->SetPrecision(p);
  }

 private:
  std::string name_ = "sequential";
  std::vector<std::unique_ptr<Module>> children_;
  std::vector<uint8_t> bypassed_last_;  ///< per-child skip flags, last forward
};

}  // namespace ms

#endif  // MODELSLICING_NN_MODULE_H_
