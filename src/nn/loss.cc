#include "src/nn/loss.h"

#include <cmath>

#include "src/tensor/tensor_ops.h"
#include "src/util/status.h"

namespace ms {
namespace {

float XentForward(const Tensor& logits, const std::vector<int>& labels,
                  Tensor* probs) {
  MS_CHECK(logits.ndim() == 2);
  const int64_t rows = logits.dim(0);
  const int64_t cols = logits.dim(1);
  MS_CHECK(static_cast<int64_t>(labels.size()) == rows);
  *probs = Tensor({rows, cols});
  ops::SoftmaxRows(logits, rows, cols, probs);
  double loss = 0.0;
  for (int64_t r = 0; r < rows; ++r) {
    const int y = labels[static_cast<size_t>(r)];
    MS_CHECK(y >= 0 && y < cols);
    const float p = probs->at2(r, y);
    loss -= std::log(std::max(p, 1e-12f));
  }
  return static_cast<float>(loss / static_cast<double>(rows));
}

Tensor XentBackward(const Tensor& probs, const std::vector<int>& labels) {
  const int64_t rows = probs.dim(0);
  const int64_t cols = probs.dim(1);
  Tensor grad = probs;
  const float inv = 1.0f / static_cast<float>(rows);
  for (int64_t r = 0; r < rows; ++r) {
    float* row = grad.data() + r * cols;
    row[labels[static_cast<size_t>(r)]] -= 1.0f;
    for (int64_t c = 0; c < cols; ++c) row[c] *= inv;
  }
  return grad;
}

}  // namespace

float SoftmaxCrossEntropy::Forward(const Tensor& logits,
                                   const std::vector<int>& labels) {
  labels_ = labels;
  return XentForward(logits, labels, &probs_);
}

Tensor SoftmaxCrossEntropy::Backward() const {
  return XentBackward(probs_, labels_);
}

float SequenceNll::Forward(const Tensor& logits,
                           const std::vector<int>& targets) {
  targets_ = targets;
  return XentForward(logits, targets, &probs_);
}

Tensor SequenceNll::Backward() const {
  return XentBackward(probs_, targets_);
}

float Accuracy(const Tensor& logits, const std::vector<int>& labels) {
  MS_CHECK(logits.ndim() == 2);
  const int64_t rows = logits.dim(0);
  MS_CHECK(static_cast<int64_t>(labels.size()) == rows);
  std::vector<int> pred;
  ops::ArgmaxRows(logits, rows, logits.dim(1), &pred);
  int64_t correct = 0;
  for (int64_t r = 0; r < rows; ++r) {
    if (pred[static_cast<size_t>(r)] == labels[static_cast<size_t>(r)]) {
      ++correct;
    }
  }
  return static_cast<float>(correct) / static_cast<float>(rows);
}

}  // namespace ms
