// Group-boundary math for model slicing (paper Sec. 3.1).
//
// A layer's basic components (neurons / channels / hidden units) are divided
// into G contiguous, ordered groups. A slice rate r selects the prefix of
// groups whose rightmost boundary g_i satisfies r_i = g_i / width. All
// sliced layers share the network-wide rate; each layer maps it to its own
// active width through a SliceSpec.
#ifndef MODELSLICING_NN_SLICE_SPEC_H_
#define MODELSLICING_NN_SLICE_SPEC_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "src/util/status.h"

namespace ms {

/// \brief Maps a slice rate to an active-width prefix aligned to group
/// boundaries for one dimension of one layer.
class SliceSpec {
 public:
  SliceSpec() = default;

  /// \param full_width total number of components (neurons/channels).
  /// \param num_groups number of ordered groups G (1 <= G <= full_width).
  SliceSpec(int64_t full_width, int64_t num_groups)
      : full_(full_width), groups_(num_groups) {
    MS_CHECK(full_width >= 1);
    MS_CHECK(num_groups >= 1 && num_groups <= full_width);
    boundaries_.resize(static_cast<size_t>(groups_) + 1);
    for (int64_t k = 0; k <= groups_; ++k) {
      boundaries_[static_cast<size_t>(k)] = static_cast<int64_t>(
          std::llround(static_cast<double>(full_) * static_cast<double>(k) /
                       static_cast<double>(groups_)));
    }
    MS_CHECK(boundaries_.front() == 0 && boundaries_.back() == full_);
  }

  int64_t full_width() const { return full_; }
  int64_t num_groups() const { return groups_; }

  /// Number of active groups for rate r: round(r * G), clamped to [1, G].
  int64_t ActiveGroups(double r) const {
    MS_CHECK_MSG(r > 0.0 && r <= 1.0, "slice rate must be in (0, 1]");
    int64_t k = static_cast<int64_t>(std::llround(r * static_cast<double>(groups_)));
    if (k < 1) k = 1;
    if (k > groups_) k = groups_;
    return k;
  }

  /// Active component count (prefix width) for rate r.
  int64_t ActiveWidth(double r) const {
    return boundaries_[static_cast<size_t>(ActiveGroups(r))];
  }

  /// Rightmost component index (exclusive) of group k, 0 <= k <= G.
  int64_t GroupBoundary(int64_t k) const {
    MS_CHECK(k >= 0 && k <= groups_);
    return boundaries_[static_cast<size_t>(k)];
  }

  /// Width of group k (0-based).
  int64_t GroupWidth(int64_t k) const {
    MS_CHECK(k >= 0 && k < groups_);
    return boundaries_[static_cast<size_t>(k + 1)] -
           boundaries_[static_cast<size_t>(k)];
  }

  /// The exact rate realised by k active groups (g_k / width may differ
  /// slightly from the requested r when widths don't divide evenly).
  double RealizedRate(double r) const {
    return static_cast<double>(ActiveWidth(r)) / static_cast<double>(full_);
  }

 private:
  int64_t full_ = 1;
  int64_t groups_ = 1;
  std::vector<int64_t> boundaries_;
};

}  // namespace ms

#endif  // MODELSLICING_NN_SLICE_SPEC_H_
