// Pooling and flatten layers; channel-count agnostic so they pass compact
// sliced activations through unchanged.
#ifndef MODELSLICING_NN_POOLING_H_
#define MODELSLICING_NN_POOLING_H_

#include "src/nn/module.h"
#include "src/tensor/tensor_ops.h"

namespace ms {

class MaxPool2d : public Module {
 public:
  MaxPool2d(int64_t kernel, int64_t stride)
      : kernel_(kernel), stride_(stride) {}

  Tensor DoForward(const Tensor& x, bool training) override {
    (void)training;
    MS_CHECK(x.ndim() == 4);
    n_ = x.dim(0);
    c_ = x.dim(1);
    h_ = x.dim(2);
    w_ = x.dim(3);
    const int64_t oh = (h_ - kernel_) / stride_ + 1;
    const int64_t ow = (w_ - kernel_) / stride_ + 1;
    Tensor y({n_, c_, oh, ow});
    ops::MaxPool2d(x, n_, c_, h_, w_, kernel_, stride_, &y, &argmax_);
    oh_ = oh;
    ow_ = ow;
    return y;
  }

  Tensor DoBackward(const Tensor& grad_out) override {
    Tensor grad_in({n_, c_, h_, w_});
    ops::MaxPool2dBackward(grad_out, argmax_, n_ * c_, h_ * w_, oh_ * ow_,
                           &grad_in);
    return grad_in;
  }

  std::string name() const override { return "maxpool"; }

 private:
  int64_t kernel_, stride_;
  int64_t n_ = 0, c_ = 0, h_ = 0, w_ = 0, oh_ = 0, ow_ = 0;
  std::vector<int32_t> argmax_;
};

/// \brief Global average pooling: (B, C, H, W) -> (B, C).
class GlobalAvgPool : public Module {
 public:
  Tensor DoForward(const Tensor& x, bool training) override {
    (void)training;
    MS_CHECK(x.ndim() == 4);
    n_ = x.dim(0);
    c_ = x.dim(1);
    h_ = x.dim(2);
    w_ = x.dim(3);
    const int64_t area = h_ * w_;
    Tensor y({n_, c_});
    const float inv = 1.0f / static_cast<float>(area);
    for (int64_t i = 0; i < n_ * c_; ++i) {
      const float* plane = x.data() + i * area;
      float acc = 0.0f;
      for (int64_t p = 0; p < area; ++p) acc += plane[p];
      y[i] = acc * inv;
    }
    return y;
  }

  Tensor DoBackward(const Tensor& grad_out) override {
    const int64_t area = h_ * w_;
    Tensor grad_in({n_, c_, h_, w_});
    const float inv = 1.0f / static_cast<float>(area);
    for (int64_t i = 0; i < n_ * c_; ++i) {
      const float g = grad_out[i] * inv;
      float* plane = grad_in.data() + i * area;
      for (int64_t p = 0; p < area; ++p) plane[p] = g;
    }
    return grad_in;
  }

  std::string name() const override { return "gap"; }

 private:
  int64_t n_ = 0, c_ = 0, h_ = 0, w_ = 0;
};

/// \brief (B, C, H, W) -> (B, C*H*W); inverse on backward.
class Flatten : public Module {
 public:
  Tensor DoForward(const Tensor& x, bool training) override {
    (void)training;
    shape_ = x.shape();
    int64_t rest = 1;
    for (int i = 1; i < x.ndim(); ++i) rest *= x.dim(i);
    return x.Reshaped({x.dim(0), rest});
  }

  Tensor DoBackward(const Tensor& grad_out) override {
    return grad_out.Reshaped(shape_);
  }

  std::string name() const override { return "flatten"; }

 private:
  std::vector<int64_t> shape_;
};

}  // namespace ms

#endif  // MODELSLICING_NN_POOLING_H_
