#include "src/nn/fusion.h"

#include "src/nn/activations.h"
#include "src/nn/conv2d.h"
#include "src/nn/dense.h"
#include "src/nn/depthwise_conv.h"
#include "src/nn/grouped_conv.h"
#include "src/nn/norm.h"
#include "src/nn/residual.h"

namespace ms {
namespace {

// Plants `act` into the producer's inference epilogue. Returns false when
// the module kind cannot absorb an activation (pooling, dropout, ...).
bool PlantActivation(Module* producer, ops::EpiAct act) {
  if (auto* d = dynamic_cast<Dense*>(producer)) {
    d->SetFusedActivation(act);
    return true;
  }
  if (auto* c = dynamic_cast<Conv2d*>(producer)) {
    c->SetFusedActivation(act);
    return true;
  }
  if (auto* g = dynamic_cast<GroupedConv2d*>(producer)) {
    g->SetFusedActivation(act);
    return true;
  }
  if (auto* dw = dynamic_cast<DepthwiseConv2d*>(producer)) {
    dw->SetFusedActivation(act);
    return true;
  }
  if (auto* gn = dynamic_cast<GroupNorm*>(producer)) {
    gn->SetFusedActivation(act);
    return true;
  }
  if (auto* bn = dynamic_cast<BatchNorm*>(producer)) {
    bn->SetFusedActivation(act);
    return true;
  }
  if (auto* mbn = dynamic_cast<MultiBatchNorm*>(producer)) {
    mbn->SetFusedActivation(act);
    return true;
  }
  return false;
}

}  // namespace

int64_t FuseActivations(Module* root) {
  int64_t fused = 0;
  if (auto* seq = dynamic_cast<Sequential*>(root)) {
    for (size_t i = 0; i < seq->size(); ++i) {
      fused += FuseActivations(seq->child(i));
    }
    for (size_t i = 0; i + 1 < seq->size(); ++i) {
      Module* producer = seq->child(i);
      if (auto* relu = dynamic_cast<ReLU*>(seq->child(i + 1))) {
        if (PlantActivation(producer, ops::EpiAct::kRelu)) {
          relu->set_fused(true);
          ++fused;
        }
      } else if (auto* th = dynamic_cast<Tanh*>(seq->child(i + 1))) {
        if (PlantActivation(producer, ops::EpiAct::kTanh)) {
          th->set_fused(true);
          ++fused;
        }
      }
    }
    return fused;
  }
  if (auto* res = dynamic_cast<ResidualBlock*>(root)) {
    return FuseActivations(res->body());
  }
  return 0;
}

}  // namespace ms
