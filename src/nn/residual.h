// Pre-activation residual block (He et al. [17]) under model slicing.
// y = shortcut(x) + body(x); the identity shortcut requires equal active
// widths on both sides, which holds because all sliced layers share one
// network-wide rate.
#ifndef MODELSLICING_NN_RESIDUAL_H_
#define MODELSLICING_NN_RESIDUAL_H_

#include <memory>
#include <string>

#include "src/nn/module.h"
#include "src/tensor/tensor_ops.h"

namespace ms {

class ResidualBlock : public Module {
 public:
  /// \param body the residual transformation F(x).
  /// \param shortcut nullptr for identity, or a projection (e.g. 1x1 conv
  ///        with stride) when width/resolution changes.
  ResidualBlock(std::unique_ptr<Module> body,
                std::unique_ptr<Module> shortcut, std::string name = "resblock")
      : body_(std::move(body)),
        shortcut_(std::move(shortcut)),
        name_(std::move(name)) {}

  Tensor DoForward(const Tensor& x, bool training) override {
    Tensor f = body_->Forward(x, training);
    if (shortcut_ != nullptr) {
      Tensor s = shortcut_->Forward(x, training);
      MS_CHECK_MSG(s.SameShape(f), "residual shapes diverge");
      ops::AddInPlace(&f, s);
      return f;
    }
    MS_CHECK_MSG(f.SameShape(x), "identity residual needs matching shapes");
    ops::AddInPlace(&f, x);
    return f;
  }

  Tensor DoBackward(const Tensor& grad_out) override {
    Tensor g = body_->Backward(grad_out);
    if (shortcut_ != nullptr) {
      Tensor gs = shortcut_->Backward(grad_out);
      ops::AddInPlace(&g, gs);
      return g;
    }
    ops::AddInPlace(&g, grad_out);
    return g;
  }

  void CollectParams(std::vector<ParamRef>* out) override {
    body_->CollectParams(out);
    if (shortcut_ != nullptr) shortcut_->CollectParams(out);
  }

  void DoSetSliceRate(double r) override {
    body_->SetSliceRate(r);
    if (shortcut_ != nullptr) shortcut_->SetSliceRate(r);
  }

  int64_t FlopsPerSample() const override {
    int64_t f = body_->FlopsPerSample();
    if (shortcut_ != nullptr) f += shortcut_->FlopsPerSample();
    return f;
  }

  int64_t ActiveParams() const override {
    int64_t p = body_->ActiveParams();
    if (shortcut_ != nullptr) p += shortcut_->ActiveParams();
    return p;
  }

  Module* body() { return body_.get(); }

  std::string name() const override { return name_; }

 private:
  std::unique_ptr<Module> body_;
  std::unique_ptr<Module> shortcut_;
  std::string name_;
};

}  // namespace ms

#endif  // MODELSLICING_NN_RESIDUAL_H_
