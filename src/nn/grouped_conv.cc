#include "src/nn/grouped_conv.h"

#include <cmath>

#include "src/tensor/scratch.h"
#include "src/tensor/tensor_ops.h"

namespace ms {

GroupedConv2d::GroupedConv2d(GroupedConv2dOptions opts, Rng* rng,
                             std::string name)
    : opts_(opts), name_(std::move(name)) {
  MS_CHECK(opts_.groups >= 1);
  MS_CHECK_MSG(opts_.in_channels % opts_.groups == 0,
               "in_channels must divide by groups");
  MS_CHECK_MSG(opts_.out_channels % opts_.groups == 0,
               "out_channels must divide by groups");
  in_per_group_ = opts_.in_channels / opts_.groups;
  out_per_group_ = opts_.out_channels / opts_.groups;
  active_groups_ = opts_.groups;

  const int64_t fan_in = in_per_group_ * opts_.kernel * opts_.kernel;
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  w_ = Tensor::Randn({opts_.groups, out_per_group_, fan_in}, rng, stddev);
  w_grad_ = Tensor::Zeros(w_.shape());
}

void GroupedConv2d::DoSetSliceRate(double r) {
  if (!opts_.slice) return;
  SliceSpec spec(opts_.groups, opts_.groups);
  active_groups_ = spec.ActiveWidth(r);
}

Tensor GroupedConv2d::DoForward(const Tensor& x, bool training) {
  MS_CHECK(x.ndim() == 4);
  MS_CHECK_MSG(x.dim(1) == active_in(),
               "GroupedConv2d channels != active prefix");
  const int64_t batch = x.dim(0);
  const int64_t h = x.dim(2);
  const int64_t w = x.dim(3);
  const int64_t k = opts_.kernel;
  const int64_t oh = (h + 2 * opts_.pad - k) / opts_.stride + 1;
  const int64_t ow = (w + 2 * opts_.pad - k) / opts_.stride + 1;
  MS_CHECK(oh >= 1 && ow >= 1);
  (void)training;
  cached_x_ = x;
  cached_h_ = h;
  cached_w_ = w;
  last_oh_ = oh;
  last_ow_ = ow;

  const int64_t out_area = oh * ow;
  const int64_t col_rows = in_per_group_ * k * k;
  // No bias in this layer: the inference epilogue carries only a planted
  // activation (see nn/fusion.h).
  const bool fuse = !training && ops::FuseEpiloguesEnabled();
  ops::Epilogue epi;
  if (fuse) epi.act = fused_act_;
  Tensor y = Tensor::Uninit({batch, active_out(), oh, ow});
  const float* xd = x.data();
  float* yd = y.data();
  // Pack the active branches' weights once, before the fan-out.
  // Int8 is inference-only; training always contracts in fp32.
  const bool int8 = precision_ == Precision::kInt8 && !training;
  if (int8) {
    if (qpacks_t_.size() < static_cast<size_t>(opts_.groups)) {
      qpacks_t_.resize(static_cast<size_t>(opts_.groups));
    }
    const std::vector<int64_t> ends = {col_rows};
    for (int64_t g = 0; g < active_groups_; ++g) {
      ops::EnsureQuantizedB(/*trans_b=*/true, col_rows, out_per_group_,
                            w_.data() + g * out_per_group_ * col_rows,
                            col_rows, ends,
                            &qpacks_t_[static_cast<size_t>(g)]);
    }
  } else {
    if (wpacks_.size() < static_cast<size_t>(opts_.groups)) {
      wpacks_.resize(static_cast<size_t>(opts_.groups));
    }
    for (int64_t g = 0; g < active_groups_; ++g) {
      ops::EnsurePackedA(/*trans_a=*/false, out_per_group_, col_rows,
                         w_.data() + g * out_per_group_ * col_rows, col_rows,
                         &wpacks_[static_cast<size_t>(g)]);
    }
  }
  // Parallel over images; groups run serially inside each shard with one
  // arena-backed im2col buffer per worker.
  ops::ParallelForCompute(batch, [&](int64_t b0, int64_t b1) {
    ScratchArena& arena = ScratchArena::ForThread();
    ScratchArena::Scope scope(arena);
    float* cols = arena.Alloc(col_rows * out_area);
    for (int64_t img = b0; img < b1; ++img) {
      for (int64_t g = 0; g < active_groups_; ++g) {
        const float* xg = xd + (img * active_in() + g * in_per_group_) * h * w;
        ops::Im2Col(xg, in_per_group_, h, w, k, opts_.stride, opts_.pad, cols);
        float* yg = yd + (img * active_out() + g * out_per_group_) * out_area;
        if (int8) {
          ops::GemmQuantizedWeightAEx(out_per_group_, out_area, col_rows,
                                      qpacks_t_[static_cast<size_t>(g)], cols,
                                      out_area, 0.0f, yg, out_area, epi);
        } else {
          ops::GemmPrepackedAEx(out_per_group_, out_area, col_rows,
                                wpacks_[static_cast<size_t>(g)], false, cols,
                                out_area, 0.0f, yg, out_area, epi);
        }
      }
    }
  });
  return y;
}

Tensor GroupedConv2d::DoBackward(const Tensor& grad_out) {
  MS_CHECK_MSG(cached_x_.ndim() == 4,
               "GroupedConv2d::Backward requires a prior Forward");
  const int64_t batch = cached_x_.dim(0);
  const int64_t h = cached_h_;
  const int64_t w = cached_w_;
  const int64_t k = opts_.kernel;
  const int64_t oh = last_oh_;
  const int64_t ow = last_ow_;
  const int64_t out_area = oh * ow;
  const int64_t col_rows = in_per_group_ * k * k;
  MS_CHECK(grad_out.ndim() == 4 && grad_out.dim(1) == active_out() &&
           grad_out.dim(2) == oh && grad_out.dim(3) == ow);

  Tensor grad_in({batch, active_in(), h, w});
  const float* xd = cached_x_.data();
  const float* gd = grad_out.data();
  float* gid = grad_in.data();
  // dcols consumes op(A) = W_g^T; pack the active branches up front.
  if (wpacks_t_.size() < static_cast<size_t>(opts_.groups)) {
    wpacks_t_.resize(static_cast<size_t>(opts_.groups));
  }
  for (int64_t g = 0; g < active_groups_; ++g) {
    ops::EnsurePackedA(/*trans_a=*/true, col_rows, out_per_group_,
                       w_.data() + g * out_per_group_ * col_rows, col_rows,
                       &wpacks_t_[static_cast<size_t>(g)]);
  }
  // Parallel over groups: each group owns a disjoint w_grad_ block and
  // disjoint (img, g) planes of grad_in, and accumulates its images in
  // index order — deterministic for any thread count.
  ops::ParallelForCompute(active_groups_, [&](int64_t g0, int64_t g1) {
    ScratchArena& arena = ScratchArena::ForThread();
    ScratchArena::Scope scope(arena);
    float* cols = arena.Alloc(col_rows * out_area);
    float* grad_cols = arena.Alloc(col_rows * out_area);
    for (int64_t g = g0; g < g1; ++g) {
      float* wg_grad = w_grad_.data() + g * out_per_group_ * col_rows;
      for (int64_t img = 0; img < batch; ++img) {
        const float* xg = xd + (img * active_in() + g * in_per_group_) * h * w;
        const float* gg =
            gd + (img * active_out() + g * out_per_group_) * out_area;
        ops::Im2Col(xg, in_per_group_, h, w, k, opts_.stride, opts_.pad, cols);
        // dW_g += g(out_pg, area) * cols^T(area, col_rows)
        ops::Gemm(false, true, out_per_group_, col_rows, out_area, 1.0f, gg,
                  out_area, cols, out_area, 1.0f, wg_grad, col_rows);
        // dcols = W_g^T * g
        ops::GemmPrepackedA(col_rows, out_area, out_per_group_,
                            wpacks_t_[static_cast<size_t>(g)], false, gg,
                            out_area, 0.0f, grad_cols, out_area);
        ops::Col2Im(grad_cols, in_per_group_, h, w, k, opts_.stride,
                    opts_.pad,
                    gid + (img * active_in() + g * in_per_group_) * h * w);
      }
    }
  });
  return grad_in;
}

void GroupedConv2d::CollectParams(std::vector<ParamRef>* out) {
  out->push_back({name_ + ".w", &w_, &w_grad_, /*no_decay=*/false});
}

int64_t GroupedConv2d::FlopsPerSample() const {
  const int64_t out_area = (last_oh_ > 0) ? last_oh_ * last_ow_ : 1;
  return active_groups_ * in_per_group_ * out_per_group_ * opts_.kernel *
         opts_.kernel * out_area;
}

int64_t GroupedConv2d::ActiveParams() const {
  return active_groups_ * in_per_group_ * out_per_group_ * opts_.kernel *
         opts_.kernel;
}

}  // namespace ms
