// Epilogue-fusion pass: walks a built model and plants adjacent
// (producer, activation) pairs into the producer's epilogue.
//
// A Sequential child sequence like Conv2d -> GroupNorm -> ReLU becomes
// "GroupNorm applies ReLU at its own write site; the ReLU module is
// bypassed at inference". Producers that can absorb an activation are
// Dense, Conv2d, GroupedConv2d, DepthwiseConv2d, GroupNorm, BatchNorm and
// MultiBatchNorm; absorbable followers are ReLU and Tanh.
//
// The pass only *marks* modules: at forward time each producer re-checks
// `!training && ops::FuseEpiloguesEnabled()`, so training forwards and
// MS_FUSE_EPILOGUES=0 runs behave exactly as if the pass never ran, and
// fused inference is bitwise identical to unfused (the epilogue applies
// the same float operations at C-writeback that the bypassed module would
// have applied in its own pass).
#ifndef MODELSLICING_NN_FUSION_H_
#define MODELSLICING_NN_FUSION_H_

#include "src/nn/module.h"

namespace ms {

/// Recursively fuses activation modules into their producing layers
/// (descends into Sequential and ResidualBlock bodies). Idempotent.
/// Returns the number of (producer, activation) pairs fused.
int64_t FuseActivations(Module* root);

}  // namespace ms

#endif  // MODELSLICING_NN_FUSION_H_
