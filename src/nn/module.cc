#include "src/nn/module.h"

#include <cstdlib>
#include <optional>

#include "src/obs/profiler.h"
#include "src/obs/trace.h"
#include "src/tensor/activation_arena.h"
#include "src/util/stopwatch.h"

namespace ms {
namespace {

// MS_PLAN_ACTIVATIONS=1 forces every top-level Forward to run inside an
// activation-arena scope even when the caller (trainer, ad-hoc test) never
// set one up. Used by the ASan CI job to route ALL activation traffic
// through the arena path. Each thread gets its own arena; the depth counter
// keeps nested child Forward calls inside the root scope.
bool ForcedPlanningEnabled() {
  static const bool enabled = [] {
    const char* v = std::getenv("MS_PLAN_ACTIVATIONS");
    return v != nullptr && v[0] == '1' && v[1] == '\0';
  }();
  return enabled;
}

ActivationArena& ForcedArenaForThread() {
  thread_local ActivationArena arena;
  return arena;
}

thread_local int t_forward_depth = 0;

}  // namespace

Tensor Module::Forward(const Tensor& x, bool training) {
  // Opens the forced arena scope only at the OUTERMOST Forward of this
  // thread (depth 0) and only when no arena is already bound.
  std::optional<ActivationScope> forced;
  struct DepthGuard {
    DepthGuard() { ++t_forward_depth; }
    ~DepthGuard() { --t_forward_depth; }
  } depth_guard;
  if (t_forward_depth == 1 && ForcedPlanningEnabled() &&
      CurrentActivationArena() == nullptr) {
    forced.emplace(ForcedArenaForThread());
  }

  obs::SliceProfiler* profiler = obs::SliceProfiler::Active();
  const bool tracing = obs::TraceCollector::Global().enabled();
  if (profiler == nullptr && !tracing) return DoForward(x, training);

  std::optional<obs::TraceSpan> span;
  if (tracing) span.emplace(name() + ".fwd");
  Stopwatch watch;
  Tensor y = DoForward(x, training);
  if (profiler != nullptr) {
    profiler->RecordForward(this, name(),
                            static_cast<double>(watch.ElapsedNanos()));
  }
  return y;
}

Tensor Module::Backward(const Tensor& grad_out) {
  obs::SliceProfiler* profiler = obs::SliceProfiler::Active();
  const bool tracing = obs::TraceCollector::Global().enabled();
  if (profiler == nullptr && !tracing) return DoBackward(grad_out);

  std::optional<obs::TraceSpan> span;
  if (tracing) span.emplace(name() + ".bwd");
  Stopwatch watch;
  Tensor g = DoBackward(grad_out);
  if (profiler != nullptr) {
    profiler->RecordBackward(this, name(),
                             static_cast<double>(watch.ElapsedNanos()));
  }
  return g;
}

void Module::SetPrecision(Precision p) {
  precision_ = p;
  DoSetPrecision(p);
}

void Module::SetSliceRate(double r) {
  if (obs::SliceProfiler* profiler = obs::SliceProfiler::Active()) {
    profiler->set_current_rate(r);
  }
  DoSetSliceRate(r);
}

}  // namespace ms
