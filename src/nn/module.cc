#include "src/nn/module.h"

#include <optional>

#include "src/obs/profiler.h"
#include "src/obs/trace.h"
#include "src/util/stopwatch.h"

namespace ms {

Tensor Module::Forward(const Tensor& x, bool training) {
  obs::SliceProfiler* profiler = obs::SliceProfiler::Active();
  const bool tracing = obs::TraceCollector::Global().enabled();
  if (profiler == nullptr && !tracing) return DoForward(x, training);

  std::optional<obs::TraceSpan> span;
  if (tracing) span.emplace(name() + ".fwd");
  Stopwatch watch;
  Tensor y = DoForward(x, training);
  if (profiler != nullptr) {
    profiler->RecordForward(this, name(),
                            static_cast<double>(watch.ElapsedNanos()));
  }
  return y;
}

Tensor Module::Backward(const Tensor& grad_out) {
  obs::SliceProfiler* profiler = obs::SliceProfiler::Active();
  const bool tracing = obs::TraceCollector::Global().enabled();
  if (profiler == nullptr && !tracing) return DoBackward(grad_out);

  std::optional<obs::TraceSpan> span;
  if (tracing) span.emplace(name() + ".bwd");
  Stopwatch watch;
  Tensor g = DoBackward(grad_out);
  if (profiler != nullptr) {
    profiler->RecordBackward(this, name(),
                             static_cast<double>(watch.ElapsedNanos()));
  }
  return g;
}

void Module::SetPrecision(Precision p) {
  precision_ = p;
  DoSetPrecision(p);
}

void Module::SetSliceRate(double r) {
  if (obs::SliceProfiler* profiler = obs::SliceProfiler::Active()) {
    profiler->set_current_rate(r);
  }
  DoSetSliceRate(r);
}

}  // namespace ms
