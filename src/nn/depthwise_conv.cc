#include "src/nn/depthwise_conv.h"

#include <algorithm>
#include <cmath>

#include "src/tensor/gemm.h"

namespace ms {

DepthwiseConv2d::DepthwiseConv2d(DepthwiseConv2dOptions opts, Rng* rng,
                                 std::string name)
    : opts_(opts), name_(std::move(name)) {
  MS_CHECK(opts_.channels >= 1 && opts_.kernel >= 1);
  MS_CHECK(opts_.stride >= 1 && opts_.pad >= 0);
  spec_ = SliceSpec(opts_.channels,
                    std::min<int64_t>(opts_.groups, opts_.channels));
  active_channels_ = opts_.channels;
  const float stddev =
      std::sqrt(2.0f / static_cast<float>(opts_.kernel * opts_.kernel));
  w_ = Tensor::Randn({opts_.channels, opts_.kernel * opts_.kernel}, rng,
                     stddev);
  w_grad_ = Tensor::Zeros(w_.shape());
}

void DepthwiseConv2d::DoSetSliceRate(double r) {
  if (!opts_.slice) return;
  active_channels_ = spec_.ActiveWidth(r);
}

Tensor DepthwiseConv2d::DoForward(const Tensor& x, bool training) {
  MS_CHECK(x.ndim() == 4);
  MS_CHECK_MSG(x.dim(1) == active_channels_,
               "DepthwiseConv2d channels != active prefix");
  const int64_t batch = x.dim(0);
  const int64_t h = x.dim(2);
  const int64_t w = x.dim(3);
  const int64_t k = opts_.kernel;
  const int64_t oh = (h + 2 * opts_.pad - k) / opts_.stride + 1;
  const int64_t ow = (w + 2 * opts_.pad - k) / opts_.stride + 1;
  MS_CHECK(oh >= 1 && ow >= 1);
  cached_x_ = x;
  cached_h_ = h;
  cached_w_ = w;
  last_oh_ = oh;
  last_ow_ = ow;

  // Direct-loop analogue of the GEMM epilogue: a planted activation is
  // applied at each output write (kNone when training or fusion is off).
  const ops::EpiAct act = (!training && ops::FuseEpiloguesEnabled())
                              ? fused_act_
                              : ops::EpiAct::kNone;
  Tensor y = Tensor::Uninit({batch, active_channels_, oh, ow});
  const float* xd = x.data();
  float* yd = y.data();
  const int64_t stride = opts_.stride;
  const int64_t pad = opts_.pad;
  // Interior outputs — those whose k x k window lies fully inside the
  // input — take a bounds-check-free inner loop; only the border rows and
  // columns keep the checked loop. Both variants accumulate in the same
  // (ki, kj) ascending order, so the result is bitwise unchanged.
  const int64_t oi_lo = (pad + stride - 1) / stride;
  const int64_t oi_hi = std::min<int64_t>(oh - 1, (h - k + pad) / stride);
  const int64_t oj_lo = oi_lo;  // same pad/stride in both dimensions
  const int64_t oj_hi = std::min<int64_t>(ow - 1, (w - k + pad) / stride);
  // Each (image, channel) plane is independent; parallelize over the
  // flattened plane index.
  ops::ParallelForCompute(batch * active_channels_, [&](int64_t p0,
                                                        int64_t p1) {
    for (int64_t p = p0; p < p1; ++p) {
      const float* xc = xd + p * h * w;
      const float* wc = w_.data() + (p % active_channels_) * k * k;
      float* yc = yd + p * oh * ow;
      auto checked_pixel = [&](int64_t oi, int64_t oj) {
        float acc = 0.0f;
        for (int64_t ki = 0; ki < k; ++ki) {
          const int64_t ii = oi * stride - pad + ki;
          if (ii < 0 || ii >= h) continue;
          for (int64_t kj = 0; kj < k; ++kj) {
            const int64_t jj = oj * stride - pad + kj;
            if (jj < 0 || jj >= w) continue;
            acc += xc[ii * w + jj] * wc[ki * k + kj];
          }
        }
        yc[oi * ow + oj] = ops::detail::EpiActApply(act, acc);
      };
      for (int64_t oi = 0; oi < oh; ++oi) {
        const bool row_interior = oi >= oi_lo && oi <= oi_hi;
        if (!row_interior || oj_lo > oj_hi) {
          for (int64_t oj = 0; oj < ow; ++oj) checked_pixel(oi, oj);
          continue;
        }
        for (int64_t oj = 0; oj < oj_lo; ++oj) checked_pixel(oi, oj);
        const int64_t ii0 = oi * stride - pad;
        for (int64_t oj = oj_lo; oj <= oj_hi; ++oj) {
          const float* win = xc + ii0 * w + (oj * stride - pad);
          float acc = 0.0f;
          for (int64_t ki = 0; ki < k; ++ki) {
            const float* xrow = win + ki * w;
            const float* wrow = wc + ki * k;
            for (int64_t kj = 0; kj < k; ++kj) acc += xrow[kj] * wrow[kj];
          }
          yc[oi * ow + oj] = ops::detail::EpiActApply(act, acc);
        }
        for (int64_t oj = oj_hi + 1; oj < ow; ++oj) checked_pixel(oi, oj);
      }
    }
  });
  return y;
}

Tensor DepthwiseConv2d::DoBackward(const Tensor& grad_out) {
  MS_CHECK_MSG(cached_x_.ndim() == 4,
               "DepthwiseConv2d::Backward requires a prior Forward");
  const int64_t batch = cached_x_.dim(0);
  const int64_t h = cached_h_;
  const int64_t w = cached_w_;
  const int64_t k = opts_.kernel;
  const int64_t oh = last_oh_;
  const int64_t ow = last_ow_;
  MS_CHECK(grad_out.ndim() == 4 && grad_out.dim(1) == active_channels_ &&
           grad_out.dim(2) == oh && grad_out.dim(3) == ow);

  Tensor grad_in({batch, active_channels_, h, w});
  grad_in.Zero();
  const float* xd = cached_x_.data();
  const float* gd = grad_out.data();
  float* gid = grad_in.data();
  // Parallel over channels: each channel's w_grad_ row is private to its
  // shard and images accumulate in index order, so results are bitwise
  // identical for any thread count. No zero-gradient skip: the scatter must
  // run even for g == 0 so NaN/Inf in x or w still propagate (g * NaN is
  // NaN, not 0).
  ops::ParallelForCompute(active_channels_, [&](int64_t c0, int64_t c1) {
    for (int64_t c = c0; c < c1; ++c) {
      const float* wc = w_.data() + c * k * k;
      float* wg = w_grad_.data() + c * k * k;
      for (int64_t img = 0; img < batch; ++img) {
        const float* xc = xd + (img * active_channels_ + c) * h * w;
        const float* gc = gd + (img * active_channels_ + c) * oh * ow;
        float* gi = gid + (img * active_channels_ + c) * h * w;
        for (int64_t oi = 0; oi < oh; ++oi) {
          for (int64_t oj = 0; oj < ow; ++oj) {
            const float g = gc[oi * ow + oj];
            for (int64_t ki = 0; ki < k; ++ki) {
              const int64_t ii = oi * opts_.stride - opts_.pad + ki;
              if (ii < 0 || ii >= h) continue;
              for (int64_t kj = 0; kj < k; ++kj) {
                const int64_t jj = oj * opts_.stride - opts_.pad + kj;
                if (jj < 0 || jj >= w) continue;
                wg[ki * k + kj] += g * xc[ii * w + jj];
                gi[ii * w + jj] += g * wc[ki * k + kj];
              }
            }
          }
        }
      }
    }
  });
  return grad_in;
}

void DepthwiseConv2d::CollectParams(std::vector<ParamRef>* out) {
  out->push_back({name_ + ".w", &w_, &w_grad_, /*no_decay=*/false});
}

int64_t DepthwiseConv2d::FlopsPerSample() const {
  const int64_t out_area = (last_oh_ > 0) ? last_oh_ * last_ow_ : 1;
  return active_channels_ * opts_.kernel * opts_.kernel * out_area;
}

int64_t DepthwiseConv2d::ActiveParams() const {
  return active_channels_ * opts_.kernel * opts_.kernel;
}

}  // namespace ms
