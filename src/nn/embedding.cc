#include "src/nn/embedding.h"

namespace ms {

Embedding::Embedding(EmbeddingOptions opts, Rng* rng, std::string name)
    : opts_(opts), name_(std::move(name)) {
  MS_CHECK(opts_.vocab_size >= 1 && opts_.dim >= 1);
  dim_spec_ = SliceSpec(opts_.dim, std::min<int64_t>(opts_.groups, opts_.dim));
  active_dim_ = opts_.dim;
  table_ = Tensor::RandUniform({opts_.vocab_size, opts_.dim}, rng, -0.1f,
                               0.1f);
  grad_ = Tensor::Zeros(table_.shape());
}

void Embedding::SetSliceRate(double r) {
  active_dim_ =
      opts_.slice_out ? dim_spec_.ActiveWidth(r) : dim_spec_.full_width();
}

Tensor Embedding::Forward(const std::vector<int>& tokens) {
  cached_tokens_ = tokens;
  const int64_t rows = static_cast<int64_t>(tokens.size());
  Tensor out({rows, active_dim_});
  for (int64_t r = 0; r < rows; ++r) {
    const int tok = tokens[static_cast<size_t>(r)];
    MS_CHECK(tok >= 0 && tok < opts_.vocab_size);
    const float* src = table_.data() + tok * opts_.dim;
    float* dst = out.data() + r * active_dim_;
    std::copy(src, src + active_dim_, dst);
  }
  return out;
}

void Embedding::Backward(const Tensor& grad_out) {
  const int64_t rows = static_cast<int64_t>(cached_tokens_.size());
  MS_CHECK(grad_out.ndim() == 2 && grad_out.dim(0) == rows &&
           grad_out.dim(1) == active_dim_);
  for (int64_t r = 0; r < rows; ++r) {
    const int tok = cached_tokens_[static_cast<size_t>(r)];
    float* dst = grad_.data() + tok * opts_.dim;
    const float* src = grad_out.data() + r * active_dim_;
    for (int64_t d = 0; d < active_dim_; ++d) dst[d] += src[d];
  }
}

void Embedding::CollectParams(std::vector<ParamRef>* out) {
  out->push_back({name_ + ".table", &table_, &grad_, /*no_decay=*/false});
}

}  // namespace ms
