#include "src/nn/conv2d.h"

#include <algorithm>
#include <cmath>

#include "src/tensor/scratch.h"

namespace ms {

namespace {
// Fixed shard count for the weight-gradient reduction in DoBackward. A
// constant (rather than the pool size) keeps the accumulation order — and
// therefore the bitwise result — independent of the thread count.
constexpr int64_t kGradShards = 8;
}  // namespace

Conv2d::Conv2d(Conv2dOptions opts, Rng* rng, std::string name)
    : opts_(opts), name_(std::move(name)) {
  MS_CHECK(opts_.in_channels >= 1 && opts_.out_channels >= 1);
  MS_CHECK(opts_.kernel >= 1 && opts_.stride >= 1 && opts_.pad >= 0);
  in_spec_ = SliceSpec(opts_.in_channels,
                       std::min<int64_t>(opts_.groups, opts_.in_channels));
  out_spec_ = SliceSpec(opts_.out_channels,
                        std::min<int64_t>(opts_.groups, opts_.out_channels));
  active_in_ = opts_.in_channels;
  active_out_ = opts_.out_channels;

  const int64_t fan_in = opts_.in_channels * opts_.kernel * opts_.kernel;
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  w_ = Tensor::Randn({opts_.out_channels, fan_in}, rng, stddev);
  w_grad_ = Tensor::Zeros({opts_.out_channels, fan_in});
  if (opts_.bias) {
    b_ = Tensor::Zeros({opts_.out_channels});
    b_grad_ = Tensor::Zeros({opts_.out_channels});
  }
  const int64_t kk = opts_.kernel * opts_.kernel;
  for (int64_t g = 1; g <= in_spec_.num_groups(); ++g) {
    in_k_ends_.push_back(in_spec_.GroupBoundary(g) * kk);
  }
}

void Conv2d::DoSetSliceRate(double r) {
  active_in_ =
      opts_.slice_in ? in_spec_.ActiveWidth(r) : in_spec_.full_width();
  active_out_ =
      opts_.slice_out ? out_spec_.ActiveWidth(r) : out_spec_.full_width();
}

Tensor Conv2d::DoForward(const Tensor& x, bool training) {
  MS_CHECK(x.ndim() == 4);
  const int64_t batch = x.dim(0);
  MS_CHECK_MSG(x.dim(1) == active_in_, "Conv2d input channels != active_in");
  const int64_t h = x.dim(2);
  const int64_t w = x.dim(3);
  const int64_t k = opts_.kernel;
  const int64_t oh = (h + 2 * opts_.pad - k) / opts_.stride + 1;
  const int64_t ow = (w + 2 * opts_.pad - k) / opts_.stride + 1;
  MS_CHECK(oh >= 1 && ow >= 1);

  (void)training;
  // Copy-assign reuses capacity when shapes repeat, so steady-state
  // forwards stay allocation-free.
  cached_x_ = x;
  cached_h_ = h;
  cached_w_ = w;
  last_oh_ = oh;
  last_ow_ = ow;

  const int64_t m = active_in_;
  const int64_t n = active_out_;
  const int64_t col_rows = m * k * k;
  const int64_t out_area = oh * ow;
  const int64_t ld_w = opts_.in_channels * k * k;

  // Inference fuses bias (per output channel == C row) and any planted
  // activation into the GEMM's C-writeback; training keeps the separate
  // bias pass.
  const bool fuse = !training && ops::FuseEpiloguesEnabled();
  ops::Epilogue epi;
  if (fuse) {
    if (opts_.bias) epi.bias = b_.data();
    epi.act = fused_act_;
    epi.per_row = true;
  }
  Tensor y = Tensor::Uninit({batch, n, oh, ow});
  const float* xd = x.data();
  float* yd = y.data();
  // Pack W once, outside the parallel region (workers then only read).
  // Int8 is inference-only; training always contracts in fp32.
  const bool int8 = precision_ == Precision::kInt8 && !training;
  if (int8) {
    ops::EnsureQuantizedB(/*trans_b=*/true, ld_w, opts_.out_channels,
                          w_.data(), ld_w, in_k_ends_, &qpack_t_);
  } else {
    ops::EnsurePackedA(/*trans_a=*/false, opts_.out_channels, ld_w,
                       w_.data(), ld_w, &wpack_);
  }
  // Parallel over images: each worker owns an im2col buffer from its own
  // arena; output planes are disjoint. With batch == 1 the single shard
  // runs on the caller, where the GEMM itself may go parallel.
  ops::ParallelForCompute(batch, [&](int64_t b0, int64_t b1) {
    ScratchArena& arena = ScratchArena::ForThread();
    ScratchArena::Scope scope(arena);
    float* cols = arena.Alloc(col_rows * out_area);
    for (int64_t img = b0; img < b1; ++img) {
      ops::Im2Col(xd + img * m * h * w, m, h, w, k, opts_.stride, opts_.pad,
                  cols);
      // y_img(n, out_area) = W[0:n, 0:m*k*k] * cols. The prefix of the
      // full-stride pack keeps the inactive input-channel columns out.
      if (int8) {
        ops::GemmQuantizedWeightAEx(n, out_area, col_rows, qpack_t_, cols,
                                    out_area, 0.0f, yd + img * n * out_area,
                                    out_area, epi);
      } else {
        ops::GemmPrepackedAEx(n, out_area, col_rows, wpack_, false, cols,
                              out_area, 0.0f, yd + img * n * out_area,
                              out_area, epi);
      }
      if (opts_.bias && !fuse) {
        float* yi = yd + img * n * out_area;
        for (int64_t c = 0; c < n; ++c) {
          const float bv = b_[c];
          float* plane = yi + c * out_area;
          for (int64_t p = 0; p < out_area; ++p) plane[p] += bv;
        }
      }
    }
  });
  return y;
}

Tensor Conv2d::DoBackward(const Tensor& grad_out) {
  MS_CHECK_MSG(cached_x_.ndim() == 4,
               "Conv2d::Backward requires a prior Forward");
  const int64_t batch = cached_x_.dim(0);
  const int64_t m = active_in_;
  const int64_t n = active_out_;
  const int64_t h = cached_h_;
  const int64_t w = cached_w_;
  const int64_t k = opts_.kernel;
  const int64_t oh = last_oh_;
  const int64_t ow = last_ow_;
  const int64_t out_area = oh * ow;
  const int64_t col_rows = m * k * k;
  MS_CHECK(grad_out.ndim() == 4 && grad_out.dim(0) == batch &&
           grad_out.dim(1) == n && grad_out.dim(2) == oh &&
           grad_out.dim(3) == ow);

  const int64_t ld_w = opts_.in_channels * k * k;
  Tensor grad_in({batch, m, h, w});

  // dW is a sum over images, so images are split across a *fixed* shard
  // grid; each shard accumulates into a compact private buffer and the
  // shards are reduced serially in index order afterwards. Result is
  // bitwise identical for any thread count (incl. the serial path).
  const int64_t shards = std::min<int64_t>(batch, kGradShards);
  const int64_t chunk = (batch + shards - 1) / shards;
  ScratchArena& arena = ScratchArena::ForThread();
  ScratchArena::Scope scope(arena);
  const int64_t wg_size = n * col_rows;
  float* wg_shards = arena.Alloc(shards * wg_size);
  float* bg_shards = opts_.bias ? arena.Alloc(shards * n) : nullptr;

  const float* xd = cached_x_.data();
  const float* gd = grad_out.data();
  float* gid = grad_in.data();
  // dcols consumes op(A) = W^T; pack once before the shard fan-out.
  ops::EnsurePackedA(/*trans_a=*/true, ld_w, opts_.out_channels, w_.data(),
                     ld_w, &wpack_t_);
  ops::ParallelForCompute(shards, [&](int64_t s0, int64_t s1) {
    ScratchArena& warena = ScratchArena::ForThread();
    ScratchArena::Scope wscope(warena);
    float* cols = warena.Alloc(col_rows * out_area);
    float* grad_cols = warena.Alloc(col_rows * out_area);
    for (int64_t s = s0; s < s1; ++s) {
      float* wg = wg_shards + s * wg_size;
      std::fill(wg, wg + wg_size, 0.0f);
      float* bg = bg_shards ? bg_shards + s * n : nullptr;
      if (bg) std::fill(bg, bg + n, 0.0f);
      const int64_t img0 = s * chunk;
      const int64_t img1 = std::min<int64_t>(batch, img0 + chunk);
      for (int64_t img = img0; img < img1; ++img) {
        const float* g = gd + img * n * out_area;
        // dW_shard(n, col_rows) += g(n, out_area) * cols^T
        ops::Im2Col(xd + img * m * h * w, m, h, w, k, opts_.stride,
                    opts_.pad, cols);
        ops::Gemm(false, true, n, col_rows, out_area, 1.0f, g, out_area,
                  cols, out_area, 1.0f, wg, col_rows);
        // dcols = W^T(col_rows, n) * g(n, out_area)
        ops::GemmPrepackedA(col_rows, out_area, n, wpack_t_, false, g,
                            out_area, 0.0f, grad_cols, out_area);
        ops::Col2Im(grad_cols, m, h, w, k, opts_.stride, opts_.pad,
                    gid + img * m * h * w);
        if (bg) {
          for (int64_t c = 0; c < n; ++c) {
            const float* plane = g + c * out_area;
            float acc = 0.0f;
            for (int64_t p = 0; p < out_area; ++p) acc += plane[p];
            bg[c] += acc;
          }
        }
      }
    }
  });

  // Reduction into the full-width (strided) gradient tensors, parallel
  // over destination rows. Each row still sums its shards in ascending s
  // — the serial order — so the result is bitwise identical at any
  // thread count.
  float* wgd = w_grad_.data();
  ops::ParallelForCompute(n, [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      float* dst = wgd + r * ld_w;
      for (int64_t s = 0; s < shards; ++s) {
        const float* src = wg_shards + s * wg_size + r * col_rows;
        for (int64_t c = 0; c < col_rows; ++c) dst[c] += src[c];
      }
    }
  });
  if (bg_shards) {
    for (int64_t s = 0; s < shards; ++s) {
      const float* bg = bg_shards + s * n;
      for (int64_t c = 0; c < n; ++c) b_grad_[c] += bg[c];
    }
  }
  return grad_in;
}

void Conv2d::CollectParams(std::vector<ParamRef>* out) {
  out->push_back({name_ + ".w", &w_, &w_grad_, /*no_decay=*/false});
  if (opts_.bias) {
    out->push_back({name_ + ".b", &b_, &b_grad_, /*no_decay=*/true});
  }
}

int64_t Conv2d::FlopsPerSample() const {
  const int64_t out_area = (last_oh_ > 0) ? last_oh_ * last_ow_ : 1;
  return active_in_ * active_out_ * opts_.kernel * opts_.kernel * out_area;
}

int64_t Conv2d::ActiveParams() const {
  return active_in_ * active_out_ * opts_.kernel * opts_.kernel +
         (opts_.bias ? active_out_ : 0);
}

}  // namespace ms
