#include "src/nn/conv2d.h"

#include <cmath>

namespace ms {

Conv2d::Conv2d(Conv2dOptions opts, Rng* rng, std::string name)
    : opts_(opts), name_(std::move(name)) {
  MS_CHECK(opts_.in_channels >= 1 && opts_.out_channels >= 1);
  MS_CHECK(opts_.kernel >= 1 && opts_.stride >= 1 && opts_.pad >= 0);
  in_spec_ = SliceSpec(opts_.in_channels,
                       std::min<int64_t>(opts_.groups, opts_.in_channels));
  out_spec_ = SliceSpec(opts_.out_channels,
                        std::min<int64_t>(opts_.groups, opts_.out_channels));
  active_in_ = opts_.in_channels;
  active_out_ = opts_.out_channels;

  const int64_t fan_in = opts_.in_channels * opts_.kernel * opts_.kernel;
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  w_ = Tensor::Randn({opts_.out_channels, fan_in}, rng, stddev);
  w_grad_ = Tensor::Zeros({opts_.out_channels, fan_in});
  if (opts_.bias) {
    b_ = Tensor::Zeros({opts_.out_channels});
    b_grad_ = Tensor::Zeros({opts_.out_channels});
  }
}

void Conv2d::DoSetSliceRate(double r) {
  active_in_ =
      opts_.slice_in ? in_spec_.ActiveWidth(r) : in_spec_.full_width();
  active_out_ =
      opts_.slice_out ? out_spec_.ActiveWidth(r) : out_spec_.full_width();
}

Tensor Conv2d::DoForward(const Tensor& x, bool training) {
  (void)training;
  MS_CHECK(x.ndim() == 4);
  const int64_t batch = x.dim(0);
  MS_CHECK_MSG(x.dim(1) == active_in_, "Conv2d input channels != active_in");
  const int64_t h = x.dim(2);
  const int64_t w = x.dim(3);
  const int64_t k = opts_.kernel;
  const int64_t oh = (h + 2 * opts_.pad - k) / opts_.stride + 1;
  const int64_t ow = (w + 2 * opts_.pad - k) / opts_.stride + 1;
  MS_CHECK(oh >= 1 && ow >= 1);

  cached_x_ = x;
  cached_h_ = h;
  cached_w_ = w;
  last_oh_ = oh;
  last_ow_ = ow;

  const int64_t m = active_in_;
  const int64_t n = active_out_;
  const int64_t col_rows = m * k * k;
  const int64_t out_area = oh * ow;

  Tensor y({batch, n, oh, ow});
  Tensor cols({col_rows, out_area});
  for (int64_t img = 0; img < batch; ++img) {
    ops::Im2Col(x.data() + img * m * h * w, m, h, w, k, opts_.stride,
                opts_.pad, cols.data());
    // y_img(n, out_area) = W[0:n, 0:m*k*k] * cols. Full row stride keeps the
    // inactive input-channel columns out of the product.
    ops::Gemm(false, false, n, out_area, col_rows, 1.0f, w_.data(),
              opts_.in_channels * k * k, cols.data(), out_area, 0.0f,
              y.data() + img * n * out_area, out_area);
    if (opts_.bias) {
      float* yi = y.data() + img * n * out_area;
      for (int64_t c = 0; c < n; ++c) {
        const float bv = b_[c];
        float* plane = yi + c * out_area;
        for (int64_t p = 0; p < out_area; ++p) plane[p] += bv;
      }
    }
  }
  return y;
}

Tensor Conv2d::DoBackward(const Tensor& grad_out) {
  const int64_t batch = cached_x_.dim(0);
  const int64_t m = active_in_;
  const int64_t n = active_out_;
  const int64_t h = cached_h_;
  const int64_t w = cached_w_;
  const int64_t k = opts_.kernel;
  const int64_t oh = last_oh_;
  const int64_t ow = last_ow_;
  const int64_t out_area = oh * ow;
  const int64_t col_rows = m * k * k;
  MS_CHECK(grad_out.ndim() == 4 && grad_out.dim(0) == batch &&
           grad_out.dim(1) == n && grad_out.dim(2) == oh &&
           grad_out.dim(3) == ow);

  Tensor grad_in({batch, m, h, w});
  Tensor cols({col_rows, out_area});
  Tensor grad_cols({col_rows, out_area});
  for (int64_t img = 0; img < batch; ++img) {
    const float* g = grad_out.data() + img * n * out_area;
    // dW[0:n, 0:col_rows] += g(n, out_area) * cols^T(out_area, col_rows)
    ops::Im2Col(cached_x_.data() + img * m * h * w, m, h, w, k, opts_.stride,
                opts_.pad, cols.data());
    ops::Gemm(false, true, n, col_rows, out_area, 1.0f, g, out_area,
              cols.data(), out_area, 1.0f, w_grad_.data(),
              opts_.in_channels * k * k);
    // dcols = W^T(col_rows, n) * g(n, out_area)
    ops::Gemm(true, false, col_rows, out_area, n, 1.0f, w_.data(),
              opts_.in_channels * k * k, g, out_area, 0.0f, grad_cols.data(),
              out_area);
    ops::Col2Im(grad_cols.data(), m, h, w, k, opts_.stride, opts_.pad,
                grad_in.data() + img * m * h * w);
    if (opts_.bias) {
      for (int64_t c = 0; c < n; ++c) {
        const float* plane = g + c * out_area;
        float acc = 0.0f;
        for (int64_t p = 0; p < out_area; ++p) acc += plane[p];
        b_grad_[c] += acc;
      }
    }
  }
  return grad_in;
}

void Conv2d::CollectParams(std::vector<ParamRef>* out) {
  out->push_back({name_ + ".w", &w_, &w_grad_, /*no_decay=*/false});
  if (opts_.bias) {
    out->push_back({name_ + ".b", &b_, &b_grad_, /*no_decay=*/true});
  }
}

int64_t Conv2d::FlopsPerSample() const {
  const int64_t out_area = (last_oh_ > 0) ? last_oh_ * last_ow_ : 1;
  return active_in_ * active_out_ * opts_.kernel * opts_.kernel * out_area;
}

int64_t Conv2d::ActiveParams() const {
  return active_in_ * active_out_ * opts_.kernel * opts_.kernel +
         (opts_.bias ? active_out_ : 0);
}

}  // namespace ms
