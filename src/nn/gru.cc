#include "src/nn/gru.h"

#include <cmath>

#include "src/tensor/scratch.h"
#include "src/tensor/tensor_ops.h"

namespace ms {
namespace {

inline float Sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }

constexpr int kGateR = 0;
constexpr int kGateZ = 1;
constexpr int kGateN = 2;

}  // namespace

Gru::Gru(GruOptions opts, Rng* rng, std::string name)
    : opts_(opts), name_(std::move(name)) {
  MS_CHECK(opts_.input_size >= 1 && opts_.hidden_size >= 1);
  in_spec_ = SliceSpec(opts_.input_size,
                       std::min<int64_t>(opts_.groups, opts_.input_size));
  hidden_spec_ = SliceSpec(opts_.hidden_size,
                           std::min<int64_t>(opts_.groups, opts_.hidden_size));
  active_in_ = opts_.input_size;
  active_hidden_ = opts_.hidden_size;

  const float bound = 1.0f / std::sqrt(static_cast<float>(opts_.hidden_size));
  wx_ = Tensor::RandUniform({3 * opts_.hidden_size, opts_.input_size}, rng,
                            -bound, bound);
  wh_ = Tensor::RandUniform({3 * opts_.hidden_size, opts_.hidden_size}, rng,
                            -bound, bound);
  bx_ = Tensor::Zeros({3 * opts_.hidden_size});
  bh_ = Tensor::Zeros({3 * opts_.hidden_size});
  wx_grad_ = Tensor::Zeros(wx_.shape());
  wh_grad_ = Tensor::Zeros(wh_.shape());
  bx_grad_ = Tensor::Zeros(bx_.shape());
  bh_grad_ = Tensor::Zeros(bh_.shape());
  for (int64_t g = 1; g <= in_spec_.num_groups(); ++g) {
    in_k_ends_.push_back(in_spec_.GroupBoundary(g));
  }
  for (int64_t g = 1; g <= hidden_spec_.num_groups(); ++g) {
    hidden_k_ends_.push_back(hidden_spec_.GroupBoundary(g));
  }
}

void Gru::DoSetSliceRate(double r) {
  active_in_ =
      opts_.slice_in ? in_spec_.ActiveWidth(r) : in_spec_.full_width();
  active_hidden_ = opts_.slice_out ? hidden_spec_.ActiveWidth(r)
                                   : hidden_spec_.full_width();
  if (opts_.rescale) {
    rescale_x_ = static_cast<float>(in_spec_.full_width()) /
                 static_cast<float>(active_in_);
    rescale_h_ = static_cast<float>(hidden_spec_.full_width()) /
                 static_cast<float>(active_hidden_);
  } else {
    rescale_x_ = rescale_h_ = 1.0f;
  }
}

void Gru::InputGemm(int gate, const float* x, int64_t batch, bool int8,
                    bool fuse, float* z) const {
  const int64_t n = active_hidden_;
  const int64_t m = active_in_;
  const float* bias = bx_.data() + gate * opts_.hidden_size;
  ops::Epilogue epi;
  if (fuse) {
    epi.bias = bias;
    epi.per_row = false;  // bias indexed by hidden unit == C column
  }
  if (int8) {
    ops::GemmQuantizedBEx(false, batch, n, m, rescale_x_, x, m, qwx_t_[gate],
                          0.0f, z, n, epi);
  } else {
    ops::GemmPrepackedBEx(false, batch, n, m, rescale_x_, x, m,
                          wx_pack_t_[gate], 0.0f, z, n, epi);
  }
  if (!fuse) {
    for (int64_t b = 0; b < batch; ++b) {
      float* row = z + b * n;
      for (int64_t j = 0; j < n; ++j) row[j] += bias[j];
    }
  }
}

void Gru::HiddenGemm(int gate, const float* h, int64_t batch, bool int8,
                     bool fuse, float* z) const {
  const int64_t n = active_hidden_;
  const float* bias = bh_.data() + gate * opts_.hidden_size;
  ops::Epilogue epi;
  if (fuse) {
    epi.bias = bias;
    epi.per_row = false;
  }
  if (int8) {
    ops::GemmQuantizedBEx(false, batch, n, n, rescale_h_, h, n, qwh_t_[gate],
                          0.0f, z, n, epi);
  } else {
    ops::GemmPrepackedBEx(false, batch, n, n, rescale_h_, h, n,
                          wh_pack_t_[gate], 0.0f, z, n, epi);
  }
  if (!fuse) {
    for (int64_t b = 0; b < batch; ++b) {
      float* row = z + b * n;
      for (int64_t j = 0; j < n; ++j) row[j] += bias[j];
    }
  }
}

Tensor Gru::DoForward(const Tensor& x, bool training) {
  MS_CHECK(x.ndim() == 3);
  const int64_t t_steps = x.dim(0);
  const int64_t batch = x.dim(1);
  MS_CHECK_MSG(x.dim(2) == active_in_, "Gru input width != active_in");
  const int64_t m = active_in_;
  const int64_t n = active_hidden_;

  cached_x_ = x;
  cached_t_ = t_steps;
  cached_b_ = batch;
  const int64_t bn = batch * n;
  const bool fuse = !training && ops::FuseEpiloguesEnabled();

  // Pack each gate's Wx/Wh once up front (a cache hit in steady state);
  // all T timesteps below reuse the panels. Int8 is inference-only;
  // training always contracts in fp32.
  const bool int8 = precision_ == Precision::kInt8 && !training;
  for (int gate = 0; gate < 3; ++gate) {
    if (int8) {
      ops::EnsureQuantizedB(
          true, opts_.input_size, opts_.hidden_size,
          wx_.data() + gate * opts_.hidden_size * opts_.input_size,
          opts_.input_size, in_k_ends_, &qwx_t_[gate]);
      ops::EnsureQuantizedB(
          true, opts_.hidden_size, opts_.hidden_size,
          wh_.data() + gate * opts_.hidden_size * opts_.hidden_size,
          opts_.hidden_size, hidden_k_ends_, &qwh_t_[gate]);
    } else {
      ops::EnsurePackedB(
          true, opts_.input_size, opts_.hidden_size,
          wx_.data() + gate * opts_.hidden_size * opts_.input_size,
          opts_.input_size, &wx_pack_t_[gate]);
      ops::EnsurePackedB(
          true, opts_.hidden_size, opts_.hidden_size,
          wh_.data() + gate * opts_.hidden_size * opts_.hidden_size,
          opts_.hidden_size, &wh_pack_t_[gate]);
    }
  }

  // Gate pre-activations and the zero initial state live on the arena; the
  // per-step caches in steps_ are resized in place, so warmed-up iterations
  // (fixed t_steps/batch) reuse all their storage and allocate nothing.
  ScratchArena& arena = ScratchArena::ForThread();
  ScratchArena::Scope scope(arena);
  float* xr = arena.Alloc(bn);
  float* xz = arena.Alloc(bn);
  float* xn = arena.Alloc(bn);
  float* hr = arena.Alloc(bn);
  float* hz = arena.Alloc(bn);
  float* hn = arena.Alloc(bn);
  const float* zeros = arena.AllocZeroed(bn);

  if (steps_.size() < static_cast<size_t>(t_steps)) {
    steps_.resize(static_cast<size_t>(t_steps));
  }

  Tensor out = Tensor::Uninit({t_steps, batch, n});
  for (int64_t t = 0; t < t_steps; ++t) {
    const float* xt = x.data() + t * batch * m;
    const float* h_prev = (t == 0) ? zeros : out.data() + (t - 1) * bn;
    InputGemm(kGateR, xt, batch, int8, fuse, xr);
    InputGemm(kGateZ, xt, batch, int8, fuse, xz);
    InputGemm(kGateN, xt, batch, int8, fuse, xn);
    HiddenGemm(kGateR, h_prev, batch, int8, fuse, hr);
    HiddenGemm(kGateZ, h_prev, batch, int8, fuse, hz);
    HiddenGemm(kGateN, h_prev, batch, int8, fuse, hn);

    float* h_out = out.data() + t * bn;
    StepCache& sc = steps_[static_cast<size_t>(t)];
    sc.r.EnsureShape({batch, n});
    sc.z.EnsureShape({batch, n});
    sc.n.EnsureShape({batch, n});
    sc.hn.EnsureShape({batch, n});
    sc.h.EnsureShape({batch, n});
    std::copy(hn, hn + bn, sc.hn.data());
    for (int64_t idx = 0; idx < bn; ++idx) {
      const float rv = Sigmoid(xr[idx] + hr[idx]);
      const float zv = Sigmoid(xz[idx] + hz[idx]);
      const float nv = std::tanh(xn[idx] + rv * hn[idx]);
      const float hv = (1.0f - zv) * nv + zv * h_prev[idx];
      sc.r[idx] = rv;
      sc.z[idx] = zv;
      sc.n[idx] = nv;
      sc.h[idx] = hv;
      h_out[idx] = hv;
    }
  }
  return out;
}

Tensor Gru::DoBackward(const Tensor& grad_out) {
  const int64_t t_steps = cached_t_;
  const int64_t batch = cached_b_;
  const int64_t m = active_in_;
  const int64_t n = active_hidden_;
  MS_CHECK(grad_out.ndim() == 3 && grad_out.dim(0) == t_steps &&
           grad_out.dim(1) == batch && grad_out.dim(2) == n);

  MS_CHECK_MSG(cached_x_.ndim() == 3,
               "Gru::Backward requires a prior Forward");
  // dx/dh consume op(B) = W; pack once, reuse across the reverse sweep.
  for (int gate = 0; gate < 3; ++gate) {
    ops::EnsurePackedB(
        false, opts_.hidden_size, opts_.input_size,
        wx_.data() + gate * opts_.hidden_size * opts_.input_size,
        opts_.input_size, &wx_pack_nt_[gate]);
    ops::EnsurePackedB(
        false, opts_.hidden_size, opts_.hidden_size,
        wh_.data() + gate * opts_.hidden_size * opts_.hidden_size,
        opts_.hidden_size, &wh_pack_nt_[gate]);
  }
  Tensor grad_in({t_steps, batch, m});
  ScratchArena& arena = ScratchArena::ForThread();
  ScratchArena::Scope scope(arena);
  const int64_t bn = batch * n;
  float* dh_next = arena.AllocZeroed(bn);
  // Pre-activation grads for the three input paths and three hidden paths.
  float* dxr = arena.Alloc(bn);
  float* dxz = arena.Alloc(bn);
  float* dxn = arena.Alloc(bn);
  float* dhr = arena.Alloc(bn);
  float* dhz = arena.Alloc(bn);
  float* dhn = arena.Alloc(bn);

  for (int64_t t = t_steps - 1; t >= 0; --t) {
    const StepCache& sc = steps_[static_cast<size_t>(t)];
    const float* h_prev =
        (t > 0) ? steps_[static_cast<size_t>(t - 1)].h.data() : nullptr;

    for (int64_t idx = 0; idx < batch * n; ++idx) {
      const float dh = grad_out[t * batch * n + idx] + dh_next[idx];
      const float rv = sc.r[idx];
      const float zv = sc.z[idx];
      const float nv = sc.n[idx];
      const float hp = h_prev ? h_prev[idx] : 0.0f;
      const float hnv = sc.hn[idx];

      const float dz = dh * (hp - nv);
      const float dn = dh * (1.0f - zv);
      float dh_prev_direct = dh * zv;

      const float dn_pre = dn * (1.0f - nv * nv);
      // n path: xn gets dn_pre; (r * hn) gets dn_pre.
      dxn[idx] = dn_pre;
      const float dr = dn_pre * hnv;
      dhn[idx] = dn_pre * rv;

      const float dz_pre = dz * zv * (1.0f - zv);
      const float dr_pre = dr * rv * (1.0f - rv);
      dxz[idx] = dz_pre;
      dxr[idx] = dr_pre;
      dhz[idx] = dz_pre;
      dhr[idx] = dr_pre;

      dh_next[idx] = dh_prev_direct;  // recurrent-path grads added below.
    }

    const float* xt = cached_x_.data() + t * batch * m;
    float* dxt = grad_in.data() + t * batch * m;
    std::fill(dxt, dxt + batch * m, 0.0f);

    const float* dx_gates[3] = {dxr, dxz, dxn};
    const float* dh_gates[3] = {dhr, dhz, dhn};
    for (int gate = 0; gate < 3; ++gate) {
      const float* dzx = dx_gates[gate];
      const float* dzh = dh_gates[gate];
      float* wxg = wx_grad_.data() + gate * opts_.hidden_size *
                                         opts_.input_size;
      float* whg = wh_grad_.data() + gate * opts_.hidden_size *
                                         opts_.hidden_size;
      float* bxg = bx_grad_.data() + gate * opts_.hidden_size;
      float* bhg = bh_grad_.data() + gate * opts_.hidden_size;

      // Input path.
      ops::Gemm(true, false, n, m, batch, rescale_x_, dzx, n, xt, m, 1.0f,
                wxg, opts_.input_size);
      for (int64_t b = 0; b < batch; ++b) {
        const float* row = dzx + b * n;
        for (int64_t j = 0; j < n; ++j) bxg[j] += row[j];
      }
      ops::GemmPrepackedB(false, batch, m, n, rescale_x_, dzx, n,
                          wx_pack_nt_[gate], 1.0f, dxt, m);

      // Hidden path.
      if (h_prev != nullptr) {
        ops::Gemm(true, false, n, n, batch, rescale_h_, dzh, n, h_prev, n,
                  1.0f, whg, opts_.hidden_size);
      }
      for (int64_t b = 0; b < batch; ++b) {
        const float* row = dzh + b * n;
        for (int64_t j = 0; j < n; ++j) bhg[j] += row[j];
      }
      ops::GemmPrepackedB(false, batch, n, n, rescale_h_, dzh, n,
                          wh_pack_nt_[gate], 1.0f, dh_next, n);
    }
  }
  return grad_in;
}

void Gru::CollectParams(std::vector<ParamRef>* out) {
  out->push_back({name_ + ".wx", &wx_, &wx_grad_, /*no_decay=*/false});
  out->push_back({name_ + ".wh", &wh_, &wh_grad_, /*no_decay=*/false});
  out->push_back({name_ + ".bx", &bx_, &bx_grad_, /*no_decay=*/true});
  out->push_back({name_ + ".bh", &bh_, &bh_grad_, /*no_decay=*/true});
}

int64_t Gru::FlopsPerSample() const {
  return 3 * (active_in_ * active_hidden_ + active_hidden_ * active_hidden_);
}

int64_t Gru::ActiveParams() const {
  return 3 * (active_in_ * active_hidden_ +
              active_hidden_ * active_hidden_ + 2 * active_hidden_);
}

}  // namespace ms
