// 2-D convolution with model slicing over channels (paper Sec. 3.2, Eq. 4).
#ifndef MODELSLICING_NN_CONV2D_H_
#define MODELSLICING_NN_CONV2D_H_

#include <string>

#include "src/nn/module.h"
#include "src/nn/slice_spec.h"
#include "src/tensor/prepack.h"
#include "src/tensor/tensor_ops.h"
#include "src/util/rng.h"

namespace ms {

struct Conv2dOptions {
  int64_t in_channels = 0;
  int64_t out_channels = 0;
  int64_t kernel = 3;
  int64_t stride = 1;
  int64_t pad = 1;
  int64_t groups = 1;     ///< G slicing groups (not conv groups).
  bool slice_in = true;
  bool slice_out = true;
  bool bias = false;      ///< Usually false: a norm layer follows.
};

/// \brief Channel-sliced convolution.
///
/// Weight layout is (N, M, k, k) flattened row-major, so the first
/// m_active*k*k entries of each filter row correspond exactly to the first
/// m_active input channels — slicing both dimensions reduces to prefix GEMMs
/// over im2col buffers.
class Conv2d : public Module {
 public:
  Conv2d(Conv2dOptions opts, Rng* rng, std::string name = "conv");

  Tensor DoForward(const Tensor& x, bool training) override;
  Tensor DoBackward(const Tensor& grad_out) override;
  void CollectParams(std::vector<ParamRef>* out) override;
  void DoSetSliceRate(double r) override;
  int64_t FlopsPerSample() const override;
  int64_t ActiveParams() const override;
  std::string name() const override { return name_; }

  int64_t active_in() const { return active_in_; }
  int64_t active_out() const { return active_out_; }
  const Conv2dOptions& options() const { return opts_; }

  /// Fusion-pass hook: apply `act` in the forward GEMM's epilogue at
  /// inference (the following activation module is then bypassed).
  void SetFusedActivation(ops::EpiAct act) { fused_act_ = act; }
  ops::EpiAct fused_activation() const { return fused_act_; }

  /// Weight matrix (out_channels, in_channels * k * k); exposed for the
  /// channel-pruning baseline which rebuilds compact networks.
  const Tensor& weight() const { return w_; }
  /// Write-intent accessor: bumps the weight generation so prepacked
  /// panels (see prepack.h) can never serve the old values.
  Tensor* mutable_weight() {
    ops::BumpWeightGeneration();
    return &w_;
  }
  const Tensor& bias() const { return b_; }
  Tensor* mutable_bias() { return &b_; }

 private:
  Conv2dOptions opts_;
  std::string name_;
  SliceSpec in_spec_;
  SliceSpec out_spec_;
  int64_t active_in_ = 0;
  int64_t active_out_ = 0;

  Tensor w_;       ///< (out_channels, in_channels * k * k)
  Tensor b_;
  Tensor w_grad_;
  Tensor b_grad_;

  // Prepacked full-size W panels in the GEMM's A role (W is the left
  // operand of the im2col product); sliced channels read a prefix.
  // Ensured BEFORE the batch-parallel regions so workers share them
  // read-only. _t = W^T for the backward dcols path.
  ops::PackedMatrix wpack_;
  ops::PackedMatrix wpack_t_;

  /// Int8 forward path: W^T quantized per (input-channel slice group x k*k
  /// segment, output channel) — the SAME pack format Dense uses; the conv
  /// GEMM consumes it through GemmQuantizedWeightA's transposed merge.
  ops::QuantizedPack qpack_t_;
  /// K segment ends of W^T: input group boundaries scaled by k*k.
  std::vector<int64_t> in_k_ends_;

  Tensor cached_x_;       ///< compact input (B, m, H, W)
  ops::EpiAct fused_act_ = ops::EpiAct::kNone;
  int64_t cached_h_ = 0;
  int64_t cached_w_ = 0;
  int64_t last_oh_ = 0;   ///< spatial dims of last output, for FLOPs.
  int64_t last_ow_ = 0;
};

}  // namespace ms

#endif  // MODELSLICING_NN_CONV2D_H_
