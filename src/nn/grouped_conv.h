// Grouped 2-D convolution (ResNeXt-style homogeneous multi-branch
// transformation [51]). The paper singles these out as ideally suited to
// group residual learning (Sec. 3.5): when the convolution groups coincide
// with the slicing groups, a slice keeps a prefix of whole branches, each
// branch's compute is independent, and cost scales linearly in the number
// of active branches.
#ifndef MODELSLICING_NN_GROUPED_CONV_H_
#define MODELSLICING_NN_GROUPED_CONV_H_

#include <string>
#include <vector>

#include "src/nn/module.h"
#include "src/nn/slice_spec.h"
#include "src/tensor/prepack.h"
#include "src/util/rng.h"

namespace ms {

struct GroupedConv2dOptions {
  int64_t in_channels = 0;    ///< must be divisible by groups.
  int64_t out_channels = 0;   ///< must be divisible by groups.
  int64_t kernel = 3;
  int64_t stride = 1;
  int64_t pad = 1;
  int64_t groups = 1;         ///< convolution groups == slicing groups.
  bool slice = true;
};

/// \brief Branch g maps input channels [g*Mg, (g+1)*Mg) to output channels
/// [g*Ng, (g+1)*Ng); slicing activates the branch prefix.
class GroupedConv2d : public Module {
 public:
  GroupedConv2d(GroupedConv2dOptions opts, Rng* rng,
                std::string name = "gconv");

  Tensor DoForward(const Tensor& x, bool training) override;
  Tensor DoBackward(const Tensor& grad_out) override;
  void CollectParams(std::vector<ParamRef>* out) override;
  void DoSetSliceRate(double r) override;
  int64_t FlopsPerSample() const override;
  int64_t ActiveParams() const override;
  std::string name() const override { return name_; }

  int64_t active_groups() const { return active_groups_; }
  int64_t active_in() const { return active_groups_ * in_per_group_; }
  int64_t active_out() const { return active_groups_ * out_per_group_; }

  /// Fusion-pass hook: apply `act` in each branch GEMM's epilogue at
  /// inference (the following activation module is then bypassed). The
  /// layer has no bias, so the epilogue is activation-only.
  void SetFusedActivation(ops::EpiAct act) { fused_act_ = act; }
  ops::EpiAct fused_activation() const { return fused_act_; }

 private:
  GroupedConv2dOptions opts_;
  std::string name_;
  int64_t in_per_group_ = 0;
  int64_t out_per_group_ = 0;
  int64_t active_groups_ = 0;

  Tensor w_;       ///< (groups, out_per_group, in_per_group * k * k) flat.
  Tensor w_grad_;

  // One prepacked W_g per branch (slicing keeps whole branches, so each
  // pack is always used at full extents); ensured before the parallel
  // regions. _t = W_g^T for the backward dcols path.
  std::vector<ops::PackedMatrix> wpacks_;
  std::vector<ops::PackedMatrix> wpacks_t_;

  /// Int8 forward path: one quantized W_g^T per branch. A branch is either
  /// fully active or fully inactive, so each pack is a single K segment
  /// used at full extents.
  std::vector<ops::QuantizedPack> qpacks_t_;

  Tensor cached_x_;
  ops::EpiAct fused_act_ = ops::EpiAct::kNone;
  int64_t cached_h_ = 0, cached_w_ = 0, last_oh_ = 0, last_ow_ = 0;
};

}  // namespace ms

#endif  // MODELSLICING_NN_GROUPED_CONV_H_
