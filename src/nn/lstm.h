// LSTM layer with model slicing over inputs, hidden units and all four gates
// (paper Sec. 3.3): one slice rate regulates every input/output set.
#ifndef MODELSLICING_NN_LSTM_H_
#define MODELSLICING_NN_LSTM_H_

#include <string>
#include <vector>

#include "src/nn/module.h"
#include "src/nn/slice_spec.h"
#include "src/tensor/prepack.h"
#include "src/util/rng.h"

namespace ms {

struct LstmOptions {
  int64_t input_size = 0;
  int64_t hidden_size = 0;
  int64_t groups = 1;
  bool slice_in = true;
  bool slice_out = true;
  /// Rescale the input and recurrent contributions by full/active fan-in so
  /// gate pre-activations keep their scale across slice rates.
  bool rescale = true;
};

/// \brief Single-layer LSTM over a (T, B, input) sequence; returns the
/// (T, B, hidden) hidden-state sequence. All gate blocks [i, f, g, o] are
/// sliced to the same active prefix of hidden units.
class Lstm : public Module {
 public:
  Lstm(LstmOptions opts, Rng* rng, std::string name = "lstm");

  Tensor DoForward(const Tensor& x, bool training) override;
  Tensor DoBackward(const Tensor& grad_out) override;
  void CollectParams(std::vector<ParamRef>* out) override;
  void DoSetSliceRate(double r) override;
  int64_t FlopsPerSample() const override;
  int64_t ActiveParams() const override;
  std::string name() const override { return name_; }

  int64_t active_in() const { return active_in_; }
  int64_t active_hidden() const { return active_hidden_; }

 private:
  // Pre-activation z = rescale_x * Wx[gate] x + rescale_h * Wh[gate] h + b.
  // `int8` routes both GEMMs through the quantized packs (ensured by
  // DoForward before the timestep loop). With `fuse` set (inference +
  // epilogue fusion enabled) the second GEMM's epilogue adds the gate bias
  // and applies the gate nonlinearity (sigmoid for i/f/o, tanh for g), so z
  // holds *activated* gate values and the separate bias pass is skipped.
  void GateGemm(int gate, const float* x, int64_t m, const float* h,
                int64_t batch, bool int8, bool fuse, float* z) const;

  LstmOptions opts_;
  std::string name_;
  SliceSpec in_spec_;
  SliceSpec hidden_spec_;
  int64_t active_in_ = 0;
  int64_t active_hidden_ = 0;
  float rescale_x_ = 1.0f;
  float rescale_h_ = 1.0f;

  Tensor wx_;  ///< (4 * hidden, input): gate blocks stacked [i, f, g, o].
  Tensor wh_;  ///< (4 * hidden, hidden)
  Tensor b_;   ///< (4 * hidden)
  Tensor wx_grad_, wh_grad_, b_grad_;

  // Prepacked gate blocks, one per gate because the stacked [i,f,g,o]
  // rows are not a slice prefix of the full matrix. The recurrent
  // wh_pack_ is the biggest win: it is reused across all T timesteps.
  // _t = op(B) is W^T (forward); _nt = op(B) is W (backward dx/dh).
  ops::PackedMatrix wx_pack_t_[4], wh_pack_t_[4];
  ops::PackedMatrix wx_pack_nt_[4], wh_pack_nt_[4];

  // Int8 forward path: quantized gate blocks, K segments on the input /
  // hidden slice-group boundaries so any rate reads a pack prefix.
  ops::QuantizedPack qwx_t_[4], qwh_t_[4];
  std::vector<int64_t> in_k_ends_, hidden_k_ends_;

  // Per-timestep caches from the last Forward (compact widths).
  struct StepCache {
    Tensor i, f, g, o;     ///< gate activations, (B, n) each
    Tensor c, tanh_c, h;   ///< cell, tanh(cell), hidden
  };
  std::vector<StepCache> steps_;
  Tensor cached_x_;
  int64_t cached_t_ = 0;
  int64_t cached_b_ = 0;
};

}  // namespace ms

#endif  // MODELSLICING_NN_LSTM_H_
