// Fully-connected layer with model slicing (paper Sec. 3.1, Eq. 1-2).
#ifndef MODELSLICING_NN_DENSE_H_
#define MODELSLICING_NN_DENSE_H_

#include <string>

#include "src/nn/module.h"
#include "src/nn/slice_spec.h"
#include "src/tensor/prepack.h"
#include "src/util/rng.h"

namespace ms {

struct DenseOptions {
  int64_t in_features = 0;
  int64_t out_features = 0;
  int64_t groups = 1;          ///< G, ordered slicing groups per dimension.
  bool slice_in = true;        ///< Input neurons participate in slicing.
  bool slice_out = true;       ///< Output neurons participate in slicing.
  bool bias = true;
  /// Rescale output by full_in / active_in so pre-activation scale is stable
  /// as the fan-in shrinks ("output rescaling", paper Sec. 5.2.2). Only
  /// meaningful when slice_in is true and the layer is not followed by a
  /// normalization layer.
  bool rescale = false;
  /// Multiplier when the input is a flattened spatial map: the sliceable
  /// unit is `in_unit` consecutive scalars (e.g. H*W after flatten).
  int64_t in_unit = 1;
};

/// \brief y = W x (+ b) over the active prefix of neurons.
///
/// W is stored full-size (out_features x in_features); forward/backward at
/// slice rate r touch rows [0, n_active) and columns [0, m_active), leaving
/// the rest untouched (zero gradient), which realizes the partial-order
/// group constraint of Eq. 2.
class Dense : public Module {
 public:
  Dense(DenseOptions opts, Rng* rng, std::string name = "dense");

  Tensor DoForward(const Tensor& x, bool training) override;
  Tensor DoBackward(const Tensor& grad_out) override;
  void CollectParams(std::vector<ParamRef>* out) override;
  void DoSetSliceRate(double r) override;
  int64_t FlopsPerSample() const override;
  int64_t ActiveParams() const override;
  std::string name() const override { return name_; }

  int64_t active_in() const { return active_in_units_ * opts_.in_unit; }
  int64_t active_out() const { return active_out_; }
  /// Fusion-pass hook: apply `act` in the forward GEMM's epilogue at
  /// inference (the following activation module is then bypassed).
  void SetFusedActivation(ops::EpiAct act) { fused_act_ = act; }
  ops::EpiAct fused_activation() const { return fused_act_; }
  const Tensor& weight() const { return w_; }
  /// Write-intent accessor: bumps the weight generation so prepacked
  /// panels (see prepack.h) can never serve the old values.
  Tensor* mutable_weight() {
    ops::BumpWeightGeneration();
    return &w_;
  }
  const Tensor& bias() const { return b_; }
  Tensor* mutable_bias() { return &b_; }
  const DenseOptions& options() const { return opts_; }

 private:
  DenseOptions opts_;
  std::string name_;
  SliceSpec in_spec_;
  SliceSpec out_spec_;
  int64_t active_in_units_ = 0;  ///< active input *units* (pre in_unit).
  int64_t active_out_ = 0;

  Tensor w_;       ///< (out_features, in_features)
  Tensor b_;       ///< (out_features)
  Tensor w_grad_;
  Tensor b_grad_;

  Tensor cached_x_;  ///< compact input from last Forward.
  float rescale_factor_ = 1.0f;
  ops::EpiAct fused_act_ = ops::EpiAct::kNone;

  // Prepacked full-size W panels; any slice rate reads a prefix. Two
  // flavors because forward consumes op(B) = W^T and backward-dx op(B)
  // = W. Rebuilt lazily when the weight generation advances.
  ops::PackedMatrix wpack_t_;   ///< trans_b = true (forward)
  ops::PackedMatrix wpack_nt_;  ///< trans_b = false (backward dx)

  /// Int8 forward path (precision == kInt8, inference only): W^T quantized
  /// per (input slice group, output neuron), so any (rate, int8) operating
  /// point reads a prefix of this one pack. Keyed/staleness-checked by the
  /// same weight generation as the fp32 panels.
  ops::QuantizedPack qpack_t_;
  /// K segment ends of W^T: input group boundaries scaled by in_unit.
  std::vector<int64_t> in_k_ends_;
};

}  // namespace ms

#endif  // MODELSLICING_NN_DENSE_H_
