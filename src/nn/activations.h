// Stateless activation layers (shape-agnostic; pass compact slices through).
#ifndef MODELSLICING_NN_ACTIVATIONS_H_
#define MODELSLICING_NN_ACTIVATIONS_H_

#include <cmath>

#include "src/nn/module.h"
#include "src/tensor/epilogue.h"

namespace ms {

/// \brief max(0, x); caches the activation mask for backward.
class ReLU : public Module {
 public:
  Tensor DoForward(const Tensor& x, bool training) override {
    (void)training;
    mask_.assign(static_cast<size_t>(x.size()), 0);
    Tensor y = x;
    for (int64_t i = 0; i < y.size(); ++i) {
      if (y[i] > 0.0f) {
        mask_[static_cast<size_t>(i)] = 1;
      } else {
        y[i] = 0.0f;
      }
    }
    return y;
  }

  Tensor DoBackward(const Tensor& grad_out) override {
    MS_CHECK(grad_out.size() == static_cast<int64_t>(mask_.size()));
    Tensor g = grad_out;
    for (int64_t i = 0; i < g.size(); ++i) {
      if (!mask_[static_cast<size_t>(i)]) g[i] = 0.0f;
    }
    return g;
  }

  std::string name() const override { return "relu"; }

  /// Marked by the fusion pass (nn/fusion.h): the preceding layer applies
  /// this activation in its GEMM epilogue, so the inference forward skips
  /// this module. Training and the toggle-off path still run it.
  void set_fused(bool fused) { fused_ = fused; }
  bool BypassedAtInference() const override {
    return fused_ && ops::FuseEpiloguesEnabled();
  }

 private:
  std::vector<uint8_t> mask_;
  bool fused_ = false;
};

/// \brief tanh(x); backward uses 1 - tanh^2 from the cached output.
class Tanh : public Module {
 public:
  Tensor DoForward(const Tensor& x, bool training) override {
    (void)training;
    Tensor y = x;
    for (int64_t i = 0; i < y.size(); ++i) y[i] = std::tanh(y[i]);
    cached_y_ = y;
    return y;
  }

  Tensor DoBackward(const Tensor& grad_out) override {
    Tensor g = grad_out;
    for (int64_t i = 0; i < g.size(); ++i) {
      const float t = cached_y_[i];
      g[i] *= 1.0f - t * t;
    }
    return g;
  }

  std::string name() const override { return "tanh"; }

  /// See ReLU::set_fused.
  void set_fused(bool fused) { fused_ = fused; }
  bool BypassedAtInference() const override {
    return fused_ && ops::FuseEpiloguesEnabled();
  }

 private:
  Tensor cached_y_;
  bool fused_ = false;
};

}  // namespace ms

#endif  // MODELSLICING_NN_ACTIVATIONS_H_
