#include "src/nn/summary.h"

#include <sstream>

#include "src/nn/conv2d.h"
#include "src/nn/dense.h"
#include "src/nn/depthwise_conv.h"
#include "src/nn/grouped_conv.h"
#include "src/nn/gru.h"
#include "src/nn/lstm.h"
#include "src/nn/norm.h"
#include "src/nn/residual.h"
#include "src/obs/profiler.h"
#include "src/util/string_util.h"

namespace ms {
namespace {

std::string KindOf(const Module* m) {
  if (dynamic_cast<const Dense*>(m) != nullptr) return "dense";
  if (dynamic_cast<const Conv2d*>(m) != nullptr) return "conv2d";
  if (dynamic_cast<const DepthwiseConv2d*>(m) != nullptr) return "dwconv";
  if (dynamic_cast<const GroupedConv2d*>(m) != nullptr) return "gconv";
  if (dynamic_cast<const Lstm*>(m) != nullptr) return "lstm";
  if (dynamic_cast<const Gru*>(m) != nullptr) return "gru";
  if (dynamic_cast<const GroupNorm*>(m) != nullptr) return "groupnorm";
  if (dynamic_cast<const MultiBatchNorm*>(m) != nullptr) return "multibn";
  if (dynamic_cast<const BatchNorm*>(m) != nullptr) return "batchnorm";
  if (dynamic_cast<const ResidualBlock*>(m) != nullptr) return "residual";
  if (dynamic_cast<const Sequential*>(m) != nullptr) return "sequential";
  return "";
}

void Walk(Module* m, int depth, ModelSummary* out) {
  LayerSummary layer;
  layer.name = m->name();
  layer.kind = KindOf(m);
  layer.active_params = m->ActiveParams();
  layer.flops = m->FlopsPerSample();
  layer.depth = depth;
  if (const obs::SliceProfiler* prof = obs::SliceProfiler::Active()) {
    layer.fwd_millis = prof->MeanForwardNanos(m, out->rate) / 1e6;
  }
  out->layers.push_back(layer);

  if (auto* seq = dynamic_cast<Sequential*>(m)) {
    for (size_t i = 0; i < seq->size(); ++i) {
      Walk(seq->child(i), depth + 1, out);
    }
  } else if (auto* res = dynamic_cast<ResidualBlock*>(m)) {
    Walk(res->body(), depth + 1, out);
  }
}

}  // namespace

ModelSummary Summarize(Module* net, const Tensor& sample, double rate) {
  net->SetSliceRate(rate);
  (void)net->Forward(sample, /*training=*/false);
  ModelSummary summary;
  summary.rate = rate;
  Walk(net, 0, &summary);
  // Totals come from the root (children would double-count).
  summary.total_params = net->ActiveParams();
  summary.total_flops = net->FlopsPerSample();
  return summary;
}

std::string FormatSummary(const ModelSummary& summary) {
  bool profiled = false;
  for (const auto& layer : summary.layers) {
    if (layer.fwd_millis > 0.0) {
      profiled = true;
      break;
    }
  }
  std::ostringstream os;
  os << StrFormat("model summary at slice rate %.3f\n", summary.rate);
  os << StrFormat("%-36s %-11s %12s %12s", "layer", "kind", "params",
                  "FLOPs");
  if (profiled) os << StrFormat(" %10s", "fwd ms");
  os << "\n";
  for (const auto& layer : summary.layers) {
    std::string indent(static_cast<size_t>(layer.depth) * 2, ' ');
    const std::string name = indent + layer.name;
    os << StrFormat("%-36s %-11s %12lld %12lld", name.c_str(),
                    layer.kind.c_str(),
                    static_cast<long long>(layer.active_params),
                    static_cast<long long>(layer.flops));
    if (profiled) os << StrFormat(" %10.4f", layer.fwd_millis);
    os << "\n";
  }
  os << StrFormat("%-36s %-11s %12lld %12lld", "TOTAL (active)", "",
                  static_cast<long long>(summary.total_params),
                  static_cast<long long>(summary.total_flops));
  if (profiled && !summary.layers.empty()) {
    // The root layer's measured time covers the whole model.
    os << StrFormat(" %10.4f", summary.layers.front().fwd_millis);
  }
  os << "\n";
  return os.str();
}

}  // namespace ms
