#include "src/nn/lstm.h"

#include <cmath>

#include "src/tensor/scratch.h"
#include "src/tensor/tensor_ops.h"

namespace ms {
namespace {

inline float Sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }

}  // namespace

Lstm::Lstm(LstmOptions opts, Rng* rng, std::string name)
    : opts_(opts), name_(std::move(name)) {
  MS_CHECK(opts_.input_size >= 1 && opts_.hidden_size >= 1);
  in_spec_ = SliceSpec(opts_.input_size,
                       std::min<int64_t>(opts_.groups, opts_.input_size));
  hidden_spec_ = SliceSpec(opts_.hidden_size,
                           std::min<int64_t>(opts_.groups, opts_.hidden_size));
  active_in_ = opts_.input_size;
  active_hidden_ = opts_.hidden_size;

  const float bound =
      1.0f / std::sqrt(static_cast<float>(opts_.hidden_size));
  wx_ = Tensor::RandUniform({4 * opts_.hidden_size, opts_.input_size}, rng,
                            -bound, bound);
  wh_ = Tensor::RandUniform({4 * opts_.hidden_size, opts_.hidden_size}, rng,
                            -bound, bound);
  b_ = Tensor::Zeros({4 * opts_.hidden_size});
  // Forget-gate bias init to 1: standard trick for gradient flow.
  for (int64_t i = opts_.hidden_size; i < 2 * opts_.hidden_size; ++i) {
    b_[i] = 1.0f;
  }
  wx_grad_ = Tensor::Zeros(wx_.shape());
  wh_grad_ = Tensor::Zeros(wh_.shape());
  b_grad_ = Tensor::Zeros(b_.shape());
  for (int64_t g = 1; g <= in_spec_.num_groups(); ++g) {
    in_k_ends_.push_back(in_spec_.GroupBoundary(g));
  }
  for (int64_t g = 1; g <= hidden_spec_.num_groups(); ++g) {
    hidden_k_ends_.push_back(hidden_spec_.GroupBoundary(g));
  }
}

void Lstm::DoSetSliceRate(double r) {
  active_in_ =
      opts_.slice_in ? in_spec_.ActiveWidth(r) : in_spec_.full_width();
  active_hidden_ = opts_.slice_out ? hidden_spec_.ActiveWidth(r)
                                   : hidden_spec_.full_width();
  if (opts_.rescale) {
    rescale_x_ = static_cast<float>(in_spec_.full_width()) /
                 static_cast<float>(active_in_);
    rescale_h_ = static_cast<float>(hidden_spec_.full_width()) /
                 static_cast<float>(active_hidden_);
  } else {
    rescale_x_ = rescale_h_ = 1.0f;
  }
}

void Lstm::GateGemm(int gate, const float* x, int64_t m, const float* h,
                    int64_t batch, bool int8, bool fuse, float* z) const {
  const int64_t n = active_hidden_;
  const float* bias = b_.data() + gate * opts_.hidden_size;
  // Only the *second* (recurrent, beta = 1) GEMM carries the epilogue: its
  // merge sees the completed pre-activation, so bias-then-nonlinearity at
  // C-writeback is the same float sequence as the unfused post-passes.
  ops::Epilogue epi;
  if (fuse) {
    epi.bias = bias;
    epi.per_row = false;  // bias indexed by hidden unit == C column
    epi.act = (gate == 2) ? ops::EpiAct::kTanh : ops::EpiAct::kSigmoid;
  }
  // z(B, n) = rescale_x * x(B, m) * Wx[0:n, 0:m]^T
  // z += rescale_h * h(B, n) * Wh[0:n, 0:n]^T
  if (int8) {
    ops::GemmQuantizedB(false, batch, n, m, rescale_x_, x, m, qwx_t_[gate],
                        0.0f, z, n);
    ops::GemmQuantizedBEx(false, batch, n, n, rescale_h_, h, n, qwh_t_[gate],
                          1.0f, z, n, epi);
  } else {
    ops::GemmPrepackedB(false, batch, n, m, rescale_x_, x, m,
                        wx_pack_t_[gate], 0.0f, z, n);
    ops::GemmPrepackedBEx(false, batch, n, n, rescale_h_, h, n,
                          wh_pack_t_[gate], 1.0f, z, n, epi);
  }
  if (!fuse) {
    for (int64_t bi = 0; bi < batch; ++bi) {
      float* row = z + bi * n;
      for (int64_t j = 0; j < n; ++j) row[j] += bias[j];
    }
  }
}

Tensor Lstm::DoForward(const Tensor& x, bool training) {
  MS_CHECK(x.ndim() == 3);
  const int64_t t_steps = x.dim(0);
  const int64_t batch = x.dim(1);
  MS_CHECK_MSG(x.dim(2) == active_in_, "Lstm input width != active_in");
  const int64_t m = active_in_;
  const int64_t n = active_hidden_;

  cached_x_ = x;
  cached_t_ = t_steps;
  cached_b_ = batch;
  const int64_t bn = batch * n;
  // With fusion on, the gate GEMMs return already-activated values and the
  // pointwise loop below skips its Sigmoid/tanh calls.
  const bool fuse = !training && ops::FuseEpiloguesEnabled();

  // Pack each gate's Wx/Wh once up front (a cache hit in steady state);
  // every one of the T timesteps below then reuses the panels. Int8 is
  // inference-only; training always contracts in fp32.
  const bool int8 = precision_ == Precision::kInt8 && !training;
  for (int gate = 0; gate < 4; ++gate) {
    if (int8) {
      ops::EnsureQuantizedB(
          true, opts_.input_size, opts_.hidden_size,
          wx_.data() + gate * opts_.hidden_size * opts_.input_size,
          opts_.input_size, in_k_ends_, &qwx_t_[gate]);
      ops::EnsureQuantizedB(
          true, opts_.hidden_size, opts_.hidden_size,
          wh_.data() + gate * opts_.hidden_size * opts_.hidden_size,
          opts_.hidden_size, hidden_k_ends_, &qwh_t_[gate]);
    } else {
      ops::EnsurePackedB(
          true, opts_.input_size, opts_.hidden_size,
          wx_.data() + gate * opts_.hidden_size * opts_.input_size,
          opts_.input_size, &wx_pack_t_[gate]);
      ops::EnsurePackedB(
          true, opts_.hidden_size, opts_.hidden_size,
          wh_.data() + gate * opts_.hidden_size * opts_.hidden_size,
          opts_.hidden_size, &wh_pack_t_[gate]);
    }
  }

  // Gate pre-activations and the zero initial state live on the arena; the
  // per-step caches in steps_ are resized in place, so warmed-up iterations
  // (fixed t_steps/batch) reuse all their storage and allocate nothing.
  ScratchArena& arena = ScratchArena::ForThread();
  ScratchArena::Scope scope(arena);
  float* zi = arena.Alloc(bn);
  float* zf = arena.Alloc(bn);
  float* zg = arena.Alloc(bn);
  float* zo = arena.Alloc(bn);
  const float* zeros = arena.AllocZeroed(bn);

  if (steps_.size() < static_cast<size_t>(t_steps)) {
    steps_.resize(static_cast<size_t>(t_steps));
  }

  Tensor out = Tensor::Uninit({t_steps, batch, n});
  const float* c_prev = zeros;
  for (int64_t t = 0; t < t_steps; ++t) {
    const float* xt = x.data() + t * batch * m;
    const float* h_prev = (t == 0) ? zeros : out.data() + (t - 1) * bn;
    GateGemm(0, xt, m, h_prev, batch, int8, fuse, zi);
    GateGemm(1, xt, m, h_prev, batch, int8, fuse, zf);
    GateGemm(2, xt, m, h_prev, batch, int8, fuse, zg);
    GateGemm(3, xt, m, h_prev, batch, int8, fuse, zo);

    float* h_out = out.data() + t * bn;
    StepCache& sc = steps_[static_cast<size_t>(t)];
    sc.i.EnsureShape({batch, n});
    sc.f.EnsureShape({batch, n});
    sc.g.EnsureShape({batch, n});
    sc.o.EnsureShape({batch, n});
    sc.c.EnsureShape({batch, n});
    sc.tanh_c.EnsureShape({batch, n});
    sc.h.EnsureShape({batch, n});
    for (int64_t idx = 0; idx < bn; ++idx) {
      const float iv = fuse ? zi[idx] : Sigmoid(zi[idx]);
      const float fv = fuse ? zf[idx] : Sigmoid(zf[idx]);
      const float gv = fuse ? zg[idx] : std::tanh(zg[idx]);
      const float ov = fuse ? zo[idx] : Sigmoid(zo[idx]);
      const float cv = fv * c_prev[idx] + iv * gv;
      const float tc = std::tanh(cv);
      sc.i[idx] = iv;
      sc.f[idx] = fv;
      sc.g[idx] = gv;
      sc.o[idx] = ov;
      sc.c[idx] = cv;
      sc.tanh_c[idx] = tc;
      const float hv = ov * tc;
      sc.h[idx] = hv;
      h_out[idx] = hv;
    }
    c_prev = sc.c.data();
  }
  return out;
}

Tensor Lstm::DoBackward(const Tensor& grad_out) {
  const int64_t t_steps = cached_t_;
  const int64_t batch = cached_b_;
  const int64_t m = active_in_;
  const int64_t n = active_hidden_;
  MS_CHECK(grad_out.ndim() == 3 && grad_out.dim(0) == t_steps &&
           grad_out.dim(1) == batch && grad_out.dim(2) == n);

  MS_CHECK_MSG(cached_x_.ndim() == 3,
               "Lstm::Backward requires a prior Forward");
  // dx/dh consume op(B) = W (untransposed); pack once, reuse across the
  // T-step reverse sweep.
  for (int gate = 0; gate < 4; ++gate) {
    ops::EnsurePackedB(
        false, opts_.hidden_size, opts_.input_size,
        wx_.data() + gate * opts_.hidden_size * opts_.input_size,
        opts_.input_size, &wx_pack_nt_[gate]);
    ops::EnsurePackedB(
        false, opts_.hidden_size, opts_.hidden_size,
        wh_.data() + gate * opts_.hidden_size * opts_.hidden_size,
        opts_.hidden_size, &wh_pack_nt_[gate]);
  }
  Tensor grad_in({t_steps, batch, m});
  ScratchArena& arena = ScratchArena::ForThread();
  ScratchArena::Scope scope(arena);
  const int64_t bn = batch * n;
  float* dh_next = arena.AllocZeroed(bn);
  float* dc_next = arena.AllocZeroed(bn);
  float* dzi = arena.Alloc(bn);
  float* dzf = arena.Alloc(bn);
  float* dzg = arena.Alloc(bn);
  float* dzo = arena.Alloc(bn);

  for (int64_t t = t_steps - 1; t >= 0; --t) {
    const StepCache& sc = steps_[static_cast<size_t>(t)];
    const float* c_prev =
        (t > 0) ? steps_[static_cast<size_t>(t - 1)].c.data() : nullptr;
    const float* h_prev =
        (t > 0) ? steps_[static_cast<size_t>(t - 1)].h.data() : nullptr;

    for (int64_t idx = 0; idx < batch * n; ++idx) {
      const float dh = grad_out[t * batch * n + idx] + dh_next[idx];
      const float iv = sc.i[idx];
      const float fv = sc.f[idx];
      const float gv = sc.g[idx];
      const float ov = sc.o[idx];
      const float tc = sc.tanh_c[idx];
      const float dov = dh * tc;
      float dc = dh * ov * (1.0f - tc * tc) + dc_next[idx];
      const float div = dc * gv;
      const float dgv = dc * iv;
      const float cp = c_prev ? c_prev[idx] : 0.0f;
      const float dfv = dc * cp;
      dc_next[idx] = dc * fv;
      dzi[idx] = div * iv * (1.0f - iv);
      dzf[idx] = dfv * fv * (1.0f - fv);
      dzg[idx] = dgv * (1.0f - gv * gv);
      dzo[idx] = dov * ov * (1.0f - ov);
    }

    const float* xt = cached_x_.data() + t * batch * m;
    float* dxt = grad_in.data() + t * batch * m;
    std::fill(dxt, dxt + batch * m, 0.0f);
    std::fill(dh_next, dh_next + bn, 0.0f);

    const float* dzs[4] = {dzi, dzf, dzg, dzo};
    for (int gate = 0; gate < 4; ++gate) {
      const float* dz = dzs[gate];
      float* wxg =
          wx_grad_.data() + gate * opts_.hidden_size * opts_.input_size;
      float* whg =
          wh_grad_.data() + gate * opts_.hidden_size * opts_.hidden_size;
      float* bg = b_grad_.data() + gate * opts_.hidden_size;
      // dWx[0:n, 0:m] += rescale_x * dz^T(n, B) * x(B, m)
      ops::Gemm(true, false, n, m, batch, rescale_x_, dz, n, xt, m, 1.0f,
                wxg, opts_.input_size);
      if (h_prev != nullptr) {
        ops::Gemm(true, false, n, n, batch, rescale_h_, dz, n, h_prev, n,
                  1.0f, whg, opts_.hidden_size);
      }
      for (int64_t bi = 0; bi < batch; ++bi) {
        const float* row = dz + bi * n;
        for (int64_t j = 0; j < n; ++j) bg[j] += row[j];
      }
      // dx += rescale_x * dz(B, n) * Wx[0:n, 0:m]
      ops::GemmPrepackedB(false, batch, m, n, rescale_x_, dz, n,
                          wx_pack_nt_[gate], 1.0f, dxt, m);
      // dh_prev += rescale_h * dz(B, n) * Wh[0:n, 0:n]
      ops::GemmPrepackedB(false, batch, n, n, rescale_h_, dz, n,
                          wh_pack_nt_[gate], 1.0f, dh_next, n);
    }
  }
  return grad_in;
}

void Lstm::CollectParams(std::vector<ParamRef>* out) {
  out->push_back({name_ + ".wx", &wx_, &wx_grad_, /*no_decay=*/false});
  out->push_back({name_ + ".wh", &wh_, &wh_grad_, /*no_decay=*/false});
  out->push_back({name_ + ".b", &b_, &b_grad_, /*no_decay=*/true});
}

int64_t Lstm::FlopsPerSample() const {
  // Per timestep: 4 gate GEMMs over input and hidden contributions.
  return 4 * (active_in_ * active_hidden_ + active_hidden_ * active_hidden_);
}

int64_t Lstm::ActiveParams() const {
  return 4 * (active_in_ * active_hidden_ +
              active_hidden_ * active_hidden_ + active_hidden_);
}

}  // namespace ms
