// Human-readable model summaries: a per-layer table of active widths,
// parameters and FLOPs at a chosen slice rate — the "what am I deploying at
// r = 0.5?" view.
#ifndef MODELSLICING_NN_SUMMARY_H_
#define MODELSLICING_NN_SUMMARY_H_

#include <string>
#include <vector>

#include "src/nn/module.h"

namespace ms {

struct LayerSummary {
  std::string name;
  std::string kind;        ///< "dense", "conv", "norm", ... ("" = untyped).
  int64_t active_params = 0;
  int64_t flops = 0;       ///< per sample, at the summarized rate.
  int depth = 0;           ///< nesting depth inside Sequential containers.
  /// Mean measured forward wall time at the summarized rate, taken from the
  /// active obs::SliceProfiler session; 0 when no profiler is active.
  /// Container layers include their children's time.
  double fwd_millis = 0.0;
};

struct ModelSummary {
  double rate = 1.0;
  std::vector<LayerSummary> layers;
  int64_t total_params = 0;   ///< active at `rate`.
  int64_t total_flops = 0;
};

/// Walks `net` (recursing into Sequential and ResidualBlock containers)
/// after slicing it to `rate` and running one forward pass on `sample` so
/// spatial extents are known. When an obs::SliceProfiler session is active
/// the pass is timed per layer and per-layer `fwd_millis` is filled in, so
/// Summarize doubles as a quick profiling report.
ModelSummary Summarize(Module* net, const Tensor& sample, double rate);

/// Renders the summary as an aligned text table. A measured "fwd ms" column
/// appears when any layer carries profiling data.
std::string FormatSummary(const ModelSummary& summary);

}  // namespace ms

#endif  // MODELSLICING_NN_SUMMARY_H_
