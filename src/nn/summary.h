// Human-readable model summaries: a per-layer table of active widths,
// parameters and FLOPs at a chosen slice rate — the "what am I deploying at
// r = 0.5?" view.
#ifndef MODELSLICING_NN_SUMMARY_H_
#define MODELSLICING_NN_SUMMARY_H_

#include <string>
#include <vector>

#include "src/nn/module.h"

namespace ms {

struct LayerSummary {
  std::string name;
  std::string kind;        ///< "dense", "conv", "norm", ... ("" = untyped).
  int64_t active_params = 0;
  int64_t flops = 0;       ///< per sample, at the summarized rate.
  int depth = 0;           ///< nesting depth inside Sequential containers.
};

struct ModelSummary {
  double rate = 1.0;
  std::vector<LayerSummary> layers;
  int64_t total_params = 0;   ///< active at `rate`.
  int64_t total_flops = 0;
};

/// Walks `net` (recursing into Sequential and ResidualBlock containers)
/// after slicing it to `rate` and running one forward pass on `sample` so
/// spatial extents are known.
ModelSummary Summarize(Module* net, const Tensor& sample, double rate);

/// Renders the summary as an aligned text table.
std::string FormatSummary(const ModelSummary& summary);

}  // namespace ms

#endif  // MODELSLICING_NN_SUMMARY_H_
