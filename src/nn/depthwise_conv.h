// Depthwise 2-D convolution with model slicing. The paper (Sec. 3.5) notes
// that group residual learning is "ideally suited for networks with layer
// transformation of multiple branches, e.g. group convolution [and]
// depth-wise convolution": each channel's filter touches only that channel,
// so slicing the channel prefix slices filters one-for-one and the cost
// scales *linearly* (not quadratically) with the slice rate.
#ifndef MODELSLICING_NN_DEPTHWISE_CONV_H_
#define MODELSLICING_NN_DEPTHWISE_CONV_H_

#include <string>

#include "src/nn/module.h"
#include "src/nn/slice_spec.h"
#include "src/tensor/epilogue.h"
#include "src/util/rng.h"

namespace ms {

struct DepthwiseConv2dOptions {
  int64_t channels = 0;
  int64_t kernel = 3;
  int64_t stride = 1;
  int64_t pad = 1;
  int64_t groups = 1;   ///< slicing groups G.
  bool slice = true;
};

class DepthwiseConv2d : public Module {
 public:
  DepthwiseConv2d(DepthwiseConv2dOptions opts, Rng* rng,
                  std::string name = "dwconv");

  Tensor DoForward(const Tensor& x, bool training) override;
  Tensor DoBackward(const Tensor& grad_out) override;
  void CollectParams(std::vector<ParamRef>* out) override;
  void DoSetSliceRate(double r) override;
  int64_t FlopsPerSample() const override;
  int64_t ActiveParams() const override;
  std::string name() const override { return name_; }

  int64_t active_channels() const { return active_channels_; }

  /// Fusion-pass hook: the direct-loop kernel applies `act` at each output
  /// write at inference (the following activation module is bypassed). No
  /// bias in this layer, so the fusion is activation-only.
  void SetFusedActivation(ops::EpiAct act) { fused_act_ = act; }
  ops::EpiAct fused_activation() const { return fused_act_; }

 private:
  DepthwiseConv2dOptions opts_;
  std::string name_;
  SliceSpec spec_;
  int64_t active_channels_ = 0;

  Tensor w_;       ///< (channels, k * k)
  Tensor w_grad_;

  Tensor cached_x_;
  ops::EpiAct fused_act_ = ops::EpiAct::kNone;
  int64_t cached_h_ = 0, cached_w_ = 0, last_oh_ = 0, last_ow_ = 0;
};

}  // namespace ms

#endif  // MODELSLICING_NN_DEPTHWISE_CONV_H_
