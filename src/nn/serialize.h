// Minimal binary checkpoint format for model parameters. A checkpoint is a
// sequence of records: name length, name bytes, rank, dims, float payload —
// little-endian, no alignment. Loading validates names and shapes.
#ifndef MODELSLICING_NN_SERIALIZE_H_
#define MODELSLICING_NN_SERIALIZE_H_

#include <string>
#include <vector>

#include "src/nn/module.h"
#include "src/util/status.h"

namespace ms {

/// Writes every parameter (not gradients) to `path`.
Status SaveParams(const std::vector<ParamRef>& params,
                  const std::string& path);

/// Restores parameters in place. Fails if names, order or shapes differ
/// from the checkpoint.
Status LoadParams(const std::vector<ParamRef>& params,
                  const std::string& path);

/// Copies parameter values from `from` into `to` (same architecture).
/// Fails if names, order or shapes differ. Used to stamp out identical
/// per-worker model replicas for the concurrent serving engine.
Status CopyParams(Module* from, Module* to);

}  // namespace ms

#endif  // MODELSLICING_NN_SERIALIZE_H_
