// Crash-safe binary checkpoint format for model parameters (format v2).
//
// Layout (little-endian, no alignment):
//   uint32 magic 0x4D534C43 ("MSLC"), uint32 version = 2, uint64 count,
//   count records  { uint32 name_len, name bytes, uint32 rank,
//                    int64 dims[rank], float payload[prod(dims)] },
//   uint32 CRC32 footer over every preceding byte (header included).
//
// Durability: SaveParams builds the whole image in memory, writes it to
// `path + ".tmp"`, fsyncs, then atomically renames over `path` (and fsyncs
// the directory). A crash — even SIGKILL mid-write — leaves either the old
// checkpoint or the new one fully intact, never a torn file.
//
// Integrity: LoadParams verifies the CRC and validates every record's
// name/shape against the live parameters BEFORE writing a single float, so
// a corrupt or truncated checkpoint yields a clean Status error and the
// model's weights are untouched (no partial load).
//
// Fault point: `checkpoint.write.truncate` (src/util/fault.h) makes
// SaveParams write a truncated temp file and report IoError without
// renaming — the crash-consistency story under test.
#ifndef MODELSLICING_NN_SERIALIZE_H_
#define MODELSLICING_NN_SERIALIZE_H_

#include <string>
#include <vector>

#include "src/nn/module.h"
#include "src/util/status.h"

namespace ms {

/// Writes every parameter (not gradients) to `path`, atomically (see the
/// file comment: temp + fsync + rename).
Status SaveParams(const std::vector<ParamRef>& params,
                  const std::string& path);

/// Restores parameters in place. Fails cleanly — weights untouched — if the
/// file is missing, truncated, CRC-corrupt, or if names/order/shapes differ.
Status LoadParams(const std::vector<ParamRef>& params,
                  const std::string& path);

/// Copies parameter values from `from` into `to` (same architecture).
/// Fails if names, order or shapes differ. Used to stamp out identical
/// per-worker model replicas for the concurrent serving engine.
Status CopyParams(Module* from, Module* to);

/// Deep-copies every parameter tensor into `*out` (cleared first): an
/// in-memory "last known good" for rollback (trainer divergence guard,
/// serving golden master).
void SnapshotParams(const std::vector<ParamRef>& params,
                    std::vector<Tensor>* out);

/// Writes a SnapshotParams snapshot back into the live parameters and
/// invalidates prepacked panels. Fails if sizes/shapes differ.
Status RestoreParams(const std::vector<ParamRef>& params,
                     const std::vector<Tensor>& snapshot);

}  // namespace ms

#endif  // MODELSLICING_NN_SERIALIZE_H_
