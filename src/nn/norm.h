// Normalization layers under model slicing (paper Sec. 3.2, Eq. 5-6).
//
// - GroupNorm: the paper's solution. Normalization groups coincide with the
//   slicing groups, so a sliced layer normalizes exactly its active groups
//   with statistics computed on the fly — no running estimates to go stale.
// - BatchNorm: classic batch statistics + running estimates; under slicing
//   its single set of running estimates cannot stabilize the fluctuating
//   fan-in (the instability the paper describes).
// - MultiBatchNorm: SlimmableNet's alternative — one private BatchNorm per
//   candidate slice rate.
#ifndef MODELSLICING_NN_NORM_H_
#define MODELSLICING_NN_NORM_H_

#include <memory>
#include <string>
#include <vector>

#include "src/nn/module.h"
#include "src/nn/slice_spec.h"
#include "src/tensor/epilogue.h"

namespace ms {

struct NormOptions {
  int64_t channels = 0;
  int64_t groups = 1;    ///< G: slicing == normalization groups.
  bool slice = true;     ///< Whether the channel dim participates in slicing.
  float eps = 1e-5f;
  float momentum = 0.1f; ///< BatchNorm running-stat update rate.
};

/// \brief Group normalization sliced at group granularity.
///
/// Accepts (B, C) or (B, C, H, W) input where C is the active prefix.
class GroupNorm : public Module {
 public:
  explicit GroupNorm(NormOptions opts, std::string name = "gn");

  Tensor DoForward(const Tensor& x, bool training) override;
  Tensor DoBackward(const Tensor& grad_out) override;
  void CollectParams(std::vector<ParamRef>* out) override;
  void DoSetSliceRate(double r) override;
  int64_t ActiveParams() const override { return 2 * active_channels_; }
  std::string name() const override { return name_; }

  int64_t active_channels() const { return active_channels_; }
  /// Per-channel scale γ — Figure 6 visualizes these during training.
  const Tensor& gamma() const { return gamma_; }

  /// Fusion-pass hook: apply `act` at the normalization's own write site
  /// during inference (the following activation module is then bypassed).
  void SetFusedActivation(ops::EpiAct act) { fused_act_ = act; }
  ops::EpiAct fused_activation() const { return fused_act_; }

 private:
  NormOptions opts_;
  std::string name_;
  SliceSpec spec_;
  int64_t active_channels_ = 0;
  int64_t active_groups_ = 0;
  ops::EpiAct fused_act_ = ops::EpiAct::kNone;

  Tensor gamma_;       ///< (C)
  Tensor beta_;        ///< (C)
  Tensor gamma_grad_;
  Tensor beta_grad_;

  // Forward cache for backward.
  Tensor cached_xhat_;
  std::vector<float> cached_inv_std_;  ///< (B * active_groups)
  int64_t cached_batch_ = 0;
  int64_t cached_area_ = 0;
};

/// \brief Batch normalization over the active channel prefix.
class BatchNorm : public Module {
 public:
  explicit BatchNorm(NormOptions opts, std::string name = "bn");

  Tensor DoForward(const Tensor& x, bool training) override;
  Tensor DoBackward(const Tensor& grad_out) override;
  void CollectParams(std::vector<ParamRef>* out) override;
  void DoSetSliceRate(double r) override;
  int64_t ActiveParams() const override { return 2 * active_channels_; }
  std::string name() const override { return name_; }

  int64_t active_channels() const { return active_channels_; }

  /// See GroupNorm::SetFusedActivation.
  void SetFusedActivation(ops::EpiAct act) { fused_act_ = act; }
  ops::EpiAct fused_activation() const { return fused_act_; }

  /// Accessors for the channel-pruning baseline (Network Slimming reads the
  /// γ magnitudes and rebuilds compact BN layers).
  const Tensor& gamma() const { return gamma_; }
  Tensor* mutable_gamma() { return &gamma_; }
  Tensor* mutable_gamma_grad() { return &gamma_grad_; }
  const Tensor& beta() const { return beta_; }
  Tensor* mutable_beta() { return &beta_; }
  const Tensor& running_mean() const { return running_mean_; }
  Tensor* mutable_running_mean() { return &running_mean_; }
  const Tensor& running_var() const { return running_var_; }
  Tensor* mutable_running_var() { return &running_var_; }

 private:
  NormOptions opts_;
  std::string name_;
  SliceSpec spec_;
  int64_t active_channels_ = 0;

  Tensor gamma_, beta_, gamma_grad_, beta_grad_;
  Tensor running_mean_, running_var_;
  ops::EpiAct fused_act_ = ops::EpiAct::kNone;

  Tensor cached_xhat_;
  std::vector<float> cached_inv_std_;  ///< (active channels)
  int64_t cached_batch_ = 0;
  int64_t cached_area_ = 0;
};

/// \brief One independent BatchNorm per candidate slice rate
/// (SlimmableNet [52]). SetSliceRate selects the matching set.
class MultiBatchNorm : public Module {
 public:
  MultiBatchNorm(NormOptions opts, const std::vector<double>& rates,
                 std::string name = "mbn");

  /// Propagates to every per-rate BatchNorm.
  void SetFusedActivation(ops::EpiAct act) {
    for (auto& n : norms_) n->SetFusedActivation(act);
  }

  Tensor DoForward(const Tensor& x, bool training) override;
  Tensor DoBackward(const Tensor& grad_out) override;
  void CollectParams(std::vector<ParamRef>* out) override;
  void DoSetSliceRate(double r) override;
  int64_t ActiveParams() const override;
  std::string name() const override { return name_; }

 private:
  std::string name_;
  std::vector<double> rates_;
  std::vector<std::unique_ptr<BatchNorm>> norms_;
  size_t active_ = 0;
};

}  // namespace ms

#endif  // MODELSLICING_NN_NORM_H_
