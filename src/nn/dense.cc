#include "src/nn/dense.h"

#include <cmath>

#include "src/tensor/gemm.h"
#include "src/tensor/tensor_ops.h"

namespace ms {

Dense::Dense(DenseOptions opts, Rng* rng, std::string name)
    : opts_(opts), name_(std::move(name)) {
  MS_CHECK(opts_.in_features >= 1 && opts_.out_features >= 1);
  MS_CHECK(opts_.in_unit >= 1);
  MS_CHECK_MSG(opts_.in_features % opts_.in_unit == 0,
               "in_features must be a multiple of in_unit");
  const int64_t in_units = opts_.in_features / opts_.in_unit;
  in_spec_ = SliceSpec(in_units, std::min<int64_t>(opts_.groups, in_units));
  out_spec_ = SliceSpec(opts_.out_features,
                        std::min<int64_t>(opts_.groups, opts_.out_features));
  active_in_units_ = in_units;
  active_out_ = opts_.out_features;

  // Kaiming-uniform fan-in init, matching common practice for ReLU nets.
  const float bound =
      std::sqrt(6.0f / static_cast<float>(opts_.in_features));
  w_ = Tensor::RandUniform({opts_.out_features, opts_.in_features}, rng,
                           -bound, bound);
  w_grad_ = Tensor::Zeros({opts_.out_features, opts_.in_features});
  if (opts_.bias) {
    b_ = Tensor::Zeros({opts_.out_features});
    b_grad_ = Tensor::Zeros({opts_.out_features});
  }
  for (int64_t g = 1; g <= in_spec_.num_groups(); ++g) {
    in_k_ends_.push_back(in_spec_.GroupBoundary(g) * opts_.in_unit);
  }
}

void Dense::DoSetSliceRate(double r) {
  active_in_units_ =
      opts_.slice_in ? in_spec_.ActiveWidth(r) : in_spec_.full_width();
  active_out_ =
      opts_.slice_out ? out_spec_.ActiveWidth(r) : out_spec_.full_width();
  rescale_factor_ =
      opts_.rescale
          ? static_cast<float>(in_spec_.full_width()) /
                static_cast<float>(active_in_units_)
          : 1.0f;
}

Tensor Dense::DoForward(const Tensor& x, bool training) {
  const int64_t m = active_in();
  const int64_t n = active_out_;
  MS_CHECK(x.ndim() == 2);
  MS_CHECK_MSG(x.dim(1) == m, "Dense input width != active_in");
  const int64_t batch = x.dim(0);
  cached_x_ = x;

  // Inference fuses bias (and the following activation, when the fusion
  // pass planted one) into the GEMM's C-writeback; training keeps the
  // separate bias pass so the fused/unfused split stays bitwise-testable.
  const bool fuse = !training && ops::FuseEpiloguesEnabled();
  ops::Epilogue epi;
  if (fuse) {
    if (opts_.bias) epi.bias = b_.data();
    epi.act = fused_act_;
    epi.per_row = false;  // bias/act indexed by output column
  }
  Tensor y = Tensor::Uninit({batch, n});
  // y(B,n) = x(B,m) * W[0:n, 0:m]^T — W^T packed once, sliced by prefix.
  // Int8 is inference-only; training always contracts in fp32.
  if (precision_ == Precision::kInt8 && !training) {
    ops::EnsureQuantizedB(/*trans_b=*/true, opts_.in_features,
                          opts_.out_features, w_.data(), opts_.in_features,
                          in_k_ends_, &qpack_t_);
    ops::GemmQuantizedBEx(/*trans_a=*/false, batch, n, m, rescale_factor_,
                          x.data(), m, qpack_t_, 0.0f, y.data(), n, epi);
  } else {
    ops::EnsurePackedB(/*trans_b=*/true, opts_.in_features,
                       opts_.out_features, w_.data(), opts_.in_features,
                       &wpack_t_);
    ops::GemmPrepackedBEx(/*trans_a=*/false, batch, n, m, rescale_factor_,
                          x.data(), m, wpack_t_, 0.0f, y.data(), n, epi);
  }
  if (opts_.bias && !fuse) {
    const float* bias = b_.data();
    float* yd = y.data();
    ops::ParallelForCompute(batch, [&](int64_t i0, int64_t i1) {
      for (int64_t i = i0; i < i1; ++i) {
        float* row = yd + i * n;
        for (int64_t j = 0; j < n; ++j) row[j] += bias[j];
      }
    });
  }
  return y;
}

Tensor Dense::DoBackward(const Tensor& grad_out) {
  const int64_t m = active_in();
  const int64_t n = active_out_;
  MS_CHECK(grad_out.ndim() == 2 && grad_out.dim(1) == n);
  const int64_t batch = grad_out.dim(0);
  MS_CHECK(cached_x_.dim(0) == batch);

  // dW[0:n, 0:m] += g^T(n,B) * x(B,m), scaled by the rescale factor.
  ops::Gemm(/*trans_a=*/true, /*trans_b=*/false, n, m, batch,
            rescale_factor_, grad_out.data(), n, cached_x_.data(), m, 1.0f,
            w_grad_.data(), opts_.in_features);
  if (opts_.bias) {
    // Column-sharded reduction: each task owns columns [j0, j1) and sums
    // rows in ascending i — the serial order — so the result is bitwise
    // identical at any thread count.
    const float* gd = grad_out.data();
    float* bg = b_grad_.data();
    ops::ParallelForCompute(n, [&](int64_t j0, int64_t j1) {
      for (int64_t i = 0; i < batch; ++i) {
        const float* row = gd + i * n;
        for (int64_t j = j0; j < j1; ++j) bg[j] += row[j];
      }
    });
  }

  // dx(B,m) = g(B,n) * W[0:n, 0:m]
  Tensor grad_in({batch, m});
  ops::EnsurePackedB(/*trans_b=*/false, opts_.out_features,
                     opts_.in_features, w_.data(), opts_.in_features,
                     &wpack_nt_);
  ops::GemmPrepackedB(/*trans_a=*/false, batch, m, n, rescale_factor_,
                      grad_out.data(), n, wpack_nt_, 0.0f, grad_in.data(),
                      m);
  return grad_in;
}

void Dense::CollectParams(std::vector<ParamRef>* out) {
  out->push_back({name_ + ".w", &w_, &w_grad_, /*no_decay=*/false});
  if (opts_.bias) {
    out->push_back({name_ + ".b", &b_, &b_grad_, /*no_decay=*/true});
  }
}

int64_t Dense::FlopsPerSample() const {
  return active_in() * active_out_;
}

int64_t Dense::ActiveParams() const {
  return active_in() * active_out_ + (opts_.bias ? active_out_ : 0);
}

}  // namespace ms
