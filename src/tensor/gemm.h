// Packed, cache-blocked, thread-parallel single-precision GEMM — the one
// compute kernel every dense/conv/recurrent layer, the incremental
// evaluator and the serving engine's forwards funnel through.
//
// Determinism contract (see DESIGN.md "Kernel layer"):
//   * Each output element is one scalar accumulation over p = 0..k-1 in
//     increasing order of t_p = (alpha * a_p) * b_p, merged once into the
//     beta-scaled C entry. All four transpose variants, the packed kernel,
//     and GemmRef implement exactly this sequence, so they agree bitwise.
//   * The block grid is fixed by compile-time tile constants, every
//     thread writes a disjoint set of output tiles, and no atomics touch
//     C — results are bitwise identical for any thread count.
//   * When the FMA microkernel is active (AVX2 build on an AVX2 machine),
//     t_p is contracted, i.e. acc = fma(alpha*a_p, b_p, acc); GemmRef
//     dispatches to an std::fmaf reference so exact equality holds per
//     build flavor.
#ifndef MODELSLICING_TENSOR_GEMM_H_
#define MODELSLICING_TENSOR_GEMM_H_

#include <cstdint>
#include <functional>

#include "src/tensor/epilogue.h"

namespace ms {
namespace ops {

/// C = alpha * op(A) * op(B) + beta * C, where op is optional transpose.
/// A is (M x K) after op, B is (K x N) after op, C is (M x N). Leading
/// dimensions may exceed the logical extents (prefix-sliced weights).
/// Large problems run on the process-wide compute pool; calls made from
/// inside any ThreadPool worker run single-threaded (no nested pools).
void Gemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
          float alpha, const float* a, int64_t lda, const float* b,
          int64_t ldb, float beta, float* c, int64_t ldc);

/// Gemm with a fused epilogue (bias / scale-shift / activation) applied to
/// every output element at C-writeback. Bitwise identical to Gemm followed
/// by the same per-element post-pass, at any thread count (epilogue.h).
void GemmEx(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
            float alpha, const float* a, int64_t lda, const float* b,
            int64_t ldb, float beta, float* c, int64_t ldc,
            const Epilogue& epi);

/// Scalar reference kernel with identical floating-point semantics to
/// Gemm (see the determinism contract above). The correctness oracle for
/// the property suite, and the fallback for tiny problems.
void GemmRef(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
             float alpha, const float* a, int64_t lda, const float* b,
             int64_t ldb, float beta, float* c, int64_t ldc);

/// The epilogue oracle: GemmRef, then the epilogue as a separate scalar
/// post-pass over C. Every fused entry point must match it bitwise.
void GemmRefEx(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
               float alpha, const float* a, int64_t lda, const float* b,
               int64_t ldb, float beta, float* c, int64_t ldc,
               const Epilogue& epi);

/// Threads the compute pool uses. Defaults to MS_NUM_THREADS when set,
/// else std::thread::hardware_concurrency(). 1 disables the pool.
int ComputeThreads();

/// Resizes the process-wide compute pool. Not thread-safe with respect to
/// in-flight kernels; intended for startup and tests.
void SetComputeThreads(int n);

/// True when the AVX2/FMA microkernel is compiled in (MS_ENABLE_AVX2) and
/// the CPU supports it at runtime.
bool GemmHasAvx2();

/// Static partition of [0, n) over the compute pool; fn(begin, end) runs
/// on disjoint ranges. Serializes inline when the pool is disabled or the
/// caller is already a pool worker. Layers use this for batch-level
/// parallelism (conv im2col+GEMM shards).
void ParallelForCompute(int64_t n,
                        const std::function<void(int64_t, int64_t)>& fn);

}  // namespace ops
}  // namespace ms

#endif  // MODELSLICING_TENSOR_GEMM_H_
