// Prepacked-operand cache. See prepack.h for the layout/staleness story.
// Compiled with -ffp-contract=off like gemm.cc: the skinny fallback and
// merge loops here must keep the exact mul+add sequence of the portable
// reference on any -march.
#include "src/tensor/prepack.h"

#include <algorithm>
#include <atomic>
#include <cstdint>

#include "src/obs/metrics.h"
#include "src/tensor/gemm.h"
#include "src/tensor/gemm_internal.h"
#include "src/tensor/scratch.h"
#include "src/util/status.h"

namespace ms {
namespace ops {
namespace {

std::atomic<uint64_t> g_weight_generation{1};
std::atomic<uint64_t> g_packs{0};
std::atomic<uint64_t> g_packed_floats{0};
std::atomic<uint64_t> g_hits{0};
std::atomic<uint64_t> g_prepacked_calls{0};

/// Flops above which packing / the panel walk fans out over the pool.
/// Same threshold as the Gemm driver so scheduling stays comparable.
bool WorthParallel(int64_t flops, int64_t tasks) {
  return flops >= detail::kParallelFlops && tasks > 1;
}

/// beta-only merge for k == 0 problems: the exact operation sequence of
/// GemmRef with acc == 0, so -0.0f handling matches bitwise.
void BetaMerge(int64_t m, int64_t n, float beta, float* c, int64_t ldc) {
  const float acc = 0.0f;
  for (int64_t i = 0; i < m; ++i) {
    float* row = c + i * ldc;
    for (int64_t j = 0; j < n; ++j) {
      row[j] = (beta == 0.0f)
                   ? acc
                   : (beta == 1.0f ? row[j] + acc : beta * row[j] + acc);
    }
  }
}

/// BetaMerge then the epilogue post-pass — the k == 0 form of the fused
/// writeback, matching GemmRefEx on a k == 0 problem bitwise.
void BetaMergeEpi(int64_t m, int64_t n, float beta, float* c, int64_t ldc,
                  const Epilogue& epi) {
  BetaMerge(m, n, beta, c, ldc);
  if (epi.empty()) return;
  for (int64_t i = 0; i < m; ++i) {
    float* row = c + i * ldc;
    for (int64_t j = 0; j < n; ++j) {
      row[j] = detail::EpiApply(epi, i, j, row[j]);
    }
  }
}

}  // namespace

uint64_t WeightGeneration() {
  return g_weight_generation.load(std::memory_order_acquire);
}

void BumpWeightGeneration() {
  g_weight_generation.fetch_add(1, std::memory_order_acq_rel);
}

float* PackedMatrix::Reserve(int64_t floats) {
  MS_CHECK(floats >= 0);
  if (floats > capacity_) {
    constexpr int64_t kAlign = 16;  // floats; 64 bytes
    storage_ = std::make_unique<float[]>(floats + kAlign);
    const auto addr = reinterpret_cast<uintptr_t>(storage_.get());
    const uintptr_t aligned =
        (addr + kAlign * sizeof(float) - 1) & ~(kAlign * sizeof(float) - 1);
    data_ = reinterpret_cast<float*>(aligned);
    capacity_ = floats;
  }
  return data_;
}

// ---------------------------------------------------------------------------
// B role: ceil(n/nr) panels of k*nr floats, panel pj at pj*k*nr. Identical
// bytes to the scratch panels Gemm packs for the full (k x n) problem.

void PackB(bool trans_b, int64_t k, int64_t n, const float* b, int64_t ldb,
           PackedMatrix* pack) {
  MS_CHECK(pack != nullptr && b != nullptr);
  MS_CHECK(k >= 1 && n >= 1 && ldb >= 1);
  const detail::MicroKernelDesc& kd = detail::ActiveKernel();
  const int nr = kd.nr;
  const int64_t n_panels = detail::CeilDiv(n, nr);
  const int64_t total = n_panels * k * nr;
  float* out = pack->Reserve(total);
  auto pack_range = [&](int64_t p0, int64_t p1) {
    for (int64_t pj = p0; pj < p1; ++pj) {
      const int64_t j0 = pj * nr;
      detail::PackBPanel(trans_b, b, ldb, j0, std::min<int64_t>(nr, n - j0),
                         k, nr, out + pj * k * nr);
    }
  };
  // Packing is pure data movement; panels land in identical bytes under
  // any partition, so fan out whenever the matrix is big enough to care.
  if (WorthParallel(2 * k * n, n_panels)) {
    ParallelForCompute(n_panels, pack_range);
  } else {
    pack_range(0, n_panels);
  }
  pack->role_ = PackedMatrix::Role::kB;
  pack->trans_ = trans_b;
  pack->rows_ = k;
  pack->cols_ = n;
  pack->ld_ = ldb;
  pack->panel_ = nr;
  pack->src_ = b;
  pack->packed_floats_ = total;
  pack->generation_ = WeightGeneration();
  g_packs.fetch_add(1, std::memory_order_relaxed);
  g_packed_floats.fetch_add(static_cast<uint64_t>(total),
                            std::memory_order_relaxed);
}

bool EnsurePackedB(bool trans_b, int64_t k, int64_t n, const float* b,
                   int64_t ldb, PackedMatrix* pack) {
  MS_CHECK(pack != nullptr);
  if (pack->role_ == PackedMatrix::Role::kB && pack->trans_ == trans_b &&
      pack->rows_ == k && pack->cols_ == n && pack->ld_ == ldb &&
      pack->src_ == b && pack->generation_ == WeightGeneration()) {
    g_hits.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  PackB(trans_b, k, n, b, ldb, pack);
  return true;
}

void GemmPrepackedB(bool trans_a, int64_t m, int64_t n, int64_t k,
                    float alpha, const float* a, int64_t lda,
                    const PackedMatrix& bpack, float beta, float* c,
                    int64_t ldc) {
  GemmPrepackedBEx(trans_a, m, n, k, alpha, a, lda, bpack, beta, c, ldc,
                   Epilogue{});
}

void GemmPrepackedBEx(bool trans_a, int64_t m, int64_t n, int64_t k,
                      float alpha, const float* a, int64_t lda,
                      const PackedMatrix& bpack, float beta, float* c,
                      int64_t ldc, const Epilogue& epi) {
  using detail::CeilDiv;
  MS_CHECK(bpack.role_ == PackedMatrix::Role::kB);
  MS_CHECK(k <= bpack.rows_ && n <= bpack.cols_);
  if (m <= 0 || n <= 0) return;
  g_prepacked_calls.fetch_add(1, std::memory_order_relaxed);
  if (k <= 0) {
    BetaMergeEpi(m, n, beta, c, ldc, epi);
    return;
  }
  const detail::MicroKernelDesc& kd = detail::ActiveKernel();
  const int nr = kd.nr;
  const int mr = kd.mr;
  MS_CHECK(bpack.panel_ == nr);
  // Panel stride uses the PACKED k (full weight), not the sliced k: a
  // k-prefix reads the first k*nr floats of each panel.
  const int64_t pstride = bpack.rows_ * nr;
  const int64_t n_panels = CeilDiv(n, nr);
  const int64_t flops = 2 * m * n * k;

  if (m <= kd.skinny_max_m) {
    // Skinny fast path: no A packing. Each panel yields one m x nr tile;
    // panels are independent, so any partition is bitwise identical.
    auto run = [&](int64_t p0, int64_t p1) {
      alignas(64) float acc[detail::kMaxMr * detail::kMaxNr];
      for (int64_t pj = p0; pj < p1; ++pj) {
        kd.skinny(k, static_cast<int>(m), trans_a, a, lda, alpha,
                  bpack.data_ + pj * pstride, acc);
        const int64_t j0 = pj * nr;
        if (epi.empty()) {
          detail::MergeTile(acc, nr, 0, m, j0,
                            std::min<int64_t>(nr, n - j0), beta, c, ldc);
        } else {
          detail::MergeTileEpi(acc, nr, 0, m, j0,
                               std::min<int64_t>(nr, n - j0), beta, c, ldc,
                               epi);
        }
      }
    };
    if (WorthParallel(flops, n_panels)) {
      ParallelForCompute(n_panels, run);
    } else {
      run(0, n_panels);
    }
    return;
  }

  // General path: pack op(A) per call (it is the activation, different
  // every time), then walk the same fixed cell grid as Gemm against the
  // prepacked panels.
  const int64_t m_bands = CeilDiv(m, detail::kMC);
  const int64_t n_bands = CeilDiv(n, detail::kNC);
  const int64_t band_stride_a = CeilDiv(detail::kMC, mr) * mr * k;

  ScratchArena& arena = ScratchArena::ForThread();
  ScratchArena::Scope scope(arena);
  float* apack = arena.Alloc(m_bands * band_stride_a);

  auto pack_a = [&](int64_t b0, int64_t b1) {
    for (int64_t band = b0; band < b1; ++band) {
      const int64_t i0 = band * detail::kMC;
      detail::PackABand(trans_a, a, lda, i0,
                        std::min<int64_t>(detail::kMC, m - i0), k, alpha,
                        mr, apack + band * band_stride_a);
    }
  };
  auto compute_cells = [&](int64_t c0, int64_t c1) {
    alignas(64) float acc[detail::kMaxMr * detail::kMaxNr];
    for (int64_t cell = c0; cell < c1; ++cell) {
      const int64_t bi = cell / n_bands;
      const int64_t bj = cell % n_bands;
      const int64_t i_base = bi * detail::kMC;
      const int64_t rows = std::min<int64_t>(detail::kMC, m - i_base);
      const int64_t j_base = bj * detail::kNC;
      const int64_t cols = std::min<int64_t>(detail::kNC, n - j_base);
      for (int64_t pj = j_base / nr; pj * nr < j_base + cols; ++pj) {
        const float* bpanel = bpack.data_ + pj * pstride;
        const int64_t j0 = pj * nr;
        const int64_t live_cols = std::min<int64_t>(nr, n - j0);
        for (int64_t pi = 0; pi * mr < rows; ++pi) {
          kd.kernel(k, apack + bi * band_stride_a + pi * mr * k, bpanel,
                    acc);
          if (epi.empty()) {
            detail::MergeTile(acc, nr, i_base + pi * mr,
                              std::min<int64_t>(mr, rows - pi * mr), j0,
                              live_cols, beta, c, ldc);
          } else {
            detail::MergeTileEpi(acc, nr, i_base + pi * mr,
                                 std::min<int64_t>(mr, rows - pi * mr), j0,
                                 live_cols, beta, c, ldc, epi);
          }
        }
      }
    }
  };

  if (WorthParallel(flops, m_bands * n_bands)) {
    ParallelForCompute(m_bands, pack_a);
    ParallelForCompute(m_bands * n_bands, compute_cells);
  } else {
    pack_a(0, m_bands);
    compute_cells(0, m_bands * n_bands);
  }
}

// ---------------------------------------------------------------------------
// A role: bands of kMC rows, each band ceil(kMC/mr) panels of mr rows x
// k_full, band stride fixed by the FULL extents so an m-prefix is a prefix
// of bands/panels and a k-prefix is a within-panel row prefix. Panels hold
// 1*w — exactly what Gemm packs for alpha == 1, the only alpha the conv
// layers use.

void PackA(bool trans_a, int64_t m, int64_t k, const float* a, int64_t lda,
           PackedMatrix* pack) {
  MS_CHECK(pack != nullptr && a != nullptr);
  MS_CHECK(m >= 1 && k >= 1 && lda >= 1);
  const detail::MicroKernelDesc& kd = detail::ActiveKernel();
  const int mr = kd.mr;
  const int64_t m_bands = detail::CeilDiv(m, detail::kMC);
  const int64_t band_stride = detail::CeilDiv(detail::kMC, mr) * mr * k;
  const int64_t total = m_bands * band_stride;
  float* out = pack->Reserve(total);
  for (int64_t band = 0; band < m_bands; ++band) {
    const int64_t i0 = band * detail::kMC;
    detail::PackABand(trans_a, a, lda, i0,
                      std::min<int64_t>(detail::kMC, m - i0), k, 1.0f, mr,
                      out + band * band_stride);
  }
  pack->role_ = PackedMatrix::Role::kA;
  pack->trans_ = trans_a;
  pack->rows_ = m;
  pack->cols_ = k;
  pack->ld_ = lda;
  pack->panel_ = mr;
  pack->src_ = a;
  pack->packed_floats_ = total;
  pack->generation_ = WeightGeneration();
  g_packs.fetch_add(1, std::memory_order_relaxed);
  g_packed_floats.fetch_add(static_cast<uint64_t>(total),
                            std::memory_order_relaxed);
}

bool EnsurePackedA(bool trans_a, int64_t m, int64_t k, const float* a,
                   int64_t lda, PackedMatrix* pack) {
  MS_CHECK(pack != nullptr);
  if (pack->role_ == PackedMatrix::Role::kA && pack->trans_ == trans_a &&
      pack->rows_ == m && pack->cols_ == k && pack->ld_ == lda &&
      pack->src_ == a && pack->generation_ == WeightGeneration()) {
    g_hits.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  PackA(trans_a, m, k, a, lda, pack);
  return true;
}

void GemmPrepackedA(int64_t m, int64_t n, int64_t k,
                    const PackedMatrix& apack, bool trans_b, const float* b,
                    int64_t ldb, float beta, float* c, int64_t ldc) {
  GemmPrepackedAEx(m, n, k, apack, trans_b, b, ldb, beta, c, ldc,
                   Epilogue{});
}

void GemmPrepackedAEx(int64_t m, int64_t n, int64_t k,
                      const PackedMatrix& apack, bool trans_b,
                      const float* b, int64_t ldb, float beta, float* c,
                      int64_t ldc, const Epilogue& epi) {
  using detail::CeilDiv;
  MS_CHECK(apack.role_ == PackedMatrix::Role::kA);
  MS_CHECK(m <= apack.rows_ && k <= apack.cols_);
  if (m <= 0 || n <= 0) return;
  g_prepacked_calls.fetch_add(1, std::memory_order_relaxed);
  if (k <= 0) {
    BetaMergeEpi(m, n, beta, c, ldc, epi);
    return;
  }
  const detail::MicroKernelDesc& kd = detail::ActiveKernel();
  const int nr = kd.nr;
  const int mr = kd.mr;
  MS_CHECK(apack.panel_ == mr);
  // Within-band panel stride and band stride are fixed by the FULL packed
  // extents; sliced k reads a row prefix of each mr-wide panel.
  const int64_t panel_stride = mr * apack.cols_;
  const int64_t band_stride = CeilDiv(detail::kMC, mr) * panel_stride;

  const int64_t m_bands = CeilDiv(m, detail::kMC);
  const int64_t n_bands = CeilDiv(n, detail::kNC);
  const int64_t n_panels = CeilDiv(n, nr);
  const int64_t flops = 2 * m * n * k;

  ScratchArena& arena = ScratchArena::ForThread();
  ScratchArena::Scope scope(arena);
  float* bpack = arena.Alloc(n_panels * nr * k);

  auto pack_b = [&](int64_t p0, int64_t p1) {
    for (int64_t pj = p0; pj < p1; ++pj) {
      const int64_t j0 = pj * nr;
      detail::PackBPanel(trans_b, b, ldb, j0,
                         std::min<int64_t>(nr, n - j0), k, nr,
                         bpack + pj * nr * k);
    }
  };
  auto compute_cells = [&](int64_t c0, int64_t c1) {
    alignas(64) float acc[detail::kMaxMr * detail::kMaxNr];
    for (int64_t cell = c0; cell < c1; ++cell) {
      const int64_t bi = cell / n_bands;
      const int64_t bj = cell % n_bands;
      const int64_t i_base = bi * detail::kMC;
      const int64_t rows = std::min<int64_t>(detail::kMC, m - i_base);
      const int64_t j_base = bj * detail::kNC;
      const int64_t cols = std::min<int64_t>(detail::kNC, n - j_base);
      for (int64_t pj = j_base / nr; pj * nr < j_base + cols; ++pj) {
        const float* bpanel = bpack + pj * nr * k;
        const int64_t j0 = pj * nr;
        const int64_t live_cols = std::min<int64_t>(nr, n - j0);
        for (int64_t pi = 0; pi * mr < rows; ++pi) {
          // Rows past m in the last live panel hold real (full-weight)
          // values rather than Gemm's zero padding; MergeTile's row count
          // discards them identically.
          kd.kernel(k,
                    apack.data_ + bi * band_stride + pi * panel_stride,
                    bpanel, acc);
          if (epi.empty()) {
            detail::MergeTile(acc, nr, i_base + pi * mr,
                              std::min<int64_t>(mr, rows - pi * mr), j0,
                              live_cols, beta, c, ldc);
          } else {
            detail::MergeTileEpi(acc, nr, i_base + pi * mr,
                                 std::min<int64_t>(mr, rows - pi * mr), j0,
                                 live_cols, beta, c, ldc, epi);
          }
        }
      }
    }
  };

  if (WorthParallel(flops, m_bands * n_bands)) {
    ParallelForCompute(n_panels, pack_b);
    ParallelForCompute(m_bands * n_bands, compute_cells);
  } else {
    pack_b(0, n_panels);
    compute_cells(0, m_bands * n_bands);
  }
}

// ---------------------------------------------------------------------------

PackStats GetPackStats() {
  PackStats s;
  s.packs = g_packs.load(std::memory_order_relaxed);
  s.packed_floats = g_packed_floats.load(std::memory_order_relaxed);
  s.hits = g_hits.load(std::memory_order_relaxed);
  s.prepacked_calls = g_prepacked_calls.load(std::memory_order_relaxed);
  return s;
}

uint64_t TotalPackCount() {
  return g_packs.load(std::memory_order_relaxed);
}

void PublishPackMetrics() {
  const PackStats s = GetPackStats();
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetGauge("ms_gemm_pack_count")
      ->Set(static_cast<double>(s.packs));
  registry.GetGauge("ms_gemm_pack_bytes")
      ->Set(static_cast<double>(s.packed_floats) * sizeof(float));
  registry.GetGauge("ms_gemm_pack_hits")->Set(static_cast<double>(s.hits));
  registry.GetGauge("ms_gemm_prepacked_calls")
      ->Set(static_cast<double>(s.prepacked_calls));
}

}  // namespace ops
}  // namespace ms
