// Thread-local scratch arena for kernel workspace: im2col buffers, GEMM
// packing panels, RNN gate pre-activations, per-shard gradient
// accumulators. A bump allocator over a small list of growing blocks;
// Scope gives stack discipline, so steady-state iterations reuse the
// blocks reserved by the first one and perform zero heap allocations
// (TotalBlockAllocs is the test hook that asserts this).
#ifndef MODELSLICING_TENSOR_SCRATCH_H_
#define MODELSLICING_TENSOR_SCRATCH_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/util/status.h"

namespace ms {

class ScratchArena {
 public:
  /// Arena of the calling thread. Pool workers each get their own, so
  /// parallel shards never contend or share buffers.
  static ScratchArena& ForThread() {
    static thread_local ScratchArena arena;
    return arena;
  }

  /// Restores the arena's bump cursor on destruction. Buffers handed out
  /// inside the scope are invalid after it ends; scopes nest (the GEMM
  /// driver opens one inside a layer's).
  class Scope {
   public:
    explicit Scope(ScratchArena& arena)
        : arena_(arena), block_(arena.block_), used_(arena.used_) {}
    ~Scope() {
      arena_.block_ = block_;
      arena_.used_ = used_;
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    ScratchArena& arena_;
    size_t block_;
    size_t used_;
  };

  /// A 64-byte-aligned float buffer of n elements, valid until the
  /// enclosing Scope ends. Contents are uninitialized.
  float* Alloc(int64_t n) {
    MS_CHECK(n >= 0);
    const size_t need = RoundUp(static_cast<size_t>(n));
    while (block_ < blocks_.size()) {
      Block& b = blocks_[block_];
      const size_t at = RoundUp(used_);
      if (at + need <= b.capacity) {
        used_ = at + need;
        return b.aligned + at;
      }
      ++block_;
      used_ = 0;
    }
    AddBlock(need);
    used_ = need;
    return blocks_.back().aligned;
  }

  /// Like Alloc but zero-filled.
  float* AllocZeroed(int64_t n) {
    float* p = Alloc(n);
    std::fill(p, p + n, 0.0f);
    return p;
  }

  /// Total floats reserved across blocks (monotone; never shrinks).
  size_t reserved_floats() const {
    size_t total = 0;
    for (const Block& b : blocks_) total += b.capacity;
    return total;
  }

  /// Process-wide count of block allocations. Steady-state hot loops must
  /// not grow it; tests assert it stays flat across warmed-up iterations.
  static uint64_t TotalBlockAllocs() {
    return alloc_events_.load(std::memory_order_relaxed);
  }

 private:
  // 64-byte alignment, in floats.
  static constexpr size_t kAlign = 16;
  static constexpr size_t kMinBlock = 1 << 14;  // 64 KiB

  struct Block {
    std::unique_ptr<float[]> storage;
    float* aligned = nullptr;
    size_t capacity = 0;
  };

  static size_t RoundUp(size_t n) { return (n + kAlign - 1) & ~(kAlign - 1); }

  void AddBlock(size_t need) {
    size_t cap = kMinBlock;
    if (!blocks_.empty()) cap = blocks_.back().capacity * 2;
    if (cap < need) cap = RoundUp(need);
    Block b;
    b.storage = std::make_unique<float[]>(cap + kAlign);
    const auto addr = reinterpret_cast<uintptr_t>(b.storage.get());
    const uintptr_t aligned =
        (addr + kAlign * sizeof(float) - 1) & ~(kAlign * sizeof(float) - 1);
    b.aligned = reinterpret_cast<float*>(aligned);
    b.capacity = cap;
    blocks_.push_back(std::move(b));
    block_ = blocks_.size() - 1;
    alloc_events_.fetch_add(1, std::memory_order_relaxed);
  }

  static inline std::atomic<uint64_t> alloc_events_{0};

  std::vector<Block> blocks_;
  size_t block_ = 0;  // current block index
  size_t used_ = 0;   // floats used in current block
};

}  // namespace ms

#endif  // MODELSLICING_TENSOR_SCRATCH_H_
