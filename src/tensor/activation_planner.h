// Offline lifetime planning for activation memory (memonger-style interval
// packing). One recorded forward pass at a given (batch, slice rate) yields
// per-tensor lifetimes; the planner packs those intervals into a single
// linear footprint — two tensors share bytes exactly when their lifetimes
// are disjoint — and pre-sizes the arena to the packed footprint so the
// very first serving request runs without growing a slab.
//
// This is where the paper's r^2 memory claim becomes measurable: the
// packed footprint at slice rate r is the per-replica activation peak the
// benches export (BENCH_FUSION.json) and the server publishes per
// (replica, rate). Weights scale ~r^2 and the dominant activations ~r, so
// the total per-replica footprint follows the paper's curve; the plan
// records the honest activation component instead of asserting it.
//
// Determinism: packing is first-fit decreasing over (bytes, alloc order) —
// no hashing, no pointer order — so the same recorded forward always
// produces the same plan.
#ifndef MODELSLICING_TENSOR_ACTIVATION_PLANNER_H_
#define MODELSLICING_TENSOR_ACTIVATION_PLANNER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/tensor/activation_arena.h"

namespace ms {

/// One planned tensor lifetime. Ticks are the arena's logical event times;
/// end == INT64_MAX marks a buffer still live when recording stopped (the
/// forward's returned output). offset is the packed placement.
struct ActivationInterval {
  int64_t id = 0;
  int64_t bytes = 0;
  int64_t start = 0;
  int64_t end = 0;
  int64_t offset = 0;
};

struct ActivationPlan {
  std::vector<ActivationInterval> intervals;
  /// Footprint of the packed placement (max over intervals of
  /// offset + bytes) — what one replica needs for activations.
  int64_t packed_bytes = 0;
  /// Max over time of the sum of live bytes — the lower bound any
  /// placement must exceed. packed_bytes / peak_live_bytes is the
  /// packing's overhead ratio (1.0 == perfect).
  int64_t peak_live_bytes = 0;
  /// Total bytes the recorded forward allocated (no reuse) — what a
  /// naive allocator would touch; the headline reduction denominator.
  int64_t total_alloc_bytes = 0;
};

/// Packs recorded arena events into a plan. Pure function of the events.
ActivationPlan PlanActivations(const std::vector<ArenaEvent>& events);

/// Records one `forward` run inside `arena`, plans it, and Reserve()s the
/// packed footprint on the arena so steady-state repeats of the same
/// forward never grow a slab. Returns the plan.
ActivationPlan PlanForward(ActivationArena* arena,
                           const std::function<void()>& forward);

}  // namespace ms

#endif  // MODELSLICING_TENSOR_ACTIVATION_PLANNER_H_
