// Fused GEMM epilogue descriptor. Every packed/prepacked/quantized GEMM
// entry point has an `Ex` variant taking an Epilogue; the descriptor is
// applied to each output element exactly once, at C-writeback time (the
// merge of the final accumulator tile), while the tile is still hot.
//
// Bitwise contract: because every kernel flavor contracts the full k
// extent before its single merge into C, the epilogue is a deterministic
// per-element function of the final merged value. Applying it at merge
// time is therefore bitwise identical to a separate post-pass over C —
// which is exactly how the reference oracle (GemmRefEx) implements it —
// at any thread count, for every kernel flavor, and for any beta. The
// scalar op order is fixed: bias add, then scale-shift (separate mul and
// add; the TUs applying it build with -ffp-contract=off), then the
// activation. ReLU is `v > 0 ? v : 0` (NaN and -0.0 map to +0.0);
// sigmoid/tanh are the libm forms the unfused layer loops use.
#ifndef MODELSLICING_TENSOR_EPILOGUE_H_
#define MODELSLICING_TENSOR_EPILOGUE_H_

#include <cmath>
#include <cstdint>
#include <cstring>

namespace ms {
namespace ops {

enum class EpiAct : uint8_t { kNone = 0, kRelu, kSigmoid, kTanh };

/// Per-element epilogue applied to C after the beta merge. The index into
/// bias/scale/shift is the C row (per_row) or the C column; vectors must
/// cover the full logical extent of that dimension and must not alias C
/// (the merge loops rely on this to vectorize).
struct Epilogue {
  const float* bias = nullptr;   ///< v += bias[idx]
  const float* scale = nullptr;  ///< v = v * scale[idx] + shift[idx]
  const float* shift = nullptr;  ///< must be set iff scale is set
  bool per_row = false;          ///< index by C row i instead of column j
  EpiAct act = EpiAct::kNone;    ///< applied last

  bool empty() const {
    return bias == nullptr && scale == nullptr && act == EpiAct::kNone;
  }
};

namespace detail {

/// The shared scalar activation forms. Layers that keep an unfused path
/// (training, toggle off) call these same inlines, so fused == unfused
/// holds bitwise by construction.
inline float EpiRelu(float v) {
  // Branchless form of `v > 0.0f ? v : 0.0f` (same value for every input,
  // including NaN -> +0.0 and -0.0 -> +0.0). Post-GEMM activations are
  // zero-centered, so the naive ternary compiles to a ~50%-mispredicted
  // branch per element in scalar loops; the mask select costs a fixed
  // handful of cycles instead and vectorizes cleanly.
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  bits &= -static_cast<uint32_t>(v > 0.0f);
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}
inline float EpiSigmoid(float v) { return 1.0f / (1.0f + std::exp(-v)); }
inline float EpiTanh(float v) { return std::tanh(v); }

inline float EpiActApply(EpiAct act, float v) {
  switch (act) {
    case EpiAct::kRelu:
      return EpiRelu(v);
    case EpiAct::kSigmoid:
      return EpiSigmoid(v);
    case EpiAct::kTanh:
      return EpiTanh(v);
    case EpiAct::kNone:
      break;
  }
  return v;
}

/// One element at logical C position (i, j). NOTE: the scale-shift is a
/// contractible mul+add — only call this from a TU compiled with
/// -ffp-contract=off (gemm.cc, prepack.cc, quant.cc, and the fusion test).
inline float EpiApply(const Epilogue& e, int64_t i, int64_t j, float v) {
  const int64_t idx = e.per_row ? i : j;
  if (e.bias != nullptr) v += e.bias[idx];
  if (e.scale != nullptr) v = v * e.scale[idx] + e.shift[idx];
  return EpiActApply(e.act, v);
}

/// Compile-time-act variant of EpiActApply: identical scalar forms, but
/// the switch is resolved at instantiation so row loops stay branch-free.
template <EpiAct Act>
inline float EpiActApplyCT(float v) {
  if constexpr (Act == EpiAct::kRelu) return EpiRelu(v);
  if constexpr (Act == EpiAct::kSigmoid) return EpiSigmoid(v);
  if constexpr (Act == EpiAct::kTanh) return EpiTanh(v);
  return v;
}

// Row-segment epilogue: the same per-element op sequence as EpiApply
// (bias, scale-shift, act), specialized per configuration so the hot
// loops carry no per-element branches and the add/mul/max cases
// autovectorize at -O2. Per-element order is unchanged, so applying the
// plain merge first and then one of these over the still-hot row is
// bitwise identical to the fully-scalar EpiApply path.

/// Column-indexed (per_row == false): vectors advance with j.
template <bool kBias, bool kScale, EpiAct Act>
inline void EpiRowCols(const Epilogue& e, int64_t j0, int64_t cols,
                       float* v) {
  const float* bias = kBias ? e.bias + j0 : nullptr;
  const float* scale = kScale ? e.scale + j0 : nullptr;
  const float* shift = kScale ? e.shift + j0 : nullptr;
  for (int64_t j = 0; j < cols; ++j) {
    float x = v[j];
    if constexpr (kBias) x += bias[j];
    if constexpr (kScale) x = x * scale[j] + shift[j];
    v[j] = EpiActApplyCT<Act>(x);
  }
}

/// Row-indexed (per_row == true): one broadcast value per C row.
template <bool kBias, bool kScale, EpiAct Act>
inline void EpiRowConst(const Epilogue& e, int64_t i, int64_t cols,
                        float* v) {
  const float bias = kBias ? e.bias[i] : 0.0f;
  const float scale = kScale ? e.scale[i] : 0.0f;
  const float shift = kScale ? e.shift[i] : 0.0f;
  for (int64_t j = 0; j < cols; ++j) {
    float x = v[j];
    if constexpr (kBias) x += bias;
    if constexpr (kScale) x = x * scale + shift;
    v[j] = EpiActApplyCT<Act>(x);
  }
}

template <bool kBias, bool kScale, EpiAct Act>
inline void EpiRowBody(const Epilogue& e, int64_t i, int64_t j0,
                       int64_t cols, float* v) {
  if (e.per_row) {
    EpiRowConst<kBias, kScale, Act>(e, i, cols, v);
  } else {
    EpiRowCols<kBias, kScale, Act>(e, j0, cols, v);
  }
}

template <bool kBias, bool kScale>
inline void EpiRowDispatchAct(const Epilogue& e, int64_t i, int64_t j0,
                              int64_t cols, float* v) {
  switch (e.act) {
    case EpiAct::kRelu:
      EpiRowBody<kBias, kScale, EpiAct::kRelu>(e, i, j0, cols, v);
      break;
    case EpiAct::kSigmoid:
      EpiRowBody<kBias, kScale, EpiAct::kSigmoid>(e, i, j0, cols, v);
      break;
    case EpiAct::kTanh:
      EpiRowBody<kBias, kScale, EpiAct::kTanh>(e, i, j0, cols, v);
      break;
    case EpiAct::kNone:
      EpiRowBody<kBias, kScale, EpiAct::kNone>(e, i, j0, cols, v);
      break;
  }
}

/// Applies the epilogue in place to C row i, columns [j0, j0 + cols).
/// Bitwise equal to EpiApply on each element; one dispatch per row.
/// Same contraction caveat as EpiApply: contract-off TUs only.
inline void EpiApplyRow(const Epilogue& e, int64_t i, int64_t j0,
                        int64_t cols, float* v) {
  const int cfg =
      (e.bias != nullptr ? 1 : 0) | (e.scale != nullptr ? 2 : 0);
  switch (cfg) {
    case 0:
      EpiRowDispatchAct<false, false>(e, i, j0, cols, v);
      break;
    case 1:
      EpiRowDispatchAct<true, false>(e, i, j0, cols, v);
      break;
    case 2:
      EpiRowDispatchAct<false, true>(e, i, j0, cols, v);
      break;
    default:
      EpiRowDispatchAct<true, true>(e, i, j0, cols, v);
      break;
  }
}

}  // namespace detail

/// Process-wide fusion toggle. Defaults to the MS_FUSE_EPILOGUES env var
/// (unset or non-"0" means on). Layers consult it on every inference
/// forward, so flipping it swaps fused <-> unfused paths (bitwise equal).
bool FuseEpiloguesEnabled();
void SetFuseEpilogues(bool enabled);

}  // namespace ops
}  // namespace ms

#endif  // MODELSLICING_TENSOR_EPILOGUE_H_
