// Private interface between the GEMM driver (gemm.cc) and the optional
// AVX2/FMA microkernel translation unit (gemm_avx2.cc, compiled with
// -mavx2 -mfma only when CMake's feature check passes).
#ifndef MODELSLICING_TENSOR_GEMM_INTERNAL_H_
#define MODELSLICING_TENSOR_GEMM_INTERNAL_H_

#include <cstdint>

namespace ms {
namespace ops {
namespace detail {

using GemmRefFn = void (*)(bool trans_a, bool trans_b, int64_t m, int64_t n,
                           int64_t k, float alpha, const float* a,
                           int64_t lda, const float* b, int64_t ldb,
                           float beta, float* c, int64_t ldc);

/// A register-tiled microkernel plus the scalar reference implementing the
/// same floating-point contraction (mul+add for the portable kernel,
/// single-rounding fma for the AVX2 kernel), so Gemm and GemmRef stay
/// bitwise identical within a build flavor.
struct MicroKernelDesc {
  int mr;  ///< rows per register tile
  int nr;  ///< cols per register tile
  /// acc[mr*nr] (row-major, stride nr) = sum over p of apanel * bpanel,
  /// accumulated in increasing p. apanel: k*mr floats, panel-major
  /// (p-th group holds mr row values, alpha pre-applied, zero padded).
  /// bpanel: k*nr floats (p-th group holds nr column values, zero padded).
  void (*kernel)(int64_t k, const float* apanel, const float* bpanel,
                 float* acc);
  GemmRefFn ref;
};

/// The AVX2/FMA kernel, or nullptr when not compiled in (MS_ENABLE_AVX2
/// off / unsupported compiler) or the CPU lacks AVX2+FMA at runtime.
const MicroKernelDesc* Avx2Kernel();

}  // namespace detail
}  // namespace ops
}  // namespace ms

#endif  // MODELSLICING_TENSOR_GEMM_INTERNAL_H_
