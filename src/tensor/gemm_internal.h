// Private interface between the GEMM driver (gemm.cc), the optional
// AVX2/FMA microkernel translation unit (gemm_avx2.cc, compiled with
// -mavx2 -mfma only when CMake's feature check passes), and the prepacked
// operand cache (prepack.cc), which reuses the same panel layout and
// microkernels so prepacked results stay bitwise-equal to Gemm.
#ifndef MODELSLICING_TENSOR_GEMM_INTERNAL_H_
#define MODELSLICING_TENSOR_GEMM_INTERNAL_H_

#include <cstdint>

#include "src/tensor/epilogue.h"

namespace ms {
namespace ops {
namespace detail {

// Fixed block grid. These constants (not the thread count) define the tile
// decomposition, so partitioning is deterministic. Shared by gemm.cc and
// prepack.cc: a prepacked buffer is panel-compatible with the scratch
// buffers Gemm packs per call.
constexpr int64_t kMC = 64;   ///< A rows per packed band
constexpr int64_t kNC = 240;  ///< C cols per grid cell (multiple of 8 & 16)
constexpr int kMaxMr = 8;
constexpr int kMaxNr = 16;
/// Below this many flops (2*m*n*k) packing costs more than it saves; Gemm
/// runs the (bitwise identical) scalar reference instead.
constexpr int64_t kTinyFlops = 1 << 14;
/// Below this many flops the ParallelFor barrier dominates; stay serial.
constexpr int64_t kParallelFlops = 1 << 20;

inline int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

using GemmRefFn = void (*)(bool trans_a, bool trans_b, int64_t m, int64_t n,
                           int64_t k, float alpha, const float* a,
                           int64_t lda, const float* b, int64_t ldb,
                           float beta, float* c, int64_t ldc);

/// A register-tiled microkernel plus the scalar reference implementing the
/// same floating-point contraction (mul+add for the portable kernel,
/// single-rounding fma for the AVX2 kernel), so Gemm and GemmRef stay
/// bitwise identical within a build flavor.
struct MicroKernelDesc {
  int mr;  ///< rows per register tile
  int nr;  ///< cols per register tile
  /// acc[mr*nr] (row-major, stride nr) = sum over p of apanel * bpanel,
  /// accumulated in increasing p. apanel: k*mr floats, panel-major
  /// (p-th group holds mr row values, alpha pre-applied, zero padded).
  /// bpanel: k*nr floats (p-th group holds nr column values, zero padded).
  void (*kernel)(int64_t k, const float* apanel, const float* bpanel,
                 float* acc);
  GemmRefFn ref;
  /// Skinny-M fast path (1 <= m <= skinny_max_m): contracts op(A) rows read
  /// directly from the caller's matrix — no A packing — against one packed
  /// k*nr B panel. acc is m x nr, row-major, stride nr. Per-element
  /// contraction identical to `kernel` (t_p = (alpha*a_p)*b_p in
  /// increasing p), so Gemm / GemmPrepackedB stay bitwise equal.
  void (*skinny)(int64_t k, int m, bool trans_a, const float* a, int64_t lda,
                 float alpha, const float* bpanel, float* acc);
  /// Largest m GemmPrepackedB routes through `skinny` (<= kMaxMr). Above
  /// it the general packed walk wins: the AVX2 skinny kernel holds only 4
  /// rows of accumulators per pass, so m in (4, 8] would re-stream every B
  /// panel, while the portable kernel keeps all 8 rows in one pass.
  int skinny_max_m;
};

/// The AVX2/FMA kernel, or nullptr when not compiled in (MS_ENABLE_AVX2
/// off / unsupported compiler) or the CPU lacks AVX2+FMA at runtime.
const MicroKernelDesc* Avx2Kernel();

/// Int8 skinny microkernel for the quantized prepacked path (quant.cc).
/// Contracts `quads` k-quads of a segment against one packed 16-column
/// panel segment:
///   acc[i*16 + c] = sum_q sum_{t<4} aq[i][4q+t] * bseg[q][4c+t]
/// aq: m rows at stride lda_q bytes, each row holding 4*quads UNSIGNED
/// activation codes in [0, 127] for this segment (lengths are zero-padded
/// to a quad). bseg: quads * 64 s8 weights, quad-major
/// [c0k0, c0k1, c0k2, c0k3, c1k0, ...], 32-byte aligned. acc: m x 16 s32,
/// row-major, 64-byte aligned. The [0, 127] activation bound makes the
/// u8*s8 maddubs pair sums provably saturation-free (2 * 127 * 127 =
/// 32258 < 32767), so all arithmetic is exact integer math and every
/// implementation returns identical bits.
using Int8SkinnyFn = void (*)(int64_t quads, int m, const uint8_t* aq,
                              int64_t lda_q, const int8_t* bseg,
                              int32_t* acc);

/// The AVX2 int8 kernel (u8*s8 maddubs -> s16, madd(ones) -> s32), or
/// nullptr when not compiled in or the CPU lacks AVX2.
Int8SkinnyFn Avx2Int8Kernel();

/// The AVX-512 VNNI int8 kernel (one non-saturating vpdpbusd u8*s8->s32
/// dot-accumulate per ymm — same exact contraction, a third of the
/// inner-loop uops), or nullptr when the compiler predates the target
/// attribute or the CPU lacks avx512vnni+avx512vl.
Int8SkinnyFn VnniInt8Kernel();

/// min/max over n contiguous floats (n >= 1). Value-equal to the scalar
/// seed-then-compare loop; on a +-0.0 tie the representative may differ
/// in sign, which every downstream use (x - lo, range width) absorbs.
using MinMaxF32Fn = void (*)(const float* v, int64_t n, float* lo,
                             float* hi);

/// out[p] = clamp(lrintf((v[p] - lo) * inv), 0, 127) for n contiguous
/// floats — element-exact to ops' scalar QuantizeValueU7 (vcvtps2dq and
/// lrintf share round-to-nearest-even, and the clamp makes the saturating
/// s16/u8 packs lossless).
using EncodeU7Fn = void (*)(const float* v, int64_t n, float lo, float inv,
                            uint8_t* out);

/// Gathers 8 columns of src (k rows, leading dimension ld) into 8
/// contiguous rows: dst[j*dst_stride + p] = src[p*ld + j] for j < 8,
/// p < k. Lets the column-quantizing (conv) path run the contiguous
/// min/max + encode helpers instead of a strided scalar loop.
using Transpose8ColFn = void (*)(const float* src, int64_t ld, int64_t k,
                                 float* dst, int64_t dst_stride);

/// Transpose8ColFn with the per-column min/max scan fused into the gather
/// pass: lo8[j]/hi8[j] receive column j's min/max (value-equal to the
/// seed-then-compare scalar loop up to the MinMaxF32Fn +-0 tie caveat),
/// saving the quantizer a separate sweep over the scratch rows. k >= 1.
using Transpose8ColMMFn = void (*)(const float* src, int64_t ld, int64_t k,
                                   float* dst, int64_t dst_stride,
                                   float* lo8, float* hi8);

/// Dequant epilogue for one (row-chunk, segment) pair of a 16-column
/// panel: ftile[i*16+c] += gs[c] * (as[i]*acc[i*16+c] + amin[i]*gsum[c])
/// for i < mc. Multiplies and adds in the same order as the scalar loop
/// (no fma contraction), so the flavors stay bitwise interchangeable.
using Int8EpilogueFn = void (*)(int mc, const int32_t* acc,
                                const float* gs, const int32_t* gsum,
                                const float* as, const float* amin,
                                float* ftile);

/// AVX2 flavors of the activation-quantization loops above (the portable
/// TU can't vectorize them: fp min/max reductions need fast-math and
/// lrintf stays a scalar call). nullptr when AVX2 is compiled out or
/// unavailable at runtime.
MinMaxF32Fn Avx2MinMaxF32();
EncodeU7Fn Avx2EncodeU7();
Transpose8ColFn Avx2Transpose8Col();
Transpose8ColMMFn Avx2Transpose8ColMinMax();
Int8EpilogueFn Avx2Int8Epilogue();

/// sum and sum-of-squares over n contiguous floats, accumulated in double
/// in a fixed 4-lane-then-fold order (the GroupNorm/BatchNorm statistics
/// reduction). Both flavors use the identical lane decomposition, so the
/// result is deterministic per build flavor and independent of callers.
using SumSqF32Fn = void (*)(const float* v, int64_t n, double* sum,
                            double* sumsq);

/// AVX2 flavor of the statistics reduction (4 packed-double lanes per
/// accumulator), or nullptr when AVX2 is compiled out or unavailable.
SumSqF32Fn Avx2SumSqF32();

/// The kernel Gemm dispatches to in this process (AVX2 when available,
/// else the portable 4x8). Prepacked buffers are laid out for this
/// kernel's mr/nr.
const MicroKernelDesc& ActiveKernel();

/// Packs op(A) rows [i0, i0+rows) into ceil(rows/mr) panels of k*mr
/// (panel-major, alpha pre-applied, padding rows zeroed).
void PackABand(bool trans_a, const float* a, int64_t lda, int64_t i0,
               int64_t rows, int64_t k, float alpha, int mr, float* out);

/// Packs op(B) columns [j0, j0+cols) (cols <= nr) into one k*nr panel
/// (padding columns zeroed).
void PackBPanel(bool trans_b, const float* b, int64_t ldb, int64_t j0,
                int64_t cols, int64_t k, int nr, float* dst);

/// Merges the live (rows x cols) region of a microkernel accumulator tile
/// into C with the shared beta semantics (beta == 0 never reads C).
void MergeTile(const float* acc, int nr, int64_t i0, int64_t rows,
               int64_t j0, int64_t cols, float beta, float* c, int64_t ldc);

/// MergeTile plus the fused epilogue, applied per element to the merged
/// value while the tile is hot. Bitwise identical to MergeTile followed by
/// a post-pass over the same region (see epilogue.h).
void MergeTileEpi(const float* acc, int nr, int64_t i0, int64_t rows,
                  int64_t j0, int64_t cols, float beta, float* c,
                  int64_t ldc, const Epilogue& epi);

}  // namespace detail
}  // namespace ops
}  // namespace ms

#endif  // MODELSLICING_TENSOR_GEMM_INTERNAL_H_
