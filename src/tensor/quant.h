// Per-group symmetric int8 weight quantization with dynamic per-row
// activation quantization — the second elastic axis next to the slice rate.
//
// Scale layout (the part that makes quantization commute with slicing):
// the contraction dimension K of op(B) is partitioned into the layer's
// input slice-group segments, and every (segment, output column) gets its
// own symmetric scale max|w|/127 computed over THAT segment only. A slice
// rate selects whole output columns (an n-prefix) and whole input segments
// (a k-prefix on group boundaries), so the quantized values and scales of
// the sliced operating point are byte-identical to quantizing the sliced
// weights from scratch: one int8 pack serves every trained rate, the same
// share-one-artifact trick prepack.h plays with the fp32 panels.
//
// Panel format: op(B) columns in panels of 16, segment-major inside each
// panel. A segment of k_g rows is padded to ceil(k_g/4) k-QUADS of 64
// bytes, quad-major [c0k0, c0k1, c0k2, c0k3, c1k0, ...] — exactly the
// operand shape the u8·s8 maddubs/madd kernel consumes (see
// detail::Int8SkinnyFn). The portable kernel computes the same exact
// integer contraction, so results are identical bits either way.
//
// Activations are quantized dynamically and ASYMMETRICALLY to 7 bits: one
// affine (min, scale) per op(A) row over the active K prefix, codes in
// [0, 127]. The 7-bit bound is what makes the maddubs pair sums provably
// saturation-free (2 * 127 * 127 = 32258 < 32767); the affine offset is
// exact because a = a_min + a_scale * q folds through the contraction as
// a zero-point correction against the per-(segment, column) sum of
// quantized weights, which QuantizePackB precomputes alongside the
// scales.
//
// Dequant epilogue: the s32 tile of segment g folds back as
// C += b_scale[g][j] * (alpha * a_scale[i] * acc
//                       + alpha * a_min[i] * colsum[g][j]),
// segments accumulated in ascending g (fixed order -> bitwise
// thread-count invariance), then merged with beta in {0, 1}.
//
// Staleness: EnsureQuantized* shares prepack.h's process-wide weight
// generation — SGD::Step, CopyParams, LoadParams and the mutable_weight
// accessors all bump it, so a quantized pack can never serve stale
// weights, and steady-state serving never re-quantizes (QuantStats keeps
// the counters the benches and CI gate on).
#ifndef MODELSLICING_TENSOR_QUANT_H_
#define MODELSLICING_TENSOR_QUANT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/tensor/epilogue.h"

namespace ms {

/// Numeric precision of a layer's inference path. A second elastic axis
/// next to the slice rate: serving picks (rate, precision) jointly.
enum class Precision : uint8_t { kFp32 = 0, kInt8 = 1 };

/// "fp32" / "int8".
const char* PrecisionName(Precision p);

/// Parses "fp32" / "int8" (case-sensitive). Returns false on anything else.
bool ParsePrecision(const std::string& s, Precision* out);

namespace ops {

/// A weight matrix quantized to int8 and packed into segment-aligned
/// 16-column panels. Movable, not copyable; default state is empty (never
/// matches, first Ensure* packs). The source is identified by pointer —
/// a cache key only, never dereferenced outside QuantizePackB/Ensure*.
class QuantizedPack {
 public:
  QuantizedPack() = default;
  QuantizedPack(QuantizedPack&&) = default;
  QuantizedPack& operator=(QuantizedPack&&) = default;
  QuantizedPack(const QuantizedPack&) = delete;
  QuantizedPack& operator=(const QuantizedPack&) = delete;

  bool empty() const { return !valid_; }
  /// Rows of op(B) (the contraction dimension K).
  int64_t rows() const { return rows_; }
  /// Columns of op(B) (N).
  int64_t cols() const { return cols_; }
  /// Weight generation the pack was built at.
  uint64_t generation() const { return generation_; }
  /// Bytes of quantized panel data (pair padding included).
  int64_t packed_bytes() const { return packed_bytes_; }
  /// Number of K segments (slice groups) the pack is aligned to.
  int64_t num_segments() const {
    return static_cast<int64_t>(seg_ends_.size());
  }
  /// Per-(segment, column) scale; for tests.
  float scale(int64_t segment, int64_t col) const;

 private:
  friend void QuantizePackB(bool, int64_t, int64_t, const float*, int64_t,
                            const std::vector<int64_t>&, QuantizedPack*);
  friend bool EnsureQuantizedB(bool, int64_t, int64_t, const float*, int64_t,
                               const std::vector<int64_t>&, QuantizedPack*);
  friend void GemmQuantizedB(bool, int64_t, int64_t, int64_t, float,
                             const float*, int64_t, const QuantizedPack&,
                             float, float*, int64_t);
  friend void GemmQuantizedBEx(bool, int64_t, int64_t, int64_t, float,
                               const float*, int64_t, const QuantizedPack&,
                               float, float*, int64_t, const Epilogue&);
  friend void GemmQuantizedWeightA(int64_t, int64_t, int64_t,
                                   const QuantizedPack&, const float*,
                                   int64_t, float, float*, int64_t);
  friend void GemmQuantizedWeightAEx(int64_t, int64_t, int64_t,
                                     const QuantizedPack&, const float*,
                                     int64_t, float, float*, int64_t,
                                     const Epilogue&);

  /// 64-byte-aligned buffer of at least `bytes` (reuses the existing
  /// allocation when large enough).
  int8_t* Reserve(int64_t bytes);

  std::unique_ptr<int8_t[]> storage_;
  int8_t* data_ = nullptr;
  int64_t capacity_ = 0;      // bytes usable at data_
  int64_t packed_bytes_ = 0;  // bytes written by the last pack
  bool valid_ = false;
  bool trans_ = false;  // transpose flag of the packed source
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  int64_t ld_ = 0;  // source leading dimension
  const float* src_ = nullptr;
  uint64_t generation_ = 0;
  /// Exclusive K end of each segment in source order (back() == rows_).
  std::vector<int64_t> seg_ends_;
  /// Quad offset of each segment within a panel (size S+1; back() is the
  /// panel's total quad count — panel stride is back()*64 bytes).
  std::vector<int64_t> seg_quad_off_;
  /// Scales, (panel, segment, lane)-major: [(pj*S + g)*16 + c]; dead
  /// lanes (columns past N) hold 0.
  std::vector<float> scales_;
  /// Per-(segment, column) sums of the quantized weights, same indexing
  /// as scales_ — the zero-point correction for the asymmetric
  /// activations (dead lanes hold 0).
  std::vector<int32_t> colsums_;
};

/// Quantizes and packs op(B) (full extents k x n, leading dimension ldb).
/// `k_group_ends` are the ascending exclusive ends of the K slice-group
/// segments; the last entry must equal k. GemmQuantized* may later be
/// called at any k equal to one of these ends (a whole-segment prefix)
/// and any n <= the packed n.
void QuantizePackB(bool trans_b, int64_t k, int64_t n, const float* b,
                   int64_t ldb, const std::vector<int64_t>& k_group_ends,
                   QuantizedPack* pack);

/// QuantizePackB only if `pack` is empty, keyed differently, or stale
/// (weight generation advanced). Returns true when it (re)packed.
bool EnsureQuantizedB(bool trans_b, int64_t k, int64_t n, const float* b,
                      int64_t ldb, const std::vector<int64_t>& k_group_ends,
                      QuantizedPack* pack);

/// C = alpha * op(A) * Bq[:k, :n] + beta * C over the quantized pack.
/// op(A) is dynamically quantized per row (one symmetric scale over the
/// active k). k must be one of the pack's segment ends; n any prefix.
/// beta must be 0 or 1 (the only values the layers use). Results are
/// identical at every thread count and kernel flavor (AVX2/portable).
void GemmQuantizedB(bool trans_a, int64_t m, int64_t n, int64_t k,
                    float alpha, const float* a, int64_t lda,
                    const QuantizedPack& bpack, float beta, float* c,
                    int64_t ldc);

/// GemmQuantizedB with a fused epilogue applied at the dequantized-tile
/// merge into C; bitwise identical to GemmQuantizedB followed by the same
/// per-element post-pass (epilogue.h), at any thread count.
void GemmQuantizedBEx(bool trans_a, int64_t m, int64_t n, int64_t k,
                      float alpha, const float* a, int64_t lda,
                      const QuantizedPack& bpack, float beta, float* c,
                      int64_t ldc, const Epilogue& epi);

/// Conv flavor, weight on the left: C(m, n) = W[:m, :k] * b[:k, :n] +
/// beta * C, where `wpack_t` packs op(B) = W^T — i.e. the SAME
/// QuantizePackB(trans_b=true, K, M, w, K, ends) call the dense layers
/// use. Internally computes C^T = op(b)^T * W^T with per-column (per
/// output pixel) dynamic quantization of b and a transposed merge, so one
/// pack format serves both operand roles. beta must be 0 or 1.
void GemmQuantizedWeightA(int64_t m, int64_t n, int64_t k,
                          const QuantizedPack& wpack_t, const float* b,
                          int64_t ldb, float beta, float* c, int64_t ldc);

/// GemmQuantizedWeightA with a fused epilogue (conv bias is the per_row
/// case: one value per output channel / C row). Bitwise identical to the
/// unfused call followed by the same post-pass.
void GemmQuantizedWeightAEx(int64_t m, int64_t n, int64_t k,
                            const QuantizedPack& wpack_t, const float* b,
                            int64_t ldb, float beta, float* c, int64_t ldc,
                            const Epilogue& epi);

/// True when the int8 path runs the AVX2 madd kernel in this process.
bool GemmHasInt8Avx2();

/// True when the int8 path runs the AVX-512 VNNI (vpdpbusd) kernel in
/// this process. Implies GemmHasInt8Avx2(); preferred when both hold.
bool GemmHasInt8Vnni();

// ---------------------------------------------------------------------------
// Observability, mirroring prepack.h's PackStats. Process-wide counters;
// steady-state serving must keep `packs` flat (the CI smoke job and the
// server PackStats gate assert it together with the fp32 pack counter).

struct QuantStats {
  uint64_t packs = 0;            ///< QuantizePackB/Ensure* that packed
  uint64_t packed_bytes = 0;     ///< quantized bytes written by those packs
  uint64_t hits = 0;             ///< Ensure* calls satisfied by the cache
  uint64_t quantized_calls = 0;  ///< GemmQuantized{B,WeightA} invocations
};

QuantStats GetQuantStats();

/// Test hook: total quantized packs performed by this process.
uint64_t TotalQuantPackCount();

/// Sets gauges ms_quant_pack_count / ms_quant_pack_bytes /
/// ms_quant_pack_hits / ms_quant_gemm_calls.
void PublishQuantMetrics();

}  // namespace ops
}  // namespace ms

#endif  // MODELSLICING_TENSOR_QUANT_H_
