// AVX2/FMA 6x16 GEMM microkernel. This translation unit is the only one
// compiled with -mavx2 -mfma; everything here is gated behind a runtime
// __builtin_cpu_supports check so an AVX2-enabled build still runs (on the
// portable kernel) on machines without the instructions.
#include "src/tensor/gemm_internal.h"

#if defined(MS_GEMM_AVX2)

#include <immintrin.h>

#include <cmath>

// The VNNI int8 kernel needs the avx512vnni+avx512vl target attribute and
// _mm256_dpbusd_epi32; both landed in gcc 9 / clang 9. Older compilers
// just skip the flavor (runtime dispatch falls back to maddubs).
#if (defined(__clang__) && __clang_major__ >= 9) || \
    (!defined(__clang__) && defined(__GNUC__) && __GNUC__ >= 9)
#define MS_GEMM_VNNI 1
#endif

namespace ms {
namespace ops {
namespace detail {
namespace {

constexpr int kMr = 6;
constexpr int kNr = 16;

// acc[6][16] = sum_p apanel(p, 0..5) x bpanel(p, 0..15), contracted with
// fma: one rounding per multiply-add, accumulated in increasing p. 12 ymm
// accumulators + 2 B vectors + 1 broadcast stay within the 16 registers.
void MicroKernel6x16(int64_t k, const float* ap, const float* bp,
                     float* acc) {
  __m256 c00 = _mm256_setzero_ps(), c01 = _mm256_setzero_ps();
  __m256 c10 = _mm256_setzero_ps(), c11 = _mm256_setzero_ps();
  __m256 c20 = _mm256_setzero_ps(), c21 = _mm256_setzero_ps();
  __m256 c30 = _mm256_setzero_ps(), c31 = _mm256_setzero_ps();
  __m256 c40 = _mm256_setzero_ps(), c41 = _mm256_setzero_ps();
  __m256 c50 = _mm256_setzero_ps(), c51 = _mm256_setzero_ps();
  for (int64_t p = 0; p < k; ++p) {
    const __m256 b0 = _mm256_load_ps(bp);
    const __m256 b1 = _mm256_load_ps(bp + 8);
    bp += kNr;
    __m256 a;
    a = _mm256_broadcast_ss(ap + 0);
    c00 = _mm256_fmadd_ps(a, b0, c00);
    c01 = _mm256_fmadd_ps(a, b1, c01);
    a = _mm256_broadcast_ss(ap + 1);
    c10 = _mm256_fmadd_ps(a, b0, c10);
    c11 = _mm256_fmadd_ps(a, b1, c11);
    a = _mm256_broadcast_ss(ap + 2);
    c20 = _mm256_fmadd_ps(a, b0, c20);
    c21 = _mm256_fmadd_ps(a, b1, c21);
    a = _mm256_broadcast_ss(ap + 3);
    c30 = _mm256_fmadd_ps(a, b0, c30);
    c31 = _mm256_fmadd_ps(a, b1, c31);
    a = _mm256_broadcast_ss(ap + 4);
    c40 = _mm256_fmadd_ps(a, b0, c40);
    c41 = _mm256_fmadd_ps(a, b1, c41);
    a = _mm256_broadcast_ss(ap + 5);
    c50 = _mm256_fmadd_ps(a, b0, c50);
    c51 = _mm256_fmadd_ps(a, b1, c51);
    ap += kMr;
  }
  _mm256_store_ps(acc + 0 * kNr, c00);
  _mm256_store_ps(acc + 0 * kNr + 8, c01);
  _mm256_store_ps(acc + 1 * kNr, c10);
  _mm256_store_ps(acc + 1 * kNr + 8, c11);
  _mm256_store_ps(acc + 2 * kNr, c20);
  _mm256_store_ps(acc + 2 * kNr + 8, c21);
  _mm256_store_ps(acc + 3 * kNr, c30);
  _mm256_store_ps(acc + 3 * kNr + 8, c31);
  _mm256_store_ps(acc + 4 * kNr, c40);
  _mm256_store_ps(acc + 4 * kNr + 8, c41);
  _mm256_store_ps(acc + 5 * kNr, c50);
  _mm256_store_ps(acc + 5 * kNr + 8, c51);
}

// Skinny-M kernel (m <= kMaxMr = 8): op(A) rows are read strided from the
// caller's matrix (no packing) against one packed k*16 B panel. Rows go in
// chunks of <= 4 (8 ymm accumulators + 2 B vectors + 1 broadcast per
// chunk), which only reorders whole independent output rows — each
// element's contraction is still acc = fma(alpha*a_p, b_p, acc) in
// increasing p, bitwise equal to MicroKernel6x16 / GemmRefFma.
void SkinnyKernel16(int64_t k, int m, bool trans_a, const float* a,
                    int64_t lda, float alpha, const float* bp, float* acc) {
  for (int i0 = 0; i0 < m; i0 += 4) {
    const int live = m - i0 < 4 ? m - i0 : 4;
    __m256 c0[4], c1[4];
    for (int i = 0; i < live; ++i) {
      c0[i] = _mm256_setzero_ps();
      c1[i] = _mm256_setzero_ps();
    }
    for (int64_t p = 0; p < k; ++p) {
      const __m256 b0 = _mm256_load_ps(bp + p * kNr);
      const __m256 b1 = _mm256_load_ps(bp + p * kNr + 8);
      for (int i = 0; i < live; ++i) {
        const float av =
            trans_a ? a[p * lda + i0 + i] : a[(i0 + i) * lda + p];
        const __m256 avv = _mm256_set1_ps(alpha * av);
        c0[i] = _mm256_fmadd_ps(avv, b0, c0[i]);
        c1[i] = _mm256_fmadd_ps(avv, b1, c1[i]);
      }
    }
    for (int i = 0; i < live; ++i) {
      _mm256_store_ps(acc + (i0 + i) * kNr, c0[i]);
      _mm256_store_ps(acc + (i0 + i) * kNr + 8, c1[i]);
    }
  }
}

// Scalar oracle with the fma contraction: acc = fma(alpha*a, b, acc) in
// increasing p, one beta merge. With -mfma std::fmaf lowers to vfmadd, so
// this matches MicroKernel6x16 bitwise.
void GemmRefFma(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
                float alpha, const float* a, int64_t lda, const float* b,
                int64_t ldb, float beta, float* c, int64_t ldc) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) {
        const float av = trans_a ? a[p * lda + i] : a[i * lda + p];
        const float bv = trans_b ? b[j * ldb + p] : b[p * ldb + j];
        acc = std::fmaf(alpha * av, bv, acc);
      }
      float* cij = c + i * ldc + j;
      *cij = (beta == 0.0f) ? acc
                            : (beta == 1.0f ? *cij + acc
                                            : beta * *cij + acc);
    }
  }
}

// Int8 skinny kernel: 16 panel columns per pass, rows in chunks of <= 4
// (8 ymm s32 accumulators + 2 B vectors + 1 ones vector per chunk). Each
// 64-byte quad-group holds 16 columns x 4 k as s8; one vpbroadcastd
// splats a row's 4 unsigned activation codes into every 32-bit lane, and
// maddubs(u8 a, s8 b) then yields the two k-pair partial sums per column
// in s16. Activations are bounded to [0, 127] by construction (quant.cc
// quantizes rows asymmetrically to 7 bits), so the pair sum is at most
// 2 * 127 * 127 = 32258 < 32767 — maddubs's s16 saturation provably never
// fires. madd against ones widens the two pairs to one s32 per column
// (<= 64516, no overflow). Integer math is exact, so this matches the
// portable loop in quant.cc bit for bit.
// Broadcasts row i's 4 unsigned activation codes for quad p into every
// 32-bit lane.
inline __m256i BroadcastQuad(const uint8_t* aq, int64_t lda_q, int64_t p,
                             int i) {
  int32_t quad;
  __builtin_memcpy(&quad, aq + i * lda_q + 4 * p, sizeof(quad));
  return _mm256_set1_epi32(quad);
}

// One chunk of LIVE rows. The accumulators are NAMED variables behind
// compile-time `LIVE > i` guards, not a __m256i array indexed by a row
// loop: gcc re-rolls the latter and keeps the accumulators on the stack
// (a load + store around every multiply-add), which costs ~3x on the
// quad loop. Named registers pin all 2*LIVE accumulators in ymm.
template <int LIVE>
void Int8Chunk16(int64_t quads, const uint8_t* aq, int64_t lda_q,
                 const int8_t* bseg, int32_t* acc) {
  const __m256i ones = _mm256_set1_epi16(1);
  const __m256i z = _mm256_setzero_si256();
  __m256i c00 = z, c01 = z, c10 = z, c11 = z;
  __m256i c20 = z, c21 = z, c30 = z, c31 = z;
  for (int64_t p = 0; p < quads; ++p) {
    // Columns 0-7 then 8-15 of this quad-group.
    const __m256i b0 = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(bseg + p * 64));
    const __m256i b1 = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(bseg + p * 64 + 32));
    __m256i av = BroadcastQuad(aq, lda_q, p, 0);
    c00 = _mm256_add_epi32(
        c00, _mm256_madd_epi16(_mm256_maddubs_epi16(av, b0), ones));
    c01 = _mm256_add_epi32(
        c01, _mm256_madd_epi16(_mm256_maddubs_epi16(av, b1), ones));
    if (LIVE > 1) {
      av = BroadcastQuad(aq, lda_q, p, 1);
      c10 = _mm256_add_epi32(
          c10, _mm256_madd_epi16(_mm256_maddubs_epi16(av, b0), ones));
      c11 = _mm256_add_epi32(
          c11, _mm256_madd_epi16(_mm256_maddubs_epi16(av, b1), ones));
    }
    if (LIVE > 2) {
      av = BroadcastQuad(aq, lda_q, p, 2);
      c20 = _mm256_add_epi32(
          c20, _mm256_madd_epi16(_mm256_maddubs_epi16(av, b0), ones));
      c21 = _mm256_add_epi32(
          c21, _mm256_madd_epi16(_mm256_maddubs_epi16(av, b1), ones));
    }
    if (LIVE > 3) {
      av = BroadcastQuad(aq, lda_q, p, 3);
      c30 = _mm256_add_epi32(
          c30, _mm256_madd_epi16(_mm256_maddubs_epi16(av, b0), ones));
      c31 = _mm256_add_epi32(
          c31, _mm256_madd_epi16(_mm256_maddubs_epi16(av, b1), ones));
    }
  }
  _mm256_store_si256(reinterpret_cast<__m256i*>(acc), c00);
  _mm256_store_si256(reinterpret_cast<__m256i*>(acc + 8), c01);
  if (LIVE > 1) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(acc + 16), c10);
    _mm256_store_si256(reinterpret_cast<__m256i*>(acc + 24), c11);
  }
  if (LIVE > 2) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(acc + 32), c20);
    _mm256_store_si256(reinterpret_cast<__m256i*>(acc + 40), c21);
  }
  if (LIVE > 3) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(acc + 48), c30);
    _mm256_store_si256(reinterpret_cast<__m256i*>(acc + 56), c31);
  }
}

void Int8Skinny16(int64_t quads, int m, const uint8_t* aq, int64_t lda_q,
                  const int8_t* bseg, int32_t* acc) {
  for (int i0 = 0; i0 < m; i0 += 4) {
    const uint8_t* a0 = aq + i0 * lda_q;
    int32_t* acc0 = acc + i0 * 16;
    switch (m - i0 < 4 ? m - i0 : 4) {
      case 1: Int8Chunk16<1>(quads, a0, lda_q, bseg, acc0); break;
      case 2: Int8Chunk16<2>(quads, a0, lda_q, bseg, acc0); break;
      case 3: Int8Chunk16<3>(quads, a0, lda_q, bseg, acc0); break;
      default: Int8Chunk16<4>(quads, a0, lda_q, bseg, acc0); break;
    }
  }
}

// VNNI flavor: vpdpbusd fuses the whole maddubs -> madd(ones) -> add
// chain into ONE u8*s8 dot-accumulate per ymm — the quad products are
// summed into s32 with NO intermediate s16 saturation (that is the
// saturating vpdpbusds variant, which this kernel never uses), so the
// result is the exact integer contraction again, bit-identical to both
// kernels above. Same quad-major operands, one third the inner-loop uops.
#if defined(MS_GEMM_VNNI)
// AVX-512VL gives this flavor 32 ymm registers, so the chunk holds up to
// EIGHT rows (16 named accumulators + 2 B vectors + 1 broadcast = 19
// registers) — the maddubs chunk above is capped at 4 rows by AVX2's 16.
// Double the rows per pass means each B panel segment is streamed half as
// often at serving batch sizes.
template <int LIVE>
__attribute__((target("avx512vnni,avx512vl")))
void Int8ChunkVnni16(int64_t quads, const uint8_t* aq, int64_t lda_q,
                     const int8_t* bseg, int32_t* acc) {
  const __m256i z = _mm256_setzero_si256();
  __m256i c00 = z, c01 = z, c10 = z, c11 = z;
  __m256i c20 = z, c21 = z, c30 = z, c31 = z;
  __m256i c40 = z, c41 = z, c50 = z, c51 = z;
  __m256i c60 = z, c61 = z, c70 = z, c71 = z;
  for (int64_t p = 0; p < quads; ++p) {
    const __m256i b0 = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(bseg + p * 64));
    const __m256i b1 = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(bseg + p * 64 + 32));
    __m256i av = BroadcastQuad(aq, lda_q, p, 0);
    c00 = _mm256_dpbusd_epi32(c00, av, b0);
    c01 = _mm256_dpbusd_epi32(c01, av, b1);
    if (LIVE > 1) {
      av = BroadcastQuad(aq, lda_q, p, 1);
      c10 = _mm256_dpbusd_epi32(c10, av, b0);
      c11 = _mm256_dpbusd_epi32(c11, av, b1);
    }
    if (LIVE > 2) {
      av = BroadcastQuad(aq, lda_q, p, 2);
      c20 = _mm256_dpbusd_epi32(c20, av, b0);
      c21 = _mm256_dpbusd_epi32(c21, av, b1);
    }
    if (LIVE > 3) {
      av = BroadcastQuad(aq, lda_q, p, 3);
      c30 = _mm256_dpbusd_epi32(c30, av, b0);
      c31 = _mm256_dpbusd_epi32(c31, av, b1);
    }
    if (LIVE > 4) {
      av = BroadcastQuad(aq, lda_q, p, 4);
      c40 = _mm256_dpbusd_epi32(c40, av, b0);
      c41 = _mm256_dpbusd_epi32(c41, av, b1);
    }
    if (LIVE > 5) {
      av = BroadcastQuad(aq, lda_q, p, 5);
      c50 = _mm256_dpbusd_epi32(c50, av, b0);
      c51 = _mm256_dpbusd_epi32(c51, av, b1);
    }
    if (LIVE > 6) {
      av = BroadcastQuad(aq, lda_q, p, 6);
      c60 = _mm256_dpbusd_epi32(c60, av, b0);
      c61 = _mm256_dpbusd_epi32(c61, av, b1);
    }
    if (LIVE > 7) {
      av = BroadcastQuad(aq, lda_q, p, 7);
      c70 = _mm256_dpbusd_epi32(c70, av, b0);
      c71 = _mm256_dpbusd_epi32(c71, av, b1);
    }
  }
  const __m256i cs[16] = {c00, c01, c10, c11, c20, c21, c30, c31,
                          c40, c41, c50, c51, c60, c61, c70, c71};
  for (int i = 0; i < LIVE; ++i) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(acc + i * 16),
                       cs[2 * i]);
    _mm256_store_si256(reinterpret_cast<__m256i*>(acc + i * 16 + 8),
                       cs[2 * i + 1]);
  }
}

__attribute__((target("avx512vnni,avx512vl")))
void Int8SkinnyVnni16(int64_t quads, int m, const uint8_t* aq,
                      int64_t lda_q, const int8_t* bseg, int32_t* acc) {
  for (int i0 = 0; i0 < m; i0 += 8) {
    const uint8_t* a0 = aq + i0 * lda_q;
    int32_t* acc0 = acc + i0 * 16;
    switch (m - i0 < 8 ? m - i0 : 8) {
      case 1: Int8ChunkVnni16<1>(quads, a0, lda_q, bseg, acc0); break;
      case 2: Int8ChunkVnni16<2>(quads, a0, lda_q, bseg, acc0); break;
      case 3: Int8ChunkVnni16<3>(quads, a0, lda_q, bseg, acc0); break;
      case 4: Int8ChunkVnni16<4>(quads, a0, lda_q, bseg, acc0); break;
      case 5: Int8ChunkVnni16<5>(quads, a0, lda_q, bseg, acc0); break;
      case 6: Int8ChunkVnni16<6>(quads, a0, lda_q, bseg, acc0); break;
      case 7: Int8ChunkVnni16<7>(quads, a0, lda_q, bseg, acc0); break;
      default: Int8ChunkVnni16<8>(quads, a0, lda_q, bseg, acc0); break;
    }
  }
}
#endif  // MS_GEMM_VNNI

// 8-wide min/max reduction. Seeds from the first vector (or element) like
// the scalar loop; the overlapping tail load revisits elements, which is
// harmless for min/max.
void MinMaxF32Avx2(const float* v, int64_t n, float* plo, float* phi) {
  if (n >= 8) {
    __m256 lo8 = _mm256_loadu_ps(v);
    __m256 hi8 = lo8;
    int64_t p = 8;
    for (; p + 8 <= n; p += 8) {
      const __m256 x = _mm256_loadu_ps(v + p);
      lo8 = _mm256_min_ps(lo8, x);
      hi8 = _mm256_max_ps(hi8, x);
    }
    if (p < n) {
      const __m256 x = _mm256_loadu_ps(v + n - 8);
      lo8 = _mm256_min_ps(lo8, x);
      hi8 = _mm256_max_ps(hi8, x);
    }
    __m128 lo4 = _mm_min_ps(_mm256_castps256_ps128(lo8),
                            _mm256_extractf128_ps(lo8, 1));
    __m128 hi4 = _mm_max_ps(_mm256_castps256_ps128(hi8),
                            _mm256_extractf128_ps(hi8, 1));
    lo4 = _mm_min_ps(lo4, _mm_movehl_ps(lo4, lo4));
    hi4 = _mm_max_ps(hi4, _mm_movehl_ps(hi4, hi4));
    lo4 = _mm_min_ss(lo4, _mm_shuffle_ps(lo4, lo4, 1));
    hi4 = _mm_max_ss(hi4, _mm_shuffle_ps(hi4, hi4, 1));
    *plo = _mm_cvtss_f32(lo4);
    *phi = _mm_cvtss_f32(hi4);
    return;
  }
  float lo = v[0], hi = v[0];
  for (int64_t p = 1; p < n; ++p) {
    lo = v[p] < lo ? v[p] : lo;
    hi = v[p] > hi ? v[p] : hi;
  }
  *plo = lo;
  *phi = hi;
}

// Clamps q to [0, 127] then packs 4x8 s32 down to 32 u8. The saturating
// packs (s32->s16, s16->u8) are lossless after the clamp; the final
// permute undoes their per-128-lane interleave.
void EncodeU7Avx2(const float* v, int64_t n, float lo, float inv,
                  uint8_t* out) {
  const __m256 vlo = _mm256_set1_ps(lo);
  const __m256 vinv = _mm256_set1_ps(inv);
  const __m256i zero = _mm256_setzero_si256();
  const __m256i v127 = _mm256_set1_epi32(127);
  const __m256i perm = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
  const auto enc8 = [&](const float* p) {
    const __m256 x =
        _mm256_mul_ps(_mm256_sub_ps(_mm256_loadu_ps(p), vlo), vinv);
    const __m256i q = _mm256_cvtps_epi32(x);
    return _mm256_min_epi32(_mm256_max_epi32(q, zero), v127);
  };
  int64_t p = 0;
  for (; p + 32 <= n; p += 32) {
    const __m256i q0 = enc8(v + p);
    const __m256i q1 = enc8(v + p + 8);
    const __m256i q2 = enc8(v + p + 16);
    const __m256i q3 = enc8(v + p + 24);
    const __m256i w0 = _mm256_packs_epi32(q0, q1);
    const __m256i w1 = _mm256_packs_epi32(q2, q3);
    const __m256i b = _mm256_packus_epi16(w0, w1);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + p),
                        _mm256_permutevar8x32_epi32(b, perm));
  }
  for (; p + 8 <= n; p += 8) {
    const __m256i q = enc8(v + p);
    const __m128i w = _mm_packs_epi32(_mm256_castsi256_si128(q),
                                      _mm256_extracti128_si256(q, 1));
    _mm_storel_epi64(reinterpret_cast<__m128i*>(out + p),
                     _mm_packus_epi16(w, w));
  }
  for (; p < n; ++p) {
    long q = std::lrintf((v[p] - lo) * inv);
    q = q < 0 ? 0 : (q > 127 ? 127 : q);
    out[p] = static_cast<uint8_t>(q);
  }
}

// 8 columns -> 8 contiguous rows via in-register 8x8 transposes; the
// k % 8 tail rows go element-wise. When kMinMax is set, a per-column
// min/max scan rides the same loads (lane j of the running accumulators
// tracks column j), letting the quantizer skip its separate sweep over
// the scratch rows; lo8/hi8 then receive 8 results each and k must be
// >= 1. Seeded from row 0 and folded with vminps/vmaxps — value-equal to
// the scalar seed-then-compare loop up to the +-0 tie caveat on
// MinMaxF32Fn.
template <bool kMinMax>
void Transpose8ColImpl(const float* src, int64_t ld, int64_t k, float* dst,
                       int64_t dst_stride, float* lo8, float* hi8) {
  __m256 vlo = _mm256_setzero_ps();
  __m256 vhi = _mm256_setzero_ps();
  if (kMinMax) {
    vlo = _mm256_loadu_ps(src);
    vhi = vlo;
  }
  int64_t p = 0;
  for (; p + 8 <= k; p += 8) {
    __m256 r0 = _mm256_loadu_ps(src + (p + 0) * ld);
    __m256 r1 = _mm256_loadu_ps(src + (p + 1) * ld);
    __m256 r2 = _mm256_loadu_ps(src + (p + 2) * ld);
    __m256 r3 = _mm256_loadu_ps(src + (p + 3) * ld);
    __m256 r4 = _mm256_loadu_ps(src + (p + 4) * ld);
    __m256 r5 = _mm256_loadu_ps(src + (p + 5) * ld);
    __m256 r6 = _mm256_loadu_ps(src + (p + 6) * ld);
    __m256 r7 = _mm256_loadu_ps(src + (p + 7) * ld);
    if (kMinMax) {
      vlo = _mm256_min_ps(vlo, r0);
      vhi = _mm256_max_ps(vhi, r0);
      vlo = _mm256_min_ps(vlo, r1);
      vhi = _mm256_max_ps(vhi, r1);
      vlo = _mm256_min_ps(vlo, r2);
      vhi = _mm256_max_ps(vhi, r2);
      vlo = _mm256_min_ps(vlo, r3);
      vhi = _mm256_max_ps(vhi, r3);
      vlo = _mm256_min_ps(vlo, r4);
      vhi = _mm256_max_ps(vhi, r4);
      vlo = _mm256_min_ps(vlo, r5);
      vhi = _mm256_max_ps(vhi, r5);
      vlo = _mm256_min_ps(vlo, r6);
      vhi = _mm256_max_ps(vhi, r6);
      vlo = _mm256_min_ps(vlo, r7);
      vhi = _mm256_max_ps(vhi, r7);
    }
    __m256 t0 = _mm256_unpacklo_ps(r0, r1);
    __m256 t1 = _mm256_unpackhi_ps(r0, r1);
    __m256 t2 = _mm256_unpacklo_ps(r2, r3);
    __m256 t3 = _mm256_unpackhi_ps(r2, r3);
    __m256 t4 = _mm256_unpacklo_ps(r4, r5);
    __m256 t5 = _mm256_unpackhi_ps(r4, r5);
    __m256 t6 = _mm256_unpacklo_ps(r6, r7);
    __m256 t7 = _mm256_unpackhi_ps(r6, r7);
    __m256 s0 = _mm256_shuffle_ps(t0, t2, 0x44);
    __m256 s1 = _mm256_shuffle_ps(t0, t2, 0xEE);
    __m256 s2 = _mm256_shuffle_ps(t1, t3, 0x44);
    __m256 s3 = _mm256_shuffle_ps(t1, t3, 0xEE);
    __m256 s4 = _mm256_shuffle_ps(t4, t6, 0x44);
    __m256 s5 = _mm256_shuffle_ps(t4, t6, 0xEE);
    __m256 s6 = _mm256_shuffle_ps(t5, t7, 0x44);
    __m256 s7 = _mm256_shuffle_ps(t5, t7, 0xEE);
    _mm256_storeu_ps(dst + 0 * dst_stride + p,
                     _mm256_permute2f128_ps(s0, s4, 0x20));
    _mm256_storeu_ps(dst + 1 * dst_stride + p,
                     _mm256_permute2f128_ps(s1, s5, 0x20));
    _mm256_storeu_ps(dst + 2 * dst_stride + p,
                     _mm256_permute2f128_ps(s2, s6, 0x20));
    _mm256_storeu_ps(dst + 3 * dst_stride + p,
                     _mm256_permute2f128_ps(s3, s7, 0x20));
    _mm256_storeu_ps(dst + 4 * dst_stride + p,
                     _mm256_permute2f128_ps(s0, s4, 0x31));
    _mm256_storeu_ps(dst + 5 * dst_stride + p,
                     _mm256_permute2f128_ps(s1, s5, 0x31));
    _mm256_storeu_ps(dst + 6 * dst_stride + p,
                     _mm256_permute2f128_ps(s2, s6, 0x31));
    _mm256_storeu_ps(dst + 7 * dst_stride + p,
                     _mm256_permute2f128_ps(s3, s7, 0x31));
  }
  for (; p < k; ++p) {
    if (kMinMax) {
      const __m256 v = _mm256_loadu_ps(src + p * ld);
      vlo = _mm256_min_ps(vlo, v);
      vhi = _mm256_max_ps(vhi, v);
    }
    for (int j = 0; j < 8; ++j) dst[j * dst_stride + p] = src[p * ld + j];
  }
  if (kMinMax) {
    _mm256_storeu_ps(lo8, vlo);
    _mm256_storeu_ps(hi8, vhi);
  }
}

void Transpose8ColAvx2(const float* src, int64_t ld, int64_t k, float* dst,
                       int64_t dst_stride) {
  Transpose8ColImpl<false>(src, ld, k, dst, dst_stride, nullptr, nullptr);
}

void Transpose8ColMinMaxAvx2(const float* src, int64_t ld, int64_t k,
                             float* dst, int64_t dst_stride, float* lo8,
                             float* hi8) {
  Transpose8ColImpl<true>(src, ld, k, dst, dst_stride, lo8, hi8);
}

/// Norm-statistics reduction: sum and sum-of-squares accumulated as 4
// packed doubles (lane j holds elements p ≡ j mod 4), folded pairwise at
// the end, scalar tail last. float->double widening is exact, so only the
// documented lane decomposition (not rounding of inputs) distinguishes
// this from a serial scalar loop.
void SumSqF32Avx2(const float* v, int64_t n, double* sum, double* sumsq) {
  __m256d s = _mm256_setzero_pd();
  __m256d q = _mm256_setzero_pd();
  int64_t p = 0;
  for (; p + 4 <= n; p += 4) {
    const __m256d x = _mm256_cvtps_pd(_mm_loadu_ps(v + p));
    s = _mm256_add_pd(s, x);
    q = _mm256_add_pd(q, _mm256_mul_pd(x, x));
  }
  alignas(32) double ls[4], lq[4];
  _mm256_store_pd(ls, s);
  _mm256_store_pd(lq, q);
  double ts = (ls[0] + ls[1]) + (ls[2] + ls[3]);
  double tq = (lq[0] + lq[1]) + (lq[2] + lq[3]);
  for (; p < n; ++p) {
    const double x = static_cast<double>(v[p]);
    ts += x;
    tq += x * x;
  }
  *sum = ts;
  *sumsq = tq;
}

// Mirrors the scalar dequant epilogue op-for-op: mul, mul, add, mul, add
// per element — deliberately no fma, so this flavor and the portable loop
// return identical bits.
void Int8EpilogueAvx2(int mc, const int32_t* acc, const float* gs,
                      const int32_t* gsum, const float* as,
                      const float* amin, float* ftile) {
  const __m256 gs0 = _mm256_loadu_ps(gs);
  const __m256 gs1 = _mm256_loadu_ps(gs + 8);
  const __m256 gf0 = _mm256_cvtepi32_ps(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(gsum)));
  const __m256 gf1 = _mm256_cvtepi32_ps(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(gsum + 8)));
  for (int i = 0; i < mc; ++i) {
    const __m256 asv = _mm256_set1_ps(as[i]);
    const __m256 amv = _mm256_set1_ps(amin[i]);
    const __m256 a0 = _mm256_cvtepi32_ps(_mm256_load_si256(
        reinterpret_cast<const __m256i*>(acc + i * 16)));
    const __m256 a1 = _mm256_cvtepi32_ps(_mm256_load_si256(
        reinterpret_cast<const __m256i*>(acc + i * 16 + 8)));
    const __m256 t0 = _mm256_add_ps(_mm256_mul_ps(asv, a0),
                                    _mm256_mul_ps(amv, gf0));
    const __m256 t1 = _mm256_add_ps(_mm256_mul_ps(asv, a1),
                                    _mm256_mul_ps(amv, gf1));
    float* f = ftile + i * 16;
    _mm256_storeu_ps(f, _mm256_add_ps(_mm256_loadu_ps(f),
                                      _mm256_mul_ps(gs0, t0)));
    _mm256_storeu_ps(f + 8, _mm256_add_ps(_mm256_loadu_ps(f + 8),
                                          _mm256_mul_ps(gs1, t1)));
  }
}

}  // namespace

const MicroKernelDesc* Avx2Kernel() {
  static const bool supported =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  static const MicroKernelDesc desc{kMr, kNr, &MicroKernel6x16,
                                    &GemmRefFma, &SkinnyKernel16, 4};
  return supported ? &desc : nullptr;
}

Int8SkinnyFn Avx2Int8Kernel() {
  // maddubs/madd need AVX2 only (no FMA), so int8 inference can still be
  // vectorized on machines where the fp32 path fell back to portable.
  static const bool supported = __builtin_cpu_supports("avx2");
  return supported ? &Int8Skinny16 : nullptr;
}

Int8SkinnyFn VnniInt8Kernel() {
#if defined(MS_GEMM_VNNI)
  // The ymm (VL) form of vpdpbusd needs both the VNNI and VL halves of
  // AVX-512 at runtime.
  static const bool supported = __builtin_cpu_supports("avx512vnni") &&
                                __builtin_cpu_supports("avx512vl");
  return supported ? &Int8SkinnyVnni16 : nullptr;
#else
  return nullptr;
#endif
}

MinMaxF32Fn Avx2MinMaxF32() {
  static const bool supported = __builtin_cpu_supports("avx2");
  return supported ? &MinMaxF32Avx2 : nullptr;
}

EncodeU7Fn Avx2EncodeU7() {
  static const bool supported = __builtin_cpu_supports("avx2");
  return supported ? &EncodeU7Avx2 : nullptr;
}

Transpose8ColFn Avx2Transpose8Col() {
  static const bool supported = __builtin_cpu_supports("avx2");
  return supported ? &Transpose8ColAvx2 : nullptr;
}

Transpose8ColMMFn Avx2Transpose8ColMinMax() {
  static const bool supported = __builtin_cpu_supports("avx2");
  return supported ? &Transpose8ColMinMaxAvx2 : nullptr;
}

Int8EpilogueFn Avx2Int8Epilogue() {
  static const bool supported = __builtin_cpu_supports("avx2");
  return supported ? &Int8EpilogueAvx2 : nullptr;
}

SumSqF32Fn Avx2SumSqF32() {
  static const bool supported = __builtin_cpu_supports("avx2");
  return supported ? &SumSqF32Avx2 : nullptr;
}

}  // namespace detail
}  // namespace ops
}  // namespace ms

#else  // !MS_GEMM_AVX2

namespace ms {
namespace ops {
namespace detail {

const MicroKernelDesc* Avx2Kernel() { return nullptr; }

Int8SkinnyFn Avx2Int8Kernel() { return nullptr; }

Int8SkinnyFn VnniInt8Kernel() { return nullptr; }

MinMaxF32Fn Avx2MinMaxF32() { return nullptr; }

EncodeU7Fn Avx2EncodeU7() { return nullptr; }

Transpose8ColFn Avx2Transpose8Col() { return nullptr; }

Transpose8ColMMFn Avx2Transpose8ColMinMax() { return nullptr; }

Int8EpilogueFn Avx2Int8Epilogue() { return nullptr; }

SumSqF32Fn Avx2SumSqF32() { return nullptr; }

}  // namespace detail
}  // namespace ops
}  // namespace ms

#endif  // MS_GEMM_AVX2
