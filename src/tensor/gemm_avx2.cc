// AVX2/FMA 6x16 GEMM microkernel. This translation unit is the only one
// compiled with -mavx2 -mfma; everything here is gated behind a runtime
// __builtin_cpu_supports check so an AVX2-enabled build still runs (on the
// portable kernel) on machines without the instructions.
#include "src/tensor/gemm_internal.h"

#if defined(MS_GEMM_AVX2)

#include <immintrin.h>

#include <cmath>

namespace ms {
namespace ops {
namespace detail {
namespace {

constexpr int kMr = 6;
constexpr int kNr = 16;

// acc[6][16] = sum_p apanel(p, 0..5) x bpanel(p, 0..15), contracted with
// fma: one rounding per multiply-add, accumulated in increasing p. 12 ymm
// accumulators + 2 B vectors + 1 broadcast stay within the 16 registers.
void MicroKernel6x16(int64_t k, const float* ap, const float* bp,
                     float* acc) {
  __m256 c00 = _mm256_setzero_ps(), c01 = _mm256_setzero_ps();
  __m256 c10 = _mm256_setzero_ps(), c11 = _mm256_setzero_ps();
  __m256 c20 = _mm256_setzero_ps(), c21 = _mm256_setzero_ps();
  __m256 c30 = _mm256_setzero_ps(), c31 = _mm256_setzero_ps();
  __m256 c40 = _mm256_setzero_ps(), c41 = _mm256_setzero_ps();
  __m256 c50 = _mm256_setzero_ps(), c51 = _mm256_setzero_ps();
  for (int64_t p = 0; p < k; ++p) {
    const __m256 b0 = _mm256_load_ps(bp);
    const __m256 b1 = _mm256_load_ps(bp + 8);
    bp += kNr;
    __m256 a;
    a = _mm256_broadcast_ss(ap + 0);
    c00 = _mm256_fmadd_ps(a, b0, c00);
    c01 = _mm256_fmadd_ps(a, b1, c01);
    a = _mm256_broadcast_ss(ap + 1);
    c10 = _mm256_fmadd_ps(a, b0, c10);
    c11 = _mm256_fmadd_ps(a, b1, c11);
    a = _mm256_broadcast_ss(ap + 2);
    c20 = _mm256_fmadd_ps(a, b0, c20);
    c21 = _mm256_fmadd_ps(a, b1, c21);
    a = _mm256_broadcast_ss(ap + 3);
    c30 = _mm256_fmadd_ps(a, b0, c30);
    c31 = _mm256_fmadd_ps(a, b1, c31);
    a = _mm256_broadcast_ss(ap + 4);
    c40 = _mm256_fmadd_ps(a, b0, c40);
    c41 = _mm256_fmadd_ps(a, b1, c41);
    a = _mm256_broadcast_ss(ap + 5);
    c50 = _mm256_fmadd_ps(a, b0, c50);
    c51 = _mm256_fmadd_ps(a, b1, c51);
    ap += kMr;
  }
  _mm256_store_ps(acc + 0 * kNr, c00);
  _mm256_store_ps(acc + 0 * kNr + 8, c01);
  _mm256_store_ps(acc + 1 * kNr, c10);
  _mm256_store_ps(acc + 1 * kNr + 8, c11);
  _mm256_store_ps(acc + 2 * kNr, c20);
  _mm256_store_ps(acc + 2 * kNr + 8, c21);
  _mm256_store_ps(acc + 3 * kNr, c30);
  _mm256_store_ps(acc + 3 * kNr + 8, c31);
  _mm256_store_ps(acc + 4 * kNr, c40);
  _mm256_store_ps(acc + 4 * kNr + 8, c41);
  _mm256_store_ps(acc + 5 * kNr, c50);
  _mm256_store_ps(acc + 5 * kNr + 8, c51);
}

// Skinny-M kernel (m <= kMaxMr = 8): op(A) rows are read strided from the
// caller's matrix (no packing) against one packed k*16 B panel. Rows go in
// chunks of <= 4 (8 ymm accumulators + 2 B vectors + 1 broadcast per
// chunk), which only reorders whole independent output rows — each
// element's contraction is still acc = fma(alpha*a_p, b_p, acc) in
// increasing p, bitwise equal to MicroKernel6x16 / GemmRefFma.
void SkinnyKernel16(int64_t k, int m, bool trans_a, const float* a,
                    int64_t lda, float alpha, const float* bp, float* acc) {
  for (int i0 = 0; i0 < m; i0 += 4) {
    const int live = m - i0 < 4 ? m - i0 : 4;
    __m256 c0[4], c1[4];
    for (int i = 0; i < live; ++i) {
      c0[i] = _mm256_setzero_ps();
      c1[i] = _mm256_setzero_ps();
    }
    for (int64_t p = 0; p < k; ++p) {
      const __m256 b0 = _mm256_load_ps(bp + p * kNr);
      const __m256 b1 = _mm256_load_ps(bp + p * kNr + 8);
      for (int i = 0; i < live; ++i) {
        const float av =
            trans_a ? a[p * lda + i0 + i] : a[(i0 + i) * lda + p];
        const __m256 avv = _mm256_set1_ps(alpha * av);
        c0[i] = _mm256_fmadd_ps(avv, b0, c0[i]);
        c1[i] = _mm256_fmadd_ps(avv, b1, c1[i]);
      }
    }
    for (int i = 0; i < live; ++i) {
      _mm256_store_ps(acc + (i0 + i) * kNr, c0[i]);
      _mm256_store_ps(acc + (i0 + i) * kNr + 8, c1[i]);
    }
  }
}

// Scalar oracle with the fma contraction: acc = fma(alpha*a, b, acc) in
// increasing p, one beta merge. With -mfma std::fmaf lowers to vfmadd, so
// this matches MicroKernel6x16 bitwise.
void GemmRefFma(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
                float alpha, const float* a, int64_t lda, const float* b,
                int64_t ldb, float beta, float* c, int64_t ldc) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) {
        const float av = trans_a ? a[p * lda + i] : a[i * lda + p];
        const float bv = trans_b ? b[j * ldb + p] : b[p * ldb + j];
        acc = std::fmaf(alpha * av, bv, acc);
      }
      float* cij = c + i * ldc + j;
      *cij = (beta == 0.0f) ? acc
                            : (beta == 1.0f ? *cij + acc
                                            : beta * *cij + acc);
    }
  }
}

}  // namespace

const MicroKernelDesc* Avx2Kernel() {
  static const bool supported =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  static const MicroKernelDesc desc{kMr, kNr, &MicroKernel6x16,
                                    &GemmRefFma, &SkinnyKernel16, 4};
  return supported ? &desc : nullptr;
}

}  // namespace detail
}  // namespace ops
}  // namespace ms

#else  // !MS_GEMM_AVX2

namespace ms {
namespace ops {
namespace detail {

const MicroKernelDesc* Avx2Kernel() { return nullptr; }

}  // namespace detail
}  // namespace ops
}  // namespace ms

#endif  // MS_GEMM_AVX2
