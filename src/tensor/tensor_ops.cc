#include "src/tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

namespace ms {
namespace ops {
namespace {

// Register-blocked inner kernel for the non-transposed case: row-major
// C(M,N) += A(M,K) * B(K,N). Processes 4 rows of A at a time, streaming B.
void GemmNN(int64_t m, int64_t n, int64_t k, float alpha, const float* a,
            int64_t lda, const float* b, int64_t ldb, float* c, int64_t ldc) {
  int64_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const float* a0 = a + (i + 0) * lda;
    const float* a1 = a + (i + 1) * lda;
    const float* a2 = a + (i + 2) * lda;
    const float* a3 = a + (i + 3) * lda;
    float* c0 = c + (i + 0) * ldc;
    float* c1 = c + (i + 1) * ldc;
    float* c2 = c + (i + 2) * ldc;
    float* c3 = c + (i + 3) * ldc;
    for (int64_t p = 0; p < k; ++p) {
      const float* brow = b + p * ldb;
      const float v0 = alpha * a0[p];
      const float v1 = alpha * a1[p];
      const float v2 = alpha * a2[p];
      const float v3 = alpha * a3[p];
      for (int64_t j = 0; j < n; ++j) {
        const float bj = brow[j];
        c0[j] += v0 * bj;
        c1[j] += v1 * bj;
        c2[j] += v2 * bj;
        c3[j] += v3 * bj;
      }
    }
  }
  for (; i < m; ++i) {
    const float* ai = a + i * lda;
    float* ci = c + i * ldc;
    for (int64_t p = 0; p < k; ++p) {
      const float v = alpha * ai[p];
      const float* brow = b + p * ldb;
      for (int64_t j = 0; j < n; ++j) ci[j] += v * brow[j];
    }
  }
}

}  // namespace

void Gemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
          float alpha, const float* a, int64_t lda, const float* b,
          int64_t ldb, float beta, float* c, int64_t ldc) {
  // Scale / clear C first.
  if (beta == 0.0f) {
    for (int64_t i = 0; i < m; ++i) {
      std::memset(c + i * ldc, 0, static_cast<size_t>(n) * sizeof(float));
    }
  } else if (beta != 1.0f) {
    for (int64_t i = 0; i < m; ++i) {
      float* ci = c + i * ldc;
      for (int64_t j = 0; j < n; ++j) ci[j] *= beta;
    }
  }

  if (!trans_a && !trans_b) {
    GemmNN(m, n, k, alpha, a, lda, b, ldb, c, ldc);
    return;
  }
  // General (slower) path for transposed operands; used by backward passes
  // where one operand is transposed. Loop order keeps B accesses streaming.
  if (trans_a && !trans_b) {
    // C(M,N) += A^T, A is (K,M): a[p*lda + i]
    for (int64_t p = 0; p < k; ++p) {
      const float* arow = a + p * lda;
      const float* brow = b + p * ldb;
      for (int64_t i = 0; i < m; ++i) {
        const float v = alpha * arow[i];
        if (v == 0.0f) continue;
        float* ci = c + i * ldc;
        for (int64_t j = 0; j < n; ++j) ci[j] += v * brow[j];
      }
    }
    return;
  }
  if (!trans_a && trans_b) {
    // B is (N,K): b[j*ldb + p]; dot products of rows.
    for (int64_t i = 0; i < m; ++i) {
      const float* ai = a + i * lda;
      float* ci = c + i * ldc;
      for (int64_t j = 0; j < n; ++j) {
        const float* bj = b + j * ldb;
        float acc = 0.0f;
        for (int64_t p = 0; p < k; ++p) acc += ai[p] * bj[p];
        ci[j] += alpha * acc;
      }
    }
    return;
  }
  // trans_a && trans_b
  for (int64_t i = 0; i < m; ++i) {
    float* ci = c + i * ldc;
    for (int64_t j = 0; j < n; ++j) {
      const float* bj = b + j * ldb;
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) acc += a[p * lda + i] * bj[p];
      ci[j] += alpha * acc;
    }
  }
}

void MatMul(const Tensor& a, bool trans_a, const Tensor& b, bool trans_b,
            Tensor* out, float beta) {
  MS_CHECK(a.ndim() == 2 && b.ndim() == 2 && out->ndim() == 2);
  const int64_t m = trans_a ? a.dim(1) : a.dim(0);
  const int64_t ka = trans_a ? a.dim(0) : a.dim(1);
  const int64_t kb = trans_b ? b.dim(1) : b.dim(0);
  const int64_t n = trans_b ? b.dim(0) : b.dim(1);
  MS_CHECK_MSG(ka == kb, "MatMul inner dims mismatch");
  MS_CHECK(out->dim(0) == m && out->dim(1) == n);
  Gemm(trans_a, trans_b, m, n, ka, 1.0f, a.data(), a.dim(1), b.data(),
       b.dim(1), beta, out->data(), n);
}

void Im2Col(const float* x, int64_t channels, int64_t h, int64_t w,
            int64_t kernel, int64_t stride, int64_t pad, float* cols) {
  const int64_t oh = (h + 2 * pad - kernel) / stride + 1;
  const int64_t ow = (w + 2 * pad - kernel) / stride + 1;
  const int64_t out_area = oh * ow;
  for (int64_t c = 0; c < channels; ++c) {
    const float* xc = x + c * h * w;
    for (int64_t ki = 0; ki < kernel; ++ki) {
      for (int64_t kj = 0; kj < kernel; ++kj) {
        float* dst = cols + ((c * kernel + ki) * kernel + kj) * out_area;
        for (int64_t oi = 0; oi < oh; ++oi) {
          const int64_t ii = oi * stride - pad + ki;
          if (ii < 0 || ii >= h) {
            std::memset(dst + oi * ow, 0,
                        static_cast<size_t>(ow) * sizeof(float));
            continue;
          }
          const float* src_row = xc + ii * w;
          float* dst_row = dst + oi * ow;
          for (int64_t oj = 0; oj < ow; ++oj) {
            const int64_t jj = oj * stride - pad + kj;
            dst_row[oj] = (jj >= 0 && jj < w) ? src_row[jj] : 0.0f;
          }
        }
      }
    }
  }
}

void Col2Im(const float* cols, int64_t channels, int64_t h, int64_t w,
            int64_t kernel, int64_t stride, int64_t pad, float* x) {
  const int64_t oh = (h + 2 * pad - kernel) / stride + 1;
  const int64_t ow = (w + 2 * pad - kernel) / stride + 1;
  const int64_t out_area = oh * ow;
  std::memset(x, 0, static_cast<size_t>(channels * h * w) * sizeof(float));
  for (int64_t c = 0; c < channels; ++c) {
    float* xc = x + c * h * w;
    for (int64_t ki = 0; ki < kernel; ++ki) {
      for (int64_t kj = 0; kj < kernel; ++kj) {
        const float* src = cols + ((c * kernel + ki) * kernel + kj) * out_area;
        for (int64_t oi = 0; oi < oh; ++oi) {
          const int64_t ii = oi * stride - pad + ki;
          if (ii < 0 || ii >= h) continue;
          float* dst_row = xc + ii * w;
          const float* src_row = src + oi * ow;
          for (int64_t oj = 0; oj < ow; ++oj) {
            const int64_t jj = oj * stride - pad + kj;
            if (jj >= 0 && jj < w) dst_row[jj] += src_row[oj];
          }
        }
      }
    }
  }
}

void AvgPool2d(const Tensor& x, int64_t n, int64_t c, int64_t h, int64_t w,
               int64_t kernel, int64_t stride, Tensor* out) {
  const int64_t oh = (h - kernel) / stride + 1;
  const int64_t ow = (w - kernel) / stride + 1;
  MS_CHECK(out->size() == n * c * oh * ow);
  const float inv = 1.0f / static_cast<float>(kernel * kernel);
  for (int64_t img = 0; img < n * c; ++img) {
    const float* src = x.data() + img * h * w;
    float* dst = out->data() + img * oh * ow;
    for (int64_t oi = 0; oi < oh; ++oi) {
      for (int64_t oj = 0; oj < ow; ++oj) {
        float acc = 0.0f;
        for (int64_t ki = 0; ki < kernel; ++ki) {
          const float* row = src + (oi * stride + ki) * w + oj * stride;
          for (int64_t kj = 0; kj < kernel; ++kj) acc += row[kj];
        }
        dst[oi * ow + oj] = acc * inv;
      }
    }
  }
}

void AvgPool2dBackward(const Tensor& grad_out, int64_t n, int64_t c,
                       int64_t h, int64_t w, int64_t kernel, int64_t stride,
                       Tensor* grad_in) {
  const int64_t oh = (h - kernel) / stride + 1;
  const int64_t ow = (w - kernel) / stride + 1;
  MS_CHECK(grad_in->size() == n * c * h * w);
  grad_in->Zero();
  const float inv = 1.0f / static_cast<float>(kernel * kernel);
  for (int64_t img = 0; img < n * c; ++img) {
    const float* gsrc = grad_out.data() + img * oh * ow;
    float* gdst = grad_in->data() + img * h * w;
    for (int64_t oi = 0; oi < oh; ++oi) {
      for (int64_t oj = 0; oj < ow; ++oj) {
        const float g = gsrc[oi * ow + oj] * inv;
        for (int64_t ki = 0; ki < kernel; ++ki) {
          float* row = gdst + (oi * stride + ki) * w + oj * stride;
          for (int64_t kj = 0; kj < kernel; ++kj) row[kj] += g;
        }
      }
    }
  }
}

void MaxPool2d(const Tensor& x, int64_t n, int64_t c, int64_t h, int64_t w,
               int64_t kernel, int64_t stride, Tensor* out,
               std::vector<int32_t>* argmax) {
  const int64_t oh = (h - kernel) / stride + 1;
  const int64_t ow = (w - kernel) / stride + 1;
  MS_CHECK(out->size() == n * c * oh * ow);
  argmax->assign(static_cast<size_t>(out->size()), 0);
  for (int64_t img = 0; img < n * c; ++img) {
    const float* src = x.data() + img * h * w;
    float* dst = out->data() + img * oh * ow;
    int32_t* am = argmax->data() + img * oh * ow;
    for (int64_t oi = 0; oi < oh; ++oi) {
      for (int64_t oj = 0; oj < ow; ++oj) {
        float best = -std::numeric_limits<float>::infinity();
        int32_t best_idx = 0;
        for (int64_t ki = 0; ki < kernel; ++ki) {
          for (int64_t kj = 0; kj < kernel; ++kj) {
            const int64_t idx = (oi * stride + ki) * w + (oj * stride + kj);
            if (src[idx] > best) {
              best = src[idx];
              best_idx = static_cast<int32_t>(idx);
            }
          }
        }
        dst[oi * ow + oj] = best;
        am[oi * ow + oj] = best_idx;
      }
    }
  }
}

void MaxPool2dBackward(const Tensor& grad_out,
                       const std::vector<int32_t>& argmax, int64_t images,
                       int64_t in_area, int64_t out_area, Tensor* grad_in) {
  MS_CHECK(static_cast<int64_t>(argmax.size()) == grad_out.size());
  MS_CHECK(grad_out.size() == images * out_area);
  MS_CHECK(grad_in->size() == images * in_area);
  grad_in->Zero();
  for (int64_t img = 0; img < images; ++img) {
    const float* g = grad_out.data() + img * out_area;
    const int32_t* am = argmax.data() + img * out_area;
    float* gi = grad_in->data() + img * in_area;
    for (int64_t i = 0; i < out_area; ++i) gi[am[i]] += g[i];
  }
}

void Add(const Tensor& a, const Tensor& b, Tensor* out) {
  MS_CHECK(a.size() == b.size() && a.size() == out->size());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out->data();
  for (int64_t i = 0; i < a.size(); ++i) po[i] = pa[i] + pb[i];
}

void AddInPlace(Tensor* a, const Tensor& b) {
  MS_CHECK(a->size() == b.size());
  float* pa = a->data();
  const float* pb = b.data();
  for (int64_t i = 0; i < b.size(); ++i) pa[i] += pb[i];
}

void Scale(Tensor* a, float s) {
  float* pa = a->data();
  for (int64_t i = 0; i < a->size(); ++i) pa[i] *= s;
}

void Axpy(float alpha, const Tensor& x, Tensor* y) {
  MS_CHECK(x.size() == y->size());
  const float* px = x.data();
  float* py = y->data();
  for (int64_t i = 0; i < x.size(); ++i) py[i] += alpha * px[i];
}

float SumSquares(const Tensor& a) {
  double acc = 0.0;
  for (int64_t i = 0; i < a.size(); ++i) {
    acc += static_cast<double>(a[i]) * a[i];
  }
  return static_cast<float>(acc);
}

float Max(const Tensor& a) {
  MS_CHECK(a.size() > 0);
  float best = a[0];
  for (int64_t i = 1; i < a.size(); ++i) best = std::max(best, a[i]);
  return best;
}

float Mean(const Tensor& a) {
  MS_CHECK(a.size() > 0);
  double acc = 0.0;
  for (int64_t i = 0; i < a.size(); ++i) acc += a[i];
  return static_cast<float>(acc / static_cast<double>(a.size()));
}

void SoftmaxRows(const Tensor& logits, int64_t rows, int64_t cols,
                 Tensor* probs) {
  MS_CHECK(logits.size() >= rows * cols && probs->size() >= rows * cols);
  for (int64_t r = 0; r < rows; ++r) {
    const float* in = logits.data() + r * cols;
    float* out = probs->data() + r * cols;
    float max_v = in[0];
    for (int64_t c = 1; c < cols; ++c) max_v = std::max(max_v, in[c]);
    double sum = 0.0;
    for (int64_t c = 0; c < cols; ++c) {
      out[c] = std::exp(in[c] - max_v);
      sum += out[c];
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (int64_t c = 0; c < cols; ++c) out[c] *= inv;
  }
}

void ArgmaxRows(const Tensor& m, int64_t rows, int64_t cols,
                std::vector<int>* out) {
  out->assign(static_cast<size_t>(rows), 0);
  for (int64_t r = 0; r < rows; ++r) {
    const float* row = m.data() + r * cols;
    int best = 0;
    for (int64_t c = 1; c < cols; ++c) {
      if (row[c] > row[best]) best = static_cast<int>(c);
    }
    (*out)[static_cast<size_t>(r)] = best;
  }
}

}  // namespace ops
}  // namespace ms
