#include "src/tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

namespace ms {
namespace ops {

// Gemm / GemmRef live in gemm.cc (packed, cache-blocked, thread-parallel
// kernel layer). This file keeps the Tensor-level convenience wrappers and
// the remaining im2col/pooling/elementwise kernels.

void MatMul(const Tensor& a, bool trans_a, const Tensor& b, bool trans_b,
            Tensor* out, float beta) {
  MS_CHECK(a.ndim() == 2 && b.ndim() == 2 && out->ndim() == 2);
  const int64_t m = trans_a ? a.dim(1) : a.dim(0);
  const int64_t ka = trans_a ? a.dim(0) : a.dim(1);
  const int64_t kb = trans_b ? b.dim(1) : b.dim(0);
  const int64_t n = trans_b ? b.dim(0) : b.dim(1);
  MS_CHECK_MSG(ka == kb, "MatMul inner dims mismatch");
  MS_CHECK(out->dim(0) == m && out->dim(1) == n);
  Gemm(trans_a, trans_b, m, n, ka, 1.0f, a.data(), a.dim(1), b.data(),
       b.dim(1), beta, out->data(), n);
}

void Im2Col(const float* x, int64_t channels, int64_t h, int64_t w,
            int64_t kernel, int64_t stride, int64_t pad, float* cols) {
  const int64_t oh = (h + 2 * pad - kernel) / stride + 1;
  const int64_t ow = (w + 2 * pad - kernel) / stride + 1;
  const int64_t out_area = oh * ow;
  for (int64_t c = 0; c < channels; ++c) {
    const float* xc = x + c * h * w;
    for (int64_t ki = 0; ki < kernel; ++ki) {
      for (int64_t kj = 0; kj < kernel; ++kj) {
        float* dst = cols + ((c * kernel + ki) * kernel + kj) * out_area;
        for (int64_t oi = 0; oi < oh; ++oi) {
          const int64_t ii = oi * stride - pad + ki;
          if (ii < 0 || ii >= h) {
            std::memset(dst + oi * ow, 0,
                        static_cast<size_t>(ow) * sizeof(float));
            continue;
          }
          const float* src_row = xc + ii * w;
          float* dst_row = dst + oi * ow;
          for (int64_t oj = 0; oj < ow; ++oj) {
            const int64_t jj = oj * stride - pad + kj;
            dst_row[oj] = (jj >= 0 && jj < w) ? src_row[jj] : 0.0f;
          }
        }
      }
    }
  }
}

void Col2Im(const float* cols, int64_t channels, int64_t h, int64_t w,
            int64_t kernel, int64_t stride, int64_t pad, float* x) {
  const int64_t oh = (h + 2 * pad - kernel) / stride + 1;
  const int64_t ow = (w + 2 * pad - kernel) / stride + 1;
  const int64_t out_area = oh * ow;
  std::memset(x, 0, static_cast<size_t>(channels * h * w) * sizeof(float));
  for (int64_t c = 0; c < channels; ++c) {
    float* xc = x + c * h * w;
    for (int64_t ki = 0; ki < kernel; ++ki) {
      for (int64_t kj = 0; kj < kernel; ++kj) {
        const float* src = cols + ((c * kernel + ki) * kernel + kj) * out_area;
        for (int64_t oi = 0; oi < oh; ++oi) {
          const int64_t ii = oi * stride - pad + ki;
          if (ii < 0 || ii >= h) continue;
          float* dst_row = xc + ii * w;
          const float* src_row = src + oi * ow;
          for (int64_t oj = 0; oj < ow; ++oj) {
            const int64_t jj = oj * stride - pad + kj;
            if (jj >= 0 && jj < w) dst_row[jj] += src_row[oj];
          }
        }
      }
    }
  }
}

void AvgPool2d(const Tensor& x, int64_t n, int64_t c, int64_t h, int64_t w,
               int64_t kernel, int64_t stride, Tensor* out) {
  const int64_t oh = (h - kernel) / stride + 1;
  const int64_t ow = (w - kernel) / stride + 1;
  MS_CHECK(out->size() == n * c * oh * ow);
  const float inv = 1.0f / static_cast<float>(kernel * kernel);
  for (int64_t img = 0; img < n * c; ++img) {
    const float* src = x.data() + img * h * w;
    float* dst = out->data() + img * oh * ow;
    for (int64_t oi = 0; oi < oh; ++oi) {
      for (int64_t oj = 0; oj < ow; ++oj) {
        float acc = 0.0f;
        for (int64_t ki = 0; ki < kernel; ++ki) {
          const float* row = src + (oi * stride + ki) * w + oj * stride;
          for (int64_t kj = 0; kj < kernel; ++kj) acc += row[kj];
        }
        dst[oi * ow + oj] = acc * inv;
      }
    }
  }
}

void AvgPool2dBackward(const Tensor& grad_out, int64_t n, int64_t c,
                       int64_t h, int64_t w, int64_t kernel, int64_t stride,
                       Tensor* grad_in) {
  const int64_t oh = (h - kernel) / stride + 1;
  const int64_t ow = (w - kernel) / stride + 1;
  MS_CHECK(grad_in->size() == n * c * h * w);
  grad_in->Zero();
  const float inv = 1.0f / static_cast<float>(kernel * kernel);
  for (int64_t img = 0; img < n * c; ++img) {
    const float* gsrc = grad_out.data() + img * oh * ow;
    float* gdst = grad_in->data() + img * h * w;
    for (int64_t oi = 0; oi < oh; ++oi) {
      for (int64_t oj = 0; oj < ow; ++oj) {
        const float g = gsrc[oi * ow + oj] * inv;
        for (int64_t ki = 0; ki < kernel; ++ki) {
          float* row = gdst + (oi * stride + ki) * w + oj * stride;
          for (int64_t kj = 0; kj < kernel; ++kj) row[kj] += g;
        }
      }
    }
  }
}

void MaxPool2d(const Tensor& x, int64_t n, int64_t c, int64_t h, int64_t w,
               int64_t kernel, int64_t stride, Tensor* out,
               std::vector<int32_t>* argmax) {
  const int64_t oh = (h - kernel) / stride + 1;
  const int64_t ow = (w - kernel) / stride + 1;
  MS_CHECK(out->size() == n * c * oh * ow);
  argmax->assign(static_cast<size_t>(out->size()), 0);
  for (int64_t img = 0; img < n * c; ++img) {
    const float* src = x.data() + img * h * w;
    float* dst = out->data() + img * oh * ow;
    int32_t* am = argmax->data() + img * oh * ow;
    for (int64_t oi = 0; oi < oh; ++oi) {
      for (int64_t oj = 0; oj < ow; ++oj) {
        float best = -std::numeric_limits<float>::infinity();
        int32_t best_idx = 0;
        for (int64_t ki = 0; ki < kernel; ++ki) {
          for (int64_t kj = 0; kj < kernel; ++kj) {
            const int64_t idx = (oi * stride + ki) * w + (oj * stride + kj);
            if (src[idx] > best) {
              best = src[idx];
              best_idx = static_cast<int32_t>(idx);
            }
          }
        }
        dst[oi * ow + oj] = best;
        am[oi * ow + oj] = best_idx;
      }
    }
  }
}

void MaxPool2dBackward(const Tensor& grad_out,
                       const std::vector<int32_t>& argmax, int64_t images,
                       int64_t in_area, int64_t out_area, Tensor* grad_in) {
  MS_CHECK(static_cast<int64_t>(argmax.size()) == grad_out.size());
  MS_CHECK(grad_out.size() == images * out_area);
  MS_CHECK(grad_in->size() == images * in_area);
  grad_in->Zero();
  for (int64_t img = 0; img < images; ++img) {
    const float* g = grad_out.data() + img * out_area;
    const int32_t* am = argmax.data() + img * out_area;
    float* gi = grad_in->data() + img * in_area;
    for (int64_t i = 0; i < out_area; ++i) gi[am[i]] += g[i];
  }
}

void Add(const Tensor& a, const Tensor& b, Tensor* out) {
  MS_CHECK(a.size() == b.size() && a.size() == out->size());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out->data();
  for (int64_t i = 0; i < a.size(); ++i) po[i] = pa[i] + pb[i];
}

void AddInPlace(Tensor* a, const Tensor& b) {
  MS_CHECK(a->size() == b.size());
  float* pa = a->data();
  const float* pb = b.data();
  for (int64_t i = 0; i < b.size(); ++i) pa[i] += pb[i];
}

void Scale(Tensor* a, float s) {
  float* pa = a->data();
  for (int64_t i = 0; i < a->size(); ++i) pa[i] *= s;
}

void Axpy(float alpha, const Tensor& x, Tensor* y) {
  MS_CHECK(x.size() == y->size());
  const float* px = x.data();
  float* py = y->data();
  for (int64_t i = 0; i < x.size(); ++i) py[i] += alpha * px[i];
}

float SumSquares(const Tensor& a) {
  double acc = 0.0;
  for (int64_t i = 0; i < a.size(); ++i) {
    acc += static_cast<double>(a[i]) * a[i];
  }
  return static_cast<float>(acc);
}

float Max(const Tensor& a) {
  MS_CHECK(a.size() > 0);
  float best = a[0];
  for (int64_t i = 1; i < a.size(); ++i) best = std::max(best, a[i]);
  return best;
}

float Mean(const Tensor& a) {
  MS_CHECK(a.size() > 0);
  double acc = 0.0;
  for (int64_t i = 0; i < a.size(); ++i) acc += a[i];
  return static_cast<float>(acc / static_cast<double>(a.size()));
}

void SoftmaxRows(const Tensor& logits, int64_t rows, int64_t cols,
                 Tensor* probs) {
  MS_CHECK(logits.size() >= rows * cols && probs->size() >= rows * cols);
  for (int64_t r = 0; r < rows; ++r) {
    const float* in = logits.data() + r * cols;
    float* out = probs->data() + r * cols;
    float max_v = in[0];
    for (int64_t c = 1; c < cols; ++c) max_v = std::max(max_v, in[c]);
    double sum = 0.0;
    for (int64_t c = 0; c < cols; ++c) {
      out[c] = std::exp(in[c] - max_v);
      sum += out[c];
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (int64_t c = 0; c < cols; ++c) out[c] *= inv;
  }
}

void ArgmaxRows(const Tensor& m, int64_t rows, int64_t cols,
                std::vector<int>* out) {
  out->assign(static_cast<size_t>(rows), 0);
  for (int64_t r = 0; r < rows; ++r) {
    const float* row = m.data() + r * cols;
    int best = 0;
    for (int64_t c = 1; c < cols; ++c) {
      if (row[c] > row[best]) best = static_cast<int>(c);
    }
    (*out)[static_cast<size_t>(r)] = best;
  }
}

}  // namespace ops
}  // namespace ms
