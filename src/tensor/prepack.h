// Prepacked GEMM operands: pack a static matrix (layer weights) into the
// kernel's panel grid ONCE and reuse it across calls, instead of re-packing
// on every Gemm. This is the serving fast path: with batch M <= 8 the
// packing of W dominates the actual FLOPs, and the weight never changes
// between requests.
//
// Rate-sliceable by construction (paper Eq. 1-2): slicing selects a PREFIX
// of ordered groups, i.e. a prefix of op(W)'s rows and/or columns. The
// pack stores op(B) column panels p-major with panel stride k_full, so
//   * a column prefix n <= N is a prefix of whole nr-wide panels plus a
//     column mask on the last partial panel (MergeTile already discards
//     dead lanes), and
//   * a row prefix k <= K is a within-panel row prefix (first k*nr floats
//     of each panel).
// One full-size pack therefore serves EVERY trained slice rate — the same
// share-one-artifact-across-rates trick the paper applies to the weights
// themselves, pushed down into the kernel layout.
//
// Determinism contract: GemmPrepackedB/GemmPrepackedA produce results
// bitwise-equal to Gemm/GemmRef for every transpose flavor, slice prefix,
// and thread count. The panels are byte-identical to the scratch panels
// Gemm packs per call, the compute walk is the same fixed grid, and the
// skinny-M kernel performs the identical per-element contraction.
//
// Invalidation: EnsurePacked{A,B} re-packs when the source pointer, shape,
// leading dimension, transpose flag, or the process-wide weight generation
// changed. Anything that mutates weights (SGD::Step, CopyParams,
// LoadParams, Dense/Conv mutable accessors) bumps the generation, so a
// pack can never silently serve stale weights. In steady-state serving
// nothing bumps, and TotalPackCount() stays flat — the bench and the CI
// smoke job assert exactly that.
//
// Thread-safety: the generation counter and pack statistics are atomics.
// A PackedMatrix itself is NOT internally synchronized — callers must
// Ensure* before handing the pack to parallel readers (layers do this
// before entering ParallelForCompute; serving replicas are single-owner).
#ifndef MODELSLICING_TENSOR_PREPACK_H_
#define MODELSLICING_TENSOR_PREPACK_H_

#include <cstdint>
#include <memory>

#include "src/tensor/epilogue.h"

namespace ms {
namespace ops {

class PackedMatrix;

/// Process-wide weight generation. Monotone; compared by EnsurePacked*.
uint64_t WeightGeneration();

/// Marks all existing packs stale. Called by every weight mutator.
void BumpWeightGeneration();

/// A matrix packed into the active microkernel's panel layout. Movable,
/// not copyable; default-constructed state is empty (never matches, first
/// Ensure* packs). The source matrix is identified by pointer — it is a
/// cache key only and is never dereferenced outside Pack*/Ensure*.
class PackedMatrix {
 public:
  PackedMatrix() = default;
  PackedMatrix(PackedMatrix&&) = default;
  PackedMatrix& operator=(PackedMatrix&&) = default;
  PackedMatrix(const PackedMatrix&) = delete;
  PackedMatrix& operator=(const PackedMatrix&) = delete;

  bool empty() const { return role_ == Role::kNone; }
  /// Rows of the packed operand: k for a B pack (op(B) is K x N), m for
  /// an A pack (op(A) is M x K).
  int64_t rows() const { return rows_; }
  /// Columns of the packed operand: n for a B pack, k for an A pack.
  int64_t cols() const { return cols_; }
  /// Weight generation the pack was built at.
  uint64_t generation() const { return generation_; }
  /// Floats held by the pack buffer (panel padding included).
  int64_t packed_floats() const { return packed_floats_; }

 private:
  enum class Role : uint8_t { kNone, kA, kB };

  friend void PackB(bool, int64_t, int64_t, const float*, int64_t,
                    PackedMatrix*);
  friend bool EnsurePackedB(bool, int64_t, int64_t, const float*, int64_t,
                            PackedMatrix*);
  friend void GemmPrepackedB(bool, int64_t, int64_t, int64_t, float,
                             const float*, int64_t, const PackedMatrix&,
                             float, float*, int64_t);
  friend void GemmPrepackedBEx(bool, int64_t, int64_t, int64_t, float,
                               const float*, int64_t, const PackedMatrix&,
                               float, float*, int64_t, const Epilogue&);
  friend void PackA(bool, int64_t, int64_t, const float*, int64_t,
                    PackedMatrix*);
  friend bool EnsurePackedA(bool, int64_t, int64_t, const float*, int64_t,
                            PackedMatrix*);
  friend void GemmPrepackedA(int64_t, int64_t, int64_t, const PackedMatrix&,
                             bool, const float*, int64_t, float, float*,
                             int64_t);
  friend void GemmPrepackedAEx(int64_t, int64_t, int64_t,
                               const PackedMatrix&, bool, const float*,
                               int64_t, float, float*, int64_t,
                               const Epilogue&);

  /// 64-byte-aligned buffer of at least `floats` floats (reuses the
  /// existing allocation when large enough).
  float* Reserve(int64_t floats);

  std::unique_ptr<float[]> storage_;
  float* data_ = nullptr;
  int64_t capacity_ = 0;       // floats usable at data_
  int64_t packed_floats_ = 0;  // floats written by the last pack
  Role role_ = Role::kNone;
  bool trans_ = false;         // transpose flag of the packed source
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  int64_t ld_ = 0;             // source leading dimension
  int panel_ = 0;              // panel width: nr (B role) or mr (A role)
  const float* src_ = nullptr;
  uint64_t generation_ = 0;
};

// ---------------------------------------------------------------------------
// B-role packs (op(B) is K x N). Weights used as the right operand:
// Dense/LSTM/GRU forward with trans_b, Dense backward-dx without.

/// Packs op(B) (full extents k x n, leading dimension ldb) into `pack`.
/// alpha-independent: alpha is applied to A at GemmPrepackedB time.
void PackB(bool trans_b, int64_t k, int64_t n, const float* b, int64_t ldb,
           PackedMatrix* pack);

/// PackB only if `pack` is empty, keyed differently, or stale (weight
/// generation advanced). Returns true when it (re)packed.
bool EnsurePackedB(bool trans_b, int64_t k, int64_t n, const float* b,
                   int64_t ldb, PackedMatrix* pack);

/// C = alpha * op(A) * Bpack[:k, :n] + beta * C. k/n may be any prefix of
/// the packed extents (slice rates); bitwise-equal to the corresponding
/// Gemm call. Small M runs the skinny kernel — no A packing at all — up to
/// the active kernel's accumulator capacity (4 rows for AVX2, 8 portable);
/// larger M packs only the activation and reuses the panels.
void GemmPrepackedB(bool trans_a, int64_t m, int64_t n, int64_t k,
                    float alpha, const float* a, int64_t lda,
                    const PackedMatrix& bpack, float beta, float* c,
                    int64_t ldc);

/// GemmPrepackedB with a fused epilogue at C-writeback; bitwise identical
/// to GemmPrepackedB followed by the same post-pass (see epilogue.h).
void GemmPrepackedBEx(bool trans_a, int64_t m, int64_t n, int64_t k,
                      float alpha, const float* a, int64_t lda,
                      const PackedMatrix& bpack, float beta, float* c,
                      int64_t ldc, const Epilogue& epi);

// ---------------------------------------------------------------------------
// A-role packs (op(A) is M x K). Weights used as the left operand: conv
// layers multiply W (out_channels x in_channels*k*k) by im2col columns.
// alpha is fixed at 1 (packed panels hold 1*w, exactly what Gemm packs
// for the alpha the conv layers use).

/// Packs op(A) (full extents m x k, leading dimension lda) into `pack`.
void PackA(bool trans_a, int64_t m, int64_t k, const float* a, int64_t lda,
           PackedMatrix* pack);

/// PackA only if `pack` is empty, keyed differently, or stale. Returns
/// true when it (re)packed.
bool EnsurePackedA(bool trans_a, int64_t m, int64_t k, const float* a,
                   int64_t lda, PackedMatrix* pack);

/// C = Apack[:m, :k] * op(B) + beta * C (alpha == 1). m/k may be any
/// prefix of the packed extents; bitwise-equal to the corresponding Gemm.
void GemmPrepackedA(int64_t m, int64_t n, int64_t k,
                    const PackedMatrix& apack, bool trans_b, const float* b,
                    int64_t ldb, float beta, float* c, int64_t ldc);

/// GemmPrepackedA with a fused epilogue at C-writeback (conv bias is the
/// per_row case: one value per output channel / C row).
void GemmPrepackedAEx(int64_t m, int64_t n, int64_t k,
                      const PackedMatrix& apack, bool trans_b,
                      const float* b, int64_t ldb, float beta, float* c,
                      int64_t ldc, const Epilogue& epi);

// ---------------------------------------------------------------------------
// Observability. Process-wide counters (relaxed atomics, cheap enough for
// the hot path); PublishPackMetrics snapshots them into the global
// metrics registry for benches / the serving engine.

struct PackStats {
  uint64_t packs = 0;            ///< Pack*/Ensure* executions that packed
  uint64_t packed_floats = 0;    ///< floats written by those packs
  uint64_t hits = 0;             ///< Ensure* calls satisfied by the cache
  uint64_t prepacked_calls = 0;  ///< GemmPrepacked{A,B} invocations
};

PackStats GetPackStats();

/// Test hook (like ScratchArena::TotalBlockAllocs): total packs performed
/// by this process. Steady-state serving must keep it flat.
uint64_t TotalPackCount();

/// Sets gauges ms_gemm_pack_count / ms_gemm_pack_bytes / ms_gemm_pack_hits
/// / ms_gemm_prepacked_calls in obs::MetricsRegistry::Global().
void PublishPackMetrics();

}  // namespace ops
}  // namespace ms

#endif  // MODELSLICING_TENSOR_PREPACK_H_
