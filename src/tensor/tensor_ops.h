// Numeric kernels on Tensor: GEMM, im2col-based convolution, pooling,
// elementwise maps and reductions. These are the only hot loops in the
// library; everything else composes them.
#ifndef MODELSLICING_TENSOR_TENSOR_OPS_H_
#define MODELSLICING_TENSOR_TENSOR_OPS_H_

#include <functional>

#include "src/tensor/gemm.h"
#include "src/tensor/tensor.h"

namespace ms {
namespace ops {

/// Convenience GEMM on Tensors; shapes must already agree.
/// a: (M,K) or (K,M) if trans_a; b: (K,N) or (N,K) if trans_b; out: (M,N).
void MatMul(const Tensor& a, bool trans_a, const Tensor& b, bool trans_b,
            Tensor* out, float beta = 0.0f);

struct Conv2dSpec {
  int64_t in_channels = 0;
  int64_t out_channels = 0;
  int64_t kernel = 3;
  int64_t stride = 1;
  int64_t pad = 1;

  int64_t OutSize(int64_t in) const {
    return (in + 2 * pad - kernel) / stride + 1;
  }
};

/// im2col: x (C,H,W) -> cols (C*k*k, OH*OW). Active channel count may be a
/// prefix slice of the full tensor's channel dim (channels <= x channels).
void Im2Col(const float* x, int64_t channels, int64_t h, int64_t w,
            int64_t kernel, int64_t stride, int64_t pad, float* cols);

/// col2im: inverse scatter-add of Im2Col.
void Col2Im(const float* cols, int64_t channels, int64_t h, int64_t w,
            int64_t kernel, int64_t stride, int64_t pad, float* x);

/// 2x2 / kxk average pooling over NCHW. out must be (N,C,OH,OW).
void AvgPool2d(const Tensor& x, int64_t n, int64_t c, int64_t h, int64_t w,
               int64_t kernel, int64_t stride, Tensor* out);
void AvgPool2dBackward(const Tensor& grad_out, int64_t n, int64_t c, int64_t h,
                       int64_t w, int64_t kernel, int64_t stride,
                       Tensor* grad_in);

void MaxPool2d(const Tensor& x, int64_t n, int64_t c, int64_t h, int64_t w,
               int64_t kernel, int64_t stride, Tensor* out,
               std::vector<int32_t>* argmax);
/// images = N*C; in_area = H*W; out_area = OH*OW. argmax holds per-image
/// spatial indices produced by MaxPool2d.
void MaxPool2dBackward(const Tensor& grad_out,
                       const std::vector<int32_t>& argmax, int64_t images,
                       int64_t in_area, int64_t out_area, Tensor* grad_in);

/// Elementwise helpers.
void Add(const Tensor& a, const Tensor& b, Tensor* out);
void AddInPlace(Tensor* a, const Tensor& b);
void Scale(Tensor* a, float s);
void Axpy(float alpha, const Tensor& x, Tensor* y);  // y += alpha * x

float SumSquares(const Tensor& a);
float Max(const Tensor& a);
float Mean(const Tensor& a);

/// Row-wise softmax over a (rows, cols) matrix.
void SoftmaxRows(const Tensor& logits, int64_t rows, int64_t cols,
                 Tensor* probs);

/// argmax per row of a (rows, cols) matrix.
void ArgmaxRows(const Tensor& m, int64_t rows, int64_t cols,
                std::vector<int>* out);

}  // namespace ops
}  // namespace ms

#endif  // MODELSLICING_TENSOR_TENSOR_OPS_H_
