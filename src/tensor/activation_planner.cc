// Interval packing for activation lifetimes. See activation_planner.h.
#include "src/tensor/activation_planner.h"

#include <algorithm>
#include <limits>

#include "src/util/status.h"

namespace ms {
namespace {

bool TimeOverlap(const ActivationInterval& a, const ActivationInterval& b) {
  return a.start < b.end && b.start < a.end;
}

}  // namespace

ActivationPlan PlanActivations(const std::vector<ArenaEvent>& events) {
  ActivationPlan plan;
  plan.intervals.reserve(events.size());
  for (const ArenaEvent& ev : events) {
    ActivationInterval iv;
    iv.id = ev.id;
    iv.bytes = ev.floats * static_cast<int64_t>(sizeof(float));
    iv.start = ev.alloc_tick;
    iv.end = ev.free_tick >= 0 ? ev.free_tick
                               : std::numeric_limits<int64_t>::max();
    plan.intervals.push_back(iv);
    plan.total_alloc_bytes += iv.bytes;
  }

  // Peak live bytes: sweep the event timeline.
  {
    std::vector<std::pair<int64_t, int64_t>> deltas;  // (tick, +/- bytes)
    deltas.reserve(plan.intervals.size() * 2);
    for (const ActivationInterval& iv : plan.intervals) {
      deltas.emplace_back(iv.start, iv.bytes);
      if (iv.end != std::numeric_limits<int64_t>::max()) {
        deltas.emplace_back(iv.end, -iv.bytes);
      }
    }
    std::sort(deltas.begin(), deltas.end());
    int64_t live = 0;
    for (const auto& d : deltas) {
      live += d.second;
      plan.peak_live_bytes = std::max(plan.peak_live_bytes, live);
    }
  }

  // First-fit decreasing: place big tensors first (ties by alloc order for
  // determinism); each goes at the lowest offset that clears every
  // already-placed, time-overlapping interval.
  std::vector<int64_t> order(plan.intervals.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int64_t>(i);
  std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    const ActivationInterval& ia = plan.intervals[static_cast<size_t>(a)];
    const ActivationInterval& ib = plan.intervals[static_cast<size_t>(b)];
    if (ia.bytes != ib.bytes) return ia.bytes > ib.bytes;
    return ia.id < ib.id;
  });
  std::vector<int64_t> placed;
  placed.reserve(order.size());
  for (int64_t oi : order) {
    ActivationInterval& iv = plan.intervals[static_cast<size_t>(oi)];
    // Gather time-overlapping placed intervals sorted by offset, then walk
    // upward over them to the first gap that fits.
    std::vector<const ActivationInterval*> conflicts;
    for (int64_t pi : placed) {
      const ActivationInterval& p = plan.intervals[static_cast<size_t>(pi)];
      if (TimeOverlap(iv, p)) conflicts.push_back(&p);
    }
    std::sort(conflicts.begin(), conflicts.end(),
              [](const ActivationInterval* a, const ActivationInterval* b) {
                return a->offset < b->offset;
              });
    int64_t at = 0;
    for (const ActivationInterval* p : conflicts) {
      if (at + iv.bytes <= p->offset) break;  // fits in the gap below p
      at = std::max(at, p->offset + p->bytes);
    }
    iv.offset = at;
    plan.packed_bytes = std::max(plan.packed_bytes, at + iv.bytes);
    placed.push_back(oi);
  }
  MS_CHECK(plan.packed_bytes >= plan.peak_live_bytes);
  return plan;
}

ActivationPlan PlanForward(ActivationArena* arena,
                           const std::function<void()>& forward) {
  MS_CHECK(arena != nullptr);
  arena->core()->StartRecording();
  {
    ActivationScope scope(*arena);
    forward();
  }
  const std::vector<ArenaEvent> events = arena->core()->TakeRecording();
  ActivationPlan plan = PlanActivations(events);
  arena->core()->Reserve(
      (plan.packed_bytes + static_cast<int64_t>(sizeof(float)) - 1) /
      static_cast<int64_t>(sizeof(float)));
  return plan;
}

}  // namespace ms
