// Quantized prepacked operands. See quant.h for the layout/staleness
// story. All contraction arithmetic here is exact integer math; the only
// floating-point work is the quantize pass and the dequant epilogue, both
// of which run in a fixed order so results are bitwise identical at every
// thread count and kernel flavor.
#include "src/tensor/quant.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>

#include "src/obs/metrics.h"
#include "src/tensor/gemm.h"
#include "src/tensor/gemm_internal.h"
#include "src/tensor/prepack.h"
#include "src/tensor/scratch.h"
#include "src/util/status.h"

namespace ms {

const char* PrecisionName(Precision p) {
  return p == Precision::kInt8 ? "int8" : "fp32";
}

bool ParsePrecision(const std::string& s, Precision* out) {
  if (s == "fp32") {
    *out = Precision::kFp32;
    return true;
  }
  if (s == "int8") {
    *out = Precision::kInt8;
    return true;
  }
  return false;
}

namespace ops {
namespace {

/// Quantized panel width. Fixed at 16 (not the active fp32 kernel's nr):
/// the int8 panel feeds one 32-byte madd load per k-pair regardless of
/// which fp32 kernel this process runs.
constexpr int kQNr = 16;
/// Rows of op(A) processed per kernel pass; bounds the accumulator tile.
/// Larger chunks amortize B-panel streaming (every chunk re-reads all
/// panels), which dominates the conv-shaped WeightA path; 32 keeps the
/// acc + ftile scratch at 4 KB total. Chunking does not affect results:
/// the integer contraction is exact per row and the float epilogue order
/// per element is unchanged.
constexpr int kQRowChunk = 32;

std::atomic<uint64_t> g_qpacks{0};
std::atomic<uint64_t> g_qpacked_bytes{0};
std::atomic<uint64_t> g_qhits{0};
std::atomic<uint64_t> g_qgemm_calls{0};

/// Symmetric round-to-nearest weight quantization; clamped to [-127, 127]
/// so the representable range is sign-symmetric (no -128).
inline int8_t QuantizeValue(float v, float inv_scale) {
  const long q = std::lrintf(v * inv_scale);
  return static_cast<int8_t>(q < -127 ? -127 : (q > 127 ? 127 : q));
}

/// Asymmetric round-to-nearest activation quantization to 7 bits: code =
/// clamp(lrintf((v - lo) * inv_scale), 0, 127). The [0, 127] bound is the
/// saturation-freedom invariant the maddubs kernel relies on.
inline uint8_t QuantizeValueU7(float v, float lo, float inv_scale) {
  const long q = std::lrintf((v - lo) * inv_scale);
  return static_cast<uint8_t>(q < 0 ? 0 : (q > 127 ? 127 : q));
}

/// Portable int8 kernel: the exact integer contraction of
/// detail::Int8SkinnyFn in plain loops. Bit-identical to the AVX2
/// maddubs/madd kernel by construction (the 7-bit activation bound rules
/// out saturation, and unsaturated integer arithmetic has no rounding).
void Int8SkinnyPortable(int64_t quads, int m, const uint8_t* aq,
                        int64_t lda_q, const int8_t* bseg, int32_t* acc) {
  for (int i = 0; i < m; ++i) {
    int32_t* arow = acc + i * kQNr;
    for (int c = 0; c < kQNr; ++c) arow[c] = 0;
    const uint8_t* ar = aq + i * lda_q;
    for (int64_t p = 0; p < quads; ++p) {
      const int32_t a0 = ar[4 * p];
      const int32_t a1 = ar[4 * p + 1];
      const int32_t a2 = ar[4 * p + 2];
      const int32_t a3 = ar[4 * p + 3];
      const int8_t* bquad = bseg + p * 4 * kQNr;
      for (int c = 0; c < kQNr; ++c) {
        arow[c] += a0 * bquad[4 * c] + a1 * bquad[4 * c + 1] +
                   a2 * bquad[4 * c + 2] + a3 * bquad[4 * c + 3];
      }
    }
  }
}

detail::Int8SkinnyFn ActiveInt8Kernel() {
  // VNNI -> AVX2 maddubs -> portable. All three compute the same exact
  // integer contraction, so the pick is pure speed, never semantics.
  static const detail::Int8SkinnyFn fn = [] {
    if (const detail::Int8SkinnyFn vnni = detail::VnniInt8Kernel()) {
      return vnni;
    }
    const detail::Int8SkinnyFn avx2 = detail::Avx2Int8Kernel();
    return avx2 != nullptr ? avx2 : &Int8SkinnyPortable;
  }();
  return fn;
}

bool WorthParallel(int64_t flops, int64_t tasks) {
  return flops >= detail::kParallelFlops && tasks > 1;
}

/// beta-only merge for k == 0 problems (beta restricted to {0, 1}).
void BetaMergeQ(int64_t m, int64_t n, float beta, float* c, int64_t ldc) {
  if (beta != 0.0f) return;  // beta == 1: C unchanged.
  for (int64_t i = 0; i < m; ++i) {
    float* row = c + i * ldc;
    for (int64_t j = 0; j < n; ++j) row[j] = 0.0f;
  }
}

/// BetaMergeQ followed by the epilogue post-pass (the k == 0 degenerate
/// case of the fused entry points).
void BetaMergeQEpi(int64_t m, int64_t n, float beta, float* c, int64_t ldc,
                   const Epilogue& epi) {
  BetaMergeQ(m, n, beta, c, ldc);
  if (epi.empty()) return;
  for (int64_t i = 0; i < m; ++i) {
    float* row = c + i * ldc;
    for (int64_t j = 0; j < n; ++j) row[j] = detail::EpiApply(epi, i, j, row[j]);
  }
}

/// Quantizes rows [i0, i1) of op(A) (m x k) into the segment-padded u8
/// layout: row i at aq + i*row_bytes, segment g's quads at byte offset
/// seg_quad_off[g]*4. One affine (min, scale) per row over the active k,
/// codes in [0, 127]; aeff[i] = alpha * scale[i] and amineff[i] =
/// alpha * min[i] feed the dequant epilogue directly. Padded positions
/// hold code 0 — harmless because the matching weight bytes are 0, so
/// both the integer products and the colsum correction ignore them.
void QuantizeRowsPadded(bool trans_a, const float* a, int64_t lda,
                        int64_t i0, int64_t i1, float alpha,
                        const std::vector<int64_t>& seg_ends, int64_t s_act,
                        const std::vector<int64_t>& seg_quad_off,
                        int64_t row_bytes, uint8_t* aq, float* aeff,
                        float* amineff) {
  const int64_t k = seg_ends[static_cast<size_t>(s_act - 1)];
  const detail::MinMaxF32Fn minmax_fn = detail::Avx2MinMaxF32();
  const detail::EncodeU7Fn encode_fn = detail::Avx2EncodeU7();

  // One contiguous source row -> one padded u8 row. Element-exact across
  // the AVX2 and scalar flavors (vcvtps2dq and lrintf share
  // round-to-nearest-even), so the dispatch is pure speed.
  const auto quant_row_bounded = [&](int64_t i, const float* arow, float lo,
                                     float hi) {
    const float scale = (hi - lo) / 127.0f;
    aeff[i] = alpha * scale;
    amineff[i] = alpha * lo;
    const float inv = scale > 0.0f ? 1.0f / scale : 0.0f;
    uint8_t* row = aq + i * row_bytes;
    for (int64_t g = 0; g < s_act; ++g) {
      const int64_t s0 = g > 0 ? seg_ends[static_cast<size_t>(g - 1)] : 0;
      const int64_t s1 = seg_ends[static_cast<size_t>(g)];
      uint8_t* seg = row + seg_quad_off[static_cast<size_t>(g)] * 4;
      int64_t idx = 0;
      if (encode_fn != nullptr) {
        encode_fn(arow + s0, s1 - s0, lo, inv, seg);
        idx = s1 - s0;
      } else {
        for (int64_t p = s0; p < s1; ++p) {
          seg[idx++] = QuantizeValueU7(arow[p], lo, inv);
        }
      }
      while (idx & 3) seg[idx++] = 0;  // pad segments to a full quad
    }
  };
  const auto quant_row = [&](int64_t i, const float* arow) {
    float lo = 0.0f, hi = 0.0f;
    if (minmax_fn != nullptr) {
      minmax_fn(arow, k, &lo, &hi);
    } else {
      for (int64_t p = 0; p < k; ++p) {
        const float v = arow[p];
        if (p == 0 || v < lo) lo = v;
        if (p == 0 || v > hi) hi = v;
      }
    }
    quant_row_bounded(i, arow, lo, hi);
  };
  // Strided fallback for op(A) columns no 8-wide transpose covers.
  const auto quant_col_scalar = [&](int64_t i) {
    float lo = 0.0f, hi = 0.0f;
    for (int64_t p = 0; p < k; ++p) {
      const float v = a[p * lda + i];
      if (p == 0 || v < lo) lo = v;
      if (p == 0 || v > hi) hi = v;
    }
    const float scale = (hi - lo) / 127.0f;
    aeff[i] = alpha * scale;
    amineff[i] = alpha * lo;
    const float inv = scale > 0.0f ? 1.0f / scale : 0.0f;
    uint8_t* row = aq + i * row_bytes;
    for (int64_t g = 0; g < s_act; ++g) {
      const int64_t s0 = g > 0 ? seg_ends[static_cast<size_t>(g - 1)] : 0;
      const int64_t s1 = seg_ends[static_cast<size_t>(g)];
      uint8_t* seg = row + seg_quad_off[static_cast<size_t>(g)] * 4;
      int64_t idx = 0;
      for (int64_t p = s0; p < s1; ++p) {
        seg[idx++] = QuantizeValueU7(a[p * lda + i], lo, inv);
      }
      while (idx & 3) seg[idx++] = 0;
    }
  };

  if (!trans_a) {
    for (int64_t i = i0; i < i1; ++i) quant_row(i, a + i * lda);
    return;
  }
  // Transposed source (the conv path quantizes op(A) COLUMNS): gather 8
  // columns at a time into contiguous scratch rows so the vector encode
  // loop applies, with the per-column min/max scan fused into the gather
  // pass; leftover columns take the strided scalar loop. Same per-element
  // math either way.
  const detail::Transpose8ColMMFn tpose_fn = detail::Avx2Transpose8ColMinMax();
  int64_t i = i0;
  if (tpose_fn != nullptr && encode_fn != nullptr && i1 - i0 >= 8 && k > 0) {
    ScratchArena& arena = ScratchArena::ForThread();
    ScratchArena::Scope scope(arena);
    float* tp = arena.Alloc(8 * k);
    float lo8[8], hi8[8];
    for (; i + 8 <= i1; i += 8) {
      tpose_fn(a + i, lda, k, tp, k, lo8, hi8);
      for (int j = 0; j < 8; ++j) {
        quant_row_bounded(i + j, tp + j * k, lo8[j], hi8[j]);
      }
    }
  }
  for (; i < i1; ++i) quant_col_scalar(i);
}

/// Number of whole segments covered by the sliced k; dies unless k lands
/// exactly on a segment boundary (slice rates do by construction).
int64_t ActiveSegments(const std::vector<int64_t>& seg_ends, int64_t k) {
  if (k == 0) return 0;
  int64_t s = 0;
  const int64_t n = static_cast<int64_t>(seg_ends.size());
  while (s < n && seg_ends[static_cast<size_t>(s)] <= k) ++s;
  MS_CHECK_MSG(s >= 1 && seg_ends[static_cast<size_t>(s - 1)] == k,
               "quantized k must land on a slice-group boundary");
  return s;
}

}  // namespace

float QuantizedPack::scale(int64_t segment, int64_t col) const {
  MS_CHECK(valid_ && segment >= 0 &&
           segment < static_cast<int64_t>(seg_ends_.size()) && col >= 0 &&
           col < cols_);
  const int64_t s = static_cast<int64_t>(seg_ends_.size());
  return scales_[static_cast<size_t>(((col / kQNr) * s + segment) * kQNr +
                                     col % kQNr)];
}

int8_t* QuantizedPack::Reserve(int64_t bytes) {
  MS_CHECK(bytes >= 0);
  if (bytes > capacity_) {
    constexpr int64_t kAlign = 64;
    storage_ = std::make_unique<int8_t[]>(static_cast<size_t>(bytes + kAlign));
    const auto addr = reinterpret_cast<uintptr_t>(storage_.get());
    const uintptr_t aligned = (addr + kAlign - 1) & ~(kAlign - 1);
    data_ = reinterpret_cast<int8_t*>(aligned);
    capacity_ = bytes;
  }
  return data_;
}

void QuantizePackB(bool trans_b, int64_t k, int64_t n, const float* b,
                   int64_t ldb, const std::vector<int64_t>& k_group_ends,
                   QuantizedPack* pack) {
  MS_CHECK(pack != nullptr && b != nullptr);
  MS_CHECK(k >= 1 && n >= 1 && ldb >= 1);
  MS_CHECK_MSG(!k_group_ends.empty() && k_group_ends.back() == k,
               "k_group_ends must partition [0, k)");
  const int64_t s_count = static_cast<int64_t>(k_group_ends.size());
  std::vector<int64_t> seg_quad_off(static_cast<size_t>(s_count) + 1, 0);
  for (int64_t g = 0; g < s_count; ++g) {
    const int64_t s0 = g > 0 ? k_group_ends[static_cast<size_t>(g - 1)] : 0;
    const int64_t s1 = k_group_ends[static_cast<size_t>(g)];
    MS_CHECK_MSG(s1 > s0, "k_group_ends must be strictly ascending");
    seg_quad_off[static_cast<size_t>(g + 1)] =
        seg_quad_off[static_cast<size_t>(g)] + (s1 - s0 + 3) / 4;
  }
  const int64_t panel_bytes = seg_quad_off.back() * 4 * kQNr;
  const int64_t n_panels = detail::CeilDiv(n, kQNr);
  const int64_t total = n_panels * panel_bytes;
  int8_t* out = pack->Reserve(total);
  pack->scales_.assign(static_cast<size_t>(n_panels * s_count * kQNr), 0.0f);
  pack->colsums_.assign(static_cast<size_t>(n_panels * s_count * kQNr), 0);

  const auto at = [&](int64_t p, int64_t j) -> float {
    return trans_b ? b[j * ldb + p] : b[p * ldb + j];
  };
  auto pack_range = [&](int64_t p0, int64_t p1) {
    for (int64_t pj = p0; pj < p1; ++pj) {
      const int64_t j0 = pj * kQNr;
      const int64_t live = std::min<int64_t>(kQNr, n - j0);
      int8_t* panel = out + pj * panel_bytes;
      float* pscales = pack->scales_.data() + pj * s_count * kQNr;
      int32_t* psums = pack->colsums_.data() + pj * s_count * kQNr;
      for (int64_t g = 0; g < s_count; ++g) {
        const int64_t s0 =
            g > 0 ? k_group_ends[static_cast<size_t>(g - 1)] : 0;
        const int64_t s1 = k_group_ends[static_cast<size_t>(g)];
        float* gs = pscales + g * kQNr;
        int32_t* gsum = psums + g * kQNr;
        float inv[kQNr];
        for (int64_t c = 0; c < live; ++c) {
          float amax = 0.0f;
          for (int64_t p = s0; p < s1; ++p) {
            const float v = std::fabs(at(p, j0 + c));
            if (v > amax) amax = v;
          }
          gs[c] = amax / 127.0f;
          inv[c] = amax > 0.0f ? 127.0f / amax : 0.0f;
        }
        for (int64_t c = live; c < kQNr; ++c) inv[c] = 0.0f;
        int8_t* seg = panel + seg_quad_off[static_cast<size_t>(g)] * 4 * kQNr;
        const int64_t quads = seg_quad_off[static_cast<size_t>(g + 1)] -
                              seg_quad_off[static_cast<size_t>(g)];
        for (int64_t p = 0; p < quads; ++p) {
          int8_t* dst = seg + p * 4 * kQNr;
          for (int64_t c = 0; c < kQNr; ++c) {
            for (int t = 0; t < 4; ++t) {
              const int64_t kk = s0 + 4 * p + t;
              const int8_t q = (c < live && kk < s1)
                                   ? QuantizeValue(at(kk, j0 + c), inv[c])
                                   : static_cast<int8_t>(0);
              dst[4 * c + t] = q;
              gsum[c] += q;  // zero-point correction operand (pads add 0)
            }
          }
        }
      }
    }
  };
  // Pure data movement: panels land in identical bytes under any
  // partition, so fan out when the matrix is big enough to care.
  if (WorthParallel(2 * k * n, n_panels)) {
    ParallelForCompute(n_panels, pack_range);
  } else {
    pack_range(0, n_panels);
  }

  pack->valid_ = true;
  pack->trans_ = trans_b;
  pack->rows_ = k;
  pack->cols_ = n;
  pack->ld_ = ldb;
  pack->src_ = b;
  pack->packed_bytes_ = total;
  pack->generation_ = WeightGeneration();
  pack->seg_ends_ = k_group_ends;
  pack->seg_quad_off_ = std::move(seg_quad_off);
  g_qpacks.fetch_add(1, std::memory_order_relaxed);
  g_qpacked_bytes.fetch_add(static_cast<uint64_t>(total),
                            std::memory_order_relaxed);
}

bool EnsureQuantizedB(bool trans_b, int64_t k, int64_t n, const float* b,
                      int64_t ldb, const std::vector<int64_t>& k_group_ends,
                      QuantizedPack* pack) {
  MS_CHECK(pack != nullptr);
  if (pack->valid_ && pack->trans_ == trans_b && pack->rows_ == k &&
      pack->cols_ == n && pack->ld_ == ldb && pack->src_ == b &&
      pack->generation_ == WeightGeneration() &&
      pack->seg_ends_ == k_group_ends) {
    g_qhits.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  QuantizePackB(trans_b, k, n, b, ldb, k_group_ends, pack);
  return true;
}

void GemmQuantizedB(bool trans_a, int64_t m, int64_t n, int64_t k,
                    float alpha, const float* a, int64_t lda,
                    const QuantizedPack& bpack, float beta, float* c,
                    int64_t ldc) {
  GemmQuantizedBEx(trans_a, m, n, k, alpha, a, lda, bpack, beta, c, ldc,
                   Epilogue{});
}

void GemmQuantizedBEx(bool trans_a, int64_t m, int64_t n, int64_t k,
                      float alpha, const float* a, int64_t lda,
                      const QuantizedPack& bpack, float beta, float* c,
                      int64_t ldc, const Epilogue& epi) {
  MS_CHECK(bpack.valid_);
  MS_CHECK_MSG(beta == 0.0f || beta == 1.0f,
               "GemmQuantizedB supports beta in {0, 1}");
  MS_CHECK(k <= bpack.rows_ && n <= bpack.cols_);
  if (m <= 0 || n <= 0) return;
  g_qgemm_calls.fetch_add(1, std::memory_order_relaxed);
  const int64_t s_act = ActiveSegments(bpack.seg_ends_, k);
  if (s_act == 0) {
    BetaMergeQEpi(m, n, beta, c, ldc, epi);
    return;
  }
  const int64_t s_count = static_cast<int64_t>(bpack.seg_ends_.size());
  const int64_t row_bytes = bpack.seg_quad_off_.back() * 4;
  const int64_t panel_bytes = row_bytes * kQNr;
  const int64_t n_panels = detail::CeilDiv(n, kQNr);
  const detail::Int8SkinnyFn kernel = ActiveInt8Kernel();
  const detail::Int8EpilogueFn epilogue = detail::Avx2Int8Epilogue();

  ScratchArena& arena = ScratchArena::ForThread();
  ScratchArena::Scope scope(arena);
  uint8_t* aq = reinterpret_cast<uint8_t*>(
      arena.Alloc(detail::CeilDiv(m * row_bytes, 4)));
  float* aeff = arena.Alloc(m);
  float* amineff = arena.Alloc(m);

  auto quant_rows = [&](int64_t i0, int64_t i1) {
    QuantizeRowsPadded(trans_a, a, lda, i0, i1, alpha, bpack.seg_ends_,
                       s_act, bpack.seg_quad_off_, row_bytes, aq, aeff,
                       amineff);
  };
  const int64_t flops = 2 * m * n * k;
  // Quantization makes ~3 passes per element (min/max, encode, and for
  // the transposed flavor a gather), so weigh it at 6 ops/element when
  // deciding to fan out.
  if (WorthParallel(6 * m * k, m)) {
    ParallelForCompute(m, quant_rows);
  } else {
    quant_rows(0, m);
  }

  auto run = [&](int64_t p0, int64_t p1) {
    alignas(64) int32_t acc[kQRowChunk * kQNr];
    float ftile[kQRowChunk * kQNr];
    for (int64_t pj = p0; pj < p1; ++pj) {
      const int8_t* panel = bpack.data_ + pj * panel_bytes;
      const float* pscales = bpack.scales_.data() + pj * s_count * kQNr;
      const int32_t* psums = bpack.colsums_.data() + pj * s_count * kQNr;
      const int64_t j0 = pj * kQNr;
      const int64_t live = std::min<int64_t>(kQNr, n - j0);
      for (int64_t i0 = 0; i0 < m; i0 += kQRowChunk) {
        const int mc = static_cast<int>(std::min<int64_t>(kQRowChunk, m - i0));
        std::fill(ftile, ftile + mc * kQNr, 0.0f);
        for (int64_t g = 0; g < s_act; ++g) {
          const int64_t off = bpack.seg_quad_off_[static_cast<size_t>(g)];
          const int64_t quads =
              bpack.seg_quad_off_[static_cast<size_t>(g + 1)] - off;
          kernel(quads, mc, aq + i0 * row_bytes + off * 4, row_bytes,
                 panel + off * 4 * kQNr, acc);
          const float* gs = pscales + g * kQNr;
          const int32_t* gsum = psums + g * kQNr;
          if (epilogue != nullptr) {
            epilogue(mc, acc, gs, gsum, aeff + i0, amineff + i0, ftile);
            continue;
          }
          for (int i = 0; i < mc; ++i) {
            const float as = aeff[i0 + i];
            const float amin = amineff[i0 + i];
            for (int cc = 0; cc < kQNr; ++cc) {
              ftile[i * kQNr + cc] +=
                  gs[cc] * (as * static_cast<float>(acc[i * kQNr + cc]) +
                            amin * static_cast<float>(gsum[cc]));
            }
          }
        }
        for (int i = 0; i < mc; ++i) {
          float* crow = c + (i0 + i) * ldc + j0;
          const float* frow = ftile + i * kQNr;
          // Plain merge, then the row-specialized epilogue over the hot
          // row — same per-element op order as the scalar EpiApply path.
          if (beta == 0.0f) {
            for (int64_t cc = 0; cc < live; ++cc) crow[cc] = frow[cc];
          } else {
            for (int64_t cc = 0; cc < live; ++cc) crow[cc] += frow[cc];
          }
          if (!epi.empty()) {
            detail::EpiApplyRow(epi, i0 + i, j0, live, crow);
          }
        }
      }
    }
  };
  if (WorthParallel(flops, n_panels)) {
    ParallelForCompute(n_panels, run);
  } else {
    run(0, n_panels);
  }
}

void GemmQuantizedWeightA(int64_t m, int64_t n, int64_t k,
                          const QuantizedPack& wpack_t, const float* b,
                          int64_t ldb, float beta, float* c, int64_t ldc) {
  GemmQuantizedWeightAEx(m, n, k, wpack_t, b, ldb, beta, c, ldc, Epilogue{});
}

void GemmQuantizedWeightAEx(int64_t m, int64_t n, int64_t k,
                            const QuantizedPack& wpack_t, const float* b,
                            int64_t ldb, float beta, float* c, int64_t ldc,
                            const Epilogue& epi) {
  MS_CHECK(wpack_t.valid_);
  MS_CHECK_MSG(beta == 0.0f || beta == 1.0f,
               "GemmQuantizedWeightA supports beta in {0, 1}");
  MS_CHECK(k <= wpack_t.rows_ && m <= wpack_t.cols_);
  if (m <= 0 || n <= 0) return;
  g_qgemm_calls.fetch_add(1, std::memory_order_relaxed);
  const int64_t s_act = ActiveSegments(wpack_t.seg_ends_, k);
  if (s_act == 0) {
    BetaMergeQEpi(m, n, beta, c, ldc, epi);
    return;
  }
  const int64_t s_count = static_cast<int64_t>(wpack_t.seg_ends_.size());
  const int64_t row_bytes = wpack_t.seg_quad_off_.back() * 4;
  const int64_t panel_bytes = row_bytes * kQNr;
  const int64_t m_panels = detail::CeilDiv(m, kQNr);
  const detail::Int8SkinnyFn kernel = ActiveInt8Kernel();
  const detail::Int8EpilogueFn epilogue = detail::Avx2Int8Epilogue();
  const detail::Transpose8ColFn tpose = detail::Avx2Transpose8Col();

  ScratchArena& arena = ScratchArena::ForThread();
  ScratchArena::Scope scope(arena);
  // "Rows" of the transposed problem are b's columns (output pixels):
  // quantize each column of b over the active k with one dynamic affine.
  uint8_t* bq = reinterpret_cast<uint8_t*>(
      arena.Alloc(detail::CeilDiv(n * row_bytes, 4)));
  float* beff = arena.Alloc(n);
  float* bmineff = arena.Alloc(n);
  auto quant_cols = [&](int64_t i0, int64_t i1) {
    QuantizeRowsPadded(/*trans_a=*/true, b, ldb, i0, i1, /*alpha=*/1.0f,
                       wpack_t.seg_ends_, s_act, wpack_t.seg_quad_off_,
                       row_bytes, bq, beff, bmineff);
  };
  const int64_t flops = 2 * m * n * k;
  // Same 6 ops/element weighting as GemmQuantizedB: the column quantize
  // streams the whole im2col matrix, which serial execution leaves as
  // the dominant cost of conv-shaped calls.
  if (WorthParallel(6 * n * k, n)) {
    ParallelForCompute(n, quant_cols);
  } else {
    quant_cols(0, n);
  }

  // Pixel chunks own disjoint column ranges of every C row, so the
  // parallel partition below writes disjoint memory.
  const int64_t n_chunks = detail::CeilDiv(n, kQRowChunk);
  auto run = [&](int64_t ch0, int64_t ch1) {
    alignas(64) int32_t acc[kQRowChunk * kQNr];
    float ftile[kQRowChunk * kQNr];
    for (int64_t chunk = ch0; chunk < ch1; ++chunk) {
      const int64_t i0 = chunk * kQRowChunk;
      const int mc = static_cast<int>(std::min<int64_t>(kQRowChunk, n - i0));
      for (int64_t pj = 0; pj < m_panels; ++pj) {
        const int8_t* panel = wpack_t.data_ + pj * panel_bytes;
        const float* pscales = wpack_t.scales_.data() + pj * s_count * kQNr;
        const int32_t* psums =
            wpack_t.colsums_.data() + pj * s_count * kQNr;
        const int64_t j0 = pj * kQNr;
        const int64_t live = std::min<int64_t>(kQNr, m - j0);
        std::fill(ftile, ftile + mc * kQNr, 0.0f);
        for (int64_t g = 0; g < s_act; ++g) {
          const int64_t off = wpack_t.seg_quad_off_[static_cast<size_t>(g)];
          const int64_t quads =
              wpack_t.seg_quad_off_[static_cast<size_t>(g + 1)] - off;
          kernel(quads, mc, bq + i0 * row_bytes + off * 4, row_bytes,
                 panel + off * 4 * kQNr, acc);
          const float* gs = pscales + g * kQNr;
          const int32_t* gsum = psums + g * kQNr;
          if (epilogue != nullptr) {
            epilogue(mc, acc, gs, gsum, beff + i0, bmineff + i0, ftile);
            continue;
          }
          for (int i = 0; i < mc; ++i) {
            const float bs = beff[i0 + i];
            const float bmin = bmineff[i0 + i];
            for (int cc = 0; cc < kQNr; ++cc) {
              ftile[i * kQNr + cc] +=
                  gs[cc] * (bs * static_cast<float>(acc[i * kQNr + cc]) +
                            bmin * static_cast<float>(gsum[cc]));
            }
          }
        }
        // Transposed merge: ftile rows are pixels, lanes are W rows (C's
        // rows): C[j0+cc][i0+i] = ftile[i][cc]. Full 8x8 blocks of the
        // overwrite flavor go through the vector transpose straight into
        // C; everything else (beta == 1, ragged edges) stays scalar —
        // same element moves either way. The overwrite epilogue applies in
        // ftile before the transpose (per element, same float either
        // side); the accumulate flavor applies at the scalar merge below.
        if (!epi.empty() && beta == 0.0f) {
          // ftile axes are swapped vs C (rows are pixels / C columns), so
          // flip per_row and the indexing collapses to the same idx per
          // element: per_row bias follows the cc axis (C rows, offset
          // j0), per-column follows the broadcast i0 + i.
          Epilogue epi_t = epi;
          epi_t.per_row = !epi.per_row;
          for (int i = 0; i < mc; ++i) {
            detail::EpiApplyRow(epi_t, i0 + i, j0, live, ftile + i * kQNr);
          }
        }
        int64_t cc0 = 0;
        if (tpose != nullptr && beta == 0.0f) {
          for (; cc0 + 8 <= live; cc0 += 8) {
            int i = 0;
            for (; i + 8 <= mc; i += 8) {
              tpose(ftile + i * kQNr + cc0, kQNr, 8,
                    c + (j0 + cc0) * ldc + i0 + i, ldc);
            }
            for (; i < mc; ++i) {
              for (int64_t cc = cc0; cc < cc0 + 8; ++cc) {
                c[(j0 + cc) * ldc + i0 + i] = ftile[i * kQNr + cc];
              }
            }
          }
        }
        for (int64_t cc = cc0; cc < live; ++cc) {
          float* crow = c + (j0 + cc) * ldc + i0;
          if (beta == 0.0f) {
            for (int i = 0; i < mc; ++i) crow[i] = ftile[i * kQNr + cc];
          } else {
            for (int i = 0; i < mc; ++i) crow[i] += ftile[i * kQNr + cc];
            if (!epi.empty()) {
              // crow runs along C columns with the C row fixed at
              // j0 + cc, which is exactly EpiApplyRow's contract.
              detail::EpiApplyRow(epi, j0 + cc, i0, mc, crow);
            }
          }
        }
      }
    }
  };
  if (WorthParallel(flops, n_chunks)) {
    ParallelForCompute(n_chunks, run);
  } else {
    run(0, n_chunks);
  }
}

bool GemmHasInt8Avx2() { return detail::Avx2Int8Kernel() != nullptr; }

bool GemmHasInt8Vnni() { return detail::VnniInt8Kernel() != nullptr; }

// ---------------------------------------------------------------------------

QuantStats GetQuantStats() {
  QuantStats s;
  s.packs = g_qpacks.load(std::memory_order_relaxed);
  s.packed_bytes = g_qpacked_bytes.load(std::memory_order_relaxed);
  s.hits = g_qhits.load(std::memory_order_relaxed);
  s.quantized_calls = g_qgemm_calls.load(std::memory_order_relaxed);
  return s;
}

uint64_t TotalQuantPackCount() {
  return g_qpacks.load(std::memory_order_relaxed);
}

void PublishQuantMetrics() {
  const QuantStats s = GetQuantStats();
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetGauge("ms_quant_pack_count")->Set(static_cast<double>(s.packs));
  registry.GetGauge("ms_quant_pack_bytes")
      ->Set(static_cast<double>(s.packed_bytes));
  registry.GetGauge("ms_quant_pack_hits")->Set(static_cast<double>(s.hits));
  registry.GetGauge("ms_quant_gemm_calls")
      ->Set(static_cast<double>(s.quantized_calls));
}

}  // namespace ops
}  // namespace ms
