// Dense row-major float tensor. The single data container used throughout
// the library: model parameters, activations, gradients and datasets.
#ifndef MODELSLICING_TENSOR_TENSOR_H_
#define MODELSLICING_TENSOR_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <numeric>
#include <string>
#include <vector>

#include "src/util/rng.h"
#include "src/util/status.h"

namespace ms {

/// \brief N-dimensional row-major float32 tensor with value semantics.
///
/// Kept deliberately simple: contiguous storage, explicit shape, no views or
/// broadcasting machinery. Layers slice by operating on index prefixes
/// (contiguous groups), which maps directly onto row-major layout.
class Tensor {
 public:
  Tensor() = default;

  explicit Tensor(std::vector<int64_t> shape) : shape_(std::move(shape)) {
    data_.assign(static_cast<size_t>(NumElements(shape_)), 0.0f);
  }

  Tensor(std::initializer_list<int64_t> shape)
      : Tensor(std::vector<int64_t>(shape)) {}

  static Tensor FromVector(std::vector<int64_t> shape,
                           std::vector<float> values) {
    Tensor t;
    MS_CHECK(NumElements(shape) == static_cast<int64_t>(values.size()));
    t.shape_ = std::move(shape);
    t.data_ = std::move(values);
    return t;
  }

  static Tensor Zeros(std::vector<int64_t> shape) {
    return Tensor(std::move(shape));
  }

  static Tensor Full(std::vector<int64_t> shape, float value) {
    Tensor t(std::move(shape));
    t.Fill(value);
    return t;
  }

  static Tensor Randn(std::vector<int64_t> shape, Rng* rng,
                      float stddev = 1.0f) {
    Tensor t(std::move(shape));
    for (auto& v : t.data_) {
      v = static_cast<float>(rng->Gaussian(0.0, stddev));
    }
    return t;
  }

  static Tensor RandUniform(std::vector<int64_t> shape, Rng* rng, float lo,
                            float hi) {
    Tensor t(std::move(shape));
    for (auto& v : t.data_) v = static_cast<float>(rng->Uniform(lo, hi));
    return t;
  }

  static int64_t NumElements(const std::vector<int64_t>& shape) {
    int64_t n = 1;
    for (int64_t d : shape) {
      MS_CHECK(d >= 0);
      n *= d;
    }
    return n;
  }

  const std::vector<int64_t>& shape() const { return shape_; }
  int ndim() const { return static_cast<int>(shape_.size()); }
  int64_t dim(int i) const {
    MS_CHECK(i >= 0 && i < ndim());
    return shape_[static_cast<size_t>(i)];
  }
  int64_t size() const { return static_cast<int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& at(int64_t i) {
    MS_CHECK(i >= 0 && i < size());
    return data_[static_cast<size_t>(i)];
  }
  float at(int64_t i) const {
    MS_CHECK(i >= 0 && i < size());
    return data_[static_cast<size_t>(i)];
  }

  /// Unchecked flat accessors for hot loops.
  float& operator[](int64_t i) { return data_[static_cast<size_t>(i)]; }
  float operator[](int64_t i) const { return data_[static_cast<size_t>(i)]; }

  /// 2-D accessor (row, col) for matrices.
  float& at2(int64_t r, int64_t c) {
    return data_[static_cast<size_t>(r * shape_[1] + c)];
  }
  float at2(int64_t r, int64_t c) const {
    return data_[static_cast<size_t>(r * shape_[1] + c)];
  }

  void Fill(float value) { std::fill(data_.begin(), data_.end(), value); }
  void Zero() { Fill(0.0f); }

  /// Reinterpret with a new shape of identical element count.
  Tensor Reshaped(std::vector<int64_t> new_shape) const {
    MS_CHECK(NumElements(new_shape) == size());
    Tensor t;
    t.shape_ = std::move(new_shape);
    t.data_ = data_;
    return t;
  }

  /// In-place reshape (no data movement).
  void Reshape(std::vector<int64_t> new_shape) {
    MS_CHECK(NumElements(new_shape) == size());
    shape_ = std::move(new_shape);
  }

  /// Take on `shape`, reallocating only when the element count grows past
  /// the current capacity. Existing values are not preserved. Lets
  /// per-step caches (RNN StepCache, conv activations) be reused across
  /// iterations without heap churn once warmed up.
  void EnsureShape(std::vector<int64_t> shape) {
    const int64_t n = NumElements(shape);
    shape_ = std::move(shape);
    if (n != size()) data_.resize(static_cast<size_t>(n));
  }

  bool SameShape(const Tensor& other) const { return shape_ == other.shape_; }

  std::string ShapeString() const {
    std::string s = "[";
    for (size_t i = 0; i < shape_.size(); ++i) {
      if (i > 0) s += ", ";
      s += std::to_string(shape_[i]);
    }
    return s + "]";
  }

 private:
  std::vector<int64_t> shape_;
  std::vector<float> data_;
};

}  // namespace ms

#endif  // MODELSLICING_TENSOR_TENSOR_H_
