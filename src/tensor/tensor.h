// Dense row-major float tensor. The single data container used throughout
// the library: model parameters, activations, gradients and datasets.
#ifndef MODELSLICING_TENSOR_TENSOR_H_
#define MODELSLICING_TENSOR_TENSOR_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "src/tensor/activation_arena.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace ms {

/// \brief N-dimensional row-major float32 tensor with value semantics.
///
/// Kept deliberately simple: contiguous storage, explicit shape, no views or
/// broadcasting machinery. Layers slice by operating on index prefixes
/// (contiguous groups), which maps directly onto row-major layout.
///
/// Storage comes from the heap, or — when the calling thread is inside an
/// ActivationScope — from the bound activation arena, so a warmed serving
/// replica's forward pass performs zero heap allocations. A tensor carved
/// from an arena holds a shared_ptr to the arena core: escaping the scope
/// is safe, and the buffer is returned to the arena (from any thread) when
/// the tensor dies or reallocates. Copy assignment reuses the existing
/// buffer whenever the capacity suffices.
class Tensor {
 public:
  Tensor() = default;

  explicit Tensor(std::vector<int64_t> shape) {
    shape_ = std::move(shape);
    Allocate(NumElements(shape_));
    if (size_ > 0) {
      fill_events_.fetch_add(1, std::memory_order_relaxed);
      std::fill(ptr_, ptr_ + size_, 0.0f);
    }
  }

  Tensor(std::initializer_list<int64_t> shape)
      : Tensor(std::vector<int64_t>(shape)) {}

  ~Tensor() { Release(); }

  Tensor(const Tensor& other) { CopyFrom(other); }

  Tensor& operator=(const Tensor& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }

  Tensor(Tensor&& other) noexcept
      : shape_(std::move(other.shape_)),
        heap_(std::move(other.heap_)),
        owner_(std::move(other.owner_)),
        ptr_(other.ptr_),
        size_(other.size_),
        cap_(other.cap_) {
    other.ptr_ = nullptr;
    other.size_ = 0;
    other.cap_ = 0;
    other.shape_.clear();
  }

  Tensor& operator=(Tensor&& other) noexcept {
    if (this != &other) {
      Release();
      shape_ = std::move(other.shape_);
      heap_ = std::move(other.heap_);
      owner_ = std::move(other.owner_);
      ptr_ = other.ptr_;
      size_ = other.size_;
      cap_ = other.cap_;
      other.ptr_ = nullptr;
      other.size_ = 0;
      other.cap_ = 0;
      other.shape_.clear();
    }
    return *this;
  }

  /// A tensor whose contents are NOT initialized — for outputs every
  /// element of which the producing kernel overwrites (fused GEMM
  /// epilogues write the whole C), killing the zero-fill pass.
  static Tensor Uninit(std::vector<int64_t> shape) {
    Tensor t;
    t.shape_ = std::move(shape);
    t.Allocate(NumElements(t.shape_));
    return t;
  }

  static Tensor FromVector(std::vector<int64_t> shape,
                           std::vector<float> values) {
    MS_CHECK(NumElements(shape) == static_cast<int64_t>(values.size()));
    Tensor t = Uninit(std::move(shape));
    std::copy(values.begin(), values.end(), t.ptr_);
    return t;
  }

  static Tensor Zeros(std::vector<int64_t> shape) {
    return Tensor(std::move(shape));
  }

  static Tensor Full(std::vector<int64_t> shape, float value) {
    Tensor t = Uninit(std::move(shape));
    t.Fill(value);
    return t;
  }

  static Tensor Randn(std::vector<int64_t> shape, Rng* rng,
                      float stddev = 1.0f) {
    Tensor t = Uninit(std::move(shape));
    for (int64_t i = 0; i < t.size_; ++i) {
      t.ptr_[i] = static_cast<float>(rng->Gaussian(0.0, stddev));
    }
    return t;
  }

  static Tensor RandUniform(std::vector<int64_t> shape, Rng* rng, float lo,
                            float hi) {
    Tensor t = Uninit(std::move(shape));
    for (int64_t i = 0; i < t.size_; ++i) {
      t.ptr_[i] = static_cast<float>(rng->Uniform(lo, hi));
    }
    return t;
  }

  static int64_t NumElements(const std::vector<int64_t>& shape) {
    int64_t n = 1;
    for (int64_t d : shape) {
      MS_CHECK(d >= 0);
      n *= d;
    }
    return n;
  }

  const std::vector<int64_t>& shape() const { return shape_; }
  int ndim() const { return static_cast<int>(shape_.size()); }
  int64_t dim(int i) const {
    MS_CHECK(i >= 0 && i < ndim());
    return shape_[static_cast<size_t>(i)];
  }
  int64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  float* data() { return ptr_; }
  const float* data() const { return ptr_; }

  float& at(int64_t i) {
    MS_CHECK(i >= 0 && i < size());
    return ptr_[i];
  }
  float at(int64_t i) const {
    MS_CHECK(i >= 0 && i < size());
    return ptr_[i];
  }

  /// Unchecked flat accessors for hot loops.
  float& operator[](int64_t i) { return ptr_[i]; }
  float operator[](int64_t i) const { return ptr_[i]; }

  /// 2-D accessor (row, col) for matrices.
  float& at2(int64_t r, int64_t c) { return ptr_[r * shape_[1] + c]; }
  float at2(int64_t r, int64_t c) const { return ptr_[r * shape_[1] + c]; }

  void Fill(float value) {
    if (size_ > 0) fill_events_.fetch_add(1, std::memory_order_relaxed);
    std::fill(ptr_, ptr_ + size_, value);
  }
  void Zero() { Fill(0.0f); }

  /// Reinterpret with a new shape of identical element count.
  Tensor Reshaped(std::vector<int64_t> new_shape) const {
    MS_CHECK(NumElements(new_shape) == size());
    Tensor t(*this);
    t.shape_ = std::move(new_shape);
    return t;
  }

  /// In-place reshape (no data movement).
  void Reshape(std::vector<int64_t> new_shape) {
    MS_CHECK(NumElements(new_shape) == size());
    shape_ = std::move(new_shape);
  }

  /// Take on `shape`, reallocating only when the element count grows past
  /// the current capacity. Existing values are NOT preserved and the new
  /// contents are unspecified — callers overwrite everything (that is the
  /// point: per-step caches like the RNN StepCache reuse their buffers
  /// across iterations with neither heap churn nor a redundant zero-fill;
  /// TotalFillEvents() is the hook the regression test watches).
  void EnsureShape(std::vector<int64_t> shape) {
    const int64_t n = NumElements(shape);
    shape_ = std::move(shape);
    if (n > cap_) {
      Release();
      Allocate(n);
    } else {
      size_ = n;
    }
  }

  bool SameShape(const Tensor& other) const { return shape_ == other.shape_; }

  std::string ShapeString() const {
    std::string s = "[";
    for (size_t i = 0; i < shape_.size(); ++i) {
      if (i > 0) s += ", ";
      s += std::to_string(shape_[i]);
    }
    return s + "]";
  }

  /// Process-wide count of whole-buffer fills (zeroing constructions plus
  /// Fill/Zero calls). Steady-state fully-overwritten paths must keep it
  /// flat; scratch_test.cc asserts exactly that.
  static uint64_t TotalFillEvents() {
    return fill_events_.load(std::memory_order_relaxed);
  }

 private:
  /// Binds fresh storage of `n` floats: from the thread's bound activation
  /// arena when one is in scope, else the heap. Contents unspecified.
  void Allocate(int64_t n) {
    if (n > 0) {
      const std::shared_ptr<ArenaCore>& arena = CurrentActivationArena();
      if (arena != nullptr) {
        owner_ = arena;
        ptr_ = owner_->Alloc(n);
      } else {
        heap_ = std::make_unique<float[]>(static_cast<size_t>(n));
        ptr_ = heap_.get();
      }
    }
    size_ = n;
    cap_ = n;
  }

  void Release() {
    if (owner_ != nullptr) {
      owner_->Free(ptr_);
      owner_.reset();
    }
    heap_.reset();
    ptr_ = nullptr;
    size_ = 0;
    cap_ = 0;
  }

  void CopyFrom(const Tensor& other) {
    if (other.size_ > cap_) {
      Release();
      Allocate(other.size_);
    } else {
      size_ = other.size_;
    }
    shape_ = other.shape_;
    if (size_ > 0) std::copy(other.ptr_, other.ptr_ + size_, ptr_);
  }

  static inline std::atomic<uint64_t> fill_events_{0};

  std::vector<int64_t> shape_;
  std::unique_ptr<float[]> heap_;       // heap-owned storage (may be null)
  std::shared_ptr<ArenaCore> owner_;    // arena-owned storage (may be null)
  float* ptr_ = nullptr;
  int64_t size_ = 0;
  int64_t cap_ = 0;
};

}  // namespace ms

#endif  // MODELSLICING_TENSOR_TENSOR_H_
