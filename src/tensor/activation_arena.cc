// Activation arena implementation. See activation_arena.h for the
// lifetime/binding story.
#include "src/tensor/activation_arena.h"

#include <algorithm>
#include <atomic>

#include "src/util/status.h"

namespace ms {
namespace {

std::atomic<uint64_t> g_slab_allocs{0};

thread_local std::shared_ptr<ArenaCore> t_current_arena;  // NOLINT

}  // namespace

float* ArenaCore::Alloc(int64_t floats) {
  MS_CHECK(floats >= 0);
  const int64_t need = RoundUp(std::max<int64_t>(floats, 1));
  std::lock_guard<std::mutex> lock(mu_);
  float* p = AllocLocked(need);
  Live entry;
  entry.floats = need;
  for (size_t s = 0; s < slabs_.size(); ++s) {
    const Slab& slab = slabs_[s];
    if (p >= slab.aligned && p < slab.aligned + slab.floats) {
      entry.slab = static_cast<int32_t>(s);
      break;
    }
  }
  live_floats_ += need;
  peak_live_floats_ = std::max(peak_live_floats_, live_floats_);
  if (recording_) {
    entry.event = static_cast<int64_t>(events_.size());
    ArenaEvent ev;
    ev.id = next_id_++;
    ev.floats = need;
    ev.alloc_tick = tick_++;
    events_.push_back(ev);
  }
  live_.emplace_back(p, entry);
  return p;
}

float* ArenaCore::AllocLocked(int64_t need) {
  // Best fit: the smallest free span that holds the request. Ties go to
  // the lower address, which keeps steady-state placements deterministic.
  size_t best = free_.size();
  for (size_t i = 0; i < free_.size(); ++i) {
    if (free_[i].floats < need) continue;
    if (best == free_.size() || free_[i].floats < free_[best].floats) best = i;
  }
  if (best == free_.size()) {
    AddSlab(need);
    for (size_t i = 0; i < free_.size(); ++i) {
      if (free_[i].floats >= need &&
          (best == free_.size() || free_[i].floats < free_[best].floats)) {
        best = i;
      }
    }
    MS_CHECK(best != free_.size());
  }
  Span& span = free_[best];
  float* p = span.ptr;
  if (span.floats - need >= kMinSplit) {
    span.ptr += need;
    span.floats -= need;
  } else {
    free_.erase(free_.begin() + static_cast<int64_t>(best));
  }
  return p;
}

void ArenaCore::AddSlab(int64_t need) {
  int64_t cap = std::max(kMinSlab, RoundUp(need));
  if (!slabs_.empty()) cap = std::max(cap, slabs_.back().floats);
  Slab slab;
  slab.storage =
      std::make_unique<float[]>(static_cast<size_t>(cap + kAlign));
  const auto addr = reinterpret_cast<uintptr_t>(slab.storage.get());
  const uintptr_t aligned =
      (addr + kAlign * sizeof(float) - 1) & ~(kAlign * sizeof(float) - 1);
  slab.aligned = reinterpret_cast<float*>(aligned);
  slab.floats = cap;
  Span span;
  span.ptr = slab.aligned;
  span.floats = cap;
  span.slab = static_cast<int32_t>(slabs_.size());
  slabs_.push_back(std::move(slab));
  free_.push_back(span);
  slab_floats_ += cap;
  g_slab_allocs.fetch_add(1, std::memory_order_relaxed);
}

void ArenaCore::Free(float* p) {
  if (p == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  size_t idx = live_.size();
  for (size_t i = 0; i < live_.size(); ++i) {
    if (live_[i].first == p) {
      idx = i;
      break;
    }
  }
  MS_CHECK_MSG(idx != live_.size(), "ArenaCore::Free of unknown pointer");
  const Live entry = live_[idx].second;
  live_[idx] = live_.back();
  live_.pop_back();
  live_floats_ -= entry.floats;
  if (recording_ && entry.event >= 0) {
    events_[static_cast<size_t>(entry.event)].free_tick = tick_++;
  }
  // Insert in address order and coalesce with same-slab neighbors.
  Span span;
  span.ptr = p;
  span.floats = entry.floats;
  span.slab = entry.slab;
  size_t pos = 0;
  while (pos < free_.size() && free_[pos].ptr < p) ++pos;
  if (pos > 0) {
    Span& prev = free_[pos - 1];
    if (prev.slab == span.slab && prev.ptr + prev.floats == span.ptr) {
      prev.floats += span.floats;
      if (pos < free_.size()) {
        Span& next = free_[pos];
        if (next.slab == prev.slab && prev.ptr + prev.floats == next.ptr) {
          prev.floats += next.floats;
          free_.erase(free_.begin() + static_cast<int64_t>(pos));
        }
      }
      return;
    }
  }
  if (pos < free_.size()) {
    Span& next = free_[pos];
    if (next.slab == span.slab && span.ptr + span.floats == next.ptr) {
      next.ptr = span.ptr;
      next.floats += span.floats;
      return;
    }
  }
  free_.insert(free_.begin() + static_cast<int64_t>(pos), span);
}

void ArenaCore::Reserve(int64_t floats) {
  if (floats <= 0) return;
  const int64_t need = RoundUp(floats);
  std::lock_guard<std::mutex> lock(mu_);
  for (const Span& span : free_) {
    if (span.floats >= need) return;
  }
  AddSlab(need);
}

void ArenaCore::StartRecording() {
  std::lock_guard<std::mutex> lock(mu_);
  recording_ = true;
  tick_ = 0;
  next_id_ = 0;
  events_.clear();
}

std::vector<ArenaEvent> ArenaCore::TakeRecording() {
  std::lock_guard<std::mutex> lock(mu_);
  recording_ = false;
  for (auto& kv : live_) kv.second.event = -1;
  return std::move(events_);
}

int64_t ArenaCore::live_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_floats_ * static_cast<int64_t>(sizeof(float));
}

int64_t ArenaCore::peak_live_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_live_floats_ * static_cast<int64_t>(sizeof(float));
}

int64_t ArenaCore::slab_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slab_floats_ * static_cast<int64_t>(sizeof(float));
}

uint64_t ArenaCore::TotalSlabAllocs() {
  return g_slab_allocs.load(std::memory_order_relaxed);
}

ActivationScope::ActivationScope(const ActivationArena& arena)
    : prev_(t_current_arena) {
  t_current_arena = arena.core();
}

ActivationScope::~ActivationScope() { t_current_arena = prev_; }

const std::shared_ptr<ArenaCore>& CurrentActivationArena() {
  return t_current_arena;
}

}  // namespace ms
