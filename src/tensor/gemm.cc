// Packed, cache-blocked, thread-parallel GEMM driver. See gemm.h for the
// determinism contract and DESIGN.md "Kernel layer" for the layout.
//
// Structure per call (above the tiny-problem GemmRef fallback):
//   1. pack op(A) row bands (kMC rows) into panel-major buffers with alpha
//      pre-applied and rows zero-padded to the microkernel height,
//   2. pack op(B) into nr-wide column panels, zero-padded,
//   3. walk the fixed (band x band) grid of C; each cell runs the
//      microkernel over its tiles and merges into its disjoint C region.
// Phases 1-3 each ParallelFor over the compute pool; every task writes a
// disjoint output range, so results are bitwise independent of the
// partition. This file is compiled with -ffp-contract=off so the portable
// kernel, reference, and skinny kernel keep the exact mul+add sequence on
// any -march. The packing/merge helpers and the block constants live in
// gemm_internal.h so prepack.cc produces panel-compatible buffers.
#include "src/tensor/gemm.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>

#include "src/tensor/gemm_internal.h"
#include "src/tensor/scratch.h"
#include "src/util/thread_pool.h"

namespace ms {
namespace ops {
namespace {

// ---------------------------------------------------------------------------
// Process-wide compute pool (MS_NUM_THREADS override; 1 disables it).

std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool_storage;           // guarded by g_pool_mu
std::atomic<ThreadPool*> g_pool{nullptr};
std::atomic<int> g_threads{0};                        // 0 = uninitialized

int EnvThreads() {
  if (const char* env = std::getenv("MS_NUM_THREADS")) {
    const int v = std::atoi(env);
    if (v >= 1) return v;
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

void InitPoolOnce() {
  if (g_threads.load(std::memory_order_acquire) != 0) return;
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (g_threads.load(std::memory_order_relaxed) != 0) return;
  const int t = EnvThreads();
  if (t > 1) {
    g_pool_storage = std::make_unique<ThreadPool>(t);
    g_pool.store(g_pool_storage.get(), std::memory_order_release);
  }
  g_threads.store(t, std::memory_order_release);
}

ThreadPool* Pool() {
  InitPoolOnce();
  return g_pool.load(std::memory_order_acquire);
}

// Portable register-tiled microkernel; the compiler vectorizes the NR
// loop. Separate mul and add (this TU builds with -ffp-contract=off), so
// every element sees the exact acc += (alpha*a)*b sequence of the
// portable GemmRef.
template <int MR, int NR>
void MicroKernelPortable(int64_t k, const float* ap, const float* bp,
                         float* acc) {
  float c[MR][NR] = {};
  for (int64_t p = 0; p < k; ++p) {
    for (int i = 0; i < MR; ++i) {
      const float av = ap[i];
      for (int j = 0; j < NR; ++j) c[i][j] += av * bp[j];
    }
    ap += MR;
    bp += NR;
  }
  for (int i = 0; i < MR; ++i) {
    for (int j = 0; j < NR; ++j) acc[i * NR + j] = c[i][j];
  }
}

// Portable skinny-M kernel: op(A) rows are read strided from the caller's
// matrix (no packing), alpha rounds once into the broadcast value — the
// same t_p = (alpha*a)*b mul+add sequence as MicroKernelPortable.
template <int NR>
void SkinnyKernelPortable(int64_t k, int m, bool trans_a, const float* a,
                          int64_t lda, float alpha, const float* bp,
                          float* acc) {
  float c[detail::kMaxMr][NR] = {};
  for (int64_t p = 0; p < k; ++p) {
    const float* brow = bp + p * NR;
    for (int i = 0; i < m; ++i) {
      const float av =
          alpha * (trans_a ? a[p * lda + i] : a[i * lda + p]);
      for (int j = 0; j < NR; ++j) c[i][j] += av * brow[j];
    }
  }
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < NR; ++j) acc[i * NR + j] = c[i][j];
  }
}

void GemmRefPortable(bool trans_a, bool trans_b, int64_t m, int64_t n,
                     int64_t k, float alpha, const float* a, int64_t lda,
                     const float* b, int64_t ldb, float beta, float* c,
                     int64_t ldc) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) {
        const float av = trans_a ? a[p * lda + i] : a[i * lda + p];
        const float bv = trans_b ? b[j * ldb + p] : b[p * ldb + j];
        acc += (alpha * av) * bv;
      }
      float* cij = c + i * ldc + j;
      *cij = (beta == 0.0f) ? acc
                            : (beta == 1.0f ? *cij + acc
                                            : beta * *cij + acc);
    }
  }
}

}  // namespace

namespace detail {

const MicroKernelDesc& ActiveKernel() {
  static const MicroKernelDesc desc = [] {
    if (const MicroKernelDesc* avx = Avx2Kernel()) {
      return *avx;
    }
    return MicroKernelDesc{4, 8, &MicroKernelPortable<4, 8>,
                           &GemmRefPortable, &SkinnyKernelPortable<8>, 8};
  }();
  return desc;
}

// ---------------------------------------------------------------------------
// Packing. alpha is applied to A here (rounded once, matching the
// reference's (alpha*a)*b order); padding rows/cols are zero so padded
// lanes never contaminate live outputs.

void PackABand(bool trans_a, const float* a, int64_t lda, int64_t i0,
               int64_t rows, int64_t k, float alpha, int mr, float* out) {
  for (int64_t base = 0; base < rows; base += mr) {
    const int64_t live = std::min<int64_t>(mr, rows - base);
    float* dst = out + (base / mr) * k * mr;
    if (!trans_a) {
      for (int64_t ii = 0; ii < live; ++ii) {
        const float* src = a + (i0 + base + ii) * lda;
        for (int64_t p = 0; p < k; ++p) dst[p * mr + ii] = alpha * src[p];
      }
    } else {
      // A is stored (K, M): a[p * lda + i].
      for (int64_t p = 0; p < k; ++p) {
        const float* src = a + p * lda + i0 + base;
        for (int64_t ii = 0; ii < live; ++ii) {
          dst[p * mr + ii] = alpha * src[ii];
        }
      }
    }
    for (int64_t ii = live; ii < mr; ++ii) {
      for (int64_t p = 0; p < k; ++p) dst[p * mr + ii] = 0.0f;
    }
  }
}

void PackBPanel(bool trans_b, const float* b, int64_t ldb, int64_t j0,
                int64_t cols, int64_t k, int nr, float* dst) {
  if (!trans_b) {
    // B is stored (K, N): b[p * ldb + j].
    for (int64_t p = 0; p < k; ++p) {
      const float* src = b + p * ldb + j0;
      float* row = dst + p * nr;
      for (int64_t jj = 0; jj < cols; ++jj) row[jj] = src[jj];
      for (int64_t jj = cols; jj < nr; ++jj) row[jj] = 0.0f;
    }
  } else {
    // B is stored (N, K): b[j * ldb + p].
    for (int64_t jj = 0; jj < cols; ++jj) {
      const float* src = b + (j0 + jj) * ldb;
      for (int64_t p = 0; p < k; ++p) dst[p * nr + jj] = src[p];
    }
    for (int64_t jj = cols; jj < nr; ++jj) {
      for (int64_t p = 0; p < k; ++p) dst[p * nr + jj] = 0.0f;
    }
  }
}

void MergeTile(const float* acc, int nr, int64_t i0, int64_t rows,
               int64_t j0, int64_t cols, float beta, float* c, int64_t ldc) {
  for (int64_t ii = 0; ii < rows; ++ii) {
    const float* arow = acc + ii * nr;
    float* crow = c + (i0 + ii) * ldc + j0;
    if (beta == 0.0f) {
      for (int64_t jj = 0; jj < cols; ++jj) crow[jj] = arow[jj];
    } else if (beta == 1.0f) {
      for (int64_t jj = 0; jj < cols; ++jj) crow[jj] += arow[jj];
    } else {
      for (int64_t jj = 0; jj < cols; ++jj) {
        crow[jj] = beta * crow[jj] + arow[jj];
      }
    }
  }
}

// Merge + epilogue in one pass over the tile, fully specialized on the
// descriptor config so the hot loops carry no per-element branches and
// stay vectorizable (acc never aliases C — it is the kernel's private
// accumulator — and the Epilogue vectors must not alias C either, per
// the descriptor contract). Per-element op order is exactly the scalar
// path's: beta merge, bias, scale-shift, activation. This TU builds with
// -ffp-contract=off, so none of those steps contract.
template <bool kBias, bool kScale, bool kPerRow, EpiAct Act>
void MergeTileEpiT(const float* __restrict__ acc, int nr, int64_t i0,
                   int64_t rows, int64_t j0, int64_t cols, float beta,
                   float* c, int64_t ldc, const Epilogue& epi) {
  const float* __restrict__ bias_v =
      kBias && !kPerRow ? epi.bias + j0 : nullptr;
  const float* __restrict__ scale_v =
      kScale && !kPerRow ? epi.scale + j0 : nullptr;
  const float* __restrict__ shift_v =
      kScale && !kPerRow ? epi.shift + j0 : nullptr;
  for (int64_t ii = 0; ii < rows; ++ii) {
    const float* __restrict__ arow = acc + ii * nr;
    float* __restrict__ crow = c + (i0 + ii) * ldc + j0;
    const int64_t i = i0 + ii;
    const float bias_c = kBias && kPerRow ? epi.bias[i] : 0.0f;
    const float scale_c = kScale && kPerRow ? epi.scale[i] : 0.0f;
    const float shift_c = kScale && kPerRow ? epi.shift[i] : 0.0f;
    auto apply = [&](int64_t jj, float x) {
      if constexpr (kBias) {
        if constexpr (kPerRow) {
          x += bias_c;
        } else {
          x += bias_v[jj];
        }
      }
      if constexpr (kScale) {
        if constexpr (kPerRow) {
          x = x * scale_c + shift_c;
        } else {
          x = x * scale_v[jj] + shift_v[jj];
        }
      }
      return EpiActApplyCT<Act>(x);
    };
    if (beta == 0.0f) {
      for (int64_t jj = 0; jj < cols; ++jj) crow[jj] = apply(jj, arow[jj]);
    } else if (beta == 1.0f) {
      for (int64_t jj = 0; jj < cols; ++jj) {
        crow[jj] = apply(jj, crow[jj] + arow[jj]);
      }
    } else {
      for (int64_t jj = 0; jj < cols; ++jj) {
        crow[jj] = apply(jj, beta * crow[jj] + arow[jj]);
      }
    }
  }
}

template <bool kBias, bool kScale, bool kPerRow>
void MergeTileEpiAct(const float* acc, int nr, int64_t i0, int64_t rows,
                     int64_t j0, int64_t cols, float beta, float* c,
                     int64_t ldc, const Epilogue& epi) {
  switch (epi.act) {
    case EpiAct::kRelu:
      MergeTileEpiT<kBias, kScale, kPerRow, EpiAct::kRelu>(
          acc, nr, i0, rows, j0, cols, beta, c, ldc, epi);
      break;
    case EpiAct::kSigmoid:
      MergeTileEpiT<kBias, kScale, kPerRow, EpiAct::kSigmoid>(
          acc, nr, i0, rows, j0, cols, beta, c, ldc, epi);
      break;
    case EpiAct::kTanh:
      MergeTileEpiT<kBias, kScale, kPerRow, EpiAct::kTanh>(
          acc, nr, i0, rows, j0, cols, beta, c, ldc, epi);
      break;
    case EpiAct::kNone:
      MergeTileEpiT<kBias, kScale, kPerRow, EpiAct::kNone>(
          acc, nr, i0, rows, j0, cols, beta, c, ldc, epi);
      break;
  }
}

void MergeTileEpi(const float* acc, int nr, int64_t i0, int64_t rows,
                  int64_t j0, int64_t cols, float beta, float* c,
                  int64_t ldc, const Epilogue& epi) {
  // One dispatch per tile, then branch-free specialized loops.
  const int cfg = (epi.bias != nullptr ? 1 : 0) |
                  (epi.scale != nullptr ? 2 : 0) | (epi.per_row ? 4 : 0);
  switch (cfg) {
    case 0:
    case 4:
      MergeTileEpiAct<false, false, false>(acc, nr, i0, rows, j0, cols,
                                           beta, c, ldc, epi);
      break;
    case 1:
      MergeTileEpiAct<true, false, false>(acc, nr, i0, rows, j0, cols, beta,
                                          c, ldc, epi);
      break;
    case 2:
      MergeTileEpiAct<false, true, false>(acc, nr, i0, rows, j0, cols, beta,
                                          c, ldc, epi);
      break;
    case 3:
      MergeTileEpiAct<true, true, false>(acc, nr, i0, rows, j0, cols, beta,
                                         c, ldc, epi);
      break;
    case 5:
      MergeTileEpiAct<true, false, true>(acc, nr, i0, rows, j0, cols, beta,
                                         c, ldc, epi);
      break;
    case 6:
      MergeTileEpiAct<false, true, true>(acc, nr, i0, rows, j0, cols, beta,
                                         c, ldc, epi);
      break;
    default:
      MergeTileEpiAct<true, true, true>(acc, nr, i0, rows, j0, cols, beta,
                                        c, ldc, epi);
      break;
  }
}

}  // namespace detail

int ComputeThreads() {
  InitPoolOnce();
  return g_threads.load(std::memory_order_acquire);
}

void SetComputeThreads(int n) {
  if (n < 1) n = 1;
  std::lock_guard<std::mutex> lock(g_pool_mu);
  g_pool.store(nullptr, std::memory_order_release);
  g_pool_storage.reset();  // joins the old workers
  if (n > 1) {
    g_pool_storage = std::make_unique<ThreadPool>(n);
    g_pool.store(g_pool_storage.get(), std::memory_order_release);
  }
  g_threads.store(n, std::memory_order_release);
}

bool GemmHasAvx2() { return detail::Avx2Kernel() != nullptr; }

namespace {

std::atomic<int> g_fuse_epilogues{-1};  // -1 = read env on first use

int FuseDefaultFromEnv() {
  if (const char* env = std::getenv("MS_FUSE_EPILOGUES")) {
    return (env[0] == '0' && env[1] == '\0') ? 0 : 1;
  }
  return 1;
}

}  // namespace

bool FuseEpiloguesEnabled() {
  int v = g_fuse_epilogues.load(std::memory_order_acquire);
  if (v < 0) {
    v = FuseDefaultFromEnv();
    g_fuse_epilogues.store(v, std::memory_order_release);
  }
  return v != 0;
}

void SetFuseEpilogues(bool enabled) {
  g_fuse_epilogues.store(enabled ? 1 : 0, std::memory_order_release);
}

void ParallelForCompute(int64_t n,
                        const std::function<void(int64_t, int64_t)>& fn) {
  if (n <= 0) return;
  ThreadPool* pool = Pool();
  if (pool == nullptr || n == 1 || ThreadPool::InWorkerThread()) {
    fn(0, n);
    return;
  }
  pool->ParallelFor(n, fn);
}

void GemmRef(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
             float alpha, const float* a, int64_t lda, const float* b,
             int64_t ldb, float beta, float* c, int64_t ldc) {
  detail::ActiveKernel().ref(trans_a, trans_b, m, n, k, alpha, a, lda, b,
                             ldb, beta, c, ldc);
}

void GemmRefEx(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
               float alpha, const float* a, int64_t lda, const float* b,
               int64_t ldb, float beta, float* c, int64_t ldc,
               const Epilogue& epi) {
  GemmRef(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
  if (epi.empty()) return;
  // Post-pass: each element was merged exactly once above, so applying
  // the epilogue here is bitwise identical to applying it at merge time.
  for (int64_t i = 0; i < m; ++i) {
    float* crow = c + i * ldc;
    for (int64_t j = 0; j < n; ++j) {
      crow[j] = detail::EpiApply(epi, i, j, crow[j]);
    }
  }
}

void Gemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
          float alpha, const float* a, int64_t lda, const float* b,
          int64_t ldb, float beta, float* c, int64_t ldc) {
  GemmEx(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc,
         Epilogue{});
}

void GemmEx(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
            float alpha, const float* a, int64_t lda, const float* b,
            int64_t ldb, float beta, float* c, int64_t ldc,
            const Epilogue& epi) {
  using detail::CeilDiv;
  using detail::kMC;
  using detail::kNC;
  if (m <= 0 || n <= 0) return;
  const int64_t flops = 2 * m * n * k;
  if (k <= 0 || flops < detail::kTinyFlops) {
    // Bitwise identical to the packed path (shared per-element contract).
    GemmRefEx(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta, c,
              ldc, epi);
    return;
  }

  const detail::MicroKernelDesc& kd = detail::ActiveKernel();
  const int mr = kd.mr;
  const int nr = kd.nr;

  const int64_t m_bands = CeilDiv(m, kMC);
  const int64_t n_bands = CeilDiv(n, kNC);
  const int64_t n_panels = CeilDiv(n, nr);
  const int64_t band_stride_a = CeilDiv(kMC, mr) * mr * k;

  ScratchArena& arena = ScratchArena::ForThread();
  ScratchArena::Scope scope(arena);
  float* apack = arena.Alloc(m_bands * band_stride_a);
  float* bpack = arena.Alloc(n_panels * nr * k);

  auto pack_a = [&](int64_t b0, int64_t b1) {
    for (int64_t band = b0; band < b1; ++band) {
      const int64_t i0 = band * kMC;
      detail::PackABand(trans_a, a, lda, i0,
                        std::min<int64_t>(kMC, m - i0), k, alpha, mr,
                        apack + band * band_stride_a);
    }
  };
  auto pack_b = [&](int64_t p0, int64_t p1) {
    for (int64_t pj = p0; pj < p1; ++pj) {
      const int64_t j0 = pj * nr;
      detail::PackBPanel(trans_b, b, ldb, j0,
                         std::min<int64_t>(nr, n - j0), k, nr,
                         bpack + pj * nr * k);
    }
  };
  auto compute_cells = [&](int64_t c0, int64_t c1) {
    alignas(64) float acc[detail::kMaxMr * detail::kMaxNr];
    for (int64_t cell = c0; cell < c1; ++cell) {
      const int64_t bi = cell / n_bands;
      const int64_t bj = cell % n_bands;
      const int64_t i_base = bi * kMC;
      const int64_t rows = std::min<int64_t>(kMC, m - i_base);
      const int64_t j_base = bj * kNC;
      const int64_t cols = std::min<int64_t>(kNC, n - j_base);
      // B panel outer so each k*nr panel stays hot across the A panels.
      for (int64_t pj = j_base / nr; pj * nr < j_base + cols; ++pj) {
        const float* bpanel = bpack + pj * nr * k;
        const int64_t j0 = pj * nr;
        const int64_t live_cols = std::min<int64_t>(nr, n - j0);
        for (int64_t pi = 0; pi * mr < rows; ++pi) {
          kd.kernel(k, apack + bi * band_stride_a + pi * mr * k, bpanel,
                    acc);
          if (epi.empty()) {
            detail::MergeTile(acc, nr, i_base + pi * mr,
                              std::min<int64_t>(mr, rows - pi * mr), j0,
                              live_cols, beta, c, ldc);
          } else {
            detail::MergeTileEpi(acc, nr, i_base + pi * mr,
                                 std::min<int64_t>(mr, rows - pi * mr), j0,
                                 live_cols, beta, c, ldc, epi);
          }
        }
      }
    }
  };

  ThreadPool* pool = Pool();
  const bool parallel = pool != nullptr && !ThreadPool::InWorkerThread() &&
                        flops >= detail::kParallelFlops &&
                        m_bands * n_bands > 1;
  if (parallel) {
    pool->ParallelFor(m_bands, pack_a);
    pool->ParallelFor(n_panels, pack_b);
    pool->ParallelFor(m_bands * n_bands, compute_cells);
  } else {
    pack_a(0, m_bands);
    pack_b(0, n_panels);
    compute_cells(0, m_bands * n_bands);
  }
}

}  // namespace ops
}  // namespace ms
