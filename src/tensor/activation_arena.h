// Activation arena: a best-fit free-list allocator for intermediate layer
// outputs. ScratchArena (scratch.h) covers strictly stack-shaped kernel
// workspace; activations are different — a tensor produced by layer i is
// freed after layer i+1 consumes it (or later, residual shortcuts), so
// lifetimes form an interval graph, not a stack. The arena serves those
// interval lifetimes out of a few large slabs: once a forward pass at a
// given (batch, slice rate) has warmed the free list, every later forward
// at the same operating point allocates ZERO heap memory —
// TotalSlabAllocs() is the test hook that asserts it, mirroring
// ScratchArena::TotalBlockAllocs and the PackStats re-pack gate.
//
// Ownership: tensors carry a shared_ptr to the ArenaCore they were carved
// from, so a tensor that escapes its scope (a returned activation, a
// cached pointer) stays valid and its eventual Free lands in the right
// arena even from another thread — ArenaCore is internally locked.
//
// Binding: ActivationScope binds an arena to the calling thread; while
// bound, fresh Tensor buffer allocations on that thread come from the
// arena instead of the heap (tensor.h consults CurrentActivationArena()).
// Scopes nest and restore the previous binding on destruction.
//
// Recording: with StartRecording() armed, the core journals every
// alloc/free with a logical tick. activation_planner.h turns one recorded
// forward into lifetime intervals, packs them offline (first-fit
// decreasing), and Reserve()s the packed footprint so the very first
// serving request already runs slab-alloc-free.
#ifndef MODELSLICING_TENSOR_ACTIVATION_ARENA_H_
#define MODELSLICING_TENSOR_ACTIVATION_ARENA_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace ms {

/// One recorded allocation lifetime: ticks are logical event times
/// (monotone per arena while recording). free_tick == -1 means the buffer
/// was still live when recording stopped (an escaping output).
struct ArenaEvent {
  int64_t id = 0;          ///< allocation order index within the recording
  int64_t floats = 0;      ///< rounded allocation size
  int64_t alloc_tick = 0;  ///< logical time of Alloc
  int64_t free_tick = -1;  ///< logical time of Free, -1 if never freed
};

/// The lockable allocator state shared by an ActivationArena handle and
/// every tensor carved from it. Heap-allocated once per arena and held by
/// shared_ptr so frees from escaped tensors outlive the handle.
class ArenaCore {
 public:
  ArenaCore() = default;
  ArenaCore(const ArenaCore&) = delete;
  ArenaCore& operator=(const ArenaCore&) = delete;

  /// 64-byte-aligned buffer of `floats` floats (uninitialized). Best-fit
  /// over the free list; grows a new slab only when nothing fits.
  float* Alloc(int64_t floats);

  /// Returns a buffer obtained from Alloc. Coalesces with free neighbors
  /// from the same slab, so steady-state shapes converge to a fixed span
  /// set. Safe from any thread.
  void Free(float* p);

  /// Ensures one contiguous free span of at least `floats` exists, so a
  /// subsequent forward whose packed footprint fits never grows a slab.
  void Reserve(int64_t floats);

  /// Arms the journal; recorded events accumulate until TakeRecording.
  void StartRecording();
  /// Disarms the journal and returns the events since StartRecording.
  std::vector<ArenaEvent> TakeRecording();

  /// Bytes currently handed out.
  int64_t live_bytes() const;
  /// High-water mark of live_bytes() since construction.
  int64_t peak_live_bytes() const;
  /// Bytes reserved across slabs (monotone; never shrinks).
  int64_t slab_bytes() const;

  /// Process-wide count of slab allocations across ALL arenas. Steady-state
  /// serving must keep it flat; the bench and CI assert exactly that.
  static uint64_t TotalSlabAllocs();

 private:
  struct Span {
    float* ptr = nullptr;
    int64_t floats = 0;
    int32_t slab = 0;  // spans coalesce only within one slab
  };
  struct Slab {
    std::unique_ptr<float[]> storage;
    float* aligned = nullptr;
    int64_t floats = 0;
  };
  struct Live {
    int64_t floats = 0;
    int32_t slab = 0;
    int64_t event = -1;  // index into events_ while recording, else -1
  };

  // 64-byte alignment, in floats.
  static constexpr int64_t kAlign = 16;
  static constexpr int64_t kMinSlab = 1 << 16;  // 256 KiB
  // Tail remainders below this stay attached to the allocation instead of
  // littering the free list with unusable slivers.
  static constexpr int64_t kMinSplit = 64;

  static int64_t RoundUp(int64_t n) { return (n + kAlign - 1) & ~(kAlign - 1); }

  float* AllocLocked(int64_t need);
  void AddSlab(int64_t need);

  mutable std::mutex mu_;
  std::vector<Slab> slabs_;
  std::vector<Span> free_;  // address-ordered within each slab
  // Live allocations keyed by pointer; linear scan — a forward pass holds
  // tens of live tensors, not thousands.
  std::vector<std::pair<float*, Live>> live_;
  int64_t live_floats_ = 0;
  int64_t peak_live_floats_ = 0;
  int64_t slab_floats_ = 0;
  bool recording_ = false;
  int64_t tick_ = 0;
  int64_t next_id_ = 0;
  std::vector<ArenaEvent> events_;
};

/// Owning handle to an arena. Copyable (handles share the core); the core
/// lives until the last handle AND the last tensor carved from it die.
class ActivationArena {
 public:
  ActivationArena() : core_(std::make_shared<ArenaCore>()) {}

  const std::shared_ptr<ArenaCore>& core() const { return core_; }

  int64_t live_bytes() const { return core_->live_bytes(); }
  int64_t peak_live_bytes() const { return core_->peak_live_bytes(); }
  int64_t slab_bytes() const { return core_->slab_bytes(); }

 private:
  std::shared_ptr<ArenaCore> core_;
};

/// Binds `arena` to the calling thread for the scope's lifetime: fresh
/// Tensor buffers allocated on this thread come from the arena. Nests;
/// restores the previous binding on destruction.
class ActivationScope {
 public:
  explicit ActivationScope(const ActivationArena& arena);
  ~ActivationScope();
  ActivationScope(const ActivationScope&) = delete;
  ActivationScope& operator=(const ActivationScope&) = delete;

 private:
  std::shared_ptr<ArenaCore> prev_;
};

/// The arena bound to the calling thread, or null when none is. Consulted
/// by Tensor on every fresh buffer allocation.
const std::shared_ptr<ArenaCore>& CurrentActivationArena();

}  // namespace ms

#endif  // MODELSLICING_TENSOR_ACTIVATION_ARENA_H_
