// Network-wide slicing configuration: the valid slice-rate list L shared by
// all sliceable layers (paper Sec. 5.1.1).
#ifndef MODELSLICING_CORE_SLICE_CONFIG_H_
#define MODELSLICING_CORE_SLICE_CONFIG_H_

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/util/status.h"

namespace ms {

/// \brief The slice-rate list L: rates from a lower bound r1 to 1.0 in steps
/// of the slice granularity, ascending.
class SliceConfig {
 public:
  SliceConfig() = default;

  /// \param lower_bound r1, the smallest (base-network) rate, in (0, 1].
  /// \param granularity rate step, e.g. 1/4, 1/8, 1/16 (Sec. 5.1.1).
  static Result<SliceConfig> Make(double lower_bound, double granularity) {
    if (lower_bound <= 0.0 || lower_bound > 1.0) {
      return Status::InvalidArgument("lower bound must be in (0, 1]");
    }
    if (granularity <= 0.0 || granularity > 1.0) {
      return Status::InvalidArgument("granularity must be in (0, 1]");
    }
    SliceConfig cfg;
    // Rates: 1.0, 1.0 - g, ... down to the first value >= lower_bound,
    // then ensure the lower bound itself is present.
    for (double r = 1.0; r > lower_bound + 1e-9; r -= granularity) {
      cfg.rates_.push_back(r);
    }
    cfg.rates_.push_back(lower_bound);
    std::sort(cfg.rates_.begin(), cfg.rates_.end());
    cfg.rates_.erase(std::unique(cfg.rates_.begin(), cfg.rates_.end(),
                                 [](double a, double b) {
                                   return std::abs(a - b) < 1e-9;
                                 }),
                     cfg.rates_.end());
    return cfg;
  }

  static Result<SliceConfig> FromList(std::vector<double> rates) {
    if (rates.empty()) {
      return Status::InvalidArgument("slice rate list is empty");
    }
    for (double r : rates) {
      if (r <= 0.0 || r > 1.0) {
        return Status::InvalidArgument("slice rates must be in (0, 1]");
      }
    }
    std::sort(rates.begin(), rates.end());
    rates.erase(std::unique(rates.begin(), rates.end()), rates.end());
    SliceConfig cfg;
    cfg.rates_ = std::move(rates);
    return cfg;
  }

  /// Ascending list of valid rates (r1 ... 1.0).
  const std::vector<double>& rates() const { return rates_; }
  double lower_bound() const { return rates_.front(); }
  double full_rate() const { return rates_.back(); }
  size_t num_rates() const { return rates_.size(); }

  /// Largest valid rate <= r (clamped to the lower bound). Used to map a
  /// budget-derived continuous rate onto the trained subnet lattice.
  double FloorRate(double r) const {
    double best = rates_.front();
    for (double cand : rates_) {
      if (cand <= r + 1e-9) best = cand;
    }
    return best;
  }

  /// Nearest valid rate to r.
  double NearestRate(double r) const {
    double best = rates_.front();
    for (double cand : rates_) {
      if (std::abs(cand - r) < std::abs(best - r)) best = cand;
    }
    return best;
  }

 private:
  std::vector<double> rates_;
};

}  // namespace ms

#endif  // MODELSLICING_CORE_SLICE_CONFIG_H_
