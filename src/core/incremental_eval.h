// Incremental subnet upgrade via group residual learning (paper Sec. 3.5).
//
// For sub-layers at rates ra < rb the block transformation is
//   [y_a~; y_b] = [[A B]; [C D]] [x_a; x_b].
// Using the approximation y_a~ ≈ y_a, the cached base features are reused
// and only the new output group y_b = C x_a + D x_b is computed — the
// upgrade costs (n_b - n_a) * m_b MACs per layer instead of n_b * m_b.
// Exposed for plain Dense/ReLU chains (MLPs).
#ifndef MODELSLICING_CORE_INCREMENTAL_EVAL_H_
#define MODELSLICING_CORE_INCREMENTAL_EVAL_H_

#include <vector>

#include "src/nn/dense.h"
#include "src/nn/module.h"
#include "src/util/status.h"

namespace ms {

class IncrementalMlpEvaluator {
 public:
  /// `mlp` must be a flat Sequential of Dense and ReLU layers with
  /// rescale disabled (rescaling changes scale factors across rates, which
  /// would silently break feature reuse).
  static Result<IncrementalMlpEvaluator> Make(Sequential* mlp);

  /// Full forward at `rate`; caches per-layer activations. Returns logits.
  Tensor EvalAtRate(const Tensor& x, double rate);

  /// Upgrade from the cached state (at the last EvalAtRate/UpgradeTo rate)
  /// to the larger `rate`, computing only the new output groups. Returns
  /// the (approximate) logits at `rate`.
  Result<Tensor> UpgradeTo(double rate);

  /// MACs spent by the last EvalAtRate or UpgradeTo call.
  int64_t last_flops() const { return last_flops_; }

 private:
  explicit IncrementalMlpEvaluator(std::vector<Dense*> layers)
      : layers_(std::move(layers)) {}

  std::vector<Dense*> layers_;
  double current_rate_ = 0.0;
  // Post-activation output of each dense layer (the input to the next),
  // plus pre-activation logits of the final layer.
  std::vector<Tensor> activations_;  ///< activations_[l]: input of layer l.
  Tensor logits_;
  int64_t last_flops_ = 0;
};

}  // namespace ms

#endif  // MODELSLICING_CORE_INCREMENTAL_EVAL_H_
