#include "src/core/incremental_eval.h"

#include "src/nn/activations.h"
#include "src/tensor/tensor_ops.h"

namespace ms {
namespace {

void ReluInPlace(Tensor* t) {
  for (int64_t i = 0; i < t->size(); ++i) {
    if ((*t)[i] < 0.0f) (*t)[i] = 0.0f;
  }
}

}  // namespace

Result<IncrementalMlpEvaluator> IncrementalMlpEvaluator::Make(
    Sequential* mlp) {
  std::vector<Dense*> layers;
  for (size_t i = 0; i < mlp->size(); ++i) {
    Module* child = mlp->child(i);
    if (auto* dense = dynamic_cast<Dense*>(child)) {
      if (dense->options().rescale) {
        return Status::InvalidArgument(
            "incremental evaluation requires rescale=false dense layers");
      }
      if (dense->options().in_unit != 1) {
        return Status::InvalidArgument(
            "incremental evaluation supports in_unit == 1 only");
      }
      layers.push_back(dense);
      continue;
    }
    if (dynamic_cast<ReLU*>(child) != nullptr) continue;
    if (auto* seq = dynamic_cast<Sequential*>(child)) {
      // Allow one level of nesting (e.g. Flatten wrapper nets are not
      // supported; nested Sequentials of dense/relu are).
      for (size_t j = 0; j < seq->size(); ++j) {
        if (auto* dense = dynamic_cast<Dense*>(seq->child(j))) {
          if (dense->options().rescale || dense->options().in_unit != 1) {
            return Status::InvalidArgument("unsupported nested dense layer");
          }
          layers.push_back(dense);
        } else if (dynamic_cast<ReLU*>(seq->child(j)) == nullptr) {
          return Status::InvalidArgument("unsupported nested layer: " +
                                         seq->child(j)->name());
        }
      }
      continue;
    }
    return Status::InvalidArgument("unsupported layer for incremental eval: " +
                                   child->name());
  }
  if (layers.empty()) {
    return Status::InvalidArgument("no dense layers found");
  }
  return IncrementalMlpEvaluator(std::move(layers));
}

Tensor IncrementalMlpEvaluator::EvalAtRate(const Tensor& x, double rate) {
  MS_CHECK(x.ndim() == 2);
  current_rate_ = rate;
  activations_.clear();
  last_flops_ = 0;

  Tensor h = x;
  for (size_t l = 0; l < layers_.size(); ++l) {
    Dense* layer = layers_[l];
    layer->SetSliceRate(rate);
    activations_.push_back(h);
    const int64_t m = layer->active_in();
    const int64_t n = layer->active_out();
    MS_CHECK_MSG(h.dim(1) == m, "input width mismatch in incremental eval");
    Tensor y({h.dim(0), n});
    ops::Gemm(false, true, h.dim(0), n, m, 1.0f, h.data(), m,
              layer->weight().data(), layer->options().in_features, 0.0f,
              y.data(), n);
    if (layer->options().bias) {
      for (int64_t b = 0; b < y.dim(0); ++b) {
        for (int64_t j = 0; j < n; ++j) y.at2(b, j) += layer->bias()[j];
      }
    }
    last_flops_ += h.dim(0) * m * n;
    if (l + 1 < layers_.size()) ReluInPlace(&y);
    h = y;
  }
  logits_ = h;
  return h;
}

Result<Tensor> IncrementalMlpEvaluator::UpgradeTo(double rate) {
  if (activations_.empty()) {
    return Status::FailedPrecondition("call EvalAtRate first");
  }
  if (rate < current_rate_) {
    return Status::InvalidArgument("can only upgrade to a larger rate");
  }
  last_flops_ = 0;
  const int64_t batch = activations_.front().dim(0);

  // new_part: the freshly-computed activation columns of the previous layer.
  Tensor new_part;  // (B, m_b - m_a) — empty for the first layer.
  for (size_t l = 0; l < layers_.size(); ++l) {
    Dense* layer = layers_[l];
    layer->SetSliceRate(current_rate_);
    const int64_t m_a = layer->active_in();
    const int64_t n_a = layer->active_out();
    layer->SetSliceRate(rate);
    const int64_t m_b = layer->active_in();
    const int64_t n_b = layer->active_out();
    Tensor& x_a = activations_[l];
    MS_CHECK(x_a.dim(1) == m_a);
    MS_CHECK(new_part.empty() ||
             new_part.dim(1) == m_b - m_a);

    // Assemble x_b = [x_a ; new_part] (only if the layer grew its fan-in).
    Tensor x_b({batch, m_b});
    for (int64_t b = 0; b < batch; ++b) {
      std::copy(x_a.data() + b * m_a, x_a.data() + (b + 1) * m_a,
                x_b.data() + b * m_b);
      if (m_b > m_a) {
        MS_CHECK(!new_part.empty());
        std::copy(new_part.data() + b * (m_b - m_a),
                  new_part.data() + (b + 1) * (m_b - m_a),
                  x_b.data() + b * m_b + m_a);
      }
    }

    const bool is_output = l + 1 == layers_.size();
    if (is_output) {
      // Output layer keeps full width (n_a == n_b); update the cached
      // logits with only the new input columns:
      // y += W[:, m_a:m_b] x_new.
      MS_CHECK(n_a == n_b);
      if (m_b > m_a) {
        ops::Gemm(false, true, batch, n_b, m_b - m_a, 1.0f,
                  x_b.data() + m_a, m_b,
                  layer->weight().data() + m_a,
                  layer->options().in_features, 1.0f, logits_.data(), n_b);
        last_flops_ += batch * (m_b - m_a) * n_b;
      }
      activations_[l] = x_b;
      new_part = Tensor();
      continue;
    }

    // Hidden layer: y_new = [C D] [x_a; x_new] over output rows [n_a, n_b).
    Tensor y_new({batch, n_b - n_a});
    if (n_b > n_a) {
      ops::Gemm(false, true, batch, n_b - n_a, m_b, 1.0f, x_b.data(), m_b,
                layer->weight().data() +
                    n_a * layer->options().in_features,
                layer->options().in_features, 0.0f, y_new.data(), n_b - n_a);
      if (layer->options().bias) {
        for (int64_t b = 0; b < batch; ++b) {
          for (int64_t j = 0; j < n_b - n_a; ++j) {
            y_new.at2(b, j) += layer->bias()[n_a + j];
          }
        }
      }
      last_flops_ += batch * m_b * (n_b - n_a);
      ReluInPlace(&y_new);
    }
    activations_[l] = x_b;
    new_part = y_new;
  }
  current_rate_ = rate;
  return logits_;
}

}  // namespace ms
