#include "src/core/trainer.h"

#include <algorithm>

#include "src/core/evaluator.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/logging.h"
#include "src/util/stopwatch.h"

namespace ms {

namespace {

// Per-epoch observability: loss/LR gauges, epoch-time histogram and
// throughput, published under `prefix` (ms_train_ / ms_train_nnlm_).
void RecordEpochMetrics(const std::string& prefix, const EpochStats& stats) {
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetCounter(prefix + "epochs_total")->Inc();
  registry.GetGauge(prefix + "loss")->Set(stats.train_loss);
  registry.GetGauge(prefix + "lr")->Set(stats.lr);
  registry.GetGauge(prefix + "examples_per_sec")->Set(stats.examples_per_sec);
  registry.GetHistogram(prefix + "epoch_seconds", obs::LatencyBucketsMs())
      ->Observe(stats.seconds);
}

}  // namespace

void TrainImageClassifier(Module* net, const ImageDataset& data,
                          SliceRateScheduler* scheduler,
                          const ImageTrainOptions& opts,
                          const EpochCallback& callback) {
  std::vector<ParamRef> params;
  net->CollectParams(&params);
  Sgd optimizer(params, opts.sgd);
  StepLrSchedule lr_schedule(opts.sgd.lr, opts.lr_milestones);
  Rng rng(opts.seed);
  SoftmaxCrossEntropy loss;

  std::vector<int64_t> order(static_cast<size_t>(data.size()));
  for (int64_t i = 0; i < data.size(); ++i) {
    order[static_cast<size_t>(i)] = i;
  }

  for (int epoch = 0; epoch < opts.epochs; ++epoch) {
    MS_TRACE_SCOPE("train_epoch");
    Stopwatch watch;
    optimizer.set_lr(lr_schedule.LrAtEpoch(epoch));
    rng.Shuffle(&order);
    double loss_sum = 0.0;
    int64_t loss_count = 0;

    std::vector<int64_t> indices;
    std::vector<int> labels;
    for (int64_t start = 0; start < data.size();
         start += opts.batch_size) {
      const int64_t end = std::min(data.size(), start + opts.batch_size);
      indices.assign(order.begin() + start, order.begin() + end);
      Tensor x = GatherImages(data, indices);
      GatherLabels(data, indices, &labels);
      if (opts.augment) AugmentBatch(&x, opts.max_shift, &rng);

      // Algorithm 1 inner loop: accumulate subnet gradients.
      const std::vector<double> rates = scheduler->NextBatch(&rng);
      for (double r : rates) {
        net->SetSliceRate(r);
        Tensor logits = net->Forward(x, /*training=*/true);
        const float batch_loss = loss.Forward(logits, labels);
        net->Backward(loss.Backward());
        loss_sum += batch_loss;
        ++loss_count;
      }
      optimizer.Step();
    }

    EpochStats stats;
    stats.epoch = epoch;
    stats.train_loss = loss_count > 0 ? loss_sum / loss_count : 0.0;
    stats.seconds = watch.ElapsedSeconds();
    stats.lr = lr_schedule.LrAtEpoch(epoch);
    stats.examples_per_sec =
        stats.seconds > 0.0
            ? static_cast<double>(data.size()) / stats.seconds
            : 0.0;
    RecordEpochMetrics("ms_train_", stats);
    if (callback) callback(stats);
  }
}

void TrainNnlm(Nnlm* model, const TextCorpus& corpus,
               SliceRateScheduler* scheduler, const NnlmTrainOptions& opts,
               const EpochCallback& callback) {
  Sgd optimizer(model->Params(), opts.sgd);
  PlateauLrSchedule lr_schedule(opts.sgd.lr, opts.plateau_factor);
  Rng rng(opts.seed);
  SequenceNll loss;
  TextBatcher batcher(corpus.train, opts.batch_size, opts.bptt);

  std::vector<int64_t> chunk_order(
      static_cast<size_t>(batcher.num_chunks()));
  for (int64_t i = 0; i < batcher.num_chunks(); ++i) {
    chunk_order[static_cast<size_t>(i)] = i;
  }

  std::vector<int> inputs, targets;
  double current_lr = opts.sgd.lr;
  for (int epoch = 0; epoch < opts.epochs; ++epoch) {
    MS_TRACE_SCOPE("train_nnlm_epoch");
    const double epoch_lr = current_lr;
    Stopwatch watch;
    rng.Shuffle(&chunk_order);
    double loss_sum = 0.0;
    int64_t loss_count = 0;
    for (int64_t k : chunk_order) {
      batcher.Chunk(k, &inputs, &targets);
      const std::vector<double> rates = scheduler->NextBatch(&rng);
      for (double r : rates) {
        model->SetSliceRate(r);
        Tensor logits =
            model->Forward(inputs, opts.bptt, opts.batch_size,
                           /*training=*/true);
        const float chunk_loss = loss.Forward(logits, targets);
        model->Backward(loss.Backward());
        loss_sum += chunk_loss;
        ++loss_count;
      }
      optimizer.Step();
    }

    // Plateau schedule on validation perplexity at the full rate.
    if (opts.plateau_factor < 1.0) {
      const double valid_ppl =
          EvalPerplexity(model, corpus.valid, /*rate=*/1.0, opts.batch_size,
                         opts.bptt);
      current_lr = lr_schedule.Observe(valid_ppl);
      optimizer.set_lr(current_lr);
    }

    EpochStats stats;
    stats.epoch = epoch;
    stats.train_loss = loss_count > 0 ? loss_sum / loss_count : 0.0;
    stats.seconds = watch.ElapsedSeconds();
    stats.lr = epoch_lr;
    stats.examples_per_sec =
        stats.seconds > 0.0
            ? static_cast<double>(batcher.num_chunks()) / stats.seconds
            : 0.0;
    RecordEpochMetrics("ms_train_nnlm_", stats);
    if (callback) callback(stats);
  }
}

}  // namespace ms
