#include "src/core/trainer.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>

#include "src/core/evaluator.h"
#include "src/nn/serialize.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/fault.h"
#include "src/util/logging.h"
#include "src/util/stopwatch.h"

namespace ms {

namespace {

// Per-epoch observability: loss/LR gauges, epoch-time histogram and
// throughput, published under `prefix` (ms_train_ / ms_train_nnlm_).
void RecordEpochMetrics(const std::string& prefix, const EpochStats& stats) {
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetCounter(prefix + "epochs_total")->Inc();
  registry.GetGauge(prefix + "loss")->Set(stats.train_loss);
  registry.GetGauge(prefix + "lr")->Set(stats.lr);
  registry.GetGauge(prefix + "examples_per_sec")->Set(stats.examples_per_sec);
  registry.GetHistogram(prefix + "epoch_seconds", obs::LatencyBucketsMs())
      ->Observe(stats.seconds);
}

// Loads the checkpoint into `params` when resume is on and the file exists.
// A corrupt checkpoint is reported and ignored — LoadParams never partially
// applies, so training simply starts from the current (fresh) weights.
void MaybeResume(const CheckpointOptions& ckpt,
                 const std::vector<ParamRef>& params) {
  if (ckpt.path.empty() || !ckpt.resume) return;
  {
    std::ifstream probe(ckpt.path, std::ios::binary);
    if (!probe.is_open()) return;  // nothing to resume from
  }
  const Status s = LoadParams(params, ckpt.path);
  if (!s.ok()) {
    MS_LOG(Warn) << "resume skipped, checkpoint unusable: " << s;
    return;
  }
  obs::MetricsRegistry::Global().GetCounter("ms_train_resumes_total")->Inc();
  MS_LOG(Info) << "resumed parameters from " << ckpt.path;
}

// Saves after the (epoch+1)-th epoch when it hits the cadence or is the
// last. Save failures are reported, not fatal: losing a checkpoint beats
// losing the run.
void MaybeCheckpoint(const CheckpointOptions& ckpt,
                     const std::vector<ParamRef>& params, int epoch,
                     int total_epochs) {
  if (ckpt.path.empty()) return;
  const int every = ckpt.every_epochs < 1 ? 1 : ckpt.every_epochs;
  if ((epoch + 1) % every != 0 && epoch + 1 != total_epochs) return;
  const Status s = SaveParams(params, ckpt.path);
  if (s.ok()) {
    obs::MetricsRegistry::Global()
        .GetCounter("ms_train_checkpoints_total")
        ->Inc();
  } else {
    MS_LOG(Warn) << "checkpoint save failed: " << s;
  }
}

// Divergence-guard bookkeeping shared by both trainers: rolls the weights
// back to `snapshot`, clears half-accumulated gradients, and counts the
// event. The caller skips its optimizer step.
void RollBack(const std::vector<ParamRef>& params,
              const std::vector<Tensor>& snapshot, Sgd* optimizer) {
  const Status s = RestoreParams(params, snapshot);
  MS_CHECK(s.ok());  // snapshot came from these very params
  optimizer->ZeroGrad();
  obs::MetricsRegistry::Global().GetCounter("ms_train_rollbacks_total")->Inc();
}

}  // namespace

void TrainImageClassifier(Module* net, const ImageDataset& data,
                          SliceRateScheduler* scheduler,
                          const ImageTrainOptions& opts,
                          const EpochCallback& callback) {
  std::vector<ParamRef> params;
  net->CollectParams(&params);
  MaybeResume(opts.checkpoint, params);
  Sgd optimizer(params, opts.sgd);
  StepLrSchedule lr_schedule(opts.sgd.lr, opts.lr_milestones);
  Rng rng(opts.seed);
  SoftmaxCrossEntropy loss;
  // Last-known-good weights for the divergence guard, refreshed after every
  // epoch that ends with a finite mean loss.
  std::vector<Tensor> last_good;
  if (opts.divergence_guard) SnapshotParams(params, &last_good);

  std::vector<int64_t> order(static_cast<size_t>(data.size()));
  for (int64_t i = 0; i < data.size(); ++i) {
    order[static_cast<size_t>(i)] = i;
  }

  for (int epoch = 0; epoch < opts.epochs; ++epoch) {
    MS_TRACE_SCOPE("train_epoch");
    Stopwatch watch;
    optimizer.set_lr(lr_schedule.LrAtEpoch(epoch));
    rng.Shuffle(&order);
    double loss_sum = 0.0;
    int64_t loss_count = 0;

    std::vector<int64_t> indices;
    std::vector<int> labels;
    for (int64_t start = 0; start < data.size();
         start += opts.batch_size) {
      const int64_t end = std::min(data.size(), start + opts.batch_size);
      indices.assign(order.begin() + start, order.begin() + end);
      Tensor x = GatherImages(data, indices);
      GatherLabels(data, indices, &labels);
      if (opts.augment) AugmentBatch(&x, opts.max_shift, &rng);

      // Algorithm 1 inner loop: accumulate subnet gradients.
      const std::vector<double> rates = scheduler->NextBatch(&rng);
      bool diverged = false;
      for (double r : rates) {
        net->SetSliceRate(r);
        Tensor logits = net->Forward(x, /*training=*/true);
        float batch_loss = loss.Forward(logits, labels);
        if (opts.divergence_guard &&
            fault::Registry::Global().ShouldFire(fault::kTrainNanLoss)) {
          batch_loss = std::numeric_limits<float>::quiet_NaN();
        }
        if (opts.divergence_guard && !std::isfinite(batch_loss)) {
          diverged = true;
          break;
        }
        net->Backward(loss.Backward());
        loss_sum += batch_loss;
        ++loss_count;
      }
      if (diverged) {
        // One poisoned batch must not corrupt the run: restore the last
        // good weights, drop the half-accumulated gradients, skip the step.
        RollBack(params, last_good, &optimizer);
        continue;
      }
      optimizer.Step();
    }

    EpochStats stats;
    stats.epoch = epoch;
    stats.train_loss = loss_count > 0 ? loss_sum / loss_count : 0.0;
    stats.seconds = watch.ElapsedSeconds();
    stats.lr = lr_schedule.LrAtEpoch(epoch);
    stats.examples_per_sec =
        stats.seconds > 0.0
            ? static_cast<double>(data.size()) / stats.seconds
            : 0.0;
    if (opts.divergence_guard && loss_count > 0 &&
        std::isfinite(stats.train_loss)) {
      SnapshotParams(params, &last_good);
    }
    MaybeCheckpoint(opts.checkpoint, params, epoch, opts.epochs);
    RecordEpochMetrics("ms_train_", stats);
    if (callback) callback(stats);
  }
}

void TrainNnlm(Nnlm* model, const TextCorpus& corpus,
               SliceRateScheduler* scheduler, const NnlmTrainOptions& opts,
               const EpochCallback& callback) {
  std::vector<ParamRef> params = model->Params();
  MaybeResume(opts.checkpoint, params);
  Sgd optimizer(params, opts.sgd);
  PlateauLrSchedule lr_schedule(opts.sgd.lr, opts.plateau_factor);
  Rng rng(opts.seed);
  SequenceNll loss;
  std::vector<Tensor> last_good;
  if (opts.divergence_guard) SnapshotParams(params, &last_good);
  TextBatcher batcher(corpus.train, opts.batch_size, opts.bptt);

  std::vector<int64_t> chunk_order(
      static_cast<size_t>(batcher.num_chunks()));
  for (int64_t i = 0; i < batcher.num_chunks(); ++i) {
    chunk_order[static_cast<size_t>(i)] = i;
  }

  std::vector<int> inputs, targets;
  double current_lr = opts.sgd.lr;
  for (int epoch = 0; epoch < opts.epochs; ++epoch) {
    MS_TRACE_SCOPE("train_nnlm_epoch");
    const double epoch_lr = current_lr;
    Stopwatch watch;
    rng.Shuffle(&chunk_order);
    double loss_sum = 0.0;
    int64_t loss_count = 0;
    for (int64_t k : chunk_order) {
      batcher.Chunk(k, &inputs, &targets);
      const std::vector<double> rates = scheduler->NextBatch(&rng);
      bool diverged = false;
      for (double r : rates) {
        model->SetSliceRate(r);
        Tensor logits =
            model->Forward(inputs, opts.bptt, opts.batch_size,
                           /*training=*/true);
        float chunk_loss = loss.Forward(logits, targets);
        if (opts.divergence_guard &&
            fault::Registry::Global().ShouldFire(fault::kTrainNanLoss)) {
          chunk_loss = std::numeric_limits<float>::quiet_NaN();
        }
        if (opts.divergence_guard && !std::isfinite(chunk_loss)) {
          diverged = true;
          break;
        }
        model->Backward(loss.Backward());
        loss_sum += chunk_loss;
        ++loss_count;
      }
      if (diverged) {
        RollBack(params, last_good, &optimizer);
        continue;
      }
      optimizer.Step();
    }

    // Plateau schedule on validation perplexity at the full rate.
    if (opts.plateau_factor < 1.0) {
      const double valid_ppl =
          EvalPerplexity(model, corpus.valid, /*rate=*/1.0, opts.batch_size,
                         opts.bptt);
      current_lr = lr_schedule.Observe(valid_ppl);
      optimizer.set_lr(current_lr);
    }

    EpochStats stats;
    stats.epoch = epoch;
    stats.train_loss = loss_count > 0 ? loss_sum / loss_count : 0.0;
    stats.seconds = watch.ElapsedSeconds();
    stats.lr = epoch_lr;
    stats.examples_per_sec =
        stats.seconds > 0.0
            ? static_cast<double>(batcher.num_chunks()) / stats.seconds
            : 0.0;
    if (opts.divergence_guard && loss_count > 0 &&
        std::isfinite(stats.train_loss)) {
      SnapshotParams(params, &last_good);
    }
    MaybeCheckpoint(opts.checkpoint, params, epoch, opts.epochs);
    RecordEpochMetrics("ms_train_nnlm_", stats);
    if (callback) callback(stats);
  }
}

}  // namespace ms
