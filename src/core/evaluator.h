// Evaluation helpers: subnet accuracy sweeps, perplexity, and the
// wrong-prediction inclusion coefficient of Figure 8.
#ifndef MODELSLICING_CORE_EVALUATOR_H_
#define MODELSLICING_CORE_EVALUATOR_H_

#include <vector>

#include "src/data/synthetic_images.h"
#include "src/data/synthetic_text.h"
#include "src/models/nnlm.h"
#include "src/nn/module.h"

namespace ms {

/// Test accuracy of `net` sliced to `rate`.
float EvalAccuracy(Module* net, const ImageDataset& data, double rate,
                   int64_t batch_size = 64);

/// Accuracy at each rate (ascending, aligned with `rates`).
std::vector<float> EvalAccuracySweep(Module* net, const ImageDataset& data,
                                     const std::vector<double>& rates,
                                     int64_t batch_size = 64);

/// Per-sample wrong-prediction mask (1 = misclassified) at `rate`.
std::vector<uint8_t> WrongPredictionMask(Module* net, const ImageDataset& data,
                                         double rate, int64_t batch_size = 64);

/// Overlap coefficient |A ∩ B| / min(|A|, |B|) of two error sets — the
/// prediction-consistency measure visualized in Figure 8 (1.0 on the
/// diagonal; higher = more consistent errors).
double InclusionCoefficient(const std::vector<uint8_t>& wrong_a,
                            const std::vector<uint8_t>& wrong_b);

/// Test perplexity of the NNLM sliced to `rate` over a token stream.
double EvalPerplexity(Nnlm* model, const std::vector<int>& stream,
                      double rate, int64_t batch_size = 16, int64_t bptt = 20);

/// Per-sample predicted labels at `rate` (used by cascade ranking).
std::vector<int> PredictLabels(Module* net, const ImageDataset& data,
                               double rate, int64_t batch_size = 64);

}  // namespace ms

#endif  // MODELSLICING_CORE_EVALUATOR_H_
