// Anytime / budgeted prediction (paper Sec. 1 & 2.1): serve each request at
// the widest trained subnet that fits a per-request compute budget or
// wall-clock deadline. The predictor profiles the model once per input
// shape, then maps budgets onto the slice-rate lattice via Eq. 3.
#ifndef MODELSLICING_CORE_ANYTIME_H_
#define MODELSLICING_CORE_ANYTIME_H_

#include <vector>

#include "src/core/cost_model.h"
#include "src/core/slice_config.h"
#include "src/nn/module.h"
#include "src/util/status.h"

namespace ms {

/// \brief Budget-aware front end over a sliced model.
class AnytimePredictor {
 public:
  /// Profiles `net` at every lattice rate on `sample_shape` (batch dim is
  /// taken from the shape's first entry; use 1 for per-sample budgets).
  static Result<AnytimePredictor> Make(Module* net, const SliceConfig& lattice,
                                       const std::vector<int64_t>& sample_shape);

  /// Widest rate whose profiled FLOPs fit `budget_flops` (clamped to the
  /// lattice lower bound).
  double RateForBudget(int64_t budget_flops) const;

  /// Widest rate whose *calibrated* wall-clock fits `deadline_seconds`.
  /// Calibration: one timed forward pass per rate during Make.
  double RateForDeadline(double deadline_seconds) const;

  /// Forward at the widest rate fitting the budget; reports the rate used.
  Tensor PredictWithBudget(const Tensor& x, int64_t budget_flops,
                           double* rate_used = nullptr);

  Tensor PredictWithDeadline(const Tensor& x, double deadline_seconds,
                             double* rate_used = nullptr);

  const std::vector<CostProfile>& profiles() const { return profiles_; }
  const std::vector<double>& seconds_per_rate() const {
    return seconds_per_rate_;
  }

 private:
  AnytimePredictor(Module* net, SliceConfig lattice)
      : net_(net), lattice_(std::move(lattice)) {}

  Module* net_;
  SliceConfig lattice_;
  std::vector<CostProfile> profiles_;        ///< aligned with lattice rates.
  std::vector<double> seconds_per_rate_;     ///< calibrated forward times.
};

}  // namespace ms

#endif  // MODELSLICING_CORE_ANYTIME_H_
