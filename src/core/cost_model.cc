#include "src/core/cost_model.h"

#include <cmath>

namespace ms {

std::vector<CostProfile> ProfileNet(Module* net, const Tensor& sample,
                                    const std::vector<double>& rates) {
  std::vector<CostProfile> profiles;
  profiles.reserve(rates.size());
  for (double r : rates) {
    net->SetSliceRate(r);
    (void)net->Forward(sample, /*training=*/false);
    CostProfile p;
    p.rate = r;
    p.flops = net->FlopsPerSample();
    p.params = net->ActiveParams();
    profiles.push_back(p);
  }
  return profiles;
}

double BudgetToRateContinuous(int64_t budget_flops, int64_t full_flops) {
  MS_CHECK(full_flops > 0);
  if (budget_flops <= 0) return 0.0;
  const double r = std::sqrt(static_cast<double>(budget_flops) /
                             static_cast<double>(full_flops));
  return std::min(r, 1.0);
}

double BudgetToRate(int64_t budget_flops, int64_t full_flops,
                    const SliceConfig& config) {
  const double r = BudgetToRateContinuous(budget_flops, full_flops);
  return config.FloorRate(r);
}

}  // namespace ms
