// Inference cost model (paper Eq. 3): compute and parameter profiles per
// subnet, and the budget -> slice-rate mapping  r <= min(sqrt(Ct / C0), 1).
#ifndef MODELSLICING_CORE_COST_MODEL_H_
#define MODELSLICING_CORE_COST_MODEL_H_

#include <vector>

#include "src/core/slice_config.h"
#include "src/nn/module.h"

namespace ms {

struct CostProfile {
  double rate = 0.0;
  int64_t flops = 0;   ///< multiply-accumulates per sample.
  int64_t params = 0;  ///< parameters touched at this rate.
};

/// Profiles `net` at each rate by running one eval-mode forward pass on
/// `sample` (needed so conv layers know their spatial extents).
std::vector<CostProfile> ProfileNet(Module* net, const Tensor& sample,
                                    const std::vector<double>& rates);

/// Eq. 3: the largest rate whose cost fits `budget_flops`, i.e.
/// min(sqrt(Ct/C0), 1), then floored onto the trained rate lattice.
double BudgetToRate(int64_t budget_flops, int64_t full_flops,
                    const SliceConfig& config);

/// Continuous form of Eq. 3 (no lattice snapping).
double BudgetToRateContinuous(int64_t budget_flops, int64_t full_flops);

}  // namespace ms

#endif  // MODELSLICING_CORE_COST_MODEL_H_
