#include "src/core/scheduler.h"

#include <algorithm>

namespace ms {

RandomScheduler::RandomScheduler(SliceConfig config, int samples_per_pass)
    : config_(std::move(config)), samples_per_pass_(samples_per_pass) {
  MS_CHECK(samples_per_pass_ >= 1);
  weights_.assign(config_.num_rates(), 1.0);
  name_ = "r-uniform-" + std::to_string(samples_per_pass_);
}

RandomScheduler::RandomScheduler(SliceConfig config, int samples_per_pass,
                                 std::vector<double> weights)
    : config_(std::move(config)),
      samples_per_pass_(samples_per_pass),
      weights_(std::move(weights)) {
  MS_CHECK(samples_per_pass_ >= 1);
  MS_CHECK_MSG(weights_.size() == config_.num_rates(),
               "weights must align with the rate list");
  name_ = "r-weighted-" + std::to_string(samples_per_pass_);
}

std::vector<double> RandomScheduler::NextBatch(Rng* rng) {
  std::vector<double> out;
  out.reserve(static_cast<size_t>(samples_per_pass_));
  for (int i = 0; i < samples_per_pass_; ++i) {
    const size_t idx = rng->Categorical(weights_);
    out.push_back(config_.rates()[idx]);
  }
  // Dedup within the pass (sampling the same subnet twice in one pass just
  // doubles its gradient); train distinct subnets, largest first.
  std::sort(out.begin(), out.end(), std::greater<double>());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

RandomStaticScheduler::RandomStaticScheduler(SliceConfig config,
                                             bool include_min,
                                             bool include_max,
                                             int random_extra)
    : config_(std::move(config)),
      include_min_(include_min),
      include_max_(include_max),
      random_extra_(random_extra) {
  MS_CHECK(include_min_ || include_max_);
  MS_CHECK(random_extra_ >= 0);
  for (double r : config_.rates()) {
    const bool is_min = std::abs(r - config_.lower_bound()) < 1e-9;
    const bool is_max = std::abs(r - config_.full_rate()) < 1e-9;
    if ((is_min && include_min_) || (is_max && include_max_)) continue;
    middle_rates_.push_back(r);
  }
  if (include_min_ && include_max_) {
    name_ = "r-min-max";
  } else if (include_min_) {
    name_ = "r-min";
  } else {
    name_ = "r-max";
  }
}

std::vector<double> RandomStaticScheduler::NextBatch(Rng* rng) {
  std::vector<double> out;
  if (include_max_) out.push_back(config_.full_rate());
  const int extras = std::min<int>(
      random_extra_, static_cast<int>(middle_rates_.size()));
  std::vector<double> pool = middle_rates_;
  for (int i = 0; i < extras; ++i) {
    const size_t idx = static_cast<size_t>(rng->UniformInt(pool.size()));
    out.push_back(pool[idx]);
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(idx));
  }
  if (include_min_) out.push_back(config_.lower_bound());
  std::sort(out.begin(), out.end(), std::greater<double>());
  return out;
}

std::vector<double> DefaultRateWeights(size_t num_rates) {
  MS_CHECK(num_rates >= 1);
  std::vector<double> w(num_rates, 0.0);
  if (num_rates == 1) {
    w[0] = 1.0;
    return w;
  }
  // Ascending rate list: w.front() is the base network, w.back() the full.
  w.back() = 0.5;
  w.front() = 0.25;
  const size_t middle = num_rates - 2;
  if (middle > 0) {
    for (size_t i = 1; i + 1 < num_rates; ++i) {
      w[i] = 0.25 / static_cast<double>(middle);
    }
  } else {
    w.front() = 0.5;
  }
  return w;
}

Result<std::unique_ptr<SliceRateScheduler>> MakeScheduler(
    const std::string& name, const SliceConfig& config) {
  if (name == "full-only") {
    return std::unique_ptr<SliceRateScheduler>(new FullOnlyScheduler());
  }
  if (name == "r-uniform-2") {
    return std::unique_ptr<SliceRateScheduler>(
        new RandomScheduler(config, 2));
  }
  if (name == "r-weighted-2" || name == "r-weighted-3") {
    const int k = name.back() - '0';
    return std::unique_ptr<SliceRateScheduler>(new RandomScheduler(
        config, k, DefaultRateWeights(config.num_rates())));
  }
  if (name == "static" || name == "slimmable") {
    return std::unique_ptr<SliceRateScheduler>(new StaticScheduler(config));
  }
  if (name == "r-min") {
    return std::unique_ptr<SliceRateScheduler>(
        new RandomStaticScheduler(config, /*include_min=*/true,
                                  /*include_max=*/false));
  }
  if (name == "r-max") {
    return std::unique_ptr<SliceRateScheduler>(
        new RandomStaticScheduler(config, /*include_min=*/false,
                                  /*include_max=*/true));
  }
  if (name == "r-min-max") {
    return std::unique_ptr<SliceRateScheduler>(
        new RandomStaticScheduler(config, /*include_min=*/true,
                                  /*include_max=*/true));
  }
  return Status::NotFound("unknown scheduler: " + name);
}

}  // namespace ms
