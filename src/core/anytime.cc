#include "src/core/anytime.h"

#include "src/util/stopwatch.h"

namespace ms {

Result<AnytimePredictor> AnytimePredictor::Make(
    Module* net, const SliceConfig& lattice,
    const std::vector<int64_t>& sample_shape) {
  if (net == nullptr) {
    return Status::InvalidArgument("null model");
  }
  if (sample_shape.empty()) {
    return Status::InvalidArgument("empty sample shape");
  }
  for (int64_t d : sample_shape) {
    if (d < 1) return Status::InvalidArgument("bad sample shape dim");
  }
  AnytimePredictor predictor(net, lattice);
  Tensor sample(sample_shape);
  predictor.profiles_ = ProfileNet(net, sample, lattice.rates());
  predictor.seconds_per_rate_.reserve(lattice.num_rates());
  for (double r : lattice.rates()) {
    net->SetSliceRate(r);
    Stopwatch watch;
    (void)net->Forward(sample, /*training=*/false);
    predictor.seconds_per_rate_.push_back(watch.ElapsedSeconds());
  }
  return predictor;
}

double AnytimePredictor::RateForBudget(int64_t budget_flops) const {
  double best = lattice_.lower_bound();
  for (const auto& p : profiles_) {
    if (p.flops <= budget_flops) best = p.rate;
  }
  return best;
}

double AnytimePredictor::RateForDeadline(double deadline_seconds) const {
  double best = lattice_.lower_bound();
  for (size_t i = 0; i < seconds_per_rate_.size(); ++i) {
    if (seconds_per_rate_[i] <= deadline_seconds) {
      best = lattice_.rates()[i];
    }
  }
  return best;
}

Tensor AnytimePredictor::PredictWithBudget(const Tensor& x,
                                           int64_t budget_flops,
                                           double* rate_used) {
  const double r = RateForBudget(budget_flops);
  if (rate_used != nullptr) *rate_used = r;
  net_->SetSliceRate(r);
  return net_->Forward(x, /*training=*/false);
}

Tensor AnytimePredictor::PredictWithDeadline(const Tensor& x,
                                             double deadline_seconds,
                                             double* rate_used) {
  const double r = RateForDeadline(deadline_seconds);
  if (rate_used != nullptr) *rate_used = r;
  net_->SetSliceRate(r);
  return net_->Forward(x, /*training=*/false);
}

}  // namespace ms
