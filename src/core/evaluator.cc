#include "src/core/evaluator.h"

#include <cmath>

#include "src/nn/loss.h"
#include "src/tensor/tensor_ops.h"

namespace ms {

std::vector<int> PredictLabels(Module* net, const ImageDataset& data,
                               double rate, int64_t batch_size) {
  net->SetSliceRate(rate);
  std::vector<int> predictions;
  predictions.reserve(static_cast<size_t>(data.size()));
  std::vector<int64_t> indices;
  for (int64_t start = 0; start < data.size(); start += batch_size) {
    const int64_t end = std::min(data.size(), start + batch_size);
    indices.clear();
    for (int64_t i = start; i < end; ++i) indices.push_back(i);
    Tensor x = GatherImages(data, indices);
    Tensor logits = net->Forward(x, /*training=*/false);
    std::vector<int> pred;
    ops::ArgmaxRows(logits, logits.dim(0), logits.dim(1), &pred);
    predictions.insert(predictions.end(), pred.begin(), pred.end());
  }
  return predictions;
}

float EvalAccuracy(Module* net, const ImageDataset& data, double rate,
                   int64_t batch_size) {
  const std::vector<int> pred = PredictLabels(net, data, rate, batch_size);
  int64_t correct = 0;
  for (size_t i = 0; i < pred.size(); ++i) {
    if (pred[i] == data.labels[i]) ++correct;
  }
  return static_cast<float>(correct) / static_cast<float>(data.size());
}

std::vector<float> EvalAccuracySweep(Module* net, const ImageDataset& data,
                                     const std::vector<double>& rates,
                                     int64_t batch_size) {
  std::vector<float> acc;
  acc.reserve(rates.size());
  for (double r : rates) acc.push_back(EvalAccuracy(net, data, r, batch_size));
  return acc;
}

std::vector<uint8_t> WrongPredictionMask(Module* net, const ImageDataset& data,
                                         double rate, int64_t batch_size) {
  const std::vector<int> pred = PredictLabels(net, data, rate, batch_size);
  std::vector<uint8_t> wrong(pred.size(), 0);
  for (size_t i = 0; i < pred.size(); ++i) {
    wrong[i] = pred[i] != data.labels[i] ? 1 : 0;
  }
  return wrong;
}

double InclusionCoefficient(const std::vector<uint8_t>& wrong_a,
                            const std::vector<uint8_t>& wrong_b) {
  MS_CHECK(wrong_a.size() == wrong_b.size());
  int64_t na = 0, nb = 0, both = 0;
  for (size_t i = 0; i < wrong_a.size(); ++i) {
    na += wrong_a[i];
    nb += wrong_b[i];
    both += (wrong_a[i] && wrong_b[i]) ? 1 : 0;
  }
  const int64_t denom = std::min(na, nb);
  if (denom == 0) return 1.0;
  return static_cast<double>(both) / static_cast<double>(denom);
}

double EvalPerplexity(Nnlm* model, const std::vector<int>& stream,
                      double rate, int64_t batch_size, int64_t bptt) {
  model->SetSliceRate(rate);
  TextBatcher batcher(stream, batch_size, bptt);
  SequenceNll loss;
  std::vector<int> inputs, targets;
  double total_nll = 0.0;
  int64_t total_tokens = 0;
  for (int64_t k = 0; k < batcher.num_chunks(); ++k) {
    batcher.Chunk(k, &inputs, &targets);
    Tensor logits = model->Forward(inputs, bptt, batch_size,
                                   /*training=*/false);
    const float nll = loss.Forward(logits, targets);
    total_nll += static_cast<double>(nll) *
                 static_cast<double>(inputs.size());
    total_tokens += static_cast<int64_t>(inputs.size());
  }
  MS_CHECK(total_tokens > 0);
  return std::exp(total_nll / static_cast<double>(total_tokens));
}

}  // namespace ms
