// Algorithm 1 of the paper: train with model slicing. For every mini-batch
// the scheduler emits a slice-rate list L_t; the gradients of each
// corresponding subnet are accumulated before a single optimizer step.
#ifndef MODELSLICING_CORE_TRAINER_H_
#define MODELSLICING_CORE_TRAINER_H_

#include <functional>
#include <string>
#include <vector>

#include "src/core/scheduler.h"
#include "src/data/synthetic_images.h"
#include "src/data/synthetic_text.h"
#include "src/models/nnlm.h"
#include "src/nn/loss.h"
#include "src/nn/module.h"
#include "src/optim/sgd.h"

namespace ms {

/// Periodic crash-safe checkpointing (src/nn/serialize.h, format v2:
/// temp + fsync + atomic rename, CRC-verified on load). Checkpoints hold
/// parameters only — optimizer momentum restarts on resume, which SGD
/// re-accumulates within a few batches.
struct CheckpointOptions {
  std::string path;        ///< empty disables checkpointing entirely.
  int every_epochs = 1;    ///< save after every k-th epoch (and the last).
  /// Load `path` before training when it exists. A missing file trains
  /// from scratch; a corrupt one is reported and ignored (LoadParams never
  /// partially applies), so a damaged checkpoint can't brick training.
  bool resume = true;
};

struct ImageTrainOptions {
  int epochs = 10;
  int64_t batch_size = 32;
  SgdOptions sgd = {.lr = 0.1, .momentum = 0.9, .weight_decay = 1e-4};
  std::vector<int> lr_milestones = {};  ///< epochs at which lr *= 0.1.
  bool augment = true;
  int max_shift = 2;
  uint64_t seed = 42;
  CheckpointOptions checkpoint;
  /// Divergence guard: a non-finite mini-batch loss rolls the weights back
  /// to the last finite-epoch snapshot, clears gradients, and skips the
  /// optimizer step (counted in ms_train_rollbacks_total) instead of
  /// letting one poisoned batch corrupt the whole run.
  bool divergence_guard = true;
};

struct EpochStats {
  int epoch = 0;
  double train_loss = 0.0;   ///< mean per-subnet loss over the epoch.
  double seconds = 0.0;
  double lr = 0.0;           ///< learning rate used this epoch.
  double examples_per_sec = 0.0;  ///< dataset passes / wall time.
};

/// Called after each epoch; return value ignored.
using EpochCallback = std::function<void(const EpochStats&)>;

/// Trains `net` on `data` with Algorithm 1. The optimizer is created
/// internally from opts.sgd over the net's parameters.
void TrainImageClassifier(Module* net, const ImageDataset& data,
                          SliceRateScheduler* scheduler,
                          const ImageTrainOptions& opts,
                          const EpochCallback& callback = nullptr);

struct NnlmTrainOptions {
  int epochs = 8;
  int64_t batch_size = 16;
  int64_t bptt = 20;
  SgdOptions sgd = {.lr = 2.0, .momentum = 0.0, .weight_decay = 0.0,
                    .clip_grad_norm = 0.5};
  /// Quarter the LR when validation perplexity stops improving
  /// (Sec. 5.2.2); set factor 1.0 to disable.
  double plateau_factor = 0.25;
  uint64_t seed = 42;
  CheckpointOptions checkpoint;
  bool divergence_guard = true;  ///< see ImageTrainOptions::divergence_guard.
};

/// Trains the NNLM with Algorithm 1 over BPTT chunks; evaluates validation
/// perplexity (at the full rate) each epoch for the plateau LR schedule.
void TrainNnlm(Nnlm* model, const TextCorpus& corpus,
               SliceRateScheduler* scheduler, const NnlmTrainOptions& opts,
               const EpochCallback& callback = nullptr);

}  // namespace ms

#endif  // MODELSLICING_CORE_TRAINER_H_
