// Algorithm 1 of the paper: train with model slicing. For every mini-batch
// the scheduler emits a slice-rate list L_t; the gradients of each
// corresponding subnet are accumulated before a single optimizer step.
#ifndef MODELSLICING_CORE_TRAINER_H_
#define MODELSLICING_CORE_TRAINER_H_

#include <functional>
#include <vector>

#include "src/core/scheduler.h"
#include "src/data/synthetic_images.h"
#include "src/data/synthetic_text.h"
#include "src/models/nnlm.h"
#include "src/nn/loss.h"
#include "src/nn/module.h"
#include "src/optim/sgd.h"

namespace ms {

struct ImageTrainOptions {
  int epochs = 10;
  int64_t batch_size = 32;
  SgdOptions sgd = {.lr = 0.1, .momentum = 0.9, .weight_decay = 1e-4};
  std::vector<int> lr_milestones = {};  ///< epochs at which lr *= 0.1.
  bool augment = true;
  int max_shift = 2;
  uint64_t seed = 42;
};

struct EpochStats {
  int epoch = 0;
  double train_loss = 0.0;   ///< mean per-subnet loss over the epoch.
  double seconds = 0.0;
  double lr = 0.0;           ///< learning rate used this epoch.
  double examples_per_sec = 0.0;  ///< dataset passes / wall time.
};

/// Called after each epoch; return value ignored.
using EpochCallback = std::function<void(const EpochStats&)>;

/// Trains `net` on `data` with Algorithm 1. The optimizer is created
/// internally from opts.sgd over the net's parameters.
void TrainImageClassifier(Module* net, const ImageDataset& data,
                          SliceRateScheduler* scheduler,
                          const ImageTrainOptions& opts,
                          const EpochCallback& callback = nullptr);

struct NnlmTrainOptions {
  int epochs = 8;
  int64_t batch_size = 16;
  int64_t bptt = 20;
  SgdOptions sgd = {.lr = 2.0, .momentum = 0.0, .weight_decay = 0.0,
                    .clip_grad_norm = 0.5};
  /// Quarter the LR when validation perplexity stops improving
  /// (Sec. 5.2.2); set factor 1.0 to disable.
  double plateau_factor = 0.25;
  uint64_t seed = 42;
};

/// Trains the NNLM with Algorithm 1 over BPTT chunks; evaluates validation
/// perplexity (at the full rate) each epoch for the plateau LR schedule.
void TrainNnlm(Nnlm* model, const TextCorpus& corpus,
               SliceRateScheduler* scheduler, const NnlmTrainOptions& opts,
               const EpochCallback& callback = nullptr);

}  // namespace ms

#endif  // MODELSLICING_CORE_TRAINER_H_
