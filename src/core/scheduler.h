// Slice-rate scheduling schemes (paper Sec. 3.4, evaluated in Table 1).
//
// Each training pass draws a list L_t of slice rates; Algorithm 1 then
// accumulates the gradients of the corresponding subnets. Three families:
//   - Random scheduling: sample k rates from a categorical distribution
//     (uniform or weighted — the weighted variant encodes that the full and
//     base subnets matter most).
//   - Static scheduling: every valid rate, every pass (SlimmableNet style).
//   - Random-static: a fixed subset (base and/or full) plus sampled extras.
#ifndef MODELSLICING_CORE_SCHEDULER_H_
#define MODELSLICING_CORE_SCHEDULER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/slice_config.h"
#include "src/util/rng.h"

namespace ms {

/// \brief Produces the slice-rate list for each training pass.
class SliceRateScheduler {
 public:
  virtual ~SliceRateScheduler() = default;

  /// The rates to train on this pass (paper: next_slice_rate_batch(L, F)).
  virtual std::vector<double> NextBatch(Rng* rng) = 0;

  virtual std::string name() const = 0;
};

/// \brief Always the full network — conventional (non-slicing) training,
/// the paper's "lb = 1.0" baseline.
class FullOnlyScheduler : public SliceRateScheduler {
 public:
  std::vector<double> NextBatch(Rng* rng) override {
    (void)rng;
    return {1.0};
  }
  std::string name() const override { return "full-only"; }
};

/// \brief A single fixed rate every pass; trains one standalone narrow model
/// (the "fixed models" ensemble members).
class FixedRateScheduler : public SliceRateScheduler {
 public:
  explicit FixedRateScheduler(double rate) : rate_(rate) {}
  std::vector<double> NextBatch(Rng* rng) override {
    (void)rng;
    return {rate_};
  }
  std::string name() const override { return "fixed"; }

 private:
  double rate_;
};

/// \brief Random scheduling: k rates per pass sampled from a categorical
/// distribution over the valid rate list.
class RandomScheduler : public SliceRateScheduler {
 public:
  /// Uniform sampling ("R-uniform-k").
  RandomScheduler(SliceConfig config, int samples_per_pass);

  /// Weighted sampling ("R-weighted-k"); weights align with config.rates()
  /// ascending (weights[0] is the base network).
  RandomScheduler(SliceConfig config, int samples_per_pass,
                  std::vector<double> weights);

  std::vector<double> NextBatch(Rng* rng) override;
  std::string name() const override { return name_; }

 private:
  SliceConfig config_;
  int samples_per_pass_;
  std::vector<double> weights_;
  std::string name_;
};

/// \brief Static scheduling: all valid rates, every pass.
class StaticScheduler : public SliceRateScheduler {
 public:
  explicit StaticScheduler(SliceConfig config) : config_(std::move(config)) {}
  std::vector<double> NextBatch(Rng* rng) override {
    (void)rng;
    // Descending so the full network leads each accumulation, matching the
    // SlimmableNet training order.
    std::vector<double> rates(config_.rates().rbegin(),
                              config_.rates().rend());
    return rates;
  }
  std::string name() const override { return "static"; }

 private:
  SliceConfig config_;
};

/// \brief Random-static scheduling: always train a fixed subset (the base
/// and/or the full network) and add uniformly sampled remaining rates
/// ("R-min", "R-max", "R-min-max").
class RandomStaticScheduler : public SliceRateScheduler {
 public:
  RandomStaticScheduler(SliceConfig config, bool include_min,
                        bool include_max, int random_extra = 1);

  std::vector<double> NextBatch(Rng* rng) override;
  std::string name() const override { return name_; }

 private:
  SliceConfig config_;
  bool include_min_;
  bool include_max_;
  int random_extra_;
  std::vector<double> middle_rates_;  ///< rates not statically included.
  std::string name_;
};

/// Builds the paper's reporting configurations by name:
/// "r-uniform-2", "r-weighted-2", "r-weighted-3", "static", "r-min",
/// "r-max", "r-min-max", "full-only".
Result<std::unique_ptr<SliceRateScheduler>> MakeScheduler(
    const std::string& name, const SliceConfig& config);

/// The paper's default weighted distribution: half the mass on the full
/// network, a quarter on the base, the rest spread uniformly (mirrors the
/// weight list (0.5, 0.125, 0.125, 0.25) of Sec. 5.1.2 for 4 rates).
std::vector<double> DefaultRateWeights(size_t num_rates);

}  // namespace ms

#endif  // MODELSLICING_CORE_SCHEDULER_H_
