// SGD with momentum and decoupled milestone learning-rate schedule, the
// optimizer used throughout the paper's experiments (Sec. 5.2.2 / 5.3.2).
#ifndef MODELSLICING_OPTIM_SGD_H_
#define MODELSLICING_OPTIM_SGD_H_

#include <unordered_map>
#include <vector>

#include "src/nn/module.h"

namespace ms {

struct SgdOptions {
  double lr = 0.1;
  double momentum = 0.9;
  double weight_decay = 0.0;
  /// Clip the global gradient norm before the update (used for LSTM LMs);
  /// <= 0 disables clipping.
  double clip_grad_norm = 0.0;
};

class Sgd {
 public:
  Sgd(std::vector<ParamRef> params, SgdOptions opts);

  /// Apply one update from the accumulated gradients, then zero them.
  void Step();

  void ZeroGrad();

  double lr() const { return opts_.lr; }
  void set_lr(double lr) { opts_.lr = lr; }

  const std::vector<ParamRef>& params() const { return params_; }

 private:
  /// A fixed-size slice of one parameter's elements; the unit of parallel
  /// work in Step(). Built once in the constructor.
  struct Shard {
    size_t param;
    int64_t begin;
    int64_t end;
  };

  std::vector<ParamRef> params_;
  SgdOptions opts_;
  std::vector<Tensor> velocity_;
  std::vector<Shard> shards_;
};

/// \brief Piecewise-constant LR: lr * gamma^(number of passed milestones),
/// with optional linear warmup over the first `warmup_epochs`.
class StepLrSchedule {
 public:
  StepLrSchedule(double base_lr, std::vector<int> milestones,
                 double gamma = 0.1, int warmup_epochs = 0)
      : base_lr_(base_lr),
        milestones_(std::move(milestones)),
        gamma_(gamma),
        warmup_epochs_(warmup_epochs) {}

  double LrAtEpoch(int epoch) const {
    if (warmup_epochs_ > 0 && epoch < warmup_epochs_) {
      return base_lr_ * static_cast<double>(epoch + 1) /
             static_cast<double>(warmup_epochs_);
    }
    double lr = base_lr_;
    for (int m : milestones_) {
      if (epoch >= m) lr *= gamma_;
    }
    return lr;
  }

 private:
  double base_lr_;
  std::vector<int> milestones_;
  double gamma_;
  int warmup_epochs_;
};

/// \brief The NNLM schedule from Sec. 5.2.2: the LR is quartered whenever
/// validation perplexity fails to improve.
class PlateauLrSchedule {
 public:
  PlateauLrSchedule(double base_lr, double factor = 0.25)
      : lr_(base_lr), factor_(factor) {}

  /// Report the epoch's validation metric (lower is better); returns the LR
  /// to use for the next epoch.
  double Observe(double metric) {
    if (metric >= best_) {
      lr_ *= factor_;
    } else {
      best_ = metric;
    }
    return lr_;
  }

  double lr() const { return lr_; }

 private:
  double lr_;
  double factor_;
  double best_ = 1e30;
};

}  // namespace ms

#endif  // MODELSLICING_OPTIM_SGD_H_
