#include "src/optim/sgd.h"

#include <algorithm>
#include <cmath>

#include "src/tensor/gemm.h"
#include "src/tensor/prepack.h"
#include "src/tensor/tensor_ops.h"

namespace ms {
namespace {
/// Elements per update shard. The per-element update is independent, so
/// any partition is bitwise identical; a fixed shard size (not the thread
/// count) just bounds task granularity so small models don't fan out.
constexpr int64_t kShardElems = 1 << 14;
}  // namespace

Sgd::Sgd(std::vector<ParamRef> params, SgdOptions opts)
    : params_(std::move(params)), opts_(opts) {
  velocity_.reserve(params_.size());
  for (const auto& p : params_) {
    velocity_.push_back(Tensor::Zeros(p.param->shape()));
  }
  // Parameter shapes are fixed for the optimizer's lifetime; build the
  // flat shard table once so Step() allocates nothing.
  for (size_t i = 0; i < params_.size(); ++i) {
    const int64_t n = params_[i].param->size();
    for (int64_t begin = 0; begin < n; begin += kShardElems) {
      shards_.push_back(
          {i, begin, std::min<int64_t>(n, begin + kShardElems)});
    }
  }
}

void Sgd::Step() {
  if (opts_.clip_grad_norm > 0.0) {
    double total = 0.0;
    for (const auto& p : params_) {
      total += static_cast<double>(ops::SumSquares(*p.grad));
    }
    const double norm = std::sqrt(total);
    if (norm > opts_.clip_grad_norm) {
      const float scale = static_cast<float>(opts_.clip_grad_norm / norm);
      for (auto& p : params_) ops::Scale(p.grad, scale);
    }
  }
  ops::ParallelForCompute(
      static_cast<int64_t>(shards_.size()), [&](int64_t s0, int64_t s1) {
        for (int64_t s = s0; s < s1; ++s) {
          const Shard& sh = shards_[static_cast<size_t>(s)];
          ParamRef& p = params_[sh.param];
          float* w = p.param->data();
          float* g = p.grad->data();
          float* vel = velocity_[sh.param].data();
          const float wd =
              p.no_decay ? 0.0f : static_cast<float>(opts_.weight_decay);
          const float mu = static_cast<float>(opts_.momentum);
          const float lr = static_cast<float>(opts_.lr);
          for (int64_t j = sh.begin; j < sh.end; ++j) {
            const float grad = g[j] + wd * w[j];
            vel[j] = mu * vel[j] + grad;
            w[j] -= lr * vel[j];
          }
        }
      });
  // Every parameter just changed: invalidate all prepacked weight panels.
  ops::BumpWeightGeneration();
  ZeroGrad();
}

void Sgd::ZeroGrad() {
  for (auto& p : params_) p.grad->Zero();
}

}  // namespace ms
