#include "src/optim/sgd.h"

#include <cmath>

#include "src/tensor/tensor_ops.h"

namespace ms {

Sgd::Sgd(std::vector<ParamRef> params, SgdOptions opts)
    : params_(std::move(params)), opts_(opts) {
  velocity_.reserve(params_.size());
  for (const auto& p : params_) {
    velocity_.push_back(Tensor::Zeros(p.param->shape()));
  }
}

void Sgd::Step() {
  if (opts_.clip_grad_norm > 0.0) {
    double total = 0.0;
    for (const auto& p : params_) {
      total += static_cast<double>(ops::SumSquares(*p.grad));
    }
    const double norm = std::sqrt(total);
    if (norm > opts_.clip_grad_norm) {
      const float scale = static_cast<float>(opts_.clip_grad_norm / norm);
      for (auto& p : params_) ops::Scale(p.grad, scale);
    }
  }
  for (size_t i = 0; i < params_.size(); ++i) {
    ParamRef& p = params_[i];
    Tensor& v = velocity_[i];
    float* w = p.param->data();
    float* g = p.grad->data();
    float* vel = v.data();
    const float wd =
        p.no_decay ? 0.0f : static_cast<float>(opts_.weight_decay);
    const float mu = static_cast<float>(opts_.momentum);
    const float lr = static_cast<float>(opts_.lr);
    const int64_t n = p.param->size();
    for (int64_t j = 0; j < n; ++j) {
      const float grad = g[j] + wd * w[j];
      vel[j] = mu * vel[j] + grad;
      w[j] -= lr * vel[j];
    }
  }
  ZeroGrad();
}

void Sgd::ZeroGrad() {
  for (auto& p : params_) p.grad->Zero();
}

}  // namespace ms
