#include "src/baselines/multi_classifier.h"

#include <algorithm>

#include "src/core/evaluator.h"
#include "src/nn/activations.h"
#include "src/nn/conv2d.h"
#include "src/nn/dense.h"
#include "src/nn/loss.h"
#include "src/nn/norm.h"
#include "src/nn/pooling.h"
#include "src/nn/residual.h"
#include "src/optim/sgd.h"
#include "src/util/stopwatch.h"

namespace ms {
namespace {

// One pre-activation basic residual block (BN flavor, full width).
std::unique_ptr<Module> MakeBasicBlock(int64_t in_ch, int64_t out_ch,
                                       int64_t stride, const std::string& tag,
                                       Rng* rng) {
  auto body = std::make_unique<Sequential>("body_" + tag);
  NormOptions nopts;
  nopts.channels = in_ch;
  body->Emplace<BatchNorm>(nopts, "n1_" + tag);
  body->Emplace<ReLU>();
  {
    Conv2dOptions c;
    c.in_channels = in_ch;
    c.out_channels = out_ch;
    c.kernel = 3;
    c.stride = stride;
    c.pad = 1;
    body->Emplace<Conv2d>(c, rng, "c1_" + tag);
  }
  nopts.channels = out_ch;
  body->Emplace<BatchNorm>(nopts, "n2_" + tag);
  body->Emplace<ReLU>();
  {
    Conv2dOptions c;
    c.in_channels = out_ch;
    c.out_channels = out_ch;
    c.kernel = 3;
    c.stride = 1;
    c.pad = 1;
    body->Emplace<Conv2d>(c, rng, "c2_" + tag);
  }
  std::unique_ptr<Module> shortcut;
  if (in_ch != out_ch || stride != 1) {
    auto proj = std::make_unique<Sequential>("proj_" + tag);
    Conv2dOptions c;
    c.in_channels = in_ch;
    c.out_channels = out_ch;
    c.kernel = 1;
    c.stride = stride;
    c.pad = 0;
    proj->Emplace<Conv2d>(c, rng, "sc_" + tag);
    shortcut = std::move(proj);
  }
  return std::make_unique<ResidualBlock>(std::move(body),
                                         std::move(shortcut), "res_" + tag);
}

}  // namespace

Result<std::unique_ptr<MultiExitCnn>> MultiExitCnn::Make(
    const CnnConfig& config) {
  if (config.in_channels < 1 || config.num_classes < 2 ||
      config.base_width < 1 || config.stages < 1 ||
      config.blocks_per_stage < 1) {
    return Status::InvalidArgument("bad multi-exit config");
  }
  Rng rng(config.seed);
  auto model = std::unique_ptr<MultiExitCnn>(new MultiExitCnn());

  model->stem_ = std::make_unique<Sequential>("stem");
  const int64_t stem_width = ScaledWidth(config.base_width, config.width_mult);
  {
    Conv2dOptions c;
    c.in_channels = config.in_channels;
    c.out_channels = stem_width;
    c.kernel = 3;
    c.stride = 1;
    c.pad = 1;
    model->stem_->Emplace<Conv2d>(c, &rng, "stem_conv");
  }

  int64_t in_ch = stem_width;
  for (int64_t s = 0; s < config.stages; ++s) {
    const int64_t out_ch =
        ScaledWidth(config.base_width << s, config.width_mult);
    auto stage = std::make_unique<Sequential>("stage" + std::to_string(s));
    for (int64_t b = 0; b < config.blocks_per_stage; ++b) {
      const int64_t stride = (s > 0 && b == 0) ? 2 : 1;
      stage->Add(MakeBasicBlock(in_ch, out_ch, stride,
                                std::to_string(s) + "_" + std::to_string(b),
                                &rng));
      in_ch = out_ch;
    }
    model->stages_.push_back(std::move(stage));

    auto head = std::make_unique<Sequential>("head" + std::to_string(s));
    NormOptions n;
    n.channels = in_ch;
    head->Emplace<BatchNorm>(n, "head_norm" + std::to_string(s));
    head->Emplace<ReLU>();
    head->Emplace<GlobalAvgPool>();
    DenseOptions d;
    d.in_features = in_ch;
    d.out_features = config.num_classes;
    d.slice_in = false;
    d.slice_out = false;
    head->Emplace<Dense>(d, &rng, "head_fc" + std::to_string(s));
    model->heads_.push_back(std::move(head));
  }
  return model;
}

std::vector<Tensor> MultiExitCnn::ForwardAll(const Tensor& x, bool training) {
  stage_outputs_.clear();
  std::vector<Tensor> logits;
  Tensor h = stem_->Forward(x, training);
  for (size_t s = 0; s < stages_.size(); ++s) {
    h = stages_[s]->Forward(h, training);
    stage_outputs_.push_back(h);
    logits.push_back(heads_[s]->Forward(h, training));
  }
  return logits;
}

float MultiExitCnn::TrainStep(const Tensor& x, const std::vector<int>& labels) {
  const std::vector<Tensor> logits = ForwardAll(x, /*training=*/true);
  float total_loss = 0.0f;
  std::vector<Tensor> head_grads(heads_.size());
  for (size_t e = 0; e < heads_.size(); ++e) {
    SoftmaxCrossEntropy loss;
    total_loss += loss.Forward(logits[e], labels);
    head_grads[e] = heads_[e]->Backward(loss.Backward());
  }
  // Backward through stages, merging head gradient with downstream gradient.
  Tensor grad;  // gradient flowing into the output of the current stage.
  for (size_t s = stages_.size(); s-- > 0;) {
    if (grad.empty()) {
      grad = head_grads[s];
    } else {
      ops::AddInPlace(&grad, head_grads[s]);
    }
    grad = stages_[s]->Backward(grad);
  }
  stem_->Backward(grad);
  return total_loss / static_cast<float>(heads_.size());
}

std::vector<ParamRef> MultiExitCnn::Params() {
  std::vector<ParamRef> params;
  stem_->CollectParams(&params);
  for (auto& s : stages_) s->CollectParams(&params);
  for (auto& h : heads_) h->CollectParams(&params);
  return params;
}

int64_t MultiExitCnn::FlopsUpToExit(int e) const {
  MS_CHECK(e >= 0 && e < static_cast<int>(stages_.size()));
  int64_t flops = stem_->FlopsPerSample();
  for (int s = 0; s <= e; ++s) flops += stages_[static_cast<size_t>(s)]
                                            ->FlopsPerSample();
  flops += heads_[static_cast<size_t>(e)]->FlopsPerSample();
  return flops;
}

void MultiExitCnn::Train(const ImageDataset& data,
                         const ImageTrainOptions& opts) {
  Sgd optimizer(Params(), opts.sgd);
  StepLrSchedule lr_schedule(opts.sgd.lr, opts.lr_milestones);
  Rng rng(opts.seed);
  std::vector<int64_t> order(static_cast<size_t>(data.size()));
  for (int64_t i = 0; i < data.size(); ++i) order[static_cast<size_t>(i)] = i;

  for (int epoch = 0; epoch < opts.epochs; ++epoch) {
    optimizer.set_lr(lr_schedule.LrAtEpoch(epoch));
    rng.Shuffle(&order);
    std::vector<int64_t> indices;
    std::vector<int> labels;
    for (int64_t start = 0; start < data.size(); start += opts.batch_size) {
      const int64_t end = std::min(data.size(), start + opts.batch_size);
      indices.assign(order.begin() + start, order.begin() + end);
      Tensor x = GatherImages(data, indices);
      GatherLabels(data, indices, &labels);
      if (opts.augment) AugmentBatch(&x, opts.max_shift, &rng);
      TrainStep(x, labels);
      optimizer.Step();
    }
  }
}

float MultiExitCnn::EvalExitAccuracy(const ImageDataset& data, int e,
                                     int64_t batch_size) {
  MS_CHECK(e >= 0 && e < num_exits());
  int64_t correct = 0;
  std::vector<int64_t> indices;
  std::vector<int> labels;
  for (int64_t start = 0; start < data.size(); start += batch_size) {
    const int64_t end = std::min(data.size(), start + batch_size);
    indices.clear();
    for (int64_t i = start; i < end; ++i) indices.push_back(i);
    Tensor x = GatherImages(data, indices);
    GatherLabels(data, indices, &labels);
    const std::vector<Tensor> logits = ForwardAll(x, /*training=*/false);
    std::vector<int> pred;
    ops::ArgmaxRows(logits[static_cast<size_t>(e)],
                    logits[static_cast<size_t>(e)].dim(0),
                    logits[static_cast<size_t>(e)].dim(1), &pred);
    for (size_t i = 0; i < pred.size(); ++i) {
      if (pred[i] == labels[i]) ++correct;
    }
  }
  return static_cast<float>(correct) / static_cast<float>(data.size());
}

}  // namespace ms
