#include "src/baselines/skipnet.h"

#include <algorithm>
#include <cmath>

#include "src/nn/activations.h"
#include "src/nn/loss.h"
#include "src/nn/norm.h"
#include "src/nn/pooling.h"
#include "src/optim/sgd.h"
#include "src/tensor/tensor_ops.h"

namespace ms {

GatedResidualBlock::GatedResidualBlock(std::unique_ptr<Module> body,
                                       int64_t channels, Rng* rng,
                                       std::string name)
    : body_(std::move(body)), name_(std::move(name)), channels_(channels) {
  gate_w_ = Tensor::Randn({channels_}, rng,
                          1.0f / std::sqrt(static_cast<float>(channels_)));
  gate_b_ = Tensor::Full({1}, 1.0f);  // Bias toward executing at init.
  gate_w_grad_ = Tensor::Zeros({channels_});
  gate_b_grad_ = Tensor::Zeros({1});
}

Tensor GatedResidualBlock::DoForward(const Tensor& x, bool training) {
  MS_CHECK(x.ndim() == 4 && x.dim(1) == channels_);
  const int64_t batch = x.dim(0);
  const int64_t area = x.dim(2) * x.dim(3);
  cached_x_ = x;
  last_training_ = training;

  // Per-sample gate from global average pooled features.
  cached_gap_ = Tensor({batch, channels_});
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t c = 0; c < channels_; ++c) {
      const float* plane = x.data() + (b * channels_ + c) * area;
      float acc = 0.0f;
      for (int64_t p = 0; p < area; ++p) acc += plane[p];
      cached_gap_.at2(b, c) = acc / static_cast<float>(area);
    }
  }
  gates_.assign(static_cast<size_t>(batch), 0.0f);
  gate_grad_acc_.assign(static_cast<size_t>(batch), 0.0f);
  double gate_sum = 0.0;
  int64_t executed = 0;
  for (int64_t b = 0; b < batch; ++b) {
    float pre = gate_b_[0];
    for (int64_t c = 0; c < channels_; ++c) {
      pre += cached_gap_.at2(b, c) * gate_w_[c];
    }
    const float g = 1.0f / (1.0f + std::exp(-pre));
    gates_[static_cast<size_t>(b)] = g;
    gate_sum += g;
    if (g > 0.5f) ++executed;
  }
  mean_gate_ = static_cast<float>(gate_sum / static_cast<double>(batch));
  executed_fraction_ =
      static_cast<float>(executed) / static_cast<float>(batch);

  cached_f_ = body_->Forward(x, training);
  MS_CHECK(cached_f_.SameShape(x));

  Tensor y = x;
  for (int64_t b = 0; b < batch; ++b) {
    // Soft gate during training; hard execute/skip at inference.
    const float g = training ? gates_[static_cast<size_t>(b)]
                             : (gates_[static_cast<size_t>(b)] > 0.5f ? 1.0f
                                                                      : 0.0f);
    if (g == 0.0f) continue;
    const float* f = cached_f_.data() + b * channels_ * area;
    float* yo = y.data() + b * channels_ * area;
    for (int64_t i = 0; i < channels_ * area; ++i) yo[i] += g * f[i];
  }
  return y;
}

void GatedResidualBlock::AddSparsityGradient(float alpha) {
  // d(alpha * mean_gate)/d(g_b) = alpha / B.
  const float per_sample =
      alpha / static_cast<float>(gate_grad_acc_.size());
  for (auto& g : gate_grad_acc_) g += per_sample;
}

Tensor GatedResidualBlock::DoBackward(const Tensor& grad_out) {
  MS_CHECK(last_training_);
  const int64_t batch = cached_x_.dim(0);
  const int64_t area = cached_x_.dim(2) * cached_x_.dim(3);
  const int64_t per_sample = channels_ * area;

  // Gradient into the body output: g_b * dy; gradient into the gate:
  // <dy, F_b> plus any external (sparsity) term.
  Tensor grad_f(grad_out.shape());
  std::vector<float> dpre(static_cast<size_t>(batch), 0.0f);
  for (int64_t b = 0; b < batch; ++b) {
    const float g = gates_[static_cast<size_t>(b)];
    const float* dy = grad_out.data() + b * per_sample;
    const float* f = cached_f_.data() + b * per_sample;
    float* df = grad_f.data() + b * per_sample;
    double dg = gate_grad_acc_[static_cast<size_t>(b)];
    for (int64_t i = 0; i < per_sample; ++i) {
      df[i] = g * dy[i];
      dg += static_cast<double>(dy[i]) * f[i];
    }
    dpre[static_cast<size_t>(b)] = static_cast<float>(dg) * g * (1.0f - g);
  }

  Tensor grad_in = body_->Backward(grad_f);
  ops::AddInPlace(&grad_in, grad_out);  // identity path

  // Gate parameter grads and the gate's input-path gradient through GAP.
  for (int64_t b = 0; b < batch; ++b) {
    const float dp = dpre[static_cast<size_t>(b)];
    if (dp == 0.0f) continue;
    gate_b_grad_[0] += dp;
    for (int64_t c = 0; c < channels_; ++c) {
      gate_w_grad_[c] += dp * cached_gap_.at2(b, c);
      const float dgap = dp * gate_w_[c] / static_cast<float>(area);
      float* gi = grad_in.data() + (b * channels_ + c) * area;
      for (int64_t p = 0; p < area; ++p) gi[p] += dgap;
    }
  }
  return grad_in;
}

void GatedResidualBlock::CollectParams(std::vector<ParamRef>* out) {
  body_->CollectParams(out);
  out->push_back({name_ + ".gate_w", &gate_w_, &gate_w_grad_,
                  /*no_decay=*/false});
  out->push_back({name_ + ".gate_b", &gate_b_, &gate_b_grad_,
                  /*no_decay=*/true});
}

namespace {

std::unique_ptr<Module> MakeBody(int64_t channels, const std::string& tag,
                                 Rng* rng) {
  auto body = std::make_unique<Sequential>("body_" + tag);
  NormOptions n;
  n.channels = channels;
  body->Emplace<BatchNorm>(n, "n1_" + tag);
  body->Emplace<ReLU>();
  Conv2dOptions c;
  c.in_channels = channels;
  c.out_channels = channels;
  c.kernel = 3;
  c.pad = 1;
  body->Emplace<Conv2d>(c, rng, "c1_" + tag);
  body->Emplace<BatchNorm>(n, "n2_" + tag);
  body->Emplace<ReLU>();
  body->Emplace<Conv2d>(c, rng, "c2_" + tag);
  return body;
}

}  // namespace

Result<std::unique_ptr<SkipNet>> SkipNet::Make(const Options& opts) {
  if (opts.cnn.base_width < 1 || opts.cnn.num_classes < 2 ||
      opts.cnn.stages < 1 || opts.cnn.blocks_per_stage < 1) {
    return Status::InvalidArgument("bad SkipNet config");
  }
  if (opts.sparsity_alpha < 0.0) {
    return Status::InvalidArgument("sparsity alpha must be >= 0");
  }
  auto net = std::unique_ptr<SkipNet>(new SkipNet());
  net->opts_ = opts;
  Rng rng(opts.cnn.seed);

  const int64_t width = ScaledWidth(opts.cnn.base_width * 2,
                                    opts.cnn.width_mult);
  net->stem_ = std::make_unique<Sequential>("stem");
  {
    Conv2dOptions c;
    c.in_channels = opts.cnn.in_channels;
    c.out_channels = width;
    c.kernel = 3;
    c.pad = 1;
    net->stem_->Emplace<Conv2d>(c, &rng, "stem_conv");
    net->stem_->Emplace<MaxPool2d>(2, 2);
  }

  const int64_t depth = opts.cnn.stages * opts.cnn.blocks_per_stage;
  for (int64_t i = 0; i < depth; ++i) {
    net->blocks_.push_back(std::make_unique<GatedResidualBlock>(
        MakeBody(width, std::to_string(i), &rng), width, &rng,
        "gated" + std::to_string(i)));
  }

  net->head_ = std::make_unique<Sequential>("head");
  NormOptions n;
  n.channels = width;
  net->head_->Emplace<BatchNorm>(n, "head_norm");
  net->head_->Emplace<ReLU>();
  net->head_->Emplace<GlobalAvgPool>();
  DenseOptions d;
  d.in_features = width;
  d.out_features = opts.cnn.num_classes;
  d.slice_in = false;
  d.slice_out = false;
  net->head_->Emplace<Dense>(d, &rng, "head_fc");
  return net;
}

Tensor SkipNet::ForwardLogits(const Tensor& x, bool training) {
  Tensor h = stem_->Forward(x, training);
  for (auto& block : blocks_) h = block->Forward(h, training);
  Tensor logits = head_->Forward(h, training);
  fixed_flops_ = stem_->FlopsPerSample() + head_->FlopsPerSample();
  return logits;
}

void SkipNet::Train(const ImageDataset& data, const ImageTrainOptions& opts) {
  std::vector<ParamRef> params;
  stem_->CollectParams(&params);
  for (auto& b : blocks_) b->CollectParams(&params);
  head_->CollectParams(&params);
  Sgd optimizer(params, opts.sgd);
  StepLrSchedule lr_schedule(opts.sgd.lr, opts.lr_milestones);
  Rng rng(opts.seed);
  SoftmaxCrossEntropy loss;

  std::vector<int64_t> order(static_cast<size_t>(data.size()));
  for (int64_t i = 0; i < data.size(); ++i) order[static_cast<size_t>(i)] = i;
  for (int epoch = 0; epoch < opts.epochs; ++epoch) {
    optimizer.set_lr(lr_schedule.LrAtEpoch(epoch));
    rng.Shuffle(&order);
    std::vector<int64_t> indices;
    std::vector<int> labels;
    for (int64_t start = 0; start < data.size(); start += opts.batch_size) {
      const int64_t end = std::min(data.size(), start + opts.batch_size);
      indices.assign(order.begin() + start, order.begin() + end);
      Tensor x = GatherImages(data, indices);
      GatherLabels(data, indices, &labels);
      if (opts.augment) AugmentBatch(&x, opts.max_shift, &rng);

      Tensor logits = ForwardLogits(x, /*training=*/true);
      loss.Forward(logits, labels);
      for (auto& b : blocks_) {
        b->AddSparsityGradient(static_cast<float>(opts_.sparsity_alpha));
      }
      Tensor g = head_->Backward(loss.Backward());
      for (auto it = blocks_.rbegin(); it != blocks_.rend(); ++it) {
        g = (*it)->Backward(g);
      }
      stem_->Backward(g);
      optimizer.Step();
    }
  }
}

float SkipNet::EvalAccuracy(const ImageDataset& data, int64_t batch_size) {
  int64_t correct = 0;
  double flops_acc = 0.0;
  int64_t batches = 0;
  std::vector<int64_t> indices;
  std::vector<int> labels;
  for (int64_t start = 0; start < data.size(); start += batch_size) {
    const int64_t end = std::min(data.size(), start + batch_size);
    indices.clear();
    for (int64_t i = start; i < end; ++i) indices.push_back(i);
    Tensor x = GatherImages(data, indices);
    GatherLabels(data, indices, &labels);
    Tensor logits = ForwardLogits(x, /*training=*/false);
    std::vector<int> pred;
    ops::ArgmaxRows(logits, logits.dim(0), logits.dim(1), &pred);
    for (size_t i = 0; i < pred.size(); ++i) {
      if (pred[i] == labels[i]) ++correct;
    }
    double batch_flops = static_cast<double>(fixed_flops_);
    for (auto& b : blocks_) {
      batch_flops += static_cast<double>(b->body_flops()) *
                     b->executed_fraction();
      batch_flops += static_cast<double>(x.dim(1));  // gate cost
    }
    flops_acc += batch_flops;
    ++batches;
  }
  measured_eval_flops_ = batches > 0 ? flops_acc / batches : 0.0;
  return static_cast<float>(correct) / static_cast<float>(data.size());
}

}  // namespace ms
