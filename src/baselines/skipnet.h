// SkipNet-style dynamic-routing baseline [48]: each residual block carries a
// tiny gate that decides, per sample, whether to execute the block or skip
// it. The original uses hybrid reinforcement learning; we use the standard
// soft-gate relaxation (sigmoid gate, sparsity penalty, hard threshold at
// inference), which preserves the behaviour the paper contrasts against:
// efficient but "less controlled" — the achieved FLOPs are an emergent
// property of the gates, not a dialable knob.
#ifndef MODELSLICING_BASELINES_SKIPNET_H_
#define MODELSLICING_BASELINES_SKIPNET_H_

#include <memory>
#include <vector>

#include "src/core/trainer.h"
#include "src/models/cnn.h"
#include "src/nn/conv2d.h"
#include "src/nn/dense.h"

namespace ms {

/// \brief Residual block with a learned per-sample execution gate:
/// y = x + g(x) * F(x), g(x) = sigmoid(w · GAP(x) + b).
class GatedResidualBlock : public Module {
 public:
  GatedResidualBlock(std::unique_ptr<Module> body, int64_t channels,
                     Rng* rng, std::string name = "gated_block");

  Tensor DoForward(const Tensor& x, bool training) override;
  Tensor DoBackward(const Tensor& grad_out) override;
  void CollectParams(std::vector<ParamRef>* out) override;
  std::string name() const override { return name_; }

  /// Mean gate activation of the last forward (the sparsity-penalty input
  /// and the skip-statistics probe).
  float mean_gate() const { return mean_gate_; }

  /// Adds the sparsity-penalty gradient alpha/d(mean gate) for the last
  /// forward batch (call between Forward and Backward of the outer loss).
  void AddSparsityGradient(float alpha);

  /// In inference mode gates threshold at 0.5; returns the fraction of
  /// samples that executed the block in the last forward.
  float executed_fraction() const { return executed_fraction_; }

  int64_t body_flops() const { return body_->FlopsPerSample(); }

 private:
  std::unique_ptr<Module> body_;
  std::string name_;
  int64_t channels_;

  Tensor gate_w_;  ///< (channels)
  Tensor gate_b_;  ///< (1)
  Tensor gate_w_grad_;
  Tensor gate_b_grad_;

  // Forward caches.
  Tensor cached_x_;
  Tensor cached_f_;       ///< body output
  Tensor cached_gap_;     ///< (B, channels)
  std::vector<float> gates_;       ///< per-sample gate value
  std::vector<float> gate_grad_acc_;  ///< external (sparsity) gradient
  bool last_training_ = false;
  float mean_gate_ = 0.0f;
  float executed_fraction_ = 0.0f;
};

/// \brief A small gated ResNet with a configurable skip-penalty weight; the
/// penalty strength trades accuracy against executed FLOPs.
class SkipNet {
 public:
  struct Options {
    CnnConfig cnn;       ///< width/depth template (norm forced to kBatch).
    double sparsity_alpha = 0.05;  ///< penalty on mean gate activation.
  };

  static Result<std::unique_ptr<SkipNet>> Make(const Options& opts);

  void Train(const ImageDataset& data, const ImageTrainOptions& opts);

  float EvalAccuracy(const ImageDataset& data, int64_t batch_size = 64);

  /// Average per-sample FLOPs actually executed during the last EvalAccuracy
  /// (hard gates: skipped blocks cost nothing but the gate itself).
  double MeasuredEvalFlops() const { return measured_eval_flops_; }

 private:
  SkipNet() = default;

  Tensor ForwardLogits(const Tensor& x, bool training);

  Options opts_;
  std::unique_ptr<Sequential> stem_;
  std::vector<std::unique_ptr<GatedResidualBlock>> blocks_;
  std::unique_ptr<Sequential> head_;
  int64_t fixed_flops_ = 0;  ///< stem + head, profiled after first forward.
  double measured_eval_flops_ = 0.0;
};

}  // namespace ms

#endif  // MODELSLICING_BASELINES_SKIPNET_H_
