// Network Slimming baseline [35]: train with an L1 penalty on batch-norm
// scale factors, prune the globally-smallest channels, physically rebuild a
// compact network, and fine-tune. The paper contrasts this with model
// slicing: it yields one good small model but needs retraining per operating
// point and gives no inference-time control.
#ifndef MODELSLICING_BASELINES_NETWORK_SLIMMING_H_
#define MODELSLICING_BASELINES_NETWORK_SLIMMING_H_

#include <memory>
#include <vector>

#include "src/core/trainer.h"
#include "src/models/cnn.h"

namespace ms {

struct SlimmingOptions {
  CnnConfig base;                ///< VGG template; norm forced to kBatch.
  double l1_lambda = 1e-4;       ///< sparsity strength on γ.
  double prune_fraction = 0.5;   ///< global fraction of channels removed.
  ImageTrainOptions pretrain;
  ImageTrainOptions finetune;
};

struct SlimmingResult {
  std::unique_ptr<Sequential> pruned_net;
  float accuracy_before_finetune = 0.0f;
  float accuracy = 0.0f;   ///< after fine-tuning.
  int64_t flops = 0;
  int64_t params = 0;
  std::vector<int64_t> kept_per_layer;
};

/// Runs the full slimming pipeline (sparse train -> prune -> fine-tune) on a
/// plain VGG-style chain.
Result<SlimmingResult> RunNetworkSlimming(const SlimmingOptions& opts,
                                          const ImageDataset& train,
                                          const ImageDataset& test);

/// Trains a conventional (full-only) model while adding lambda * sign(γ) to
/// every BatchNorm scale gradient — the sub-gradient of the L1 penalty.
/// Exposed separately for testing.
void TrainWithGammaL1(Sequential* net, const ImageDataset& data,
                      const ImageTrainOptions& opts, double l1_lambda);

}  // namespace ms

#endif  // MODELSLICING_BASELINES_NETWORK_SLIMMING_H_
