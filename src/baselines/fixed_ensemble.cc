#include "src/baselines/fixed_ensemble.h"

#include <cmath>

#include "src/core/cost_model.h"
#include "src/core/evaluator.h"

namespace ms {

Result<std::vector<EnsembleMember>> TrainFixedEnsemble(
    const EnsembleOptions& opts, const ImageDataset& train,
    const ImageDataset& test) {
  if (opts.scales.empty()) {
    return Status::InvalidArgument("ensemble needs at least one scale");
  }
  std::vector<EnsembleMember> members;
  for (double scale : opts.scales) {
    if (scale <= 0.0 || scale > 1.0) {
      return Status::InvalidArgument("scales must be in (0, 1]");
    }
    CnnConfig config = opts.base;
    config.norm = NormKind::kBatch;
    if (opts.axis == EnsembleAxis::kWidth) {
      config.width_mult = opts.base.width_mult * scale;
    } else {
      config.blocks_per_stage = std::max<int64_t>(
          1, static_cast<int64_t>(
                 std::llround(opts.base.blocks_per_stage * scale)));
    }
    // Distinct init per member: otherwise "ensemble" members correlate.
    config.seed = opts.base.seed + static_cast<uint64_t>(
                                       std::llround(scale * 1000));

    auto net_result =
        opts.use_resnet ? MakeResNet(config) : MakeVggSmall(config);
    MS_RETURN_NOT_OK(net_result.status());
    std::unique_ptr<Sequential> net = net_result.MoveValueOrDie();

    FullOnlyScheduler scheduler;
    TrainImageClassifier(net.get(), train, &scheduler, opts.train);

    EnsembleMember member;
    member.scale = scale;
    member.test_accuracy = EvalAccuracy(net.get(), test, /*rate=*/1.0);
    // Profile compute/params at the full rate of this (smaller) model.
    Tensor sample({1, train.channels, train.height, train.width});
    const auto profile = ProfileNet(net.get(), sample, {1.0});
    member.flops = profile[0].flops;
    member.params = profile[0].params;
    member.net = std::move(net);
    members.push_back(std::move(member));
  }
  return members;
}

}  // namespace ms
