// Multi-classifier (early-exit) baseline — the depth-slicing alternative the
// paper compares against ("ResNet with Multi-Classifiers", MSDNet-style
// anytime prediction [22]). Auxiliary classifier heads after each stage let
// inference stop early under a compute budget.
#ifndef MODELSLICING_BASELINES_MULTI_CLASSIFIER_H_
#define MODELSLICING_BASELINES_MULTI_CLASSIFIER_H_

#include <memory>
#include <vector>

#include "src/core/trainer.h"
#include "src/models/cnn.h"

namespace ms {

/// \brief A ResNet whose stages each feed an auxiliary classifier head;
/// trained with an equally-weighted sum of all exit losses (a simplified
/// Adaptive Loss Balancing [21]).
class MultiExitCnn {
 public:
  static Result<std::unique_ptr<MultiExitCnn>> Make(const CnnConfig& config);

  /// Logits at every exit; index i uses stem + stages [0, i].
  std::vector<Tensor> ForwardAll(const Tensor& x, bool training);

  /// Forward + backward on the summed exit losses; accumulates gradients
  /// and returns the mean per-exit loss.
  float TrainStep(const Tensor& x, const std::vector<int>& labels);

  std::vector<ParamRef> Params();

  int num_exits() const { return static_cast<int>(heads_.size()); }

  /// Compute up to (and including) exit `e`, profiled by the last forward.
  int64_t FlopsUpToExit(int e) const;

  /// Conventional full-width training over the dataset.
  void Train(const ImageDataset& data, const ImageTrainOptions& opts);

  /// Test accuracy of exit `e`.
  float EvalExitAccuracy(const ImageDataset& data, int e,
                         int64_t batch_size = 64);

 private:
  MultiExitCnn() = default;

  std::unique_ptr<Sequential> stem_;
  std::vector<std::unique_ptr<Sequential>> stages_;
  std::vector<std::unique_ptr<Sequential>> heads_;

  // Cached stage outputs from the last ForwardAll (for TrainStep backward).
  std::vector<Tensor> stage_outputs_;
};

}  // namespace ms

#endif  // MODELSLICING_BASELINES_MULTI_CLASSIFIER_H_
