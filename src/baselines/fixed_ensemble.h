// Ensemble-of-fixed-models baselines (paper Fig. 2 / Table 4): a separate
// conventionally-trained network per operating point, varying either the
// width multiplier or the depth. Strong baselines that cost one full model
// of storage per point — exactly the overhead model slicing removes.
#ifndef MODELSLICING_BASELINES_FIXED_ENSEMBLE_H_
#define MODELSLICING_BASELINES_FIXED_ENSEMBLE_H_

#include <memory>
#include <vector>

#include "src/core/trainer.h"
#include "src/models/cnn.h"

namespace ms {

struct EnsembleMember {
  double scale = 1.0;  ///< width multiplier or depth fraction.
  std::unique_ptr<Sequential> net;
  int64_t flops = 0;    ///< profiled at full rate.
  int64_t params = 0;
  float test_accuracy = 0.0f;
};

enum class EnsembleAxis { kWidth, kDepth };

struct EnsembleOptions {
  CnnConfig base;                    ///< norm is forced to kBatch.
  std::vector<double> scales;        ///< e.g. {0.375, 0.5, ..., 1.0}.
  EnsembleAxis axis = EnsembleAxis::kWidth;
  bool use_resnet = false;           ///< VGG otherwise.
  ImageTrainOptions train;
};

/// Trains one conventional model per scale and profiles it on `test`.
Result<std::vector<EnsembleMember>> TrainFixedEnsemble(
    const EnsembleOptions& opts, const ImageDataset& train,
    const ImageDataset& test);

}  // namespace ms

#endif  // MODELSLICING_BASELINES_FIXED_ENSEMBLE_H_
